(* mica: command-line interface to the MICA workload-characterization
   library.

   Subcommands:
     list          enumerate the 122 benchmark models
     characterize  print the 47-characteristic MICA vector of a workload
     counters      print the 7 hardware-counter metrics of a workload
     compare       Figures 2/3-style comparison of two workloads, or a
                   regression-gated delta report between two run directories
     distance      pairwise distance between two workloads in both spaces
     variance      run-to-run noise report over N run directories
     classify      Table III quadrant fractions
     select-ga     run the genetic algorithm feature selection
     select-ce     run correlation elimination
     cluster       Figure 6-style clustering on key characteristics
     kiviat        kiviat plot of one workload over selected characteristics
     corpus        generate a 10k-scale parameter-sweep corpus dataset
     knn           ANN / exact nearest-neighbour queries over a stored corpus
     fleet         one-pass corpus characterization against a machine-description fleet
     calibrate     micro-benchmark baseline suite vs analytic counter envelopes
     verify        oracle suite: invariants, reference analyzers, metamorphic laws *)

open Cmdliner

module E = Mica_core.Experiments
module Select = Mica_select

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

(* ---------------- common options ---------------- *)

let icount =
  let doc = "Dynamic instructions to generate per workload trace." in
  Arg.(value & opt int 200_000 & info [ "icount"; "n" ] ~docv:"N" ~doc)

let no_cache =
  let doc = "Do not read or write the characterization cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let verbose =
  let doc = "Verbose logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let faults =
  let doc =
    "Install a deterministic fault-injection plan (testing/chaos runs), e.g. \
     'seed=7,pool.worker=0.3' or 'trace.gen=1@5'. Points: trace.gen, analyzer.chunk, \
     cache.read, cache.write, pool.worker, pool.crash. Equivalent to setting \
     $(b,MICA_FAULTS)."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let metrics_opt =
  let doc =
    "Enable the observability layer and write the final metrics snapshot (counters, \
     gauges, histograms and span timings across all domains) as JSON to $(docv) when \
     the command exits."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* The snapshot is written from [at_exit] so every exit path of every
   subcommand — including the [exit 1/2] error paths — still commits it. *)
let setup_metrics = function
  | None -> ()
  | Some path ->
    Mica_obs.Obs.set_enabled true;
    at_exit (fun () -> Mica_obs.Obs.write_json path (Mica_obs.Obs.snapshot ()))

(* ---------------- run directories ---------------- *)

let no_run =
  let doc = "Do not commit a self-describing run directory for this invocation." in
  Arg.(value & flag & info [ "no-run" ] ~doc)

let runs_root =
  let doc = "Root directory for committed run directories." in
  Arg.(value & opt string "runs" & info [ "runs" ] ~docv:"DIR" ~doc)

let run_tag =
  let doc = "Tag naming this invocation's run directory (default: the subcommand)." in
  Arg.(value & opt (some string) None & info [ "tag" ] ~docv:"TAG" ~doc)

(* The subcommand, for the default run tag: first non-option argument. *)
let subcommand_of_argv () =
  let rec go i =
    if i >= Array.length Sys.argv then "mica"
    else
      let a = Sys.argv.(i) in
      if String.length a > 0 && a.[0] <> '-' then a else go (i + 1)
  in
  go 1

(* The pipeline commits the run directory as soon as the datasets exist —
   before late stages (GA, clustering) have run.  At exit the metrics
   artifact is refreshed with the full-command snapshot so their spans
   reach the run too.  Failure is swallowed: the run stays valid with the
   snapshot it already holds. *)
let setup_run_finalizer () =
  at_exit (fun () ->
      match Mica_core.Pipeline.committed_run_dir () with
      | None -> ()
      | Some dir -> (
        try
          Mica_run.Run_dir.refresh_artifact ~dir ~filename:Mica_run.Run_dir.metrics_file
            ~contents:(Mica_obs.Obs.to_json (Mica_obs.Obs.snapshot ()))
        with _ -> ()))

let config_of icount no_cache verbose faults metrics no_run runs_root run_tag =
  setup_logs verbose;
  setup_metrics metrics;
  (match faults with
  | None -> ()
  | Some spec -> (
    match Mica_util.Fault.parse spec with
    | Ok plan -> Mica_util.Fault.install (Some plan)
    | Error msg ->
      Printf.eprintf "error: bad --faults spec: %s\n" msg;
      exit 2));
  let run =
    if no_run then None
    else begin
      setup_run_finalizer ();
      Some
        {
          Mica_core.Pipeline.run_root = runs_root;
          run_tag = Option.value run_tag ~default:(subcommand_of_argv ());
          run_seeds = [];
        }
    end
  in
  {
    Mica_core.Pipeline.default_config with
    icount;
    cache_dir = (if no_cache then None else Mica_core.Pipeline.default_config.cache_dir);
    progress = true;
    run;
  }

let config_term =
  Term.(
    const config_of $ icount $ no_cache $ verbose $ faults $ metrics_opt $ no_run $ runs_root
    $ run_tag)

(* Render a batch's run report: the one-line summary on stderr (it is
   operational metadata, stdout stays parseable), failure details when
   any, and a nonzero exit for commands that required every workload. *)
let surface_report report =
  let module R = Mica_core.Run_report in
  Logs.info (fun f -> f "run report: %s" (R.summary report));
  if not (R.all_ok report) then prerr_string (R.render report)

let workload_arg p =
  let doc = "Workload identifier, e.g. 'SPEC2000/bzip2/graphic' or 'blast'." in
  Arg.(required & pos p (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let resolve name =
  match Mica_workloads.Registry.find name with
  | Some w -> w
  | None -> (
    match Mica_workloads.Registry.matching name with
    | [ w ] -> w
    | [] ->
      Printf.eprintf "error: no workload matches %S (try 'mica list')\n" name;
      exit 2
    | many ->
      Printf.eprintf "error: %S is ambiguous; candidates:\n" name;
      List.iter (fun w -> Printf.eprintf "  %s\n" (Mica_workloads.Workload.id w)) many;
      exit 2)

(* ---------------- list ---------------- *)

let list_cmd =
  let suite_filter =
    let doc = "Only list this suite." in
    Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"SUITE" ~doc)
  in
  let run metrics suite =
    setup_metrics metrics;
    let workloads =
      match suite with
      | None -> Mica_workloads.Registry.all
      | Some s -> (
        match Mica_workloads.Suite.of_name s with
        | Some suite -> Mica_workloads.Registry.by_suite suite
        | None ->
          Printf.eprintf "error: unknown suite %S\n" s;
          exit 2)
    in
    List.iter
      (fun (w : Mica_workloads.Workload.t) ->
        Printf.printf "%-55s %10dM instrs\n" (Mica_workloads.Workload.id w)
          w.Mica_workloads.Workload.icount_millions)
      workloads;
    Printf.printf "%d workloads\n" (List.length workloads)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark models (Table I).")
    Term.(const run $ metrics_opt $ suite_filter)

(* ---------------- characterize ---------------- *)

let sketch_budget_opt =
  let doc =
    "Byte budget for the fixed-memory sketch analyzers (split across working-set, \
     reuse, stride, PPM and branch estimators; accuracy is monotone in the budget)."
  in
  Arg.(
    value
    & opt int Mica_sketch.Sketch.default_bytes
    & info [ "sketch-budget" ] ~docv:"BYTES" ~doc)

let sketch_flag =
  let doc =
    "Characterize with the O(1)-memory streaming sketch analyzers instead of the exact \
     tables.  Values are bounded-error estimates ($(b,mica verify) checks the bounds) and \
     bypass the characterization cache."
  in
  Arg.(value & flag & info [ "sketch" ] ~doc)

let characterize_cmd =
  let run config name sketch budget =
    let config =
      if sketch then { config with Mica_core.Pipeline.sketch = Some budget } else config
    in
    let w = resolve name in
    let mica, _, report = Mica_core.Pipeline.datasets_report ~config [ w ] in
    surface_report report;
    if not (Mica_core.Run_report.all_ok report) then exit 1;
    let row = Mica_core.Dataset.row_exn mica (Mica_workloads.Workload.id w) in
    Printf.printf "MICA characteristics of %s (%d instructions%s):\n"
      (Mica_workloads.Workload.id w) config.Mica_core.Pipeline.icount
      (if sketch then Printf.sprintf ", sketch estimates under %d bytes" budget else "");
    Array.iteri
      (fun i v ->
        Printf.printf "%2d  %-12s %14.6f  %s\n" (i + 1)
          Mica_analysis.Characteristics.short_names.(i)
          v
          Mica_analysis.Characteristics.names.(i))
      row
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Measure the 47 microarchitecture-independent characteristics of a workload.")
    Term.(const run $ config_term $ workload_arg 0 $ sketch_flag $ sketch_budget_opt)

(* ---------------- stream ---------------- *)

let stream_cmd =
  let window =
    let doc = "Instructions per tumbling window." in
    Arg.(value & opt int Mica_sketch.Stream.default_window & info [ "window" ] ~docv:"N" ~doc)
  in
  let snapshot_every =
    let doc = "Emit a characteristic-vector snapshot every $(docv) windows." in
    Arg.(value & opt int 1 & info [ "snapshot-every" ] ~docv:"K" ~doc)
  in
  let run config name window snapshot_every budget =
    if window <= 0 || snapshot_every <= 0 then begin
      Printf.eprintf "error: --window and --snapshot-every must be positive\n";
      exit 2
    end;
    let w = resolve name in
    let id = Mica_workloads.Workload.id w in
    let icount = config.Mica_core.Pipeline.icount in
    let plan = Mica_sketch.Sketch.plan ~bytes:budget () in
    let t, snaps =
      Mica_sketch.Stream.run ~window ~snapshot_every
        ~ppm_order:config.Mica_core.Pipeline.ppm_order ~plan w.Mica_workloads.Workload.model
        ~icount
    in
    Printf.printf
      "streaming characterization of %s: %d instructions in %d windows of %d, %d snapshots, \
       %d bytes resident sketch state\n"
      id icount
      (Mica_sketch.Stream.windows t)
      window (Array.length snaps)
      (Mica_sketch.Stream.state_bytes t);
    if Array.length snaps = 0 then exit 0;
    (* Column-normalize the window vectors (the paper's common scale), for
       both the change signal and the online clustering. *)
    let sanitized = ref 0 in
    let vecs =
      Array.map
        (fun (s : Mica_sketch.Stream.snapshot) ->
          Array.map
            (fun v -> if Float.is_finite v then v else (incr sanitized; 0.0))
            s.Mica_sketch.Stream.vector)
        snaps
    in
    if !sanitized > 0 then
      Logs.warn (fun f -> f "%d non-finite window characteristics treated as 0" !sanitized);
    let z = Mica_stats.Normalize.zscore vecs in
    Printf.printf "\n%6s %12s %10s %10s\n" "window" "start" "instrs" "delta";
    Array.iteri
      (fun i (s : Mica_sketch.Stream.snapshot) ->
        let delta =
          if i = 0 then "-"
          else begin
            let acc = ref 0.0 in
            Array.iteri (fun j v -> acc := !acc +. ((v -. z.(i - 1).(j)) ** 2.)) z.(i);
            Printf.sprintf "%.3f" (sqrt !acc)
          end
        in
        Printf.printf "%6d %12d %10d %10s\n" s.Mica_sketch.Stream.index
          s.Mica_sketch.Stream.start_instr s.Mica_sketch.Stream.instructions delta)
      snaps;
    (match Mica_sketch.Stream.decayed t with
    | None -> ()
    | Some d ->
      Printf.printf "\nexponentially-decayed characteristic vector (alpha %.2f):\n"
        Mica_sketch.Stream.default_alpha;
      Array.iteri
        (fun i v ->
          Printf.printf "%2d  %-14s %14.6f\n" (i + 1) Mica_analysis.Extended.short_names.(i) v)
        d);
    (* Live phase detection: cluster the window vectors, assign each
       window online to its nearest centroid, and score the labeling
       against the offline basic-block-vector phase oracle. *)
    if snapshot_every = 1 && Array.length snaps >= 2 then begin
      let oracle =
        Mica_core.Phases.analyze ~interval:window w.Mica_workloads.Workload.model ~icount
      in
      let k = min oracle.Mica_core.Phases.k (Array.length snaps) in
      let km =
        Mica_stats.Kmeans.fit
          ~rng:(Mica_util.Rng.create ~seed:0x57ea3L)
          ~features:Mica_analysis.Extended.short_names ~k z
      in
      let labels = Array.map (Mica_sketch.Stream.assign ~centroids:km.Mica_stats.Kmeans.centroids) z in
      let render_timeline l =
        String.init (Array.length l) (fun i -> Char.chr (Char.code 'A' + (l.(i) mod 26)))
      in
      Printf.printf "\nphase detection (%d-instruction windows):\n" window;
      Printf.printf "  online  (k=%d, sketch vectors):  %s\n" k (render_timeline labels);
      Printf.printf "  oracle  (k=%d, code signatures): %s\n" oracle.Mica_core.Phases.k
        (render_timeline oracle.Mica_core.Phases.assignments);
      Printf.printf "  purity vs oracle: %.3f\n"
        (Mica_sketch.Stream.purity ~labels ~oracle:oracle.Mica_core.Phases.assignments)
    end
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Windowed streaming characterization in fixed memory: per-window characteristic \
          snapshots, an exponentially-decayed summary vector, and live phase detection \
          scored against the offline phase oracle.")
    Term.(const run $ config_term $ workload_arg 0 $ window $ snapshot_every $ sketch_budget_opt)

(* ---------------- counters ---------------- *)

let counters_cmd =
  let run config name =
    let w = resolve name in
    let _, hpc = Mica_core.Pipeline.characterize config w in
    Printf.printf "hardware performance counters of %s (%d instructions):\n"
      (Mica_workloads.Workload.id w) config.Mica_core.Pipeline.icount;
    Array.iteri
      (fun i v ->
        Printf.printf "  %-10s %10.6f  %s\n"
          Mica_uarch.Hw_counters.short_names.(i)
          v
          Mica_uarch.Hw_counters.names.(i))
      hpc
  in
  Cmd.v
    (Cmd.info "counters"
       ~doc:"Measure the hardware-performance-counter metrics of a workload.")
    Term.(const run $ config_term $ workload_arg 0)

(* ---------------- compare (workloads, or run directories) ---------------- *)

(* [PATH] is a run directory when it holds a manifest; the magic basename
   [latest] resolves to the newest run under its parent (CI convenience:
   [mica compare results/baseline runs/latest]).  Arguments that clearly
   meant a run but cannot resolve — empty runs/, dangling latest symlink,
   manifest-less directory — exit 2 with the run-specific reason instead
   of falling through to workload resolution. *)
let resolve_run_path p =
  match Mica_run.Run_dir.resolve p with
  | `Run d -> Some d
  | `Not_run -> None
  | `Error reason ->
    Printf.eprintf "error: %s\n" reason;
    exit 2

(* A run that exists but fails verification (truncated manifest, digest
   mismatch, foreign schema) is an unreadable run: a diagnostic and exit
   2, never an exception. *)
let load_run_or_exit dir =
  match Mica_run.Run_dir.load dir with
  | Ok r -> r
  | Error msg ->
    Printf.eprintf "error: unreadable run: %s\n" msg;
    exit 2

let write_json_report path json =
  Mica_run.Run_io.atomic_write path (Mica_obs.Json.to_string ~pretty:true json ^ "\n")

let tolerance_opt =
  let doc =
    "Relative tolerance for characteristic and counter drift between two run directories \
     (symmetric relative delta; drift in either direction beyond this fails the compare)."
  in
  Arg.(
    value
    & opt float Mica_run.Compare.default_tolerance.Mica_run.Compare.char_rel
    & info [ "tolerance" ] ~docv:"REL" ~doc)

let tolerance_bench_opt =
  let doc =
    "Relative tolerance for bench-time regressions between two run directories.  Ground it \
     in $(b,mica variance) output over repeated runs rather than guessing."
  in
  Arg.(
    value
    & opt float Mica_run.Compare.default_tolerance.Mica_run.Compare.bench_rel
    & info [ "tolerance-bench" ] ~docv:"REL" ~doc)

let json_report_opt =
  let doc = "Also write the comparison/variance report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let compare_runs ~tol a b json_out =
  let ra = load_run_or_exit a and rb = load_run_or_exit b in
  let t = Mica_run.Compare.run ~tol ra rb in
  print_string (Mica_run.Compare.render t);
  Option.iter (fun p -> write_json_report p (Mica_run.Compare.to_json t)) json_out;
  if not (Mica_run.Compare.ok t) then exit 1

let compare_cmd =
  let space =
    let doc = "Which characteristics to compare: 'mica' (Fig. 3) or 'hpc' (Fig. 2)." in
    Arg.(value & opt (enum [ ("mica", `Mica); ("hpc", `Hpc) ]) `Mica & info [ "space" ] ~doc)
  in
  let arg p =
    let doc = "Workload identifier, or a run directory (then both must be run directories)." in
    Arg.(required & pos p (some string) None & info [] ~docv:"WORKLOAD|RUN" ~doc)
  in
  let run config a b space tol_char tol_bench json_out =
    match (resolve_run_path a, resolve_run_path b) with
    | Some ra, Some rb ->
      compare_runs
        ~tol:{ Mica_run.Compare.char_rel = tol_char; bench_rel = tol_bench }
        ra rb json_out
    | Some _, None | None, Some _ ->
      Printf.eprintf "error: to compare run directories, both arguments must be run directories\n";
      exit 2
    | None, None ->
      let wa = resolve a and wb = resolve b in
      let ctx = E.Context.load ~config () in
      let ida = Mica_workloads.Workload.id wa and idb = Mica_workloads.Workload.id wb in
      let cmp =
        match space with
        | `Mica -> E.fig3 ~a:ida ~b:idb ctx
        | `Hpc -> E.fig2 ~a:ida ~b:idb ctx
      in
      print_string (Mica_core.Case_study.render cmp)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two workloads characteristic by characteristic, or two run directories \
          delta by delta (exits nonzero on drift or bench regression).")
    Term.(
      const run $ config_term $ arg 0 $ arg 1 $ space $ tolerance_opt $ tolerance_bench_opt
      $ json_report_opt)

(* ---------------- variance ---------------- *)

let variance_cmd =
  let runs =
    let doc = "Run directories (two or more) produced by the same configuration." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"RUN" ~doc)
  in
  let budget =
    let doc =
      "Noise budget: flag metrics whose run-to-run coefficient of variation exceeds $(docv)."
    in
    Arg.(
      value & opt float Mica_run.Variance.default_budget & info [ "noise-budget" ] ~docv:"CV" ~doc)
  in
  let gate =
    let doc = "Exit nonzero when any metric exceeds the noise budget." in
    Arg.(value & flag & info [ "gate" ] ~doc)
  in
  let run verbose metrics runs budget gate json_out =
    setup_logs verbose;
    setup_metrics metrics;
    let dirs =
      List.map
        (fun p ->
          match resolve_run_path p with
          | Some d -> d
          | None ->
            Printf.eprintf "error: %s is not a run directory\n" p;
            exit 2)
        runs
    in
    if List.length dirs < 2 then begin
      Printf.eprintf "error: variance needs at least two runs\n";
      exit 2
    end;
    let loaded = List.map load_run_or_exit dirs in
    let t = Mica_run.Variance.analyze ~budget loaded in
    print_string (Mica_run.Variance.render t);
    Option.iter (fun p -> write_json_report p (Mica_run.Variance.to_json t)) json_out;
    if gate && Mica_run.Variance.noisy t <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "variance"
       ~doc:
         "Per-metric mean/stddev/CV over N same-config runs, flagging metrics noisier than \
          the budget — the measured ground for $(b,mica compare) tolerances.")
    Term.(const run $ verbose $ metrics_opt $ runs $ budget $ gate $ json_report_opt)

(* ---------------- distance ---------------- *)

let distance_cmd =
  let run config a b =
    let wa = resolve a and wb = resolve b in
    let ctx = E.Context.load ~config () in
    let ida = Mica_workloads.Workload.id wa and idb = Mica_workloads.Workload.id wb in
    let dm = Mica_core.Space.distance_by_name ctx.E.Context.mica_space ida idb in
    let dh = Mica_core.Space.distance_by_name ctx.E.Context.hpc_space ida idb in
    Printf.printf "%s vs %s\n" ida idb;
    Printf.printf "  MICA-space distance: %8.4f  (max over all pairs: %.4f)\n" dm
      (Mica_core.Space.max_distance ctx.E.Context.mica_space);
    Printf.printf "  HPC-space distance:  %8.4f  (max over all pairs: %.4f)\n" dh
      (Mica_core.Space.max_distance ctx.E.Context.hpc_space)
  in
  Cmd.v
    (Cmd.info "distance"
       ~doc:"Distance between two workloads in the MICA and counter spaces.")
    Term.(const run $ config_term $ workload_arg 0 $ workload_arg 1)

(* ---------------- classify ---------------- *)

let classify_cmd =
  let frac =
    let doc = "Threshold as a fraction of the maximum distance." in
    Arg.(value & opt float 0.2 & info [ "threshold" ] ~docv:"FRAC" ~doc)
  in
  let run config frac =
    let ctx = E.Context.load ~config () in
    let counts = E.table3 ~frac ctx in
    print_string (E.render_table3 counts)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify all benchmark tuples (Table III).")
    Term.(const run $ config_term $ frac)

(* ---------------- select-ga ---------------- *)

let select_ga_cmd =
  let seed =
    let doc = "Random seed for the genetic algorithm." in
    Arg.(value & opt int64 0x6A5EEDL & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let generations =
    let doc = "Maximum generations." in
    Arg.(
      value
      & opt int Select.Genetic.default_config.Select.Genetic.max_generations
      & info [ "generations" ] ~docv:"G" ~doc)
  in
  let run config seed generations =
    (* The GA seed is invocation state the manifest must carry. *)
    let config =
      {
        config with
        Mica_core.Pipeline.run =
          Option.map
            (fun s ->
              { s with Mica_core.Pipeline.run_seeds = [ ("ga", Printf.sprintf "0x%Lx" seed) ] })
            config.Mica_core.Pipeline.run;
      }
    in
    let ctx = E.Context.load ~config () in
    (* Graceful degradation: the table is computed over the surviving
       workloads; failures are named on stderr. *)
    surface_report ctx.E.Context.report;
    let ga_config =
      { Select.Genetic.default_config with Select.Genetic.max_generations = generations }
    in
    let ga = E.run_ga ~config:ga_config ~seed ctx in
    print_string (E.render_table4 ga)
  in
  Cmd.v
    (Cmd.info "select-ga"
       ~doc:"Select key characteristics with the genetic algorithm (Table IV).")
    Term.(const run $ config_term $ seed $ generations)

(* ---------------- select-ce ---------------- *)

let select_ce_cmd =
  let keep =
    let doc = "Print the subset retained at this size." in
    Arg.(value & opt int 8 & info [ "keep" ] ~docv:"K" ~doc)
  in
  let run config keep =
    let ctx = E.Context.load ~config () in
    let steps = E.run_ce ctx in
    List.iter
      (fun (s : Select.Correlation_elimination.step) ->
        Printf.printf "remove %-12s (avg |r| %.3f) -> %2d left, rho %.3f\n"
          Mica_analysis.Characteristics.short_names.(s.Select.Correlation_elimination.removed)
          s.Select.Correlation_elimination.avg_abs_corr
          (Array.length s.Select.Correlation_elimination.remaining)
          s.Select.Correlation_elimination.rho)
      steps;
    match Select.Correlation_elimination.subset_of_size steps keep with
    | subset ->
      Printf.printf "\nretained at %d:\n" keep;
      Array.iter (fun c -> Printf.printf "  %s\n" Mica_analysis.Characteristics.names.(c)) subset
    | exception Not_found -> ()
  in
  Cmd.v
    (Cmd.info "select-ce" ~doc:"Reduce characteristics by correlation elimination.")
    Term.(const run $ config_term $ keep)

(* ---------------- cluster ---------------- *)

let cluster_cmd =
  let k_max =
    let doc = "Maximum K for the BIC sweep." in
    Arg.(value & opt int 70 & info [ "k-max" ] ~docv:"K" ~doc)
  in
  let all_chars =
    let doc = "Cluster on all 47 characteristics instead of the GA-selected key ones." in
    Arg.(value & flag & info [ "all-characteristics" ] ~doc)
  in
  let run config k_max all_chars =
    let ctx = E.Context.load ~config () in
    let selected =
      if all_chars then Array.init Mica_analysis.Characteristics.count Fun.id
      else (E.run_ga ctx).Select.Genetic.selected
    in
    let f = E.fig6 ~k_max ctx ~selected in
    print_string (E.render_fig6 f)
  in
  Cmd.v
    (Cmd.info "cluster" ~doc:"Cluster all workloads on key characteristics (Figure 6).")
    Term.(const run $ config_term $ k_max $ all_chars)

(* ---------------- kiviat ---------------- *)

let kiviat_cmd =
  let run config name =
    let w = resolve name in
    let ctx = E.Context.load ~config () in
    let ga = E.run_ga ctx in
    let reduced =
      Mica_core.Dataset.select_features ctx.E.Context.mica ga.Select.Genetic.selected
    in
    let unit = Mica_stats.Normalize.unit_range reduced.Mica_core.Dataset.data in
    match Mica_core.Dataset.row_index reduced (Mica_workloads.Workload.id w) with
    | None ->
      Printf.eprintf "error: workload missing from dataset\n";
      exit 1
    | Some i ->
      Printf.printf "%s over the key characteristics (unit-scaled):\n"
        (Mica_workloads.Workload.id w);
      print_string
        (Mica_core.Kiviat.text ~axes:reduced.Mica_core.Dataset.features ~values:unit.(i))
  in
  Cmd.v
    (Cmd.info "kiviat" ~doc:"Kiviat view of one workload over the key characteristics.")
    Term.(const run $ config_term $ workload_arg 0)

(* ---------------- place ---------------- *)

let place_cmd =
  let spec_file =
    let doc = "Workload spec file (see Mica_workloads.Spec_file for the format)." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)
  in
  let example =
    let doc = "Print an example spec file and exit." in
    Arg.(value & flag & info [ "example" ] ~doc)
  in
  let run config spec_file example =
    if example then print_string Mica_workloads.Spec_file.example
    else
      let spec_file =
        match spec_file with
        | Some f -> f
        | None ->
          Printf.eprintf "error: SPEC argument required (or use --example)\n";
          exit 2
      in
      match Mica_workloads.Spec_file.load spec_file with
      | Error msg ->
        Printf.eprintf "error: %s: %s\n" spec_file msg;
        exit 2
      | Ok program ->
        Printf.printf "characterizing %s (%d instructions)...\n%!" program.Mica_trace.Program.name
          config.Mica_core.Pipeline.icount;
        let vector =
          Mica_analysis.Analyzer.analyze program ~icount:config.Mica_core.Pipeline.icount
        in
        let ctx = E.Context.load ~config () in
        let space = ctx.E.Context.mica_space in
        let distances = Mica_core.Space.distances_from space vector in
        let order = Array.init (Array.length distances) Fun.id in
        Array.sort (fun a b -> compare distances.(a) distances.(b)) order;
        Printf.printf "nearest benchmarks in the inherent-behaviour space:\n";
        for rank = 0 to min 9 (Array.length order - 1) do
          let i = order.(rank) in
          Printf.printf "  %2d. %-45s %8.3f\n" (rank + 1)
            ctx.E.Context.mica.Mica_core.Dataset.names.(i)
            distances.(i)
        done;
        let max_d = Mica_core.Space.max_distance space in
        Printf.printf "(20%% similarity threshold: %.3f)\n" (0.2 *. max_d)
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:"Characterize a custom workload spec and place it among the 122 benchmarks.")
    Term.(const run $ config_term $ spec_file $ example)

(* ---------------- dendrogram ---------------- *)

let dendrogram_cmd =
  let cut =
    let doc = "Also print the clusters obtained by cutting into K groups." in
    Arg.(value & opt (some int) None & info [ "cut" ] ~docv:"K" ~doc)
  in
  let all_chars =
    let doc = "Use all 47 characteristics instead of the GA-selected key ones." in
    Arg.(value & flag & info [ "all-characteristics" ] ~doc)
  in
  let run config cut all_chars =
    let ctx = E.Context.load ~config () in
    let dataset =
      if all_chars then ctx.E.Context.mica
      else
        Mica_core.Dataset.select_features ctx.E.Context.mica
          (E.run_ga ctx).Select.Genetic.selected
    in
    let d = Mica_core.Dendrogram.build dataset in
    print_string (Mica_core.Dendrogram.render ~max_depth:7 d);
    match cut with
    | None -> ()
    | Some k ->
      Printf.printf "\ncut into %d clusters:\n" k;
      List.iter
        (fun (c, members) ->
          Printf.printf "cluster %d (%d):\n" (c + 1) (Array.length members);
          Array.iter (fun m -> Printf.printf "  %s\n" m) members)
        (Mica_core.Dendrogram.clusters_at d ~k)
  in
  Cmd.v
    (Cmd.info "dendrogram"
       ~doc:"Hierarchical clustering view of benchmark similarity (prior-work style).")
    Term.(const run $ config_term $ cut $ all_chars)

(* ---------------- phases ---------------- *)

let phases_cmd =
  let interval =
    let doc = "Instructions per phase-analysis interval." in
    Arg.(value & opt int 10_000 & info [ "interval" ] ~docv:"N" ~doc)
  in
  let run config name interval =
    let w = resolve name in
    let t =
      Mica_core.Phases.analyze ~interval w.Mica_workloads.Workload.model
        ~icount:config.Mica_core.Pipeline.icount
    in
    Printf.printf "phase analysis of %s:\n%s" (Mica_workloads.Workload.id w)
      (Mica_core.Phases.render t)
  in
  Cmd.v
    (Cmd.info "phases"
       ~doc:"SimPoint-style phase classification of one workload's execution.")
    Term.(const run $ config_term $ workload_arg 0 $ interval)

(* ---------------- pca ---------------- *)

let pca_cmd =
  let run config =
    let ctx = E.Context.load ~config () in
    let ga = E.run_ga ctx in
    print_string (Mica_core.Pca_comparison.render (Mica_core.Pca_comparison.run ctx ~ga))
  in
  Cmd.v
    (Cmd.info "pca" ~doc:"Compare the PCA prior-work baseline against the GA selection.")
    Term.(const run $ config_term)

(* ---------------- subset ---------------- *)

let load_store path =
  match Mica_core.Dataset_store.load path with
  | Ok t -> t
  | Error e ->
    Printf.eprintf "error: %s: %s\n" path (Mica_run.Run_io.describe_error e);
    exit 2

let subset_cmd =
  let k =
    let doc = "Size of the reduced benchmark suite." in
    Arg.(value & opt int 15 & info [ "k" ] ~docv:"K" ~doc)
  in
  let dataset_bin =
    let doc =
      "Subset this stored corpus dataset instead of the 122-benchmark registry, using \
       the scalable on-demand k-center (no O(n^2) distance matrix)."
    in
    Arg.(value & opt (some string) None & info [ "dataset-bin" ] ~docv:"FILE" ~doc)
  in
  let run config k dataset_bin =
    match dataset_bin with
    | Some path ->
      let store = load_store path in
      let module Colmat = Mica_stats.Colmat in
      let z = Colmat.zscore store.Mica_core.Dataset_store.data in
      let t = Mica_core.Subsetting.k_center_scalable z ~k in
      let names = store.Mica_core.Dataset_store.names in
      Printf.printf
        "reduced suite of %d of %d members (covering radius %.3f, mean distance %.3f):\n"
        (Array.length t.Mica_core.Subsetting.chosen)
        (Colmat.rows z) t.Mica_core.Subsetting.max_distance
        t.Mica_core.Subsetting.mean_distance;
      Array.iter (fun c -> Printf.printf "* %s\n" names.(c)) t.Mica_core.Subsetting.chosen
    | None ->
      let ctx = E.Context.load ~config () in
      let ga = E.run_ga ctx in
      let reduced =
        Mica_core.Dataset.select_features ctx.E.Context.mica ga.Select.Genetic.selected
      in
      let space = Mica_core.Space.of_dataset reduced in
      let t = Mica_core.Subsetting.k_center space ~k in
      print_string (Mica_core.Subsetting.render space t)
  in
  Cmd.v
    (Cmd.info "subset" ~doc:"Pick a reduced benchmark suite that covers the workload space.")
    Term.(const run $ config_term $ k $ dataset_bin)

(* ---------------- corpus / knn (scale layer) ---------------- *)

let corpus_cmd =
  let size =
    let doc = "Number of corpus members to generate." in
    Arg.(value & opt int 1024 & info [ "size" ] ~docv:"N" ~doc)
  in
  let anchors =
    let doc = "Characterized anchor members per family." in
    Arg.(value & opt int 4 & info [ "anchors" ] ~docv:"A" ~doc)
  in
  let anchor_icount =
    let doc = "Trace length for anchor characterization." in
    Arg.(value & opt int 50_000 & info [ "anchor-icount" ] ~docv:"N" ~doc)
  in
  let out =
    let doc = "Write the corpus as a columnar binary dataset store." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let csv =
    let doc = "Also write the corpus as CSV (lossless round-trip of the binary)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let run config size anchors anchor_icount out csv =
    let ds = Mica_core.Corpus_gen.generate ~anchors ~icount:anchor_icount ~size () in
    Option.iter
      (fun path ->
        Mica_core.Dataset_store.write path ds;
        Printf.printf "wrote %s (%dx%d binary columnar)\n" path (Mica_core.Dataset.rows ds)
          (Mica_core.Dataset.cols ds))
      out;
    Option.iter
      (fun path ->
        Mica_core.Dataset.to_csv ds path;
        Printf.printf "wrote %s\n" path)
      csv;
    (* commit a run directory so CI can gate regenerated corpora with
       [mica compare] — mica table only; compare notes the absent
       counters table instead of failing *)
    (match config.Mica_core.Pipeline.run with
    | None -> ()
    | Some sink ->
      let module R = Mica_run.Run_dir in
      let manifest =
        {
          Mica_run.Manifest.schema = Mica_run.Manifest.schema_version;
          created = R.timestamp ();
          tag = sink.Mica_core.Pipeline.run_tag;
          subcommand = sink.Mica_core.Pipeline.run_tag;
          argv = Array.to_list Sys.argv;
          git_rev = Mica_run.Run_io.git_rev ();
          icount = anchor_icount;
          ppm_order = config.Mica_core.Pipeline.ppm_order;
          jobs = config.Mica_core.Pipeline.jobs;
          retries = config.Mica_core.Pipeline.retries;
          cache = false;
          mica_jobs_env = Sys.getenv_opt "MICA_JOBS";
          fault_spec = Option.map Mica_util.Fault.to_string (Mica_util.Fault.installed ());
          seeds = [ ("corpus-version", string_of_int Mica_workloads.Corpus.version) ];
          workloads = Mica_core.Dataset.rows ds;
          report = "";
          files = [];
        }
      in
      let table =
        {
          R.row_names = ds.Mica_core.Dataset.names;
          columns = ds.Mica_core.Dataset.features;
          cells = ds.Mica_core.Dataset.data;
        }
      in
      let artifacts =
        [
          { R.filename = R.mica_file; contents = R.csv_of_table table };
          {
            R.filename = R.metrics_file;
            contents = Mica_obs.Obs.to_json (Mica_obs.Obs.snapshot ());
          };
        ]
      in
      (match R.commit ~root:sink.Mica_core.Pipeline.run_root ~manifest ~artifacts () with
      | dir -> Printf.printf "committed run %s\n" dir
      | exception Sys_error _ ->
        Logs.warn (fun f -> f "run directory commit failed; results are unaffected")));
    let per_family = (size + 2) / 3 in
    Printf.printf "corpus: %d members x %d characteristics (%d families, <=%d each, %d anchors)\n"
      size (Mica_core.Dataset.cols ds)
      (List.length Mica_workloads.Corpus.families)
      per_family anchors
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Generate a parameter-sweep corpus dataset (anchored synthesis over the gen/* \
          workload families) and optionally store it in binary columnar form.")
    Term.(const run $ config_term $ size $ anchors $ anchor_icount $ out $ csv)

let knn_cmd =
  let k =
    let doc = "Number of nearest neighbours." in
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)
  in
  let budget =
    let doc = "ANN candidate budget (exactly re-ranked candidates); default 4k." in
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)
  in
  let exact =
    let doc = "Use the exact linear scan instead of the ANN index." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let range =
    let doc = "Range query: all rows within $(docv) (normalized space) instead of kNN." in
    Arg.(value & opt (some float) None & info [ "range" ] ~docv:"RADIUS" ~doc)
  in
  let check_recall =
    let doc = "Also run the exact scan and report ANN recall." in
    Arg.(value & flag & info [ "check-recall" ] ~doc)
  in
  let cells =
    let doc = "ANN index cell count (default sqrt n)." in
    Arg.(value & opt (some int) None & info [ "cells" ] ~docv:"N" ~doc)
  in
  let proj_dims =
    let doc = "ANN projection dimensions (default 8)." in
    Arg.(value & opt (some int) None & info [ "proj-dims" ] ~docv:"D" ~doc)
  in
  let query_arg =
    let doc = "Query row: a workload id from the dataset, or a 0-based row index." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let dataset_bin_req =
    let doc = "Columnar binary dataset (written by $(b,mica corpus --out))." in
    Arg.(required & opt (some string) None & info [ "dataset-bin" ] ~docv:"FILE" ~doc)
  in
  let run verbose metrics path query k budget exact range check_recall cells proj_dims =
    setup_logs verbose;
    setup_metrics metrics;
    let store = load_store path in
    let module Colmat = Mica_stats.Colmat in
    let module Ann = Mica_stats.Ann in
    let z = Colmat.zscore store.Mica_core.Dataset_store.data in
    let names = store.Mica_core.Dataset_store.names in
    let qi =
      match int_of_string_opt query with
      | Some i when i >= 0 && i < Array.length names -> i
      | Some i ->
        Printf.eprintf "error: row %d out of range (dataset has %d rows)\n" i
          (Array.length names);
        exit 2
      | None -> (
        match Array.find_index (String.equal query) names with
        | Some i -> i
        | None ->
          Printf.eprintf "error: no row named %S in %s\n" query path;
          exit 2)
    in
    let q = Colmat.row z qi in
    let index = if exact then None else Some (Ann.build ?cells ?proj_dims z) in
    let strip ns =
      (* the query row itself is always its own nearest neighbour *)
      Array.of_list (List.filter (fun n -> n.Ann.index <> qi) (Array.to_list ns))
    in
    let results =
      match (range, index) with
      | Some radius, Some idx -> strip (Ann.range idx ~radius q)
      | Some radius, None -> strip (Ann.exact_range z ~radius q)
      | None, Some idx -> strip (Ann.knn ?budget idx ~k:(k + 1) q)
      | None, None -> strip (Ann.exact_knn z ~k:(k + 1) q)
    in
    let results =
      if range = None && Array.length results > k then Array.sub results 0 k else results
    in
    (match index with
    | Some idx ->
      Printf.printf "# ann index: %d cells, %d projection dims over %d rows\n"
        (Ann.cell_count idx) (Ann.proj_dims idx) (Ann.size idx)
    | None -> Printf.printf "# exact linear scan over %d rows\n" (Colmat.rows z));
    Printf.printf "# query: %s\n" names.(qi);
    Array.iter (fun n -> Printf.printf "%-40s %.6f\n" names.(n.Ann.index) n.Ann.distance) results;
    if check_recall then begin
      let exact_ns =
        match range with
        | Some radius -> strip (Ann.exact_range z ~radius q)
        | None -> Array.sub (strip (Ann.exact_knn z ~k:(k + 1) q)) 0 (min k (Colmat.rows z - 1))
      in
      let r = Ann.recall ~exact:exact_ns ~approx:results in
      Printf.printf "recall vs exact: %.4f (%d/%d)\n" r
        (int_of_float (r *. float_of_int (Array.length exact_ns)))
        (Array.length exact_ns);
      if r < Mica_verify.Approx.min_recall && index <> None then begin
        Printf.eprintf "error: recall %.4f below the %.2f acceptance bound\n" r
          Mica_verify.Approx.min_recall;
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "knn"
       ~doc:
         "Nearest-neighbour and range queries over a stored corpus dataset, via the ANN \
          index (default) or the exact scan.")
    Term.(
      const run $ verbose $ metrics_opt $ dataset_bin_req $ query_arg $ k $ budget $ exact
      $ range $ check_recall $ cells $ proj_dims)

(* ---------------- predict ---------------- *)

let predict_cmd =
  let k =
    let doc = "Number of nearest neighbours." in
    Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc)
  in
  let run config k =
    let ctx = E.Context.load ~config () in
    print_string (Mica_core.Prediction.render (Mica_core.Prediction.evaluate_counters ~k ctx))
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Leave-one-out machine-metric prediction from inherent similarity.")
    Term.(const run $ config_term $ k)

(* ---------------- dump-trace / characterize-trace ---------------- *)

let format_arg =
  let doc = "Trace format: 'text' or 'binary'." in
  Arg.(value & opt (enum [ ("text", `Text); ("binary", `Binary) ]) `Text & info [ "format" ] ~doc)

let dump_trace_cmd =
  let output =
    let doc = "Output file." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run config name output format =
    let w = resolve name in
    let icount = config.Mica_core.Pipeline.icount in
    let n =
      match format with
      | `Text -> Mica_trace.Trace_io.write_text ~path:output w.Mica_workloads.Workload.model ~icount
      | `Binary ->
        Mica_trace.Trace_io.write_binary ~path:output w.Mica_workloads.Workload.model ~icount
    in
    Printf.printf "wrote %d instructions of %s to %s\n" n (Mica_workloads.Workload.id w) output
  in
  Cmd.v
    (Cmd.info "dump-trace" ~doc:"Record a workload's dynamic instruction trace to a file.")
    Term.(const run $ config_term $ workload_arg 0 $ output $ format_arg)

let characterize_trace_cmd =
  let input =
    let doc = "Trace file recorded with dump-trace." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let run metrics input format =
    setup_metrics metrics;
    let analyzer = Mica_analysis.Analyzer.create () in
    let sink = Mica_analysis.Analyzer.sink analyzer in
    let n =
      match format with
      | `Text -> Mica_trace.Trace_io.replay_text ~path:input ~sink
      | `Binary -> Mica_trace.Trace_io.replay_binary ~path:input ~sink
    in
    Printf.printf "MICA characteristics from %s (%d recorded instructions):\n" input n;
    Array.iteri
      (fun i v ->
        Printf.printf "%2d  %-12s %14.6f\n" (i + 1)
          Mica_analysis.Characteristics.short_names.(i)
          v)
      (Mica_analysis.Analyzer.vector analyzer)
  in
  Cmd.v
    (Cmd.info "characterize-trace"
       ~doc:"Measure the 47 characteristics from a recorded trace file.")
    Term.(const run $ metrics_opt $ input $ format_arg)

(* ---------------- machines / locality / simpoint ---------------- *)

let machines_cmd =
  let run config =
    let ctx = E.Context.load ~config () in
    print_string (Mica_core.Machines.render (Mica_core.Machines.run ctx))
  in
  Cmd.v
    (Cmd.info "machines"
       ~doc:"Test whether counter-based similarity transfers across machine models.")
    Term.(const run $ config_term)

(* ---------------- fleet / calibrate ---------------- *)

let machines_dir =
  let doc = "Directory of declarative machine descriptions (*.json)." in
  Arg.(value & opt string "machines" & info [ "machines" ] ~docv:"DIR" ~doc)

let load_machines dir =
  match Mica_uarch.Machine_desc.load_dir dir with
  | Ok named -> List.map snd named
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2

let commit_run ~config ~icount ~workloads ~seeds ~artifacts =
  match config.Mica_core.Pipeline.run with
  | None -> None
  | Some sink -> (
    let module R = Mica_run.Run_dir in
    let manifest =
      {
        Mica_run.Manifest.schema = Mica_run.Manifest.schema_version;
        created = R.timestamp ();
        tag = sink.Mica_core.Pipeline.run_tag;
        subcommand = sink.Mica_core.Pipeline.run_tag;
        argv = Array.to_list Sys.argv;
        git_rev = Mica_run.Run_io.git_rev ();
        icount;
        ppm_order = config.Mica_core.Pipeline.ppm_order;
        jobs = config.Mica_core.Pipeline.jobs;
        retries = config.Mica_core.Pipeline.retries;
        cache = false;
        mica_jobs_env = Sys.getenv_opt "MICA_JOBS";
        fault_spec = Option.map Mica_util.Fault.to_string (Mica_util.Fault.installed ());
        seeds;
        workloads;
        report = "";
        files = [];
      }
    in
    let artifacts =
      artifacts
      @ [
          {
            R.filename = R.metrics_file;
            contents = Mica_obs.Obs.to_json (Mica_obs.Obs.snapshot ());
          };
        ]
    in
    match R.commit ~root:sink.Mica_core.Pipeline.run_root ~manifest ~artifacts () with
    | dir ->
      Printf.printf "committed run %s\n" dir;
      Some dir
    | exception Sys_error _ ->
      Logs.warn (fun f -> f "run directory commit failed; results are unaffected");
      None)

let fleet_cmd =
  let report_flag =
    let doc =
      "Also build each machine's counter space and report benchmark-distance \
       correlations: machine vs machine, and each machine vs the \
       microarchitecture-independent space."
    in
    Arg.(value & flag & info [ "report" ] ~doc)
  in
  let workload_names =
    let doc = "Characterize these workloads only (repeatable; default: full registry)." in
    Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc)
  in
  let run config dir report_flag names =
    let configs = load_machines dir in
    let workloads =
      match names with
      | [] -> Mica_workloads.Registry.all
      | names -> List.map resolve names
    in
    let icount = config.Mica_core.Pipeline.icount in
    let fleet =
      Mica_core.Fleet.characterize ~jobs:config.Mica_core.Pipeline.jobs ~configs ~icount
        workloads
    in
    Printf.printf "fleet: %d workloads x %d machines x %d counters (icount %d)\n"
      (Array.length fleet.Mica_core.Fleet.workload_ids)
      (Array.length fleet.Mica_core.Fleet.machine_names)
      (Array.length fleet.Mica_core.Fleet.metric_names)
      icount;
    let report_text =
      if not report_flag then None
      else begin
        let ctx = E.Context.load ~config ~workloads () in
        let r =
          Mica_core.Fleet.report ~mica:ctx.E.Context.mica_space ~hpc:ctx.E.Context.hpc_space
            fleet
        in
        let text = Mica_core.Fleet.render_report r in
        print_string text;
        Some text
      end
    in
    let module R = Mica_run.Run_dir in
    let artifacts =
      { R.filename = "fleet.csv";
        contents = R.csv_of_table (Mica_core.Fleet.to_table fleet) }
      :: (match report_text with
         | Some text -> [ { R.filename = "report.txt"; contents = text } ]
         | None -> [])
    in
    ignore
      (commit_run ~config ~icount
         ~workloads:(Array.length fleet.Mica_core.Fleet.workload_ids)
         ~seeds:[ ("machines-dir", dir) ]
         ~artifacts)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Characterize the corpus against every machine description in a directory — one \
          generated trace per workload fanned out to all machine models in a single pass \
          — and commit the NxM counter matrix to a run directory.")
    Term.(const run $ config_term $ machines_dir $ report_flag $ workload_names)

let calibrate_cmd =
  let check =
    let doc = "CI gate: exit nonzero if any counter falls outside its envelope." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let cal_icount =
    let doc = "Dynamic instructions per baseline kernel trace." in
    Arg.(
      value
      & opt int Mica_uarch.Baseline.default_icount
      & info [ "icount"; "n" ] ~docv:"N" ~doc)
  in
  let run verbose metrics no_run runs_root run_tag dir check icount =
    setup_logs verbose;
    setup_metrics metrics;
    let configs = load_machines dir in
    let outcomes = Mica_uarch.Baseline.run_all ~icount configs in
    let text = Mica_uarch.Baseline.render outcomes in
    print_string text;
    let config =
      {
        Mica_core.Pipeline.default_config with
        icount;
        run =
          (if no_run then None
           else
             Some
               {
                 Mica_core.Pipeline.run_root = runs_root;
                 run_tag = Option.value run_tag ~default:"calibrate";
                 run_seeds = [];
               });
      }
    in
    let module R = Mica_run.Run_dir in
    ignore
      (commit_run ~config ~icount
         ~workloads:(List.length Mica_uarch.Baseline.kernel_names)
         ~seeds:[ ("machines-dir", dir) ]
         ~artifacts:[ { R.filename = "calibrate.txt"; contents = text } ]);
    if not (Mica_uarch.Baseline.passed outcomes) then begin
      Printf.eprintf "calibration failed: %d counter(s) out of envelope\n"
        (List.length (Mica_uarch.Baseline.failures outcomes));
      if check then exit 1
    end
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Run the calibrated micro-benchmark baseline suite (stream, dgemm, chase, \
          torture) against every machine description and check the six counters of each \
          machine against analytically derived envelopes.  With $(b,--check), any \
          out-of-envelope counter exits nonzero (the CI gate).")
    Term.(
      const run $ verbose $ metrics_opt $ no_run $ runs_root $ run_tag $ machines_dir $ check
      $ cal_icount)

let locality_cmd =
  let run config =
    let ctx = E.Context.load ~config () in
    print_string (Mica_core.Locality.render (Mica_core.Locality.run ctx))
  in
  Cmd.v
    (Cmd.info "locality" ~doc:"Temporal-locality (reuse distance) comparison across suites.")
    Term.(const run $ config_term)

let simpoint_cmd =
  let interval =
    let doc = "Instructions per interval." in
    Arg.(value & opt int 10_000 & info [ "interval" ] ~docv:"N" ~doc)
  in
  let run config name interval =
    let w = resolve name in
    let t = Mica_core.Simpoint.validate ~interval w ~icount:config.Mica_core.Pipeline.icount in
    print_string (Mica_core.Simpoint.render [ (Mica_workloads.Workload.id w, t) ])
  in
  Cmd.v
    (Cmd.info "simpoint"
       ~doc:"Validate SimPoint-style sampled simulation on one workload.")
    Term.(const run $ config_term $ workload_arg 0 $ interval)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let quick =
    let doc = "Reduced trace lengths (CI-friendly; well under 30 seconds)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let workload_names =
    let doc =
      "Verify these workloads instead of the default contrasting trio (repeatable)."
    in
    Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc)
  in
  let run verbose quick metrics names =
    setup_logs verbose;
    setup_metrics metrics;
    let workloads =
      match names with [] -> None | names -> Some (List.map resolve names)
    in
    let report =
      Mica_verify.Suite.run
        ~level:(if quick then Mica_verify.Suite.Quick else Mica_verify.Suite.Full)
        ?workloads ()
    in
    print_string (Mica_verify.Suite.render report);
    if not (Mica_verify.Suite.passed report) then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the oracle suite: stream invariants, naive reference analyzers and \
          metamorphic pipeline laws.  Exits nonzero on any violation.")
    Term.(const run $ verbose $ quick $ metrics_opt $ workload_names)

(* ---------------- profile ---------------- *)

module Obs = Mica_obs.Obs

(* Spans every run of the given stage must have produced.  [--check] (the
   CI smoke contract) fails if any is missing or any registered metric is
   non-finite or a negative counter. *)
let profile_expected_spans stage =
  let characterize =
    [
      "pipeline.characterize";
      "trace.gen";
      "analyzer.mix";
      "analyzer.ilp";
      "analyzer.regtraffic";
      "analyzer.working_set";
      "analyzer.strides";
      "analyzer.ppm";
    ]
  in
  characterize
  @
  match stage with
  | `Characterize | `Classify -> []
  | `Ga -> [ "select.ga" ]
  | `Ce -> [ "select.ce" ]
  | `Cluster -> [ "select.ga"; "stats.kmeans"; "cluster.bic" ]

let profile_check stage (snap : Obs.snapshot) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun name ->
      match List.assoc_opt name snap.Obs.spans with
      | None -> err "required span %S was never recorded" name
      | Some s ->
        if s.Obs.sp_count <= 0 then err "span %S has count %d" name s.Obs.sp_count;
        if not (Float.is_finite s.Obs.sp_total_s && Float.is_finite s.Obs.sp_self_s) then
          err "span %S has non-finite time" name)
    (profile_expected_spans stage);
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Counter c ->
        if not (Float.is_finite c) then err "counter %S is non-finite (%g)" name c
        else if c < 0.0 then err "counter %S is negative (%g)" name c
      | Obs.Gauge g -> if not (Float.is_finite g) then err "gauge %S is non-finite (%g)" name g
      | Obs.Histogram h ->
        if not (Float.is_finite h.Obs.h_sum) then err "histogram %S has non-finite sum" name)
    snap.Obs.metrics;
  List.rev !errors

(* The per-stage table: like bench/probe.ml's, but computed from the span
   statistics of any real run instead of a dedicated micro-harness. *)
let render_profile ~wall (snap : Obs.snapshot) =
  let counter name =
    match List.assoc_opt name snap.Obs.metrics with Some (Obs.Counter c) -> c | _ -> 0.0
  in
  let throughput name (s : Obs.span_stat) =
    let rate unit amount =
      if s.Obs.sp_total_s <= 0.0 then "-"
      else Printf.sprintf "%11.3e %s" (amount /. s.Obs.sp_total_s) unit
    in
    match name with
    | "trace.gen" -> rate "instr/s" (counter "trace.instrs")
    | "analyzer.mix" | "analyzer.ilp" | "analyzer.regtraffic" | "analyzer.working_set"
    | "analyzer.strides" | "analyzer.ppm" ->
      rate "instr/s" (counter "trace.instrs")
    | "pipeline.characterize" -> rate "workload/s" (float_of_int s.Obs.sp_count)
    | "select.ga" -> rate "gen/s" (counter "ga.generations")
    | "stats.kmeans" -> rate "iter/s" (counter "kmeans.iterations")
    | _ -> "-"
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-24s %8s %10s %6s %10s %11s  %s\n" "span" "count" "total(ms)" "%"
       "self(ms)" "minor(Mw)" "throughput");
  let spans =
    List.sort (fun (_, a) (_, b) -> compare b.Obs.sp_total_s a.Obs.sp_total_s) snap.Obs.spans
  in
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf "%-24s %8d %10.2f %6.1f %10.2f %11.3f  %s\n" name s.Obs.sp_count
           (1e3 *. s.Obs.sp_total_s)
           (if wall > 0.0 then 100.0 *. s.Obs.sp_total_s /. wall else 0.0)
           (1e3 *. s.Obs.sp_self_s)
           (s.Obs.sp_minor_words /. 1e6)
           (throughput name s)))
    spans;
  Buffer.contents b

let profile_cmd =
  let stage =
    let stages =
      [
        ("characterize", `Characterize);
        ("classify", `Classify);
        ("select-ga", `Ga);
        ("select-ce", `Ce);
        ("cluster", `Cluster);
      ]
    in
    let doc =
      "Pipeline stage to profile: characterize, classify, select-ga, select-ce or cluster."
    in
    Arg.(required & pos 0 (some (enum stages)) None & info [] ~docv:"STAGE" ~doc)
  in
  let quick =
    let doc = "Small workload subset and short traces (CI-friendly)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let check =
    let doc =
      "Validate the snapshot: fail if any required span is missing or any registered \
       counter is NaN or negative."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run config quick check stage =
    Obs.set_enabled true;
    (* Profile real work, not cache reads: caching is disabled so every
       stage below the one being profiled actually executes. *)
    let config =
      {
        config with
        Mica_core.Pipeline.cache_dir = None;
        progress = false;
        icount = (if quick then min config.Mica_core.Pipeline.icount 5_000 else config.Mica_core.Pipeline.icount);
      }
    in
    let workloads =
      if quick then
        List.filteri (fun i _ -> i < 12) Mica_workloads.Registry.all
      else Mica_workloads.Registry.all
    in
    let t0 = Unix.gettimeofday () in
    (match stage with
    | `Characterize ->
      let _, _, report = Mica_core.Pipeline.datasets_report ~config workloads in
      surface_report report;
      let timings = Mica_core.Run_report.timings report in
      let timings =
        List.sort
          (fun (_, a) (_, b) ->
            compare b.Mica_core.Run_report.elapsed_s a.Mica_core.Run_report.elapsed_s)
          timings
      in
      Printf.printf "slowest workloads:\n";
      List.iteri
        (fun i (id, tm) ->
          if i < 5 then
            Printf.printf "  %-45s %8.2f ms %10.3f Mw\n" id
              (1e3 *. tm.Mica_core.Run_report.elapsed_s)
              (tm.Mica_core.Run_report.minor_words /. 1e6))
        timings;
      print_newline ()
    | `Classify ->
      let ctx = E.Context.load ~config ~workloads () in
      ignore (E.table3 ctx)
    | `Ga ->
      let ctx = E.Context.load ~config ~workloads () in
      let ga_config =
        if quick then
          { Select.Genetic.default_config with Select.Genetic.max_generations = 12 }
        else Select.Genetic.default_config
      in
      ignore (E.run_ga ~config:ga_config ctx)
    | `Ce ->
      let ctx = E.Context.load ~config ~workloads () in
      ignore (E.run_ce ctx)
    | `Cluster ->
      let ctx = E.Context.load ~config ~workloads () in
      let ga_config =
        if quick then
          { Select.Genetic.default_config with Select.Genetic.max_generations = 12 }
        else Select.Genetic.default_config
      in
      let ga = E.run_ga ~config:ga_config ctx in
      ignore (E.fig6 ~k_max:(if quick then 6 else 70) ctx ~selected:ga.Select.Genetic.selected));
    let wall = Unix.gettimeofday () -. t0 in
    let snap = Obs.snapshot () in
    Printf.printf "stage profile (wall %.3f s, %d workloads, %d instructions each):\n%s" wall
      (List.length workloads) config.Mica_core.Pipeline.icount
      (render_profile ~wall snap);
    if check then begin
      match profile_check stage snap with
      | [] -> Printf.printf "check: ok\n"
      | errors ->
        List.iter (fun e -> Printf.eprintf "check failed: %s\n" e) errors;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one pipeline stage with metrics enabled and print a per-stage table of \
          wall time, share of the run, GC minor words and throughput.  With \
          $(b,--metrics) the full snapshot is also written as JSON; $(b,--check) \
          turns the run into a CI smoke test.")
    Term.(const run $ config_term $ quick $ check $ stage)

(* ---------------- export ---------------- *)

let export_cmd =
  let out_dir =
    let doc = "Directory for the exported CSV datasets." in
    Arg.(value & opt string "results" & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run config out_dir =
    let ctx = E.Context.load ~config () in
    let rec mkdir_p dir =
      if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
        mkdir_p (Filename.dirname dir);
        try Sys.mkdir dir 0o755 with Sys_error _ -> ()
      end
    in
    mkdir_p out_dir;
    let mica_path = Filename.concat out_dir "mica_dataset.csv" in
    let hpc_path = Filename.concat out_dir "hpc_dataset.csv" in
    Mica_core.Dataset.to_csv ctx.E.Context.mica mica_path;
    Mica_core.Dataset.to_csv ctx.E.Context.hpc hpc_path;
    Printf.printf "wrote %s (%dx%d) and %s (%dx%d)\n" mica_path
      (Mica_core.Dataset.rows ctx.E.Context.mica)
      (Mica_core.Dataset.cols ctx.E.Context.mica)
      hpc_path
      (Mica_core.Dataset.rows ctx.E.Context.hpc)
      (Mica_core.Dataset.cols ctx.E.Context.hpc)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the MICA and counter datasets as CSV.")
    Term.(const run $ config_term $ out_dir)

(* ---------------- serve / loadgen ---------------- *)

let socket_opt =
  let doc = "Unix-domain socket path for the serve protocol." in
  Arg.(value & opt string "/tmp/mica-serve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let port_opt =
  let doc = "Serve over TCP on 127.0.0.1:$(docv) instead of the Unix socket." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let address_of socket port =
  match port with
  | Some p -> Mica_serve.Server.Tcp { host = "127.0.0.1"; port = p }
  | None -> Mica_serve.Server.Unix_path socket

let serve_cmd =
  let queue_capacity =
    let doc = "Admission queue bound; a full queue sheds with immediate 'overloaded' replies." in
    Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let deadline_ms =
    let doc = "Default per-request deadline when the client sends none (0 = unlimited)." in
    Arg.(value & opt float 0.0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let no_degrade =
    let doc = "Disable sketch-based graceful degradation of near-deadline characterize requests." in
    Arg.(value & flag & info [ "no-degrade" ] ~doc)
  in
  let sketch_budget =
    let doc = "Sketch byte budget for degraded answers." in
    Arg.(
      value & opt int Mica_sketch.Sketch.default_bytes & info [ "sketch-budget" ] ~docv:"BYTES" ~doc)
  in
  let degrade_margin =
    let doc =
      "Degrade when the remaining deadline budget is below $(docv) x the EWMA exact cost."
    in
    Arg.(value & opt float 2.0 & info [ "degrade-margin" ] ~docv:"X" ~doc)
  in
  let breaker_threshold =
    let doc = "Consecutive failures that trip a workload's circuit breaker." in
    Arg.(
      value
      & opt int Mica_serve.Breaker.default_config.Mica_serve.Breaker.threshold
      & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown =
    let doc = "Refused admissions before an open breaker half-opens for a probe." in
    Arg.(
      value
      & opt int Mica_serve.Breaker.default_config.Mica_serve.Breaker.cooldown
      & info [ "breaker-cooldown" ] ~docv:"N" ~doc)
  in
  let warm =
    let doc =
      "Workload to warm-start (repeatable); the warm set backs distance/classify/knn queries."
    in
    Arg.(value & opt_all string [] & info [ "warm" ] ~docv:"WORKLOAD" ~doc)
  in
  let no_warm =
    let doc = "Skip warm-start characterization (cache rows are still absorbed)." in
    Arg.(value & flag & info [ "no-warm" ] ~doc)
  in
  let run (config : Mica_core.Pipeline.config) socket port queue_capacity deadline_ms no_degrade
      sketch_budget degrade_margin breaker_threshold breaker_cooldown warm no_warm =
    let scfg =
      {
        Mica_serve.Server.default_config with
        Mica_serve.Server.icount = config.Mica_core.Pipeline.icount;
        ppm_order = config.Mica_core.Pipeline.ppm_order;
        cache_dir = config.Mica_core.Pipeline.cache_dir;
        jobs = config.Mica_core.Pipeline.jobs;
        retries = config.Mica_core.Pipeline.retries;
        queue_capacity;
        default_deadline_ms = deadline_ms;
        degrade = not no_degrade;
        sketch_bytes = sketch_budget;
        degrade_margin;
        breaker = { Mica_serve.Breaker.threshold = breaker_threshold; cooldown = breaker_cooldown };
      }
    in
    let t = Mica_serve.Server.create scfg in
    let warm_workloads =
      if no_warm then []
      else if warm = [] then
        List.filter_map Mica_workloads.Registry.find
          [ "MiBench/sha/large"; "SPEC2000/mcf/ref"; "SPEC2000/swim/ref" ]
      else List.map resolve warm
    in
    let resident = Mica_serve.Server.warm_start t ~workloads:warm_workloads in
    let address = address_of socket port in
    Logs.app (fun f ->
        f "serving on %s (%d warm vectors, queue %d, jobs %d); SIGTERM drains"
          (match address with
          | Mica_serve.Server.Unix_path p -> p
          | Mica_serve.Server.Tcp { host; port } -> Printf.sprintf "%s:%d" host port)
          resident queue_capacity scfg.Mica_serve.Server.jobs);
    Mica_serve.Server.listen_and_serve t address
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the characterization daemon: newline-delimited JSON requests (characterize, \
          distance, classify, knn, health, metrics) over a Unix or TCP socket, with bounded \
          admission, per-request deadlines, sketch-based graceful degradation, per-workload \
          circuit breaking and graceful drain on SIGTERM.")
    Term.(
      const run $ config_term $ socket_opt $ port_opt $ queue_capacity $ deadline_ms $ no_degrade
      $ sketch_budget $ degrade_margin $ breaker_threshold $ breaker_cooldown $ warm $ no_warm)

let loadgen_cmd =
  let rate =
    let doc = "Target open-loop arrival rate (requests/second)." in
    Arg.(value & opt float 20.0 & info [ "rate" ] ~docv:"R" ~doc)
  in
  let duration =
    let doc = "Seconds of scheduled arrivals." in
    Arg.(value & opt float 3.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let deadline_ms =
    let doc = "Per-request deadline sent with every request (0 = none)." in
    Arg.(value & opt float 500.0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let no_estimate =
    let doc = "Do not permit sketch-degraded answers." in
    Arg.(value & flag & info [ "no-estimate" ] ~doc)
  in
  let seed =
    let doc = "Seed for the arrival schedule and retry jitter." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let retries =
    let doc = "Re-sends after an 'overloaded' reply before counting the request as shed." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_ms =
    let doc = "Base retry backoff (doubled per retry, seeded jitter)." in
    Arg.(value & opt float 25.0 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let workloads_opt =
    let doc = "Workloads to request, cycled in order (repeatable; default: the verify trio)." in
    Arg.(value & opt_all string [] & info [ "workload"; "w" ] ~docv:"WORKLOAD" ~doc)
  in
  let json_out =
    let doc = "Also write the loadgen report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run verbose metrics socket port rate duration deadline_ms no_estimate seed retries
      backoff_ms workloads no_run runs_root run_tag json_out =
    setup_logs verbose;
    setup_metrics metrics;
    let workloads =
      if workloads = [] then Mica_serve.Loadgen.default_config.Mica_serve.Loadgen.workloads
      else List.map (fun w -> Mica_workloads.Workload.id (resolve w)) workloads
    in
    let cfg =
      {
        Mica_serve.Loadgen.address = address_of socket port;
        rate;
        duration;
        deadline_ms;
        estimate = not no_estimate;
        seed;
        workloads;
        retries;
        backoff_ms;
      }
    in
    let report =
      try Mica_serve.Loadgen.run cfg
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot reach the daemon at %s: %s\n"
          (match cfg.Mica_serve.Loadgen.address with
          | Mica_serve.Server.Unix_path p -> p
          | Mica_serve.Server.Tcp { host; port } -> Printf.sprintf "%s:%d" host port)
          (Unix.error_message e);
        exit 2
    in
    print_string (Mica_serve.Loadgen.render report);
    Option.iter
      (fun p ->
        Mica_run.Run_io.atomic_write p
          (Mica_obs.Json.to_string ~pretty:true (Mica_serve.Loadgen.to_json report) ^ "\n"))
      json_out;
    (* Commit the latency/throughput/shed-rate report as a bench-entry run
       directory so [mica compare --tolerance-bench] can gate it. *)
    if not no_run then begin
      let module R = Mica_run.Run_dir in
      let manifest =
        {
          Mica_run.Manifest.schema = Mica_run.Manifest.schema_version;
          created = R.timestamp ();
          tag = Option.value run_tag ~default:"loadgen";
          subcommand = "loadgen";
          argv = Array.to_list Sys.argv;
          git_rev = Mica_run.Run_io.git_rev ();
          icount = 0;
          ppm_order = 0;
          jobs = 1;
          retries;
          cache = false;
          mica_jobs_env = Sys.getenv_opt "MICA_JOBS";
          fault_spec = Option.map Mica_util.Fault.to_string (Mica_util.Fault.installed ());
          seeds = [ ("loadgen", string_of_int seed) ];
          workloads = List.length workloads;
          report =
            Printf.sprintf "%d sent, %d ok, %d estimated, %d cached, %d shed, %d protocol errors"
              report.Mica_serve.Loadgen.sent report.Mica_serve.Loadgen.ok
              report.Mica_serve.Loadgen.estimated report.Mica_serve.Loadgen.cached
              report.Mica_serve.Loadgen.shed report.Mica_serve.Loadgen.protocol_errors;
          files = [];
        }
      in
      let artifacts =
        [
          {
            R.filename = R.bench_file;
            contents = Mica_obs.Json.to_string ~pretty:true (Mica_serve.Loadgen.bench_json report) ^ "\n";
          };
          {
            R.filename = "loadgen.json";
            contents = Mica_obs.Json.to_string ~pretty:true (Mica_serve.Loadgen.to_json report) ^ "\n";
          };
          {
            R.filename = R.metrics_file;
            contents = Mica_obs.Obs.to_json (Mica_obs.Obs.snapshot ());
          };
        ]
      in
      match R.commit ~root:runs_root ~manifest ~artifacts () with
      | dir -> Printf.printf "committed run %s\n" dir
      | exception Sys_error _ ->
        Logs.warn (fun f -> f "run directory commit failed; results are unaffected")
    end;
    if report.Mica_serve.Loadgen.protocol_errors > 0 then begin
      Printf.eprintf "error: %d protocol error(s): some requests got no (or an invalid) reply\n"
        report.Mica_serve.Loadgen.protocol_errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon with seeded open-loop arrivals (retrying 'overloaded' with \
          jittered backoff) and report latency percentiles, throughput and shed rate; exits \
          nonzero if any request loses its reply.")
    Term.(
      const run $ verbose $ metrics_opt $ socket_opt $ port_opt $ rate $ duration $ deadline_ms
      $ no_estimate $ seed $ retries $ backoff_ms $ workloads_opt $ no_run $ runs_root $ run_tag
      $ json_out)

let main =
  let doc = "microarchitecture-independent workload characterization (MICA)" in
  Cmd.group
    (Cmd.info "mica" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      characterize_cmd;
      stream_cmd;
      counters_cmd;
      compare_cmd;
      distance_cmd;
      variance_cmd;
      classify_cmd;
      select_ga_cmd;
      select_ce_cmd;
      cluster_cmd;
      kiviat_cmd;
      place_cmd;
      dendrogram_cmd;
      phases_cmd;
      pca_cmd;
      subset_cmd;
      corpus_cmd;
      knn_cmd;
      predict_cmd;
      dump_trace_cmd;
      characterize_trace_cmd;
      machines_cmd;
      fleet_cmd;
      calibrate_cmd;
      locality_cmd;
      simpoint_cmd;
      verify_cmd;
      profile_cmd;
      export_cmd;
      serve_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval main)
