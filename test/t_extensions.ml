(* Tests for the extension modules: hierarchical clustering, dendrograms,
   BBV phase analysis, workload spec files, and the PCA comparison. *)

module S = Mica_stats
module C = Mica_core
module W = Mica_workloads
module A = Mica_analysis
module Rng = Mica_util.Rng

let feq = Tutil.feq

(* ---------------- linkage ---------------- *)

let two_blob_matrix () =
  let rng = Rng.create ~seed:21L in
  Array.init 12 (fun i ->
      let c = if i < 6 then 0.0 else 10.0 in
      [| c +. Rng.gaussian rng ~mu:0.0 ~sigma:0.1 |])

let test_linkage_structure () =
  let m = two_blob_matrix () in
  let tree = S.Linkage.cluster m in
  Alcotest.(check int) "all leaves" 12 (S.Linkage.size tree);
  Alcotest.(check int) "leaves enumerated" 12 (List.length (S.Linkage.leaves tree));
  Alcotest.(check (list int)) "leaves are a permutation"
    (List.init 12 Fun.id)
    (List.sort compare (S.Linkage.leaves tree));
  (* the root merge joins the two blobs: its height is about 10 *)
  Alcotest.(check bool) "root height separates blobs" true (S.Linkage.height tree > 5.0)

let test_linkage_cut () =
  let m = two_blob_matrix () in
  let tree = S.Linkage.cluster m in
  let assignments = S.Linkage.cut tree ~k:2 in
  for i = 1 to 5 do
    Alcotest.(check int) "first blob together" assignments.(0) assignments.(i)
  done;
  for i = 7 to 11 do
    Alcotest.(check int) "second blob together" assignments.(6) assignments.(i)
  done;
  Alcotest.(check bool) "blobs apart" true (assignments.(0) <> assignments.(6));
  let all = S.Linkage.cut tree ~k:12 in
  Alcotest.(check int) "k=n gives singletons" 12
    (List.length (List.sort_uniq compare (Array.to_list all)))

let test_linkage_cut_height () =
  let m = two_blob_matrix () in
  let tree = S.Linkage.cluster m in
  let a = S.Linkage.cut_height tree ~height:5.0 in
  Alcotest.(check int) "cut below the root merge gives 2 clusters" 2
    (List.length (List.sort_uniq compare (Array.to_list a)));
  let one = S.Linkage.cut_height tree ~height:1e9 in
  Alcotest.(check int) "cut above everything gives 1 cluster" 1
    (List.length (List.sort_uniq compare (Array.to_list one)))

let test_linkage_singleton () =
  let tree = S.Linkage.cluster [| [| 1.0 |] |] in
  Alcotest.(check int) "single row" 1 (S.Linkage.size tree);
  Alcotest.check feq "leaf height" 0.0 (S.Linkage.height tree)

let test_linkage_methods_differ () =
  let rng = Rng.create ~seed:23L in
  let m = Array.init 20 (fun _ -> [| Rng.float rng 10.0; Rng.float rng 10.0 |]) in
  let single = S.Linkage.cluster ~linkage:S.Linkage.Single m in
  let complete = S.Linkage.cluster ~linkage:S.Linkage.Complete m in
  (* complete linkage roots at least as high as single linkage *)
  Alcotest.(check bool) "complete >= single at the root" true
    (S.Linkage.height complete >= S.Linkage.height single)

let test_linkage_merge_heights_sorted () =
  let m = two_blob_matrix () in
  let hs = S.Linkage.merge_heights (S.Linkage.cluster m) in
  Alcotest.(check int) "n-1 merges" 11 (Array.length hs);
  for i = 0 to Array.length hs - 2 do
    if hs.(i) > hs.(i + 1) then Alcotest.fail "heights not sorted"
  done

(* ---------------- dendrogram ---------------- *)

let small_dataset () =
  C.Dataset.create
    ~names:[| "near1"; "near2"; "far" |]
    ~features:[| "x" |]
    [| [| 0.0 |]; [| 0.1 |]; [| 10.0 |] |]

let test_dendrogram_render () =
  let d = C.Dendrogram.build (small_dataset ()) in
  let s = C.Dendrogram.render d in
  List.iter
    (fun name ->
      let contains =
        let n = String.length name and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = name || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "dendrogram missing %s" name)
    [ "near1"; "near2"; "far" ]

let test_dendrogram_clusters_at () =
  let d = C.Dendrogram.build (small_dataset ()) in
  let clusters = C.Dendrogram.clusters_at d ~k:2 in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  let sizes = List.sort compare (List.map (fun (_, m) -> Array.length m) clusters) in
  Alcotest.(check (list int)) "2+1 split" [ 1; 2 ] sizes;
  (* the pair cluster holds the two near points *)
  let pair = List.find (fun (_, m) -> Array.length m = 2) clusters in
  let members = List.sort compare (Array.to_list (snd pair)) in
  Alcotest.(check (list string)) "near points together" [ "near1"; "near2" ] members

let test_dendrogram_max_depth () =
  let d = C.Dendrogram.build (small_dataset ()) in
  let s = C.Dendrogram.render ~max_depth:0 d in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summarized" true (contains "benchmarks")

let test_dendrogram_single_benchmark () =
  let ds =
    C.Dataset.create ~names:[| "lone" |] ~features:[| "x"; "y" |] [| [| 1.0; 2.0 |] |]
  in
  let d = C.Dendrogram.build ds in
  Alcotest.(check int) "no merges for one benchmark" 0
    (Array.length (S.Linkage.merge_heights d.C.Dendrogram.tree));
  let s = C.Dendrogram.render d in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "leaf named" true (contains "lone");
  match C.Dendrogram.clusters_at d ~k:1 with
  | [ (_, members) ] ->
    Alcotest.(check (array string)) "single singleton cluster" [| "lone" |] members
  | other -> Alcotest.failf "expected one cluster, got %d" (List.length other)

let test_dendrogram_duplicate_points () =
  (* two identical benchmarks: their distance is exactly zero, so the first
     merge happens at height 0 and they stay inseparable at any cut *)
  let ds =
    C.Dataset.create
      ~names:[| "twin1"; "twin2"; "far" |]
      ~features:[| "x" |]
      [| [| 1.0 |]; [| 1.0 |]; [| 9.0 |] |]
  in
  let d = C.Dendrogram.build ds in
  let heights = S.Linkage.merge_heights d.C.Dendrogram.tree in
  Alcotest.(check int) "two merges" 2 (Array.length heights);
  Alcotest.check Tutil.feq "duplicates merge at height 0" 0.0 heights.(0);
  let pair =
    List.find (fun (_, m) -> Array.length m = 2) (C.Dendrogram.clusters_at d ~k:2)
  in
  Alcotest.(check (list string)) "twins inseparable" [ "twin1"; "twin2" ]
    (List.sort compare (Array.to_list (snd pair)))

let test_dendrogram_empty_dataset () =
  match
    C.Dendrogram.build (C.Dataset.create ~names:[||] ~features:[| "x" |] [||])
  with
  | (_ : C.Dendrogram.t) -> Alcotest.fail "empty dataset accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- bbv ---------------- *)

let test_bbv_intervals () =
  let bbv = A.Bbv.create ~interval:1_000 () in
  let p = Tutil.tiny_program "bbv-intervals" in
  let (_ : int) = Mica_trace.Generator.run p ~icount:10_000 ~sink:(A.Bbv.sink bbv) in
  Alcotest.(check int) "10 intervals" 10 (A.Bbv.interval_count bbv)

let test_bbv_rows_normalized () =
  let bbv = A.Bbv.create ~interval:1_000 () in
  let p = Tutil.tiny_program "bbv-norm" in
  let (_ : int) = Mica_trace.Generator.run p ~icount:5_000 ~sink:(A.Bbv.sink bbv) in
  let m = A.Bbv.matrix bbv in
  Array.iter
    (fun row ->
      let sum = Array.fold_left ( +. ) 0.0 row in
      Alcotest.check Tutil.feq_loose "row sums to 1" 1.0 sum)
    m

let test_bbv_blocks_are_pcs () =
  let bbv = A.Bbv.create ~interval:1_000 () in
  let p = Tutil.tiny_program "bbv-blocks" in
  let (_ : int) = Mica_trace.Generator.run p ~icount:5_000 ~sink:(A.Bbv.sink bbv) in
  let ids = A.Bbv.block_ids bbv in
  Alcotest.(check bool) "several blocks seen" true (Array.length ids > 2);
  Array.iter (fun pc -> if pc <= 0 then Alcotest.fail "bad block id") ids;
  (* ids ascending *)
  for i = 0 to Array.length ids - 2 do
    if ids.(i) >= ids.(i + 1) then Alcotest.fail "block ids not sorted"
  done

let test_bbv_projection_dims () =
  let bbv = A.Bbv.create ~interval:1_000 () in
  let p = Tutil.tiny_program "bbv-proj" in
  let (_ : int) = Mica_trace.Generator.run p ~icount:5_000 ~sink:(A.Bbv.sink bbv) in
  let proj = A.Bbv.projected ~dims:7 bbv in
  Alcotest.(check int) "rows preserved" (A.Bbv.interval_count bbv) (Array.length proj);
  Array.iter (fun row -> Alcotest.(check int) "7 dims" 7 (Array.length row)) proj

let test_bbv_projection_preserves_similarity () =
  (* identical rows project identically; different rows stay apart *)
  let bbv = A.Bbv.create ~interval:1_000 () in
  let p = Tutil.tiny_program "bbv-sim" in
  let (_ : int) = Mica_trace.Generator.run p ~icount:8_000 ~sink:(A.Bbv.sink bbv) in
  let m = A.Bbv.matrix bbv and proj = A.Bbv.projected bbv in
  let n = Array.length m in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dm = S.Distance.euclidean m.(i) m.(j) in
      let dp = S.Distance.euclidean proj.(i) proj.(j) in
      if dm < 1e-12 && dp > 1e-9 then Alcotest.fail "identical rows projected apart"
    done
  done

let test_bbv_invalid_interval () =
  try
    ignore (A.Bbv.create ~interval:0 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- phases ---------------- *)

let test_phases_steady_state_single_phase () =
  let p = Tutil.tiny_program "phases-steady" in
  let t = C.Phases.analyze p ~icount:100_000 in
  Alcotest.(check int) "steady-state program has one phase" 1 t.C.Phases.k

let test_phases_two_phase_program () =
  (* two very different kernels in alternating phases *)
  let k1 =
    { Mica_trace.Kernel.default with Mica_trace.Kernel.name = "ph-int" }
  in
  let k2 =
    {
      Mica_trace.Kernel.default with
      Mica_trace.Kernel.name = "ph-fp";
      mix = { Mica_trace.Kernel.default.Mica_trace.Kernel.mix with Mica_trace.Kernel.fp = 0.4; load = 0.2 };
      body_slots = 48;
    }
  in
  let p =
    Mica_trace.Program.make ~name:"phases-two"
      [
        { Mica_trace.Program.ph_name = "a"; ph_kernels = [ (1.0, k1) ]; ph_length = 20_000 };
        { Mica_trace.Program.ph_name = "b"; ph_kernels = [ (1.0, k2) ]; ph_length = 20_000 };
      ]
  in
  let t = C.Phases.analyze ~interval:5_000 p ~icount:200_000 in
  Alcotest.(check bool) "at least two phases found" true (t.C.Phases.k >= 2);
  (* weights sum to one; representatives valid *)
  Alcotest.check Tutil.feq_loose "weights sum to 1" 1.0
    (Array.fold_left ( +. ) 0.0 t.C.Phases.weights);
  Array.iter
    (fun r ->
      if r < 0 || r >= Array.length t.C.Phases.assignments then
        Alcotest.fail "representative out of range")
    t.C.Phases.representatives

let test_phases_timeline () =
  let p = Tutil.tiny_program "phases-timeline" in
  let t = C.Phases.analyze ~interval:5_000 p ~icount:50_000 in
  Alcotest.(check int) "timeline length = intervals" (Array.length t.C.Phases.assignments)
    (String.length (C.Phases.timeline t))

(* ---------------- spec files ---------------- *)

let test_spec_example_parses () =
  match W.Spec_file.parse W.Spec_file.example with
  | Ok program ->
    Alcotest.(check string) "name" "hash-join" program.Mica_trace.Program.name;
    Alcotest.(check int64) "seed" 7L program.Mica_trace.Program.seed;
    Alcotest.(check int) "one phase" 1 (List.length program.Mica_trace.Program.phases);
    Alcotest.(check int) "two kernels" 2
      (List.length (Mica_trace.Program.kernels program))
  | Error msg -> Alcotest.failf "example spec rejected: %s" msg

let test_spec_example_generates () =
  match W.Spec_file.parse W.Spec_file.example with
  | Ok program ->
    let sink, read = Mica_trace.Sink.counter () in
    let (_ : int) = Mica_trace.Generator.run program ~icount:2_000 ~sink in
    Alcotest.(check int) "trace produced" 2_000 (read ())
  | Error msg -> Alcotest.failf "example spec rejected: %s" msg

let test_spec_kernel_fields () =
  let spec = {|
name fields
[kernel k 1.0]
body 40
mix 0.2 0.1 0.05 0.02 0.1
data_kb 512
trip 99
dep_p 0.3
carried 0.2
imm 0.5
fp_mul 0.6
fp_div 0.1
loads chase:1.0
branches history:4:1.0
|} in
  match W.Spec_file.parse spec with
  | Ok program -> (
    match Mica_trace.Program.kernels program with
    | [ k ] ->
      Alcotest.(check int) "body" 40 k.Mica_trace.Kernel.body_slots;
      Alcotest.(check int) "data" (512 * 1024) k.Mica_trace.Kernel.data_bytes;
      Alcotest.(check int) "trip" 99 k.Mica_trace.Kernel.trip_count;
      Alcotest.check feq "load mix" 0.2 k.Mica_trace.Kernel.mix.Mica_trace.Kernel.load;
      Alcotest.check feq "carried" 0.2 k.Mica_trace.Kernel.loop_carried_frac;
      Alcotest.(check int) "one load pattern" 1
        (List.length k.Mica_trace.Kernel.load_patterns);
      (match k.Mica_trace.Kernel.load_patterns with
      | [ (_, Mica_trace.Kernel.Chase) ] -> ()
      | _ -> Alcotest.fail "expected chase pattern");
      (match k.Mica_trace.Kernel.branch_kinds with
      | [ (_, Mica_trace.Kernel.History { depth = 4 }) ] -> ()
      | _ -> Alcotest.fail "expected history branch kind")
    | ks -> Alcotest.failf "expected one kernel, got %d" (List.length ks))
  | Error msg -> Alcotest.failf "spec rejected: %s" msg

let expect_error spec fragment =
  match W.Spec_file.parse spec with
  | Ok _ -> Alcotest.failf "spec unexpectedly accepted (wanted error about %s)" fragment
  | Error msg ->
    let contains =
      let n = String.length fragment and h = String.length msg in
      let rec go i = i + n <= h && (String.sub msg i n = fragment || go (i + 1)) in
      go 0
    in
    if not contains then Alcotest.failf "error %S does not mention %S" msg fragment

let test_spec_errors () =
  expect_error "bogus directive" "unknown directive";
  expect_error "[kernel k 1.0]\nbody abc" "integer";
  expect_error "[kernel k 1.0]\nloads nope:1" "memory pattern";
  expect_error "[kernel k 1.0]\nbranches what:1" "branch kind";
  expect_error "body 10" "outside a [kernel";
  expect_error "" "no kernels";
  expect_error "[kernel k 0]\n" "positive";
  (* validation errors surface too: body too small *)
  expect_error "[kernel k 1.0]\nbody 2" "body_slots"

let test_spec_comments_and_blanks () =
  let spec = "# leading comment\n\nname c  # trailing comment\n[kernel k 1.0]\nbody 10\n" in
  match W.Spec_file.parse spec with
  | Ok p -> Alcotest.(check string) "name parsed" "c" p.Mica_trace.Program.name
  | Error msg -> Alcotest.failf "rejected: %s" msg

let test_spec_multi_phase () =
  let spec = {|
name mp
[phase one 1000]
[kernel a 1.0]
body 10
[phase two 2000]
[kernel b 2.0]
body 12
[kernel c 1.0]
body 14
|} in
  match W.Spec_file.parse spec with
  | Ok p ->
    (match p.Mica_trace.Program.phases with
    | [ one; two ] ->
      Alcotest.(check int) "phase one length" 1000 one.Mica_trace.Program.ph_length;
      Alcotest.(check int) "phase one kernels" 1
        (List.length one.Mica_trace.Program.ph_kernels);
      Alcotest.(check int) "phase two kernels" 2
        (List.length two.Mica_trace.Program.ph_kernels)
    | phs -> Alcotest.failf "expected 2 phases, got %d" (List.length phs))
  | Error msg -> Alcotest.failf "rejected: %s" msg

let test_spec_load_missing_file () =
  match W.Spec_file.load "/nonexistent/path.spec" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

(* ---------------- pca comparison ---------------- *)

let test_pca_comparison () =
  let names =
    [ "MiBench/sha/large"; "MiBench/adpcm/rawcaudio"; "SPEC2000/mcf/ref"; "SPEC2000/swim/ref";
      "SPEC2000/gcc/166"; "BioInfoMark/blast/protein"; "CommBench/rtr/rtr"; "MiBench/qsort/large" ]
  in
  let ctx =
    C.Experiments.Context.load
      ~config:{ C.Pipeline.default_config with C.Pipeline.icount = 3_000; cache_dir = None }
      ~workloads:(List.map W.Registry.find_exn names) ()
  in
  let ga_config =
    { Mica_select.Genetic.default_config with
      Mica_select.Genetic.population = 12; max_generations = 15; stall_generations = 5 }
  in
  let ga = C.Experiments.run_ga ~config:ga_config ctx in
  let r = C.Pca_comparison.run ctx ~ga in
  (* rho must increase with dims and reach ~1 at full dimensionality *)
  let last = r.C.Pca_comparison.pca_points.(Array.length r.C.Pca_comparison.pca_points - 1) in
  Alcotest.(check bool) "full PCA preserves distances" true (last.C.Pca_comparison.rho > 0.999);
  Array.iter
    (fun (p : C.Pca_comparison.point) ->
      (* AUC is nan when the tiny subset degenerates to one class *)
      if (not (Float.is_nan p.C.Pca_comparison.auc))
         && (p.C.Pca_comparison.auc < 0.0 || p.C.Pca_comparison.auc > 1.0)
      then Alcotest.fail "AUC out of range";
      Alcotest.(check int) "PCA measures all 47" 47 p.C.Pca_comparison.measured_characteristics)
    r.C.Pca_comparison.pca_points;
  Alcotest.(check bool) "variance fraction sane" true
    (r.C.Pca_comparison.variance_explained_8 > 0.0
    && r.C.Pca_comparison.variance_explained_8 <= 1.0 +. 1e-9);
  Alcotest.(check bool) "render mentions PCA" true
    (String.length (C.Pca_comparison.render r) > 100)

(* ---------------- coverage / input sensitivity ---------------- *)

let coverage_context () =
  let names =
    [
      "SPEC2000/bzip2/graphic"; "SPEC2000/swim/ref"; "SPEC2000/mcf/ref"; "SPEC2000/gcc/166";
      "MiBench/sha/large"; "MiBench/adpcm/rawcaudio"; "BioInfoMark/blast/protein";
      "BioInfoMark/hmmer/build"; "BioInfoMark/hmmer/calibrate"; "CommBench/tcp/tcp";
    ]
  in
  C.Experiments.Context.load
    ~config:{ C.Pipeline.default_config with C.Pipeline.icount = 3_000; cache_dir = None }
    ~workloads:(List.map W.Registry.find_exn names) ()

let test_coverage_rows () =
  let ctx = coverage_context () in
  let selected = [| 0; 9; 20; 26; 43 |] in
  let rows = C.Coverage.suite_coverage ctx ~selected in
  (* every non-SPEC suite appears exactly once, SPEC never *)
  Alcotest.(check int) "five non-SPEC suites" 5 (List.length rows);
  List.iter
    (fun (r : C.Coverage.coverage_row) ->
      if r.C.Coverage.suite = W.Suite.SpecCpu2000 then Alcotest.fail "SPEC row present";
      Alcotest.(check int) "covered + dissimilar = total" r.C.Coverage.total
        (r.C.Coverage.covered + Array.length r.C.Coverage.dissimilar))
    rows;
  (* suites absent from this subset have zero members *)
  let mediabench =
    List.find (fun r -> r.C.Coverage.suite = W.Suite.MediaBench) rows
  in
  Alcotest.(check int) "absent suite is empty" 0 mediabench.C.Coverage.total

let test_coverage_threshold_monotone () =
  let ctx = coverage_context () in
  let selected = [| 0; 9; 20; 26; 43 |] in
  let dissimilar frac =
    List.fold_left
      (fun acc (r : C.Coverage.coverage_row) -> acc + Array.length r.C.Coverage.dissimilar)
      0
      (C.Coverage.suite_coverage ~frac ctx ~selected)
  in
  (* a looser threshold can only cover more benchmarks *)
  Alcotest.(check bool) "monotone in threshold" true (dissimilar 0.4 <= dissimilar 0.1)

let test_input_sensitivity_rows () =
  let ctx = coverage_context () in
  let rows = C.Coverage.input_sensitivity ctx ~selected:[| 0; 9; 20; 26; 43 |] in
  (* only hmmer has two inputs in this subset *)
  Alcotest.(check int) "one multi-input program" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check string) "it is hmmer" "BioInfoMark/hmmer" r.C.Coverage.program;
  Alcotest.(check int) "two inputs" 2 r.C.Coverage.inputs;
  Alcotest.(check bool) "distances non-negative" true
    (r.C.Coverage.max_intra >= 0.0 && r.C.Coverage.relative >= 0.0)

let test_coverage_renderers () =
  let ctx = coverage_context () in
  let selected = [| 0; 9; 20 |] in
  let c = C.Coverage.render_coverage (C.Coverage.suite_coverage ctx ~selected) in
  let s = C.Coverage.render_sensitivity (C.Coverage.input_sensitivity ctx ~selected) in
  Alcotest.(check bool) "coverage text" true (String.length c > 100);
  Alcotest.(check bool) "sensitivity text" true (String.length s > 100)

(* ---------------- reuse distances ---------------- *)

let mem_trace addrs =
  List.mapi (fun i a -> Tutil.load ~pc:(0x1000 + (4 * i)) ~dst:1 ~addr:a ()) addrs

let test_reuse_exact_distances () =
  let r = A.Reuse.create ~block_bytes:32 () in
  (* blocks: A B C A  -> A's reuse distance is 2 (B and C in between) *)
  Tutil.run_sink (A.Reuse.sink r) (mem_trace [ 0x100; 0x200; 0x300; 0x100 ]);
  Alcotest.(check int) "4 accesses" 4 (A.Reuse.accesses r);
  Alcotest.(check int) "3 cold" 3 (A.Reuse.cold_misses r);
  let cdf = A.Reuse.cdf r [| 1; 2 |] in
  Alcotest.check Tutil.feq "none within 1" 0.0 cdf.(0);
  Alcotest.check Tutil.feq "the revisit within 2" 0.25 cdf.(1)

let test_reuse_immediate_revisit () =
  let r = A.Reuse.create () in
  Tutil.run_sink (A.Reuse.sink r) (mem_trace [ 0x100; 0x104; 0x100 ]);
  (* same 32B block every time: distances 0, 0; cold only once *)
  Alcotest.(check int) "1 cold" 1 (A.Reuse.cold_misses r);
  Alcotest.check Tutil.feq "all revisits at distance 0" 1.0
    ((A.Reuse.cdf r [| 0 |]).(0) *. 3.0 /. 2.0)

let test_reuse_streaming_never_reuses () =
  let r = A.Reuse.create () in
  Tutil.run_sink (A.Reuse.sink r) (mem_trace (List.init 100 (fun i -> i * 64)));
  Alcotest.(check int) "all cold" 100 (A.Reuse.cold_misses r);
  Alcotest.check Tutil.feq "mean over finite distances is 0" 0.0 (A.Reuse.mean_log2 r)

let test_reuse_miss_rate_capacity () =
  let r = A.Reuse.create () in
  (* cyclic sweep over 4 blocks, repeated: with capacity >= 4 everything
     but cold misses hits; with capacity 2 everything misses (LRU) *)
  let addrs = List.concat (List.init 10 (fun _ -> [ 0x000; 0x040; 0x080; 0x0C0 ])) in
  Tutil.run_sink (A.Reuse.sink r) (mem_trace addrs);
  Alcotest.check Tutil.feq "capacity 4 leaves only cold misses" (4.0 /. 40.0)
    (A.Reuse.miss_rate_for_capacity r ~blocks:4);
  Alcotest.check Tutil.feq "capacity 2 thrashes" 1.0
    (A.Reuse.miss_rate_for_capacity r ~blocks:2)

let test_reuse_fenwick_growth () =
  (* enough accesses to force several Fenwick growth steps *)
  let r = A.Reuse.create () in
  let rng = Rng.create ~seed:77L in
  let addrs = List.init 5_000 (fun _ -> Rng.int rng 64 * 32) in
  Tutil.run_sink (A.Reuse.sink r) (mem_trace addrs);
  Alcotest.(check int) "accesses tracked" 5_000 (A.Reuse.accesses r);
  (* 64 blocks: every reuse distance must be < 64 *)
  Alcotest.check Tutil.feq "distances bounded by footprint" 1.0
    ((A.Reuse.cdf r [| 63 |]).(0)
    +. (float_of_int (A.Reuse.cold_misses r) /. float_of_int (A.Reuse.accesses r)))

let test_reuse_non_mem_ignored () =
  let r = A.Reuse.create () in
  Tutil.run_sink (A.Reuse.sink r) [ Tutil.alu (); Tutil.branch ~taken:true () ];
  Alcotest.(check int) "no accesses" 0 (A.Reuse.accesses r)

let test_reuse_invalid_block () =
  try
    ignore (A.Reuse.create ~block_bytes:33 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- machines experiment ---------------- *)

let test_machines_experiment () =
  let ctx = coverage_context () in
  let configs = [ Mica_uarch.Machine.ev56; Mica_uarch.Machine.embedded ] in
  let r = C.Machines.run ~configs ctx in
  Alcotest.(check int) "two spaces" 2 (List.length r.C.Machines.spaces);
  Alcotest.(check int) "one machine pair" 1 (List.length r.C.Machines.cross_correlation);
  List.iter
    (fun (_, _, c) ->
      if c < -1.0 || c > 1.0 then Alcotest.fail "correlation out of range")
    r.C.Machines.cross_correlation;
  List.iter
    (fun s ->
      Alcotest.(check int) "6 metrics" 6 (C.Dataset.cols s.C.Machines.dataset);
      Alcotest.(check int) "all workloads" 10 (C.Dataset.rows s.C.Machines.dataset))
    r.C.Machines.spaces;
  List.iter
    (fun (_, counts) ->
      if counts.C.Classify.total <> 45 then Alcotest.fail "wrong pair count")
    (List.map (fun (a, _, c) -> (a, c)) r.C.Machines.transfer);
  Alcotest.(check bool) "render" true (String.length (C.Machines.render r) > 200)

(* ---------------- locality experiment ---------------- *)

let test_locality_experiment () =
  let ctx = coverage_context () in
  let r = C.Locality.run ctx in
  Alcotest.(check int) "row per workload" 10 (List.length r.C.Locality.rows);
  List.iter
    (fun (row : C.Locality.row) ->
      if row.C.Locality.mean_log2_distance < 0.0 then Alcotest.fail "negative distance";
      if row.C.Locality.cold_fraction < 0.0 || row.C.Locality.cold_fraction > 1.0 then
        Alcotest.fail "cold fraction out of range")
    r.C.Locality.rows;
  (* rows sorted descending *)
  let rec sorted = function
    | (a : C.Locality.row) :: (b :: _ as rest) ->
      a.C.Locality.mean_log2_distance >= b.C.Locality.mean_log2_distance && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted r.C.Locality.rows);
  (* blast (streaming over huge data) has poorer locality than adpcm *)
  let find id =
    List.find (fun (row : C.Locality.row) -> row.C.Locality.id = id) r.C.Locality.rows
  in
  Alcotest.(check bool) "blast poorer than adpcm" true
    ((find "BioInfoMark/blast/protein").C.Locality.mean_log2_distance
    > (find "MiBench/adpcm/rawcaudio").C.Locality.mean_log2_distance);
  Alcotest.(check bool) "render" true (String.length (C.Locality.render r) > 200)

let test_locality_miss_curve_monotone () =
  let w = W.Registry.find_exn "SPEC2000/gcc/166" in
  let curve = C.Locality.miss_curve w ~icount:10_000 in
  for i = 0 to Array.length curve - 2 do
    let _, m1 = curve.(i) and _, m2 = curve.(i + 1) in
    if m2 > m1 +. 1e-9 then Alcotest.fail "LRU miss rate must not grow with capacity"
  done

(* Cross-validation of two independent implementations: the miss rate of a
   fully-associative LRU cache (uarch Cache with one set) must equal the
   fraction of accesses whose reuse distance reaches the capacity (Mattson's
   stack property, computed by the Fenwick-tree analyzer). *)
let test_reuse_matches_fa_cache () =
  let rng = Rng.create ~seed:91L in
  let blocks = 48 and capacity = 16 in
  let addrs = List.init 4_000 (fun _ -> Rng.zipf rng ~n:blocks ~s:1.1 * 32) in
  let reuse = A.Reuse.create ~block_bytes:32 () in
  Tutil.run_sink (A.Reuse.sink reuse) (mem_trace addrs);
  let cache =
    Mica_uarch.Cache.create ~name:"fa" ~size_bytes:(capacity * 32) ~line_bytes:32
      ~assoc:capacity
  in
  List.iter (fun a -> ignore (Mica_uarch.Cache.access cache a)) addrs;
  Alcotest.check Tutil.feq "stack property: FA-LRU miss rate = reuse tail"
    (Mica_uarch.Cache.miss_rate cache)
    (A.Reuse.miss_rate_for_capacity reuse ~blocks:capacity)

(* ---------------- bootstrap ---------------- *)

let test_bootstrap_constant_statistic () =
  let rng = Rng.create ~seed:61L in
  let iv = S.Bootstrap.interval ~replicates:50 ~rng ~n:20 (fun _ -> 42.0) in
  Alcotest.check Tutil.feq "estimate" 42.0 iv.S.Bootstrap.estimate;
  Alcotest.check Tutil.feq "lo" 42.0 iv.S.Bootstrap.lo;
  Alcotest.check Tutil.feq "hi" 42.0 iv.S.Bootstrap.hi

let test_bootstrap_mean_interval () =
  let rng = Rng.create ~seed:63L in
  let data = Array.init 200 (fun _ -> Rng.gaussian rng ~mu:10.0 ~sigma:2.0) in
  let iv =
    S.Bootstrap.interval ~replicates:400 ~rng ~n:(Array.length data) (fun sample ->
        S.Descriptive.mean (Array.map (fun i -> data.(i)) sample))
  in
  Alcotest.(check bool) "interval brackets the estimate" true
    (iv.S.Bootstrap.lo <= iv.S.Bootstrap.estimate && iv.S.Bootstrap.estimate <= iv.S.Bootstrap.hi);
  Alcotest.(check bool) "interval near the true mean" true
    (iv.S.Bootstrap.lo < 10.0 && 10.0 < iv.S.Bootstrap.hi);
  (* width should be roughly 4 * sigma/sqrt(n) ~ 0.57 *)
  Alcotest.(check bool) "width sane" true
    (iv.S.Bootstrap.hi -. iv.S.Bootstrap.lo < 1.5)

let test_bootstrap_pair_statistic () =
  let rng = Rng.create ~seed:65L in
  let a = Array.init 20 (fun _ -> [| Rng.float rng 1.0 |]) in
  (* b is a scaled copy of a: distance correlation must be exactly 1 *)
  let b = Array.map (fun row -> [| 3.0 *. row.(0) |]) a in
  let stat =
    S.Bootstrap.pair_distance_statistic ~normalized_a:a ~normalized_b:b S.Correlation.pearson
  in
  Alcotest.check Tutil.feq_loose "identity sample correlation" 1.0
    (stat (Array.init 20 Fun.id));
  (* resamples with duplicates still give a defined value *)
  let v = stat (Array.make 20 3 |> Array.mapi (fun i x -> if i < 10 then i else x)) in
  Alcotest.(check bool) "duplicate-heavy resample defined" true
    ((not (Float.is_nan v)) && Float.abs v <= 1.0 +. 1e-9)

(* ---------------- extended characteristics ---------------- *)

let test_extended_vector_shape () =
  let p = Tutil.tiny_program "ext-shape" in
  let v = A.Extended.analyze p ~icount:5_000 in
  Alcotest.(check int) "56 characteristics" A.Extended.count (Array.length v);
  Alcotest.(check int) "names match" A.Extended.count (Array.length A.Extended.names);
  Alcotest.(check int) "short names match" A.Extended.count
    (Array.length A.Extended.short_names);
  Array.iteri (fun i x -> if Float.is_nan x then Alcotest.failf "ext char %d NaN" i) v;
  (* the first 47 must equal the plain analyzer's output *)
  let base = A.Analyzer.analyze p ~icount:5_000 in
  Array.iteri
    (fun i x -> Alcotest.check Tutil.feq (Printf.sprintf "char %d matches base" i) x v.(i))
    base

let test_extended_is_extension () =
  Alcotest.(check bool) "46 is canonical" false (A.Extended.is_extension 46);
  Alcotest.(check bool) "47 is extension" true (A.Extended.is_extension 47);
  Alcotest.(check bool) "last is extension" true (A.Extended.is_extension (A.Extended.count - 1))

let test_extended_reuse_cdf_monotone () =
  let p = Tutil.tiny_program "ext-cdf" in
  let v = A.Extended.analyze p ~icount:5_000 in
  (* last 4 entries are the reuse CDF *)
  let base = A.Extended.count - 4 in
  for i = base to A.Extended.count - 2 do
    if v.(i) > v.(i + 1) +. 1e-9 then Alcotest.fail "reuse CDF not monotone"
  done

(* ---------------- simpoint validation ---------------- *)

let test_simpoint_validation () =
  let w = W.Registry.find_exn "MiBench/sha/large" in
  let t = C.Simpoint.validate ~interval:2_000 w ~icount:40_000 in
  Alcotest.(check bool) "true IPC positive" true (t.C.Simpoint.true_ipc > 0.0);
  Alcotest.(check bool) "estimate positive" true (t.C.Simpoint.estimated_ipc > 0.0);
  (* a steady-state kernel must be estimated accurately *)
  Alcotest.(check bool) "error under 10%" true (t.C.Simpoint.error < 0.10);
  (* per-interval results account for (almost) the whole trace *)
  let covered =
    Array.fold_left (fun acc r -> acc + r.C.Simpoint.instructions) 0 t.C.Simpoint.interval_results
  in
  Alcotest.(check bool) "intervals cover the trace" true (covered >= 38_000)

let test_simpoint_interval_consistency () =
  let w = W.Registry.find_exn "SPEC2000/swim/ref" in
  let t = C.Simpoint.validate ~interval:5_000 w ~icount:50_000 in
  Array.iter
    (fun (r : C.Simpoint.interval_ipc) ->
      if r.C.Simpoint.instructions <= 0 then Alcotest.fail "empty interval";
      if r.C.Simpoint.cycles <= 0 then Alcotest.fail "zero-cycle interval";
      if r.C.Simpoint.instructions > 5_000 then Alcotest.fail "interval too large")
    t.C.Simpoint.interval_results;
  Alcotest.(check bool) "render works" true
    (String.length (C.Simpoint.render [ ("x", t) ]) > 50)

(* ---------------- subsetting ---------------- *)

let line_space () =
  (* five points on a line: 0, 1, 2, 10, 11 *)
  C.Space.of_dataset
    (C.Dataset.create
       ~names:[| "p0"; "p1"; "p2"; "p10"; "p11" |]
       ~features:[| "x" |]
       [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 10.0 |]; [| 11.0 |] |])

let test_kcenter_basics () =
  let space = line_space () in
  let t = C.Subsetting.k_center space ~k:2 in
  Alcotest.(check int) "two chosen" 2 (Array.length t.C.Subsetting.chosen);
  (* with two centers, one must come from each end of the line *)
  let chosen = Array.to_list t.C.Subsetting.chosen in
  let left = List.exists (fun c -> c <= 2) chosen and right = List.exists (fun c -> c >= 3) chosen in
  Alcotest.(check bool) "covers both ends" true (left && right);
  (* every point's representative is a chosen point *)
  Array.iter
    (fun rep ->
      if not (List.mem rep chosen) then Alcotest.fail "representative not chosen")
    t.C.Subsetting.representative_of;
  Alcotest.(check bool) "radius sane" true
    (t.C.Subsetting.max_distance >= t.C.Subsetting.mean_distance)

let test_kcenter_full () =
  let space = line_space () in
  let t = C.Subsetting.k_center space ~k:5 in
  Alcotest.check Tutil.feq "k = n covers exactly" 0.0 t.C.Subsetting.max_distance

let test_kcenter_radius_decreases () =
  let space = line_space () in
  match C.Subsetting.sweep space ~ks:[ 1; 2; 3; 4; 5 ] with
  | radii ->
    let rec decreasing = function
      | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
      | _ -> true
    in
    Alcotest.(check bool) "radius non-increasing in k" true (decreasing radii)

let test_kcenter_invalid () =
  let space = line_space () in
  try
    ignore (C.Subsetting.k_center space ~k:0);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_kcenter_render () =
  let space = line_space () in
  let t = C.Subsetting.k_center space ~k:2 in
  Alcotest.(check bool) "render" true (String.length (C.Subsetting.render space t) > 50)

(* ---------------- prediction ---------------- *)

let test_knn_exact_neighbour () =
  let space = line_space () in
  let targets = [| 1.0; 2.0; 3.0; 10.0; 11.0 |] in
  (* p1's 2 nearest are p0 and p2 at distance 1 each: average 2.0 *)
  Alcotest.check Tutil.feq "symmetric neighbours average" 2.0
    (C.Prediction.knn_predict ~space ~targets ~k:2 ~exclude:(-1) 1)

let test_knn_weighting () =
  let space = line_space () in
  let targets = [| 5.0; 0.0; 0.0; 100.0; 0.0 |] in
  (* p2 (index 2): neighbours p1 (d=1, t=0) and p0 (d=2, t=5):
     weights 1 and 0.5 -> (0*1 + 5*0.5) / 1.5 = 5/3 *)
  Alcotest.check Tutil.feq "inverse-distance weighting" (5.0 /. 3.0)
    (C.Prediction.knn_predict ~space ~targets ~k:2 ~exclude:(-1) 2)

let test_knn_smooth_function_predicts_well () =
  (* target = smooth function of the feature: LOO knn must beat the mean *)
  let rng = Rng.create ~seed:31L in
  let data = Array.init 60 (fun _ -> [| Rng.float rng 10.0 |]) in
  let ds =
    C.Dataset.create
      ~names:(Array.init 60 (Printf.sprintf "w%d"))
      ~features:[| "x" |] data
  in
  let space = C.Space.of_dataset ds in
  let targets = Array.map (fun row -> (2.0 *. row.(0)) +. 1.0) data in
  let e = C.Prediction.evaluate_loo ~space ~targets ~metric:"linear" ~k:3 in
  Alcotest.(check bool) "beats baseline" true
    (e.C.Prediction.mean_rel_error < e.C.Prediction.baseline_rel_error /. 3.0);
  Alcotest.(check bool) "high rank correlation" true (e.C.Prediction.rank_correlation > 0.95)

let test_prediction_counters_eval () =
  let ctx = coverage_context () in
  let evals = C.Prediction.evaluate_counters ~k:3 ctx in
  Alcotest.(check int) "one eval per counter metric" 7 (List.length evals);
  List.iter
    (fun (e : C.Prediction.eval) ->
      if e.C.Prediction.mean_abs_error < 0.0 then Alcotest.fail "negative error";
      if e.C.Prediction.rank_correlation < -1.0 || e.C.Prediction.rank_correlation > 1.0 then
        Alcotest.fail "rank correlation out of range")
    evals;
  Alcotest.(check bool) "render" true (String.length (C.Prediction.render evals) > 100)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "linkage structure" `Quick test_linkage_structure;
      Alcotest.test_case "linkage cut" `Quick test_linkage_cut;
      Alcotest.test_case "linkage cut_height" `Quick test_linkage_cut_height;
      Alcotest.test_case "linkage singleton" `Quick test_linkage_singleton;
      Alcotest.test_case "linkage methods" `Quick test_linkage_methods_differ;
      Alcotest.test_case "linkage merge heights" `Quick test_linkage_merge_heights_sorted;
      Alcotest.test_case "dendrogram render" `Quick test_dendrogram_render;
      Alcotest.test_case "dendrogram clusters_at" `Quick test_dendrogram_clusters_at;
      Alcotest.test_case "dendrogram max_depth" `Quick test_dendrogram_max_depth;
      Alcotest.test_case "dendrogram single benchmark" `Quick test_dendrogram_single_benchmark;
      Alcotest.test_case "dendrogram duplicate points" `Quick test_dendrogram_duplicate_points;
      Alcotest.test_case "dendrogram empty dataset" `Quick test_dendrogram_empty_dataset;
      Alcotest.test_case "bbv intervals" `Quick test_bbv_intervals;
      Alcotest.test_case "bbv normalized" `Quick test_bbv_rows_normalized;
      Alcotest.test_case "bbv block ids" `Quick test_bbv_blocks_are_pcs;
      Alcotest.test_case "bbv projection dims" `Quick test_bbv_projection_dims;
      Alcotest.test_case "bbv projection similarity" `Quick
        test_bbv_projection_preserves_similarity;
      Alcotest.test_case "bbv invalid interval" `Quick test_bbv_invalid_interval;
      Alcotest.test_case "phases steady state" `Quick test_phases_steady_state_single_phase;
      Alcotest.test_case "phases two-phase program" `Slow test_phases_two_phase_program;
      Alcotest.test_case "phases timeline" `Quick test_phases_timeline;
      Alcotest.test_case "spec example parses" `Quick test_spec_example_parses;
      Alcotest.test_case "spec example generates" `Quick test_spec_example_generates;
      Alcotest.test_case "spec kernel fields" `Quick test_spec_kernel_fields;
      Alcotest.test_case "spec errors" `Quick test_spec_errors;
      Alcotest.test_case "spec comments" `Quick test_spec_comments_and_blanks;
      Alcotest.test_case "spec multi-phase" `Quick test_spec_multi_phase;
      Alcotest.test_case "spec missing file" `Quick test_spec_load_missing_file;
      Alcotest.test_case "pca comparison" `Slow test_pca_comparison;
      Alcotest.test_case "coverage rows" `Slow test_coverage_rows;
      Alcotest.test_case "coverage threshold" `Slow test_coverage_threshold_monotone;
      Alcotest.test_case "input sensitivity" `Slow test_input_sensitivity_rows;
      Alcotest.test_case "coverage renderers" `Slow test_coverage_renderers;
      Alcotest.test_case "reuse exact distances" `Quick test_reuse_exact_distances;
      Alcotest.test_case "reuse immediate revisit" `Quick test_reuse_immediate_revisit;
      Alcotest.test_case "reuse streaming" `Quick test_reuse_streaming_never_reuses;
      Alcotest.test_case "reuse miss rates" `Quick test_reuse_miss_rate_capacity;
      Alcotest.test_case "reuse fenwick growth" `Quick test_reuse_fenwick_growth;
      Alcotest.test_case "reuse ignores non-mem" `Quick test_reuse_non_mem_ignored;
      Alcotest.test_case "reuse invalid block" `Quick test_reuse_invalid_block;
      Alcotest.test_case "reuse = FA-LRU cache (stack property)" `Quick
        test_reuse_matches_fa_cache;
      Alcotest.test_case "machines experiment" `Slow test_machines_experiment;
      Alcotest.test_case "locality experiment" `Slow test_locality_experiment;
      Alcotest.test_case "locality miss curve" `Quick test_locality_miss_curve_monotone;
      Alcotest.test_case "simpoint validation" `Slow test_simpoint_validation;
      Alcotest.test_case "simpoint intervals" `Slow test_simpoint_interval_consistency;
      Alcotest.test_case "k-center basics" `Quick test_kcenter_basics;
      Alcotest.test_case "k-center full" `Quick test_kcenter_full;
      Alcotest.test_case "k-center radius" `Quick test_kcenter_radius_decreases;
      Alcotest.test_case "k-center invalid" `Quick test_kcenter_invalid;
      Alcotest.test_case "k-center render" `Quick test_kcenter_render;
      Alcotest.test_case "knn exact" `Quick test_knn_exact_neighbour;
      Alcotest.test_case "knn weighting" `Quick test_knn_weighting;
      Alcotest.test_case "knn smooth function" `Quick test_knn_smooth_function_predicts_well;
      Alcotest.test_case "prediction counters" `Slow test_prediction_counters_eval;
      Alcotest.test_case "bootstrap constant" `Quick test_bootstrap_constant_statistic;
      Alcotest.test_case "bootstrap mean" `Quick test_bootstrap_mean_interval;
      Alcotest.test_case "bootstrap pair statistic" `Quick test_bootstrap_pair_statistic;
      Alcotest.test_case "extended vector" `Quick test_extended_vector_shape;
      Alcotest.test_case "extended indexing" `Quick test_extended_is_extension;
      Alcotest.test_case "extended reuse CDF" `Quick test_extended_reuse_cdf_monotone;
    ] )
