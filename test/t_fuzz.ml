(* Fuzzing: random (valid) kernel specs and programs driven through the
   whole stack — generation, analysis, machine models, serialization.
   These tests assert invariants, not values: well-formed streams, exact
   instruction counts, bounded probabilities, and format round-trips. *)

module K = Mica_trace.Kernel
module P = Mica_trace.Program
module G = Mica_trace.Generator
module A = Mica_analysis
module W = Mica_workloads

open QCheck2

(* ---------------- random spec generator ---------------- *)

let mem_pattern_gen =
  Gen.oneof
    [
      Gen.return K.Fixed;
      Gen.map (fun s -> K.Seq { stride = s }) (Gen.oneofl [ 1; 4; 8; 16 ]);
      Gen.map (fun s -> K.Strided { stride = s }) (Gen.oneofl [ 256; 1024; 4096 ]);
      Gen.return K.Random;
      Gen.return K.Chase;
    ]

let branch_kind_gen =
  Gen.oneof
    [
      Gen.map (fun p -> K.Loop_like { period = p }) (Gen.int_range 2 64);
      Gen.map2
        (fun p t -> K.Periodic { period = p; taken_in_period = min t p })
        (Gen.int_range 2 16) (Gen.int_range 0 16);
      Gen.map (fun p -> K.Biased { taken_prob = p }) (Gen.float_range 0.0 1.0);
      Gen.map (fun d -> K.History { depth = d }) (Gen.int_range 1 8);
    ]

let weighted_list_gen ?(max_len = 3) elem =
  Gen.list_size (Gen.int_range 1 max_len)
    (Gen.map2 (fun w e -> (0.05 +. w, e)) (Gen.float_range 0.0 1.0) elem)

let spec_gen =
  let open Gen in
  let* body = int_range 4 64 in
  let* load = float_range 0.0 0.35 in
  let* store = float_range 0.0 0.2 in
  let* branch = float_range 0.0 0.2 in
  let* fp = float_range 0.0 0.2 in
  let* data_kb = oneofl [ 1; 16; 256; 4096 ] in
  let* trip = int_range 1 128 in
  let* dep_p = float_range 0.05 1.0 in
  let* carried = float_range 0.0 1.0 in
  let* hot = float_range 0.0 1.0 in
  let* imm = float_range 0.0 1.0 in
  let* skip = int_range 0 6 in
  let* helper_instrs = oneofl [ 0; 64; 1024 ] in
  let* loads = weighted_list_gen mem_pattern_gen in
  let* stores = weighted_list_gen mem_pattern_gen in
  let* branches = weighted_list_gen branch_kind_gen in
  let* name_tag = int_range 0 100_000 in
  return
    {
      K.default with
      K.name = Printf.sprintf "fuzz-%d" name_tag;
      body_slots = body;
      mix = { K.load; store; branch; int_mul = 0.01; fp };
      load_patterns = loads;
      store_patterns = stores;
      branch_kinds = branches;
      data_bytes = data_kb * 1024;
      helper_instrs;
      helper_regions = (if helper_instrs = 0 then 0 else 2);
      trip_count = trip;
      dep_geom_p = dep_p;
      loop_carried_frac = carried;
      hot_value_frac = hot;
      imm_frac = imm;
      branch_skip_max = skip;
    }

let program_of_spec spec = P.single ~name:(spec.K.name ^ "/prog") spec

(* ---------------- properties ---------------- *)

let prop_spec_valid =
  Tutil.qcheck_case ~count:100 "random specs validate" spec_gen (fun spec ->
      K.validate spec = Ok ())

let prop_generator_runs_exact =
  Tutil.qcheck_case ~count:60 "generator emits exactly icount on random specs" spec_gen
    (fun spec ->
      let sink, read = Mica_trace.Sink.counter () in
      let n = G.run (program_of_spec spec) ~icount:2_000 ~sink in
      n = 2_000 && read () = 2_000)

let prop_stream_well_formed =
  Tutil.qcheck_case ~count:40 "random streams are well-formed" spec_gen (fun spec ->
      let instrs = G.preview (program_of_spec spec) ~n:1_500 in
      List.for_all
        (fun (i : Mica_isa.Instr.t) ->
          i.Mica_isa.Instr.pc > 0
          && ((not (Mica_isa.Opcode.is_mem i.Mica_isa.Instr.op))
             || i.Mica_isa.Instr.addr > 0))
        instrs)

let prop_control_flow_chains =
  Tutil.qcheck_case ~count:30 "pc chain holds on random specs" spec_gen (fun spec ->
      let instrs = Array.of_list (G.preview (program_of_spec spec) ~n:1_000) in
      let ok = ref true in
      for i = 0 to Array.length instrs - 2 do
        if Mica_isa.Instr.next_pc instrs.(i) <> instrs.(i + 1).Mica_isa.Instr.pc then ok := false
      done;
      !ok)

let prop_analysis_bounded =
  Tutil.qcheck_case ~count:25 "analysis probabilities bounded on random specs" spec_gen
    (fun spec ->
      let v = A.Analyzer.analyze (program_of_spec spec) ~icount:2_000 in
      let prob_idx =
        List.concat
          [ List.init 6 Fun.id; List.init 7 (fun i -> 12 + i); List.init 20 (fun i -> 23 + i);
            List.init 4 (fun i -> 43 + i) ]
      in
      List.for_all (fun i -> v.(i) >= -1e-9 && v.(i) <= 1.0 +. 1e-9) prob_idx
      && Array.for_all (fun x -> not (Float.is_nan x)) v)

let prop_machines_bounded =
  Tutil.qcheck_case ~count:15 "machine metrics bounded on random specs" spec_gen (fun spec ->
      let p = program_of_spec spec in
      List.for_all
        (fun cfg ->
          let r = Mica_uarch.Machine.measure cfg p ~icount:2_000 in
          r.Mica_uarch.Machine.ipc > 0.0
          && r.Mica_uarch.Machine.l1d_miss_rate >= 0.0
          && r.Mica_uarch.Machine.l1d_miss_rate <= 1.0)
        Mica_uarch.Machine.presets)

let prop_trace_roundtrip =
  Tutil.qcheck_case ~count:20 "binary trace roundtrip on random specs" spec_gen (fun spec ->
      let p = program_of_spec spec in
      let path = Filename.temp_file "mica_fuzz" ".bin" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          ignore (Mica_trace.Trace_io.write_binary ~path p ~icount:500 : int);
          let sink, read = Mica_trace.Sink.collect ~limit:500 () in
          ignore (Mica_trace.Trace_io.replay_binary ~path ~sink : int);
          read () = G.preview p ~n:500))

let prop_spec_file_fixpoint =
  Tutil.qcheck_case ~count:40 "spec text printing reaches a fixpoint" spec_gen (fun spec ->
      let p = program_of_spec spec in
      let text1 = W.Spec_file.to_text p in
      match W.Spec_file.parse text1 with
      | Error _ -> false
      | Ok p2 ->
        let text2 = W.Spec_file.to_text p2 in
        text1 = text2
        && p2.P.name = p.P.name
        && p2.P.seed = p.P.seed
        && List.length (P.kernels p2) = List.length (P.kernels p))

(* ---------------- branch stats (deterministic cases) ---------------- *)

let test_branch_stats_exact () =
  let t = A.Branch_stats.create () in
  Tutil.run_sink (A.Branch_stats.sink t)
    [
      Tutil.branch ~pc:0x100 ~taken:true ();
      Tutil.branch ~pc:0x100 ~taken:false ();
      Tutil.branch ~pc:0x100 ~taken:true ();
      Tutil.branch ~pc:0x200 ~taken:true ();
      Tutil.branch ~pc:0x200 ~taken:true ();
      Tutil.alu ();
    ];
  let r = A.Branch_stats.result t in
  Alcotest.(check int) "5 branches" 5 r.A.Branch_stats.conditional_branches;
  Alcotest.(check int) "2 static" 2 r.A.Branch_stats.static_branches;
  Alcotest.check Tutil.feq "taken rate" 0.8 r.A.Branch_stats.taken_rate;
  (* transitions: pc 0x100: T->N, N->T (2 of 2); pc 0x200: T->T (0 of 1) *)
  Alcotest.check Tutil.feq "transition rate" (2.0 /. 3.0) r.A.Branch_stats.transition_rate;
  (* bias: 0x100 at 2/3 taken (not biased), 0x200 at 100% (biased) *)
  Alcotest.check Tutil.feq "biased fraction" 0.5 r.A.Branch_stats.biased_static_fraction

let test_branch_stats_alternating_vs_constant () =
  let measure outcomes =
    let t = A.Branch_stats.create () in
    List.iteri
      (fun i taken ->
        Tutil.push_one (A.Branch_stats.sink t) (Tutil.branch ~pc:0x100 ~taken ());
        ignore i)
      outcomes;
    (A.Branch_stats.result t).A.Branch_stats.transition_rate
  in
  Alcotest.check Tutil.feq "constant: no transitions" 0.0
    (measure (List.init 100 (fun _ -> true)));
  Alcotest.check Tutil.feq "alternating: all transitions" 1.0
    (measure (List.init 100 (fun i -> i mod 2 = 0)))

(* ---------------- fault-injection matrix ---------------- *)

module Fault = Mica_util.Fault
module Pipeline = Mica_core.Pipeline
module Run_report = Mica_core.Run_report
module Dataset = Mica_core.Dataset

let fault_trio () =
  List.map W.Registry.find_exn
    [ "MiBench/sha/large"; "SPEC2000/mcf/ref"; "SPEC2000/swim/ref" ]

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mica_fuzz_cache_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  let rec remove_tree path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
        try Sys.rmdir path with Sys_error _ -> ()
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let fault_config ?(jobs = 2) ?(retries = 0) dir =
  {
    Pipeline.default_config with
    Pipeline.icount = 1_500;
    cache_dir = dir;
    progress = false;
    jobs;
    retries;
  }

(* Seeded sweep over every injection point and several retry budgets:
   (a) a no-fault supervised run is bit-identical to the unsupervised
       baseline,
   (b) an injected fault never corrupts *other* workloads' results — every
       row a faulted run does produce equals the baseline row exactly,
   (c) exhausted attempt budgets surface in [Run_report.t] with the whole
       budget consumed, and the same plan replayed gives the same report
       (the injection is deterministic). *)
let test_fault_matrix () =
  let trio = fault_trio () in
  let ids = List.map W.Workload.id trio in
  let baseline =
    let mica, hpc = Pipeline.datasets ~config:(fault_config ~jobs:1 None) trio in
    fun id ->
      (Dataset.row_exn mica id, Dataset.row_exn hpc id)
  in
  (* (a) no plan installed: supervised = baseline, rows in request order *)
  with_temp_dir (fun dir ->
      let mica, hpc, report = Pipeline.datasets_report ~config:(fault_config (Some dir)) trio in
      Alcotest.(check bool) "no-fault run all ok" true (Run_report.all_ok report);
      List.iteri
        (fun i id ->
          let bm, bh = baseline id in
          if Dataset.row_exn mica id <> bm || Dataset.row_exn hpc id <> bh then
            Alcotest.failf "no-fault row %d (%s) differs from baseline" i id)
        ids);
  (* (b)/(c) the matrix *)
  List.iter
    (fun point ->
      List.iter
        (fun retries ->
          let spec = Printf.sprintf "seed=41,%s=0.35" (Fault.point_name point) in
          let run () =
            with_temp_dir (fun dir ->
                Fault.with_plan
                  (Some
                     (match Fault.parse spec with
                     | Ok p -> p
                     | Error e -> Alcotest.failf "bad spec %s: %s" spec e))
                  (fun () ->
                    let mica, _, report =
                      Pipeline.datasets_report ~config:(fault_config ~retries (Some dir)) trio
                    in
                    let statuses =
                      List.map
                        (fun (e : Run_report.entry) ->
                          match e.Run_report.status with
                          | Run_report.Computed { attempts } -> (e.Run_report.id, `Ok attempts)
                          | Run_report.Cached -> (e.Run_report.id, `Cached)
                          | Run_report.Resumed -> (e.Run_report.id, `Resumed)
                          | Run_report.Failed { attempts; _ } -> (e.Run_report.id, `Failed attempts))
                        (Run_report.entries report)
                    in
                    let rows =
                      List.filter_map
                        (fun id ->
                          if Dataset.row_index mica id <> None then
                            Some (id, Dataset.row_exn mica id)
                          else None)
                        ids
                    in
                    (statuses, rows)))
          in
          let statuses, rows = run () in
          (* no fault may corrupt a produced row *)
          List.iter
            (fun (id, row) ->
              let bm, _ = baseline id in
              if row <> bm then
                Alcotest.failf "%s retries=%d: surviving row %s corrupted" spec retries id)
            rows;
          (* failures consumed their whole budget and are reported *)
          List.iter
            (fun (id, st) ->
              match st with
              | `Failed attempts ->
                if attempts <> retries + 1 then
                  Alcotest.failf "%s retries=%d: %s failed with %d attempts" spec retries id
                    attempts;
                if List.mem_assoc id rows then
                  Alcotest.failf "%s: failed workload %s still has a row" spec id
              | `Ok _ | `Cached | `Resumed -> ())
            statuses;
          (* cache and crash faults are fully absorbed by recovery *)
          (match point with
          | Fault.Cache_read | Fault.Cache_write | Fault.Pool_crash ->
            List.iter
              (fun (id, st) ->
                match st with
                | `Failed _ -> Alcotest.failf "%s: %s failed but the point is recoverable" spec id
                | _ -> ())
              statuses
          | Fault.Trace_gen | Fault.Analyzer_chunk | Fault.Pool_worker -> ());
          (* (c) determinism: the same plan replays to the same outcome *)
          let statuses2, rows2 = run () in
          if statuses <> statuses2 || rows <> rows2 then
            Alcotest.failf "%s retries=%d: fault injection not deterministic" spec retries)
        [ 0; 2 ])
    Fault.all_points

let suite =
  ( "fuzz",
    [
      prop_spec_valid;
      prop_generator_runs_exact;
      prop_stream_well_formed;
      prop_control_flow_chains;
      prop_analysis_bounded;
      prop_machines_bounded;
      prop_trace_roundtrip;
      prop_spec_file_fixpoint;
      Alcotest.test_case "branch stats exact" `Quick test_branch_stats_exact;
      Alcotest.test_case "branch stats transition" `Quick
        test_branch_stats_alternating_vs_constant;
      Alcotest.test_case "fault matrix sweep" `Quick test_fault_matrix;
    ] )
