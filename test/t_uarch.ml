module U = Mica_uarch
module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

(* ---------------- cache ---------------- *)

let test_cache_geometry () =
  let c = U.Cache.create ~name:"c" ~size_bytes:8192 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check int) "sets" 256 (U.Cache.sets c);
  Alcotest.(check int) "line" 32 (U.Cache.line_bytes c);
  let l2 = U.Cache.create ~name:"l2" ~size_bytes:(96 * 1024) ~line_bytes:64 ~assoc:3 in
  Alcotest.(check int) "21164 L2 sets" 512 (U.Cache.sets l2)

let test_cache_invalid_geometry () =
  (try
     ignore (U.Cache.create ~name:"bad" ~size_bytes:1000 ~line_bytes:33 ~assoc:1);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (U.Cache.create ~name:"bad" ~size_bytes:64 ~line_bytes:64 ~assoc:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_cache_size_not_multiple_rejected () =
  (* 2100 / 64 truncates to 32 sets — a pow2, so this used to be silently
     accepted as an effectively 2048-byte cache; it must be rejected *)
  try
    ignore (U.Cache.create ~name:"bad" ~size_bytes:2100 ~line_bytes:32 ~assoc:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument msg ->
    Alcotest.(check bool) "actionable message" true
      (String.length msg > 0 && String.lowercase_ascii msg |> fun m ->
       String.length m >= 5)

let test_cache_assoc3_lru () =
  (* non-power-of-two associativity is explicitly legal: one 3-way set *)
  let c = U.Cache.create ~name:"a3" ~size_bytes:192 ~line_bytes:64 ~assoc:3 in
  Alcotest.(check int) "one set" 1 (U.Cache.sets c);
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x1000);
  ignore (U.Cache.access c 0x2000);
  Alcotest.(check bool) "way 0 resident" true (U.Cache.access c 0x0);
  Alcotest.(check bool) "way 1 resident" true (U.Cache.access c 0x1000);
  Alcotest.(check bool) "way 2 resident" true (U.Cache.access c 0x2000);
  (* recency is now 0x0 < 0x1000 < 0x2000; a fourth line evicts 0x0 *)
  ignore (U.Cache.access c 0x3000);
  Alcotest.(check bool) "MRU kept" true (U.Cache.access c 0x2000);
  Alcotest.(check bool) "LRU evicted" false (U.Cache.access c 0x0)

let test_cache_access_range () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  (* 8 bytes at 0x3e straddle lines 1 and 2: both must be touched *)
  Alcotest.(check bool) "cold straddle misses" false (U.Cache.access_range c 0x3e ~bytes:8);
  Alcotest.(check int) "two lines accessed" 2 (U.Cache.accesses c);
  Alcotest.(check int) "two lines missed" 2 (U.Cache.misses c);
  Alcotest.(check bool) "warm straddle hits" true (U.Cache.access_range c 0x3e ~bytes:8);
  (* a transfer inside one line is one access *)
  ignore (U.Cache.access_range c 0x100 ~bytes:32);
  Alcotest.(check int) "single line accessed once" 5 (U.Cache.accesses c);
  try
    ignore (U.Cache.access_range c 0x0 ~bytes:0);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_cache_bigger_is_not_worse_on_stream =
  (* cyclic sequential sweeps: growing the cache (same line size and
     associativity) can never increase the miss count *)
  Tutil.qcheck_case ~count:60 "monotone cache size on streaming trace"
    QCheck2.Gen.(tup3 (int_range 10 13) (int_range 1 3) (int_range 4 4096))
    (fun (k, delta, region_lines) ->
      let sweep c =
        for _ = 1 to 3 do
          for i = 0 to region_lines - 1 do
            ignore (U.Cache.access c (i * 32))
          done
        done;
        U.Cache.misses c
      in
      let small = U.Cache.create ~name:"s" ~size_bytes:(1 lsl k) ~line_bytes:32 ~assoc:2 in
      let big =
        U.Cache.create ~name:"b" ~size_bytes:(1 lsl (k + delta)) ~line_bytes:32 ~assoc:2
      in
      sweep big <= sweep small)

let test_cache_hit_miss () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check bool) "cold miss" false (U.Cache.access c 0x100);
  Alcotest.(check bool) "hit same line" true (U.Cache.access c 0x110);
  Alcotest.(check bool) "miss next line" false (U.Cache.access c 0x120);
  Alcotest.(check int) "accesses" 3 (U.Cache.accesses c);
  Alcotest.(check int) "misses" 2 (U.Cache.misses c)

let test_cache_direct_mapped_conflict () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  (* addresses 1024 apart map to the same set in a 1KB direct-mapped cache *)
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x400);
  Alcotest.(check bool) "conflict evicted" false (U.Cache.access c 0x0)

let test_cache_associativity_absorbs_conflict () =
  let c = U.Cache.create ~name:"c" ~size_bytes:2048 ~line_bytes:32 ~assoc:2 in
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x400);
  Alcotest.(check bool) "both ways live" true (U.Cache.access c 0x0);
  Alcotest.(check bool) "second way too" true (U.Cache.access c 0x400)

let test_cache_lru () =
  let c = U.Cache.create ~name:"c" ~size_bytes:2048 ~line_bytes:32 ~assoc:2 in
  (* three conflicting lines in a 2-way set: LRU must be evicted *)
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x400);
  ignore (U.Cache.access c 0x0);
  (* touch 0x0 so 0x400 is LRU *)
  ignore (U.Cache.access c 0x800);
  (* evicts 0x400 *)
  Alcotest.(check bool) "MRU survives" true (U.Cache.access c 0x0);
  Alcotest.(check bool) "LRU evicted" false (U.Cache.access c 0x400)

let test_cache_probe_no_side_effect () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check bool) "probe cold" false (U.Cache.probe c 0x100);
  Alcotest.(check int) "probe not counted" 0 (U.Cache.accesses c);
  ignore (U.Cache.access c 0x100);
  Alcotest.(check bool) "probe warm" true (U.Cache.probe c 0x100)

let test_cache_reset_counters () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  ignore (U.Cache.access c 0x100);
  U.Cache.reset_counters c;
  Alcotest.(check int) "reset" 0 (U.Cache.accesses c);
  Alcotest.(check bool) "contents kept" true (U.Cache.access c 0x100)

let prop_cache_miss_rate_bounds =
  Tutil.qcheck_case ~count:50 "miss rate in [0,1]"
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 100_000))
    (fun addrs ->
      let c = U.Cache.create ~name:"p" ~size_bytes:512 ~line_bytes:32 ~assoc:2 in
      List.iter (fun a -> ignore (U.Cache.access c a)) addrs;
      let r = U.Cache.miss_rate c in
      r >= 0.0 && r <= 1.0)

(* ---------------- tlb ---------------- *)

let test_tlb_basic () =
  let t = U.Tlb.create ~entries:2 ~page_bytes:8192 in
  Alcotest.(check bool) "cold" false (U.Tlb.access t 0x0);
  Alcotest.(check bool) "same page" true (U.Tlb.access t 0x1FFF);
  Alcotest.(check bool) "new page" false (U.Tlb.access t 0x2000);
  Alcotest.(check bool) "both resident" true (U.Tlb.access t 0x0)

let test_tlb_lru_eviction () =
  let t = U.Tlb.create ~entries:2 ~page_bytes:8192 in
  ignore (U.Tlb.access t 0x0000);
  ignore (U.Tlb.access t 0x2000);
  ignore (U.Tlb.access t 0x0000);
  (* 0x2000 now LRU *)
  ignore (U.Tlb.access t 0x4000);
  (* evicts 0x2000 *)
  Alcotest.(check bool) "MRU kept" true (U.Tlb.access t 0x0000);
  Alcotest.(check bool) "LRU gone" false (U.Tlb.access t 0x2000)

let test_tlb_invalid () =
  try
    ignore (U.Tlb.create ~entries:0 ~page_bytes:8192);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_tlb_access_range () =
  let t = U.Tlb.create ~entries:4 ~page_bytes:4096 in
  (* 4 bytes at 4094 straddle pages 0 and 1: two lookups, two misses *)
  Alcotest.(check bool) "cold straddle misses" false (U.Tlb.access_range t 4094 ~bytes:4);
  Alcotest.(check int) "two pages translated" 2 (U.Tlb.accesses t);
  Alcotest.(check int) "two pages missed" 2 (U.Tlb.misses t);
  Alcotest.(check bool) "both pages resident" true (U.Tlb.access t 4096);
  Alcotest.(check bool) "warm straddle hits" true (U.Tlb.access_range t 4094 ~bytes:4);
  try
    ignore (U.Tlb.access_range t 0 ~bytes:(-1));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- branch predictors ---------------- *)

let drive pred outcomes =
  List.iter (fun (pc, taken) -> ignore (U.Branch_pred.predict_update pred ~pc ~taken)) outcomes

let test_bimodal_learns_bias () =
  let p = U.Branch_pred.bimodal ~entries:256 in
  drive p (List.init 1_000 (fun _ -> (0x100, true)));
  Alcotest.(check bool) "constant branch learned" true (U.Branch_pred.miss_rate p < 0.02)

let test_bimodal_cannot_learn_alternation () =
  let p = U.Branch_pred.bimodal ~entries:256 in
  drive p (List.init 1_000 (fun i -> (0x100, i mod 2 = 0)));
  Alcotest.(check bool) "alternation defeats bimodal" true (U.Branch_pred.miss_rate p > 0.4)

let test_local_learns_alternation () =
  let p = U.Branch_pred.local ~entries:256 ~history_bits:8 in
  drive p (List.init 2_000 (fun i -> (0x100, i mod 2 = 0)));
  Alcotest.(check bool) "local history learns alternation" true (U.Branch_pred.miss_rate p < 0.1)

let test_gshare_learns_global_pattern () =
  let p = U.Branch_pred.gshare ~entries:1024 ~history_bits:8 in
  drive p (List.init 4_000 (fun i -> (0x100, i mod 4 < 2)));
  Alcotest.(check bool) "gshare learns period-4 pattern" true (U.Branch_pred.miss_rate p < 0.1)

let test_tournament_tracks_best () =
  (* alternating pattern: local component wins, tournament should approach it *)
  let t = U.Branch_pred.tournament ~entries:1024 ~history_bits:8 in
  drive t (List.init 4_000 (fun i -> (0x100, i mod 2 = 0)));
  Alcotest.(check bool) "tournament learns via best component" true
    (U.Branch_pred.miss_rate t < 0.15)

let test_predictor_counts () =
  let p = U.Branch_pred.bimodal ~entries:64 in
  drive p [ (0x4, true); (0x4, true) ];
  Alcotest.(check int) "predictions counted" 2 (U.Branch_pred.predictions p)

(* ---------------- timing models ---------------- *)

let run_model sink instrs = Mica_trace.Sink.feed_list sink instrs

let straight_line_trace n =
  List.init n (fun i -> Tutil.alu ~pc:(0x1000 + (4 * (i mod 64))) ~dst:(i mod 8) ())

let test_inorder_ipc_bounds () =
  let m = U.Inorder.create () in
  run_model (U.Inorder.sink m) (straight_line_trace 10_000);
  let r = U.Inorder.result m in
  Alcotest.(check int) "instruction count" 10_000 r.U.Inorder.instructions;
  Alcotest.(check bool) "IPC within issue width" true
    (r.U.Inorder.ipc > 0.0 && r.U.Inorder.ipc <= 2.0);
  (* cache-resident ALU code should run near full width *)
  Alcotest.(check bool) "near peak on easy code" true (r.U.Inorder.ipc > 1.8)

let test_inorder_misses_hurt () =
  let easy = U.Inorder.create () in
  run_model (U.Inorder.sink easy) (straight_line_trace 5_000);
  let hard = U.Inorder.create () in
  (* loads striding far apart: every access misses *)
  run_model (U.Inorder.sink hard)
    (List.init 5_000 (fun i -> Tutil.load ~pc:0x1000 ~dst:1 ~addr:(i * 8192) ()));
  let e = (U.Inorder.result easy).U.Inorder.ipc in
  let h = (U.Inorder.result hard).U.Inorder.ipc in
  Alcotest.(check bool) "misses lower IPC" true (h < e /. 4.0)

let test_inorder_counter_rates () =
  let m = U.Inorder.create () in
  run_model (U.Inorder.sink m)
    (List.init 1_000 (fun i -> Tutil.load ~pc:0x1000 ~dst:1 ~addr:(i * 65536) ()));
  let r = U.Inorder.result m in
  Alcotest.(check bool) "thrashing L1D" true (r.U.Inorder.l1d_miss_rate > 0.9);
  Alcotest.(check bool) "thrashing DTLB" true (r.U.Inorder.dtlb_miss_rate > 0.9);
  Alcotest.(check bool) "I-stream resident" true (r.U.Inorder.l1i_miss_rate < 0.05)

let test_ooo_ipc_bounds () =
  let m = U.Ooo.create () in
  run_model (U.Ooo.sink m) (straight_line_trace 10_000);
  let r = U.Ooo.result m in
  Alcotest.(check bool) "IPC within width" true (r.U.Ooo.ipc > 0.0 && r.U.Ooo.ipc <= 4.0);
  Alcotest.(check bool) "wide on independent code" true (r.U.Ooo.ipc > 3.0)

let test_ooo_beats_inorder_on_ilp () =
  let trace = straight_line_trace 10_000 in
  let io = U.Inorder.create () and oo = U.Ooo.create () in
  run_model (U.Inorder.sink io) trace;
  run_model (U.Ooo.sink oo) trace;
  Alcotest.(check bool) "4-wide OOO > 2-wide in-order" true
    ((U.Ooo.result oo).U.Ooo.ipc > (U.Inorder.result io).U.Inorder.ipc)

let test_ooo_serial_dependency_limits () =
  let m = U.Ooo.create () in
  run_model (U.Ooo.sink m)
    (List.init 10_000 (fun i -> Tutil.alu ~pc:(0x1000 + (4 * (i mod 64))) ~src1:1 ~dst:1 ()));
  let r = U.Ooo.result m in
  Alcotest.(check bool) "serial chain caps IPC near 1" true (r.U.Ooo.ipc < 1.2)

let test_ooo_mispredicts_hurt () =
  let rng = Mica_util.Rng.create ~seed:5L in
  let random_branches =
    List.init 10_000 (fun i ->
        if i mod 4 = 0 then Tutil.branch ~pc:0x1000 ~taken:(Mica_util.Rng.bool rng) ~target:0x2000 ()
        else Tutil.alu ~pc:(0x1004 + (4 * (i mod 16))) ())
  in
  let m = U.Ooo.create () in
  run_model (U.Ooo.sink m) random_branches;
  let r = U.Ooo.result m in
  Alcotest.(check bool) "random branches mispredict" true
    (r.U.Ooo.branch_mispredict_rate > 0.3);
  Alcotest.(check bool) "mispredicts throttle IPC" true (r.U.Ooo.ipc < 2.5)

(* ---------------- hw counters ---------------- *)

let test_hw_counters_shape () =
  let p = Tutil.tiny_program "hw-shape" in
  let r = U.Hw_counters.measure p ~icount:10_000 in
  let v = U.Hw_counters.to_vector r in
  Alcotest.(check int) "7 metrics" U.Hw_counters.count (Array.length v);
  Array.iteri
    (fun i x -> if Float.is_nan x then Alcotest.failf "counter %d is NaN" i)
    v;
  Alcotest.(check bool) "rates in [0,1]" true
    (List.for_all
       (fun x -> x >= 0.0 && x <= 1.0)
       [
         r.U.Hw_counters.branch_mispredict_rate;
         r.U.Hw_counters.l1d_miss_rate;
         r.U.Hw_counters.l1i_miss_rate;
         r.U.Hw_counters.l2_miss_rate;
         r.U.Hw_counters.dtlb_miss_rate;
       ])

let test_hw_counters_deterministic () =
  let p = Tutil.tiny_program "hw-det" in
  let a = U.Hw_counters.to_vector (U.Hw_counters.measure p ~icount:10_000) in
  let b = U.Hw_counters.to_vector (U.Hw_counters.measure p ~icount:10_000) in
  Alcotest.(check bool) "deterministic" true (a = b)

(* ---------------- configurable machines ---------------- *)

let test_machine_presets_run () =
  let p = Tutil.tiny_program "machine-presets" in
  List.iter
    (fun cfg ->
      let r = U.Machine.measure cfg p ~icount:5_000 in
      let v = U.Machine.to_vector r in
      Alcotest.(check int) "6 metrics" 6 (Array.length v);
      Array.iter (fun x -> if Float.is_nan x then Alcotest.fail "NaN metric") v;
      if r.U.Machine.ipc <= 0.0 then Alcotest.failf "%s ipc <= 0" cfg.U.Machine.name)
    U.Machine.presets

let test_machine_ipc_respects_width () =
  let p = Tutil.tiny_program "machine-width" in
  List.iter
    (fun cfg ->
      let r = U.Machine.measure cfg p ~icount:5_000 in
      let peak =
        match cfg.U.Machine.core with
        | U.Machine.In_order { issue_width } -> float_of_int issue_width
        | U.Machine.Out_of_order { width; _ } -> float_of_int width
      in
      if r.U.Machine.ipc > peak +. 1e-9 then
        Alcotest.failf "%s ipc %.2f exceeds width %.0f" cfg.U.Machine.name r.U.Machine.ipc peak)
    U.Machine.presets

let test_machine_matches_canonical_models () =
  (* the ev56 preset and the standalone Inorder model agree on the trace *)
  let p = Tutil.tiny_program "machine-agree" in
  let preset = U.Machine.measure U.Machine.ev56 p ~icount:10_000 in
  let io = U.Inorder.create () in
  let (_ : int) = Mica_trace.Generator.run p ~icount:10_000 ~sink:(U.Inorder.sink io) in
  let canon = U.Inorder.result io in
  Alcotest.check Tutil.feq_loose "same ipc" canon.U.Inorder.ipc preset.U.Machine.ipc;
  Alcotest.check Tutil.feq_loose "same l1d" canon.U.Inorder.l1d_miss_rate
    preset.U.Machine.l1d_miss_rate

let test_machine_measure_all_isolated () =
  (* fanned-out machines give the same result as individual runs *)
  let p = Tutil.tiny_program "machine-fanout" in
  let together = U.Machine.measure_all [ U.Machine.ev56; U.Machine.embedded ] p ~icount:5_000 in
  let alone =
    [ U.Machine.measure U.Machine.ev56 p ~icount:5_000;
      U.Machine.measure U.Machine.embedded p ~icount:5_000 ]
  in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "identical results" true
        (U.Machine.to_vector a = U.Machine.to_vector b))
    together alone

let test_machine_bigger_cache_fewer_misses () =
  let w = Mica_workloads.Registry.find_exn "SPEC2000/gcc/166" in
  let small = U.Machine.measure U.Machine.ev56 w.Mica_workloads.Workload.model ~icount:30_000 in
  let big = U.Machine.measure U.Machine.wide w.Mica_workloads.Workload.model ~icount:30_000 in
  Alcotest.(check bool) "64KB L1D misses less than 8KB" true
    (big.U.Machine.l1d_miss_rate < small.U.Machine.l1d_miss_rate)


let test_machine_prefetch_helps_streaming () =
  (* sequential sweep: next-line prefetching halves (or better) the L1D
     miss rate; on pointer-style random access it must not help *)
  let stream = List.init 4_000 (fun i -> Tutil.load ~pc:0x1000 ~dst:1 ~addr:(0x100000 + (i * 8)) ()) in
  let base = { U.Machine.ev56 with U.Machine.name = "nopf" } in
  let pf = { base with U.Machine.name = "pf"; prefetch_next_line = true } in
  let run cfg trace =
    let t = U.Machine.create cfg in
    Mica_trace.Sink.feed_list (U.Machine.sink t) trace;
    (U.Machine.result t).U.Machine.l1d_miss_rate
  in
  let no_pf = run base stream and with_pf = run pf stream in
  Alcotest.(check bool) "prefetch cuts streaming misses" true (with_pf < no_pf /. 1.8);
  let rng = Mica_util.Rng.create ~seed:3L in
  let random =
    List.init 4_000 (fun _ ->
        Tutil.load ~pc:0x1000 ~dst:1 ~addr:(0x100000 + (Mica_util.Rng.int rng 65536 * 64)) ())
  in
  let no_pf_r = run base random and with_pf_r = run pf random in
  Alcotest.(check bool) "prefetch useless on random access" true
    (with_pf_r > no_pf_r -. 0.05)

(* ---------------- golden preset vectors ---------------- *)

(* The full 6-metric vector of every preset on a pinned trace, bit-exact.
   These lock the timing models down hard: any change to cache, TLB,
   predictor, issue or latency handling that shifts a single ULP anywhere
   shows up here.  Regenerate only for a deliberate model change. *)
let preset_goldens =
  [
    ( "ev56",
      [| 0.36746467745787936; 0.17249796582587471; 0.22902150863374734;
         0.0010499999999999999; 0.38878016960208739; 0.0012117540139351712 |] );
    ( "ev67",
      [| 0.82781456953642385; 0.17982099267697316; 0.088609512269009386;
         0.00055000000000000003; 1.; 0.0012117540139351712 |] );
    ( "embedded",
      [| 0.1599756836960782; 0.17249796582587471; 0.1937291729778855;
         0.0010499999999999999; 0.93769230769230771; 0.0022720387761284459 |] );
    ( "wide",
      [| 1.1934598400763814; 0.18104149715215623; 0.046652529536504089;
         0.00055000000000000003; 1.; 0.0012117540139351712 |] );
  ]

let test_preset_golden_vectors () =
  let p = Tutil.tiny_program "preset-golden" in
  List.iter2
    (fun (cfg : U.Machine.config) (name, expect) ->
      Alcotest.(check string) "preset order" name cfg.U.Machine.name;
      let v = U.Machine.to_vector (U.Machine.measure cfg p ~icount:20_000) in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float expect.(i) then
            Alcotest.failf "%s %s: %.17g <> golden %.17g" name
              U.Machine.metric_names.(i) x expect.(i))
        v)
    U.Machine.presets preset_goldens

(* ---------------- machine properties over random kernels ---------------- *)

let gen_machine_kernel =
  QCheck2.Gen.(
    let* load = float_range 0.0 0.4
    and* store = float_range 0.0 0.2
    and* brf = float_range 0.0 0.2
    and* int_mul = float_range 0.0 0.1
    and* fp = float_range 0.0 0.2
    and* data_kb = int_range 1 256
    and* stride = oneofl [ 4; 8; 16; 64 ]
    and* trip = int_range 1 64
    and* which = int_range 0 3 in
    let sum = load +. store +. brf +. int_mul +. fp in
    let scale = if sum > 0.9 then 0.9 /. sum else 1.0 in
    let spec =
      {
        Mica_trace.Kernel.default with
        Mica_trace.Kernel.name = "qcheck-machine";
        mix =
          {
            Mica_trace.Kernel.load = load *. scale;
            store = store *. scale;
            branch = brf *. scale;
            int_mul = int_mul *. scale;
            fp = fp *. scale;
          };
        data_bytes = data_kb * 1024;
        trip_count = trip;
        load_patterns = [ (1.0, Mica_trace.Kernel.Seq { stride }) ];
        store_patterns = [ (1.0, Mica_trace.Kernel.Seq { stride }) ];
      }
    in
    return (spec, which))

let prop_machine_rates_bounded =
  Tutil.qcheck_case ~count:30 "machine rates in [0,1], ipc within width"
    gen_machine_kernel
    (fun (spec, which) ->
      (match Mica_trace.Kernel.validate spec with
      | Ok () -> ()
      | Error m -> QCheck2.Test.fail_reportf "generated kernel invalid: %s" m);
      let cfg = List.nth U.Machine.presets which in
      let p = Mica_trace.Program.single ~name:"qcheck-machine" spec in
      let r = U.Machine.measure cfg p ~icount:3_000 in
      let v = U.Machine.to_vector r in
      let width =
        match cfg.U.Machine.core with
        | U.Machine.In_order { issue_width } -> float_of_int issue_width
        | U.Machine.Out_of_order { width; _ } -> float_of_int width
      in
      let rates = List.tl (Array.to_list v) in
      r.U.Machine.ipc > 0.0
      && r.U.Machine.ipc <= width +. 1e-9
      && List.for_all (fun x -> x >= 0.0 && x <= 1.0) rates)

let suite =
  ( "uarch",
    [
      Alcotest.test_case "machine presets run" `Quick test_machine_presets_run;
      Alcotest.test_case "machine ipc within width" `Quick test_machine_ipc_respects_width;
      Alcotest.test_case "machine matches canonical" `Quick test_machine_matches_canonical_models;
      Alcotest.test_case "machine fanout isolated" `Quick test_machine_measure_all_isolated;
      Alcotest.test_case "machine cache scaling" `Quick test_machine_bigger_cache_fewer_misses;
      Alcotest.test_case "machine prefetcher" `Quick test_machine_prefetch_helps_streaming;
      Alcotest.test_case "preset golden vectors" `Quick test_preset_golden_vectors;
      prop_machine_rates_bounded;
      Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
      Alcotest.test_case "cache invalid geometry" `Quick test_cache_invalid_geometry;
      Alcotest.test_case "cache size not multiple rejected" `Quick
        test_cache_size_not_multiple_rejected;
      Alcotest.test_case "cache 3-way LRU" `Quick test_cache_assoc3_lru;
      Alcotest.test_case "cache access range" `Quick test_cache_access_range;
      prop_cache_bigger_is_not_worse_on_stream;
      Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
      Alcotest.test_case "cache direct-mapped conflict" `Quick test_cache_direct_mapped_conflict;
      Alcotest.test_case "cache associativity" `Quick test_cache_associativity_absorbs_conflict;
      Alcotest.test_case "cache LRU" `Quick test_cache_lru;
      Alcotest.test_case "cache probe" `Quick test_cache_probe_no_side_effect;
      Alcotest.test_case "cache reset" `Quick test_cache_reset_counters;
      prop_cache_miss_rate_bounds;
      Alcotest.test_case "tlb basics" `Quick test_tlb_basic;
      Alcotest.test_case "tlb LRU" `Quick test_tlb_lru_eviction;
      Alcotest.test_case "tlb invalid" `Quick test_tlb_invalid;
      Alcotest.test_case "tlb access range" `Quick test_tlb_access_range;
      Alcotest.test_case "bimodal learns bias" `Quick test_bimodal_learns_bias;
      Alcotest.test_case "bimodal vs alternation" `Quick test_bimodal_cannot_learn_alternation;
      Alcotest.test_case "local learns alternation" `Quick test_local_learns_alternation;
      Alcotest.test_case "gshare learns pattern" `Quick test_gshare_learns_global_pattern;
      Alcotest.test_case "tournament" `Quick test_tournament_tracks_best;
      Alcotest.test_case "predictor counts" `Quick test_predictor_counts;
      Alcotest.test_case "inorder IPC bounds" `Quick test_inorder_ipc_bounds;
      Alcotest.test_case "inorder misses hurt" `Quick test_inorder_misses_hurt;
      Alcotest.test_case "inorder counter rates" `Quick test_inorder_counter_rates;
      Alcotest.test_case "ooo IPC bounds" `Quick test_ooo_ipc_bounds;
      Alcotest.test_case "ooo beats inorder" `Quick test_ooo_beats_inorder_on_ilp;
      Alcotest.test_case "ooo serial limit" `Quick test_ooo_serial_dependency_limits;
      Alcotest.test_case "ooo mispredicts hurt" `Quick test_ooo_mispredicts_hurt;
      Alcotest.test_case "hw counters shape" `Quick test_hw_counters_shape;
      Alcotest.test_case "hw counters deterministic" `Quick test_hw_counters_deterministic;
    ] )
