module U = Mica_uarch
module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

(* ---------------- cache ---------------- *)

let test_cache_geometry () =
  let c = U.Cache.create ~name:"c" ~size_bytes:8192 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check int) "sets" 256 (U.Cache.sets c);
  Alcotest.(check int) "line" 32 (U.Cache.line_bytes c);
  let l2 = U.Cache.create ~name:"l2" ~size_bytes:(96 * 1024) ~line_bytes:64 ~assoc:3 in
  Alcotest.(check int) "21164 L2 sets" 512 (U.Cache.sets l2)

let test_cache_invalid_geometry () =
  (try
     ignore (U.Cache.create ~name:"bad" ~size_bytes:1000 ~line_bytes:33 ~assoc:1);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (U.Cache.create ~name:"bad" ~size_bytes:64 ~line_bytes:64 ~assoc:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_cache_hit_miss () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check bool) "cold miss" false (U.Cache.access c 0x100);
  Alcotest.(check bool) "hit same line" true (U.Cache.access c 0x110);
  Alcotest.(check bool) "miss next line" false (U.Cache.access c 0x120);
  Alcotest.(check int) "accesses" 3 (U.Cache.accesses c);
  Alcotest.(check int) "misses" 2 (U.Cache.misses c)

let test_cache_direct_mapped_conflict () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  (* addresses 1024 apart map to the same set in a 1KB direct-mapped cache *)
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x400);
  Alcotest.(check bool) "conflict evicted" false (U.Cache.access c 0x0)

let test_cache_associativity_absorbs_conflict () =
  let c = U.Cache.create ~name:"c" ~size_bytes:2048 ~line_bytes:32 ~assoc:2 in
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x400);
  Alcotest.(check bool) "both ways live" true (U.Cache.access c 0x0);
  Alcotest.(check bool) "second way too" true (U.Cache.access c 0x400)

let test_cache_lru () =
  let c = U.Cache.create ~name:"c" ~size_bytes:2048 ~line_bytes:32 ~assoc:2 in
  (* three conflicting lines in a 2-way set: LRU must be evicted *)
  ignore (U.Cache.access c 0x0);
  ignore (U.Cache.access c 0x400);
  ignore (U.Cache.access c 0x0);
  (* touch 0x0 so 0x400 is LRU *)
  ignore (U.Cache.access c 0x800);
  (* evicts 0x400 *)
  Alcotest.(check bool) "MRU survives" true (U.Cache.access c 0x0);
  Alcotest.(check bool) "LRU evicted" false (U.Cache.access c 0x400)

let test_cache_probe_no_side_effect () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  Alcotest.(check bool) "probe cold" false (U.Cache.probe c 0x100);
  Alcotest.(check int) "probe not counted" 0 (U.Cache.accesses c);
  ignore (U.Cache.access c 0x100);
  Alcotest.(check bool) "probe warm" true (U.Cache.probe c 0x100)

let test_cache_reset_counters () =
  let c = U.Cache.create ~name:"c" ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  ignore (U.Cache.access c 0x100);
  U.Cache.reset_counters c;
  Alcotest.(check int) "reset" 0 (U.Cache.accesses c);
  Alcotest.(check bool) "contents kept" true (U.Cache.access c 0x100)

let prop_cache_miss_rate_bounds =
  Tutil.qcheck_case ~count:50 "miss rate in [0,1]"
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 100_000))
    (fun addrs ->
      let c = U.Cache.create ~name:"p" ~size_bytes:512 ~line_bytes:32 ~assoc:2 in
      List.iter (fun a -> ignore (U.Cache.access c a)) addrs;
      let r = U.Cache.miss_rate c in
      r >= 0.0 && r <= 1.0)

(* ---------------- tlb ---------------- *)

let test_tlb_basic () =
  let t = U.Tlb.create ~entries:2 ~page_bytes:8192 in
  Alcotest.(check bool) "cold" false (U.Tlb.access t 0x0);
  Alcotest.(check bool) "same page" true (U.Tlb.access t 0x1FFF);
  Alcotest.(check bool) "new page" false (U.Tlb.access t 0x2000);
  Alcotest.(check bool) "both resident" true (U.Tlb.access t 0x0)

let test_tlb_lru_eviction () =
  let t = U.Tlb.create ~entries:2 ~page_bytes:8192 in
  ignore (U.Tlb.access t 0x0000);
  ignore (U.Tlb.access t 0x2000);
  ignore (U.Tlb.access t 0x0000);
  (* 0x2000 now LRU *)
  ignore (U.Tlb.access t 0x4000);
  (* evicts 0x2000 *)
  Alcotest.(check bool) "MRU kept" true (U.Tlb.access t 0x0000);
  Alcotest.(check bool) "LRU gone" false (U.Tlb.access t 0x2000)

let test_tlb_invalid () =
  try
    ignore (U.Tlb.create ~entries:0 ~page_bytes:8192);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- branch predictors ---------------- *)

let drive pred outcomes =
  List.iter (fun (pc, taken) -> ignore (U.Branch_pred.predict_update pred ~pc ~taken)) outcomes

let test_bimodal_learns_bias () =
  let p = U.Branch_pred.bimodal ~entries:256 in
  drive p (List.init 1_000 (fun _ -> (0x100, true)));
  Alcotest.(check bool) "constant branch learned" true (U.Branch_pred.miss_rate p < 0.02)

let test_bimodal_cannot_learn_alternation () =
  let p = U.Branch_pred.bimodal ~entries:256 in
  drive p (List.init 1_000 (fun i -> (0x100, i mod 2 = 0)));
  Alcotest.(check bool) "alternation defeats bimodal" true (U.Branch_pred.miss_rate p > 0.4)

let test_local_learns_alternation () =
  let p = U.Branch_pred.local ~entries:256 ~history_bits:8 in
  drive p (List.init 2_000 (fun i -> (0x100, i mod 2 = 0)));
  Alcotest.(check bool) "local history learns alternation" true (U.Branch_pred.miss_rate p < 0.1)

let test_gshare_learns_global_pattern () =
  let p = U.Branch_pred.gshare ~entries:1024 ~history_bits:8 in
  drive p (List.init 4_000 (fun i -> (0x100, i mod 4 < 2)));
  Alcotest.(check bool) "gshare learns period-4 pattern" true (U.Branch_pred.miss_rate p < 0.1)

let test_tournament_tracks_best () =
  (* alternating pattern: local component wins, tournament should approach it *)
  let t = U.Branch_pred.tournament ~entries:1024 ~history_bits:8 in
  drive t (List.init 4_000 (fun i -> (0x100, i mod 2 = 0)));
  Alcotest.(check bool) "tournament learns via best component" true
    (U.Branch_pred.miss_rate t < 0.15)

let test_predictor_counts () =
  let p = U.Branch_pred.bimodal ~entries:64 in
  drive p [ (0x4, true); (0x4, true) ];
  Alcotest.(check int) "predictions counted" 2 (U.Branch_pred.predictions p)

(* ---------------- timing models ---------------- *)

let run_model sink instrs = Mica_trace.Sink.feed_list sink instrs

let straight_line_trace n =
  List.init n (fun i -> Tutil.alu ~pc:(0x1000 + (4 * (i mod 64))) ~dst:(i mod 8) ())

let test_inorder_ipc_bounds () =
  let m = U.Inorder.create () in
  run_model (U.Inorder.sink m) (straight_line_trace 10_000);
  let r = U.Inorder.result m in
  Alcotest.(check int) "instruction count" 10_000 r.U.Inorder.instructions;
  Alcotest.(check bool) "IPC within issue width" true
    (r.U.Inorder.ipc > 0.0 && r.U.Inorder.ipc <= 2.0);
  (* cache-resident ALU code should run near full width *)
  Alcotest.(check bool) "near peak on easy code" true (r.U.Inorder.ipc > 1.8)

let test_inorder_misses_hurt () =
  let easy = U.Inorder.create () in
  run_model (U.Inorder.sink easy) (straight_line_trace 5_000);
  let hard = U.Inorder.create () in
  (* loads striding far apart: every access misses *)
  run_model (U.Inorder.sink hard)
    (List.init 5_000 (fun i -> Tutil.load ~pc:0x1000 ~dst:1 ~addr:(i * 8192) ()));
  let e = (U.Inorder.result easy).U.Inorder.ipc in
  let h = (U.Inorder.result hard).U.Inorder.ipc in
  Alcotest.(check bool) "misses lower IPC" true (h < e /. 4.0)

let test_inorder_counter_rates () =
  let m = U.Inorder.create () in
  run_model (U.Inorder.sink m)
    (List.init 1_000 (fun i -> Tutil.load ~pc:0x1000 ~dst:1 ~addr:(i * 65536) ()));
  let r = U.Inorder.result m in
  Alcotest.(check bool) "thrashing L1D" true (r.U.Inorder.l1d_miss_rate > 0.9);
  Alcotest.(check bool) "thrashing DTLB" true (r.U.Inorder.dtlb_miss_rate > 0.9);
  Alcotest.(check bool) "I-stream resident" true (r.U.Inorder.l1i_miss_rate < 0.05)

let test_ooo_ipc_bounds () =
  let m = U.Ooo.create () in
  run_model (U.Ooo.sink m) (straight_line_trace 10_000);
  let r = U.Ooo.result m in
  Alcotest.(check bool) "IPC within width" true (r.U.Ooo.ipc > 0.0 && r.U.Ooo.ipc <= 4.0);
  Alcotest.(check bool) "wide on independent code" true (r.U.Ooo.ipc > 3.0)

let test_ooo_beats_inorder_on_ilp () =
  let trace = straight_line_trace 10_000 in
  let io = U.Inorder.create () and oo = U.Ooo.create () in
  run_model (U.Inorder.sink io) trace;
  run_model (U.Ooo.sink oo) trace;
  Alcotest.(check bool) "4-wide OOO > 2-wide in-order" true
    ((U.Ooo.result oo).U.Ooo.ipc > (U.Inorder.result io).U.Inorder.ipc)

let test_ooo_serial_dependency_limits () =
  let m = U.Ooo.create () in
  run_model (U.Ooo.sink m)
    (List.init 10_000 (fun i -> Tutil.alu ~pc:(0x1000 + (4 * (i mod 64))) ~src1:1 ~dst:1 ()));
  let r = U.Ooo.result m in
  Alcotest.(check bool) "serial chain caps IPC near 1" true (r.U.Ooo.ipc < 1.2)

let test_ooo_mispredicts_hurt () =
  let rng = Mica_util.Rng.create ~seed:5L in
  let random_branches =
    List.init 10_000 (fun i ->
        if i mod 4 = 0 then Tutil.branch ~pc:0x1000 ~taken:(Mica_util.Rng.bool rng) ~target:0x2000 ()
        else Tutil.alu ~pc:(0x1004 + (4 * (i mod 16))) ())
  in
  let m = U.Ooo.create () in
  run_model (U.Ooo.sink m) random_branches;
  let r = U.Ooo.result m in
  Alcotest.(check bool) "random branches mispredict" true
    (r.U.Ooo.branch_mispredict_rate > 0.3);
  Alcotest.(check bool) "mispredicts throttle IPC" true (r.U.Ooo.ipc < 2.5)

(* ---------------- hw counters ---------------- *)

let test_hw_counters_shape () =
  let p = Tutil.tiny_program "hw-shape" in
  let r = U.Hw_counters.measure p ~icount:10_000 in
  let v = U.Hw_counters.to_vector r in
  Alcotest.(check int) "7 metrics" U.Hw_counters.count (Array.length v);
  Array.iteri
    (fun i x -> if Float.is_nan x then Alcotest.failf "counter %d is NaN" i)
    v;
  Alcotest.(check bool) "rates in [0,1]" true
    (List.for_all
       (fun x -> x >= 0.0 && x <= 1.0)
       [
         r.U.Hw_counters.branch_mispredict_rate;
         r.U.Hw_counters.l1d_miss_rate;
         r.U.Hw_counters.l1i_miss_rate;
         r.U.Hw_counters.l2_miss_rate;
         r.U.Hw_counters.dtlb_miss_rate;
       ])

let test_hw_counters_deterministic () =
  let p = Tutil.tiny_program "hw-det" in
  let a = U.Hw_counters.to_vector (U.Hw_counters.measure p ~icount:10_000) in
  let b = U.Hw_counters.to_vector (U.Hw_counters.measure p ~icount:10_000) in
  Alcotest.(check bool) "deterministic" true (a = b)

(* ---------------- configurable machines ---------------- *)

let test_machine_presets_run () =
  let p = Tutil.tiny_program "machine-presets" in
  List.iter
    (fun cfg ->
      let r = U.Machine.measure cfg p ~icount:5_000 in
      let v = U.Machine.to_vector r in
      Alcotest.(check int) "6 metrics" 6 (Array.length v);
      Array.iter (fun x -> if Float.is_nan x then Alcotest.fail "NaN metric") v;
      if r.U.Machine.ipc <= 0.0 then Alcotest.failf "%s ipc <= 0" cfg.U.Machine.name)
    U.Machine.presets

let test_machine_ipc_respects_width () =
  let p = Tutil.tiny_program "machine-width" in
  List.iter
    (fun cfg ->
      let r = U.Machine.measure cfg p ~icount:5_000 in
      let peak =
        match cfg.U.Machine.core with
        | U.Machine.In_order { issue_width } -> float_of_int issue_width
        | U.Machine.Out_of_order { width; _ } -> float_of_int width
      in
      if r.U.Machine.ipc > peak +. 1e-9 then
        Alcotest.failf "%s ipc %.2f exceeds width %.0f" cfg.U.Machine.name r.U.Machine.ipc peak)
    U.Machine.presets

let test_machine_matches_canonical_models () =
  (* the ev56 preset and the standalone Inorder model agree on the trace *)
  let p = Tutil.tiny_program "machine-agree" in
  let preset = U.Machine.measure U.Machine.ev56 p ~icount:10_000 in
  let io = U.Inorder.create () in
  let (_ : int) = Mica_trace.Generator.run p ~icount:10_000 ~sink:(U.Inorder.sink io) in
  let canon = U.Inorder.result io in
  Alcotest.check Tutil.feq_loose "same ipc" canon.U.Inorder.ipc preset.U.Machine.ipc;
  Alcotest.check Tutil.feq_loose "same l1d" canon.U.Inorder.l1d_miss_rate
    preset.U.Machine.l1d_miss_rate

let test_machine_measure_all_isolated () =
  (* fanned-out machines give the same result as individual runs *)
  let p = Tutil.tiny_program "machine-fanout" in
  let together = U.Machine.measure_all [ U.Machine.ev56; U.Machine.embedded ] p ~icount:5_000 in
  let alone =
    [ U.Machine.measure U.Machine.ev56 p ~icount:5_000;
      U.Machine.measure U.Machine.embedded p ~icount:5_000 ]
  in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "identical results" true
        (U.Machine.to_vector a = U.Machine.to_vector b))
    together alone

let test_machine_bigger_cache_fewer_misses () =
  let w = Mica_workloads.Registry.find_exn "SPEC2000/gcc/166" in
  let small = U.Machine.measure U.Machine.ev56 w.Mica_workloads.Workload.model ~icount:30_000 in
  let big = U.Machine.measure U.Machine.wide w.Mica_workloads.Workload.model ~icount:30_000 in
  Alcotest.(check bool) "64KB L1D misses less than 8KB" true
    (big.U.Machine.l1d_miss_rate < small.U.Machine.l1d_miss_rate)


let test_machine_prefetch_helps_streaming () =
  (* sequential sweep: next-line prefetching halves (or better) the L1D
     miss rate; on pointer-style random access it must not help *)
  let stream = List.init 4_000 (fun i -> Tutil.load ~pc:0x1000 ~dst:1 ~addr:(0x100000 + (i * 8)) ()) in
  let base = { U.Machine.ev56 with U.Machine.name = "nopf" } in
  let pf = { base with U.Machine.name = "pf"; prefetch_next_line = true } in
  let run cfg trace =
    let t = U.Machine.create cfg in
    Mica_trace.Sink.feed_list (U.Machine.sink t) trace;
    (U.Machine.result t).U.Machine.l1d_miss_rate
  in
  let no_pf = run base stream and with_pf = run pf stream in
  Alcotest.(check bool) "prefetch cuts streaming misses" true (with_pf < no_pf /. 1.8);
  let rng = Mica_util.Rng.create ~seed:3L in
  let random =
    List.init 4_000 (fun _ ->
        Tutil.load ~pc:0x1000 ~dst:1 ~addr:(0x100000 + (Mica_util.Rng.int rng 65536 * 64)) ())
  in
  let no_pf_r = run base random and with_pf_r = run pf random in
  Alcotest.(check bool) "prefetch useless on random access" true
    (with_pf_r > no_pf_r -. 0.05)

let suite =
  ( "uarch",
    [
      Alcotest.test_case "machine presets run" `Quick test_machine_presets_run;
      Alcotest.test_case "machine ipc within width" `Quick test_machine_ipc_respects_width;
      Alcotest.test_case "machine matches canonical" `Quick test_machine_matches_canonical_models;
      Alcotest.test_case "machine fanout isolated" `Quick test_machine_measure_all_isolated;
      Alcotest.test_case "machine cache scaling" `Quick test_machine_bigger_cache_fewer_misses;
      Alcotest.test_case "machine prefetcher" `Quick test_machine_prefetch_helps_streaming;
      Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
      Alcotest.test_case "cache invalid geometry" `Quick test_cache_invalid_geometry;
      Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
      Alcotest.test_case "cache direct-mapped conflict" `Quick test_cache_direct_mapped_conflict;
      Alcotest.test_case "cache associativity" `Quick test_cache_associativity_absorbs_conflict;
      Alcotest.test_case "cache LRU" `Quick test_cache_lru;
      Alcotest.test_case "cache probe" `Quick test_cache_probe_no_side_effect;
      Alcotest.test_case "cache reset" `Quick test_cache_reset_counters;
      prop_cache_miss_rate_bounds;
      Alcotest.test_case "tlb basics" `Quick test_tlb_basic;
      Alcotest.test_case "tlb LRU" `Quick test_tlb_lru_eviction;
      Alcotest.test_case "tlb invalid" `Quick test_tlb_invalid;
      Alcotest.test_case "bimodal learns bias" `Quick test_bimodal_learns_bias;
      Alcotest.test_case "bimodal vs alternation" `Quick test_bimodal_cannot_learn_alternation;
      Alcotest.test_case "local learns alternation" `Quick test_local_learns_alternation;
      Alcotest.test_case "gshare learns pattern" `Quick test_gshare_learns_global_pattern;
      Alcotest.test_case "tournament" `Quick test_tournament_tracks_best;
      Alcotest.test_case "predictor counts" `Quick test_predictor_counts;
      Alcotest.test_case "inorder IPC bounds" `Quick test_inorder_ipc_bounds;
      Alcotest.test_case "inorder misses hurt" `Quick test_inorder_misses_hurt;
      Alcotest.test_case "inorder counter rates" `Quick test_inorder_counter_rates;
      Alcotest.test_case "ooo IPC bounds" `Quick test_ooo_ipc_bounds;
      Alcotest.test_case "ooo beats inorder" `Quick test_ooo_beats_inorder_on_ilp;
      Alcotest.test_case "ooo serial limit" `Quick test_ooo_serial_dependency_limits;
      Alcotest.test_case "ooo mispredicts hurt" `Quick test_ooo_mispredicts_hurt;
      Alcotest.test_case "hw counters shape" `Quick test_hw_counters_shape;
      Alcotest.test_case "hw counters deterministic" `Quick test_hw_counters_deterministic;
    ] )
