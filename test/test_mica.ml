(* Test entry point: aggregates the per-layer suites. *)

let () =
  Alcotest.run "mica"
    [
      T_rng.suite;
      T_util.suite;
      T_obs.suite;
      T_isa.suite;
      T_trace.suite;
      T_analysis.suite;
      T_uarch.suite;
      T_fleet.suite;
      T_stats.suite;
      T_select.suite;
      T_workloads.suite;
      T_core.suite;
      T_extensions.suite;
      T_families.suite;
      T_fuzz.suite;
      T_verify.suite;
      T_run.suite;
      T_golden.suite;
      T_scale.suite;
      T_sketch.suite;
      T_serve.suite;
    ]
