module Ring = Mica_util.Ring
module Csv = Mica_util.Csv

(* ---------------- Ring ---------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  Alcotest.(check bool) "not full" false (Ring.is_full r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check int) "length 2" 2 (Ring.length r);
  Alcotest.(check int) "newest" 2 (Ring.get r 0);
  Alcotest.(check int) "older" 1 (Ring.get r 1);
  Alcotest.(check int) "oldest" 1 (Ring.oldest r)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check int) "newest is 5" 5 (Ring.get r 0);
  Alcotest.(check int) "oldest is 3" 3 (Ring.oldest r);
  let collected = ref [] in
  Ring.iter r (fun x -> collected := x :: !collected);
  Alcotest.(check (list int)) "iter newest->oldest" [ 3; 4; 5 ] !collected

let test_ring_clear () =
  let r = Ring.create ~capacity:2 in
  Ring.push r 9;
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r)

let prop_ring_model =
  Tutil.qcheck_case "ring matches list model"
    QCheck2.Gen.(pair (int_range 1 16) (list (int_bound 1000)))
    (fun (cap, xs) ->
      let r = Ring.create ~capacity:cap in
      List.iter (Ring.push r) xs;
      let expected =
        let rec last_n n l = if List.length l <= n then l else last_n n (List.tl l) in
        List.rev (last_n cap xs)
      in
      let actual = List.init (Ring.length r) (Ring.get r) in
      actual = expected)

(* ---------------- Csv ---------------- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b")

let test_csv_parse () =
  Alcotest.(check (list string)) "simple" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ] (Csv.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ] (Csv.parse_line "\"a\"\"b\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ] (Csv.parse_line ",,")

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "mica_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rows = [ [ "name"; "x,y"; "q\"q" ]; [ "1"; "2"; "3" ] ] in
      Csv.to_file path rows;
      Alcotest.(check (list (list string))) "roundtrip" rows (Csv.of_file path))

let prop_csv_roundtrip =
  let field_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; ' '; 'z' ]) (int_range 0 8))
  in
  Tutil.qcheck_case "csv line roundtrip"
    QCheck2.Gen.(list_size (int_range 1 6) field_gen)
    (fun fields ->
      let line = String.concat "," (List.map Csv.escape_field fields) in
      Csv.parse_line line = fields)

(* ---------------- Pool ---------------- *)

module Pool = Mica_util.Pool

let test_pool_run_covers_each_index_once () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.run pool n (fun i -> hits.(i) <- hits.(i) + 1);
              if n = 0 then Alcotest.(check int) "nothing ran" 0 hits.(0)
              else
                Array.iteri
                  (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 h)
                  hits)
            [ 0; 1; 2; 7; 100 ]))
    [ 1; 3; 8 ]

let test_pool_map_ordered_and_jobs_invariant () =
  let expected = Array.init 33 (fun i -> i * i) in
  let at jobs = Pool.with_pool ~jobs (fun pool -> Pool.map pool 33 (fun i -> i * i)) in
  Alcotest.(check (array int)) "jobs=1" expected (at 1);
  Alcotest.(check (array int)) "jobs=4" expected (at 4)

let test_pool_run_blocks_partition () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 37 in
      let owner = Array.make n (-1) in
      let blocks = ref [] in
      Pool.run_blocks pool n (fun b lo hi ->
          blocks := (b, lo, hi) :: !blocks;
          for i = lo to hi do
            owner.(i) <- b
          done);
      Array.iteri
        (fun i b -> if b < 0 then Alcotest.failf "index %d not covered" i)
        owner;
      (* contiguous: the owner can only step up by one along the range *)
      for i = 1 to n - 1 do
        if owner.(i) < owner.(i - 1) || owner.(i) > owner.(i - 1) + 1 then
          Alcotest.failf "non-contiguous partition at %d" i
      done;
      Alcotest.(check bool) "at most jobs blocks" true (List.length !blocks <= 4))

let test_pool_exception_propagates_and_pool_survives () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (try
         Pool.run pool 20 (fun i -> if i = 13 then failwith "boom");
         Alcotest.fail "expected exception"
       with Failure m -> Alcotest.(check string) "exception text" "boom" m);
      (* the pool must still work after a failed run *)
      let out = Pool.map pool 20 (fun i -> i + 1) in
      Alcotest.(check int) "usable after error" 20 out.(19))

let test_pool_nested_runs_inline () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let out = Array.make 6 0 in
      Pool.run pool 2 (fun o ->
          Pool.run pool 3 (fun i -> out.((o * 3) + i) <- (o * 3) + i + 1));
      Alcotest.(check (array int)) "nested covered" [| 1; 2; 3; 4; 5; 6 |] out)

let test_pool_survives_shutdown () =
  let pool = Pool.create ~jobs:3 in
  let sum () =
    let out = Pool.map pool 11 (fun i -> i) in
    Array.fold_left ( + ) 0 out
  in
  Alcotest.(check int) "before shutdown" 55 (sum ());
  Pool.shutdown pool;
  Alcotest.(check int) "after shutdown (workers respawn)" 55 (sum ());
  Pool.shutdown pool

let test_pool_default_jobs_env () =
  let set v = Unix.putenv "MICA_JOBS" v in
  set "";
  let fallback = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> set "")
    (fun () ->
      set "3";
      Alcotest.(check int) "MICA_JOBS=3 respected" 3 (Pool.default_jobs ());
      set " 5 ";
      Alcotest.(check int) "whitespace tolerated" 5 (Pool.default_jobs ());
      set "0";
      Alcotest.(check int) "non-positive falls back" fallback (Pool.default_jobs ());
      set "nope";
      Alcotest.(check int) "garbage falls back" fallback (Pool.default_jobs ());
      Alcotest.(check bool) "fallback positive" true (fallback >= 1))

let suite =
  ( "util",
    [
      Alcotest.test_case "ring basics" `Quick test_ring_basic;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "ring clear" `Quick test_ring_clear;
      prop_ring_model;
      Alcotest.test_case "csv escaping" `Quick test_csv_escape;
      Alcotest.test_case "csv parsing" `Quick test_csv_parse;
      Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
      prop_csv_roundtrip;
      Alcotest.test_case "pool covers indices" `Quick test_pool_run_covers_each_index_once;
      Alcotest.test_case "pool map ordered" `Quick test_pool_map_ordered_and_jobs_invariant;
      Alcotest.test_case "pool block partition" `Quick test_pool_run_blocks_partition;
      Alcotest.test_case "pool exceptions" `Quick test_pool_exception_propagates_and_pool_survives;
      Alcotest.test_case "pool nested inline" `Quick test_pool_nested_runs_inline;
      Alcotest.test_case "pool shutdown respawn" `Quick test_pool_survives_shutdown;
      Alcotest.test_case "pool MICA_JOBS" `Quick test_pool_default_jobs_env;
    ] )
