module Ring = Mica_util.Ring
module Csv = Mica_util.Csv

(* ---------------- Ring ---------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  Alcotest.(check bool) "not full" false (Ring.is_full r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check int) "length 2" 2 (Ring.length r);
  Alcotest.(check int) "newest" 2 (Ring.get r 0);
  Alcotest.(check int) "older" 1 (Ring.get r 1);
  Alcotest.(check int) "oldest" 1 (Ring.oldest r)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check int) "newest is 5" 5 (Ring.get r 0);
  Alcotest.(check int) "oldest is 3" 3 (Ring.oldest r);
  let collected = ref [] in
  Ring.iter r (fun x -> collected := x :: !collected);
  Alcotest.(check (list int)) "iter newest->oldest" [ 3; 4; 5 ] !collected

let test_ring_clear () =
  let r = Ring.create ~capacity:2 in
  Ring.push r 9;
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r)

let prop_ring_model =
  Tutil.qcheck_case "ring matches list model"
    QCheck2.Gen.(pair (int_range 1 16) (list (int_bound 1000)))
    (fun (cap, xs) ->
      let r = Ring.create ~capacity:cap in
      List.iter (Ring.push r) xs;
      let expected =
        let rec last_n n l = if List.length l <= n then l else last_n n (List.tl l) in
        List.rev (last_n cap xs)
      in
      let actual = List.init (Ring.length r) (Ring.get r) in
      actual = expected)

(* Interleaved-operation model check: push/clear/get/oldest in random
   order against a plain list model ([prop_ring_model] above is push-only,
   so wrap-around after a mid-stream clear is never exercised there). *)
let prop_ring_interleaved_model =
  let op_gen =
    QCheck2.Gen.(
      frequency
        [ (6, map (fun x -> `Push x) (int_bound 1000)); (1, pure `Clear); (2, pure `Probe) ])
  in
  Tutil.qcheck_case "ring matches model under interleaved ops"
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 60) op_gen))
    (fun (cap, ops) ->
      let r = Ring.create ~capacity:cap in
      let model = ref [] in
      (* model: newest-first list, trimmed to capacity *)
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Push x ->
            Ring.push r x;
            model := x :: !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model
          | `Clear ->
            Ring.clear r;
            model := []
          | `Probe ->
            let n = List.length !model in
            if Ring.length r <> n then ok := false;
            if Ring.is_full r <> (n = cap) then ok := false;
            List.iteri (fun i x -> if Ring.get r i <> x then ok := false) !model;
            if n > 0 && Ring.oldest r <> List.nth !model (n - 1) then ok := false)
        ops;
      !ok
      && List.init (Ring.length r) (Ring.get r) = !model
      && Ring.capacity r = cap)

(* ---------------- Int_map ---------------- *)

module Int_map = Mica_util.Int_map

(* Random operation sequences against a [Hashtbl] reference: the map is an
   exact replacement for the analyzer hot paths, so every observable —
   find/mem/length and the full binding set — must agree at every step. *)
let prop_int_map_matches_hashtbl =
  let op_gen =
    QCheck2.Gen.(
      let key = int_bound 400 in
      frequency
        [
          (4, map2 (fun k v -> `Set (k, v)) key (int_range (-50) 50));
          (4, map2 (fun k d -> `Bump (k, d)) key (int_range (-10) 10));
          (2, map (fun k -> `Add_if_absent k) key);
          (3, map (fun k -> `Find k) key);
        ])
  in
  Tutil.qcheck_case "int_map matches hashtbl reference"
    QCheck2.Gen.(pair (int_range 0 8) (list_size (int_range 0 200) op_gen))
    (fun (initial, ops) ->
      let m = Int_map.create ~initial () in
      let h : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Set (k, v) ->
            Int_map.set m k v;
            Hashtbl.replace h k v
          | `Bump (k, d) ->
            Int_map.bump m k d;
            Hashtbl.replace h k (Option.value (Hashtbl.find_opt h k) ~default:0 + d)
          | `Add_if_absent k ->
            Int_map.add_if_absent m k;
            if not (Hashtbl.mem h k) then Hashtbl.replace h k 0
          | `Find k ->
            if Int_map.find m k ~default:min_int <> Option.value (Hashtbl.find_opt h k) ~default:min_int
            then ok := false;
            if Int_map.mem m k <> Hashtbl.mem h k then ok := false)
        ops;
      (* final full-state agreement *)
      if Int_map.length m <> Hashtbl.length h then ok := false;
      Int_map.iter m (fun k v -> if Hashtbl.find_opt h k <> Some v then ok := false);
      let seen = ref 0 in
      Int_map.iter m (fun _ _ -> incr seen);
      !ok && !seen = Hashtbl.length h)

let test_int_map_negative_keys_rejected () =
  let m = Int_map.create () in
  List.iter
    (fun f -> try f (); Alcotest.fail "negative key accepted" with Invalid_argument _ -> ())
    [
      (fun () -> Int_map.set m (-1) 0);
      (fun () -> Int_map.bump m (-3) 1);
      (fun () -> Int_map.add_if_absent m (-2));
    ]

let prop_int_map_growth =
  (* dense sequential insertion forces repeated rehashing past [initial] *)
  Tutil.qcheck_case ~count:50 "int_map growth preserves bindings"
    QCheck2.Gen.(int_range 1 600)
    (fun n ->
      let m = Int_map.create ~initial:1 () in
      for k = 0 to n - 1 do
        Int_map.set m k (k * 3)
      done;
      let ok = ref (Int_map.length m = n) in
      for k = 0 to n - 1 do
        if Int_map.find m k ~default:(-1) <> k * 3 then ok := false
      done;
      !ok && not (Int_map.mem m n))

(* ---------------- Csv ---------------- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b")

let test_csv_parse () =
  Alcotest.(check (list string)) "simple" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ] (Csv.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ] (Csv.parse_line "\"a\"\"b\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ] (Csv.parse_line ",,")

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "mica_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rows = [ [ "name"; "x,y"; "q\"q" ]; [ "1"; "2"; "3" ] ] in
      Csv.to_file path rows;
      Alcotest.(check (list (list string))) "roundtrip" rows (Csv.of_file path))

let prop_csv_roundtrip =
  let field_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; ' '; 'z' ]) (int_range 0 8))
  in
  Tutil.qcheck_case "csv line roundtrip"
    QCheck2.Gen.(list_size (int_range 1 6) field_gen)
    (fun fields ->
      let line = String.concat "," (List.map Csv.escape_field fields) in
      Csv.parse_line line = fields)

(* ---------------- Pool ---------------- *)

module Pool = Mica_util.Pool

let test_pool_run_covers_each_index_once () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.run pool n (fun i -> hits.(i) <- hits.(i) + 1);
              if n = 0 then Alcotest.(check int) "nothing ran" 0 hits.(0)
              else
                Array.iteri
                  (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 h)
                  hits)
            [ 0; 1; 2; 7; 100 ]))
    [ 1; 3; 8 ]

let test_pool_map_ordered_and_jobs_invariant () =
  let expected = Array.init 33 (fun i -> i * i) in
  let at jobs = Pool.with_pool ~jobs (fun pool -> Pool.map pool 33 (fun i -> i * i)) in
  Alcotest.(check (array int)) "jobs=1" expected (at 1);
  Alcotest.(check (array int)) "jobs=4" expected (at 4)

let test_pool_run_blocks_partition () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 37 in
      let owner = Array.make n (-1) in
      let blocks = ref [] in
      Pool.run_blocks pool n (fun b lo hi ->
          blocks := (b, lo, hi) :: !blocks;
          for i = lo to hi do
            owner.(i) <- b
          done);
      Array.iteri
        (fun i b -> if b < 0 then Alcotest.failf "index %d not covered" i)
        owner;
      (* contiguous: the owner can only step up by one along the range *)
      for i = 1 to n - 1 do
        if owner.(i) < owner.(i - 1) || owner.(i) > owner.(i - 1) + 1 then
          Alcotest.failf "non-contiguous partition at %d" i
      done;
      Alcotest.(check bool) "at most jobs blocks" true (List.length !blocks <= 4))

let test_pool_exception_propagates_and_pool_survives () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (try
         Pool.run pool 20 (fun i -> if i = 13 then failwith "boom");
         Alcotest.fail "expected exception"
       with Failure m -> Alcotest.(check string) "exception text" "boom" m);
      (* the pool must still work after a failed run *)
      let out = Pool.map pool 20 (fun i -> i + 1) in
      Alcotest.(check int) "usable after error" 20 out.(19))

let test_pool_nested_runs_inline () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let out = Array.make 6 0 in
      Pool.run pool 2 (fun o ->
          Pool.run pool 3 (fun i -> out.((o * 3) + i) <- (o * 3) + i + 1));
      Alcotest.(check (array int)) "nested covered" [| 1; 2; 3; 4; 5; 6 |] out)

let test_pool_survives_shutdown () =
  let pool = Pool.create ~jobs:3 in
  let sum () =
    let out = Pool.map pool 11 (fun i -> i) in
    Array.fold_left ( + ) 0 out
  in
  Alcotest.(check int) "before shutdown" 55 (sum ());
  Pool.shutdown pool;
  Alcotest.(check int) "after shutdown (workers respawn)" 55 (sum ());
  Pool.shutdown pool

let test_pool_default_jobs_env () =
  let set v = Unix.putenv "MICA_JOBS" v in
  set "";
  let fallback = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> set "")
    (fun () ->
      set "3";
      Alcotest.(check int) "MICA_JOBS=3 respected" 3 (Pool.default_jobs ());
      set " 5 ";
      Alcotest.(check int) "whitespace tolerated" 5 (Pool.default_jobs ());
      set "0";
      Alcotest.(check int) "non-positive falls back" fallback (Pool.default_jobs ());
      set "nope";
      Alcotest.(check int) "garbage falls back" fallback (Pool.default_jobs ());
      Alcotest.(check bool) "fallback positive" true (fallback >= 1))

(* ---------------- Fault ---------------- *)

module Fault = Mica_util.Fault

let plan_exn spec =
  match Fault.parse spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan %S rejected: %s" spec msg

let test_fault_parse_roundtrip () =
  let p = plan_exn "seed=7,pool.worker=0.3,cache.read=1@2" in
  Alcotest.(check string)
    "normalized" "seed=7,pool.worker=0.3,cache.read=1@2" (Fault.to_string p);
  (match Fault.parse (Fault.to_string p) with
  | Ok p' -> Alcotest.(check string) "roundtrip" (Fault.to_string p) (Fault.to_string p')
  | Error msg -> Alcotest.failf "roundtrip rejected: %s" msg);
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ ""; "seed=7"; "pool.worker"; "nosuch.point=0.5"; "pool.worker=1.5";
      "pool.worker=nan"; "pool.worker=0.5@-1"; "seed=x,pool.worker=0.1";
      "pool.worker=0.1,pool.worker=0.2" ]

let test_fault_disabled_is_silent () =
  Fault.with_plan None (fun () ->
      Alcotest.(check bool) "disabled" false (Fault.enabled ());
      for key = 0 to 100 do
        List.iter (fun p -> Fault.check p ~key) Fault.all_points
      done)

let test_fault_deterministic_and_scoped () =
  let plan = plan_exn "seed=11,trace.gen=0.5" in
  Fault.with_plan (Some plan) (fun () ->
      let pattern () =
        List.init 64 (fun key -> Fault.fires Fault.Trace_gen ~key)
      in
      Alcotest.(check (list bool)) "pure function of key" (pattern ()) (pattern ());
      Alcotest.(check bool) "some fire" true (List.mem true (pattern ()));
      Alcotest.(check bool) "some don't" true (List.mem false (pattern ()));
      (* other points are untouched by a trace.gen rule *)
      for key = 0 to 63 do
        Alcotest.(check bool) "other point silent" false (Fault.fires Fault.Pool_worker ~key)
      done;
      (* a different attempt re-rolls the decision *)
      let at_attempt a =
        Fault.with_context ~task:0 ~attempt:a (fun () ->
            List.init 64 (fun key -> Fault.fires Fault.Trace_gen ~key))
      in
      Alcotest.(check bool) "attempt changes the roll" true (at_attempt 1 <> at_attempt 2));
  Alcotest.(check bool) "plan restored" false (Fault.enabled ())

let test_fault_task_filter () =
  let plan = plan_exn "seed=3,pool.worker=1@2" in
  Fault.with_plan (Some plan) (fun () ->
      let fires_for task =
        Fault.with_context ~task ~attempt:1 (fun () -> Fault.fires Fault.Pool_worker ~key:0)
      in
      Alcotest.(check bool) "task 2 fires" true (fires_for 2);
      Alcotest.(check bool) "task 1 silent" false (fires_for 1);
      Alcotest.(check bool) "task 3 silent" false (fires_for 3))

(* ---------------- Pool.run_results ---------------- *)

let outcome_values out =
  Array.map
    (fun (o : _ Pool.outcome) ->
      match o.Pool.result with Ok v -> v | Error _ -> Alcotest.fail "unexpected failure")
    out

let test_run_results_matches_map () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let expected = Pool.map pool n (fun i -> (i * 7) mod 13) in
              let out = Pool.run_results pool n (fun i -> (i * 7) mod 13) in
              Alcotest.(check (array int))
                (Printf.sprintf "jobs=%d n=%d" jobs n)
                expected (outcome_values out);
              Array.iter
                (fun (o : _ Pool.outcome) ->
                  Alcotest.(check int) "single attempt" 1 o.Pool.attempts)
                out)
            [ 0; 1; 5; 64 ]))
    [ 1; 4 ]

let test_run_results_contains_failure () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Pool.run_results ~retries:1 pool 20 (fun i ->
            if i = 13 then failwith "boom13" else i)
      in
      Array.iteri
        (fun i (o : _ Pool.outcome) ->
          if i = 13 then begin
            (match o.Pool.result with
            | Error { Pool.error = Failure m; _ } ->
              Alcotest.(check string) "error text" "boom13" m
            | Error _ -> Alcotest.fail "wrong error captured"
            | Ok _ -> Alcotest.fail "index 13 should fail");
            Alcotest.(check int) "budget consumed" 2 o.Pool.attempts
          end
          else
            match o.Pool.result with
            | Ok v -> Alcotest.(check int) "neighbor intact" i v
            | Error _ -> Alcotest.failf "index %d corrupted by neighbor failure" i)
        out;
      (* the pool is still usable afterwards *)
      let again = outcome_values (Pool.run_results pool 20 (fun i -> i)) in
      Alcotest.(check int) "pool survives" 19 again.(19))

let test_run_results_retry_clears_transient () =
  (* pool.worker=1@7 fires on every attempt of task 7... but only because
     the hash includes the attempt; use probability to let a retry pass *)
  let plan = plan_exn "seed=5,pool.worker=0.6@7" in
  Fault.with_plan (Some plan) (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          let out = Pool.run_results ~retries:8 pool 16 (fun i -> i * 3) in
          Array.iteri
            (fun i (o : _ Pool.outcome) ->
              match o.Pool.result with
              | Ok v ->
                Alcotest.(check int) "value" (i * 3) v;
                if i <> 7 then Alcotest.(check int) "only task 7 retried" 1 o.Pool.attempts
              | Error _ -> Alcotest.failf "task %d never recovered" i)
            out;
          let seven = out.(7) in
          Alcotest.(check bool) "task 7 was retried" true (seven.Pool.attempts > 1)))

let test_run_results_exhausted_budget () =
  let plan = plan_exn "seed=5,pool.worker=1@3" in
  Fault.with_plan (Some plan) (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          let out = Pool.run_results ~retries:2 pool 8 (fun i -> i) in
          match out.(3).Pool.result with
          | Error { Pool.error = Fault.Injected _; _ } ->
            Alcotest.(check int) "attempts = 1 + retries" 3 out.(3).Pool.attempts
          | Error _ -> Alcotest.fail "wrong error"
          | Ok _ -> Alcotest.fail "task 3 must exhaust its budget"))

let test_run_results_failure_backtrace () =
  (* Worker domains never had [Printexc.record_backtrace] switched on
     (it is per-domain state), so failures used to surface with an empty
     backtrace; the captured trace must now name the raise point. *)
  let has_frames s =
    let s = String.trim s in
    String.length s > 0
    &&
    let n = String.length s in
    let rec at i = i + 6 <= n && (String.sub s i 6 = "Raised" || at (i + 1)) in
    at 0
  in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let out =
            Pool.run_results ~retries:0 pool 8 (fun i ->
                if i = 5 then failwith "kaboom" else i)
          in
          match out.(5).Pool.result with
          | Error { Pool.backtrace; _ } ->
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d backtrace names the raise" jobs)
              true (has_frames backtrace)
          | Ok _ -> Alcotest.fail "task 5 must fail"))
    [ 1; 4 ]

let test_run_results_crash_recovery () =
  (* a crash kills the worker's whole block; the recovery pass must still
     produce every index, at any jobs *)
  let plan = plan_exn "seed=9,pool.crash=0.2" in
  let at jobs =
    Fault.with_plan (Some plan) (fun () ->
        Pool.with_pool ~jobs (fun pool ->
            outcome_values (Pool.run_results pool 32 (fun i -> i * i))))
  in
  let expected = Array.init 32 (fun i -> i * i) in
  Alcotest.(check (array int)) "jobs=1 all recovered" expected (at 1);
  Alcotest.(check (array int)) "jobs=4 all recovered" expected (at 4)

let suite =
  ( "util",
    [
      Alcotest.test_case "ring basics" `Quick test_ring_basic;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "ring clear" `Quick test_ring_clear;
      prop_ring_model;
      prop_ring_interleaved_model;
      prop_int_map_matches_hashtbl;
      Alcotest.test_case "int_map negative keys" `Quick test_int_map_negative_keys_rejected;
      prop_int_map_growth;
      Alcotest.test_case "csv escaping" `Quick test_csv_escape;
      Alcotest.test_case "csv parsing" `Quick test_csv_parse;
      Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
      prop_csv_roundtrip;
      Alcotest.test_case "pool covers indices" `Quick test_pool_run_covers_each_index_once;
      Alcotest.test_case "pool map ordered" `Quick test_pool_map_ordered_and_jobs_invariant;
      Alcotest.test_case "pool block partition" `Quick test_pool_run_blocks_partition;
      Alcotest.test_case "pool exceptions" `Quick test_pool_exception_propagates_and_pool_survives;
      Alcotest.test_case "pool nested inline" `Quick test_pool_nested_runs_inline;
      Alcotest.test_case "pool shutdown respawn" `Quick test_pool_survives_shutdown;
      Alcotest.test_case "pool MICA_JOBS" `Quick test_pool_default_jobs_env;
      Alcotest.test_case "fault spec roundtrip" `Quick test_fault_parse_roundtrip;
      Alcotest.test_case "fault disabled silent" `Quick test_fault_disabled_is_silent;
      Alcotest.test_case "fault deterministic" `Quick test_fault_deterministic_and_scoped;
      Alcotest.test_case "fault task filter" `Quick test_fault_task_filter;
      Alcotest.test_case "run_results = map" `Quick test_run_results_matches_map;
      Alcotest.test_case "run_results contains failure" `Quick test_run_results_contains_failure;
      Alcotest.test_case "run_results retry clears" `Quick test_run_results_retry_clears_transient;
      Alcotest.test_case "run_results budget exhausted" `Quick test_run_results_exhausted_budget;
      Alcotest.test_case "run_results crash recovery" `Quick test_run_results_crash_recovery;
      Alcotest.test_case "run_results failure backtrace" `Quick
        test_run_results_failure_backtrace;
    ] )
