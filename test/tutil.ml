(* Shared helpers for the test suites. *)

module Instr = Mica_isa.Instr
module Opcode = Mica_isa.Opcode

let feq = Alcotest.float 1e-9
let feq_loose = Alcotest.float 1e-6

(* Feed a list of instructions to a sink, in order (chunked transport
   underneath; a small capacity would exercise chunk boundaries). *)
let run_sink ?capacity sink instrs = Mica_trace.Sink.feed_list ?capacity sink instrs

(* Feed instructions one at a time: each becomes its own single-element
   chunk, for tests that interleave feeding with observing sink state. *)
let push_one sink ins = Mica_trace.Sink.feed_list ~capacity:1 sink [ ins ]

(* Instruction constructors with compact names for hand-built traces. *)
let alu ?(pc = 0x1000) ?(src1 = -1) ?(src2 = -1) ?(dst = -1) () =
  Instr.make ~pc ~op:Opcode.Int_alu ~src1 ~src2 ~dst ()

let load ?(pc = 0x1000) ?(src1 = -1) ~dst ~addr () =
  Instr.make ~pc ~op:Opcode.Load ~src1 ~dst ~addr ()

let store ?(pc = 0x1000) ?(src1 = -1) ?(src2 = -1) ~addr () =
  Instr.make ~pc ~op:Opcode.Store ~src1 ~src2 ~addr ()

let branch ?(pc = 0x1000) ?(src1 = -1) ~taken ?(target = 0x2000) () =
  Instr.make ~pc ~op:Opcode.Branch ~src1 ~taken ~target ()

let fp ?(pc = 0x1000) ?(src1 = -1) ?(src2 = -1) ?(dst = -1) () =
  Instr.make ~pc ~op:Opcode.Fp_add ~src1 ~src2 ~dst ()

(* A small deterministic workload program for integration tests. *)
let tiny_program name =
  Mica_trace.Program.single ~name { Mica_trace.Kernel.default with Mica_trace.Kernel.name }

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
