module S = Mica_stats

let feq = Tutil.feq
let feql = Tutil.feq_loose

(* ---------------- descriptive ---------------- *)

let test_mean_var () =
  Alcotest.check feq "mean" 2.5 (S.Descriptive.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check feq "variance" 1.25 (S.Descriptive.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check feq "stddev" (sqrt 1.25) (S.Descriptive.stddev [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check feq "empty mean" 0.0 (S.Descriptive.mean [||]);
  Alcotest.check feq "singleton variance" 0.0 (S.Descriptive.variance [| 5.0 |])

let test_min_max_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  let lo, hi = S.Descriptive.min_max xs in
  Alcotest.check feq "min" 1.0 lo;
  Alcotest.check feq "max" 5.0 hi;
  Alcotest.check feq "median" 3.0 (S.Descriptive.percentile xs 0.5);
  Alcotest.check feq "p0" 1.0 (S.Descriptive.percentile xs 0.0);
  Alcotest.check feq "p100" 5.0 (S.Descriptive.percentile xs 1.0);
  Alcotest.check feq "interpolated" 1.5 (S.Descriptive.percentile xs 0.125)

let test_running_stats () =
  let r = S.Descriptive.running_create () in
  List.iter (S.Descriptive.running_add r) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (S.Descriptive.running_count r);
  Alcotest.check feq "running mean" 2.5 (S.Descriptive.running_mean r);
  Alcotest.check feql "running stddev" (sqrt 1.25) (S.Descriptive.running_stddev r)

(* ---------------- matrix ---------------- *)

let test_matrix_ops () =
  let m = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (pair int int)) "dims" (2, 2) (S.Matrix.dims m);
  Alcotest.(check (array (array feq))) "transpose"
    [| [| 1.0; 3.0 |]; [| 2.0; 4.0 |] |]
    (S.Matrix.transpose m);
  let id = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  Alcotest.(check (array (array feq))) "identity mul" m (S.Matrix.mul m id);
  Alcotest.(check (array (array feq))) "square"
    [| [| 7.0; 10.0 |]; [| 15.0; 22.0 |] |]
    (S.Matrix.mul m m);
  Alcotest.(check (array feq)) "column" [| 2.0; 4.0 |] (S.Matrix.column m 1);
  Alcotest.(check (array (array feq))) "select columns"
    [| [| 2.0 |]; [| 4.0 |] |]
    (S.Matrix.select_columns m [| 1 |])

let test_matrix_mul_mismatch () =
  try
    ignore (S.Matrix.mul [| [| 1.0 |] |] [| [| 1.0 |]; [| 2.0 |] |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_covariance () =
  (* two perfectly correlated columns *)
  let m = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |]; [| 3.0; 6.0 |] |] in
  let cov = S.Matrix.covariance m in
  Alcotest.check feq "var x" (2.0 /. 3.0) cov.(0).(0);
  Alcotest.check feq "cov xy" (4.0 /. 3.0) cov.(0).(1);
  Alcotest.check feq "symmetric" cov.(0).(1) cov.(1).(0)

let test_correlation_matrix () =
  let m = [| [| 1.0; 2.0; 5.0 |]; [| 2.0; 4.0; 3.0 |]; [| 3.0; 6.0; 1.0 |] |] in
  let corr = S.Matrix.correlation_matrix m in
  Alcotest.check feq "diag" 1.0 corr.(0).(0);
  Alcotest.check feq "perfect correlation" 1.0 corr.(0).(1);
  Alcotest.check feq "perfect anticorrelation" (-1.0) corr.(0).(2)

let test_correlation_constant_column () =
  let m = [| [| 1.0; 7.0 |]; [| 2.0; 7.0 |] |] in
  let corr = S.Matrix.correlation_matrix m in
  Alcotest.check feq "constant column correlates 0" 0.0 corr.(0).(1);
  Alcotest.check feq "unit diagonal regardless" 1.0 corr.(1).(1)

(* ---------------- normalize ---------------- *)

let test_zscore () =
  let m = [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] in
  let z = S.Normalize.zscore m in
  Alcotest.check feq "mean 0" 0.0 (S.Descriptive.mean (S.Matrix.column z 0));
  Alcotest.check feql "stddev 1" 1.0 (S.Descriptive.stddev (S.Matrix.column z 0))

let test_zscore_constant_column () =
  let z = S.Normalize.zscore [| [| 5.0 |]; [| 5.0 |] |] in
  Alcotest.check feq "constant maps to 0" 0.0 z.(0).(0)

let test_apply_zscore_roundtrip () =
  let m = [| [| 1.0; 10.0 |]; [| 2.0; 20.0 |]; [| 3.0; 60.0 |] |] in
  let params = S.Normalize.zscore_params m in
  let z = S.Normalize.zscore m in
  Alcotest.(check (array feq)) "apply matches batch" z.(1)
    (S.Normalize.apply_zscore params m.(1))

let test_max_scale_and_unit_range () =
  let m = [| [| 2.0; -4.0 |]; [| 1.0; 2.0 |] |] in
  let s = S.Normalize.max_scale m in
  Alcotest.check feq "max scaled to 1" 1.0 s.(0).(0);
  Alcotest.check feq "negative kept" (-1.0) s.(0).(1);
  let u = S.Normalize.unit_range m in
  Alcotest.check feq "min -> 0" 0.0 u.(1).(0);
  Alcotest.check feq "max -> 1" 1.0 u.(0).(0);
  let c = S.Normalize.unit_range [| [| 3.0 |]; [| 3.0 |] |] in
  Alcotest.check feq "constant -> 0.5" 0.5 c.(0).(0)

(* ---------------- distance ---------------- *)

let test_distances () =
  Alcotest.check feq "euclidean" 5.0 (S.Distance.euclidean [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  Alcotest.check feq "squared" 25.0 (S.Distance.squared_euclidean [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  Alcotest.check feq "manhattan" 7.0 (S.Distance.manhattan [| 0.0; 0.0 |] [| 3.0; 4.0 |])

let test_pair_indexing () =
  let n = 7 in
  Alcotest.(check int) "pair count" 21 (S.Distance.pair_count n);
  let pairs = S.Distance.pairs ~n in
  Array.iteri
    (fun k (i, j) ->
      Alcotest.(check int) "index roundtrip" k (S.Distance.pair_index ~n i j);
      Alcotest.(check int) "symmetric" k (S.Distance.pair_index ~n j i))
    pairs

let test_condensed_matches_pairwise () =
  let m = [| [| 0.0; 0.0 |]; [| 3.0; 4.0 |]; [| 6.0; 8.0 |] |] in
  let d = S.Distance.condensed m in
  Alcotest.check feq "d(0,1)" 5.0 d.(0);
  Alcotest.check feq "d(0,2)" 10.0 d.(1);
  Alcotest.check feq "d(1,2)" 5.0 d.(2)

let test_subset_distances () =
  let m = [| [| 1.0; 100.0 |]; [| 4.0; 200.0 |] |] in
  let comp = S.Distance.condensed_squared_components m in
  Alcotest.check feq "first column only" 3.0 (S.Distance.subset_distances comp [| 0 |]).(0);
  Alcotest.check feq "second column only" 100.0 (S.Distance.subset_distances comp [| 1 |]).(0);
  Alcotest.check feq "both = condensed" (S.Distance.condensed m).(0)
    (S.Distance.subset_distances comp [| 0; 1 |]).(0)

(* ---------------- correlation ---------------- *)

let test_pearson () =
  Alcotest.check feq "perfect" 1.0
    (S.Correlation.pearson [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
  Alcotest.check feq "perfect negative" (-1.0)
    (S.Correlation.pearson [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]);
  Alcotest.check feq "constant -> 0" 0.0 (S.Correlation.pearson [| 1.0; 1.0 |] [| 1.0; 2.0 |])

let test_spearman_and_ranks () =
  Alcotest.(check (array feq)) "ranks with ties" [| 1.5; 1.5; 3.0 |]
    (S.Correlation.ranks [| 4.0; 4.0; 9.0 |]);
  (* monotone but nonlinear: spearman 1, pearson < 1 *)
  let x = [| 1.0; 2.0; 3.0; 4.0 |] and y = [| 1.0; 8.0; 27.0; 64.0 |] in
  Alcotest.check feq "spearman monotone" 1.0 (S.Correlation.spearman x y);
  Alcotest.(check bool) "pearson below 1" true (S.Correlation.pearson x y < 0.999)

(* ---------------- PCA ---------------- *)

let test_jacobi_known () =
  (* eigenvalues of [[2,1],[1,2]] are 3 and 1 *)
  let values, vectors = S.Pca.jacobi_eigen [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  Alcotest.check feql "largest" 3.0 values.(0);
  Alcotest.check feql "smallest" 1.0 values.(1);
  (* eigenvector for 3 is (1,1)/sqrt 2 up to sign *)
  let v = vectors.(0) in
  Alcotest.check feql "eigenvector components equal" (Float.abs v.(0)) (Float.abs v.(1))

let test_pca_variance () =
  let rng = Mica_util.Rng.create ~seed:77L in
  let m =
    Array.init 100 (fun _ ->
        let x = Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
        let y = Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.1 in
        (* strongly correlated pair plus noise dimension *)
        [| x; (2.0 *. x) +. y; Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0 |])
  in
  let pca = S.Pca.fit m in
  let ratios = S.Pca.explained_variance_ratio pca in
  Alcotest.check feql "ratios sum to 1" 1.0 (S.Descriptive.sum ratios);
  Alcotest.(check bool) "first component dominates" true (ratios.(0) > 0.5);
  Alcotest.(check int) "2 dims reach 95%" 2 (S.Pca.dims_for_variance pca 0.95)

let test_pca_transform_decorrelates () =
  let rng = Mica_util.Rng.create ~seed:78L in
  let m =
    Array.init 200 (fun _ ->
        let x = Mica_util.Rng.gaussian rng ~mu:5.0 ~sigma:2.0 in
        [| x; x +. Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.5 |])
  in
  let pca = S.Pca.fit m in
  let t = S.Pca.transform pca m in
  let c0 = S.Matrix.column t 0 and c1 = S.Matrix.column t 1 in
  Alcotest.(check bool) "components decorrelated" true
    (Float.abs (S.Correlation.pearson c0 c1) < 0.05)

(* ---------------- kmeans ---------------- *)

let blobs rng =
  Array.init 60 (fun i ->
      let cx = if i < 20 then 0.0 else if i < 40 then 10.0 else 20.0 in
      [|
        cx +. Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.3;
        cx +. Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.3;
      |])

let test_kmeans_recovers_blobs () =
  let rng = Mica_util.Rng.create ~seed:101L in
  let m = blobs rng in
  let res = S.Kmeans.fit ~rng ~k:3 m in
  (* all members of a ground-truth blob share a cluster *)
  let cluster_of i = res.S.Kmeans.assignments.(i) in
  for b = 0 to 2 do
    let base = b * 20 in
    for i = base + 1 to base + 19 do
      Alcotest.(check int) "blob intact" (cluster_of base) (cluster_of i)
    done
  done;
  Alcotest.(check bool) "blobs separated" true
    (cluster_of 0 <> cluster_of 20 && cluster_of 20 <> cluster_of 40)

let test_kmeans_k1 () =
  let rng = Mica_util.Rng.create ~seed:103L in
  let m = blobs rng in
  let res = S.Kmeans.fit ~rng ~k:1 m in
  Alcotest.(check bool) "single cluster holds everything" true
    (Array.for_all (fun a -> a = 0) res.S.Kmeans.assignments)

let test_kmeans_inertia_decreases_with_k () =
  let rng = Mica_util.Rng.create ~seed:105L in
  let m = blobs rng in
  let i1 = (S.Kmeans.fit ~restarts:3 ~rng ~k:1 m).S.Kmeans.inertia in
  let i3 = (S.Kmeans.fit ~restarts:3 ~rng ~k:3 m).S.Kmeans.inertia in
  let i10 = (S.Kmeans.fit ~restarts:3 ~rng ~k:10 m).S.Kmeans.inertia in
  Alcotest.(check bool) "more clusters, less inertia" true (i3 < i1 && i10 < i3)

let test_kmeans_invalid_k () =
  let rng = Mica_util.Rng.create ~seed:107L in
  try
    ignore (S.Kmeans.fit ~rng ~k:0 [| [| 1.0 |] |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_kmeans_members () =
  let rng = Mica_util.Rng.create ~seed:109L in
  let m = blobs rng in
  let res = S.Kmeans.fit ~rng ~k:3 m in
  let members = S.Kmeans.cluster_members res in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 members in
  Alcotest.(check int) "members partition the data" 60 total

(* ---------------- BIC ---------------- *)

let test_bic_prefers_true_k () =
  let rng = Mica_util.Rng.create ~seed:111L in
  let m = blobs rng in
  let sweep = S.Bic.sweep ~k_min:1 ~k_max:8 ~restarts:3 ~rng m in
  let _, best, _ = S.Bic.choose ~prefer:S.Bic.Peak sweep in
  Alcotest.(check bool) "peak BIC at/near true k" true
    (best.S.Kmeans.k >= 3 && best.S.Kmeans.k <= 4)

let test_bic_preferences () =
  let fake k score =
    ( k,
      { S.Kmeans.k; assignments = [| 0 |]; centroids = [| [| 0.0 |] |]; inertia = 0.0; iterations = 1 },
      score )
  in
  let sweep = [| fake 1 0.0; fake 2 9.5; fake 3 10.0; fake 4 9.4; fake 5 9.6 |] in
  let k_of (k, _, _) = k in
  Alcotest.(check int) "smallest within 90%" 2 (k_of (S.Bic.choose ~frac:0.9 sweep));
  Alcotest.(check int) "largest within 90%" 5
    (k_of (S.Bic.choose ~frac:0.9 ~prefer:S.Bic.Largest_within sweep));
  Alcotest.(check int) "peak" 3 (k_of (S.Bic.choose ~prefer:S.Bic.Peak sweep))

(* ---------------- ROC ---------------- *)

let test_roc_perfect () =
  let labels = [| true; true; false; false |] in
  let scores = [| 0.9; 0.8; 0.2; 0.1 |] in
  let c = S.Roc.curve ~labels ~scores in
  Alcotest.check feq "perfect AUC" 1.0 c.S.Roc.auc

let test_roc_inverted () =
  let labels = [| true; true; false; false |] in
  let scores = [| 0.1; 0.2; 0.8; 0.9 |] in
  let c = S.Roc.curve ~labels ~scores in
  Alcotest.check feq "inverted AUC" 0.0 c.S.Roc.auc

let test_roc_random_midpoint () =
  let rng = Mica_util.Rng.create ~seed:113L in
  let n = 4_000 in
  let labels = Array.init n (fun _ -> Mica_util.Rng.bool rng) in
  let scores = Array.init n (fun _ -> Mica_util.Rng.float rng 1.0) in
  let c = S.Roc.curve ~labels ~scores in
  Alcotest.(check bool) "random AUC near 0.5" true (Float.abs (c.S.Roc.auc -. 0.5) < 0.05)

let test_roc_monotone_points () =
  let rng = Mica_util.Rng.create ~seed:115L in
  let labels = Array.init 500 (fun _ -> Mica_util.Rng.bool rng) in
  let scores = Array.init 500 (fun i -> if labels.(i) then Mica_util.Rng.float rng 1.2 else Mica_util.Rng.float rng 1.0) in
  let c = S.Roc.curve ~labels ~scores in
  let pts = c.S.Roc.points in
  for i = 0 to Array.length pts - 2 do
    if pts.(i).S.Roc.fpr > pts.(i + 1).S.Roc.fpr +. 1e-12 then Alcotest.fail "fpr not monotone";
    if pts.(i).S.Roc.tpr > pts.(i + 1).S.Roc.tpr +. 1e-12 then Alcotest.fail "tpr not monotone"
  done;
  let last = pts.(Array.length pts - 1) in
  Alcotest.check feq "ends at (1,1) fpr" 1.0 last.S.Roc.fpr;
  Alcotest.check feq "ends at (1,1) tpr" 1.0 last.S.Roc.tpr

let test_roc_positives_labelling () =
  let d = [| 0.0; 1.0; 5.0; 10.0 |] in
  let labels = S.Roc.positives ~ref_distances:d ~frac:0.2 in
  Alcotest.(check (array bool)) "20% of max = 2" [| false; false; true; true |] labels

let test_roc_single_class_rejected () =
  try
    ignore (S.Roc.curve ~labels:[| true; true |] ~scores:[| 0.1; 0.2 |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- summarize (variance aggregator) ---------------- *)

(* Two-pass reference implementation over the finite samples. *)
let naive_summary xs =
  let fin = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq xs)) in
  let n = Array.length fin in
  let mean = if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 fin /. float_of_int n in
  let var =
    if n < 2 then 0.0
    else Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 fin /. float_of_int n
  in
  (n, mean, sqrt var)

let test_summarize_edges () =
  let s = S.Descriptive.summarize [||] in
  Alcotest.(check int) "empty count" 0 s.S.Descriptive.count;
  Alcotest.check feq "empty mean" 0.0 s.S.Descriptive.mean_v;
  Alcotest.check feq "empty cv" 0.0 s.S.Descriptive.cv;
  let s = S.Descriptive.summarize [| 7.5 |] in
  Alcotest.(check int) "n=1 count" 1 s.S.Descriptive.count;
  Alcotest.check feq "n=1 mean" 7.5 s.S.Descriptive.mean_v;
  Alcotest.check feq "n=1 stddev" 0.0 s.S.Descriptive.stddev_v;
  Alcotest.check feq "n=1 cv" 0.0 s.S.Descriptive.cv;
  let s = S.Descriptive.summarize [| 4.0; 4.0; 4.0; 4.0 |] in
  Alcotest.check feq "constant stddev" 0.0 s.S.Descriptive.stddev_v;
  Alcotest.check feq "constant cv" 0.0 s.S.Descriptive.cv;
  (* zero-mean spread: CV is undefined, reported as infinite noise *)
  let s = S.Descriptive.summarize [| -1.0; 1.0 |] in
  Alcotest.(check bool) "zero-mean cv infinite" true (s.S.Descriptive.cv = Float.infinity);
  (* non-finite samples are dropped, not propagated *)
  let s = S.Descriptive.summarize [| 1.0; Float.nan; 3.0; Float.infinity; Float.neg_infinity |] in
  Alcotest.(check int) "finite count" 2 s.S.Descriptive.count;
  Alcotest.check feq "finite mean" 2.0 s.S.Descriptive.mean_v;
  Alcotest.(check bool) "stddev finite" true (Float.is_finite s.S.Descriptive.stddev_v);
  let s = S.Descriptive.summarize [| Float.nan; Float.nan |] in
  Alcotest.(check int) "all-nan count" 0 s.S.Descriptive.count;
  Alcotest.check feq "all-nan mean" 0.0 s.S.Descriptive.mean_v

let sample_gen =
  (* finite values across magnitudes, salted with non-finite junk *)
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (frequency
         [
           (8, float_range (-1e6) 1e6);
           (2, float_range (-1e-3) 1e-3);
           (1, return Float.nan);
           (1, return Float.infinity);
           (1, return Float.neg_infinity);
         ]))

let close a b =
  (* relative closeness: Welford vs two-pass differ only in rounding *)
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let prop_summarize_matches_naive xs =
  let xs = Array.of_list xs in
  let s = S.Descriptive.summarize xs in
  let n, mean, sd = naive_summary xs in
  s.S.Descriptive.count = n
  && close s.S.Descriptive.mean_v mean
  && close s.S.Descriptive.stddev_v sd
  && (Float.is_finite s.S.Descriptive.cv || s.S.Descriptive.cv = Float.infinity)

let prop_summarize_shift_invariant_count xs =
  (* shifting finite samples never changes the count or the spread *)
  let xs = Array.of_list xs in
  let shifted = Array.map (fun x -> x +. 1000.0) xs in
  let a = S.Descriptive.summarize xs and b = S.Descriptive.summarize shifted in
  a.S.Descriptive.count = b.S.Descriptive.count
  && Float.abs (a.S.Descriptive.stddev_v -. b.S.Descriptive.stddev_v)
     <= 1e-6 *. Float.max 1.0 a.S.Descriptive.stddev_v

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean/var" `Quick test_mean_var;
      Alcotest.test_case "min/max/percentile" `Quick test_min_max_percentile;
      Alcotest.test_case "running stats" `Quick test_running_stats;
      Alcotest.test_case "matrix ops" `Quick test_matrix_ops;
      Alcotest.test_case "matrix mismatch" `Quick test_matrix_mul_mismatch;
      Alcotest.test_case "covariance" `Quick test_covariance;
      Alcotest.test_case "correlation matrix" `Quick test_correlation_matrix;
      Alcotest.test_case "constant column corr" `Quick test_correlation_constant_column;
      Alcotest.test_case "zscore" `Quick test_zscore;
      Alcotest.test_case "zscore constant" `Quick test_zscore_constant_column;
      Alcotest.test_case "apply_zscore" `Quick test_apply_zscore_roundtrip;
      Alcotest.test_case "max_scale / unit_range" `Quick test_max_scale_and_unit_range;
      Alcotest.test_case "distances" `Quick test_distances;
      Alcotest.test_case "pair indexing" `Quick test_pair_indexing;
      Alcotest.test_case "condensed distances" `Quick test_condensed_matches_pairwise;
      Alcotest.test_case "subset distances" `Quick test_subset_distances;
      Alcotest.test_case "pearson" `Quick test_pearson;
      Alcotest.test_case "spearman/ranks" `Quick test_spearman_and_ranks;
      Alcotest.test_case "jacobi known matrix" `Quick test_jacobi_known;
      Alcotest.test_case "pca variance" `Quick test_pca_variance;
      Alcotest.test_case "pca decorrelates" `Quick test_pca_transform_decorrelates;
      Alcotest.test_case "kmeans blobs" `Quick test_kmeans_recovers_blobs;
      Alcotest.test_case "kmeans k=1" `Quick test_kmeans_k1;
      Alcotest.test_case "kmeans inertia" `Quick test_kmeans_inertia_decreases_with_k;
      Alcotest.test_case "kmeans invalid k" `Quick test_kmeans_invalid_k;
      Alcotest.test_case "kmeans members" `Quick test_kmeans_members;
      Alcotest.test_case "bic true k" `Quick test_bic_prefers_true_k;
      Alcotest.test_case "bic preferences" `Quick test_bic_preferences;
      Alcotest.test_case "roc perfect" `Quick test_roc_perfect;
      Alcotest.test_case "roc inverted" `Quick test_roc_inverted;
      Alcotest.test_case "roc random" `Quick test_roc_random_midpoint;
      Alcotest.test_case "roc monotone" `Quick test_roc_monotone_points;
      Alcotest.test_case "roc positives" `Quick test_roc_positives_labelling;
      Alcotest.test_case "roc one class" `Quick test_roc_single_class_rejected;
      Alcotest.test_case "summarize edges" `Quick test_summarize_edges;
      Tutil.qcheck_case "summarize = two-pass reference" sample_gen prop_summarize_matches_naive;
      Tutil.qcheck_case "summarize shift-invariant spread" sample_gen
        prop_summarize_shift_invariant_count;
    ] )
