(* Observability layer: metrics registry, span tracer, exporters.

   The registry is process-global, so every test runs inside [with_obs],
   which resets all readings and restores the disabled state afterwards —
   the rest of the test binary must see an inert, empty registry. *)

module Obs = Mica_obs.Obs
module Json = Mica_obs.Json
module Pool = Mica_util.Pool

let with_obs ?(events = false) f =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_record_events events;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.set_record_events false;
      Obs.reset ())
    f

let metric_value name = List.assoc_opt name (Obs.snapshot ()).Obs.metrics
let span_stat name = List.assoc_opt name (Obs.snapshot ()).Obs.spans

let counter_value name =
  match metric_value name with
  | Some (Obs.Counter v) -> v
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "%s not in snapshot" name

(* keep handles at module level: registration is once-per-process *)
let m_basic = Obs.counter "t_obs.basic"
let m_gauge = Obs.gauge "t_obs.gauge"
let m_hist = Obs.histogram "t_obs.hist"
let m_hist_empty = Obs.histogram "t_obs.hist_empty"
let m_cross = Obs.counter "t_obs.cross"
let m_off = Obs.counter "t_obs.off"
let m_overhead = Obs.counter "t_obs.overhead"

(* ---------------- metric semantics ---------------- *)

let test_counter_semantics () =
  with_obs (fun () ->
      Obs.incr m_basic;
      Obs.incr m_basic;
      Obs.add m_basic 2.5;
      Alcotest.(check (float 1e-9)) "incr+add accumulate" 4.5 (counter_value "t_obs.basic");
      (* counter ops on a gauge handle are no-ops, not corruption *)
      Obs.incr m_gauge;
      Alcotest.(check bool) "gauge untouched by incr"
        true
        (match metric_value "t_obs.gauge" with Some (Obs.Gauge 0.0) -> true | _ -> false))

let test_gauge_semantics () =
  with_obs (fun () ->
      Obs.set m_gauge 7.0;
      Obs.set m_gauge (-2.5);
      match metric_value "t_obs.gauge" with
      | Some (Obs.Gauge v) -> Alcotest.(check (float 1e-9)) "last set wins" (-2.5) v
      | _ -> Alcotest.fail "gauge missing")

let test_histogram_semantics () =
  with_obs (fun () ->
      Obs.observe m_hist 5e-7;
      (* below the lowest bound *)
      Obs.observe m_hist 2.0;
      Obs.observe m_hist 5000.0;
      (* above the highest bound: +Inf bucket *)
      match metric_value "t_obs.hist" with
      | Some (Obs.Histogram h) ->
        Alcotest.(check int) "count" 3 h.Obs.h_count;
        Alcotest.(check (float 1e-6)) "sum" 5002.0000005 h.Obs.h_sum;
        Alcotest.(check (float 1e-12)) "min" 5e-7 h.Obs.h_min;
        Alcotest.(check (float 1e-9)) "max" 5000.0 h.Obs.h_max;
        let n = Array.length h.Obs.h_buckets in
        Alcotest.(check bool) "has buckets" true (n > 1);
        let last_bound, last_count = h.Obs.h_buckets.(n - 1) in
        Alcotest.(check bool) "last bound is +Inf" true (last_bound = Float.infinity);
        Alcotest.(check int) "cumulative tail holds all samples" 3 last_count;
        (* Prometheus-style: bucket counts are cumulative, hence monotone *)
        for i = 1 to n - 1 do
          let _, a = h.Obs.h_buckets.(i - 1) and _, b = h.Obs.h_buckets.(i) in
          if b < a then Alcotest.failf "bucket counts not monotone at %d" i
        done;
        let _, first_count = h.Obs.h_buckets.(0) in
        Alcotest.(check int) "tiny sample lands in first bucket" 1 first_count
      | _ -> Alcotest.fail "histogram missing")

let test_empty_histogram () =
  with_obs (fun () ->
      match metric_value "t_obs.hist_empty" with
      | Some (Obs.Histogram h) ->
        Alcotest.(check int) "count 0" 0 h.Obs.h_count;
        Alcotest.(check bool) "min is nan" true (Float.is_nan h.Obs.h_min);
        Alcotest.(check bool) "max is nan" true (Float.is_nan h.Obs.h_max)
      | _ -> Alcotest.fail "histogram missing")

let test_registration_dedup_and_mismatch () =
  let again = Obs.counter "t_obs.basic" in
  with_obs (fun () ->
      Obs.incr m_basic;
      Obs.incr again;
      Alcotest.(check (float 1e-9))
        "same name -> same cell" 2.0 (counter_value "t_obs.basic"));
  (try
     ignore (Obs.gauge "t_obs.basic");
     Alcotest.fail "kind mismatch must raise"
   with Invalid_argument _ -> ())

let test_disabled_records_nothing () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.incr m_off;
  Obs.add m_off 5.0;
  Obs.set m_gauge 9.0;
  Obs.observe m_hist 1.0;
  let r = Obs.span "t_obs.off_span" (fun () -> 41 + 1) in
  Alcotest.(check int) "span still runs f" 42 r;
  Alcotest.(check (float 1e-9)) "counter untouched" 0.0 (counter_value "t_obs.off");
  Alcotest.(check bool) "no span recorded" true (span_stat "t_obs.off_span" = None);
  (match metric_value "t_obs.hist" with
  | Some (Obs.Histogram h) -> Alcotest.(check int) "histogram untouched" 0 h.Obs.h_count
  | _ -> Alcotest.fail "histogram missing")

(* ---------------- spans ---------------- *)

let burn_alloc n =
  let acc = ref [] in
  for i = 1 to n do
    acc := i :: !acc
  done;
  ignore (Sys.opaque_identity !acc)

let test_span_nesting_self_total () =
  with_obs (fun () ->
      Obs.span "t_obs.parent" (fun () ->
          burn_alloc 2000;
          Obs.span "t_obs.child" (fun () -> burn_alloc 2000));
      match (span_stat "t_obs.parent", span_stat "t_obs.child") with
      | Some p, Some c ->
        Alcotest.(check int) "parent count" 1 p.Obs.sp_count;
        Alcotest.(check int) "child count" 1 c.Obs.sp_count;
        Alcotest.(check bool) "child total <= parent total" true
          (c.Obs.sp_total_s <= p.Obs.sp_total_s +. 1e-9);
        Alcotest.(check (float 1e-9))
          "parent self = total - child time"
          (p.Obs.sp_total_s -. c.Obs.sp_total_s)
          p.Obs.sp_self_s;
        Alcotest.(check (float 1e-9)) "leaf self = total" c.Obs.sp_total_s c.Obs.sp_self_s;
        Alcotest.(check bool) "child allocation attributed" true
          (c.Obs.sp_minor_words >= 4000.0);
        Alcotest.(check bool) "parent sees its own allocation" true
          (p.Obs.sp_minor_words >= 4000.0)
      | _ -> Alcotest.fail "span stats missing")

let test_span_exception_safety () =
  with_obs (fun () ->
      (try Obs.span "t_obs.outer" (fun () -> Obs.span "t_obs.boom" (fun () -> raise Exit))
       with Exit -> ());
      (* the stack must be clean: a fresh root span is a root again *)
      Obs.span "t_obs.after" (fun () -> ());
      match (span_stat "t_obs.outer", span_stat "t_obs.boom", span_stat "t_obs.after") with
      | Some o, Some b, Some a ->
        Alcotest.(check int) "outer closed once" 1 o.Obs.sp_count;
        Alcotest.(check int) "raising span closed once" 1 b.Obs.sp_count;
        Alcotest.(check int) "subsequent span fine" 1 a.Obs.sp_count;
        Alcotest.(check bool) "after is a root (self = total)" true
          (abs_float (a.Obs.sp_self_s -. a.Obs.sp_total_s) < 1e-9)
      | _ -> Alcotest.fail "span stats missing")

let test_span_repeat_counts () =
  with_obs (fun () ->
      for _ = 1 to 5 do
        Obs.span "t_obs.loop" (fun () -> ())
      done;
      match span_stat "t_obs.loop" with
      | Some s ->
        Alcotest.(check int) "count accumulates" 5 s.Obs.sp_count;
        Alcotest.(check bool) "total finite, non-negative" true
          (Float.is_finite s.Obs.sp_total_s && s.Obs.sp_total_s >= 0.0)
      | None -> Alcotest.fail "span missing")

(* ---------------- cross-domain aggregation ---------------- *)

let test_cross_domain_aggregation () =
  let run jobs =
    with_obs (fun () ->
        Pool.with_pool ~jobs (fun pool ->
            Pool.run pool 64 (fun _ ->
                Obs.span "t_obs.task" (fun () -> Obs.incr m_cross)));
        (counter_value "t_obs.cross", span_stat "t_obs.task"))
  in
  let check label (total, stat) =
    Alcotest.(check (float 1e-9)) (label ^ ": all increments merged") 64.0 total;
    match stat with
    | Some s ->
      Alcotest.(check int) (label ^ ": span count merged") 64 s.Obs.sp_count;
      Alcotest.(check bool)
        (label ^ ": merged totals finite") true
        (Float.is_finite s.Obs.sp_total_s && Float.is_finite s.Obs.sp_self_s)
    | None -> Alcotest.fail "task span missing"
  in
  check "jobs=1" (run 1);
  (* jobs=4: readings live in worker-domain stores; with_pool shuts the
     workers down before we snapshot, so this also proves stats survive
     domain death *)
  check "jobs=4" (run 4)

let test_stats_survive_shutdown () =
  with_obs (fun () ->
      let pool = Pool.create ~jobs:3 in
      Pool.run pool 32 (fun _ -> Obs.incr m_cross);
      Pool.shutdown pool;
      Alcotest.(check (float 1e-9)) "after shutdown" 32.0 (counter_value "t_obs.cross");
      (* respawned workers keep accumulating into the same metric *)
      Pool.run pool 32 (fun _ -> Obs.incr m_cross);
      Pool.shutdown pool;
      Alcotest.(check (float 1e-9)) "across respawn" 64.0 (counter_value "t_obs.cross"))

(* ---------------- event journal / span tree ---------------- *)

let check_well_formed evs =
  let stack = ref [] in
  let last_t = ref neg_infinity in
  List.iter
    (fun e ->
      if e.Obs.ev_time < !last_t then Alcotest.fail "event times went backwards";
      last_t := e.Obs.ev_time;
      if e.Obs.ev_enter then stack := e.Obs.ev_name :: !stack
      else
        match !stack with
        | top :: rest when top = e.Obs.ev_name -> stack := rest
        | top :: _ -> Alcotest.failf "exit %S while %S is open" e.Obs.ev_name top
        | [] -> Alcotest.failf "exit %S with empty stack" e.Obs.ev_name)
    evs;
  if !stack <> [] then Alcotest.failf "%d spans never closed" (List.length !stack)

let test_events_reconstruct_tree () =
  with_obs ~events:true (fun () ->
      Obs.span "t_obs.a" (fun () ->
          Obs.span "t_obs.b" (fun () -> ());
          Obs.span "t_obs.c" (fun () -> Obs.span "t_obs.d" (fun () -> ())));
      (try Obs.span "t_obs.e" (fun () -> raise Exit) with Exit -> ());
      let stores = Obs.events () in
      let all = List.concat_map snd stores in
      Alcotest.(check int) "5 spans -> 10 events" 10 (List.length all);
      List.iter (fun (_, evs) -> check_well_formed evs) stores;
      let enters =
        List.filter_map (fun e -> if e.Obs.ev_enter then Some e.Obs.ev_name else None) all
      in
      Alcotest.(check (list string))
        "preorder" [ "t_obs.a"; "t_obs.b"; "t_obs.c"; "t_obs.d"; "t_obs.e" ] enters)

let test_events_off_by_default () =
  with_obs (fun () ->
      Obs.span "t_obs.silent" (fun () -> ());
      let n = List.fold_left (fun acc (_, evs) -> acc + List.length evs) 0 (Obs.events ()) in
      Alcotest.(check int) "no events without the flag" 0 n)

(* ---------------- exporters ---------------- *)

let rt_setup () =
  Obs.add m_basic 3.0;
  Obs.set m_gauge (-2.5);
  Obs.observe m_hist 0.25;
  Obs.observe m_hist 4.0;
  Obs.span "t_obs.rt_span" (fun () -> burn_alloc 100)

let get path doc =
  let rec go path doc =
    match path with
    | [] -> Some doc
    | k :: rest -> ( match Json.member k doc with Some d -> go rest d | None -> None)
  in
  match go path doc with
  | Some d -> d
  | None -> Alcotest.failf "missing JSON path %s" (String.concat "/" path)

let num path doc =
  match Json.to_num (get path doc) with
  | Some v -> v
  | None -> Alcotest.failf "non-number at %s" (String.concat "/" path)

let test_json_roundtrip () =
  with_obs (fun () ->
      rt_setup ();
      let doc = Json.parse_exn (Obs.to_json (Obs.snapshot ())) in
      Alcotest.(check (float 1e-9)) "counter survives" 3.0
        (num [ "metrics"; "t_obs.basic"; "value" ] doc);
      Alcotest.(check string) "counter typed"
        "counter"
        (Option.get (Json.to_str (get [ "metrics"; "t_obs.basic"; "type" ] doc)));
      Alcotest.(check (float 1e-9)) "gauge survives" (-2.5)
        (num [ "metrics"; "t_obs.gauge"; "value" ] doc);
      Alcotest.(check (float 1e-9)) "hist count" 2.0
        (num [ "metrics"; "t_obs.hist"; "count" ] doc);
      Alcotest.(check (float 1e-9)) "hist sum" 4.25 (num [ "metrics"; "t_obs.hist"; "sum" ] doc);
      Alcotest.(check bool) "empty hist min is bare nan, parsed back" true
        (Float.is_nan (num [ "metrics"; "t_obs.hist_empty"; "min" ] doc));
      (match get [ "metrics"; "t_obs.hist"; "buckets" ] doc with
      | Json.List (_ :: _ as buckets) -> (
        match List.rev buckets with
        | Json.List [ bound; count ] :: _ ->
          Alcotest.(check bool) "inf bound parsed back" true
            (Json.to_num bound = Some Float.infinity);
          Alcotest.(check (float 1e-9)) "tail bucket count" 2.0 (Option.get (Json.to_num count))
        | _ -> Alcotest.fail "malformed bucket")
      | _ -> Alcotest.fail "buckets not a list");
      Alcotest.(check (float 1e-9)) "span count" 1.0
        (num [ "spans"; "t_obs.rt_span"; "count" ] doc);
      Alcotest.(check bool) "span total non-negative" true
        (num [ "spans"; "t_obs.rt_span"; "total_s" ] doc >= 0.0);
      Alcotest.(check bool) "span minor words recorded" true
        (num [ "spans"; "t_obs.rt_span"; "minor_words" ] doc >= 200.0))

let test_write_json_file () =
  with_obs (fun () ->
      rt_setup ();
      let path = Filename.temp_file "t_obs" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_json path (Obs.snapshot ());
          let ic = open_in_bin path in
          let contents = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Json.parse contents with
          | Ok doc ->
            Alcotest.(check (float 1e-9)) "file parses to same counter" 3.0
              (num [ "metrics"; "t_obs.basic"; "value" ] doc)
          | Error msg -> Alcotest.failf "written file unparseable: %s" msg))

let test_prometheus_output () =
  with_obs (fun () ->
      rt_setup ();
      let text = Obs.to_prometheus (Obs.snapshot ()) in
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec at i = i + nl <= tl && (String.sub text i nl = needle || at (i + 1)) in
        Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (at 0)
      in
      has "# TYPE mica_t_obs_basic counter\n";
      has "mica_t_obs_basic 3\n";
      has "# TYPE mica_t_obs_gauge gauge\n";
      has "mica_t_obs_gauge -2.5\n";
      has "# TYPE mica_t_obs_hist histogram\n";
      has "_bucket{le=\"+Inf\"} 2\n";
      has "mica_t_obs_hist_sum 4.25\n";
      has "mica_t_obs_hist_count 2\n";
      has "mica_span_t_obs_rt_span_count 1\n")

(* ---------------- reset ---------------- *)

let test_reset () =
  with_obs (fun () ->
      rt_setup ();
      Obs.reset ();
      Alcotest.(check (float 1e-9)) "counter zeroed" 0.0 (counter_value "t_obs.basic");
      Alcotest.(check bool) "spans cleared" true (span_stat "t_obs.rt_span" = None);
      (match metric_value "t_obs.hist" with
      | Some (Obs.Histogram h) -> Alcotest.(check int) "histogram zeroed" 0 h.Obs.h_count
      | _ -> Alcotest.fail "registered name must survive reset");
      (* the registry still works after a reset *)
      Obs.incr m_basic;
      Alcotest.(check (float 1e-9)) "usable after reset" 1.0 (counter_value "t_obs.basic"))

(* ---------------- overhead guard ---------------- *)

(* Calibrated relative bound: a disabled probe is one atomic load, so a
   loop of [work + disabled probe] must stay within a generous constant
   factor of [work] alone.  Min-of-N timing on both sides removes scheduler
   noise; the bound would only trip if the disabled path regressed to
   something structural (a lock, an allocation, a hash lookup). *)
let test_disabled_overhead () =
  Obs.reset ();
  Obs.set_enabled false;
  let iters = 200_000 in
  let sink = ref 0.0 in
  let baseline () =
    for i = 1 to iters do
      sink := !sink +. float_of_int i
    done
  in
  let probed () =
    for i = 1 to iters do
      Obs.add m_overhead 1.0;
      sink := !sink +. float_of_int i
    done
  in
  let time f =
    let best = ref infinity in
    for _ = 1 to 7 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  ignore (time baseline);
  (* warm up *)
  let tb = time baseline in
  let tp = time probed in
  ignore (Sys.opaque_identity !sink);
  Alcotest.(check (float 1e-9)) "probes recorded nothing" 0.0 (counter_value "t_obs.overhead");
  if tp > (tb *. 20.0) +. 1e-3 then
    Alcotest.failf "disabled probe overhead out of bounds: %.6fs probed vs %.6fs baseline" tp tb

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
      Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
      Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
      Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
      Alcotest.test_case "registration dedup/mismatch" `Quick test_registration_dedup_and_mismatch;
      Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
      Alcotest.test_case "span nesting self/total" `Quick test_span_nesting_self_total;
      Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
      Alcotest.test_case "span repeat counts" `Quick test_span_repeat_counts;
      Alcotest.test_case "cross-domain aggregation" `Quick test_cross_domain_aggregation;
      Alcotest.test_case "stats survive shutdown" `Quick test_stats_survive_shutdown;
      Alcotest.test_case "events reconstruct tree" `Quick test_events_reconstruct_tree;
      Alcotest.test_case "events off by default" `Quick test_events_off_by_default;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "write_json file" `Quick test_write_json_file;
      Alcotest.test_case "prometheus output" `Quick test_prometheus_output;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "disabled overhead bound" `Quick test_disabled_overhead;
    ] )
