(* The verification subsystem's own tests: deterministic violation cases for
   the invariant sink, qcheck properties driving the random kernel/program
   specs of T_fuzz through the sink and the reference oracles, the
   metamorphic laws, and pipeline cache staleness/corruption recovery. *)

module V = Mica_verify
module K = Mica_trace.Kernel
module P = Mica_trace.Program
module G = Mica_trace.Generator
module Instr = Mica_isa.Instr
module Opcode = Mica_isa.Opcode
module Pipeline = Mica_core.Pipeline
module Workload = Mica_workloads.Workload

let run_inv ?strict_defined_use ?max_violations instrs =
  let t = V.Invariant_sink.create ?strict_defined_use ?max_violations () in
  Tutil.run_sink (V.Invariant_sink.sink t) instrs;
  t

let rules t = List.map (fun v -> v.V.Invariant_sink.rule) (V.Invariant_sink.violations t)

let check_rules name expected t = Alcotest.(check (list string)) name expected (rules t)

(* ---------------- invariant sink: deterministic cases ---------------- *)

let test_inv_clean_trace () =
  (* a well-formed hand trace is clean even in strict mode *)
  let t =
    run_inv ~strict_defined_use:true
      [
        Tutil.alu ~pc:0x1000 ~dst:3 ();
        Tutil.alu ~pc:0x1004 ~src1:3 ~dst:4 ();
        Tutil.load ~pc:0x1008 ~src1:4 ~dst:5 ~addr:0x8000 ();
        Tutil.branch ~pc:0x100C ~src1:5 ~taken:true ~target:0x1000 ();
      ]
  in
  check_rules "no violations" [] t;
  Alcotest.(check int) "count" 4 (V.Invariant_sink.instructions t);
  Alcotest.(check bool) "ok" true (V.Invariant_sink.ok ~expected_icount:4 t)

let test_inv_defined_before_use () =
  let trace = [ Tutil.alu ~pc:0x1000 ~src1:7 ~dst:8 () ] in
  let strict = run_inv ~strict_defined_use:true trace in
  check_rules "strict flags live-in read" [ "reg-defined" ] strict;
  let lax = run_inv trace in
  check_rules "default allows live-ins" [] lax;
  Alcotest.(check int) "live-in counted" 1 (V.Invariant_sink.live_in_registers lax)

let test_inv_pc_chain () =
  let t = run_inv [ Tutil.alu ~pc:0x1000 (); Tutil.alu ~pc:0x2000 () ] in
  check_rules "chain break" [ "pc-chain" ] t

let test_inv_mem_addr () =
  let t = run_inv [ Instr.make ~pc:0x1000 ~op:Opcode.Load ~dst:1 ~addr:0 () ] in
  check_rules "load without address" [ "mem-addr" ] t;
  let t = run_inv [ Instr.make ~pc:0x1000 ~op:Opcode.Int_alu ~addr:0x40 () ] in
  check_rules "alu with address" [ "mem-addr" ] t

let test_inv_ctrl_target () =
  let t = run_inv [ Instr.make ~pc:0x1000 ~op:Opcode.Branch ~taken:true ~target:0 () ] in
  check_rules "taken branch without target" [ "ctrl-target" ] t;
  let t = run_inv [ Instr.make ~pc:0x1000 ~op:Opcode.Int_alu ~taken:true () ] in
  check_rules "taken alu" [ "ctrl-target" ] t

let test_inv_branch_target_consistency () =
  let t =
    run_inv
      [
        Tutil.branch ~pc:0x1000 ~taken:false ~target:0x2000 ();
        Tutil.alu ~pc:0x1004 ();
        Instr.make ~pc:0x1008 ~op:Opcode.Jump ~taken:true ~target:0x1000 ();
        Tutil.branch ~pc:0x1000 ~taken:true ~target:0x3000 ();
      ]
  in
  check_rules "retargeted static branch" [ "branch-target" ] t

let test_inv_reg_id () =
  let t = run_inv [ Tutil.alu ~pc:0x1000 ~src1:99 ~dst:301 () ] in
  check_rules "out-of-range ids" [ "reg-id"; "reg-id" ] t

let test_inv_icount () =
  let t = run_inv [ Tutil.alu ~pc:0x1000 () ] in
  match V.Invariant_sink.finish ~expected_icount:5 t with
  | [ v ] ->
    Alcotest.(check string) "icount rule" "icount" v.V.Invariant_sink.rule;
    Alcotest.(check bool) "not ok" false (V.Invariant_sink.ok ~expected_icount:5 t)
  | vs -> Alcotest.failf "expected exactly the icount violation, got %d" (List.length vs)

let test_inv_max_violations () =
  (* well-chained ALU stream where every instruction carries a stray address:
     exactly one violation each, recording capped, counting unbounded *)
  let bad =
    List.init 100 (fun i -> Instr.make ~pc:(0x1000 + (4 * i)) ~op:Opcode.Int_alu ~addr:0x40 ())
  in
  let t = run_inv ~max_violations:5 bad in
  Alcotest.(check int) "recorded capped" 5 (List.length (V.Invariant_sink.violations t));
  Alcotest.(check int) "all counted" 100 (V.Invariant_sink.total_violations t)

(* ---------------- invariant sink + oracles on random programs ---------------- *)

let prop_invariants_on_random_specs =
  Tutil.qcheck_case ~count:30 "random streams satisfy all invariants" T_fuzz.spec_gen
    (fun spec ->
      let t = V.Invariant_sink.create () in
      let n = G.run (T_fuzz.program_of_spec spec) ~icount:1_500 ~sink:(V.Invariant_sink.sink t) in
      n = 1_500 && V.Invariant_sink.ok ~expected_icount:1_500 t)

let prop_reference_agrees_on_random_specs =
  Tutil.qcheck_case ~count:12 "reference oracles agree on random specs" T_fuzz.spec_gen
    (fun spec -> V.Reference.check (T_fuzz.program_of_spec spec) ~icount:600 = [])

let prop_prefix_law_on_random_specs =
  Tutil.qcheck_case ~count:10 "prefix law holds on random specs" T_fuzz.spec_gen (fun spec ->
      (V.Differential.prefix_law (T_fuzz.program_of_spec spec) ~n:400 ~m:1_200)
        .V.Differential.ok)

(* ---------------- reference oracles: deterministic cases ---------------- *)

let golden_trio () =
  List.map Mica_workloads.Registry.find_exn
    [ "MiBench/sha/large"; "SPEC2000/mcf/ref"; "SPEC2000/swim/ref" ]

let test_reference_on_golden_workloads () =
  List.iter
    (fun (w : Workload.t) ->
      match V.Reference.check w.Workload.model ~icount:1_500 with
      | [] -> ()
      | m :: _ ->
        Alcotest.failf "%s: %s" (Workload.id w)
          (Format.asprintf "%a" V.Reference.pp_mismatch m))
    (golden_trio ())

let test_chunked_transport_matches_reference () =
  (* The chunked-transport law: the analyzer vector computed over the
     generator's own struct-of-arrays chunk delivery must agree with the
     naive per-instruction oracles recomputing all six families from the
     boxed instruction list.  Reference.check re-feeds a collected list;
     this goes through Analyzer.analyze so the production path — generator
     chunk fill, fanout, monomorphic chunk loops — is the thing compared. *)
  List.iter
    (fun (w : Workload.t) ->
      let icount = 1_500 in
      let got = Mica_analysis.Analyzer.analyze w.Workload.model ~icount in
      let instrs = G.preview w.Workload.model ~n:icount in
      let oracle = V.Reference.vector instrs in
      match V.Reference.compare_vectors ~got ~oracle with
      | [] -> ()
      | m :: _ ->
        Alcotest.failf "%s (chunked): %s" (Workload.id w)
          (Format.asprintf "%a" V.Reference.pp_mismatch m))
    (golden_trio ())

let test_reference_empty_trace () =
  let v = V.Reference.vector [] in
  Alcotest.(check int) "47 characteristics" Mica_analysis.Characteristics.count
    (Array.length v);
  Array.iter (fun x -> Alcotest.check Tutil.feq "all-zero on empty" 0.0 x) v

let test_reference_catches_drift () =
  (* a corrupted analyzer vector must be reported, with the right index *)
  let w = List.hd (golden_trio ()) in
  let collector, read = Mica_trace.Sink.collect ~limit:500 () in
  let (_ : int) = G.run w.Workload.model ~icount:500 ~sink:collector in
  let oracle = V.Reference.vector (read ()) in
  let drifted = Array.copy oracle in
  drifted.(0) <- drifted.(0) +. 0.25;
  match V.Reference.compare_vectors ~got:drifted ~oracle with
  | [ m ] -> Alcotest.(check int) "drift localized" 0 m.V.Reference.index
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

(* ---------------- differential laws ---------------- *)

let test_differential_laws () =
  let p = Tutil.tiny_program "verify-laws" in
  Alcotest.(check bool) "seed determinism" true
    (V.Differential.seed_determinism p ~icount:2_000).V.Differential.ok;
  Alcotest.(check bool) "prefix law" true
    (V.Differential.prefix_law p ~n:700 ~m:2_000).V.Differential.ok

let test_differential_prefix_invalid () =
  let p = Tutil.tiny_program "verify-bad-prefix" in
  (try
     ignore (V.Differential.prefix_law p ~n:0 ~m:10);
     Alcotest.fail "n = 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (V.Differential.prefix_law p ~n:20 ~m:10);
    Alcotest.fail "n > m accepted"
  with Invalid_argument _ -> ()

let test_differential_jobs_equality () =
  let ws = [ List.hd (golden_trio ()); List.nth (golden_trio ()) 1 ] in
  let o = V.Differential.jobs_equality ~jobs:3 ws ~icount:2_000 in
  if not o.V.Differential.ok then Alcotest.fail o.V.Differential.detail

let test_differential_cache_roundtrip () =
  let o = V.Differential.cache_roundtrip [ List.hd (golden_trio ()) ] ~icount:1_000 in
  if not o.V.Differential.ok then Alcotest.fail o.V.Differential.detail

(* ---------------- selection/clustering kernel laws ----------------

   The fused fitness kernel must agree with the naive
   subset_distances + pearson reference *exactly* (same operations, same
   order); the incremental Subset delta path may drift but only within the
   DESIGN.md §9 tolerance; and every pooled kernel must give bit-identical
   results at jobs = 1 and jobs = 4. *)

module Stats = Mica_stats
module Select = Mica_select
module Rng = Mica_util.Rng
module Pool = Mica_util.Pool

let delta_tol = 1e-9

let random_normalized rng ~rows ~cols =
  Stats.Normalize.zscore
    (Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0)))

let random_subset rng ~cols =
  let g = Array.init cols (fun _ -> Rng.bool rng) in
  if not (Array.exists Fun.id g) then g.(Rng.int rng cols) <- true;
  let out = ref [] in
  for c = cols - 1 downto 0 do
    if g.(c) then out := c :: !out
  done;
  Array.of_list !out

let test_fused_fitness_matches_naive_reference () =
  let rng = Rng.create ~seed:0xF05EDL in
  let cols = 9 in
  let normalized = random_normalized rng ~rows:25 ~cols in
  let fit = Select.Fitness.create normalized in
  let comp = Stats.Distance.condensed_squared_components normalized in
  let full = Stats.Distance.condensed normalized in
  Array.iteri
    (fun p d ->
      if d <> (Select.Fitness.full_distances fit).(p) then
        Alcotest.failf "full distance %d not bit-identical" p)
    full;
  for trial = 1 to 50 do
    let subset = random_subset rng ~cols in
    let naive = Stats.Correlation.pearson (Stats.Distance.subset_distances comp subset) full in
    let naive_fitness =
      naive *. (1.0 -. (float_of_int (Array.length subset) /. float_of_int cols))
    in
    if Select.Fitness.rho fit subset <> naive then
      Alcotest.failf "trial %d: fused rho not bit-identical to naive reference" trial;
    if Select.Fitness.paper_fitness fit subset <> naive_fitness then
      Alcotest.failf "trial %d: fused fitness not bit-identical to naive reference" trial
  done

let test_subset_delta_within_tolerance () =
  let rng = Rng.create ~seed:0xDE17AL in
  let cols = 10 in
  let normalized = random_normalized rng ~rows:20 ~cols in
  let fit = Select.Fitness.create normalized in
  let state = Select.Fitness.Subset.of_cols fit (random_subset rng ~cols) in
  for _ = 1 to 200 do
    (* random add/remove walk, accumulating delta updates *)
    let c = Rng.int rng cols in
    if Select.Fitness.Subset.mem state c && Select.Fitness.Subset.cardinal state > 1 then
      Select.Fitness.Subset.remove state c
    else Select.Fitness.Subset.add state c;
    let via_delta = Select.Fitness.Subset.rho state in
    let exact = Select.Fitness.rho fit (Select.Fitness.Subset.cols state) in
    if Float.abs (via_delta -. exact) > delta_tol then
      Alcotest.failf "delta drift %g exceeds %g" (Float.abs (via_delta -. exact)) delta_tol
  done;
  (* rebuild clears the drift entirely *)
  Select.Fitness.Subset.rebuild state;
  let exact = Select.Fitness.rho fit (Select.Fitness.Subset.cols state) in
  if Select.Fitness.Subset.rho state <> exact then
    Alcotest.fail "rebuilt rho not bit-identical to the fused recompute"

let test_ce_leave_one_out_matches_naive () =
  let rng = Rng.create ~seed:0xCE100L in
  let cols = 9 in
  let normalized = random_normalized rng ~rows:22 ~cols in
  let fit = Select.Fitness.create normalized in
  let comp = Stats.Distance.condensed_squared_components normalized in
  let full = Stats.Distance.condensed normalized in
  for _ = 1 to 20 do
    let subset = random_subset rng ~cols in
    if Array.length subset >= 2 then
      Array.iter
        (fun (c, got) ->
          let without = Array.of_list (List.filter (( <> ) c) (Array.to_list subset)) in
          let naive =
            Stats.Correlation.pearson (Stats.Distance.subset_distances comp without) full
          in
          if Float.abs (got -. naive) > delta_tol then
            Alcotest.failf "leave-one-out of %d drifts %g from naive reference" c
              (Float.abs (got -. naive)))
        (Select.Correlation_elimination.leave_one_out fit subset)
  done

let test_ce_matches_naive_elimination () =
  let rng = Rng.create ~seed:0xCE2L in
  let cols = 8 in
  let data = Array.init 20 (fun _ -> Array.init cols (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0)) in
  let normalized = Stats.Normalize.zscore data in
  let fit = Select.Fitness.create normalized in
  let comp = Stats.Distance.condensed_squared_components normalized in
  let full = Stats.Distance.condensed normalized in
  (* naive reference elimination: same avg |r| rule, rho re-derived from
     scratch each step *)
  let corr = Stats.Matrix.correlation_matrix data in
  let alive = Array.make cols true in
  let naive_steps = ref [] in
  for _ = 1 to cols - 1 do
    let best = ref (-1) and best_avg = ref neg_infinity in
    for i = 0 to cols - 1 do
      if alive.(i) then begin
        let acc = ref 0.0 and cnt = ref 0 in
        for j = 0 to cols - 1 do
          if alive.(j) && j <> i then begin
            acc := !acc +. Float.abs corr.(i).(j);
            incr cnt
          end
        done;
        let avg = if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt in
        if avg > !best_avg then begin
          best_avg := avg;
          best := i
        end
      end
    done;
    alive.(!best) <- false;
    let remaining = ref [] in
    for i = cols - 1 downto 0 do
      if alive.(i) then remaining := i :: !remaining
    done;
    let remaining = Array.of_list !remaining in
    let rho = Stats.Correlation.pearson (Stats.Distance.subset_distances comp remaining) full in
    naive_steps := (!best, remaining, rho) :: !naive_steps
  done;
  let naive_steps = List.rev !naive_steps in
  let check label steps =
    List.iter2
      (fun (nr, nrem, nrho) (s : Select.Correlation_elimination.step) ->
        Alcotest.(check int) (label ^ ": same removal") nr s.Select.Correlation_elimination.removed;
        Alcotest.(check (array int)) (label ^ ": same remaining") nrem
          s.Select.Correlation_elimination.remaining;
        if Float.abs (nrho -. s.Select.Correlation_elimination.rho) > delta_tol then
          Alcotest.failf "%s: step rho drifts %g from naive reference" label
            (Float.abs (nrho -. s.Select.Correlation_elimination.rho)))
      naive_steps steps
  in
  check "incremental" (Select.Correlation_elimination.run ~data fit);
  (* with exact_rho the in-order rebuild makes every step rho bit-identical *)
  List.iter2
    (fun (_, _, nrho) (s : Select.Correlation_elimination.step) ->
      if nrho <> s.Select.Correlation_elimination.rho then
        Alcotest.fail "exact_rho step not bit-identical to naive reference")
    naive_steps
    (Select.Correlation_elimination.run ~exact_rho:true ~data fit)

let test_selection_jobs_invariance () =
  let rng = Rng.create ~seed:0x10B5L in
  let cols = 8 in
  let data = Array.init 18 (fun _ -> Array.init cols (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0)) in
  let normalized = Stats.Normalize.zscore data in
  let fit = Select.Fitness.create normalized in
  let config =
    { Select.Genetic.default_config with
      Select.Genetic.population = 12; max_generations = 12; stall_generations = 6 }
  in
  let at jobs f = Pool.with_pool ~jobs f in
  let ga1 = at 1 (fun pool -> Select.Genetic.run ~config ~pool ~rng:(Rng.create ~seed:7L) fit) in
  let ga4 = at 4 (fun pool -> Select.Genetic.run ~config ~pool ~rng:(Rng.create ~seed:7L) fit) in
  Alcotest.(check (array int)) "GA selection jobs-invariant" ga1.Select.Genetic.selected
    ga4.Select.Genetic.selected;
  if ga1.Select.Genetic.fitness <> ga4.Select.Genetic.fitness then
    Alcotest.fail "GA fitness not bit-identical across jobs";
  if ga1.Select.Genetic.best_history <> ga4.Select.Genetic.best_history then
    Alcotest.fail "GA history not bit-identical across jobs";
  let ce1 = at 1 (fun pool -> Select.Correlation_elimination.run ~pool ~data fit) in
  let ce4 = at 4 (fun pool -> Select.Correlation_elimination.run ~pool ~data fit) in
  if ce1 <> ce4 then Alcotest.fail "CE steps not bit-identical across jobs";
  let subset = Array.init cols Fun.id in
  let loo1 = at 1 (fun pool -> Select.Correlation_elimination.leave_one_out ~pool fit subset) in
  let loo4 = at 4 (fun pool -> Select.Correlation_elimination.leave_one_out ~pool fit subset) in
  if loo1 <> loo4 then Alcotest.fail "leave-one-out not bit-identical across jobs"

let test_clustering_jobs_invariance () =
  let rng = Rng.create ~seed:0xC105L in
  let m =
    Array.init 24 (fun i ->
        let cx = if i < 12 then -.3.0 else 3.0 in
        Array.init 3 (fun _ -> cx +. Rng.gaussian rng ~mu:0.0 ~sigma:0.5))
  in
  let at jobs f = Pool.with_pool ~jobs f in
  let km j =
    at j (fun pool -> Stats.Kmeans.fit ~restarts:4 ~pool ~rng:(Rng.create ~seed:3L) ~k:2 m)
  in
  let k1 = km 1 and k4 = km 4 in
  Alcotest.(check (array int)) "kmeans assignments jobs-invariant"
    k1.Stats.Kmeans.assignments k4.Stats.Kmeans.assignments;
  if k1.Stats.Kmeans.inertia <> k4.Stats.Kmeans.inertia then
    Alcotest.fail "kmeans inertia not bit-identical across jobs";
  let sweep j =
    at j (fun pool ->
        Array.map
          (fun (k, _, s) -> (k, s))
          (Stats.Bic.sweep ~k_min:1 ~k_max:5 ~restarts:2 ~pool ~rng:(Rng.create ~seed:5L) m))
  in
  if sweep 1 <> sweep 4 then Alcotest.fail "BIC sweep not bit-identical across jobs";
  let boot j =
    at j (fun pool ->
        let xs = Array.init 40 (fun i -> float_of_int i) in
        Stats.Bootstrap.interval ~replicates:60 ~pool ~rng:(Rng.create ~seed:9L) ~n:40
          (fun sample ->
            Stats.Descriptive.mean (Array.map (fun i -> xs.(i)) sample)))
  in
  if boot 1 <> boot 4 then Alcotest.fail "bootstrap interval not bit-identical across jobs"

(* ---------------- pipeline cache staleness and corruption ---------------- *)

let with_temp_cache_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mica_test_cache_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  let rec remove_tree path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
        try Sys.rmdir path with Sys_error _ -> ()
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let cache_config dir =
  { Pipeline.default_config with Pipeline.icount = 1_000; cache_dir = Some dir;
    progress = false; jobs = 1 }

let cache_file dir kind = Filename.concat dir (Printf.sprintf "%s-%s-1000.csv" kind Pipeline.model_version)

let test_cache_hit_is_consumed () =
  (* precondition for the staleness tests: a valid current-version cache row
     is actually read back, not recomputed *)
  with_temp_cache_dir (fun dir ->
      let w = List.hd (golden_trio ()) in
      let config = cache_config dir in
      let (_ : Mica_core.Dataset.t) = Pipeline.mica_dataset ~config [ w ] in
      let path = cache_file dir "mica" in
      Alcotest.(check bool) "cache written" true (Sys.file_exists path);
      (* poison characteristic 1 of the cached row with a recognizable value *)
      let ds = Mica_core.Dataset.of_csv path in
      ds.Mica_core.Dataset.data.(0).(0) <- 42.0;
      Mica_core.Dataset.to_csv ds path;
      let reread = Pipeline.mica_dataset ~config [ w ] in
      Alcotest.check Tutil.feq "poisoned row consumed" 42.0
        reread.Mica_core.Dataset.data.(0).(0))

let test_cache_stale_version_invalidated () =
  with_temp_cache_dir (fun dir ->
      let w = List.hd (golden_trio ()) in
      let config = cache_config dir in
      let fresh = Pipeline.mica_dataset ~config:{ config with Pipeline.cache_dir = None } [ w ] in
      (* plant a poisoned cache under a *previous* model version: the version
         is part of the cache key, so it must be ignored and recomputed *)
      let (_ : Mica_core.Dataset.t) = Pipeline.mica_dataset ~config [ w ] in
      let current = cache_file dir "mica" in
      let ds = Mica_core.Dataset.of_csv current in
      ds.Mica_core.Dataset.data.(0).(0) <- 42.0;
      Mica_core.Dataset.to_csv ds (Filename.concat dir "mica-v0-1000.csv");
      Sys.remove current;
      let got = Pipeline.mica_dataset ~config [ w ] in
      Alcotest.check Tutil.feq "stale row ignored" fresh.Mica_core.Dataset.data.(0).(0)
        got.Mica_core.Dataset.data.(0).(0);
      Alcotest.(check bool) "current-version cache rewritten" true (Sys.file_exists current))

let test_cache_corrupt_recomputed () =
  with_temp_cache_dir (fun dir ->
      let w = List.hd (golden_trio ()) in
      let config = cache_config dir in
      let fresh = Pipeline.mica_dataset ~config:{ config with Pipeline.cache_dir = None } [ w ] in
      let write path text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      write (cache_file dir "mica") "this is not , a valid\ncsv cache \"file";
      write (cache_file dir "hpc") "name,x\n";
      let got = Pipeline.mica_dataset ~config [ w ] in
      Alcotest.check Tutil.feq "recomputed over corrupt cache"
        fresh.Mica_core.Dataset.data.(0).(0) got.Mica_core.Dataset.data.(0).(0))

let test_cache_truncated_recomputed () =
  with_temp_cache_dir (fun dir ->
      let w = List.hd (golden_trio ()) in
      let config = cache_config dir in
      let (_ : Mica_core.Dataset.t) = Pipeline.mica_dataset ~config [ w ] in
      let path = cache_file dir "mica" in
      (* chop the file mid-row, as a crashed writer would leave it *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub contents 0 (len / 2));
      close_out oc;
      let fresh = Pipeline.mica_dataset ~config:{ config with Pipeline.cache_dir = None } [ w ] in
      let got = Pipeline.mica_dataset ~config [ w ] in
      Alcotest.check Tutil.feq "recomputed over truncated cache"
        fresh.Mica_core.Dataset.data.(0).(0) got.Mica_core.Dataset.data.(0).(0))

(* ---------------- supervised pool and crash-safe caches ---------------- *)

module Fault = Mica_util.Fault
module Run_report = Mica_core.Run_report

let plan_exn spec =
  match Fault.parse spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan %S rejected: %s" spec msg

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Acceptance differential: with faults disabled, supervised execution is
   bit-identical to [Pool.run] over the real characterization body, at
   jobs=1 and jobs=4. *)
let test_run_results_matches_run_differential () =
  let workloads = Array.of_list (golden_trio ()) in
  let config = { (cache_config "/nonexistent") with Pipeline.cache_dir = None } in
  let body i = Pipeline.characterize config workloads.(i) in
  let via_run jobs =
    Pool.with_pool ~jobs (fun pool ->
        let out = Array.make (Array.length workloads) None in
        Pool.run pool (Array.length workloads) (fun i -> out.(i) <- Some (body i));
        Array.map Option.get out)
  in
  let via_results jobs =
    Pool.with_pool ~jobs (fun pool ->
        Array.map
          (fun (o : _ Pool.outcome) ->
            match o.Pool.result with
            | Ok v -> v
            | Error _ -> Alcotest.fail "unexpected failure without faults")
          (Pool.run_results pool (Array.length workloads) body))
  in
  List.iter
    (fun jobs ->
      if via_run jobs <> via_results jobs then
        Alcotest.failf "run_results differs from run at jobs=%d" jobs)
    [ 1; 4 ];
  if via_results 1 <> via_results 4 then
    Alcotest.fail "run_results not bit-identical across jobs"

let test_cache_checksum_quarantine () =
  with_temp_cache_dir (fun dir ->
      let w = List.hd (golden_trio ()) in
      let config = cache_config dir in
      let fresh = Pipeline.mica_dataset ~config [ w ] in
      let path = cache_file dir "mica" in
      (* flip one digit inside the committed body, keeping the CSV shape
         valid: only the checksum can catch this *)
      let contents = read_file path in
      let pos = String.length contents - 5 in
      let flipped = if contents.[pos] = '1' then '2' else '1' in
      let oc = open_out_bin path in
      output_string oc (String.sub contents 0 pos);
      output_char oc flipped;
      output_string oc (String.sub contents (pos + 1) (String.length contents - pos - 1));
      close_out oc;
      let got = Pipeline.mica_dataset ~config [ w ] in
      Alcotest.check Tutil.feq "recomputed, not silently consumed"
        fresh.Mica_core.Dataset.data.(0).(0) got.Mica_core.Dataset.data.(0).(0);
      Alcotest.(check bool) "corrupt file quarantined" true
        (Sys.file_exists (path ^ ".quarantined"));
      Alcotest.(check bool) "fresh cache rewritten" true (Sys.file_exists path))

(* Killed-mid-batch resume: fail the main cache commit (and workload 0's
   checkpoint) with an injected cache.write fault, leaving only the other
   workloads' checkpoints on disk — the state a kill after two of three
   workloads leaves behind.  The rerun must resume from checkpoints and
   commit caches byte-identical to an uninterrupted run. *)
let test_crash_resume_bit_identical () =
  let trio = golden_trio () in
  with_temp_cache_dir (fun ref_dir ->
      with_temp_cache_dir (fun dir ->
          let reference =
            let config = cache_config ref_dir in
            let mica, hpc, _ = Pipeline.datasets_report ~config trio in
            ignore mica;
            ignore hpc;
            (read_file (cache_file ref_dir "mica"), read_file (cache_file ref_dir "hpc"))
          in
          let config = cache_config dir in
          (* interrupted run: the main cache save runs at ambient task 0,
             so cache.write=1@0 kills it (plus task 0's checkpoint) *)
          Fault.with_plan
            (Some (plan_exn "seed=1,cache.write=1@0"))
            (fun () ->
              let _, _, report = Pipeline.datasets_report ~config trio in
              Alcotest.(check int) "interrupted run computed everything" 3
                (Run_report.computed report));
          Alcotest.(check bool) "main cache not committed" false
            (Sys.file_exists (cache_file dir "mica"));
          let ckpt_dir = Filename.concat dir "checkpoints" in
          Alcotest.(check int) "two checkpoints survive the interruption" 2
            (Array.length (Sys.readdir ckpt_dir));
          (* resumed run *)
          let _, _, report = Pipeline.datasets_report ~config trio in
          Alcotest.(check int) "resumed from checkpoints" 2 (Run_report.resumed report);
          Alcotest.(check int) "recomputed the lost workload" 1 (Run_report.computed report);
          Alcotest.(check (list string)) "checkpoints cleaned up" []
            (Array.to_list (Sys.readdir ckpt_dir));
          Alcotest.(check string) "mica cache bit-identical to uninterrupted run"
            (fst reference)
            (read_file (cache_file dir "mica"));
          Alcotest.(check string) "hpc cache bit-identical to uninterrupted run"
            (snd reference)
            (read_file (cache_file dir "hpc"))))

(* Graceful degradation: one permanently failing workload must not cost the
   others their rows, and the report must name it with a backtrace. *)
let test_failing_workload_degrades_gracefully () =
  with_temp_cache_dir (fun dir ->
      let trio = golden_trio () in
      let failing_id = Workload.id (List.nth trio 1) in
      let config = { (cache_config dir) with Pipeline.retries = 1 } in
      Fault.with_plan
        (Some (plan_exn "seed=2,trace.gen=1@1"))
        (fun () ->
          let mica, hpc, report = Pipeline.datasets_report ~config trio in
          Alcotest.(check int) "survivors emitted" 2 (Mica_core.Dataset.rows mica);
          Alcotest.(check int) "hpc rows match" 2 (Mica_core.Dataset.rows hpc);
          Alcotest.(check bool) "failed row absent" true
            (Mica_core.Dataset.row_index mica failing_id = None);
          match Run_report.failures report with
          | [ { Run_report.id; status = Failed { attempts; error; backtrace }; _ } ] ->
            Alcotest.(check string) "failure names the workload" failing_id id;
            Alcotest.(check int) "budget consumed" 2 attempts;
            Alcotest.(check bool) "error mentions the injection" true
              (String.length error > 0);
            Alcotest.(check bool) "backtrace captured" true (String.length backtrace > 0)
          | other -> Alcotest.failf "expected exactly one failure, got %d" (List.length other));
      (* strict [datasets] must refuse the same run loudly *)
      Fault.with_plan
        (Some (plan_exn "seed=2,trace.gen=1@1"))
        (fun () ->
          match Pipeline.datasets ~config:{ config with Pipeline.cache_dir = None } trio with
          | _ -> Alcotest.fail "datasets must raise on a failed workload"
          | exception Failure msg ->
            Alcotest.(check bool) "message names the workload" true
              (let re = failing_id in
               let len = String.length re in
               let n = String.length msg in
               let rec scan i = i + len <= n && (String.sub msg i len = re || scan (i + 1)) in
               scan 0)))

(* ---------------- observability inertness ----------------

   The DESIGN.md §11 contract: probes observe, they never feed back.  The
   differentials below run the real kernels with metrics fully enabled and
   compare the results structurally against a metrics-off run — any
   divergence, at any [jobs], is a probe leaking into pipeline logic. *)

module Obs = Mica_obs.Obs

let with_metrics on f =
  Obs.reset ();
  Obs.set_enabled on;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_metrics_inert_characterization () =
  let trio = golden_trio () in
  let run ~jobs ~metrics =
    with_metrics metrics (fun () ->
        Pipeline.datasets
          ~config:
            { Pipeline.default_config with Pipeline.icount = 1_000; cache_dir = None;
              progress = false; jobs }
          trio)
  in
  List.iter
    (fun jobs ->
      let off = run ~jobs ~metrics:false in
      let on = run ~jobs ~metrics:true in
      if off <> on then
        Alcotest.failf "characterization not bit-identical metrics on/off at jobs=%d" jobs;
      (* and the instrumented run did actually record something *)
      ignore on)
    [ 1; 4 ];
  (* sanity: the enabled run above exercised real probes — prove a fresh
     instrumented run produces non-empty readings, so the differential is
     not vacuously comparing two uninstrumented paths *)
  with_metrics true (fun () ->
      let (_ : Mica_core.Dataset.t * Mica_core.Dataset.t) =
        Pipeline.datasets
          ~config:
            { Pipeline.default_config with Pipeline.icount = 1_000; cache_dir = None;
              progress = false; jobs = 1 }
          [ List.hd trio ]
      in
      let snap = Obs.snapshot () in
      Alcotest.(check bool) "spans recorded" true (snap.Obs.spans <> []);
      match List.assoc_opt "trace.instrs" snap.Obs.metrics with
      | Some (Obs.Counter v) -> Alcotest.(check bool) "instr counter advanced" true (v > 0.0)
      | _ -> Alcotest.fail "trace.instrs counter missing")

let test_metrics_inert_selection_and_clustering () =
  let rng = Rng.create ~seed:0x0B5E1L in
  let cols = 8 in
  let data =
    Array.init 18 (fun _ -> Array.init cols (fun _ -> Rng.gaussian rng ~mu:0.0 ~sigma:1.0))
  in
  let normalized = Stats.Normalize.zscore data in
  let fit = Select.Fitness.create normalized in
  let config =
    { Select.Genetic.default_config with
      Select.Genetic.population = 12; max_generations = 12; stall_generations = 6 }
  in
  let points =
    Array.init 24 (fun i ->
        let cx = if i < 12 then -3.0 else 3.0 in
        Array.init 3 (fun _ -> cx +. Rng.gaussian rng ~mu:0.0 ~sigma:0.5))
  in
  List.iter
    (fun jobs ->
      let ga metrics =
        with_metrics metrics (fun () ->
            Pool.with_pool ~jobs (fun pool ->
                Select.Genetic.run ~config ~pool ~rng:(Rng.create ~seed:7L) fit))
      in
      let ga_off = ga false and ga_on = ga true in
      Alcotest.(check (array int))
        (Printf.sprintf "GA selection inert at jobs=%d" jobs)
        ga_off.Select.Genetic.selected ga_on.Select.Genetic.selected;
      if ga_off.Select.Genetic.fitness <> ga_on.Select.Genetic.fitness then
        Alcotest.failf "GA fitness not bit-identical metrics on/off at jobs=%d" jobs;
      if ga_off.Select.Genetic.best_history <> ga_on.Select.Genetic.best_history then
        Alcotest.failf "GA history not bit-identical metrics on/off at jobs=%d" jobs;
      let km metrics =
        with_metrics metrics (fun () ->
            Pool.with_pool ~jobs (fun pool ->
                Stats.Kmeans.fit ~restarts:4 ~pool ~rng:(Rng.create ~seed:3L) ~k:2 points))
      in
      let km_off = km false and km_on = km true in
      Alcotest.(check (array int))
        (Printf.sprintf "kmeans assignments inert at jobs=%d" jobs)
        km_off.Stats.Kmeans.assignments km_on.Stats.Kmeans.assignments;
      if km_off.Stats.Kmeans.inertia <> km_on.Stats.Kmeans.inertia then
        Alcotest.failf "kmeans inertia not bit-identical metrics on/off at jobs=%d" jobs;
      let sweep metrics =
        with_metrics metrics (fun () ->
            Pool.with_pool ~jobs (fun pool ->
                Array.map
                  (fun (k, _, s) -> (k, s))
                  (Stats.Bic.sweep ~k_min:1 ~k_max:5 ~restarts:2 ~pool
                     ~rng:(Rng.create ~seed:5L) points)))
      in
      if sweep false <> sweep true then
        Alcotest.failf "BIC sweep not bit-identical metrics on/off at jobs=%d" jobs)
    [ 1; 4 ]

(* Span-tree well-formedness under the fault-injection matrix: every
   injection point, driven through the supervised pipeline, must leave
   every domain's event journal as a balanced bracket sequence — the
   injected exceptions unwind through [Obs.span]'s finalizer, so a fault
   can truncate work but never leave a span open or cross spans over. *)
let test_span_tree_under_fault_matrix () =
  let trio = golden_trio () in
  let config =
    { Pipeline.default_config with Pipeline.icount = 1_000; cache_dir = None;
      progress = false; jobs = 2; retries = 1 }
  in
  List.iter
    (fun point ->
      let spec = Printf.sprintf "seed=41,%s=0.35" (Fault.point_name point) in
      Obs.reset ();
      Obs.set_enabled true;
      Obs.set_record_events true;
      Fun.protect
        ~finally:(fun () ->
          Obs.set_enabled false;
          Obs.set_record_events false;
          Obs.reset ())
        (fun () ->
          Fault.with_plan
            (Some (plan_exn spec))
            (fun () ->
              let _, _, (_ : Run_report.t) = Pipeline.datasets_report ~config trio in
              ());
          let total = ref 0 in
          List.iter
            (fun (sid, evs) ->
              total := !total + List.length evs;
              let stack = ref [] in
              List.iter
                (fun e ->
                  if e.Obs.ev_enter then stack := e.Obs.ev_name :: !stack
                  else
                    match !stack with
                    | top :: rest when top = e.Obs.ev_name -> stack := rest
                    | top :: _ ->
                      Alcotest.failf "%s: store %d exits %S while %S is open" spec sid
                        e.Obs.ev_name top
                    | [] ->
                      Alcotest.failf "%s: store %d exits %S with no span open" spec sid
                        e.Obs.ev_name)
                evs;
              if !stack <> [] then
                Alcotest.failf "%s: store %d left %d spans open" spec sid
                  (List.length !stack))
            (Obs.events ());
          if !total = 0 then Alcotest.failf "%s: no events recorded" spec))
    Fault.all_points

(* ---------------- suite ---------------- *)

let test_suite_smoke () =
  let report =
    V.Suite.run ~level:V.Suite.Quick
      ~workloads:[ List.hd (golden_trio ()) ]
      ~invariant_icount:2_000 ~reference_icount:500 ~differential_icount:1_000 ()
  in
  Alcotest.(check bool) "suite passes" true (V.Suite.passed report);
  (* one workload: invariants + reference + 2 per-workload laws + 2 global,
     plus the 5 sketch laws, the 2 single-workload serve laws and the 6
     workload-independent scale laws *)
  Alcotest.(check int) "check count" 19 (List.length report.V.Suite.checks);
  Alcotest.(check bool) "scale layer present" true
    (List.exists (fun c -> c.V.Suite.layer = "scale") report.V.Suite.checks);
  Alcotest.(check bool) "sketch layer present" true
    (List.exists (fun c -> c.V.Suite.layer = "sketch") report.V.Suite.checks);
  Alcotest.(check bool) "render mentions failures line" true
    (String.length (V.Suite.render report) > 0)

let suite =
  ( "verify",
    [
      Alcotest.test_case "invariants: clean trace" `Quick test_inv_clean_trace;
      Alcotest.test_case "invariants: defined before use" `Quick test_inv_defined_before_use;
      Alcotest.test_case "invariants: pc chain" `Quick test_inv_pc_chain;
      Alcotest.test_case "invariants: mem addr" `Quick test_inv_mem_addr;
      Alcotest.test_case "invariants: ctrl target" `Quick test_inv_ctrl_target;
      Alcotest.test_case "invariants: branch target" `Quick test_inv_branch_target_consistency;
      Alcotest.test_case "invariants: reg id" `Quick test_inv_reg_id;
      Alcotest.test_case "invariants: icount" `Quick test_inv_icount;
      Alcotest.test_case "invariants: max violations" `Quick test_inv_max_violations;
      prop_invariants_on_random_specs;
      prop_reference_agrees_on_random_specs;
      prop_prefix_law_on_random_specs;
      Alcotest.test_case "reference: golden workloads" `Quick test_reference_on_golden_workloads;
      Alcotest.test_case "reference: chunked transport" `Quick
        test_chunked_transport_matches_reference;
      Alcotest.test_case "reference: empty trace" `Quick test_reference_empty_trace;
      Alcotest.test_case "reference: catches drift" `Quick test_reference_catches_drift;
      Alcotest.test_case "differential: laws" `Quick test_differential_laws;
      Alcotest.test_case "differential: prefix invalid" `Quick test_differential_prefix_invalid;
      Alcotest.test_case "differential: jobs equality" `Quick test_differential_jobs_equality;
      Alcotest.test_case "differential: cache roundtrip" `Quick test_differential_cache_roundtrip;
      Alcotest.test_case "kernels: fused fitness vs naive" `Quick
        test_fused_fitness_matches_naive_reference;
      Alcotest.test_case "kernels: subset delta tolerance" `Quick
        test_subset_delta_within_tolerance;
      Alcotest.test_case "kernels: leave-one-out vs naive" `Quick
        test_ce_leave_one_out_matches_naive;
      Alcotest.test_case "kernels: CE vs naive elimination" `Quick
        test_ce_matches_naive_elimination;
      Alcotest.test_case "kernels: selection jobs invariance" `Quick
        test_selection_jobs_invariance;
      Alcotest.test_case "kernels: clustering jobs invariance" `Quick
        test_clustering_jobs_invariance;
      Alcotest.test_case "cache: hit consumed" `Quick test_cache_hit_is_consumed;
      Alcotest.test_case "cache: stale version invalidated" `Quick
        test_cache_stale_version_invalidated;
      Alcotest.test_case "cache: corrupt recomputed" `Quick test_cache_corrupt_recomputed;
      Alcotest.test_case "cache: truncated recomputed" `Quick test_cache_truncated_recomputed;
      Alcotest.test_case "supervised: run_results vs run differential" `Quick
        test_run_results_matches_run_differential;
      Alcotest.test_case "cache: checksum quarantine" `Quick test_cache_checksum_quarantine;
      Alcotest.test_case "cache: crash-resume bit-identical" `Quick
        test_crash_resume_bit_identical;
      Alcotest.test_case "supervised: failing workload degrades" `Quick
        test_failing_workload_degrades_gracefully;
      Alcotest.test_case "obs: characterization inert" `Quick
        test_metrics_inert_characterization;
      Alcotest.test_case "obs: selection/clustering inert" `Quick
        test_metrics_inert_selection_and_clustering;
      Alcotest.test_case "obs: span tree under faults" `Quick
        test_span_tree_under_fault_matrix;
      Alcotest.test_case "suite smoke" `Quick test_suite_smoke;
    ] )
