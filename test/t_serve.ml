(* Serve daemon tests: wire-protocol round-trips (float-bit exact),
   bounded-queue and circuit-breaker unit behaviour, and a deterministic
   soak of the dispatcher core under virtual clocks — queue-full
   shedding, deadline expiry both while queued and mid-chunk, sketch
   degradation near the deadline, breaker trip/probe/reset under an
   injected fault plan, drain semantics — plus the served-vs-direct
   differential at jobs=1 and 4 and a socket + loadgen end-to-end smoke
   with a real SIGTERM drain. *)

module Protocol = Mica_serve.Protocol
module Bqueue = Mica_serve.Bqueue
module Breaker = Mica_serve.Breaker
module Server = Mica_serve.Server
module Loadgen = Mica_serve.Loadgen
module Fault = Mica_util.Fault
module Workload = Mica_workloads.Workload

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let sha = "MiBench/sha/large"
let mcf = "SPEC2000/mcf/ref"

(* A clock the test advances by hand: every read moves time forward by
   [step] (0 = frozen), so deadline trajectories are exact. *)
let manual_clock () =
  let now = ref 0.0 and step = ref 0.0 in
  let clock () =
    now := !now +. !step;
    !now
  in
  (clock, now, step)

let test_config ?(icount = 3_000) ?(jobs = 1) ?(queue_capacity = 4) ?(retries = 0) ?clock
    ?(breaker = Breaker.default_config) () =
  {
    Server.default_config with
    Server.icount;
    jobs;
    queue_capacity;
    retries;
    cache_dir = None;
    breaker;
    clock = (match clock with Some c -> c | None -> Server.default_config.Server.clock);
  }

let collect () =
  let replies = ref [] in
  let reply r = replies := r :: !replies in
  (replies, reply)

let characterize ?(estimate = false) ?deadline_ms ~id workload =
  { Protocol.id; op = Protocol.Characterize { workload; estimate }; deadline_ms }

let pump_dry t = while Server.pump t > 0 do () done

let vector_of (r : Protocol.response) =
  match r.Protocol.payload with
  | Some (Protocol.Vector { mica; hpc; estimated; cached }) -> (mica, hpc, estimated, cached)
  | _ -> Alcotest.failf "reply %d carries no vector" r.Protocol.rid

(* ---------------- protocol ---------------- *)

let roundtrip_req req =
  match Protocol.decode_request (Protocol.encode_request req) with
  | Ok r -> r
  | Error e -> Alcotest.failf "request round-trip: %s" e

let roundtrip_resp resp =
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok r -> r
  | Error e -> Alcotest.failf "response round-trip: %s" e

let test_protocol_request_roundtrip () =
  List.iter
    (fun req -> Alcotest.(check bool) "request round-trips" true (roundtrip_req req = req))
    [
      characterize ~id:1 sha;
      characterize ~estimate:true ~deadline_ms:250.0 ~id:2 sha;
      { Protocol.id = 3; op = Protocol.Distance { a = sha; b = mcf }; deadline_ms = None };
      { Protocol.id = 4; op = Protocol.Classify { workload = sha; threshold = 1.5 }; deadline_ms = Some 10.0 };
      { Protocol.id = 5; op = Protocol.Knn { workload = mcf; k = 3 }; deadline_ms = None };
      { Protocol.id = 6; op = Protocol.Health; deadline_ms = None };
      { Protocol.id = 7; op = Protocol.Metrics; deadline_ms = None };
    ]

let test_protocol_response_float_bits () =
  (* The wire format is part of the bit-identity law: every float —
     including non-finite, signed zero and denormal — must come back
     with the same bit pattern. *)
  let tricky = [| 0.1; -0.0; Float.nan; infinity; neg_infinity; 1e-308; Float.max_float; 3.7 |] in
  let resp =
    {
      Protocol.rid = 9;
      status = Protocol.Ok;
      payload = Some (Protocol.Vector { mica = tricky; hpc = [| 0.5; 2.25 |]; estimated = true; cached = false });
      error = None;
      backtrace = None;
      elapsed_ms = 12.5;
      retry_after_ms = None;
    }
  in
  let back = roundtrip_resp resp in
  let m, h, estimated, cached = vector_of back in
  Alcotest.(check bool) "estimated flag" true estimated;
  Alcotest.(check bool) "cached flag" false cached;
  Alcotest.(check int) "mica arity" (Array.length tricky) (Array.length m);
  Array.iteri
    (fun i x ->
      Alcotest.(check int64)
        (Printf.sprintf "mica.(%d) bits" i)
        (Int64.bits_of_float tricky.(i))
        (Int64.bits_of_float x))
    m;
  Alcotest.(check int) "hpc arity" 2 (Array.length h)

let test_protocol_response_shapes () =
  let statuses =
    [
      Protocol.Ok; Protocol.Error; Protocol.Overloaded; Protocol.Deadline; Protocol.Quarantined;
      Protocol.Draining;
    ]
  in
  List.iter
    (fun status ->
      let resp =
        {
          Protocol.rid = 1;
          status;
          payload = None;
          error = Some "why";
          backtrace = Some "Raised at ...";
          elapsed_ms = 1.0;
          retry_after_ms = Some 40.0;
        }
      in
      Alcotest.(check bool)
        (Protocol.status_name status ^ " round-trips")
        true
        (roundtrip_resp resp = resp))
    statuses;
  List.iter
    (fun payload ->
      let resp =
        {
          Protocol.rid = 2;
          status = Protocol.Ok;
          payload = Some payload;
          error = None;
          backtrace = None;
          elapsed_ms = 0.0;
          retry_after_ms = None;
        }
      in
      Alcotest.(check bool) "payload round-trips" true (roundtrip_resp resp = resp))
    [
      Protocol.Number 2.5;
      Protocol.Classification { nearest = mcf; distance = 1.25; threshold = 2.0; within = true };
      Protocol.Neighbors [ (sha, 0.5); (mcf, 1.5) ];
      Protocol.Health_info { queue_depth = 3; queue_capacity = 64; draining = false; warm = 7 };
      Protocol.Text "# metrics\n";
    ]

let test_protocol_decode_errors () =
  List.iter
    (fun line ->
      match Protocol.decode_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [ "garbage"; "{}"; {|{"id": 1}|}; {|{"id": 1, "op": "nonsense"}|}; {|{"op": "health"}|} ]

(* ---------------- bounded queue ---------------- *)

let test_bqueue_bounds_and_close () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3 refused at capacity" false (Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Bqueue.try_pop q);
  Alcotest.(check bool) "slot freed" true (Bqueue.try_push q 4);
  Bqueue.close q;
  Bqueue.close q (* idempotent *);
  Alcotest.(check bool) "push after close refused" false (Bqueue.try_push q 5);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "drains after close" (Some 4) (Bqueue.pop q);
  Alcotest.(check (option int)) "closed and empty" None (Bqueue.pop q)

(* ---------------- breaker ---------------- *)

let test_breaker_machine () =
  let b = Breaker.create { Breaker.threshold = 2; cooldown = 2 } in
  let w = "w" in
  Alcotest.(check bool) "closed admits" true (Breaker.admit b w = `Admit);
  Breaker.record b w ~ok:false;
  Alcotest.(check bool) "one failure stays closed" true (Breaker.state b w = Breaker.Closed);
  Alcotest.(check bool) "still admits" true (Breaker.admit b w = `Admit);
  Breaker.record b w ~ok:false;
  Alcotest.(check bool) "threshold trips" true (Breaker.state b w = Breaker.Open);
  Alcotest.(check bool) "open rejects" true (Breaker.admit b w = `Reject);
  Alcotest.(check bool) "cooldown rejects" true (Breaker.admit b w = `Reject);
  Alcotest.(check bool) "half-open after cooldown" true (Breaker.state b w = Breaker.Half_open);
  Alcotest.(check bool) "probe admitted" true (Breaker.admit b w = `Admit);
  Alcotest.(check bool) "second probe refused" true (Breaker.admit b w = `Reject);
  Breaker.record b w ~ok:false;
  Alcotest.(check bool) "failed probe re-opens" true (Breaker.state b w = Breaker.Open);
  Alcotest.(check bool) "re-opened rejects" true (Breaker.admit b w = `Reject);
  Alcotest.(check bool) "cooldown again" true (Breaker.admit b w = `Reject);
  Alcotest.(check bool) "probe again" true (Breaker.admit b w = `Admit);
  Breaker.record b w ~ok:true;
  Alcotest.(check bool) "good probe closes" true (Breaker.state b w = Breaker.Closed);
  (* a success then a single failure must not trip a freshly closed breaker *)
  Breaker.record b w ~ok:true;
  Breaker.record b w ~ok:false;
  Alcotest.(check bool) "failure count was reset" true (Breaker.state b w = Breaker.Closed)

(* ---------------- admission: shedding and drain ---------------- *)

let light_req id = { Protocol.id; op = Protocol.Distance { a = sha; b = mcf }; deadline_ms = None }

let test_queue_full_sheds () =
  let clock, _, _ = manual_clock () in
  let t = Server.create (test_config ~queue_capacity:2 ~clock ()) in
  let replies, reply = collect () in
  List.iter (fun id -> Server.submit t (light_req id) ~reply) [ 1; 2; 3; 4 ];
  (* capacity 2: ids 3 and 4 must be shed immediately, with a hint *)
  let shed = List.filter (fun r -> r.Protocol.status = Protocol.Overloaded) !replies in
  Alcotest.(check int) "two shed synchronously" 2 (List.length shed);
  Alcotest.(check (list int)) "shed ids" [ 4; 3 ] (List.map (fun r -> r.Protocol.rid) shed);
  List.iter
    (fun r ->
      Alcotest.(check bool) "retry hint present" true (r.Protocol.retry_after_ms <> None))
    shed;
  Alcotest.(check int) "admitted queue depth" 2 (Server.queue_depth t);
  pump_dry t;
  Alcotest.(check int) "every request got exactly one reply" 4 (List.length !replies);
  Alcotest.(check int) "queue drained" 0 (Server.queue_depth t)

let test_drain_semantics () =
  let clock, _, _ = manual_clock () in
  let t = Server.create (test_config ~clock ()) in
  let replies, reply = collect () in
  Server.submit t (light_req 1) ~reply;
  Server.submit t (light_req 2) ~reply;
  Server.begin_drain t;
  Server.begin_drain t (* idempotent *);
  Server.submit t (light_req 3) ~reply;
  let r3 = List.hd !replies in
  Alcotest.(check bool) "new work refused while draining" true
    (r3.Protocol.rid = 3 && r3.Protocol.status = Protocol.Draining);
  (* drain_pump must answer the queued tickets and return *)
  Server.drain_pump t;
  Alcotest.(check int) "in-flight answered before exit" 3 (List.length !replies);
  Alcotest.(check bool) "draining flag" true (Server.draining t);
  (* health stays answerable during drain *)
  Server.submit t { Protocol.id = 9; op = Protocol.Health; deadline_ms = None } ~reply;
  match (List.hd !replies).Protocol.payload with
  | Some (Protocol.Health_info { draining = true; _ }) -> ()
  | _ -> Alcotest.fail "health must report draining"

(* ---------------- deadlines ---------------- *)

let test_deadline_expires_queued () =
  let clock, now, _ = manual_clock () in
  let t = Server.create (test_config ~clock ()) in
  let replies, reply = collect () in
  Server.submit t (characterize ~deadline_ms:10.0 ~id:1 sha) ~reply;
  now := 0.05 (* the 10ms deadline passes while the ticket waits *);
  pump_dry t;
  match !replies with
  | [ r ] ->
    Alcotest.(check bool) "swept as deadline" true (r.Protocol.status = Protocol.Deadline);
    Alcotest.(check bool) "elapsed accounted" true (r.Protocol.elapsed_ms >= 10.0)
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)

let test_deadline_expires_mid_chunk () =
  (* 1ms per clock read: the ticket is fresh at dispatch but the
     cooperative per-chunk check inside the trace loop crosses the
     deadline a few chunks in, abandoning the work. *)
  let clock, _, step = manual_clock () in
  step := 0.001;
  let t = Server.create (test_config ~icount:20_000 ~clock ()) in
  let replies, reply = collect () in
  Server.submit t (characterize ~deadline_ms:5.0 ~id:1 sha) ~reply;
  pump_dry t;
  (match !replies with
  | [ r ] -> Alcotest.(check bool) "cancelled mid-trace" true (r.Protocol.status = Protocol.Deadline)
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs));
  (* the abandoned work must not poison later requests for the workload *)
  step := 0.0;
  Server.submit t (characterize ~id:2 sha) ~reply;
  pump_dry t;
  let r2 = List.hd !replies in
  Alcotest.(check bool) "workload still serveable" true (r2.Protocol.status = Protocol.Ok);
  let _, _, estimated, cached = vector_of r2 in
  Alcotest.(check bool) "exact, freshly computed" true ((not estimated) && not cached)

let test_degrades_near_deadline () =
  let clock, _, step = manual_clock () in
  let t = Server.create (test_config ~clock ()) in
  let replies, reply = collect () in
  (* prime the EWMA with one exact run under a 50ms-per-read clock *)
  step := 0.05;
  Server.submit t (characterize ~id:1 mcf) ~reply;
  pump_dry t;
  step := 0.0;
  (* frozen clock: the 1ms budget cannot actually expire, so an [ok]
     degraded answer — not a [deadline] — is the only correct outcome *)
  Server.submit t (characterize ~estimate:true ~deadline_ms:1.0 ~id:2 sha) ~reply;
  pump_dry t;
  let r2 = List.hd !replies in
  Alcotest.(check bool) "degraded answer is ok" true (r2.Protocol.status = Protocol.Ok);
  let _, _, estimated, cached = vector_of r2 in
  Alcotest.(check bool) "flagged estimated" true estimated;
  Alcotest.(check bool) "not served from cache" true (not cached);
  (* estimates never enter the exact results table *)
  Server.submit t (characterize ~id:3 sha) ~reply;
  pump_dry t;
  let _, _, estimated3, cached3 = vector_of (List.hd !replies) in
  Alcotest.(check bool) "exact recomputed, not cached estimate" true
    ((not estimated3) && not cached3);
  Server.submit t (characterize ~id:4 sha) ~reply;
  pump_dry t;
  let _, _, _, cached4 = vector_of (List.hd !replies) in
  Alcotest.(check bool) "exact result now resident" true cached4;
  (* without the estimate opt-in the same squeeze runs exactly *)
  Server.submit t (characterize ~estimate:false ~deadline_ms:1.0 ~id:5 mcf) ~reply;
  pump_dry t;
  Alcotest.(check bool) "no opt-in: cache hit, not estimate" true
    (let _, _, e, c = vector_of (List.hd !replies) in
     (not e) && c)

(* ---------------- breaker under injected faults ---------------- *)

let test_breaker_trips_and_recovers () =
  let clock, _, _ = manual_clock () in
  let t =
    Server.create (test_config ~clock ~breaker:{ Breaker.threshold = 2; cooldown = 2 } ())
  in
  let replies, reply = collect () in
  let ask id =
    Server.submit t (characterize ~id sha) ~reply;
    pump_dry t;
    List.hd !replies
  in
  let plan =
    match Fault.parse "seed=3,pool.worker=1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  Fault.with_plan (Some plan) (fun () ->
      let r1 = ask 1 in
      Alcotest.(check bool) "first failure errors" true (r1.Protocol.status = Protocol.Error);
      (match r1.Protocol.error with
      | Some e -> Alcotest.(check bool) "error names attempts" true (contains ~sub:"attempt" e)
      | None -> Alcotest.fail "error reply must carry a message");
      (* satellite: worker backtraces survive into the error reply *)
      (match r1.Protocol.backtrace with
      | Some bt -> Alcotest.(check bool) "backtrace non-empty" true (String.trim bt <> "")
      | None -> Alcotest.fail "error reply must carry the worker backtrace");
      let r2 = ask 2 in
      Alcotest.(check bool) "second failure errors" true (r2.Protocol.status = Protocol.Error);
      let r3 = ask 3 in
      Alcotest.(check bool) "breaker open: quarantined" true
        (r3.Protocol.status = Protocol.Quarantined);
      let r4 = ask 4 in
      Alcotest.(check bool) "cooldown: still quarantined" true
        (r4.Protocol.status = Protocol.Quarantined));
  (* fault plan gone: the half-open probe succeeds and closes the breaker *)
  let r5 = ask 5 in
  Alcotest.(check bool) "probe succeeds" true (r5.Protocol.status = Protocol.Ok);
  let r6 = ask 6 in
  Alcotest.(check bool) "closed again, served from results" true
    (r6.Protocol.status = Protocol.Ok
    &&
    let _, _, _, cached = vector_of r6 in
    cached)

(* ---------------- served-vs-direct differential ---------------- *)

let test_served_matches_direct () =
  let workloads =
    List.map Mica_workloads.Registry.find_exn [ sha; mcf; "SPEC2000/swim/ref" ]
  in
  List.iter
    (fun jobs ->
      let o = Mica_verify.Serve_laws.exact_identity_law ~icount:2_000 ~jobs workloads in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" o.Mica_verify.Serve_laws.law o.Mica_verify.Serve_laws.detail)
        true o.Mica_verify.Serve_laws.ok)
    [ 1; 4 ];
  let o = Mica_verify.Serve_laws.degraded_identity_law ~icount:2_000 workloads in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" o.Mica_verify.Serve_laws.law o.Mica_verify.Serve_laws.detail)
    true o.Mica_verify.Serve_laws.ok

(* ---------------- socket + loadgen end-to-end ---------------- *)

let test_socket_loadgen_sigterm () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "mica-serve-test.sock" in
  let t = Server.create (test_config ~icount:2_000 ~jobs:2 ~queue_capacity:16 ()) in
  let workloads = List.map Mica_workloads.Registry.find_exn [ sha; mcf ] in
  let warm = Server.warm_start t ~workloads in
  Alcotest.(check int) "warm set resident" 2 warm;
  let ready = Semaphore.Binary.make false in
  let server =
    Thread.create
      (fun () ->
        Server.listen_and_serve
          ~on_ready:(fun () -> Semaphore.Binary.release ready)
          t (Server.Unix_path path))
      ()
  in
  Semaphore.Binary.acquire ready;
  let report =
    Loadgen.run
      {
        Loadgen.default_config with
        Loadgen.address = Server.Unix_path path;
        rate = 60.0;
        duration = 0.5;
        deadline_ms = 1000.0;
        seed = 7;
        workloads = [ sha; mcf ];
      }
  in
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.join server;
  Alcotest.(check bool) "arrivals happened" true (report.Loadgen.sent > 0);
  Alcotest.(check int) "no reply lost, none malformed" 0 report.Loadgen.protocol_errors;
  Alcotest.(check int) "no deadline overrun beyond 10%" 0 report.Loadgen.deadline_overruns;
  let terminal =
    report.Loadgen.ok + report.Loadgen.estimated + report.Loadgen.cached + report.Loadgen.shed
    + report.Loadgen.expired + report.Loadgen.failed + report.Loadgen.quarantined
    + report.Loadgen.draining
  in
  Alcotest.(check int) "every request reached a terminal state" report.Loadgen.sent terminal;
  Alcotest.(check bool) "warm set answers came from the results table" true
    (report.Loadgen.cached > 0);
  Alcotest.(check bool) "socket unlinked by drain" true (not (Sys.file_exists path))

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol: request round-trip" `Quick test_protocol_request_roundtrip;
      Alcotest.test_case "protocol: response float bits" `Quick test_protocol_response_float_bits;
      Alcotest.test_case "protocol: response shapes" `Quick test_protocol_response_shapes;
      Alcotest.test_case "protocol: decode errors" `Quick test_protocol_decode_errors;
      Alcotest.test_case "bqueue: bounds and close" `Quick test_bqueue_bounds_and_close;
      Alcotest.test_case "breaker: state machine" `Quick test_breaker_machine;
      Alcotest.test_case "admission: queue-full sheds" `Quick test_queue_full_sheds;
      Alcotest.test_case "admission: drain semantics" `Quick test_drain_semantics;
      Alcotest.test_case "deadline: expires while queued" `Quick test_deadline_expires_queued;
      Alcotest.test_case "deadline: expires mid-chunk" `Quick test_deadline_expires_mid_chunk;
      Alcotest.test_case "degradation: near-deadline estimate" `Quick test_degrades_near_deadline;
      Alcotest.test_case "breaker: trips and recovers under faults" `Quick
        test_breaker_trips_and_recovers;
      Alcotest.test_case "differential: served = direct (jobs 1,4)" `Slow
        test_served_matches_direct;
      Alcotest.test_case "socket: loadgen + SIGTERM drain" `Slow test_socket_loadgen_sigterm;
    ] )
