(* Scale layer: columnar store, blocked kernels, ANN index, corpus sweep.
   The load-bearing contracts here are bit-identity (blocked = naive,
   store round-trips, corpus determinism) and the ANN recall/monotonicity
   laws — see DESIGN.md §13. *)
module S = Mica_stats
module Core = Mica_core
module W = Mica_workloads

let feq = Tutil.feq

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let mk_dataset ?(rows = 7) ?(cols = 4) ?(seed = 11L) () =
  let rng = Mica_util.Rng.create ~seed in
  let data =
    Array.init rows (fun _ ->
        Array.init cols (fun _ -> Mica_util.Rng.float rng 100.0 -. 50.0))
  in
  let names = Array.init rows (Printf.sprintf "w%02d") in
  let features = Array.init cols (Printf.sprintf "f%d") in
  Core.Dataset.create ~names ~features data

let with_tmp_file f =
  let path = Filename.temp_file "mica_scale" ".micd" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let bits = Int64.bits_of_float

let check_matrix_bits msg (a : S.Matrix.t) (b : S.Matrix.t) =
  Alcotest.(check int) (msg ^ ": rows") (Array.length a) (Array.length b);
  Array.iteri
    (fun i ra ->
      Array.iteri
        (fun j v ->
          Alcotest.(check int64)
            (Printf.sprintf "%s (%d,%d)" msg i j)
            (bits v) (bits b.(i).(j)))
        ra)
    a

(* ------------------------------------------------------------------ *)
(* Dataset store                                                       *)

let test_store_round_trip () =
  let ds = mk_dataset () in
  with_tmp_file (fun path ->
      Core.Dataset_store.write path ds;
      (match Core.Dataset_store.verify path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "verify: %s" (Mica_run.Run_io.describe_error e));
      match Core.Dataset_store.load path with
      | Error e -> Alcotest.failf "load: %s" (Mica_run.Run_io.describe_error e)
      | Ok st ->
        let back = Core.Dataset_store.to_dataset st in
        Alcotest.(check (array string)) "names" ds.Core.Dataset.names back.Core.Dataset.names;
        Alcotest.(check (array string))
          "features" ds.Core.Dataset.features back.Core.Dataset.features;
        check_matrix_bits "cell" ds.Core.Dataset.data back.Core.Dataset.data)

let test_store_header_golden () =
  let ds = mk_dataset ~rows:3 ~cols:2 () in
  with_tmp_file (fun path ->
      Core.Dataset_store.write path ds;
      let ic = open_in_bin path in
      let header = really_input_string ic 24 in
      close_in ic;
      Alcotest.(check string) "magic" "MICD" (String.sub header 0 4);
      Alcotest.(check int) "version" 1 (Char.code header.[4]);
      let endian = Char.code header.[5] in
      Alcotest.(check int) "endian tag" (if Sys.big_endian then 2 else 1) endian;
      Alcotest.(check int) "reserved" 0 (Char.code header.[6] + Char.code header.[7]);
      let u32 off = Int32.to_int (String.get_int32_le header off) in
      Alcotest.(check int) "rows" 3 (u32 12);
      Alcotest.(check int) "cols" 2 (u32 16);
      let data_offset = u32 20 in
      Alcotest.(check int) "data offset 8-aligned" 0 (data_offset mod 8);
      let size = (Unix.stat path).Unix.st_size in
      Alcotest.(check int) "size arithmetic" (data_offset + (3 * 2 * 8)) size)

let expect_corrupt what = function
  | Error (Mica_run.Run_io.Corrupt _) -> ()
  | Error e ->
    Alcotest.failf "%s: expected Corrupt, got %s" what (Mica_run.Run_io.describe_error e)
  | Ok _ -> Alcotest.failf "%s: expected Corrupt, got Ok" what

let test_store_tamper () =
  let ds = mk_dataset () in
  with_tmp_file (fun path ->
      Core.Dataset_store.write path ds;
      let bytes =
        let ic = open_in_bin path in
        let b = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Bytes.of_string b
      in
      let rewrite b =
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc
      in
      (* flip a metadata byte: load itself must fail *)
      let meta = Bytes.copy bytes in
      Bytes.set meta 58 (Char.chr (Char.code (Bytes.get meta 58) lxor 0xFF));
      rewrite meta;
      expect_corrupt "metadata tamper"
        (Result.map (fun (_ : Core.Dataset_store.t) -> ()) (Core.Dataset_store.load path));
      (* flip a data byte: load stays O(1)-happy, verify catches it *)
      let data = Bytes.copy bytes in
      let last = Bytes.length data - 1 in
      Bytes.set data last (Char.chr (Char.code (Bytes.get data last) lxor 0xFF));
      rewrite data;
      (match Core.Dataset_store.load path with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "data tamper should load: %s" (Mica_run.Run_io.describe_error e));
      expect_corrupt "data tamper" (Core.Dataset_store.verify path);
      (* truncation: size arithmetic fails in load *)
      rewrite (Bytes.sub bytes 0 (Bytes.length bytes - 5));
      expect_corrupt "truncation"
        (Result.map (fun (_ : Core.Dataset_store.t) -> ()) (Core.Dataset_store.load path));
      (* wrong magic is foreign, not corrupt *)
      let magic = Bytes.copy bytes in
      Bytes.set magic 0 'X';
      rewrite magic;
      (match Core.Dataset_store.load path with
      | Error (Mica_run.Run_io.Corrupt _) -> ()
      | Error (Mica_run.Run_io.Foreign_version _) -> ()
      | Error e ->
        Alcotest.failf "bad magic: unexpected %s" (Mica_run.Run_io.describe_error e)
      | Ok _ -> Alcotest.fail "bad magic: expected an error");
      (* missing file *)
      Sys.remove path;
      match Core.Dataset_store.load path with
      | Error Mica_run.Run_io.Missing -> ()
      | Error e -> Alcotest.failf "missing: unexpected %s" (Mica_run.Run_io.describe_error e)
      | Ok _ -> Alcotest.fail "missing: expected Missing")

let test_store_degenerate () =
  (* empty (0 rows) and single-row datasets round-trip *)
  List.iter
    (fun rows ->
      let ds = mk_dataset ~rows ~cols:3 ~seed:5L () in
      with_tmp_file (fun path ->
          Core.Dataset_store.write path ds;
          match Core.Dataset_store.load path with
          | Error e ->
            Alcotest.failf "load %d rows: %s" rows (Mica_run.Run_io.describe_error e)
          | Ok st ->
            Alcotest.(check int) "rows" rows (Array.length st.Core.Dataset_store.names);
            let back = Core.Dataset_store.to_dataset st in
            check_matrix_bits "cell" ds.Core.Dataset.data back.Core.Dataset.data))
    [ 0; 1 ]

let test_store_csv_round_trip () =
  let ds = mk_dataset ~rows:6 ~cols:5 ~seed:23L () in
  let csv1 = Filename.temp_file "mica_scale" ".csv" in
  let csv2 = Filename.temp_file "mica_scale" ".csv" in
  let finally () = List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ csv1; csv2 ] in
  Fun.protect ~finally (fun () ->
      with_tmp_file (fun path ->
          Core.Dataset.to_csv ds csv1;
          (match Core.Dataset_store.import_csv ~csv:csv1 path with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "import_csv: %s" msg);
          (match Core.Dataset_store.load path with
          | Error e -> Alcotest.failf "load: %s" (Mica_run.Run_io.describe_error e)
          | Ok st -> Core.Dataset_store.export_csv st csv2);
          let read p =
            let ic = open_in_bin p in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          Alcotest.(check string) "csv -> binary -> csv byte-identical" (read csv1) (read csv2));
      (* malformed CSV surfaces as Error, not an exception *)
      let oc = open_out csv1 in
      output_string oc "name,a\nw0,not_a_float\n";
      close_out oc;
      with_tmp_file (fun path ->
          match Core.Dataset_store.import_csv ~csv:csv1 path with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "malformed CSV should be Error"))

(* ------------------------------------------------------------------ *)
(* Blocked kernels and preallocated outputs                            *)

let test_blocked_matches_naive () =
  let ds = mk_dataset ~rows:37 ~cols:6 ~seed:41L () in
  let naive = S.Distance.condensed ds.Core.Dataset.data in
  let cm = S.Colmat.of_matrix ds.Core.Dataset.data in
  List.iter
    (fun (jobs, block) ->
      let blocked =
        Mica_util.Pool.using ~jobs (fun pool ->
            S.Distance.condensed_blocked ~pool ~block cm)
      in
      Alcotest.(check int)
        (Printf.sprintf "length jobs=%d block=%d" jobs block)
        (Array.length naive) (Array.length blocked);
      Array.iteri
        (fun p v ->
          Alcotest.(check int64)
            (Printf.sprintf "pair %d jobs=%d block=%d" p jobs block)
            (bits v) (bits blocked.(p)))
        naive)
    [ (1, 1); (1, 5); (1, 64); (4, 3); (4, 64) ]

let prop_blocked_matches_naive =
  let gen =
    QCheck2.Gen.(
      let* rows = int_range 0 40 in
      let* cols = int_range 1 10 in
      let* block = int_range 1 8 in
      let* jobs = oneofl [ 1; 4 ] in
      let* cells = list_repeat (rows * cols) (float_range (-1e3) 1e3) in
      return (rows, cols, block, jobs, cells))
  in
  Tutil.qcheck_case ~count:80 "blocked condensed = naive (bit-exact)" gen
    (fun (rows, cols, block, jobs, cells) ->
      let cells = Array.of_list cells in
      let m = Array.init rows (fun i -> Array.init cols (fun j -> cells.((i * cols) + j))) in
      let naive = S.Distance.condensed m in
      let blocked =
        Mica_util.Pool.using ~jobs (fun pool ->
            S.Distance.condensed_blocked ~pool ~block (S.Colmat.of_matrix m))
      in
      Array.length naive = Array.length blocked
      && Array.for_all2 (fun a b -> bits a = bits b) naive blocked)

let test_prealloc_out () =
  let ds = mk_dataset ~rows:12 ~cols:5 ~seed:3L () in
  let m = ds.Core.Dataset.data in
  let n = Array.length m in
  let expect = S.Distance.condensed m in
  (* condensed reuses the supplied buffer *)
  let out = Array.make (S.Distance.pair_count n) Float.nan in
  let got = S.Distance.condensed ~out m in
  Alcotest.(check bool) "condensed returns ?out" true (got == out);
  Array.iteri (fun p v -> Alcotest.(check int64) "condensed value" (bits v) (bits out.(p))) expect;
  (* blocked too *)
  let out_b = Array.make (S.Distance.pair_count n) Float.nan in
  let got_b = S.Distance.condensed_blocked ~out:out_b (S.Colmat.of_matrix m) in
  Alcotest.(check bool) "blocked returns ?out" true (got_b == out_b);
  (* subset_distances *)
  let comps = S.Distance.condensed_squared_components m in
  let cols = [| 0; 2; 4 |] in
  let expect_s = S.Distance.subset_distances comps cols in
  let out_s = Array.make (Array.length comps) Float.nan in
  let got_s = S.Distance.subset_distances ~out:out_s comps cols in
  Alcotest.(check bool) "subset returns ?out" true (got_s == out_s);
  Array.iteri (fun p v -> Alcotest.(check int64) "subset value" (bits v) (bits out_s.(p))) expect_s;
  (* wrong lengths raise *)
  (try
     ignore (S.Distance.condensed ~out:(Array.make 3 0.0) m : float array);
     Alcotest.fail "condensed bad ?out should raise"
   with Invalid_argument _ -> ());
  (try
     ignore (S.Distance.condensed_blocked ~out:(Array.make 3 0.0) (S.Colmat.of_matrix m) : float array);
     Alcotest.fail "blocked bad ?out should raise"
   with Invalid_argument _ -> ());
  let bad_s () =
    ignore (S.Distance.subset_distances ~out:(Array.make 3 0.0) comps cols : float array)
  in
  (try
     bad_s ();
     Alcotest.fail "subset bad ?out should raise"
   with Invalid_argument _ -> ())

let test_colmat_round_trip () =
  let ds = mk_dataset ~rows:9 ~cols:4 ~seed:31L () in
  let m = ds.Core.Dataset.data in
  let cm = S.Colmat.of_matrix m in
  check_matrix_bits "to_matrix" m (S.Colmat.to_matrix cm);
  Alcotest.(check (pair int int)) "dims" (9, 4) (S.Colmat.dims cm);
  (* accessors agree with the row-major image *)
  Alcotest.(check int64) "get" (bits m.(4).(2)) (bits (S.Colmat.get cm 4 2));
  let r = S.Colmat.row cm 7 in
  Array.iteri (fun j v -> Alcotest.(check int64) "row" (bits m.(7).(j)) (bits v)) r;
  let buf = Array.make 4 Float.nan in
  S.Colmat.row_into cm 7 buf;
  Array.iteri (fun j v -> Alcotest.(check int64) "row_into" (bits m.(7).(j)) (bits v)) buf;
  (* column stats match the Descriptive path bit-for-bit *)
  for j = 0 to 3 do
    let col = S.Matrix.column m j in
    let mean, std = S.Colmat.column_mean_std cm j in
    Alcotest.(check int64) "mean" (bits (S.Descriptive.mean col)) (bits mean);
    Alcotest.(check int64) "std" (bits (S.Descriptive.stddev col)) (bits std)
  done;
  (* zscore matches Normalize bit-for-bit *)
  check_matrix_bits "zscore" (S.Normalize.zscore m) (S.Colmat.to_matrix (S.Colmat.zscore cm));
  (* distances match Distance.euclidean *)
  Alcotest.(check int64) "distance"
    (bits (S.Distance.euclidean m.(1) m.(6)))
    (bits (S.Colmat.distance cm 1 6));
  let d = S.Colmat.distances_from_row cm m.(3) in
  Alcotest.check feq "self distance" 0.0 d.(3)

let test_matrix_column_stats () =
  let m = [| [| 1.0; -2.0 |]; [| 3.0; 0.5 |]; [| 5.0; 7.25 |] |] in
  for j = 0 to 1 do
    let col = S.Matrix.column m j in
    let mean, std = S.Matrix.column_mean_std m j in
    Alcotest.(check int64) "mean" (bits (S.Descriptive.mean col)) (bits mean);
    Alcotest.(check int64) "std" (bits (S.Descriptive.stddev col)) (bits std);
    let lo, hi = S.Matrix.column_min_max m j in
    Alcotest.check feq "min" (Array.fold_left Float.min col.(0) col) lo;
    Alcotest.check feq "max" (Array.fold_left Float.max col.(0) col) hi
  done;
  let mean, std = S.Matrix.column_mean_std ([||] : S.Matrix.t) 0 in
  Alcotest.check feq "empty mean" 0.0 mean;
  Alcotest.check feq "empty std" 0.0 std

(* ------------------------------------------------------------------ *)
(* Corpus registry and synthesis                                       *)

let test_corpus_ids () =
  (* pinned golden id: the sweep version is part of the hash, so this
     string changing means every committed corpus artifact is renamed *)
  Alcotest.(check string) "golden id" "gen/analytics/00000-500882f1"
    (W.Corpus.member_id W.Corpus.Analytics 0);
  (* ids are stable across calls and distinct across indices/families *)
  List.iter
    (fun fam ->
      Alcotest.(check string) "stable"
        (W.Corpus.member_id fam 42) (W.Corpus.member_id fam 42);
      Alcotest.(check bool) "distinct indices" true
        (W.Corpus.member_id fam 1 <> W.Corpus.member_id fam 2))
    W.Corpus.families;
  let ids =
    List.map (fun f -> W.Corpus.member_id f 7) W.Corpus.families
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "distinct families" 3 (List.length ids);
  (* member round-robin enumeration *)
  let ms = W.Corpus.members ~size:7 in
  Alcotest.(check int) "members size" 7 (List.length ms);
  let id r = W.Workload.id (List.nth ms r) in
  Alcotest.(check string) "row 0" (W.Corpus.member_id W.Corpus.Analytics 0) (id 0);
  Alcotest.(check string) "row 1" (W.Corpus.member_id W.Corpus.Key_value 0) (id 1);
  Alcotest.(check string) "row 2" (W.Corpus.member_id W.Corpus.Media_stream 0) (id 2);
  Alcotest.(check string) "row 3" (W.Corpus.member_id W.Corpus.Analytics 1) (id 3);
  (* member models are deterministic in (family, index) *)
  let a = W.Corpus.member W.Corpus.Key_value 5 and b = W.Corpus.member W.Corpus.Key_value 5 in
  Alcotest.(check string) "same id" (W.Workload.id a) (W.Workload.id b);
  (* generated suite is outside the Table I registry *)
  Alcotest.(check int) "registry unchanged" 122 (List.length W.Registry.all);
  Alcotest.(check bool) "suite name" true (W.Suite.name W.Suite.Generated = "gen");
  Alcotest.(check bool) "of_name gen" true (W.Suite.of_name "gen" = Some W.Suite.Generated);
  Alcotest.(check bool) "not in Suite.all" true
    (not (List.mem W.Suite.Generated W.Suite.all))

let test_corpus_gen_deterministic () =
  let a = Core.Corpus_gen.generate ~anchors:2 ~icount:5_000 ~size:12 () in
  let b = Core.Corpus_gen.generate ~anchors:2 ~icount:5_000 ~size:12 () in
  Alcotest.(check int) "rows" 12 (Core.Dataset.rows a);
  Alcotest.(check int) "cols" 47 (Core.Dataset.cols a);
  Alcotest.(check (array string)) "names" a.Core.Dataset.names b.Core.Dataset.names;
  Alcotest.(check (array string)) "features" a.Core.Dataset.features b.Core.Dataset.features;
  check_matrix_bits "cell" a.Core.Dataset.data b.Core.Dataset.data;
  (* rows are labeled with corpus member ids in enumeration order *)
  Alcotest.(check string) "row 0 id"
    (W.Corpus.member_id W.Corpus.Analytics 0)
    a.Core.Dataset.names.(0)

(* ------------------------------------------------------------------ *)
(* ANN index                                                           *)

let corpus_colmat size =
  let ds = Core.Corpus_gen.generate ~anchors:2 ~icount:5_000 ~size () in
  S.Colmat.zscore (S.Colmat.of_matrix ds.Core.Dataset.data)

let test_ann_recall () =
  List.iter
    (fun n ->
      let cm = corpus_colmat n in
      let t = S.Ann.build cm in
      Alcotest.(check int) "size" n (S.Ann.size t);
      let k = 10 in
      let budget = max 32 (n / 4) in
      let recalls = ref [] in
      for q = 0 to 15 do
        let query = S.Colmat.row cm (q * n / 16) in
        let exact = S.Ann.exact_knn cm ~k query in
        let approx = S.Ann.knn ~budget t ~k query in
        recalls := S.Ann.recall ~exact ~approx :: !recalls;
        (* full-budget kNN degenerates to the exact scan *)
        let full = S.Ann.knn ~budget:n t ~k query in
        Array.iteri
          (fun i (e : S.Ann.neighbor) ->
            Alcotest.(check int) "full-budget index" e.S.Ann.index full.(i).S.Ann.index;
            Alcotest.(check int64) "full-budget distance" (bits e.S.Ann.distance)
              (bits full.(i).S.Ann.distance))
          exact
      done;
      let mean =
        List.fold_left ( +. ) 0.0 !recalls /. float_of_int (List.length !recalls)
      in
      if mean < Mica_verify.Approx.min_recall then
        Alcotest.failf "n=%d mean recall %.4f < %.2f" n mean Mica_verify.Approx.min_recall)
    [ 40; 150 ]

let test_ann_rebuild_deterministic () =
  let cm = corpus_colmat 90 in
  let t1 = S.Ann.build cm and t2 = S.Ann.build cm in
  Alcotest.(check int) "cells" (S.Ann.cell_count t1) (S.Ann.cell_count t2);
  for q = 0 to 8 do
    let query = S.Colmat.row cm (q * 10) in
    let a = S.Ann.knn t1 ~k:7 query and b = S.Ann.knn t2 ~k:7 query in
    Alcotest.(check int) "result size" (Array.length a) (Array.length b);
    Array.iteri
      (fun i (x : S.Ann.neighbor) ->
        Alcotest.(check int) "index" x.S.Ann.index b.(i).S.Ann.index;
        Alcotest.(check int64) "distance" (bits x.S.Ann.distance) (bits b.(i).S.Ann.distance))
      a
  done

let test_ann_budget_monotone () =
  let cm = corpus_colmat 120 in
  let t = S.Ann.build cm in
  let k = 8 in
  for q = 0 to 11 do
    let query = S.Colmat.row cm (q * 10) in
    let exact = S.Ann.exact_knn cm ~k query in
    let prev = ref (-1.0) in
    List.iter
      (fun budget ->
        let approx = S.Ann.knn ~budget t ~k query in
        let r = S.Ann.recall ~exact ~approx in
        if r < !prev then
          Alcotest.failf "query %d: recall dropped %.3f -> %.3f at budget %d" q !prev r budget;
        prev := r)
      [ k; 2 * k; 4 * k; 120 ]
  done

let test_ann_range_exact () =
  let cm = corpus_colmat 80 in
  let t = S.Ann.build cm in
  for q = 0 to 7 do
    let query = S.Colmat.row cm (q * 10) in
    let exact10 = S.Ann.exact_knn cm ~k:10 query in
    let radius = exact10.(Array.length exact10 - 1).S.Ann.distance in
    let exact = S.Ann.exact_range cm ~radius query in
    let got = S.Ann.range t ~radius query in
    Alcotest.(check int) "range count" (Array.length exact) (Array.length got);
    Array.iteri
      (fun i (e : S.Ann.neighbor) ->
        Alcotest.(check int) "range index" e.S.Ann.index got.(i).S.Ann.index;
        Alcotest.(check int64) "range distance" (bits e.S.Ann.distance)
          (bits got.(i).S.Ann.distance))
      exact
  done

(* ------------------------------------------------------------------ *)
(* Scalable subsetting                                                 *)

let test_k_center_scalable () =
  let ds = Core.Corpus_gen.generate ~anchors:2 ~icount:5_000 ~size:60 () in
  let space = Core.Space.of_dataset ds in
  let naive = Core.Subsetting.k_center space ~k:8 in
  let cm = S.Colmat.of_matrix space.Core.Space.normalized in
  (* seeded with the naive medoid the greedy selections coincide exactly *)
  let scalable = Core.Subsetting.k_center_scalable ~seed:naive.Core.Subsetting.chosen.(0) cm ~k:8 in
  Alcotest.(check (array int)) "chosen" naive.Core.Subsetting.chosen
    scalable.Core.Subsetting.chosen;
  Alcotest.(check (array int)) "representative_of" naive.Core.Subsetting.representative_of
    scalable.Core.Subsetting.representative_of;
  Alcotest.(check int64) "radius" (bits naive.Core.Subsetting.max_distance)
    (bits scalable.Core.Subsetting.max_distance);
  (* default centroid seed still yields a valid, covering selection *)
  let dflt = Core.Subsetting.k_center_scalable cm ~k:8 in
  Alcotest.(check int) "k chosen" 8 (Array.length dflt.Core.Subsetting.chosen);
  Alcotest.(check int) "distinct" 8
    (List.length (List.sort_uniq compare (Array.to_list dflt.Core.Subsetting.chosen)));
  Alcotest.(check bool) "radius finite" true (Float.is_finite dflt.Core.Subsetting.max_distance)

let suite =
  ( "scale",
    [
      Alcotest.test_case "store round trip" `Quick test_store_round_trip;
      Alcotest.test_case "store golden header" `Quick test_store_header_golden;
      Alcotest.test_case "store tamper and truncation" `Quick test_store_tamper;
      Alcotest.test_case "store degenerate shapes" `Quick test_store_degenerate;
      Alcotest.test_case "store csv round trip" `Quick test_store_csv_round_trip;
      Alcotest.test_case "blocked = naive across jobs and blocks" `Quick
        test_blocked_matches_naive;
      prop_blocked_matches_naive;
      Alcotest.test_case "preallocated ?out buffers" `Quick test_prealloc_out;
      Alcotest.test_case "colmat round trip and accessors" `Quick test_colmat_round_trip;
      Alcotest.test_case "matrix column stats" `Quick test_matrix_column_stats;
      Alcotest.test_case "corpus ids and enumeration" `Quick test_corpus_ids;
      Alcotest.test_case "corpus generation deterministic" `Quick test_corpus_gen_deterministic;
      Alcotest.test_case "ann recall" `Quick test_ann_recall;
      Alcotest.test_case "ann rebuild deterministic" `Quick test_ann_rebuild_deterministic;
      Alcotest.test_case "ann budget monotone" `Quick test_ann_budget_monotone;
      Alcotest.test_case "ann range exact" `Quick test_ann_range_exact;
      Alcotest.test_case "k-center scalable" `Quick test_k_center_scalable;
    ] )
