(* Machine-description loader, fleet characterization, and the calibrated
   baseline suite.

   The tests here pin the tentpole contracts: descriptions loaded from
   machines/*.json are bit-identical to the hard-coded presets across the
   full workload registry (at jobs = 1 and jobs = 4), a one-pass fleet
   fanout equals N single-machine passes bit-for-bit, and the loader
   returns actionable [Error]s — never an exception — on malformed
   input. *)

module U = Mica_uarch
module Desc = Mica_uarch.Machine_desc
module Fleet = Mica_core.Fleet
module Registry = Mica_workloads.Registry

(* The descriptions are a dune dep of this directory.  [dune runtest] runs
   the binary from _build/default/test (machines/ is a sibling); [dune
   exec test/...] keeps the caller's cwd, typically the project root. *)
let machines_dir =
  if Sys.file_exists "../machines/ev56.json" then "../machines" else "machines"

let load_dir_exn () =
  match Desc.load_dir machines_dir with
  | Ok named -> named
  | Error m -> Alcotest.failf "load_dir: %s" m

let bits v = Array.map Int64.bits_of_float v

let check_bits_equal what a b =
  if bits a <> bits b then
    Alcotest.failf "%s: vectors differ (%s vs %s)" what
      (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") a)))
      (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") b)))

(* ---------------- loader: the shipped fleet ---------------- *)

let test_load_dir_ships_eight () =
  let named = load_dir_exn () in
  Alcotest.(check int) "eight machine descriptions" 8 (List.length named);
  let names = List.map fst named in
  List.iter
    (fun p ->
      if not (List.mem p names) then Alcotest.failf "preset %s missing from machines/" p)
    [ "ev56"; "ev67"; "embedded"; "wide" ]

let test_load_dir_missing () =
  match Desc.load_dir "no-such-dir" with
  | Ok _ -> Alcotest.fail "expected Error for a missing directory"
  | Error m -> Alcotest.(check bool) "names the directory" true (String.length m > 0)

(* ---------------- loader: rejection, never an exception ---------------- *)

let expect_error what ~contains json =
  match Desc.parse_string ~source:"test.json" json with
  | Ok _ -> Alcotest.failf "%s: expected Error" what
  | Error m ->
    let lower = String.lowercase_ascii m in
    let has needle =
      let n = String.length needle and l = String.length lower in
      let rec go i = i + n <= l && (String.sub lower i n = needle || go (i + 1)) in
      go 0
    in
    if not (has (String.lowercase_ascii contains)) then
      Alcotest.failf "%s: error %S does not mention %S" what m contains
  | exception e -> Alcotest.failf "%s: raised %s instead of Error" what (Printexc.to_string e)

(* A minimal valid description we can break one field at a time. *)
let valid_json =
  Desc.to_string (Desc.of_config U.Machine.ev56)

(* first-occurrence textual replace, so each test breaks one field *)
let patch ~pattern ~with_ s =
  let plen = String.length pattern in
  let rec find i =
    if i + plen > String.length s then None
    else if String.sub s i plen = pattern then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "patch: %S not found in description" pattern
  | Some i -> String.sub s 0 i ^ with_ ^ String.sub s (i + plen) (String.length s - i - plen)

let test_reject_truncated () =
  let half = String.sub valid_json 0 (String.length valid_json / 2) in
  expect_error "truncated file" ~contains:"truncated" half

let test_reject_unknown_predictor () =
  expect_error "unknown predictor kind" ~contains:"predictor"
    (patch ~pattern:{|"bimodal"|} ~with_:{|"ttage"|} valid_json)

let test_reject_zero_cache_size () =
  expect_error "zero cache size" ~contains:"size"
    (patch ~pattern:{|"size_bytes": 8192|} ~with_:{|"size_bytes": 0|} valid_json)

let test_reject_negative_cache_size () =
  expect_error "negative cache size" ~contains:"size"
    (patch ~pattern:{|"size_bytes": 8192|} ~with_:{|"size_bytes": -64|} valid_json)

let test_reject_duplicate_level () =
  expect_error "duplicate level names" ~contains:"duplicate"
    (patch ~pattern:{|"name": "l1d"|} ~with_:{|"name": "l1i"|} valid_json)

let test_reject_missing_level () =
  expect_error "missing level" ~contains:"l2"
    (patch ~pattern:{|"name": "l2"|} ~with_:{|"name": "l3"|} valid_json)

let test_reject_unknown_opcode_class () =
  expect_error "unknown opcode class" ~contains:"opcode"
    (patch ~pattern:{|"fp_div"|} ~with_:{|"fp_sqrt"|} valid_json)

let test_reject_bad_json () =
  expect_error "not json at all" ~contains:"json" "]["

let test_reject_non_pow2_predictor () =
  expect_error "non-pow2 predictor entries" ~contains:"power of two"
    (patch ~pattern:{|"entries": 2048|} ~with_:{|"entries": 1000|} valid_json)

let test_reject_zero_tlb_entries () =
  expect_error "zero tlb entries" ~contains:"entries"
    (patch ~pattern:{|"entries": 64|} ~with_:{|"entries": 0|} valid_json)

let test_load_missing_file () =
  match Desc.load "no/such/machine.json" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error m -> Alcotest.(check bool) "names the file" true (String.length m > 0)
  | exception e -> Alcotest.failf "raised %s instead of Error" (Printexc.to_string e)

(* ---------------- desc <-> config round trips ---------------- *)

let test_roundtrip_presets () =
  List.iter
    (fun (cfg : U.Machine.config) ->
      match Desc.to_config (Desc.of_config cfg) with
      | Error m -> Alcotest.failf "%s: round trip failed: %s" cfg.U.Machine.name m
      | Ok cfg' ->
        let p = Tutil.tiny_program ("roundtrip-" ^ cfg.U.Machine.name) in
        let a = U.Machine.to_vector (U.Machine.measure cfg p ~icount:8_000) in
        let b = U.Machine.to_vector (U.Machine.measure cfg' p ~icount:8_000) in
        check_bits_equal ("round-trip " ^ cfg.U.Machine.name) a b)
    U.Machine.presets

let test_json_text_roundtrip () =
  (* to_string -> parse_string is the identity on every shipped machine *)
  List.iter
    (fun (name, cfg) ->
      let d = Desc.of_config cfg in
      match Desc.parse_string ~source:(name ^ ".json") (Desc.to_string d) with
      | Error m -> Alcotest.failf "%s: re-parse failed: %s" name m
      | Ok d' ->
        if Desc.to_string d' <> Desc.to_string d then
          Alcotest.failf "%s: textual round trip changed the description" name)
    (load_dir_exn ())

(* ---------------- fleet: desc-vs-hardcoded over the registry ------------ *)

(* The acceptance bar: the four machines/*.json presets drive the full
   122-workload registry to Int64.bits_of_float-identical counter
   matrices vs the hard-coded configs, at jobs = 1 and jobs = 4. *)
let test_fleet_desc_matches_presets () =
  let named = load_dir_exn () in
  let from_files =
    List.map
      (fun (cfg : U.Machine.config) ->
        match List.assoc_opt cfg.U.Machine.name named with
        | Some c -> c
        | None -> Alcotest.failf "machines/ lacks %s" cfg.U.Machine.name)
      U.Machine.presets
  in
  let workloads = Registry.all in
  let icount = 2_000 in
  let golden = Fleet.characterize ~jobs:1 ~configs:U.Machine.presets ~icount workloads in
  List.iter
    (fun jobs ->
      let fleet = Fleet.characterize ~jobs ~configs:from_files ~icount workloads in
      Alcotest.(check int) "workload count" Registry.count
        (Array.length fleet.Fleet.workload_ids);
      Array.iteri
        (fun i row ->
          if bits row <> bits golden.Fleet.matrix.(i) then
            Alcotest.failf "jobs=%d: %s differs from hard-coded presets" jobs
              fleet.Fleet.workload_ids.(i))
        fleet.Fleet.matrix)
    [ 1; 4 ]

let some_workloads n =
  List.filteri (fun i _ -> i mod (Registry.count / n) = 0) Registry.all

let test_fleet_one_pass_equals_n_pass () =
  let configs = List.map snd (load_dir_exn ()) in
  let workloads = some_workloads 6 in
  let fanout = Fleet.characterize ~jobs:4 ~configs ~icount:5_000 workloads in
  let n_pass = Fleet.characterize_n_pass ~configs ~icount:5_000 workloads in
  Alcotest.(check bool) "same ids" true (fanout.Fleet.workload_ids = n_pass.Fleet.workload_ids);
  Array.iteri
    (fun i row ->
      if bits row <> bits n_pass.Fleet.matrix.(i) then
        Alcotest.failf "%s: fanout differs from N passes" fanout.Fleet.workload_ids.(i))
    fanout.Fleet.matrix

let test_fleet_table_shape () =
  let configs = List.map snd (load_dir_exn ()) in
  let fleet = Fleet.characterize ~jobs:1 ~configs ~icount:2_000 (some_workloads 3) in
  let table = Fleet.to_table fleet in
  let module R = Mica_run.Run_dir in
  Alcotest.(check int) "48 columns" (8 * 6) (Array.length table.R.columns);
  (* machine-major: first six columns belong to the first machine *)
  let first = fleet.Fleet.machine_names.(0) in
  Array.iteri
    (fun i metric ->
      Alcotest.(check string) "column name" (first ^ "." ^ metric) table.R.columns.(i))
    fleet.Fleet.metric_names;
  Alcotest.(check int) "rows" (Array.length fleet.Fleet.workload_ids)
    (Array.length table.R.cells)

let test_fleet_rejects_duplicates () =
  (try
     ignore
       (Fleet.characterize ~jobs:1
          ~configs:[ U.Machine.ev56; U.Machine.ev56 ]
          ~icount:1_000 (some_workloads 2));
     Alcotest.fail "expected Invalid_argument for duplicate machine names"
   with Invalid_argument _ -> ());
  try
    ignore (Fleet.characterize ~jobs:1 ~configs:[] ~icount:1_000 (some_workloads 2));
    Alcotest.fail "expected Invalid_argument for an empty fleet"
  with Invalid_argument _ -> ()

let test_fleet_report_shape () =
  let configs = List.map snd (load_dir_exn ()) in
  let fleet = Fleet.characterize ~jobs:2 ~configs ~icount:2_000 (some_workloads 8) in
  let r = Fleet.report fleet in
  Alcotest.(check int) "one row per machine" 8 (List.length r.Fleet.rows);
  Alcotest.(check int) "all machine pairs" (8 * 7 / 2) (List.length r.Fleet.cross);
  List.iter
    (fun (a, b, c) ->
      if Float.is_nan c then Alcotest.failf "%s vs %s: NaN correlation" a b;
      if c < -1.0 -. 1e-9 || c > 1.0 +. 1e-9 then
        Alcotest.failf "%s vs %s: correlation %f out of [-1,1]" a b c)
    r.Fleet.cross

(* ---------------- calibrated baseline suite ---------------- *)

let test_baseline_all_machines_in_envelope () =
  let configs = List.map snd (load_dir_exn ()) in
  let outcomes = U.Baseline.run_all configs in
  if not (U.Baseline.passed outcomes) then
    Alcotest.failf "calibration failures:\n%s"
      (U.Baseline.render (U.Baseline.failures outcomes))

let test_baseline_deterministic () =
  let configs = [ U.Machine.ev56; U.Machine.wide ] in
  let a = U.Baseline.run_kernel ~icount:10_000 configs ~kernel:"stream" in
  let b = U.Baseline.run_kernel ~icount:10_000 configs ~kernel:"stream" in
  List.iter2
    (fun (x : U.Baseline.outcome) (y : U.Baseline.outcome) ->
      if Int64.bits_of_float x.U.Baseline.value <> Int64.bits_of_float y.U.Baseline.value then
        Alcotest.failf "%s/%s not deterministic" x.U.Baseline.machine x.U.Baseline.metric)
    a b

let test_baseline_kernels_validate () =
  List.iter
    (fun (name, spec) ->
      match Mica_trace.Kernel.validate spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "kernel %s invalid: %s" name m)
    U.Baseline.kernels

let test_baseline_unknown_kernel () =
  (try
     ignore (U.Baseline.program "fibonacci");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument m ->
    Alcotest.(check bool) "lists valid names" true
      (String.length m > 0));
  try
    ignore (U.Baseline.envelopes U.Machine.ev56 ~kernel:"fibonacci");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_baseline_envelopes_sane () =
  List.iter
    (fun (cfg : U.Machine.config) ->
      List.iter
        (fun kernel ->
          let es = U.Baseline.envelopes cfg ~kernel in
          if es = [] then Alcotest.failf "%s/%s: no envelopes" cfg.U.Machine.name kernel;
          List.iter
            (fun (e : U.Baseline.envelope) ->
              if e.U.Baseline.lo > e.U.Baseline.hi then
                Alcotest.failf "%s/%s/%s: lo > hi" cfg.U.Machine.name kernel
                  e.U.Baseline.metric;
              if not (Array.mem e.U.Baseline.metric U.Machine.metric_names) then
                Alcotest.failf "%s/%s: unknown metric %s" cfg.U.Machine.name kernel
                  e.U.Baseline.metric)
            es)
        U.Baseline.kernel_names)
    U.Machine.presets

let suite =
  ( "fleet",
    [
      Alcotest.test_case "machines/ ships the fleet" `Quick test_load_dir_ships_eight;
      Alcotest.test_case "load_dir missing dir" `Quick test_load_dir_missing;
      Alcotest.test_case "reject truncated file" `Quick test_reject_truncated;
      Alcotest.test_case "reject unknown predictor" `Quick test_reject_unknown_predictor;
      Alcotest.test_case "reject zero cache size" `Quick test_reject_zero_cache_size;
      Alcotest.test_case "reject negative cache size" `Quick test_reject_negative_cache_size;
      Alcotest.test_case "reject duplicate level" `Quick test_reject_duplicate_level;
      Alcotest.test_case "reject missing level" `Quick test_reject_missing_level;
      Alcotest.test_case "reject unknown opcode class" `Quick test_reject_unknown_opcode_class;
      Alcotest.test_case "reject malformed json" `Quick test_reject_bad_json;
      Alcotest.test_case "reject non-pow2 predictor" `Quick test_reject_non_pow2_predictor;
      Alcotest.test_case "reject zero tlb entries" `Quick test_reject_zero_tlb_entries;
      Alcotest.test_case "load missing file" `Quick test_load_missing_file;
      Alcotest.test_case "preset round trip" `Quick test_roundtrip_presets;
      Alcotest.test_case "json text round trip" `Quick test_json_text_roundtrip;
      Alcotest.test_case "desc = hardcoded over registry (jobs 1,4)" `Slow
        test_fleet_desc_matches_presets;
      Alcotest.test_case "one pass = N passes" `Quick test_fleet_one_pass_equals_n_pass;
      Alcotest.test_case "fleet table shape" `Quick test_fleet_table_shape;
      Alcotest.test_case "fleet rejects bad config lists" `Quick test_fleet_rejects_duplicates;
      Alcotest.test_case "fleet report shape" `Quick test_fleet_report_shape;
      Alcotest.test_case "baseline within envelopes" `Slow
        test_baseline_all_machines_in_envelope;
      Alcotest.test_case "baseline deterministic" `Quick test_baseline_deterministic;
      Alcotest.test_case "baseline kernels validate" `Quick test_baseline_kernels_validate;
      Alcotest.test_case "baseline unknown kernel" `Quick test_baseline_unknown_kernel;
      Alcotest.test_case "baseline envelopes sane" `Quick test_baseline_envelopes_sane;
    ] )
