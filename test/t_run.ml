(* Run-directory workbench tests: manifest golden format and round-trip,
   checksummed IO, corruption (truncated manifest / tampered artifact must
   surface as unreadable runs, never crashes), the compare metamorphic laws
   (self-compare empty, antisymmetry under swap, jobs-invariance of
   pipeline-produced runs) and the variance aggregator. *)

module R = Mica_run
module J = Mica_obs.Json
module C = Mica_core
module W = Mica_workloads

let feq = Tutil.feq

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* ---------------- fixtures ---------------- *)

let fresh_root () =
  let d = Filename.temp_file "mica_runs" "" in
  Sys.remove d;
  d

let manifest ?(tag = "t") ?(created = "20260101-000000") ?(fault_spec = None) ?(mica_jobs_env = None)
    () =
  {
    R.Manifest.schema = R.Manifest.schema_version;
    created;
    tag;
    subcommand = "test";
    argv = [ "mica"; "test"; "--icount"; "1000" ];
    git_rev = "unknown";
    icount = 1000;
    ppm_order = 8;
    jobs = 1;
    retries = 0;
    cache = false;
    mica_jobs_env;
    fault_spec;
    seeds = [ ("ga", "0x1") ];
    workloads = 2;
    report = "2 ok, 0 failed";
    files = [];
  }

let table cells = { R.Run_dir.row_names = [| "w1"; "w2" |]; columns = [| "c1"; "c2" |]; cells }

let bench_json rows =
  J.to_string
    (J.Obj
       [
         ( "results",
           J.List
             (List.map
                (fun (name, ns) -> J.Obj [ ("name", J.Str name); ("ns_per_run", J.Num ns) ])
                rows) );
       ])

(* Commit a synthetic run holding a 2x2 characteristic table and optional
   bench results; returns its directory. *)
let commit_run root ~tag ?(cells = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]) ?bench () =
  let t = table cells in
  let artifacts =
    { R.Run_dir.filename = R.Run_dir.mica_file; contents = R.Run_dir.csv_of_table t }
    ::
    (match bench with
    | None -> []
    | Some rows -> [ { R.Run_dir.filename = R.Run_dir.bench_file; contents = bench_json rows } ])
  in
  R.Run_dir.commit ~root ~manifest:(manifest ~tag ()) ~artifacts ()

let load_exn dir =
  match R.Run_dir.load dir with
  | Ok r -> r
  | Error e -> Alcotest.failf "run %s should load: %s" dir e

(* ---------------- manifest golden + round-trip ---------------- *)

let golden_manifest_text =
  String.concat "\n"
    [
      "{";
      "  \"schema\": \"mica-run/v1\",";
      "  \"created\": \"20260101-000000\",";
      "  \"tag\": \"t\",";
      "  \"subcommand\": \"test\",";
      "  \"argv\": [";
      "    \"mica\",";
      "    \"test\",";
      "    \"--icount\",";
      "    \"1000\"";
      "  ],";
      "  \"git_rev\": \"unknown\",";
      "  \"config\": {";
      "    \"icount\": 1000,";
      "    \"ppm_order\": 8,";
      "    \"jobs\": 1,";
      "    \"retries\": 0,";
      "    \"cache\": false";
      "  },";
      "  \"mica_jobs_env\": null,";
      "  \"fault_spec\": null,";
      "  \"seeds\": {";
      "    \"ga\": \"0x1\"";
      "  },";
      "  \"workloads\": 2,";
      "  \"report\": \"2 ok, 0 failed\",";
      "  \"files\": {}";
      "}";
    ]

let test_manifest_golden () =
  (* The on-disk form is byte-stable: fixed key order, pinned here so any
     schema drift is a deliberate, visible change. *)
  let m = manifest () in
  Alcotest.(check string)
    "pretty serialization is pinned" golden_manifest_text
    (J.to_string ~pretty:true (R.Manifest.to_json m));
  (* serialization is deterministic *)
  Alcotest.(check string)
    "second serialization identical"
    (J.to_string ~pretty:true (R.Manifest.to_json m))
    (J.to_string ~pretty:true (R.Manifest.to_json m))

let test_manifest_roundtrip () =
  let m =
    {
      (manifest ()) with
      R.Manifest.mica_jobs_env = Some "4";
      fault_spec = Some "cache_write:0.5@7";
      seeds = [ ("ga", "0x6a5eed"); ("fault", "0x7") ];
      files = [ ("a.csv", "d41d8cd98f00b204e9800998ecf8427e") ];
    }
  in
  (match R.Manifest.of_json (R.Manifest.to_json m) with
  | Ok m' -> Alcotest.(check bool) "of_json (to_json m) = m" true (m = m')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* and through the actual serializer *)
  match J.parse (J.to_string ~pretty:true (R.Manifest.to_json m)) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      match R.Manifest.of_json j with
      | Ok m' -> Alcotest.(check bool) "text round-trip" true (m = m')
      | Error e -> Alcotest.failf "of_json failed: %s" e)

let test_manifest_rejects () =
  let reject what j =
    match R.Manifest.of_json j with
    | Ok _ -> Alcotest.failf "%s should be rejected" what
    | Error e -> Alcotest.(check bool) (what ^ " has a reason") true (String.length e > 0)
  in
  let m = R.Manifest.to_json (manifest ()) in
  reject "non-object" (J.Num 3.0);
  (match m with
  | J.Obj fields ->
      reject "foreign schema"
        (J.Obj
           (List.map (fun (k, v) -> if k = "schema" then (k, J.Str "mica-run/v9") else (k, v)) fields));
      reject "missing field" (J.Obj (List.filter (fun (k, _) -> k <> "workloads") fields));
      reject "wrong type"
        (J.Obj (List.map (fun (k, v) -> if k = "workloads" then (k, J.Str "x") else (k, v)) fields))
  | _ -> Alcotest.fail "manifest json is an object")

(* ---------------- checksummed IO ---------------- *)

let test_checksummed_roundtrip () =
  let path = Filename.temp_file "mica_run_io" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let body = "{\"k\": [1, 2, 3]}\n" in
      R.Run_io.write_checksummed path body;
      (match R.Run_io.read_checksummed path with
      | Ok b -> Alcotest.(check string) "body round-trips" body b
      | Error e -> Alcotest.failf "read failed: %s" (R.Run_io.describe_error e));
      (* tamper one body byte: digest mismatch *)
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let tampered = Bytes.of_string raw in
      Bytes.set tampered (Bytes.length tampered - 2) 'X';
      let oc = open_out_bin path in
      output_bytes oc tampered;
      close_out oc;
      (match R.Run_io.read_checksummed path with
      | Error (R.Run_io.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "tampered file should not verify"
      | Error e -> Alcotest.failf "expected Corrupt, got %s" (R.Run_io.describe_error e));
      (* foreign format version *)
      let oc = open_out_bin path in
      output_string oc ("#mica-run v999 md5:" ^ R.Run_io.md5_hex body ^ "\n" ^ body);
      close_out oc;
      (match R.Run_io.read_checksummed path with
      | Error (R.Run_io.Foreign_version _) -> ()
      | _ -> Alcotest.fail "foreign version should be flagged");
      Sys.remove path;
      match R.Run_io.read_checksummed path with
      | Error R.Run_io.Missing -> ()
      | _ -> Alcotest.fail "missing file should be Missing")

let test_table_csv_roundtrip () =
  let t =
    {
      R.Run_dir.row_names = [| "A/b/c"; "D (e)" |];
      columns = [| "pct_load"; "dep<=2"; "ws_d_blk" |];
      cells = [| [| 0.1; -3.25e-7; 196.0 |]; [| 1.0 /. 3.0; 0.0; 1e17 |] |];
    }
  in
  match R.Run_dir.table_of_csv (R.Run_dir.csv_of_table t) with
  | Error e -> Alcotest.failf "csv round-trip failed: %s" e
  | Ok t' ->
      Alcotest.(check (array string)) "rows" t.R.Run_dir.row_names t'.R.Run_dir.row_names;
      Alcotest.(check (array string)) "cols" t.R.Run_dir.columns t'.R.Run_dir.columns;
      Alcotest.(check (array (array (Alcotest.float 0.0))))
        "cells bit-exact" t.R.Run_dir.cells t'.R.Run_dir.cells

(* ---------------- commit / load / corruption ---------------- *)

let test_commit_and_load () =
  let root = fresh_root () in
  let dir = commit_run root ~tag:"alpha" ~bench:[ ("k1", 120.0) ] () in
  let r = load_exn dir in
  Alcotest.(check string) "tag survives" "alpha" r.R.Run_dir.manifest.R.Manifest.tag;
  (match r.R.Run_dir.mica with
  | Some t -> Alcotest.check feq "cell" 4.0 t.R.Run_dir.cells.(1).(1)
  | None -> Alcotest.fail "mica table loads");
  Alcotest.(check bool) "bench loads" true (r.R.Run_dir.bench <> None);
  Alcotest.(check int)
    "manifest lists both artifacts" 2
    (List.length r.R.Run_dir.manifest.R.Manifest.files);
  (* the run root lists it; latest resolves to the lexicographically
     newest stamp *)
  Alcotest.(check bool) "listed" true
    (List.mem (Filename.basename dir) (R.Run_dir.list_runs root));
  let dir2 = commit_run root ~tag:"beta" () in
  Alcotest.(check (option string)) "latest" (Some dir2) (R.Run_dir.latest root);
  (* identical created+tag collides and is uniquified, not overwritten *)
  let dir3 = commit_run root ~tag:"beta" () in
  Alcotest.(check bool) "collision uniquified" true (dir3 <> dir2);
  Alcotest.(check int) "three runs listed" 3 (List.length (R.Run_dir.list_runs root))

let test_truncated_manifest_unreadable () =
  let root = fresh_root () in
  let dir = commit_run root ~tag:"trunc" () in
  let path = Filename.concat dir R.Run_dir.manifest_file in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub raw 0 (String.length raw / 2));
  close_out oc;
  match R.Run_dir.load dir with
  | Error e -> Alcotest.(check bool) "reason mentions manifest" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "truncated manifest must make the run unreadable"

let test_tampered_artifact_unreadable () =
  let root = fresh_root () in
  let dir = commit_run root ~tag:"tamper" () in
  let path = Filename.concat dir R.Run_dir.mica_file in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "w3,9,9\n";
  close_out oc;
  (match R.Run_dir.load dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "digest-mismatched artifact must make the run unreadable");
  (* a listed artifact going missing is equally fatal *)
  Sys.remove path;
  match R.Run_dir.load dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing artifact must make the run unreadable"

let test_missing_run_unreadable () =
  (match R.Run_dir.load "/nonexistent/run/dir" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing dir must be an error");
  let root = fresh_root () in
  R.Run_io.mkdir_p root;
  Alcotest.(check (option string)) "no runs -> no latest" None (R.Run_dir.latest root)

(* ---------------- compare: metamorphic laws ---------------- *)

let test_compare_self_empty () =
  let root = fresh_root () in
  let dir = commit_run root ~tag:"self" ~bench:[ ("k1", 100.0) ] () in
  let r = load_exn dir in
  let cmp = R.Compare.run r r in
  Alcotest.(check bool) "self-compare ok" true (R.Compare.ok cmp);
  Alcotest.(check int) "no drift" 0 (List.length (R.Compare.drift cmp));
  Alcotest.(check int) "no regressions" 0 (List.length (R.Compare.regressions cmp));
  List.iter
    (fun (d : R.Compare.cell_delta) -> Alcotest.check feq "zero delta" 0.0 d.R.Compare.rel)
    cmp.R.Compare.char_deltas

let test_compare_antisymmetric () =
  let root = fresh_root () in
  let da =
    commit_run root ~tag:"a"
      ~cells:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]
      ~bench:[ ("k1", 100.0); ("k2", 50.0) ]
      ()
  in
  let db =
    commit_run root ~tag:"b"
      ~cells:[| [| 1.5; 2.0 |]; [| 3.0; 8.0 |] |]
      ~bench:[ ("k1", 300.0); ("k2", 50.0) ]
      ()
  in
  let ra = load_exn da and rb = load_exn db in
  let ab = R.Compare.run ra rb and ba = R.Compare.run rb ra in
  let rel_of cmp col =
    match
      List.find_opt (fun (d : R.Compare.cell_delta) -> d.R.Compare.column = col)
        cmp.R.Compare.char_deltas
    with
    | Some d -> d.R.Compare.rel
    | None -> Alcotest.failf "column %s missing" col
  in
  List.iter
    (fun col ->
      Alcotest.check feq
        ("rel(" ^ col ^ ") antisymmetric under swap")
        (-.rel_of ab col) (rel_of ba col))
    [ "c1"; "c2" ];
  (* bench: a regression one way is an improvement the other way *)
  let bench_of cmp name =
    List.find (fun (d : R.Compare.bench_delta) -> d.R.Compare.bench = name)
      cmp.R.Compare.bench_deltas
  in
  let fwd = bench_of ab "k1" and bwd = bench_of ba "k1" in
  Alcotest.(check bool) "k1 regresses A->B" true fwd.R.Compare.regression;
  Alcotest.(check bool) "k1 improves B->A" true bwd.R.Compare.improvement;
  Alcotest.(check bool) "improvement never gates" false bwd.R.Compare.regression;
  Alcotest.check feq "bench rel antisymmetric" (-.fwd.R.Compare.rel_ns) bwd.R.Compare.rel_ns;
  (* and the verdicts *)
  Alcotest.(check bool) "A->B fails (drift + regression)" false (R.Compare.ok ab);
  Alcotest.(check bool) "B->A fails too (drift gates both ways)" false (R.Compare.ok ba)

let test_compare_tolerance_gate () =
  let root = fresh_root () in
  let da = commit_run root ~tag:"a" ~bench:[ ("k1", 100.0) ] () in
  let db =
    commit_run root ~tag:"b"
      ~cells:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 +. 1e-9 |] |]
      ~bench:[ ("k1", 120.0) ]
      ()
  in
  let ra = load_exn da and rb = load_exn db in
  (* generous tolerances absorb the tiny drift and the mild slowdown *)
  let lax = { R.Compare.char_rel = 1e-3; bench_rel = 0.5 } in
  Alcotest.(check bool) "within tolerance" true (R.Compare.ok (R.Compare.run ~tol:lax ra rb));
  (* tight tolerances flag both *)
  let strict = { R.Compare.char_rel = 1e-12; bench_rel = 0.05 } in
  let cmp = R.Compare.run ~tol:strict ra rb in
  Alcotest.(check bool) "beyond tolerance" false (R.Compare.ok cmp);
  Alcotest.(check int) "one drifting column" 1 (List.length (R.Compare.drift cmp));
  Alcotest.(check int) "one regression" 1 (List.length (R.Compare.regressions cmp))

let test_compare_report_json () =
  let root = fresh_root () in
  let da = commit_run root ~tag:"a" ~bench:[ ("k1", 100.0) ] () in
  let db = commit_run root ~tag:"b" ~bench:[ ("k1", 300.0) ] () in
  let cmp = R.Compare.run (load_exn da) (load_exn db) in
  let json = R.Compare.to_json cmp in
  (* schema tag, stable serialization, and a parse round-trip *)
  Alcotest.(check (option string))
    "schema" (Some "mica-compare/v1")
    (Option.bind (J.member "schema" json) J.to_str);
  Alcotest.(check (option (float 1e-9)))
    "regression count" (Some 1.0)
    (Option.bind (J.member "regressions" json) J.to_num);
  let s = J.to_string ~pretty:true json in
  Alcotest.(check string) "serialization deterministic" s (J.to_string ~pretty:true json);
  (match J.parse s with
  | Ok j -> Alcotest.(check string) "round-trip" s (J.to_string ~pretty:true j)
  | Error e -> Alcotest.failf "report must parse: %s" e);
  (* the text report names the verdict *)
  let text = R.Compare.render cmp in
  Alcotest.(check bool) "text verdict" true (contains ~sub:"verdict: REGRESSION" text)

(* jobs=1 vs jobs=4 same-seed runs through the real pipeline compare clean *)
let test_compare_pipeline_jobs_invariant () =
  let ws = [ W.Registry.find_exn "MiBench/sha/large"; W.Registry.find_exn "SPEC2000/mcf/ref" ] in
  let root = fresh_root () in
  let run_with ~tag ~jobs =
    let config =
      {
        C.Pipeline.default_config with
        C.Pipeline.icount = 3_000;
        cache_dir = None;
        jobs;
        run = Some { C.Pipeline.run_root = root; run_tag = tag; run_seeds = [] };
      }
    in
    let _ = C.Pipeline.datasets_report ~config ws in
    match C.Pipeline.committed_run_dir () with
    | Some dir -> dir
    | None -> Alcotest.fail "pipeline should commit a run directory"
  in
  let d1 = run_with ~tag:"serial" ~jobs:1 in
  let d4 = run_with ~tag:"parallel" ~jobs:4 in
  let cmp = R.Compare.run (load_exn d1) (load_exn d4) in
  Alcotest.(check bool) "jobs=1 vs jobs=4 compares clean" true (R.Compare.ok cmp);
  Alcotest.(check int) "no drift" 0 (List.length (R.Compare.drift cmp));
  Alcotest.(check int) "all 47 characteristics compared" 47
    (List.length cmp.R.Compare.char_deltas);
  Alcotest.(check int) "all 7 counters compared" 7 (List.length cmp.R.Compare.counter_deltas)

(* ---------------- variance ---------------- *)

let test_variance_aggregate () =
  let root = fresh_root () in
  let mk tag c00 ns =
    let dir =
      commit_run root ~tag ~cells:[| [| c00; 2.0 |]; [| 3.0; 4.0 |] |] ~bench:[ ("k1", ns) ] ()
    in
    load_exn dir
  in
  (* c1 column mean varies wildly run-to-run; c2 is constant; bench k1 is
     mildly noisy *)
  let runs = [ mk "r1" 1.0 100.0; mk "r2" 5.0 102.0; mk "r3" 9.0 98.0 ] in
  let v = R.Variance.analyze ~budget:0.2 runs in
  let row name =
    match List.find_opt (fun (r : R.Variance.row) -> r.R.Variance.metric = name) v.R.Variance.rows with
    | Some r -> r
    | None -> Alcotest.failf "metric %s missing" name
  in
  let c1 = row "char/c1" and c2 = row "char/c2" and k1 = row "bench/k1" in
  Alcotest.(check int) "c1 present in all runs" 3 c1.R.Variance.present;
  (* c1 column means per run are 2, 4, 6: grand mean 4 *)
  Alcotest.check Tutil.feq_loose "c1 mean of means" 4.0
    c1.R.Variance.stats.Mica_stats.Descriptive.mean_v;
  Alcotest.(check bool) "c1 noisy" true c1.R.Variance.noisy;
  Alcotest.check feq "c2 deterministic -> CV 0" 0.0 c2.R.Variance.stats.Mica_stats.Descriptive.cv;
  Alcotest.(check bool) "c2 quiet" false c2.R.Variance.noisy;
  Alcotest.(check bool) "bench CV small" true (k1.R.Variance.stats.Mica_stats.Descriptive.cv < 0.05);
  (* noisiest first *)
  (match v.R.Variance.rows with
  | first :: _ -> Alcotest.(check string) "sorted by CV" "char/c1" first.R.Variance.metric
  | [] -> Alcotest.fail "rows nonempty");
  Alcotest.(check int) "one noisy metric" 1 (List.length (R.Variance.noisy v));
  (* report formats *)
  let json = R.Variance.to_json v in
  Alcotest.(check (option string))
    "schema" (Some "mica-variance/v1")
    (Option.bind (J.member "schema" json) J.to_str);
  let s = J.to_string ~pretty:true json in
  (match J.parse s with
  | Ok j -> Alcotest.(check string) "variance json round-trip" s (J.to_string ~pretty:true j)
  | Error e -> Alcotest.failf "variance json must parse: %s" e);
  Alcotest.(check bool) "text flags noise" true (contains ~sub:"NOISY" (R.Variance.render v))

(* a NaN characteristic in one run must be counted as dropped, not
   silently vanish from the sample set *)
let test_variance_dropped_nonfinite () =
  let root = fresh_root () in
  let mk tag c00 =
    load_exn (commit_run root ~tag ~cells:[| [| c00; 2.0 |]; [| 3.0; 4.0 |] |] ())
  in
  let runs = [ mk "r1" 1.0; mk "r2" Float.nan; mk "r3" 1.0 ] in
  let v = R.Variance.analyze ~budget:0.2 runs in
  let row name =
    match
      List.find_opt (fun (r : R.Variance.row) -> r.R.Variance.metric = name) v.R.Variance.rows
    with
    | Some r -> r
    | None -> Alcotest.failf "metric %s missing" name
  in
  let c1 = row "char/c1" and c2 = row "char/c2" in
  Alcotest.(check int) "c1 keeps the finite samples" 2 c1.R.Variance.present;
  Alcotest.(check int) "c1 counts the NaN run" 1 c1.R.Variance.dropped;
  Alcotest.check feq "c1 summarizes finite samples only" 2.0
    c1.R.Variance.stats.Mica_stats.Descriptive.mean_v;
  Alcotest.(check int) "c2 untouched" 0 c2.R.Variance.dropped;
  Alcotest.(check bool) "table reports dropped=1" true
    (contains ~sub:"dropped=1" (R.Variance.render v));
  let row_json =
    match J.member "metrics" (R.Variance.to_json v) with
    | Some (J.List items) ->
      List.find_opt
        (fun item -> J.member "metric" item = Some (J.Str "char/c1"))
        items
    | _ -> None
  in
  match row_json with
  | Some item ->
    Alcotest.(check (option (float 1e-9))) "json dropped field" (Some 1.0)
      (Option.bind (J.member "dropped" item) J.to_num)
  | None -> Alcotest.fail "char/c1 missing from json metrics"

let test_variance_metrics_of_run () =
  let root = fresh_root () in
  let dir = commit_run root ~tag:"m" ~bench:[ ("k1", 100.0) ] () in
  let metrics = R.Variance.metrics_of_run (load_exn dir) in
  let names = List.map fst metrics in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " extracted") true (List.mem n names))
    [ "char/c1"; "char/c2"; "bench/k1" ];
  Alcotest.(check (option (float 1e-9))) "bench value" (Some 100.0)
    (List.assoc_opt "bench/k1" metrics)

(* ---------------- resolve: latest / dangling / not-a-run ---------------- *)

let check_resolve_error name p ~sub =
  match R.Run_dir.resolve p with
  | `Error reason -> Alcotest.(check bool) (name ^ ": reason mentions " ^ sub) true
      (contains ~sub reason)
  | `Run d -> Alcotest.failf "%s: resolved to run %s" name d
  | `Not_run -> Alcotest.failf "%s: fell through to `Not_run" name

let test_resolve_run_dir () =
  let root = fresh_root () in
  let dir = commit_run root ~tag:"r" () in
  (match R.Run_dir.resolve dir with
  | `Run d -> Alcotest.(check string) "resolves to itself" dir d
  | _ -> Alcotest.fail "committed run must resolve");
  match R.Run_dir.resolve (Filename.concat root "latest") with
  | `Run d -> Alcotest.(check string) "latest resolves to newest run" dir d
  | _ -> Alcotest.fail "latest must resolve when a run exists"

let test_resolve_latest_missing_root () =
  let root = fresh_root () in
  check_resolve_error "missing root" (Filename.concat root "latest")
    ~sub:"no runs have been committed"

let test_resolve_latest_empty_root () =
  let root = fresh_root () in
  Unix.mkdir root 0o755;
  check_resolve_error "empty root" (Filename.concat root "latest") ~sub:"no run directories"

let test_resolve_plain_dir () =
  let root = fresh_root () in
  Unix.mkdir root 0o755;
  check_resolve_error "plain dir" root ~sub:"manifest.json"

let test_resolve_dangling_symlink () =
  let root = fresh_root () in
  Unix.mkdir root 0o755;
  let link = Filename.concat root "latest" in
  Unix.symlink (Filename.concat root "gone-20260101-000000") link;
  check_resolve_error "dangling symlink" link ~sub:"dangling"

let test_resolve_not_a_path () =
  let root = fresh_root () in
  match R.Run_dir.resolve (Filename.concat root "nope") with
  | `Not_run -> ()
  | `Run d -> Alcotest.failf "nonexistent path resolved to %s" d
  | `Error e -> Alcotest.failf "nonexistent non-latest path must be `Not_run, got: %s" e

let suite =
  ( "run",
    [
      Alcotest.test_case "manifest golden format" `Quick test_manifest_golden;
      Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
      Alcotest.test_case "manifest rejects bad json" `Quick test_manifest_rejects;
      Alcotest.test_case "checksummed io round-trip + tamper" `Quick test_checksummed_roundtrip;
      Alcotest.test_case "table csv round-trip" `Quick test_table_csv_roundtrip;
      Alcotest.test_case "commit and load" `Quick test_commit_and_load;
      Alcotest.test_case "truncated manifest unreadable" `Quick test_truncated_manifest_unreadable;
      Alcotest.test_case "tampered artifact unreadable" `Quick test_tampered_artifact_unreadable;
      Alcotest.test_case "missing run unreadable" `Quick test_missing_run_unreadable;
      Alcotest.test_case "compare: self is empty and ok" `Quick test_compare_self_empty;
      Alcotest.test_case "compare: antisymmetric under swap" `Quick test_compare_antisymmetric;
      Alcotest.test_case "compare: tolerance gates" `Quick test_compare_tolerance_gate;
      Alcotest.test_case "compare: json/text reports" `Quick test_compare_report_json;
      Alcotest.test_case "compare: jobs=1 vs jobs=4 clean" `Slow test_compare_pipeline_jobs_invariant;
      Alcotest.test_case "variance: aggregate over runs" `Quick test_variance_aggregate;
      Alcotest.test_case "variance: non-finite samples counted as dropped" `Quick
        test_variance_dropped_nonfinite;
      Alcotest.test_case "variance: metrics extraction" `Quick test_variance_metrics_of_run;
      Alcotest.test_case "resolve: run dir and latest" `Quick test_resolve_run_dir;
      Alcotest.test_case "resolve: latest without root" `Quick test_resolve_latest_missing_root;
      Alcotest.test_case "resolve: latest of empty root" `Quick test_resolve_latest_empty_root;
      Alcotest.test_case "resolve: plain directory" `Quick test_resolve_plain_dir;
      Alcotest.test_case "resolve: dangling symlink" `Quick test_resolve_dangling_symlink;
      Alcotest.test_case "resolve: other paths fall through" `Quick test_resolve_not_a_path;
    ] )
