module C = Mica_core
module S = Mica_stats
module W = Mica_workloads

let feq = Tutil.feq

(* ---------------- dataset ---------------- *)

let sample_dataset () =
  C.Dataset.create ~names:[| "a"; "b"; "c" |] ~features:[| "x"; "y" |]
    [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |]

let test_dataset_basics () =
  let ds = sample_dataset () in
  Alcotest.(check int) "rows" 3 (C.Dataset.rows ds);
  Alcotest.(check int) "cols" 2 (C.Dataset.cols ds);
  Alcotest.(check (option int)) "row index" (Some 1) (C.Dataset.row_index ds "b");
  Alcotest.(check (option int)) "feature index" (Some 1) (C.Dataset.feature_index ds "y");
  Alcotest.(check (array feq)) "row_exn" [| 3.0; 4.0 |] (C.Dataset.row_exn ds "b")

let test_dataset_create_mismatch () =
  try
    ignore (C.Dataset.create ~names:[| "a" |] ~features:[| "x" |] [| [| 1.0 |]; [| 2.0 |] |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_dataset_select () =
  let ds = sample_dataset () in
  let sub = C.Dataset.select_features ds [| 1 |] in
  Alcotest.(check (array string)) "feature kept" [| "y" |] sub.C.Dataset.features;
  Alcotest.check feq "value kept" 4.0 sub.C.Dataset.data.(1).(0);
  let rows = C.Dataset.select_rows ds [| 2; 0 |] in
  Alcotest.(check (array string)) "rows reordered" [| "c"; "a" |] rows.C.Dataset.names

let test_dataset_append () =
  let ds = sample_dataset () in
  let more =
    C.Dataset.create ~names:[| "d" |] ~features:[| "x"; "y" |] [| [| 7.0; 8.0 |] |]
  in
  let both = C.Dataset.append_rows ds more in
  Alcotest.(check int) "4 rows" 4 (C.Dataset.rows both);
  let bad = C.Dataset.create ~names:[| "e" |] ~features:[| "z"; "w" |] [| [| 0.0; 0.0 |] |] in
  try
    ignore (C.Dataset.append_rows ds bad);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_dataset_csv_roundtrip () =
  let ds = sample_dataset () in
  let path = Filename.temp_file "mica_ds" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      C.Dataset.to_csv ds path;
      let back = C.Dataset.of_csv path in
      Alcotest.(check (array string)) "names" ds.C.Dataset.names back.C.Dataset.names;
      Alcotest.(check (array string)) "features" ds.C.Dataset.features back.C.Dataset.features;
      Array.iteri
        (fun i row ->
          Array.iteri (fun j v -> Alcotest.check feq "value" v back.C.Dataset.data.(i).(j)) row)
        ds.C.Dataset.data)

(* ---------------- space ---------------- *)

let test_space_distances () =
  let ds = sample_dataset () in
  let sp = C.Space.of_dataset ds in
  Alcotest.(check int) "n" 3 (C.Space.n sp);
  Alcotest.check feq "self distance" 0.0 (C.Space.distance sp 1 1);
  Alcotest.check feq "symmetric" (C.Space.distance sp 0 2) (C.Space.distance sp 2 0);
  Alcotest.check feq "by name matches by index" (C.Space.distance sp 0 1)
    (C.Space.distance_by_name sp "a" "b");
  (* rows are collinear and evenly spaced: d(a,c) = 2 d(a,b) *)
  Alcotest.check feq "collinear" (2.0 *. C.Space.distance sp 0 1) (C.Space.distance sp 0 2);
  Alcotest.check feq "max distance" (C.Space.distance sp 0 2) (C.Space.max_distance sp)

let test_space_nearest () =
  let ds = sample_dataset () in
  let sp = C.Space.of_dataset ds in
  match C.Space.nearest sp 0 ~k:2 with
  | [ (j1, d1); (j2, d2) ] ->
    Alcotest.(check int) "nearest is b" 1 j1;
    Alcotest.(check int) "then c" 2 j2;
    Alcotest.(check bool) "sorted" true (d1 <= d2)
  | _ -> Alcotest.fail "expected two neighbours"

let test_space_place () =
  let ds = sample_dataset () in
  let sp = C.Space.of_dataset ds in
  (* placing an existing observation reproduces its normalized row *)
  let z = C.Space.place sp [| 3.0; 4.0 |] in
  Alcotest.(check (array feq)) "place matches" sp.C.Space.normalized.(1) z;
  let d = C.Space.distances_from sp [| 3.0; 4.0 |] in
  Alcotest.check feq "distance to itself" 0.0 d.(1)

(* ---------------- classify ---------------- *)

let test_classify_quadrants () =
  (* hpc max 10 -> threshold 2; mica max 100 -> threshold 20 *)
  let hpc = [| 1.0; 3.0; 1.0; 10.0 |] in
  let mica = [| 10.0; 30.0; 50.0; 100.0 |] in
  let c = C.Classify.classify ~hpc_distances:hpc ~mica_distances:mica () in
  Alcotest.(check int) "tn" 1 c.C.Classify.true_neg;
  Alcotest.(check int) "tp" 2 c.C.Classify.true_pos;
  Alcotest.(check int) "fp" 1 c.C.Classify.false_pos;
  Alcotest.(check int) "fn" 0 c.C.Classify.false_neg;
  let f = C.Classify.fractions c in
  Alcotest.check feq "fractions sum to 1" 1.0
    (f.C.Classify.f_true_pos +. f.C.Classify.f_true_neg +. f.C.Classify.f_false_pos
    +. f.C.Classify.f_false_neg)

let test_classify_threshold_sensitivity () =
  let hpc = [| 1.0; 10.0 |] and mica = [| 1.0; 10.0 |] in
  let strict = C.Classify.classify ~hpc_distances:hpc ~mica_distances:mica ~frac:0.9 () in
  Alcotest.(check int) "high threshold: one large pair" 1 strict.C.Classify.true_pos;
  Alcotest.(check int) "and one small pair" 1 strict.C.Classify.true_neg

let test_classify_errors () =
  (try
     ignore (C.Classify.classify ~hpc_distances:[| 1.0 |] ~mica_distances:[||] ());
     Alcotest.fail "length mismatch accepted"
   with Invalid_argument _ -> ());
  try
    ignore (C.Classify.classify ~hpc_distances:[||] ~mica_distances:[||] ());
    Alcotest.fail "empty accepted"
  with Invalid_argument _ -> ()

(* ---------------- case study ---------------- *)

let test_case_study_normalization () =
  let ds = sample_dataset () in
  let cmp = C.Case_study.compare_in ds ~a:"a" ~b:"c" in
  (* max of column x is 5: a=0.2, c=1.0 *)
  Alcotest.check feq "a normalized" 0.2 cmp.C.Case_study.a.(0);
  Alcotest.check feq "c normalized" 1.0 cmp.C.Case_study.b.(0)

let test_case_study_render () =
  let ds = sample_dataset () in
  let cmp = C.Case_study.compare_in ds ~a:"a" ~b:"b" in
  let s = C.Case_study.render cmp in
  Alcotest.(check bool) "mentions features" true (String.length s > 10)

let test_case_study_unknown () =
  let ds = sample_dataset () in
  try
    ignore (C.Case_study.compare_in ds ~a:"nope" ~b:"a");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---------------- clustering ---------------- *)

let blob_dataset () =
  let rng = Mica_util.Rng.create ~seed:55L in
  let data =
    Array.init 30 (fun i ->
        let c = if i < 15 then 0.0 else 8.0 in
        [|
          c +. Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.2;
          c +. Mica_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.2;
        |])
  in
  C.Dataset.create
    ~names:(Array.init 30 (Printf.sprintf "w%d"))
    ~features:[| "f1"; "f2" |] data

let test_clustering_two_blobs () =
  let ds = blob_dataset () in
  let c = C.Clustering.cluster ~k_max:6 ds in
  Alcotest.(check int) "two clusters found" 2 c.C.Clustering.k;
  (match C.Clustering.cluster_of c "w0" with
  | Some c0 ->
    for i = 1 to 14 do
      Alcotest.(check (option int)) "first blob intact" (Some c0)
        (C.Clustering.cluster_of c (Printf.sprintf "w%d" i))
    done
  | None -> Alcotest.fail "w0 missing");
  let sorted = C.Clustering.sorted_clusters c in
  Alcotest.(check int) "partition" 30
    (List.fold_left (fun acc (_, m) -> acc + Array.length m) 0 sorted)

let test_clustering_members () =
  let ds = blob_dataset () in
  let c = C.Clustering.cluster ~k_max:4 ds in
  let all = List.concat_map (fun (cid, _) -> Array.to_list (C.Clustering.members c cid))
      (C.Clustering.sorted_clusters c) in
  Alcotest.(check int) "members cover dataset" 30 (List.length (List.sort_uniq compare all))

(* ---------------- kiviat ---------------- *)

let test_kiviat_text () =
  let s = C.Kiviat.text ~axes:[| "a"; "b" |] ~values:[| 0.0; 1.0 |] in
  Alcotest.(check bool) "two lines" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 2)

let test_kiviat_compact () =
  let s = C.Kiviat.text_compact ~values:[| 0.0; 0.5; 1.0 |] in
  Alcotest.(check bool) "non-empty" true (String.length s > 0)

let test_kiviat_svg () =
  let plots =
    [
      { C.Kiviat.p_label = "w1"; p_values = [| 0.5; 0.5; 0.5 |]; p_cluster = 0 };
      { C.Kiviat.p_label = "w2"; p_values = [| 1.0; 0.0; 1.0 |]; p_cluster = 1 };
    ]
  in
  let svg = C.Kiviat.svg_grid ~title:"t" ~axes:[| "a"; "b"; "c" |] plots in
  let contains needle =
    let n = String.length needle and h = String.length svg in
    let rec go i = i + n <= h && (String.sub svg i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "svg root" true (contains "<svg");
  Alcotest.(check bool) "polygons drawn" true (contains "<polygon");
  Alcotest.(check bool) "cluster headers" true (contains "Cluster 2");
  Alcotest.(check bool) "closed" true (contains "</svg>")

let test_kiviat_svg_escapes () =
  let plots = [ { C.Kiviat.p_label = "a<b&c"; p_values = [| 0.5 |]; p_cluster = 0 } ] in
  let svg = C.Kiviat.svg_grid ~title:"x\"y" ~axes:[| "a" |] plots in
  let contains needle =
    let n = String.length needle and h = String.length svg in
    let rec go i = i + n <= h && (String.sub svg i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "label escaped" true (contains "a&lt;b&amp;c");
  Alcotest.(check bool) "title escaped" true (contains "x&quot;y")

let test_kiviat_text_golden () =
  (* exact output pins the bar geometry and the value formatting; note the
     bar clamps to [0,1] while the printed number stays raw *)
  Alcotest.(check string) "golden"
    "  ilp        |#####...............| 0.250\n\
    \  mem        |####################| 1.500\n"
    (C.Kiviat.text ~axes:[| "ilp"; "mem" |] ~values:[| 0.25; 1.5 |])

let test_kiviat_compact_golden () =
  (* one glyph per axis; out-of-range values clamp to the end blocks *)
  Alcotest.(check string) "golden" " \xe2\x96\x84\xe2\x96\x88 \xe2\x96\x88"
    (C.Kiviat.text_compact ~values:[| 0.0; 0.5; 1.0; -3.0; 2.0 |]);
  Alcotest.(check string) "empty axes" "" (C.Kiviat.text_compact ~values:[||])

let test_kiviat_svg_empty_and_single () =
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* empty plot list: a valid, closed document with the title and nothing else *)
  let empty = C.Kiviat.svg_grid ~title:"none" ~axes:[| "a" |] [] in
  Alcotest.(check bool) "empty has root" true (contains empty "<svg");
  Alcotest.(check bool) "empty closed" true (contains empty "</svg>");
  Alcotest.(check bool) "empty has no polygons" false (contains empty "<polygon");
  (* a single plot gets its cluster header and exactly one polygon *)
  let one =
    C.Kiviat.svg_grid ~title:"one" ~axes:[| "a"; "b"; "c" |]
      [ { C.Kiviat.p_label = "only"; p_values = [| 0.2; 0.9; 0.4 |]; p_cluster = 0 } ]
  in
  Alcotest.(check bool) "header for cluster 1" true (contains one "Cluster 1");
  let count needle hay =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length hay then acc
      else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one polygon" 1 (count "<polygon" one);
  Alcotest.(check bool) "label drawn" true (contains one ">only</text>")

let test_kiviat_write_svg_roundtrip () =
  let path = Filename.temp_file "t_core_kiviat" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let plots = [ { C.Kiviat.p_label = "w"; p_values = [| 0.5; 0.5 |]; p_cluster = 0 } ] in
      C.Kiviat.write_svg ~path ~title:"t" ~axes:[| "a"; "b" |] plots;
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file is exactly the rendered grid"
        (C.Kiviat.svg_grid ~title:"t" ~axes:[| "a"; "b" |] plots)
        contents)

(* ---------------- svg_plot ---------------- *)

let svg_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let svg_count needle hay =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
  in
  go 0 0

let two_series () =
  [
    { C.Svg_plot.label = "mica"; points = [| (0.0, 0.0); (1.0, 2.0); (2.0, 1.0) |];
      color = C.Svg_plot.default_colors.(0) };
    { C.Svg_plot.label = "hpc & co"; points = [| (0.5, 1.5) |];
      color = C.Svg_plot.default_colors.(1) };
  ]

let test_svg_plot_scatter () =
  let svg =
    C.Svg_plot.scatter ~title:"Fig 1 <demo>" ~x_label:"rank" ~y_label:"distance" (two_series ())
  in
  Alcotest.(check bool) "root element" true (svg_contains svg "<svg");
  Alcotest.(check bool) "closed" true (svg_contains svg "</svg>");
  Alcotest.(check int) "one dot per point" 4 (svg_count "<circle" svg);
  Alcotest.(check bool) "title escaped" true (svg_contains svg "Fig 1 &lt;demo&gt;");
  Alcotest.(check bool) "legend escaped" true (svg_contains svg "hpc &amp; co");
  Alcotest.(check bool) "x label" true (svg_contains svg ">rank</text>");
  Alcotest.(check bool) "y label" true (svg_contains svg ">distance</text>");
  Alcotest.(check int) "legend swatch per series" 2 (svg_count "<rect" svg);
  Alcotest.(check bool) "no NaN coordinates" false (svg_contains svg "nan")

let test_svg_plot_lines () =
  let svg = C.Svg_plot.lines ~title:"sweep" ~x_label:"k" ~y_label:"rho" (two_series ()) in
  Alcotest.(check int) "one polyline per non-empty series" 2 (svg_count "<polyline" svg);
  (* an empty series contributes a legend entry but no geometry *)
  let with_empty =
    C.Svg_plot.lines ~title:"sweep" ~x_label:"k" ~y_label:"rho"
      (two_series () @ [ { C.Svg_plot.label = "void"; points = [||]; color = "#000" } ])
  in
  Alcotest.(check int) "empty series draws nothing" 2 (svg_count "<polyline" with_empty);
  Alcotest.(check int) "but is in the legend" 3 (svg_count "<rect" with_empty)

let test_svg_plot_degenerate_extents () =
  (* all points identical: both ranges are zero-width and must be widened,
     not divided through — the output carries no nan/inf anywhere *)
  let svg =
    C.Svg_plot.scatter ~title:"dup" ~x_label:"x" ~y_label:"y"
      [ { C.Svg_plot.label = "s"; points = [| (3.0, 7.0); (3.0, 7.0); (3.0, 7.0) |];
          color = "#123456" } ]
  in
  Alcotest.(check int) "duplicate points all drawn" 3 (svg_count "<circle" svg);
  Alcotest.(check bool) "no nan" false (svg_contains svg "nan");
  Alcotest.(check bool) "no inf" false (svg_contains svg "inf");
  (* empty dataset: no series at all still renders a valid document on the
     default [0,1] extents *)
  let empty = C.Svg_plot.lines ~title:"empty" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "empty renders" true (svg_contains empty "</svg>");
  Alcotest.(check int) "no geometry" 0 (svg_count "<polyline" empty);
  Alcotest.(check bool) "empty has no nan" false (svg_contains empty "nan")

let test_svg_plot_write_roundtrip () =
  let path = Filename.temp_file "t_core_svg" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let svg = C.Svg_plot.scatter ~title:"w" ~x_label:"x" ~y_label:"y" (two_series ()) in
      C.Svg_plot.write ~path svg;
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file holds the document byte-for-byte" svg contents)

(* ---------------- pipeline ---------------- *)

let small_config dir =
  { C.Pipeline.default_config with C.Pipeline.icount = 3_000; cache_dir = dir }

let test_pipeline_characterize () =
  let w = W.Registry.find_exn "MiBench/sha/large" in
  let mica, hpc = C.Pipeline.characterize (small_config None) w in
  Alcotest.(check int) "47 chars" 47 (Array.length mica);
  Alcotest.(check int) "7 counters" 7 (Array.length hpc)

let test_pipeline_datasets_shape () =
  let ws = [ W.Registry.find_exn "MiBench/sha/large"; W.Registry.find_exn "SPEC2000/mcf/ref" ] in
  let mica, hpc = C.Pipeline.datasets ~config:(small_config None) ws in
  Alcotest.(check int) "2 rows" 2 (C.Dataset.rows mica);
  Alcotest.(check int) "47 cols" 47 (C.Dataset.cols mica);
  Alcotest.(check int) "7 cols" 7 (C.Dataset.cols hpc);
  Alcotest.(check string) "row order preserved" "MiBench/sha/large" mica.C.Dataset.names.(0)

let test_pipeline_cache_roundtrip () =
  let dir = Filename.temp_file "mica_cache" "" in
  Sys.remove dir;
  let config = small_config (Some dir) in
  let ws = [ W.Registry.find_exn "MiBench/sha/large" ] in
  let mica1, _ = C.Pipeline.datasets ~config ws in
  (* second load must come from cache and be identical *)
  let mica2, _ = C.Pipeline.datasets ~config ws in
  Alcotest.(check bool) "cached results identical" true
    (mica1.C.Dataset.data = mica2.C.Dataset.data);
  Alcotest.(check bool) "cache file exists" true
    (Sys.file_exists (Filename.concat dir (Printf.sprintf "mica-%s-3000.csv" C.Pipeline.model_version)))

let test_pipeline_parallel_matches_serial () =
  let ws =
    [
      W.Registry.find_exn "MiBench/sha/large"; W.Registry.find_exn "SPEC2000/mcf/ref";
      W.Registry.find_exn "CommBench/tcp/tcp"; W.Registry.find_exn "SPEC2000/swim/ref";
    ]
  in
  let serial = { (small_config None) with C.Pipeline.jobs = 1 } in
  let parallel = { (small_config None) with C.Pipeline.jobs = 3 } in
  let m1, h1 = C.Pipeline.datasets ~config:serial ws in
  let m2, h2 = C.Pipeline.datasets ~config:parallel ws in
  Alcotest.(check bool) "MICA identical across domain counts" true
    (m1.C.Dataset.data = m2.C.Dataset.data);
  Alcotest.(check bool) "HPC identical across domain counts" true
    (h1.C.Dataset.data = h2.C.Dataset.data);
  Alcotest.(check (array string)) "row order preserved" m1.C.Dataset.names m2.C.Dataset.names

let test_pipeline_deterministic () =
  let w = W.Registry.find_exn "CommBench/tcp/tcp" in
  let a, ha = C.Pipeline.characterize (small_config None) w in
  let b, hb = C.Pipeline.characterize (small_config None) w in
  Alcotest.(check bool) "MICA deterministic" true (a = b);
  Alcotest.(check bool) "HPC deterministic" true (ha = hb)

(* ---------------- experiments on a reduced context ---------------- *)

let mini_context () =
  let names =
    [
      "MiBench/sha/large"; "MiBench/adpcm/rawcaudio"; "SPEC2000/mcf/ref";
      "SPEC2000/swim/ref"; "SPEC2000/gcc/166"; "BioInfoMark/blast/protein";
      "CommBench/rtr/rtr"; "MediaBench/g721/decode"; "SPEC2000/bzip2/graphic";
      "MiBench/qsort/large";
    ]
  in
  C.Experiments.Context.load
    ~config:{ C.Pipeline.default_config with C.Pipeline.icount = 3_000; cache_dir = None }
    ~workloads:(List.map W.Registry.find_exn names) ()

let test_experiments_fig1_table3 () =
  let ctx = mini_context () in
  let f1 = C.Experiments.fig1 ctx in
  Alcotest.(check int) "45 pairs" 45 (Array.length f1.C.Experiments.points);
  Alcotest.(check bool) "correlation in [-1,1]" true
    (f1.C.Experiments.correlation >= -1.0 && f1.C.Experiments.correlation <= 1.0);
  let counts = C.Experiments.table3 ctx in
  Alcotest.(check int) "quadrants partition pairs" 45
    (counts.C.Classify.true_pos + counts.C.Classify.true_neg + counts.C.Classify.false_pos
    + counts.C.Classify.false_neg)

let test_experiments_selection_and_roc () =
  let ctx = mini_context () in
  let ga_config =
    { Mica_select.Genetic.default_config with
      Mica_select.Genetic.population = 16; max_generations = 30; stall_generations = 10 }
  in
  let ga = C.Experiments.run_ga ~config:ga_config ctx in
  Alcotest.(check bool) "ga selected something" true
    (Array.length ga.Mica_select.Genetic.selected > 0);
  let ce = C.Experiments.run_ce ctx in
  Alcotest.(check int) "ce runs to 1" 46 (List.length ce);
  let entries = C.Experiments.fig4 ctx ~ga ~ce in
  List.iter
    (fun (e : C.Experiments.roc_entry) ->
      let auc = e.C.Experiments.curve.S.Roc.auc in
      if auc < 0.0 || auc > 1.0 then Alcotest.failf "AUC %f out of range" auc)
    entries;
  let f5 = C.Experiments.fig5 ctx ~ga in
  Array.iter
    (fun (_, rho) ->
      if rho < -1.0 || rho > 1.0 then Alcotest.fail "rho out of range")
    f5.C.Experiments.ce_points

let test_experiments_fig6 () =
  let ctx = mini_context () in
  let f6 = C.Experiments.fig6 ~k_max:6 ctx ~selected:[| 0; 6; 19; 43 |] in
  Alcotest.(check int) "plot per workload" 10 (List.length f6.C.Experiments.plots);
  Alcotest.(check int) "axes match selection" 4 (Array.length f6.C.Experiments.axes);
  List.iter
    (fun (p : C.Kiviat.plot) ->
      Array.iter
        (fun v -> if v < 0.0 || v > 1.0 then Alcotest.fail "kiviat value out of unit range")
        p.C.Kiviat.p_values)
    f6.C.Experiments.plots

let test_experiments_renderers () =
  Alcotest.(check bool) "table1 text" true (String.length (C.Experiments.render_table1 ()) > 1000);
  Alcotest.(check bool) "table2 text" true (String.length (C.Experiments.render_table2 ()) > 500)

let suite =
  ( "core",
    [
      Alcotest.test_case "dataset basics" `Quick test_dataset_basics;
      Alcotest.test_case "dataset mismatch" `Quick test_dataset_create_mismatch;
      Alcotest.test_case "dataset select" `Quick test_dataset_select;
      Alcotest.test_case "dataset append" `Quick test_dataset_append;
      Alcotest.test_case "dataset csv roundtrip" `Quick test_dataset_csv_roundtrip;
      Alcotest.test_case "space distances" `Quick test_space_distances;
      Alcotest.test_case "space nearest" `Quick test_space_nearest;
      Alcotest.test_case "space place" `Quick test_space_place;
      Alcotest.test_case "classify quadrants" `Quick test_classify_quadrants;
      Alcotest.test_case "classify threshold" `Quick test_classify_threshold_sensitivity;
      Alcotest.test_case "classify errors" `Quick test_classify_errors;
      Alcotest.test_case "case study normalization" `Quick test_case_study_normalization;
      Alcotest.test_case "case study render" `Quick test_case_study_render;
      Alcotest.test_case "case study unknown" `Quick test_case_study_unknown;
      Alcotest.test_case "clustering two blobs" `Quick test_clustering_two_blobs;
      Alcotest.test_case "clustering members" `Quick test_clustering_members;
      Alcotest.test_case "kiviat text" `Quick test_kiviat_text;
      Alcotest.test_case "kiviat compact" `Quick test_kiviat_compact;
      Alcotest.test_case "kiviat svg" `Quick test_kiviat_svg;
      Alcotest.test_case "kiviat svg escapes" `Quick test_kiviat_svg_escapes;
      Alcotest.test_case "kiviat text golden" `Quick test_kiviat_text_golden;
      Alcotest.test_case "kiviat compact golden" `Quick test_kiviat_compact_golden;
      Alcotest.test_case "kiviat svg empty/single" `Quick test_kiviat_svg_empty_and_single;
      Alcotest.test_case "kiviat write_svg roundtrip" `Quick test_kiviat_write_svg_roundtrip;
      Alcotest.test_case "svg_plot scatter" `Quick test_svg_plot_scatter;
      Alcotest.test_case "svg_plot lines" `Quick test_svg_plot_lines;
      Alcotest.test_case "svg_plot degenerate extents" `Quick test_svg_plot_degenerate_extents;
      Alcotest.test_case "svg_plot write roundtrip" `Quick test_svg_plot_write_roundtrip;
      Alcotest.test_case "pipeline characterize" `Quick test_pipeline_characterize;
      Alcotest.test_case "pipeline datasets" `Quick test_pipeline_datasets_shape;
      Alcotest.test_case "pipeline cache" `Quick test_pipeline_cache_roundtrip;
      Alcotest.test_case "pipeline deterministic" `Quick test_pipeline_deterministic;
      Alcotest.test_case "pipeline parallel = serial" `Quick
        test_pipeline_parallel_matches_serial;
      Alcotest.test_case "experiments fig1/table3" `Slow test_experiments_fig1_table3;
      Alcotest.test_case "experiments selection/roc" `Slow test_experiments_selection_and_roc;
      Alcotest.test_case "experiments fig6" `Slow test_experiments_fig6;
      Alcotest.test_case "experiments renderers" `Quick test_experiments_renderers;
    ] )
