module A = Mica_analysis
module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

let feq = Tutil.feq

(* ---------------- instruction mix ---------------- *)

let test_mix_exact () =
  let t = A.Mix.create () in
  Tutil.run_sink (A.Mix.sink t)
    [
      Tutil.load ~dst:1 ~addr:0x10 ();
      Tutil.store ~addr:0x20 ();
      Tutil.branch ~taken:true ();
      Tutil.alu ();
      Instr.make ~pc:0 ~op:Opcode.Int_mul ~dst:2 ();
      Tutil.fp ();
      Instr.make ~pc:0 ~op:Opcode.Call ~taken:true ~target:4 ();
      Tutil.alu ();
    ];
  let r = A.Mix.result t in
  Alcotest.(check int) "total" 8 r.A.Mix.total;
  Alcotest.check feq "loads" 0.125 r.A.Mix.frac_load;
  Alcotest.check feq "stores" 0.125 r.A.Mix.frac_store;
  Alcotest.check feq "controls (branch+call)" 0.25 r.A.Mix.frac_control;
  Alcotest.check feq "arith" 0.25 r.A.Mix.frac_arith;
  Alcotest.check feq "imul" 0.125 r.A.Mix.frac_int_mul;
  Alcotest.check feq "fp" 0.125 r.A.Mix.frac_fp;
  Alcotest.(check int) "vector length" 6 (Array.length (A.Mix.to_vector r))

let test_mix_empty () =
  let r = A.Mix.result (A.Mix.create ()) in
  Alcotest.check feq "no instructions, no fractions" 0.0 r.A.Mix.frac_load

(* ---------------- ILP ---------------- *)

let test_ilp_serial_chain () =
  (* every instruction depends on the previous one: IPC must be ~1 *)
  let t = A.Ilp.create ~windows:[| 32 |] () in
  let sink = A.Ilp.sink t in
  for i = 0 to 999 do
    Tutil.push_one sink (Tutil.alu ~pc:(4 * i) ~src1:1 ~dst:1 ())
  done;
  let ipc = (A.Ilp.ipc t).(0) in
  Alcotest.(check bool) "serial IPC near 1" true (ipc > 0.95 && ipc < 1.05)

let test_ilp_independent_window_limited () =
  (* fully independent instructions: each window slot is reusable after one
     cycle, so IPC equals the window size *)
  let t = A.Ilp.create ~windows:[| 4; 16 |] () in
  let sink = A.Ilp.sink t in
  for i = 0 to 9_999 do
    Tutil.push_one sink (Tutil.alu ~pc:(4 * i) ())
  done;
  let ipc = A.Ilp.ipc t in
  Alcotest.(check bool) "window 4 -> IPC ~4" true (abs_float (ipc.(0) -. 4.0) < 0.1);
  Alcotest.(check bool) "window 16 -> IPC ~16" true (abs_float (ipc.(1) -. 16.0) < 0.5)

let test_ilp_windows_monotonic () =
  (* on a real-ish trace, a bigger window can never hurt *)
  let t = A.Ilp.create () in
  let p = Tutil.tiny_program "ilp-mono" in
  let (_ : int) = Mica_trace.Generator.run p ~icount:20_000 ~sink:(A.Ilp.sink t) in
  let ipc = A.Ilp.ipc t in
  for i = 0 to Array.length ipc - 2 do
    if ipc.(i) > ipc.(i + 1) +. 1e-9 then Alcotest.fail "IPC decreased with window size"
  done

let test_ilp_zero_register_no_dependency () =
  (* reads of r31 must not serialize *)
  let t = A.Ilp.create ~windows:[| 8 |] () in
  let sink = A.Ilp.sink t in
  for i = 0 to 999 do
    Tutil.push_one sink
      (Tutil.alu ~pc:(4 * i) ~src1:Mica_isa.Reg.zero ~dst:Mica_isa.Reg.zero ())
  done;
  let ipc = (A.Ilp.ipc t).(0) in
  Alcotest.(check bool) "r31 chain is parallel" true (ipc > 7.0)

(* ---------------- register traffic ---------------- *)

let test_regtraffic_operands () =
  let t = A.Regtraffic.create () in
  Tutil.run_sink (A.Regtraffic.sink t)
    [ Tutil.alu ~src1:1 ~src2:2 ~dst:3 (); Tutil.alu ~src1:3 ~dst:4 (); Tutil.alu ~dst:5 () ];
  let r = A.Regtraffic.result t in
  Alcotest.check feq "avg operands" 1.0 r.A.Regtraffic.avg_input_operands

let test_regtraffic_degree_of_use () =
  let t = A.Regtraffic.create () in
  Tutil.run_sink (A.Regtraffic.sink t)
    [
      Tutil.alu ~dst:1 ();  (* instance A of r1 *)
      Tutil.alu ~src1:1 ~dst:2 ();  (* use A (1) *)
      Tutil.alu ~src1:1 ~src2:1 ~dst:1 ();  (* uses A twice, then new instance B *)
      Tutil.alu ~src1:1 ~dst:3 ();  (* use B (1) *)
    ];
  let r = A.Regtraffic.result t in
  (* instances at flush: A used 3x, B used 1x, r2 used 0x, r3 used 0x *)
  Alcotest.check feq "degree of use" 1.0 r.A.Regtraffic.avg_degree_of_use

let test_regtraffic_dependency_distance () =
  let t = A.Regtraffic.create () in
  Tutil.run_sink (A.Regtraffic.sink t)
    [
      Tutil.alu ~dst:1 ();
      Tutil.alu ~src1:1 ~dst:2 ();  (* distance 1 *)
      Tutil.alu ();
      Tutil.alu ~src1:2 ~dst:3 ();  (* distance 2 *)
      Tutil.alu ~src1:1 ();  (* distance 4 *)
    ];
  let r = A.Regtraffic.result t in
  let cdf = r.A.Regtraffic.dep_cdf in
  Alcotest.check feq "P(=1)" (1.0 /. 3.0) cdf.(0);
  Alcotest.check feq "P(<=2)" (2.0 /. 3.0) cdf.(1);
  Alcotest.check feq "P(<=4)" 1.0 cdf.(2);
  Alcotest.check feq "P(<=64)" 1.0 cdf.(6)

let test_regtraffic_zero_reg_excluded () =
  let t = A.Regtraffic.create () in
  Tutil.run_sink (A.Regtraffic.sink t)
    [ Tutil.alu ~dst:Mica_isa.Reg.zero (); Tutil.alu ~src1:Mica_isa.Reg.zero () ];
  let r = A.Regtraffic.result t in
  (* the r31 read counts as an operand but creates no dependency *)
  Alcotest.check feq "operand counted" 0.5 r.A.Regtraffic.avg_input_operands;
  Alcotest.check feq "no dependency recorded" 0.0 r.A.Regtraffic.dep_cdf.(6);
  Alcotest.check feq "no instance recorded" 0.0 r.A.Regtraffic.avg_degree_of_use

let test_regtraffic_vector_shape () =
  let t = A.Regtraffic.create () in
  Tutil.run_sink (A.Regtraffic.sink t) [ Tutil.alu ~dst:1 () ];
  Alcotest.(check int) "9 values" 9
    (Array.length (A.Regtraffic.to_vector (A.Regtraffic.result t)))

(* ---------------- working set ---------------- *)

let test_working_set_counts () =
  let t = A.Working_set.create () in
  Tutil.run_sink (A.Working_set.sink t)
    [
      Tutil.load ~pc:0x1000 ~dst:1 ~addr:0x8000 ();
      Tutil.load ~pc:0x1004 ~dst:1 ~addr:0x8010 ();  (* same 32B block *)
      Tutil.load ~pc:0x1008 ~dst:1 ~addr:0x8020 ();  (* next block, same page *)
      Tutil.store ~pc:0x2000 ~addr:0x10000 ();  (* new block, new page *)
      Tutil.alu ~pc:0x2004 ();
    ];
  let r = A.Working_set.result t in
  Alcotest.(check int) "data blocks" 3 r.A.Working_set.data_blocks;
  Alcotest.(check int) "data pages" 2 r.A.Working_set.data_pages;
  (* pcs 0x1000-0x1008 share a block; 0x2000/0x2004 share another *)
  Alcotest.(check int) "instr blocks" 2 r.A.Working_set.instr_blocks;
  Alcotest.(check int) "instr pages" 2 r.A.Working_set.instr_pages

let test_working_set_idempotent_touch () =
  let t = A.Working_set.create () in
  let i = Tutil.load ~pc:0x1000 ~dst:1 ~addr:0x8000 () in
  Tutil.run_sink (A.Working_set.sink t) [ i; i; i ];
  let r = A.Working_set.result t in
  Alcotest.(check int) "one block" 1 r.A.Working_set.data_blocks

(* ---------------- strides ---------------- *)

let test_strides_local_vs_global () =
  let t = A.Strides.create () in
  Tutil.run_sink (A.Strides.sink t)
    [
      Tutil.load ~pc:0x100 ~dst:1 ~addr:1000 ();
      Tutil.load ~pc:0x200 ~dst:1 ~addr:5000 ();  (* global stride 4000 *)
      Tutil.load ~pc:0x100 ~dst:1 ~addr:1008 ();  (* local stride 8, global 3992 *)
      Tutil.load ~pc:0x200 ~dst:1 ~addr:5000 ();  (* local stride 0, global 3992 *)
    ];
  let r = A.Strides.result t in
  (* local: strides 8 and 0 -> P(=0)=0.5, P(<=8)=1.0 *)
  Alcotest.check feq "local P(=0)" 0.5 r.A.Strides.local_load.(0);
  Alcotest.check feq "local P(<=8)" 1.0 r.A.Strides.local_load.(1);
  (* global: 4000, 3992, 3992 -> all in (512, 4096] *)
  Alcotest.check feq "global P(<=512)" 0.0 r.A.Strides.global_load.(3);
  Alcotest.check feq "global P(<=4096)" 1.0 r.A.Strides.global_load.(4)

let test_strides_stores_separate () =
  let t = A.Strides.create () in
  Tutil.run_sink (A.Strides.sink t)
    [
      Tutil.load ~pc:0x100 ~dst:1 ~addr:1000 ();
      Tutil.store ~pc:0x300 ~addr:9000 ();
      Tutil.load ~pc:0x104 ~dst:1 ~addr:1004 ();  (* global load stride 4, not 8000 *)
      Tutil.store ~pc:0x300 ~addr:9064 ();  (* store strides: local 64, global 64 *)
    ];
  let r = A.Strides.result t in
  Alcotest.check feq "load stream unaffected by stores" 1.0 r.A.Strides.global_load.(1);
  Alcotest.check feq "store local P(<=64)" 1.0 r.A.Strides.local_store.(2);
  Alcotest.check feq "store local P(<=8)" 0.0 r.A.Strides.local_store.(1)

let test_strides_negative_abs () =
  let t = A.Strides.create () in
  Tutil.run_sink (A.Strides.sink t)
    [ Tutil.load ~pc:0x100 ~dst:1 ~addr:1000 (); Tutil.load ~pc:0x100 ~dst:1 ~addr:992 () ];
  let r = A.Strides.result t in
  (* stride -8: absolute value used *)
  Alcotest.check feq "negative stride bucketed by |.|" 1.0 r.A.Strides.local_load.(1)

let test_strides_vector_shape () =
  let t = A.Strides.create () in
  Alcotest.(check int) "20 values" 20 (Array.length (A.Strides.to_vector (A.Strides.result t)))

(* ---------------- PPM ---------------- *)

let always_taken_branch pc = Tutil.branch ~pc ~taken:true ()

let test_ppm_always_taken () =
  let t = A.Ppm.create () in
  let sink = A.Ppm.sink t in
  for _ = 1 to 500 do
    Tutil.push_one sink (always_taken_branch 0x100)
  done;
  List.iter
    (fun v ->
      let miss = A.Ppm.miss_rate t v in
      if miss > 0.02 then
        Alcotest.failf "%s misses %.3f on constant branch" (A.Ppm.variant_name v) miss)
    A.Ppm.all_variants

let test_ppm_alternating () =
  (* T N T N ... is learnable from one bit of history *)
  let t = A.Ppm.create ~order:4 () in
  let sink = A.Ppm.sink t in
  for i = 1 to 1_000 do
    Tutil.push_one sink (Tutil.branch ~pc:0x100 ~taken:(i mod 2 = 0) ())
  done;
  List.iter
    (fun v ->
      let miss = A.Ppm.miss_rate t v in
      if miss > 0.05 then
        Alcotest.failf "%s misses %.3f on alternating branch" (A.Ppm.variant_name v) miss)
    A.Ppm.all_variants

let test_ppm_global_correlation () =
  (* Branch B's outcome equals branch A's last outcome: global-history
     predictors learn it; purely local ones cannot beat 50% by much. *)
  let t = A.Ppm.create ~order:8 () in
  let sink = A.Ppm.sink t in
  let rng = Mica_util.Rng.create ~seed:99L in
  (* count only branch B's behaviour by tracking misses before/after *)
  for _ = 1 to 4_000 do
    let a = Mica_util.Rng.bool rng in
    Tutil.push_one sink (Tutil.branch ~pc:0x100 ~taken:a ());
    Tutil.push_one sink (Tutil.branch ~pc:0x200 ~taken:a ())
  done;
  let gag = A.Ppm.miss_rate t A.Ppm.GAg and pag = A.Ppm.miss_rate t A.Ppm.PAg in
  (* GAg predicts B perfectly (and A randomly): overall ~25%.  PAg sees
     only local history for both: ~50%. *)
  Alcotest.(check bool) "global history exploits correlation" true (gag < pag -. 0.1)

let test_ppm_per_address_tables () =
  (* Two branches with opposite constant outcomes: shared-table variants
     with short history confuse them unless pc is part of the context. *)
  let t = A.Ppm.create ~order:0 () in
  let sink = A.Ppm.sink t in
  for _ = 1 to 1_000 do
    Tutil.push_one sink (Tutil.branch ~pc:0x100 ~taken:true ());
    Tutil.push_one sink (Tutil.branch ~pc:0x200 ~taken:false ())
  done;
  let shared = A.Ppm.miss_rate t A.Ppm.GAg in
  let per_addr = A.Ppm.miss_rate t A.Ppm.GAs in
  Alcotest.(check bool) "per-address separates opposite branches" true
    (per_addr < 0.05 && shared > 0.4)

let test_ppm_only_conditional_branches () =
  let t = A.Ppm.create () in
  Tutil.run_sink (A.Ppm.sink t)
    [ Tutil.alu (); Instr.make ~pc:0 ~op:Opcode.Jump ~taken:true ~target:8 () ];
  Alcotest.(check int) "no conditional branches seen" 0 (A.Ppm.branches t)

let test_ppm_variant_restriction () =
  let t = A.Ppm.create ~variants:[ A.Ppm.GAg ] () in
  Tutil.run_sink (A.Ppm.sink t) [ Tutil.branch ~taken:true () ];
  Alcotest.(check int) "restricted vector" 1 (Array.length (A.Ppm.to_vector t))

(* ---------------- combined analyzer ---------------- *)

let test_analyzer_vector_shape () =
  let p = Tutil.tiny_program "analyzer-shape" in
  let v = A.Analyzer.analyze p ~icount:5_000 in
  Alcotest.(check int) "47 characteristics" A.Characteristics.count (Array.length v);
  Array.iteri (fun i x -> if Float.is_nan x then Alcotest.failf "characteristic %d is NaN" i) v

let test_analyzer_deterministic () =
  let p = Tutil.tiny_program "analyzer-det" in
  let a = A.Analyzer.analyze p ~icount:5_000 and b = A.Analyzer.analyze p ~icount:5_000 in
  Alcotest.(check bool) "same vector" true (a = b)

let test_analyzer_probabilities_in_range () =
  let p = Tutil.tiny_program "analyzer-range" in
  let v = A.Analyzer.analyze p ~icount:5_000 in
  (* mix fractions, dependency CDF, strides, PPM miss rates are probabilities *)
  let prob_indices =
    List.concat [ List.init 6 Fun.id; List.init 7 (fun i -> 12 + i); List.init 20 (fun i -> 23 + i); List.init 4 (fun i -> 43 + i) ]
  in
  List.iter
    (fun i ->
      if v.(i) < -1e-9 || v.(i) > 1.0 +. 1e-9 then
        Alcotest.failf "characteristic %d = %f out of [0,1]" i v.(i))
    prob_indices

let test_analyzer_cdfs_monotonic () =
  let p = Tutil.tiny_program "analyzer-cdf" in
  let v = A.Analyzer.analyze p ~icount:5_000 in
  let check_monotonic lo hi =
    for i = lo to hi - 1 do
      if v.(i) > v.(i + 1) +. 1e-9 then Alcotest.failf "CDF not monotonic at %d" i
    done
  in
  check_monotonic 12 18;
  (* dependency distances *)
  check_monotonic 23 27;
  (* local load strides *)
  check_monotonic 28 32;
  check_monotonic 33 37;
  check_monotonic 38 42

let test_characteristics_catalogue () =
  Alcotest.(check int) "47 names" 47 (Array.length A.Characteristics.names);
  Alcotest.(check int) "47 short names" 47 (Array.length A.Characteristics.short_names);
  Alcotest.(check int) "47 categories" 47 (Array.length A.Characteristics.categories);
  let uniq = List.sort_uniq compare (Array.to_list A.Characteristics.short_names) in
  Alcotest.(check int) "short names unique" 47 (List.length uniq);
  Alcotest.(check (option int)) "lookup" (Some 0)
    (A.Characteristics.index_of_short_name "pct_load");
  Alcotest.(check (option int)) "missing lookup" None
    (A.Characteristics.index_of_short_name "nope")

let suite =
  ( "analysis",
    [
      Alcotest.test_case "mix exact" `Quick test_mix_exact;
      Alcotest.test_case "mix empty" `Quick test_mix_empty;
      Alcotest.test_case "ilp serial chain" `Quick test_ilp_serial_chain;
      Alcotest.test_case "ilp window limited" `Quick test_ilp_independent_window_limited;
      Alcotest.test_case "ilp windows monotonic" `Quick test_ilp_windows_monotonic;
      Alcotest.test_case "ilp r31 no dependency" `Quick test_ilp_zero_register_no_dependency;
      Alcotest.test_case "regtraffic operands" `Quick test_regtraffic_operands;
      Alcotest.test_case "regtraffic degree of use" `Quick test_regtraffic_degree_of_use;
      Alcotest.test_case "regtraffic dependency distance" `Quick
        test_regtraffic_dependency_distance;
      Alcotest.test_case "regtraffic r31 excluded" `Quick test_regtraffic_zero_reg_excluded;
      Alcotest.test_case "regtraffic vector shape" `Quick test_regtraffic_vector_shape;
      Alcotest.test_case "working set counts" `Quick test_working_set_counts;
      Alcotest.test_case "working set idempotent" `Quick test_working_set_idempotent_touch;
      Alcotest.test_case "strides local vs global" `Quick test_strides_local_vs_global;
      Alcotest.test_case "strides stores separate" `Quick test_strides_stores_separate;
      Alcotest.test_case "strides negative" `Quick test_strides_negative_abs;
      Alcotest.test_case "strides vector shape" `Quick test_strides_vector_shape;
      Alcotest.test_case "ppm always taken" `Quick test_ppm_always_taken;
      Alcotest.test_case "ppm alternating" `Quick test_ppm_alternating;
      Alcotest.test_case "ppm global correlation" `Quick test_ppm_global_correlation;
      Alcotest.test_case "ppm per-address tables" `Quick test_ppm_per_address_tables;
      Alcotest.test_case "ppm conditional only" `Quick test_ppm_only_conditional_branches;
      Alcotest.test_case "ppm variant restriction" `Quick test_ppm_variant_restriction;
      Alcotest.test_case "analyzer vector shape" `Quick test_analyzer_vector_shape;
      Alcotest.test_case "analyzer deterministic" `Quick test_analyzer_deterministic;
      Alcotest.test_case "analyzer probabilities" `Quick test_analyzer_probabilities_in_range;
      Alcotest.test_case "analyzer CDFs monotonic" `Quick test_analyzer_cdfs_monotonic;
      Alcotest.test_case "characteristics catalogue" `Quick test_characteristics_catalogue;
    ] )
