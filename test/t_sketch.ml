(* Sketch layer: fixed-memory streaming estimators.  The load-bearing
   contracts are the cardinality sketch's merge algebra and accuracy,
   the sampled reuse estimator against the exact Fenwick analyzer, the
   O(1)-in-trace-length state, and bit-determinism across chunk
   boundaries — the same laws [mica verify] enforces, here driven by
   random streams instead of the registry. *)

module Sk = Mica_sketch
module Card = Mica_sketch.Cardinality
module A = Mica_analysis
module W = Mica_workloads

open QCheck2

let bits = Int64.bits_of_float

let float_arrays_bits_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> bits x = bits y) a b

(* ---------------- cardinality ---------------- *)

let keys_gen = Gen.(list_size (int_range 0 400) (int_range 0 5_000))

let sketch_of keys =
  let t = Card.create ~registers:256 () in
  List.iter (Card.add t) keys;
  t

let prop_merge_assoc_comm (xs, ys, zs) =
  let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
  Card.equal (Card.merge a (Card.merge b c)) (Card.merge (Card.merge a b) c)
  && Card.equal (Card.merge a b) (Card.merge b a)
  && Card.equal (Card.merge a a) a

let prop_merge_estimates_union (xs, ys) =
  let merged = Card.merge (sketch_of xs) (sketch_of ys) in
  Card.equal merged (sketch_of (xs @ ys))

let prop_estimate_near_exact xs =
  let t = Card.create ~registers:1024 () in
  let seen = Mica_util.Int_map.create () in
  List.iter
    (fun x ->
      Card.add t x;
      Mica_util.Int_map.add_if_absent seen x)
    xs;
  let exact = float_of_int (Mica_util.Int_map.length seen) in
  (* the linear-counting regime covers these sizes; 1024 registers keep
     the standard error near 1%, so 8% relative (or 3 absolute for tiny
     sets) is generous *)
  Float.abs (Card.estimate t -. exact) <= Float.max (0.08 *. exact) 3.0

(* ---------------- sampled reuse vs exact ---------------- *)

(* byte addresses over a 64 KiB footprint: 2048 distinct 32-byte blocks,
   well inside the default near table, so the estimator must track the
   exact analyzer closely *)
let addr_stream_gen = Gen.(list_size (int_range 50 600) (int_range 0 65_535))

let prop_reuse_cdf_matches_exact addrs =
  let cutoffs = A.Reuse.default_cutoffs in
  let exact = A.Reuse.create () in
  Mica_trace.Sink.feed_list (A.Reuse.sink exact)
    (List.map (fun addr -> Tutil.load ~dst:1 ~addr ()) addrs);
  let sk = Sk.Sampled_reuse.create ~cutoffs () in
  List.iter (Sk.Sampled_reuse.access sk) addrs;
  let want = A.Reuse.cdf exact cutoffs and got = Sk.Sampled_reuse.cdf sk in
  Sk.Sampled_reuse.accesses sk = A.Reuse.accesses exact
  && Array.for_all2 (fun w g -> Float.abs (w -. g) <= 0.08) want got

let prop_reuse_accesses_exact addrs =
  let sk = Sk.Sampled_reuse.create ~cutoffs:A.Reuse.default_cutoffs () in
  List.iter (Sk.Sampled_reuse.access sk) addrs;
  Sk.Sampled_reuse.accesses sk = List.length addrs

(* ---------------- chunk-boundary determinism ---------------- *)

let registry = W.Registry.all

let chunk_case_gen = Gen.(triple (int_range 0 1000) (int_range 500 2_500) (oneofl [ 1; 3; 17; 101 ]))

let prop_chunk_determinism (widx, icount, capacity) =
  let w = List.nth registry (widx mod List.length registry) in
  let collector, read = Mica_trace.Sink.collect ~limit:icount () in
  let (_ : int) =
    Mica_trace.Generator.run w.W.Workload.model ~icount ~sink:collector
  in
  let instrs = read () in
  let vector_at capacity =
    let sk = Sk.Sketch.create () in
    Mica_trace.Sink.feed_list ~capacity (Sk.Sketch.sink sk) instrs;
    Sk.Sketch.extended_vector sk
  in
  float_arrays_bits_equal (vector_at 4096) (vector_at capacity)

(* ---------------- fixed state units ---------------- *)

let test_state_constant_in_trace_length () =
  let w = W.Registry.find_exn "SPEC2000/mcf/ref" in
  let at icount = Sk.Sketch.analyze w.W.Workload.model ~icount in
  let short = at 5_000 and long = at 80_000 in
  Alcotest.(check int)
    "state bytes independent of trace length" (Sk.Sketch.state_bytes short)
    (Sk.Sketch.state_bytes long);
  Alcotest.(check int) "short instruction count" 5_000 (Sk.Sketch.instructions short);
  Alcotest.(check int) "long instruction count" 80_000 (Sk.Sketch.instructions long);
  Alcotest.(check bool)
    "state within plan budget" true
    (Sk.Sketch.state_bytes long <= (Sk.Sketch.the_plan long).Sk.Sketch.bytes)

let test_plan_monotone () =
  let p1 = Sk.Sketch.plan ~bytes:(1 lsl 18) () and p2 = Sk.Sketch.plan ~bytes:(1 lsl 21) () in
  Alcotest.(check bool) "ws registers grow" true (p2.Sk.Sketch.ws_registers >= p1.Sk.Sketch.ws_registers);
  Alcotest.(check bool) "ppm slots grow" true (p2.Sk.Sketch.ppm_slots >= p1.Sk.Sketch.ppm_slots);
  Alcotest.(check bool) "reuse slots grow" true
    (p2.Sk.Sketch.reuse_near_slots >= p1.Sk.Sketch.reuse_near_slots)

(* ---------------- stream windows ---------------- *)

let test_stream_windows () =
  let w = W.Registry.find_exn "MiBench/sha/large" in
  let t, snaps = Sk.Stream.run ~window:4_000 w.W.Workload.model ~icount:10_000 in
  Alcotest.(check int) "three windows (last partial)" 3 (Array.length snaps);
  Alcotest.(check int) "windows counter" 3 (Sk.Stream.windows t);
  Alcotest.(check int) "instructions" 10_000 (Sk.Stream.instructions t);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) (Printf.sprintf "snapshot %d index" i) i s.Sk.Stream.index;
      Alcotest.(check int)
        (Printf.sprintf "snapshot %d start" i)
        (i * 4_000) s.Sk.Stream.start_instr)
    snaps;
  Alcotest.(check int) "last window short" 2_000 snaps.(2).Sk.Stream.instructions;
  (match Sk.Stream.decayed t with
  | Some d ->
    Alcotest.(check bool) "decayed matches last snapshot" true
      (float_arrays_bits_equal d snaps.(2).Sk.Stream.decayed)
  | None -> Alcotest.fail "decayed vector must exist after three windows");
  let again = Sk.Stream.finish t in
  Alcotest.(check int) "finish idempotent: same count" (Array.length snaps) (Array.length again);
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "finish idempotent: snapshot %d" i)
        true
        (float_arrays_bits_equal s.Sk.Stream.vector again.(i).Sk.Stream.vector))
    snaps

let test_stream_assign_and_purity () =
  let centroids = [| [| 0.0; 0.0 |]; [| 10.0; 10.0 |] |] in
  Alcotest.(check int) "near origin" 0 (Sk.Stream.assign ~centroids [| 1.0; -1.0 |]);
  Alcotest.(check int) "near far centroid" 1 (Sk.Stream.assign ~centroids [| 9.0; 8.0 |]);
  Alcotest.check Tutil.feq "relabeled clustering is pure" 1.0
    (Sk.Stream.purity ~labels:[| 0; 0; 1; 1 |] ~oracle:[| 5; 5; 2; 2 |]);
  Alcotest.check Tutil.feq "split cluster loses half" 0.5
    (Sk.Stream.purity ~labels:[| 0; 0; 0; 0 |] ~oracle:[| 1; 1; 2; 2 |]);
  Alcotest.check Tutil.feq "empty is zero" 0.0 (Sk.Stream.purity ~labels:[||] ~oracle:[||])

let suite =
  ( "sketch",
    [
      Tutil.qcheck_case "cardinality merge associative/commutative/idempotent"
        Gen.(triple keys_gen keys_gen keys_gen)
        prop_merge_assoc_comm;
      Tutil.qcheck_case "cardinality merge = union sketch"
        Gen.(pair keys_gen keys_gen)
        prop_merge_estimates_union;
      Tutil.qcheck_case "cardinality estimate near exact Int_map count" keys_gen
        prop_estimate_near_exact;
      Tutil.qcheck_case ~count:100 "sampled reuse cdf tracks exact analyzer" addr_stream_gen
        prop_reuse_cdf_matches_exact;
      Tutil.qcheck_case "sampled reuse counts accesses exactly" addr_stream_gen
        prop_reuse_accesses_exact;
      Tutil.qcheck_case ~count:40 "sketch bit-deterministic across chunk boundaries"
        chunk_case_gen prop_chunk_determinism;
      Alcotest.test_case "state bytes O(1) in trace length" `Quick
        test_state_constant_in_trace_length;
      Alcotest.test_case "plan monotone in budget" `Quick test_plan_monotone;
      Alcotest.test_case "stream windows and snapshots" `Quick test_stream_windows;
      Alcotest.test_case "stream assign/purity" `Quick test_stream_assign_and_purity;
    ] )
