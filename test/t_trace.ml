module K = Mica_trace.Kernel
module P = Mica_trace.Program
module G = Mica_trace.Generator
module Sink = Mica_trace.Sink
module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr
module Rng = Mica_util.Rng
module Trace_io = Mica_trace.Trace_io

(* ---------------- Sink ---------------- *)

let test_sink_counter () =
  let sink, read = Sink.counter () in
  Tutil.run_sink sink [ Tutil.alu (); Tutil.alu (); Tutil.alu () ];
  Alcotest.(check int) "counted" 3 (read ())

let test_sink_fanout () =
  let s1, r1 = Sink.counter () in
  let s2, r2 = Sink.counter () in
  let fan = Sink.fanout [ s1; s2 ] in
  Tutil.run_sink fan [ Tutil.alu (); Tutil.alu () ];
  Alcotest.(check int) "first sees all" 2 (r1 ());
  Alcotest.(check int) "second sees all" 2 (r2 ())

let test_sink_sample () =
  let s, r = Sink.counter () in
  let sampled = Sink.sample ~every:3 s in
  Tutil.run_sink sampled (List.init 10 (fun _ -> Tutil.alu ()));
  Alcotest.(check int) "every third" 4 (r ())

let test_sink_sample_identity () =
  (* every:1 must forward the full stream unchanged *)
  let s, r = Sink.counter () in
  let sampled = Sink.sample ~every:1 s in
  Tutil.run_sink sampled (List.init 7 (fun _ -> Tutil.alu ()));
  Alcotest.(check int) "all forwarded" 7 (r ())

let test_sink_sample_invalid () =
  let s, _ = Sink.counter () in
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Sink.sample: every must be positive") (fun () ->
      ignore (Sink.sample ~every:0 s));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Sink.sample: every must be positive") (fun () ->
      ignore (Sink.sample ~every:(-3) s))

let test_sink_collect () =
  let sink, read = Sink.collect ~limit:2 () in
  let a = Tutil.alu ~pc:0x10 () and b = Tutil.alu ~pc:0x20 () and c = Tutil.alu ~pc:0x30 () in
  Tutil.run_sink sink [ a; b; c ];
  let got = read () in
  Alcotest.(check int) "limited" 2 (List.length got);
  Alcotest.(check int) "in order" 0x10 (List.hd got).Instr.pc

let test_sink_collect_zero_limit () =
  (* limit:0 absorbs the stream and yields nothing *)
  let sink, read = Sink.collect ~limit:0 () in
  Tutil.run_sink sink [ Tutil.alu (); Tutil.alu () ];
  Alcotest.(check int) "empty" 0 (List.length (read ()))

let test_sink_collect_negative_limit () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Sink.collect: limit must be non-negative") (fun () ->
      ignore (Sink.collect ~limit:(-1) ()))

(* ---------------- Chunk transport ---------------- *)

let test_chunk_roundtrip () =
  let c = Mica_trace.Chunk.create ~capacity:4 () in
  let instrs =
    [
      Tutil.alu ~pc:0x10 ~src1:1 ~src2:2 ~dst:3 ();
      Tutil.load ~pc:0x14 ~dst:4 ~addr:0xBEEF0 ();
      Tutil.branch ~pc:0x18 ~taken:true ();
    ]
  in
  List.iter (Mica_trace.Chunk.push c) instrs;
  Alcotest.(check int) "length" 3 (Mica_trace.Chunk.length c);
  Alcotest.(check bool) "not yet full" false (Mica_trace.Chunk.is_full c);
  Alcotest.(check bool) "boxed roundtrip" true (Mica_trace.Chunk.to_list c = instrs);
  Mica_trace.Chunk.push c (Tutil.alu ());
  Alcotest.(check bool) "full at capacity" true (Mica_trace.Chunk.is_full c);
  Alcotest.check_raises "push past capacity" (Invalid_argument "Chunk.push: chunk is full")
    (fun () -> Mica_trace.Chunk.push c (Tutil.alu ()));
  Mica_trace.Chunk.clear c;
  Alcotest.(check int) "cleared" 0 (Mica_trace.Chunk.length c)

let test_chunk_create_invalid () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Chunk.create: capacity must be positive") (fun () ->
      ignore (Mica_trace.Chunk.create ~capacity:0 ()))

let chunk_lengths program ~icount =
  let lens = ref [] in
  let sink =
    Sink.make ~name:"lens" (fun c -> lens := Mica_trace.Chunk.length c :: !lens)
  in
  let (_ : int) = G.run program ~icount ~sink in
  List.rev !lens

let test_generator_chunk_sizes () =
  (* the delivered chunk sizes partition icount: full chunks then one
     partial; an exactly-full final chunk is delivered once, not followed
     by an empty one *)
  let p = P.single ~name:"chunk-sizes" K.default in
  let cap = Mica_trace.Chunk.default_capacity in
  Alcotest.(check (list int)) "partial final chunk" [ cap; 5_000 - cap ]
    (chunk_lengths p ~icount:5_000);
  Alcotest.(check (list int)) "less than one chunk" [ 100 ] (chunk_lengths p ~icount:100);
  Alcotest.(check (list int)) "exactly full" [ cap ] (chunk_lengths p ~icount:cap);
  Alcotest.(check (list int)) "two exact chunks" [ cap; cap ]
    (chunk_lengths p ~icount:(2 * cap))

let test_chunking_invariance () =
  (* chunk boundaries carry no meaning: restreaming the same instructions
     at any capacity (straddling basic blocks arbitrarily) yields the same
     characteristics as the generator's own chunking *)
  let p = P.single ~name:"chunking-invariance" K.default in
  let direct = Mica_analysis.Analyzer.analyze p ~icount:5_000 in
  let instrs = G.preview p ~n:5_000 in
  List.iter
    (fun cap ->
      let t = Mica_analysis.Analyzer.create () in
      Sink.feed_list ~capacity:cap (Mica_analysis.Analyzer.sink t) instrs;
      Alcotest.(check bool)
        (Printf.sprintf "capacity %d" cap)
        true
        (Mica_analysis.Analyzer.vector t = direct))
    [ 1; 7; 1024 ]

let test_sink_sample_across_chunks () =
  (* sampling is positional over the stream, not over chunks *)
  let sampled_pcs cap =
    let s, read = Sink.collect ~limit:100 () in
    let sampled = Sink.sample ~every:3 s in
    Sink.feed_list ~capacity:cap sampled (List.init 10 (fun i -> Tutil.alu ~pc:(4 * i) ()));
    List.map (fun i -> i.Instr.pc) (read ())
  in
  Alcotest.(check (list int)) "expected positions" [ 0; 12; 24; 36 ] (sampled_pcs 4096);
  Alcotest.(check (list int)) "boundary-independent" (sampled_pcs 4096) (sampled_pcs 4);
  Alcotest.(check (list int)) "single-element chunks" (sampled_pcs 4096) (sampled_pcs 1)

let test_sink_collect_across_chunks () =
  (* a limit landing mid-chunk truncates exactly there *)
  let pcs ~cap ~limit =
    let sink, read = Sink.collect ~limit () in
    Sink.feed_list ~capacity:cap sink (List.init 10 (fun i -> Tutil.alu ~pc:i ()));
    List.map (fun i -> i.Instr.pc) (read ())
  in
  Alcotest.(check (list int)) "limit mid-chunk" [ 0; 1; 2; 3; 4 ] (pcs ~cap:3 ~limit:5);
  Alcotest.(check (list int)) "limit past stream" (List.init 10 Fun.id) (pcs ~cap:4 ~limit:50)

(* ---------------- Kernel validation ---------------- *)

let expect_invalid spec name =
  match K.validate spec with
  | Ok () -> Alcotest.failf "%s should be invalid" name
  | Error _ -> ()

let test_kernel_validate () =
  Alcotest.(check bool) "default valid" true (K.validate K.default = Ok ());
  expect_invalid { K.default with K.body_slots = 2 } "tiny body";
  expect_invalid
    { K.default with K.mix = { K.default.K.mix with K.load = 0.9; store = 0.5 } }
    "over-full mix";
  expect_invalid { K.default with K.dep_geom_p = 0.0 } "zero dep_geom_p";
  expect_invalid { K.default with K.trip_count = 0 } "zero trip";
  expect_invalid { K.default with K.data_bytes = 8 } "tiny data";
  expect_invalid { K.default with K.helper_call_prob = 1.5 } "probability over 1";
  expect_invalid
    { K.default with K.fp_mul_frac = 0.8; fp_div_frac = 0.5 }
    "fp split over 1";
  expect_invalid
    { K.default with K.load_patterns = [] }
    "no load patterns with loads in mix"

let test_kernel_instantiate_structure () =
  let rng = Rng.create ~seed:1L in
  let inst = K.instantiate K.default ~rng ~code_base:0x1000 ~data_base:0x100000 in
  Alcotest.(check int) "body size" K.default.K.body_slots (Array.length inst.K.i_body);
  Alcotest.(check int) "loop pc after body" (0x1000 + (4 * K.default.K.body_slots))
    inst.K.i_loop_pc;
  (* slot pcs are sequential *)
  Array.iteri
    (fun i slot ->
      Alcotest.(check int) "slot pc" (0x1000 + (4 * i)) slot.K.s_pc)
    inst.K.i_body;
  (* memory slots carry state, branch slots carry state *)
  Array.iter
    (fun slot ->
      (match slot.K.s_op with
      | Opcode.Load | Opcode.Store ->
        if slot.K.s_mem = None then Alcotest.fail "mem slot without state"
      | _ -> if slot.K.s_mem <> None then Alcotest.fail "non-mem slot with state");
      match slot.K.s_op with
      | Opcode.Branch -> if slot.K.s_br = None then Alcotest.fail "branch without state"
      | _ -> if slot.K.s_br <> None then Alcotest.fail "non-branch with state")
    inst.K.i_body;
  Alcotest.(check int) "helper regions" K.default.K.helper_regions
    (Array.length inst.K.i_helpers)

let test_kernel_mix_rounding () =
  let spec = { K.default with K.body_slots = 100 } in
  let rng = Rng.create ~seed:2L in
  let inst = K.instantiate spec ~rng ~code_base:0x1000 ~data_base:0x100000 in
  let count pred = Array.length (Array.of_list (List.filter pred (Array.to_list inst.K.i_body))) in
  let loads = count (fun s -> s.K.s_op = Opcode.Load) in
  let stores = count (fun s -> s.K.s_op = Opcode.Store) in
  Alcotest.(check int) "load slots match mix" 25 loads;
  Alcotest.(check int) "store slots match mix" 10 stores

let test_kernel_chase_self_dependence () =
  let spec =
    {
      K.default with
      K.name = "chase";
      load_patterns = [ (1.0, K.Chase) ];
      mix = { K.default.K.mix with K.load = 0.3 };
    }
  in
  let rng = Rng.create ~seed:3L in
  let inst = K.instantiate spec ~rng ~code_base:0x1000 ~data_base:0x100000 in
  Array.iter
    (fun slot ->
      if slot.K.s_op = Opcode.Load && not (Mica_isa.Reg.is_none slot.K.s_dst) then
        Alcotest.(check int) "chase load reads its own output" slot.K.s_dst slot.K.s_src1)
    inst.K.i_body

let test_kernel_code_bytes () =
  Alcotest.(check int) "code bytes"
    ((K.default.K.body_slots + 1 + K.default.K.helper_instrs) * 4)
    (K.code_bytes K.default)

let test_kernel_invalid_instantiate_raises () =
  let rng = Rng.create ~seed:4L in
  Alcotest.check_raises "invalid spec raises"
    (Invalid_argument "kernel \"default\": trip_count must be positive")
    (fun () ->
      ignore
        (K.instantiate { K.default with K.trip_count = 0 } ~rng ~code_base:0 ~data_base:0))

(* ---------------- Program ---------------- *)

let test_program_validate () =
  let p = P.make ~name:"empty" [] in
  Alcotest.(check bool) "no phases invalid" true (Result.is_error (P.validate p));
  let p =
    P.make ~name:"zero-len" [ { P.ph_name = "a"; ph_kernels = [ (1.0, K.default) ]; ph_length = 0 } ]
  in
  Alcotest.(check bool) "zero length invalid" true (Result.is_error (P.validate p));
  let p =
    P.make ~name:"neg-weight"
      [ { P.ph_name = "a"; ph_kernels = [ (-1.0, K.default) ]; ph_length = 10 } ]
  in
  Alcotest.(check bool) "negative weight invalid" true (Result.is_error (P.validate p));
  Alcotest.(check bool) "single valid" true
    (Result.is_ok (P.validate (P.single ~name:"ok" K.default)))

let test_program_seed_derived_from_name () =
  let a = P.single ~name:"abc" K.default and b = P.single ~name:"abc" K.default in
  Alcotest.(check int64) "same name same seed" a.P.seed b.P.seed;
  let c = P.single ~name:"xyz" K.default in
  Alcotest.(check bool) "different name different seed" true (a.P.seed <> c.P.seed)

let test_program_kernels () =
  let p = P.single ~name:"k" K.default in
  Alcotest.(check int) "one kernel" 1 (List.length (P.kernels p))

(* ---------------- Generator ---------------- *)

let test_generator_exact_icount () =
  let p = P.single ~name:"count" K.default in
  let sink, read = Sink.counter () in
  let n = G.run p ~icount:12_345 ~sink in
  Alcotest.(check int) "returns icount" 12_345 n;
  Alcotest.(check int) "sink saw icount" 12_345 (read ())

let test_generator_zero_icount () =
  let p = P.single ~name:"zero" K.default in
  let sink, read = Sink.counter () in
  Alcotest.(check int) "zero" 0 (G.run p ~icount:0 ~sink);
  Alcotest.(check int) "nothing emitted" 0 (read ())

let test_generator_deterministic () =
  let p = P.single ~name:"det" K.default in
  let a = G.preview p ~n:500 and b = G.preview p ~n:500 in
  Alcotest.(check bool) "identical traces" true (a = b)

let test_generator_different_names_differ () =
  let a = G.preview (P.single ~name:"one" K.default) ~n:200 in
  let b = G.preview (P.single ~name:"two" K.default) ~n:200 in
  Alcotest.(check bool) "traces differ" true (a <> b)

let test_generator_invalid_program () =
  let p = P.make ~name:"bad" [] in
  let sink, _ = Sink.counter () in
  (try
     ignore (G.run p ~icount:10 ~sink);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_generator_stream_well_formed () =
  let p = P.single ~name:"wf" K.default in
  let instrs = G.preview p ~n:5_000 in
  List.iter
    (fun (i : Instr.t) ->
      if i.Instr.pc <= 0 then Alcotest.fail "non-positive pc";
      if Opcode.is_mem i.Instr.op && i.Instr.addr <= 0 then Alcotest.fail "mem op without address";
      if Opcode.is_control i.Instr.op && i.Instr.taken && i.Instr.target <= 0 then
        Alcotest.fail "taken control without target";
      if (not (Opcode.is_mem i.Instr.op)) && i.Instr.addr <> 0 then
        Alcotest.fail "non-mem op with address")
    instrs

let test_generator_control_flow_consistent () =
  (* After a not-taken branch or a sequential instruction the next pc is
     pc+4; after a taken control transfer it is the target. *)
  let p = P.single ~name:"cfc" K.default in
  let instrs = Array.of_list (G.preview p ~n:2_000) in
  for i = 0 to Array.length instrs - 2 do
    let cur = instrs.(i) and next = instrs.(i + 1) in
    Alcotest.(check int)
      (Printf.sprintf "pc chain at %d" i)
      (Instr.next_pc cur) next.Instr.pc
  done

let test_generator_loop_branch_pattern () =
  (* the loop back-edge is taken trip_count-1 times, then falls through *)
  let spec = { K.default with K.helper_call_prob = 0.0; trip_count = 4 } in
  let p = P.single ~name:"loop" spec in
  let instrs = G.preview p ~n:2_000 in
  let loop_pc = ref None in
  (* find the highest branch pc: that's the back edge *)
  List.iter
    (fun (i : Instr.t) ->
      if i.Instr.op = Opcode.Branch then
        match !loop_pc with
        | None -> loop_pc := Some i.Instr.pc
        | Some p when i.Instr.pc > p -> loop_pc := Some i.Instr.pc
        | Some _ -> ())
    instrs;
  let loop_pc = Option.get !loop_pc in
  let outcomes =
    List.filter_map
      (fun (i : Instr.t) -> if i.Instr.pc = loop_pc then Some i.Instr.taken else None)
      instrs
  in
  (* pattern: T T T N repeating *)
  List.iteri
    (fun idx taken ->
      let expected = idx mod 4 <> 3 in
      if taken <> expected then Alcotest.failf "back edge outcome %d wrong" idx)
    outcomes

let test_generator_phase_interleaving () =
  let k1 = { K.default with K.name = "k1" } in
  let k2 = { K.default with K.name = "k2" } in
  let p =
    P.make ~name:"phases"
      [
        { P.ph_name = "a"; ph_kernels = [ (1.0, k1) ]; ph_length = 500 };
        { P.ph_name = "b"; ph_kernels = [ (1.0, k2) ]; ph_length = 500 };
      ]
  in
  let instrs = G.preview p ~n:3_000 in
  let code_regions =
    List.sort_uniq compare (List.map (fun (i : Instr.t) -> i.Instr.pc land 0x7F00_0000) instrs)
  in
  Alcotest.(check bool) "two code regions visited" true (List.length code_regions >= 2)

let prop_generator_icount =
  Tutil.qcheck_case ~count:20 "generator emits exactly icount"
    QCheck2.Gen.(int_range 1 5_000)
    (fun n ->
      let p = P.single ~name:"prop" K.default in
      let sink, read = Sink.counter () in
      G.run p ~icount:n ~sink = n && read () = n)

(* ---------------- trace IO ---------------- *)

let test_trace_io_line_roundtrip () =
  let samples =
    [
      Tutil.load ~pc:0x40 ~src1:3 ~dst:7 ~addr:0xdeadbeef ();
      Tutil.branch ~pc:0x44 ~src1:1 ~taken:true ~target:0x80 ();
      Tutil.alu ~pc:0x48 ~src1:1 ~src2:2 ~dst:3 ();
      Instr.make ~pc:0x4C ~op:Opcode.Return ~src1:26 ~taken:true ~target:0x100 ();
    ]
  in
  List.iter
    (fun i ->
      let line = Trace_io.instr_to_line i in
      let back = Trace_io.instr_of_line line in
      if back <> i then Alcotest.failf "line roundtrip failed for %s" line)
    samples

let test_trace_io_bad_line () =
  (try
     ignore (Trace_io.instr_of_line "not a trace line");
     Alcotest.fail "garbage accepted"
   with Failure _ -> ());
  try
    ignore (Trace_io.instr_of_line "40 bogus_op 1 2 3 0 T 0");
    Alcotest.fail "bad opcode accepted"
  with Failure _ -> ()

let roundtrip_file ~binary =
  let p = P.single ~name:"trace-io" K.default in
  let path = Filename.temp_file "mica_trace" (if binary then ".bin" else ".txt") in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let written =
        if binary then Trace_io.write_binary ~path p ~icount:2_000
        else Trace_io.write_text ~path p ~icount:2_000
      in
      Alcotest.(check int) "written" 2_000 written;
      let collected, read = Sink.collect ~limit:2_000 () in
      let n =
        if binary then Trace_io.replay_binary ~path ~sink:collected
        else Trace_io.replay_text ~path ~sink:collected
      in
      Alcotest.(check int) "replayed" 2_000 n;
      let original = G.preview p ~n:2_000 in
      Alcotest.(check bool) "identical instruction stream" true (read () = original))

let test_trace_io_text_file () = roundtrip_file ~binary:false
let test_trace_io_binary_file () = roundtrip_file ~binary:true

let test_trace_io_binary_rejects_garbage () =
  let path = Filename.temp_file "mica_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE_______";
      close_out oc;
      let sink, _ = Sink.counter () in
      try
        ignore (Trace_io.replay_binary ~path ~sink);
        Alcotest.fail "garbage accepted"
      with Failure _ -> ())

let test_trace_io_analysis_equivalence () =
  (* analyzing a replayed trace gives the same characteristics as live *)
  let p = P.single ~name:"trace-io-analysis" K.default in
  let live = Mica_analysis.Analyzer.analyze p ~icount:3_000 in
  let path = Filename.temp_file "mica_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      ignore (Trace_io.write_binary ~path p ~icount:3_000 : int);
      let analyzer = Mica_analysis.Analyzer.create () in
      ignore (Trace_io.replay_binary ~path ~sink:(Mica_analysis.Analyzer.sink analyzer) : int);
      Alcotest.(check bool) "same vector" true (Mica_analysis.Analyzer.vector analyzer = live))

let suite =
  ( "trace",
    [
      Alcotest.test_case "sink counter" `Quick test_sink_counter;
      Alcotest.test_case "sink fanout" `Quick test_sink_fanout;
      Alcotest.test_case "sink sample" `Quick test_sink_sample;
      Alcotest.test_case "sink sample identity" `Quick test_sink_sample_identity;
      Alcotest.test_case "sink sample invalid" `Quick test_sink_sample_invalid;
      Alcotest.test_case "sink collect" `Quick test_sink_collect;
      Alcotest.test_case "sink collect zero limit" `Quick test_sink_collect_zero_limit;
      Alcotest.test_case "sink collect negative limit" `Quick test_sink_collect_negative_limit;
      Alcotest.test_case "chunk roundtrip" `Quick test_chunk_roundtrip;
      Alcotest.test_case "chunk create invalid" `Quick test_chunk_create_invalid;
      Alcotest.test_case "generator chunk sizes" `Quick test_generator_chunk_sizes;
      Alcotest.test_case "chunking invariance" `Quick test_chunking_invariance;
      Alcotest.test_case "sample across chunks" `Quick test_sink_sample_across_chunks;
      Alcotest.test_case "collect across chunks" `Quick test_sink_collect_across_chunks;
      Alcotest.test_case "kernel validate" `Quick test_kernel_validate;
      Alcotest.test_case "kernel instantiate structure" `Quick test_kernel_instantiate_structure;
      Alcotest.test_case "kernel mix rounding" `Quick test_kernel_mix_rounding;
      Alcotest.test_case "kernel chase self-dependence" `Quick test_kernel_chase_self_dependence;
      Alcotest.test_case "kernel code bytes" `Quick test_kernel_code_bytes;
      Alcotest.test_case "invalid instantiate raises" `Quick test_kernel_invalid_instantiate_raises;
      Alcotest.test_case "program validate" `Quick test_program_validate;
      Alcotest.test_case "program seeds" `Quick test_program_seed_derived_from_name;
      Alcotest.test_case "program kernels" `Quick test_program_kernels;
      Alcotest.test_case "generator exact icount" `Quick test_generator_exact_icount;
      Alcotest.test_case "generator zero icount" `Quick test_generator_zero_icount;
      Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
      Alcotest.test_case "generator name-seeded" `Quick test_generator_different_names_differ;
      Alcotest.test_case "generator rejects invalid" `Quick test_generator_invalid_program;
      Alcotest.test_case "stream well-formed" `Quick test_generator_stream_well_formed;
      Alcotest.test_case "control flow consistent" `Quick test_generator_control_flow_consistent;
      Alcotest.test_case "loop branch pattern" `Quick test_generator_loop_branch_pattern;
      Alcotest.test_case "phase interleaving" `Quick test_generator_phase_interleaving;
      prop_generator_icount;
      Alcotest.test_case "trace io line roundtrip" `Quick test_trace_io_line_roundtrip;
      Alcotest.test_case "trace io bad line" `Quick test_trace_io_bad_line;
      Alcotest.test_case "trace io text file" `Quick test_trace_io_text_file;
      Alcotest.test_case "trace io binary file" `Quick test_trace_io_binary_file;
      Alcotest.test_case "trace io rejects garbage" `Quick test_trace_io_binary_rejects_garbage;
      Alcotest.test_case "trace io analysis equivalence" `Quick test_trace_io_analysis_equivalence;
    ] )
