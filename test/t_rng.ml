module Rng = Mica_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_of_string_stable () =
  let a = Rng.of_string "bzip2" and b = Rng.of_string "bzip2" in
  Alcotest.(check int64) "name-derived seeds equal" (Rng.bits64 a) (Rng.bits64 b);
  let c = Rng.of_string "blast" in
  Alcotest.(check bool) "different names differ" true (Rng.bits64 a <> Rng.bits64 c)

let test_copy_and_split () =
  let a = Rng.create ~seed:7L in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  let a = Rng.create ~seed:7L in
  let child = Rng.split a in
  (* the child must not replay the parent's stream *)
  let parent_next = Rng.bits64 a and child_next = Rng.bits64 child in
  Alcotest.(check bool) "split independent" true (parent_next <> child_next)

let test_int_bounds () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of range"
  done

let test_int_covers () =
  let rng = Rng.create ~seed:5L in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_int_in () =
  let rng = Rng.create ~seed:11L in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "int_in out of range"
  done

let test_float_range () =
  let rng = Rng.create ~seed:13L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of range"
  done

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:17L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create ~seed:19L in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_geometric () =
  let rng = Rng.create ~seed:23L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let v = Rng.geometric rng ~p:0.5 in
    if v < 0 then Alcotest.fail "geometric negative";
    sum := !sum + v
  done;
  (* mean of geometric(0.5) counting failures is (1-p)/p = 1 *)
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1" true (abs_float (mean -. 1.0) < 0.1);
  Alcotest.(check int) "p=1 is always 0" 0 (Rng.geometric rng ~p:1.0)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:29L in
  let n = 50_000 in
  let acc = Mica_stats.Descriptive.running_create () in
  for _ = 1 to n do
    Mica_stats.Descriptive.running_add acc (Rng.gaussian rng ~mu:3.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean near 3"
    true
    (abs_float (Mica_stats.Descriptive.running_mean acc -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near 2"
    true
    (abs_float (Mica_stats.Descriptive.running_stddev acc -. 2.0) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create ~seed:31L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:4.0
  done;
  Alcotest.(check bool) "mean near 4" true (abs_float ((!sum /. float_of_int n) -. 4.0) < 0.2)

let test_zipf_support_and_skew () =
  let rng = Rng.create ~seed:37L in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf rng ~n:10 ~s:1.2 in
    if v < 0 || v >= 10 then Alcotest.fail "zipf out of range";
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(4));
  Alcotest.(check bool) "rank 0 beats rank 9" true (counts.(0) > counts.(9))

let test_zipf_harmonic_case () =
  let rng = Rng.create ~seed:41L in
  for _ = 1 to 1_000 do
    let v = Rng.zipf rng ~n:5 ~s:1.0 in
    if v < 0 || v >= 5 then Alcotest.fail "zipf s=1 out of range"
  done

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:43L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_pick_weighted () =
  let rng = Rng.create ~seed:47L in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.pick_weighted rng [| (0.9, "a"); (0.1, "b"); (0.0, "c") |] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let get k = Option.value (Hashtbl.find_opt counts k) ~default:0 in
  Alcotest.(check int) "zero-weight never chosen" 0 (get "c");
  Alcotest.(check bool) "weights respected" true (get "a" > 7 * get "b")

let test_hash_string () =
  Alcotest.(check bool) "distinct strings hash apart"
    true
    (Rng.hash_string "foo" <> Rng.hash_string "bar");
  Alcotest.(check int64) "hash is stable" (Rng.hash_string "foo") (Rng.hash_string "foo")

let prop_int_bound =
  Tutil.qcheck_case "Rng.int always in [0,n)"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_geometric_non_negative =
  Tutil.qcheck_case "geometric is non-negative"
    QCheck2.Gen.(pair (float_range 0.01 1.0) (int_bound 10_000))
    (fun (p, seed) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      Rng.geometric rng ~p >= 0)

(* The production generator stores its 256-bit state as untagged 32-bit
   halves to keep the hot path allocation-free; this reference is the
   plain boxed-int64 xoshiro256** transcribed from Blackman & Vigna.  The
   two must agree bit for bit on every draw. *)
module Ref_xoshiro = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let splitmix64 state =
    let z = Int64.add !state 0x9E3779B97F4A7C15L in
    state := z;
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let create seed =
    let st = ref seed in
    let s0 = splitmix64 st in
    let s1 = splitmix64 st in
    let s2 = splitmix64 st in
    let s3 = splitmix64 st in
    { s0; s1; s2; s3 }

  let bits64 t =
    let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
    let tmp = Int64.shift_left t.s1 17 in
    t.s2 <- Int64.logxor t.s2 t.s0;
    t.s3 <- Int64.logxor t.s3 t.s1;
    t.s1 <- Int64.logxor t.s1 t.s2;
    t.s0 <- Int64.logxor t.s0 t.s3;
    t.s2 <- Int64.logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result
end

let test_matches_int64_reference () =
  List.iter
    (fun seed ->
      let a = Rng.create ~seed and b = Ref_xoshiro.create seed in
      for i = 0 to 9_999 do
        let x = Rng.bits64 a and y = Ref_xoshiro.bits64 b in
        if not (Int64.equal x y) then
          Alcotest.failf "seed %Ld diverges from reference at draw %d: %Lx <> %Lx" seed i x y
      done)
    [ 0L; 1L; 42L; 0xDEADBEEFL; Int64.min_int; Int64.max_int; -1L ]

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "different seeds" `Quick test_different_seeds;
      Alcotest.test_case "of_string stable" `Quick test_of_string_stable;
      Alcotest.test_case "copy and split" `Quick test_copy_and_split;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int covers residues" `Quick test_int_covers;
      Alcotest.test_case "int_in bounds" `Quick test_int_in;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
      Alcotest.test_case "geometric" `Quick test_geometric;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "zipf support and skew" `Quick test_zipf_support_and_skew;
      Alcotest.test_case "zipf harmonic case" `Quick test_zipf_harmonic_case;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "pick_weighted" `Quick test_pick_weighted;
      Alcotest.test_case "hash_string" `Quick test_hash_string;
      Alcotest.test_case "matches boxed int64 reference" `Quick test_matches_int64_reference;
      prop_int_bound;
      prop_geometric_non_negative;
    ] )
