(* Characterizing a workload of your own.

   The library's kernel models are a small DSL: this example builds a
   "streaming database join" workload from scratch (a hash-probe kernel
   mixed with a sequential scan kernel), characterizes it, and places it
   into the 122-benchmark space to find which existing benchmarks behave
   most alike.

     dune exec examples/custom_workload.exe *)

module K = Mica_trace.Kernel
module P = Mica_trace.Program
module E = Mica_core.Experiments

let hash_probe =
  {
    K.default with
    K.name = "join.probe";
    body_slots = 30;
    mix = { K.load = 0.33; store = 0.08; branch = 0.14; int_mul = 0.01; fp = 0.0 };
    load_patterns = [ (0.6, K.Random); (0.2, K.Chase); (0.2, K.Seq { stride = 8 }) ];
    store_patterns = [ (0.7, K.Random); (0.3, K.Fixed) ];
    data_bytes = 32 * 1024 * 1024;  (* a 32MB hash table *)
    branch_kinds =
      [ (0.5, K.Biased { taken_prob = 0.35 }); (0.5, K.Loop_like { period = 12 }) ];
    trip_count = 16;
  }

let scan =
  {
    K.default with
    K.name = "join.scan";
    body_slots = 20;
    mix = { K.load = 0.30; store = 0.05; branch = 0.08; int_mul = 0.0; fp = 0.0 };
    load_patterns = [ (0.95, K.Seq { stride = 8 }); (0.05, K.Fixed) ];
    store_patterns = [ (1.0, K.Fixed) ];
    data_bytes = 64 * 1024 * 1024;  (* a 64MB relation scanned sequentially *)
    trip_count = 256;
  }

let program =
  P.make ~name:"examples/hash-join"
    [ { P.ph_name = "join"; ph_kernels = [ (0.55, hash_probe); (0.45, scan) ]; ph_length = 50_000 } ]

let () =
  (match P.validate program with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let icount = 200_000 in
  Printf.printf "characterizing custom workload '%s' (%d instructions)...\n%!"
    program.P.name icount;
  let analyzer = Mica_analysis.Analyzer.analyze_full program ~icount in
  let vector = Mica_analysis.Analyzer.vector analyzer in

  (* a few headline characteristics *)
  let show label idx = Printf.printf "  %-28s %10.4f\n" label vector.(idx) in
  show "percentage loads" 0;
  show "ILP (256-entry window)" 9;
  show "D working set (4KB pages)" 20;
  show "local load stride <= 8" 24;
  show "PPM GAg miss rate" 43;

  Printf.printf "\nplacing it among the 122 reference benchmarks...\n%!";
  let ctx = E.Context.load () in
  let space = ctx.E.Context.mica_space in
  let distances = Mica_core.Space.distances_from space vector in
  let order = Array.init (Array.length distances) Fun.id in
  Array.sort (fun a b -> compare distances.(a) distances.(b)) order;
  print_endline "nearest neighbours in the inherent-behaviour space:";
  for rank = 0 to 4 do
    let i = order.(rank) in
    Printf.printf "  %d. %-45s %8.3f\n" (rank + 1)
      ctx.E.Context.mica.Mica_core.Dataset.names.(i)
      distances.(i)
  done;
  let max_d = Mica_core.Space.max_distance space in
  if distances.(order.(0)) > 0.2 *. max_d then
    print_endline
      "\nno existing benchmark is close: this workload brings behaviour the suite lacks."
  else
    Printf.printf
      "\nthe closest benchmark is within 20%% of the maximum pair distance: existing suites\n\
       already cover this behaviour reasonably well.\n"
