(* SimPoint-style phase analysis of a workload (related work the paper
   builds on: Sherwood et al., Lau et al.).

   Collects basic-block vectors per interval, clusters intervals with
   k-means + BIC, and prints the phase timeline, per-phase weights and
   representative intervals — the information SimPoint uses to pick
   simulation points.

     dune exec examples/phase_analysis.exe [WORKLOAD]   (default: gcc/166) *)

let () =
  let name = if Array.length Sys.argv >= 2 then Sys.argv.(1) else "gcc/166" in
  let w =
    match Mica_workloads.Registry.find name with
    | Some w -> w
    | None -> (
      match Mica_workloads.Registry.matching name with
      | [ w ] -> w
      | _ ->
        Printf.eprintf "unknown or ambiguous workload %S\n" name;
        exit 2)
  in
  let icount = 400_000 and interval = 10_000 in
  Printf.printf "phase analysis of %s (%d instructions, %d-instruction intervals)\n\n"
    (Mica_workloads.Workload.id w) icount interval;
  let t = Mica_core.Phases.analyze ~interval w.Mica_workloads.Workload.model ~icount in
  print_string (Mica_core.Phases.render t);
  print_endline
    "\nintervals sharing a letter execute similar code (similar basic-block vectors);\n\
     simulating only each phase's representative interval, weighted by phase size,\n\
     approximates whole-program behaviour at a fraction of the cost."
