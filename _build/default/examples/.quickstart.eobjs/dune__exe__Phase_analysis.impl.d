examples/phase_analysis.ml: Array Mica_core Mica_workloads Printf Sys
