examples/quickstart.mli:
