examples/quickstart.ml: Array Mica_analysis Mica_core Mica_uarch Mica_workloads Printf
