examples/suite_overlap.ml: Array List Mica_analysis Mica_core Mica_select Mica_workloads Printf String Sys
