examples/custom_workload.ml: Array Fun Mica_analysis Mica_core Mica_trace Printf
