examples/compare_two.ml: Array Mica_core Mica_workloads Printf Sys
