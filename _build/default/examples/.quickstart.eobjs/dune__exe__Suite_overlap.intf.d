examples/suite_overlap.mli:
