examples/compare_two.mli:
