(* Does an emerging benchmark suite add anything beyond SPEC CPU2000?

   This is the paper's motivating question (section VI).  For every
   benchmark of the chosen suite we find its nearest SPEC CPU2000
   benchmark in the key-characteristic space; benchmarks whose nearest
   SPEC neighbour is far away represent genuinely new behaviour that SPEC
   does not cover.

     dune exec examples/suite_overlap.exe [SUITE]    (default: BioInfoMark) *)

module E = Mica_core.Experiments
module W = Mica_workloads

let () =
  let suite =
    if Array.length Sys.argv >= 2 then
      match W.Suite.of_name Sys.argv.(1) with
      | Some s -> s
      | None ->
        Printf.eprintf "unknown suite %s\n" Sys.argv.(1);
        exit 2
    else W.Suite.BioInfoMark
  in
  Printf.printf "loading the 122-benchmark space (cached after the first run)...\n%!";
  let ctx = E.Context.load () in
  Printf.printf "selecting key characteristics with the genetic algorithm...\n%!";
  let ga = E.run_ga ctx in
  let selected = ga.Mica_select.Genetic.selected in
  Printf.printf "key characteristics: %s\n\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun c -> Mica_analysis.Characteristics.short_names.(c)) selected)));

  (* distances in the reduced space *)
  let reduced = Mica_core.Dataset.select_features ctx.E.Context.mica selected in
  let space = Mica_core.Space.of_dataset reduced in
  let name i = reduced.Mica_core.Dataset.names.(i) in
  let is_spec i =
    String.length (name i) >= 8 && String.sub (name i) 0 8 = "SPEC2000"
  in
  let n = Mica_core.Space.n space in
  let suite_prefix = W.Suite.name suite ^ "/" in
  let in_suite i =
    String.length (name i) >= String.length suite_prefix
    && String.sub (name i) 0 (String.length suite_prefix) = suite_prefix
  in
  let max_d = Mica_core.Space.max_distance space in

  Printf.printf "%-45s %-35s %9s\n" (W.Suite.name suite ^ " benchmark") "nearest SPEC CPU2000"
    "distance";
  print_endline (String.make 95 '-');
  let rows = ref [] in
  for i = 0 to n - 1 do
    if in_suite i then begin
      let best = ref (-1) and best_d = ref infinity in
      for j = 0 to n - 1 do
        if is_spec j then begin
          let d = Mica_core.Space.distance space i j in
          if d < !best_d then begin
            best_d := d;
            best := j
          end
        end
      done;
      rows := (name i, name !best, !best_d) :: !rows
    end
  done;
  let rows = List.sort (fun (_, _, a) (_, _, b) -> compare b a) !rows in
  List.iter
    (fun (bench, spec, d) ->
      let marker = if d > 0.2 *. max_d then "  <- new behaviour" else "" in
      Printf.printf "%-45s %-35s %9.3f%s\n" bench spec d marker)
    rows;
  Printf.printf
    "\n(distances above %.3f — 20%% of the maximum pair distance — mark benchmarks whose\n\
     behaviour SPEC CPU2000 does not cover)\n"
    (0.2 *. max_d)
