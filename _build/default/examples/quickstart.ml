(* Quickstart: characterize one benchmark model.

   Generates a trace for SPEC2000 bzip2 (graphic input), measures the 47
   microarchitecture-independent characteristics and the 7
   hardware-counter metrics from that single trace, and prints both.

     dune exec examples/quickstart.exe *)

let () =
  let workload = Mica_workloads.Registry.find_exn "SPEC2000/bzip2/graphic" in
  let config = { Mica_core.Pipeline.default_config with Mica_core.Pipeline.cache_dir = None } in
  Printf.printf "characterizing %s over %d dynamic instructions...\n\n"
    (Mica_workloads.Workload.id workload)
    config.Mica_core.Pipeline.icount;

  let mica, hpc = Mica_core.Pipeline.characterize config workload in

  print_endline "microarchitecture-independent characteristics (Table II order):";
  Array.iteri
    (fun i v ->
      Printf.printf "  %2d %-10s %12.4f   %s\n" (i + 1)
        Mica_analysis.Characteristics.short_names.(i)
        v
        Mica_analysis.Characteristics.names.(i))
    mica;

  print_endline "\nhardware performance counter view of the same trace:";
  Array.iteri
    (fun i v -> Printf.printf "  %-10s %10.4f   %s\n" Mica_uarch.Hw_counters.short_names.(i) v
        Mica_uarch.Hw_counters.names.(i))
    hpc
