(* The paper's case study (section IV, Figures 2 and 3): bzip2 versus
   blast.

   On the hardware-counter view the two benchmarks look deceptively alike;
   the microarchitecture-independent view shows how different they really
   are (working sets, strides, branch structure).  This example prints
   both views and the two distances.

     dune exec examples/compare_two.exe [WORKLOAD_A WORKLOAD_B] *)

module E = Mica_core.Experiments

let () =
  let a, b =
    if Array.length Sys.argv >= 3 then (Sys.argv.(1), Sys.argv.(2))
    else ("SPEC2000/bzip2/graphic", "BioInfoMark/blast/protein")
  in
  let resolve n = Mica_workloads.Workload.id (Mica_workloads.Registry.find_exn n) in
  let a = resolve a and b = resolve b in
  Printf.printf "loading the 122-benchmark space (cached after the first run)...\n%!";
  let ctx = E.Context.load () in

  print_endline "\n=== hardware performance counters + instruction mix (Figure 2 style) ===";
  print_string (Mica_core.Case_study.render (E.fig2 ~a ~b ctx));

  print_endline "\n=== microarchitecture-independent characteristics (Figure 3 style) ===";
  print_string (Mica_core.Case_study.render (E.fig3 ~a ~b ctx));

  let dm = Mica_core.Space.distance_by_name ctx.E.Context.mica_space a b in
  let dh = Mica_core.Space.distance_by_name ctx.E.Context.hpc_space a b in
  let mm = Mica_core.Space.max_distance ctx.E.Context.mica_space in
  let hm = Mica_core.Space.max_distance ctx.E.Context.hpc_space in
  Printf.printf "\ndistance summary:\n";
  Printf.printf "  inherent (MICA) space: %6.3f  (%.0f%% of the max pair distance)\n" dm
    (100.0 *. dm /. mm);
  Printf.printf "  counter (HPC) space:   %6.3f  (%.0f%% of the max pair distance)\n" dh
    (100.0 *. dh /. hm);
  if dm /. mm > 0.2 && dh /. hm < dm /. mm then
    print_endline
      "\nthe pair is much closer in the counter space than in the inherent space:\n\
       exactly the pitfall the paper warns about."
