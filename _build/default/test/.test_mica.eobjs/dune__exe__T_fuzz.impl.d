test/t_fuzz.ml: Alcotest Array Filename Float Fun Gen List Mica_analysis Mica_isa Mica_trace Mica_uarch Mica_workloads Printf QCheck2 Sys Tutil
