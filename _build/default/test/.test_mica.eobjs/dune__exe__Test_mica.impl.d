test/test_mica.ml: Alcotest T_analysis T_core T_extensions T_families T_fuzz T_golden T_isa T_rng T_select T_stats T_trace T_uarch T_util T_verify T_workloads
