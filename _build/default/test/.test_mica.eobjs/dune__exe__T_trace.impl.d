test/t_trace.ml: Alcotest Array Filename Fun List Mica_analysis Mica_isa Mica_trace Mica_util Option Printf QCheck2 Result Sys Tutil
