test/tutil.ml: Alcotest List Mica_isa Mica_trace QCheck2 QCheck_alcotest
