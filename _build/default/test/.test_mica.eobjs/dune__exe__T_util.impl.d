test/t_util.ml: Alcotest Filename Fun List Mica_util QCheck2 String Sys Tutil
