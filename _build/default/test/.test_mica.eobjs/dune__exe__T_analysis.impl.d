test/t_analysis.ml: Alcotest Array Float Fun List Mica_analysis Mica_isa Mica_trace Mica_util Tutil
