test/test_mica.mli:
