test/t_select.ml: Alcotest Array Fun List Mica_select Mica_stats Mica_util Tutil
