test/t_uarch.ml: Alcotest Array Float List Mica_isa Mica_trace Mica_uarch Mica_util Mica_workloads QCheck2 Tutil
