test/t_workloads.ml: Alcotest List Mica_analysis Mica_trace Mica_workloads
