test/t_golden.ml: Alcotest Array Float List Mica_analysis Mica_uarch Mica_workloads
