test/t_isa.ml: Alcotest Fun List Mica_isa String Tutil
