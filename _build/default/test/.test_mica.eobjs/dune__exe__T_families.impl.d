test/t_families.ml: Alcotest Array Float List Mica_analysis Mica_stats Mica_trace Mica_workloads
