test/t_stats.ml: Alcotest Array Float List Mica_stats Mica_util Tutil
