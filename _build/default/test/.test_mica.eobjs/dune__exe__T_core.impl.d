test/t_core.ml: Alcotest Array Filename Fun List Mica_core Mica_select Mica_stats Mica_util Mica_workloads Printf String Sys Tutil
