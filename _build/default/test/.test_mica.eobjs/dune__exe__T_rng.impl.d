test/t_rng.ml: Alcotest Array Fun Hashtbl Int64 Mica_stats Mica_util Option QCheck2 Tutil
