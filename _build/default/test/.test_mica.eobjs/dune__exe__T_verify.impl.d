test/t_verify.ml: Alcotest Array Filename Format Fun List Mica_analysis Mica_core Mica_isa Mica_trace Mica_verify Mica_workloads Printf Random String Sys T_fuzz Tutil Unix
