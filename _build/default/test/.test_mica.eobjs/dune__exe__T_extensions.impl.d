test/t_extensions.ml: Alcotest Array Float Fun List Mica_analysis Mica_core Mica_select Mica_stats Mica_trace Mica_uarch Mica_util Mica_workloads Printf String Tutil
