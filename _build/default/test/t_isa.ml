module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg
module Instr = Mica_isa.Instr

let test_opcode_classes () =
  Alcotest.(check bool) "load is mem" true (Opcode.is_mem Opcode.Load);
  Alcotest.(check bool) "store is mem" true (Opcode.is_mem Opcode.Store);
  Alcotest.(check bool) "alu not mem" false (Opcode.is_mem Opcode.Int_alu);
  Alcotest.(check bool) "branch is control" true (Opcode.is_control Opcode.Branch);
  Alcotest.(check bool) "call is control" true (Opcode.is_control Opcode.Call);
  Alcotest.(check bool) "return is control" true (Opcode.is_control Opcode.Return);
  Alcotest.(check bool) "only branch is cond" true (Opcode.is_cond_branch Opcode.Branch);
  Alcotest.(check bool) "jump not cond" false (Opcode.is_cond_branch Opcode.Jump);
  Alcotest.(check bool) "fp_mul is fp" true (Opcode.is_fp Opcode.Fp_mul);
  Alcotest.(check bool) "int_mul not fp" false (Opcode.is_fp Opcode.Int_mul)

let test_opcode_exhaustive_classification () =
  (* every opcode belongs to at most one of the mem/control/fp partitions *)
  List.iter
    (fun op ->
      let groups =
        [ Opcode.is_mem op; Opcode.is_control op; Opcode.is_fp op;
          Opcode.is_int_alu op; Opcode.is_int_mul op ]
      in
      let hits = List.length (List.filter Fun.id groups) in
      if hits > 1 then
        Alcotest.failf "opcode %s in %d classes" (Opcode.to_string op) hits)
    Opcode.all

let test_latencies_positive () =
  List.iter
    (fun op ->
      if Opcode.latency op < 1 then
        Alcotest.failf "latency of %s < 1" (Opcode.to_string op))
    Opcode.all;
  Alcotest.(check bool) "div slower than add" true
    (Opcode.latency Opcode.Fp_div > Opcode.latency Opcode.Fp_add)

let test_reg_helpers () =
  Alcotest.(check bool) "none" true (Reg.is_none Reg.none);
  Alcotest.(check bool) "r0 is int" true (Reg.is_int 0);
  Alcotest.(check bool) "f0 is fp" true (Reg.is_fp Reg.fp_base);
  Alcotest.(check bool) "r31 carries no dependency" false (Reg.carries_dependency Reg.zero);
  Alcotest.(check bool) "r5 carries dependency" true (Reg.carries_dependency 5);
  Alcotest.(check bool) "none carries no dependency" false (Reg.carries_dependency Reg.none);
  Alcotest.(check string) "int name" "r4" (Reg.to_string 4);
  Alcotest.(check string) "fp name" "f2" (Reg.to_string (Reg.fp_base + 2));
  Alcotest.(check string) "none name" "-" (Reg.to_string Reg.none);
  Alcotest.(check int) "64 registers" 64 Reg.count

let test_instr_next_pc () =
  let i = Tutil.alu ~pc:0x100 () in
  Alcotest.(check int) "sequential" 0x104 (Instr.next_pc i);
  let b_taken = Tutil.branch ~pc:0x100 ~taken:true ~target:0x500 () in
  Alcotest.(check int) "taken branch" 0x500 (Instr.next_pc b_taken);
  let b_not = Tutil.branch ~pc:0x100 ~taken:false ~target:0x500 () in
  Alcotest.(check int) "not-taken branch" 0x104 (Instr.next_pc b_not)

let test_instr_source_count () =
  Alcotest.(check int) "no sources" 0 (Instr.source_count (Tutil.alu ()));
  Alcotest.(check int) "one source" 1 (Instr.source_count (Tutil.alu ~src1:3 ()));
  Alcotest.(check int) "two sources" 2 (Instr.source_count (Tutil.alu ~src1:3 ~src2:4 ()))

let test_instr_reads_writes () =
  let i = Tutil.alu ~src1:3 ~src2:4 ~dst:5 () in
  Alcotest.(check bool) "reads src1" true (Instr.reads_reg i 3);
  Alcotest.(check bool) "reads src2" true (Instr.reads_reg i 4);
  Alcotest.(check bool) "does not read dst" false (Instr.reads_reg i 5);
  Alcotest.(check bool) "writes dst" true (Instr.writes_reg i 5);
  Alcotest.(check bool) "never reads none" false (Instr.reads_reg (Tutil.alu ()) (-1))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_instr_to_string () =
  let s = Instr.to_string (Tutil.load ~pc:0x40 ~src1:1 ~dst:2 ~addr:0xbeef ()) in
  Alcotest.(check bool) "mentions opcode" true (contains s "load");
  Alcotest.(check bool) "mentions address" true (contains s "beef");
  let b = Instr.to_string (Tutil.branch ~pc:0x40 ~taken:true ~target:0x80 ()) in
  Alcotest.(check bool) "taken marker" true (contains b "T->")

let suite =
  ( "isa",
    [
      Alcotest.test_case "opcode classes" `Quick test_opcode_classes;
      Alcotest.test_case "classification partition" `Quick test_opcode_exhaustive_classification;
      Alcotest.test_case "latencies" `Quick test_latencies_positive;
      Alcotest.test_case "registers" `Quick test_reg_helpers;
      Alcotest.test_case "next_pc" `Quick test_instr_next_pc;
      Alcotest.test_case "source_count" `Quick test_instr_source_count;
      Alcotest.test_case "reads/writes" `Quick test_instr_reads_writes;
      Alcotest.test_case "to_string" `Quick test_instr_to_string;
    ] )
