module Ring = Mica_util.Ring
module Csv = Mica_util.Csv

(* ---------------- Ring ---------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  Alcotest.(check bool) "not full" false (Ring.is_full r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check int) "length 2" 2 (Ring.length r);
  Alcotest.(check int) "newest" 2 (Ring.get r 0);
  Alcotest.(check int) "older" 1 (Ring.get r 1);
  Alcotest.(check int) "oldest" 1 (Ring.oldest r)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check int) "newest is 5" 5 (Ring.get r 0);
  Alcotest.(check int) "oldest is 3" 3 (Ring.oldest r);
  let collected = ref [] in
  Ring.iter r (fun x -> collected := x :: !collected);
  Alcotest.(check (list int)) "iter newest->oldest" [ 3; 4; 5 ] !collected

let test_ring_clear () =
  let r = Ring.create ~capacity:2 in
  Ring.push r 9;
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r)

let prop_ring_model =
  Tutil.qcheck_case "ring matches list model"
    QCheck2.Gen.(pair (int_range 1 16) (list (int_bound 1000)))
    (fun (cap, xs) ->
      let r = Ring.create ~capacity:cap in
      List.iter (Ring.push r) xs;
      let expected =
        let rec last_n n l = if List.length l <= n then l else last_n n (List.tl l) in
        List.rev (last_n cap xs)
      in
      let actual = List.init (Ring.length r) (Ring.get r) in
      actual = expected)

(* ---------------- Csv ---------------- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b")

let test_csv_parse () =
  Alcotest.(check (list string)) "simple" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ] (Csv.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ] (Csv.parse_line "\"a\"\"b\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ] (Csv.parse_line ",,")

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "mica_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rows = [ [ "name"; "x,y"; "q\"q" ]; [ "1"; "2"; "3" ] ] in
      Csv.to_file path rows;
      Alcotest.(check (list (list string))) "roundtrip" rows (Csv.of_file path))

let prop_csv_roundtrip =
  let field_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; ' '; 'z' ]) (int_range 0 8))
  in
  Tutil.qcheck_case "csv line roundtrip"
    QCheck2.Gen.(list_size (int_range 1 6) field_gen)
    (fun fields ->
      let line = String.concat "," (List.map Csv.escape_field fields) in
      Csv.parse_line line = fields)

let suite =
  ( "util",
    [
      Alcotest.test_case "ring basics" `Quick test_ring_basic;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "ring clear" `Quick test_ring_clear;
      prop_ring_model;
      Alcotest.test_case "csv escaping" `Quick test_csv_escape;
      Alcotest.test_case "csv parsing" `Quick test_csv_parse;
      Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
      prop_csv_roundtrip;
    ] )
