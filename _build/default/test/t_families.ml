(* Qualitative checks of the workload-family builders: every archetype must
   produce a valid program whose measured characteristics exhibit the
   behaviour the family claims to model.  These are the tests that keep the
   122 benchmark models honest. *)

module F = Mica_workloads.Families
module A = Mica_analysis
module P = Mica_trace.Program

let icount = 30_000

let analyze program = A.Analyzer.analyze_full program ~icount

let all_families =
  [
    ("tiny_dsp_loop", F.tiny_dsp_loop ~name:"fam/tiny" ());
    ("dsp_transform", F.dsp_transform ~name:"fam/dsp" ());
    ("block_codec", F.block_codec ~name:"fam/block" ());
    ("bitstream_codec", F.bitstream_codec ~name:"fam/bitstream" ());
    ("table_crypto", F.table_crypto ~name:"fam/crypto" ());
    ("pointer_network", F.pointer_network ~name:"fam/net" ());
    ("graph_optimizer", F.graph_optimizer ~name:"fam/graph" ());
    ("interpreter", F.interpreter ~name:"fam/interp" ());
    ("oo_database", F.oo_database ~name:"fam/oodb" ());
    ("fp_stencil", F.fp_stencil ~name:"fam/stencil" ());
    ("fp_dense", F.fp_dense ~name:"fam/dense" ());
    ("fp_stream", F.fp_stream ~name:"fam/stream" ());
    ("seq_search", F.seq_search ~name:"fam/search" ());
    ("dynamic_prog", F.dynamic_prog ~name:"fam/dp" ());
    ("tree_search", F.tree_search ~name:"fam/tree" ());
    ("sort_kernel", F.sort_kernel ~name:"fam/sort" ());
    ("bit_kernel", F.bit_kernel ~name:"fam/bit" ());
    ("speech_synth", F.speech_synth ~name:"fam/speech" ());
    ("raytracer", F.raytracer ~name:"fam/ray" ());
    ("sw_render", F.sw_render ~name:"fam/render" ());
  ]

let test_all_families_valid () =
  List.iter
    (fun (name, program) ->
      match P.validate program with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "family %s invalid: %s" name msg)
    all_families

let test_all_families_generate_and_analyze () =
  List.iter
    (fun (name, program) ->
      let a = analyze program in
      let v = A.Analyzer.vector a in
      Array.iteri
        (fun i x ->
          if Float.is_nan x then Alcotest.failf "family %s: characteristic %d NaN" name i)
        v;
      if A.Analyzer.instructions a <> icount then Alcotest.failf "family %s truncated" name)
    all_families

(* -------- per-family qualitative properties -------- *)

let mix name = A.Analyzer.mix (analyze (List.assoc name all_families))
let ws name = A.Analyzer.working_set (analyze (List.assoc name all_families))
let ppm name = A.Analyzer.ppm_miss_rates (analyze (List.assoc name all_families))
let ilp name = A.Analyzer.ilp_ipc (analyze (List.assoc name all_families))

let test_fp_families_have_fp () =
  List.iter
    (fun fam ->
      let m = mix fam in
      if m.A.Mix.frac_fp < 0.1 then
        Alcotest.failf "%s should be FP-heavy (got %.3f)" fam m.A.Mix.frac_fp)
    [ "fp_stencil"; "fp_dense"; "fp_stream" ];
  List.iter
    (fun fam ->
      let m = mix fam in
      if m.A.Mix.frac_fp > 0.01 then Alcotest.failf "%s should be integer-only" fam)
    [ "bitstream_codec"; "table_crypto"; "pointer_network"; "bit_kernel" ]

let test_tiny_kernels_are_predictable () =
  let tiny = ppm "tiny_dsp_loop" and bitstream = ppm "bitstream_codec" in
  (* GAg miss rate: tiny DSP loops far more predictable than compressors *)
  Alcotest.(check bool) "tiny << bitstream" true (tiny.(0) < bitstream.(0) /. 2.0)

let test_working_set_ordering () =
  let pages fam = (ws fam).A.Working_set.data_pages in
  let tiny = pages "tiny_dsp_loop" and graph = pages "graph_optimizer" in
  Alcotest.(check bool) "graph optimizer touches far more pages" true (graph > 10 * tiny)

let test_interpreter_code_footprint () =
  let iblocks fam = (ws fam).A.Working_set.instr_blocks in
  let interp = iblocks "interpreter" and tiny = iblocks "tiny_dsp_loop" in
  Alcotest.(check bool) "interpreter I-footprint dwarfs kernels" true (interp > 10 * tiny)

let test_stencil_ilp_beats_serial_dsp () =
  (* idealized (perfect-memory) ILP: independent array iterations expose
     far more parallelism than a serial DSP feedback recurrence *)
  let stencil = (ilp "fp_stencil").(3) and dsp = (ilp "tiny_dsp_loop").(3) in
  Alcotest.(check bool) "array sweeps out-parallelize feedback loops" true
    (stencil > 2.0 *. dsp)

let test_bit_kernel_mix () =
  let m = mix "bit_kernel" in
  Alcotest.(check bool) "bit kernel is ALU-dominated" true (m.A.Mix.frac_arith > 0.5);
  Alcotest.(check bool) "few memory ops" true (m.A.Mix.frac_load +. m.A.Mix.frac_store < 0.25)

let test_sw_render_store_heavy () =
  let render = mix "sw_render" and search = mix "seq_search" in
  Alcotest.(check bool) "renderer stores more than a scanner" true
    (render.A.Mix.frac_store > 2.0 *. search.A.Mix.frac_store)

let test_family_distinctness () =
  (* distinct archetypes must be distinguishable in the normalized space:
     characterize all, then check that no two have near-identical vectors *)
  let vectors =
    List.map (fun (name, p) -> (name, A.Analyzer.vector (analyze p))) all_families
  in
  let matrix = Array.of_list (List.map snd vectors) in
  let names = Array.of_list (List.map fst vectors) in
  let normalized = Mica_stats.Normalize.zscore matrix in
  let n = Array.length normalized in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Mica_stats.Distance.euclidean normalized.(i) normalized.(j) in
      if d < 0.5 then
        Alcotest.failf "families %s and %s are nearly identical (distance %.3f)" names.(i)
          names.(j) d
    done
  done

let suite =
  ( "families",
    [
      Alcotest.test_case "all valid" `Quick test_all_families_valid;
      Alcotest.test_case "all generate and analyze" `Slow test_all_families_generate_and_analyze;
      Alcotest.test_case "fp families" `Slow test_fp_families_have_fp;
      Alcotest.test_case "tiny kernels predictable" `Slow test_tiny_kernels_are_predictable;
      Alcotest.test_case "working set ordering" `Slow test_working_set_ordering;
      Alcotest.test_case "interpreter code footprint" `Slow test_interpreter_code_footprint;
      Alcotest.test_case "stencil ILP" `Slow test_stencil_ilp_beats_serial_dsp;
      Alcotest.test_case "bit kernel mix" `Slow test_bit_kernel_mix;
      Alcotest.test_case "renderer store-heavy" `Slow test_sw_render_store_heavy;
      Alcotest.test_case "families distinct" `Slow test_family_distinctness;
    ] )
