(* Golden regression tests: exact characteristic vectors for three
   contrasting workloads at a fixed trace length, pinned at model version
   "v3".  Any change to the generator, the workload profiles or an analyzer
   that alters measured behaviour will fail here — bump
   Mica_core.Pipeline.model_version and regenerate the constants when the
   change is intentional (see the generator snippet in the repo history /
   DESIGN.md determinism notes). *)

let golden_icount = 5_000

let golden =
  [
    ("MiBench/sha/large",
     [|
        0.2094; 0.1046; 0.157; 0.529;
        0.; 0.; 6.32911392405; 9.52380952381;
        18.5873605948; 18.5873605948; 1.581; 2.14030335861;
        0.330675778284; 0.467096937484; 0.66755251835; 0.769045811187;
        0.868134649456; 1.; 1.; 196.;
        4.; 3.; 1.; 0.;
        1.; 1.; 1.; 1.;
        0.; 0.; 0.; 0.;
        0.250478011472; 0.; 1.; 1.;
        1.; 1.; 0.; 0.;
        0.; 0.; 1.; 0.0229591836735;
        0.0420918367347; 0.0229591836735; 0.0420918367347;
     |]);
    ("SPEC2000/mcf/ref",
     [|
        0.3436; 0.0638; 0.1768; 0.4158;
        0.; 0.; 10.6837606838; 19.6078431373;
        21.4592274678; 21.5517241379; 1.432; 1.87516460363;
        0.193820224719; 0.45393258427; 0.551123595506; 0.629634831461;
        0.679775280899; 0.924157303371; 0.931741573034; 1792.;
        1031.; 4.; 1.; 0.;
        0.; 0.; 0.0046783625731; 0.0315789473684;
        0.; 0.; 0.; 0.;
        0.; 0.712933753943; 0.712933753943; 0.712933753943;
        0.712933753943; 0.716088328076; 0.421383647799; 0.421383647799;
        0.421383647799; 0.421383647799; 0.421383647799; 0.2313860252;
        0.234822451317; 0.184421534937; 0.201603665521;
     |]);
    ("SPEC2000/swim/ref",
     [|
        0.277; 0.1274; 0.0424; 0.191;
        0.; 0.3622; 5.21920668058; 5.21920668058;
        5.21920668058; 5.21920668058; 1.6168; 1.9173693086;
        0.13481593165; 0.255057167986; 0.415881392135; 0.641663525569;
        0.921221258952; 0.989320266365; 0.990074129916; 1232.;
        964.; 7.; 1.; 0.;
        0.617067833698; 0.617067833698; 0.617067833698; 1.;
        0.; 0.; 0.; 0.;
        0.; 0.; 0.334389857369; 0.334389857369;
        0.334389857369; 1.; 0.; 0.;
        0.; 0.; 0.; 0.0283018867925;
        0.0283018867925; 0.0283018867925; 0.0283018867925;
     |]);
  ]

(* The 7-element hardware-counter vectors of the same three workloads at the
   same trace length, pinning the machine models (EV56/EV67 timing, caches,
   TLB, branch predictor) the way the vectors above pin the analyzers.
   Regenerate together with the MICA vectors on an intentional
   model_version bump. *)
let golden_hpc =
  [
    ("MiBench/sha/large",
     [| 0.530110262935; 0.0459183673469; 0.124840764331; 0.0006; 0.51256281407;
        0.00127388535032; 1.22518990444 |]);
    ("SPEC2000/mcf/ref",
     [| 0.0335392644169; 0.205040091638; 0.888070692194; 0.0008; 0.981798124655;
        0.690230731468; 0.155342218908 |]);
    ("SPEC2000/swim/ref",
     [| 0.0603937673632; 0.0377358490566; 0.624629080119; 0.0014; 0.868503937008;
        0.246290801187; 0.360490266763 |]);
  ]

let check_pinned ~what name expected v =
  Alcotest.(check int) "vector length" (Array.length expected) (Array.length v);
  Array.iteri
    (fun i x ->
      if Float.abs (x -. expected.(i)) > 1e-9 +. (1e-9 *. Float.abs expected.(i)) then
        Alcotest.failf "%s: %s %d drifted: %.12g <> %.12g (pinned)" name what i x expected.(i))
    v

let test_golden (name, expected) () =
  let w = Mica_workloads.Registry.find_exn name in
  let v = Mica_analysis.Analyzer.analyze w.Mica_workloads.Workload.model ~icount:golden_icount in
  check_pinned ~what:"characteristic" name expected v

let test_golden_hpc (name, expected) () =
  let w = Mica_workloads.Registry.find_exn name in
  let r = Mica_uarch.Hw_counters.measure w.Mica_workloads.Workload.model ~icount:golden_icount in
  check_pinned ~what:"counter" name expected (Mica_uarch.Hw_counters.to_vector r)

let suite =
  ( "golden",
    List.map
      (fun ((name, _) as case) ->
        Alcotest.test_case ("pinned vector " ^ name) `Quick (test_golden case))
      golden
    @ List.map
        (fun ((name, _) as case) ->
          Alcotest.test_case ("pinned counters " ^ name) `Quick (test_golden_hpc case))
        golden_hpc )
