module W = Mica_workloads

let test_registry_count () =
  Alcotest.(check int) "122 benchmarks" 122 W.Registry.count;
  Alcotest.(check int) "list matches count" 122 (List.length W.Registry.all)

let test_suite_counts () =
  let count s = List.length (W.Registry.by_suite s) in
  Alcotest.(check int) "BioInfoMark" 12 (count W.Suite.BioInfoMark);
  Alcotest.(check int) "BioMetricsWorkload" 8 (count W.Suite.BioMetricsWorkload);
  Alcotest.(check int) "CommBench" 12 (count W.Suite.CommBench);
  Alcotest.(check int) "MediaBench" 12 (count W.Suite.MediaBench);
  Alcotest.(check int) "MiBench" 30 (count W.Suite.MiBench);
  Alcotest.(check int) "SPEC2000" 48 (count W.Suite.SpecCpu2000)

let test_unique_ids () =
  let ids = List.map W.Workload.id W.Registry.all in
  Alcotest.(check int) "ids unique" 122 (List.length (List.sort_uniq compare ids))

let test_all_models_valid () =
  List.iter
    (fun (w : W.Workload.t) ->
      match Mica_trace.Program.validate w.W.Workload.model with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" (W.Workload.id w) msg)
    W.Registry.all

let test_all_models_generate () =
  (* every model must actually produce a trace *)
  List.iter
    (fun (w : W.Workload.t) ->
      let sink, read = Mica_trace.Sink.counter () in
      let n = Mica_trace.Generator.run w.W.Workload.model ~icount:500 ~sink in
      if n <> 500 || read () <> 500 then Alcotest.failf "%s truncated" (W.Workload.id w))
    W.Registry.all

let test_icounts_positive () =
  List.iter
    (fun (w : W.Workload.t) ->
      if w.W.Workload.icount_millions <= 0 then
        Alcotest.failf "%s has non-positive icount" (W.Workload.id w))
    W.Registry.all

let test_paper_icounts_spotcheck () =
  let check name expected =
    let w = W.Registry.find_exn name in
    Alcotest.(check int) name expected w.W.Workload.icount_millions
  in
  check "BioInfoMark/blast/protein" 81_092;
  check "SPEC2000/mcf/ref" 59_800;
  check "MiBench/adpcm/rawcaudio" 758;
  check "CommBench/tcp/tcp" 58;
  check "MediaBench/mesa/osdemo" 10;
  check "BioMetricsWorkload/speak/decode" 46_648

let test_find_variants () =
  Alcotest.(check bool) "by id" true (W.Registry.find "SPEC2000/bzip2/graphic" <> None);
  Alcotest.(check bool) "by program/input" true (W.Registry.find "bzip2/graphic" <> None);
  Alcotest.(check bool) "by label" true (W.Registry.find "bzip2.graphic" <> None);
  Alcotest.(check bool) "unique program name" true (W.Registry.find "blast" <> None);
  Alcotest.(check bool) "ambiguous program name" true (W.Registry.find "bzip2" = None);
  Alcotest.(check bool) "unknown" true (W.Registry.find "nonexistent" = None);
  Alcotest.(check bool) "case-insensitive" true (W.Registry.find "spec2000/MCF/ref" <> None)

let test_find_exn () =
  try
    ignore (W.Registry.find_exn "nonexistent");
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_matching () =
  let gcc = W.Registry.matching "gcc" in
  Alcotest.(check int) "five gcc inputs" 5 (List.length gcc);
  Alcotest.(check int) "everything" 122 (List.length (W.Registry.matching ""))

let test_suite_names () =
  List.iter
    (fun s ->
      match W.Suite.of_name (W.Suite.name s) with
      | Some s' when s' = s -> ()
      | Some _ | None -> Alcotest.failf "suite roundtrip failed for %s" (W.Suite.name s))
    W.Suite.all;
  Alcotest.(check bool) "unknown suite" true (W.Suite.of_name "nope" = None)

let test_workload_labels () =
  let w = W.Registry.find_exn "SPEC2000/bzip2/graphic" in
  Alcotest.(check string) "id" "SPEC2000/bzip2/graphic" (W.Workload.id w);
  Alcotest.(check string) "label" "bzip2.graphic" (W.Workload.label w)

let test_distinct_benchmarks_distinct_traces () =
  (* the two adpcm inputs share a family but must not produce identical
     traces (independent name-derived seeds) *)
  let a = W.Registry.find_exn "MiBench/adpcm/rawcaudio" in
  let b = W.Registry.find_exn "MiBench/adpcm/rawdaudio" in
  let ta = Mica_trace.Generator.preview a.W.Workload.model ~n:300 in
  let tb = Mica_trace.Generator.preview b.W.Workload.model ~n:300 in
  Alcotest.(check bool) "traces differ" true (ta <> tb)

let test_family_contrast () =
  (* sanity of the modeling: blast must touch far more data pages than
     adpcm at equal trace length *)
  let ws name =
    let w = W.Registry.find_exn name in
    let t = Mica_analysis.Working_set.create () in
    let (_ : int) =
      Mica_trace.Generator.run w.W.Workload.model ~icount:50_000
        ~sink:(Mica_analysis.Working_set.sink t)
    in
    (Mica_analysis.Working_set.result t).Mica_analysis.Working_set.data_pages
  in
  let blast = ws "BioInfoMark/blast/protein" and adpcm = ws "MiBench/adpcm/rawcaudio" in
  Alcotest.(check bool) "blast working set dwarfs adpcm" true (blast > 20 * adpcm)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "registry count" `Quick test_registry_count;
      Alcotest.test_case "suite counts" `Quick test_suite_counts;
      Alcotest.test_case "unique ids" `Quick test_unique_ids;
      Alcotest.test_case "models valid" `Quick test_all_models_valid;
      Alcotest.test_case "models generate" `Slow test_all_models_generate;
      Alcotest.test_case "icounts positive" `Quick test_icounts_positive;
      Alcotest.test_case "paper icounts" `Quick test_paper_icounts_spotcheck;
      Alcotest.test_case "find variants" `Quick test_find_variants;
      Alcotest.test_case "find_exn" `Quick test_find_exn;
      Alcotest.test_case "matching" `Quick test_matching;
      Alcotest.test_case "suite names" `Quick test_suite_names;
      Alcotest.test_case "labels" `Quick test_workload_labels;
      Alcotest.test_case "independent seeds" `Quick test_distinct_benchmarks_distinct_traces;
      Alcotest.test_case "family contrast" `Quick test_family_contrast;
    ] )
