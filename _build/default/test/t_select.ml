module Select = Mica_select
module S = Mica_stats
module Rng = Mica_util.Rng

(* A synthetic dataset with known structure: 3 informative independent
   columns, plus redundant copies and pure-noise columns of tiny scale.
   After z-scoring, the informative columns (and their copies) carry the
   distance structure. *)
let synthetic_data rng =
  Array.init 40 (fun _ ->
      let a = Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
      let b = Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
      let c = Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
      [|
        a;
        b;
        c;
        a +. (0.01 *. Rng.gaussian rng ~mu:0.0 ~sigma:1.0);  (* copy of a *)
        b +. (0.01 *. Rng.gaussian rng ~mu:0.0 ~sigma:1.0);  (* copy of b *)
        Rng.gaussian rng ~mu:0.0 ~sigma:1.0;  (* independent noise *)
      |])

let make_fitness rng =
  let data = synthetic_data rng in
  let normalized = S.Normalize.zscore data in
  (data, Select.Fitness.create normalized)

(* ---------------- fitness ---------------- *)

let test_fitness_full_set_rho_one () =
  let rng = Rng.create ~seed:1L in
  let _, fit = make_fitness rng in
  let all = Array.init (Select.Fitness.n_characteristics fit) Fun.id in
  Alcotest.check Tutil.feq_loose "full subset reproduces distances exactly" 1.0
    (Select.Fitness.rho fit all)

let test_fitness_empty_subset () =
  let rng = Rng.create ~seed:2L in
  let _, fit = make_fitness rng in
  Alcotest.check Tutil.feq "empty rho" 0.0 (Select.Fitness.rho fit [||]);
  Alcotest.check Tutil.feq "empty fitness" 0.0 (Select.Fitness.paper_fitness fit [||])

let test_fitness_counts () =
  let rng = Rng.create ~seed:3L in
  let _, fit = make_fitness rng in
  Alcotest.(check int) "N" 6 (Select.Fitness.n_characteristics fit);
  Alcotest.(check int) "pairs" (40 * 39 / 2) (Select.Fitness.n_pairs fit)

let test_fitness_subset_distances_match_manual () =
  let rng = Rng.create ~seed:4L in
  let data, fit = make_fitness rng in
  let normalized = S.Normalize.zscore data in
  let manual = S.Distance.condensed (S.Matrix.select_columns normalized [| 0; 2 |]) in
  let via_fitness = Select.Fitness.distances_for fit [| 0; 2 |] in
  Array.iteri
    (fun i d -> Alcotest.check Tutil.feq_loose "distance matches" d via_fitness.(i))
    manual

let test_fitness_paper_formula () =
  let rng = Rng.create ~seed:5L in
  let _, fit = make_fitness rng in
  let subset = [| 0; 1; 2 |] in
  let expected = Select.Fitness.rho fit subset *. (1.0 -. (3.0 /. 6.0)) in
  Alcotest.check Tutil.feq "f = rho * (1 - n/N)" expected
    (Select.Fitness.paper_fitness fit subset)

let test_fitness_informative_beats_noise () =
  let rng = Rng.create ~seed:6L in
  let _, fit = make_fitness rng in
  let informative = Select.Fitness.rho fit [| 0; 1; 2 |] in
  let noise_only = Select.Fitness.rho fit [| 5 |] in
  Alcotest.(check bool) "informative subset correlates better" true
    (informative > noise_only +. 0.2)

(* ---------------- correlation elimination ---------------- *)

let test_ce_removes_redundant_first () =
  let rng = Rng.create ~seed:7L in
  let data, fit = make_fitness rng in
  let steps = Select.Correlation_elimination.run ~data fit in
  (* the first removals must be among the correlated pairs {0,3} and {1,4} *)
  match steps with
  | first :: second :: _ ->
    let removed = [ first.Select.Correlation_elimination.removed;
                    second.Select.Correlation_elimination.removed ] in
    List.iter
      (fun r ->
        if not (List.mem r [ 0; 1; 3; 4 ]) then
          Alcotest.failf "removed uncorrelated column %d first" r)
      removed
  | _ -> Alcotest.fail "expected at least two steps"

let test_ce_runs_to_target () =
  let rng = Rng.create ~seed:8L in
  let data, fit = make_fitness rng in
  let steps = Select.Correlation_elimination.run ~down_to:2 ~data fit in
  Alcotest.(check int) "4 removals from 6 to 2" 4 (List.length steps);
  let last = List.nth steps 3 in
  Alcotest.(check int) "2 remain" 2
    (Array.length last.Select.Correlation_elimination.remaining)

let test_ce_remaining_consistent () =
  let rng = Rng.create ~seed:9L in
  let data, fit = make_fitness rng in
  let steps = Select.Correlation_elimination.run ~data fit in
  (* each step's remaining set excludes all removed-so-far *)
  let removed = ref [] in
  List.iter
    (fun (s : Select.Correlation_elimination.step) ->
      removed := s.Select.Correlation_elimination.removed :: !removed;
      Array.iter
        (fun r ->
          if List.mem r !removed then Alcotest.fail "removed column still in remaining")
        s.Select.Correlation_elimination.remaining)
    steps

let test_ce_subset_of_size () =
  let rng = Rng.create ~seed:10L in
  let data, fit = make_fitness rng in
  let steps = Select.Correlation_elimination.run ~data fit in
  Alcotest.(check int) "size-3 subset" 3
    (Array.length (Select.Correlation_elimination.subset_of_size steps 3));
  try
    ignore (Select.Correlation_elimination.subset_of_size steps 99);
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

(* ---------------- genetic algorithm ---------------- *)

let ga_config =
  { Select.Genetic.default_config with
    Select.Genetic.population = 24; max_generations = 80; stall_generations = 20 }

let test_ga_finds_compact_accurate_subset () =
  let rng = Rng.create ~seed:11L in
  let _, fit = make_fitness rng in
  let ga = Select.Genetic.run ~config:ga_config ~rng:(Rng.create ~seed:12L) fit in
  Alcotest.(check bool) "rho high" true (ga.Select.Genetic.rho > 0.8);
  Alcotest.(check bool) "subset compact" true (Array.length ga.Select.Genetic.selected <= 4);
  (* it must not pick both a column and its near-copy *)
  let sel = Array.to_list ga.Select.Genetic.selected in
  Alcotest.(check bool) "no redundant pair" false
    (List.mem 0 sel && List.mem 3 sel || (List.mem 1 sel && List.mem 4 sel))

let test_ga_deterministic_given_seed () =
  let rng = Rng.create ~seed:13L in
  let _, fit = make_fitness rng in
  let run () = Select.Genetic.run ~config:ga_config ~rng:(Rng.create ~seed:14L) fit in
  let a = run () and b = run () in
  Alcotest.(check bool) "same selection" true
    (a.Select.Genetic.selected = b.Select.Genetic.selected);
  Alcotest.check Tutil.feq "same fitness" a.Select.Genetic.fitness b.Select.Genetic.fitness

let test_ga_history_non_decreasing () =
  let rng = Rng.create ~seed:15L in
  let _, fit = make_fitness rng in
  let ga = Select.Genetic.run ~config:ga_config ~rng:(Rng.create ~seed:16L) fit in
  let h = ga.Select.Genetic.best_history in
  for i = 0 to Array.length h - 2 do
    if h.(i) > h.(i + 1) +. 1e-12 then Alcotest.fail "best fitness regressed"
  done

let test_ga_fitness_matches_selection () =
  let rng = Rng.create ~seed:17L in
  let _, fit = make_fitness rng in
  let ga = Select.Genetic.run ~config:ga_config ~rng:(Rng.create ~seed:18L) fit in
  Alcotest.check Tutil.feq_loose "reported fitness consistent"
    (Select.Fitness.paper_fitness fit ga.Select.Genetic.selected)
    ga.Select.Genetic.fitness

let test_ga_selected_sorted_unique () =
  let rng = Rng.create ~seed:19L in
  let _, fit = make_fitness rng in
  let ga = Select.Genetic.run ~config:ga_config ~rng:(Rng.create ~seed:20L) fit in
  let sel = Array.to_list ga.Select.Genetic.selected in
  Alcotest.(check (list int)) "sorted unique" (List.sort_uniq compare sel) sel

let suite =
  ( "select",
    [
      Alcotest.test_case "fitness full set" `Quick test_fitness_full_set_rho_one;
      Alcotest.test_case "fitness empty" `Quick test_fitness_empty_subset;
      Alcotest.test_case "fitness counts" `Quick test_fitness_counts;
      Alcotest.test_case "fitness subset distances" `Quick
        test_fitness_subset_distances_match_manual;
      Alcotest.test_case "fitness paper formula" `Quick test_fitness_paper_formula;
      Alcotest.test_case "fitness informative" `Quick test_fitness_informative_beats_noise;
      Alcotest.test_case "ce redundant first" `Quick test_ce_removes_redundant_first;
      Alcotest.test_case "ce to target" `Quick test_ce_runs_to_target;
      Alcotest.test_case "ce consistent" `Quick test_ce_remaining_consistent;
      Alcotest.test_case "ce subset_of_size" `Quick test_ce_subset_of_size;
      Alcotest.test_case "ga finds subset" `Quick test_ga_finds_compact_accurate_subset;
      Alcotest.test_case "ga deterministic" `Quick test_ga_deterministic_given_seed;
      Alcotest.test_case "ga history monotone" `Quick test_ga_history_non_decreasing;
      Alcotest.test_case "ga fitness consistent" `Quick test_ga_fitness_matches_selection;
      Alcotest.test_case "ga selection canonical" `Quick test_ga_selected_sorted_unique;
    ] )
