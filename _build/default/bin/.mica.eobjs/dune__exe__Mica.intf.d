bin/mica.mli:
