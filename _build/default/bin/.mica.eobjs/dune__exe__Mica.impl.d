bin/mica.ml: Arg Array Cmd Cmdliner Filename Fun List Logs Logs_fmt Mica_analysis Mica_core Mica_select Mica_stats Mica_trace Mica_uarch Mica_verify Mica_workloads Printf Sys Term
