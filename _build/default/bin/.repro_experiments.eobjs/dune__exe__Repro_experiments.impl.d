bin/repro_experiments.ml: Array Filename Fun Lazy List Logs Logs_fmt Mica_core Mica_select Mica_stats Mica_util Mica_workloads Option Printf String Sys
