bin/repro_experiments.mli:
