(* Regenerates every table and figure of the paper's evaluation.

   Usage: repro_experiments [EXPERIMENT ...] [--icount N] [--out DIR]

   With no experiment arguments, all of them run in paper order.  Text
   renderings go to stdout; CSV/SVG artifacts go to the output directory
   (default: results/). *)

module E = Mica_core.Experiments
module Select = Mica_select
module Stats = Mica_stats

let usage =
  "usage: repro_experiments [EXPERIMENT ...] [--icount N] [--out DIR] [--quick]\n\
   paper experiments: table1 table2 fig1 table3 fig2 fig3 fig4 fig5 table4 fig6 cost\n\
   extensions: pca coverage inputs machines locality simpoint subset predict uncertainty extended"

type options = { experiments : string list; icount : int; out_dir : string; quick : bool }

let parse_args () =
  let experiments = ref [] in
  let icount = ref 200_000 in
  let out_dir = ref "results" in
  let quick = ref false in
  let rec go = function
    | [] -> ()
    | "--icount" :: v :: rest ->
      icount := int_of_string v;
      go rest
    | "--out" :: v :: rest ->
      out_dir := v;
      go rest
    | "--quick" :: rest ->
      quick := true;
      go rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      exit 0
    | arg :: rest ->
      experiments := arg :: !experiments;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  { experiments = List.rev !experiments; icount = !icount; out_dir = !out_dir; quick = !quick }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let csv_of_rows rows = String.concat "\n" (List.map (String.concat ",") rows) ^ "\n"

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

let () =
  let opts = parse_args () in
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Info);
  let all_experiments =
    [
      "table1"; "table2"; "fig1"; "table3"; "fig2"; "fig3"; "fig4"; "fig5"; "table4"; "fig6";
      "cost"; "pca"; "coverage"; "inputs"; "machines"; "locality"; "simpoint"; "subset";
      "predict"; "uncertainty"; "extended";
    ]
  in
  let selected = if opts.experiments = [] then all_experiments else opts.experiments in
  let needs_context =
    List.exists (fun e -> e <> "table1" && e <> "table2") selected
  in
  let config =
    { Mica_core.Pipeline.default_config with icount = opts.icount; progress = true }
  in
  let ctx = if needs_context then Some (E.Context.load ~config ()) else None in
  let ctx () = Option.get ctx in
  (* feature selection runs are shared by fig4/fig5/table4/fig6/cost *)
  let ga = lazy (E.run_ga (ctx ())) in
  let ce = lazy (E.run_ce (ctx ())) in
  let ga_config_quick =
    { Select.Genetic.default_config with population = 24; max_generations = 60 }
  in
  let ga = if opts.quick then lazy (E.run_ga ~config:ga_config_quick (ctx ())) else ga in
  let out name = Filename.concat opts.out_dir name in
  let run = function
    | "table1" ->
      section "Table I: benchmarks, inputs, dynamic instruction counts";
      print_string (E.render_table1 ())
    | "table2" ->
      section "Table II: the 47 microarchitecture-independent characteristics";
      print_string (E.render_table2 ())
    | "fig1" ->
      section "Figure 1: HPC-space distance vs MICA-space distance";
      let f = E.fig1 (ctx ()) in
      print_string (E.render_fig1 f);
      write_file (out "fig1_distances.csv")
        (csv_of_rows
           ([ "mica_distance"; "hpc_distance" ]
           :: Array.to_list
                (Array.map
                   (fun (m, h) -> [ Printf.sprintf "%.6f" m; Printf.sprintf "%.6f" h ])
                   f.E.points)));
      Mica_core.Svg_plot.write ~path:(out "fig1_scatter.svg")
        (Mica_core.Svg_plot.scatter
           ~title:
             (Printf.sprintf "Figure 1: pairwise distances (r = %.3f; paper: 0.46)"
                f.E.correlation)
           ~x_label:"distance in the microarchitecture-independent space"
           ~y_label:"distance in the HPC space"
           [
             {
               Mica_core.Svg_plot.label = "benchmark pair";
               points = f.E.points;
               color = Mica_core.Svg_plot.default_colors.(0);
             };
           ])
    | "table3" ->
      section "Table III: benchmark-tuple classification (20% thresholds)";
      let counts = E.table3 (ctx ()) in
      print_string (E.render_table3 counts)
    | "fig2" ->
      section "Figure 2: bzip2 vs blast, hardware performance counters (+mix)";
      print_string (Mica_core.Case_study.render (E.fig2 (ctx ())))
    | "fig3" ->
      section "Figure 3: bzip2 vs blast, microarchitecture-independent characteristics";
      print_string (Mica_core.Case_study.render (E.fig3 (ctx ())))
    | "fig4" ->
      section "Figure 4: ROC curves";
      let entries = E.fig4 (ctx ()) ~ga:(Lazy.force ga) ~ce:(Lazy.force ce) in
      print_string (E.render_fig4 entries);
      List.iter
        (fun (e : E.roc_entry) ->
          let slug =
            String.map (fun c -> if c = ' ' || c = '(' || c = ')' || c = '.' then '_' else c) e.E.label
          in
          write_file
            (out (Printf.sprintf "fig4_roc_%s.csv" slug))
            (csv_of_rows
               ([ "threshold"; "fpr"; "tpr" ]
               :: Array.to_list
                    (Array.map
                       (fun (p : Stats.Roc.point) ->
                         [
                           Printf.sprintf "%.6f" p.Stats.Roc.threshold;
                           Printf.sprintf "%.6f" p.Stats.Roc.fpr;
                           Printf.sprintf "%.6f" p.Stats.Roc.tpr;
                         ])
                       e.E.curve.Stats.Roc.points))))
        entries;
      Mica_core.Svg_plot.write ~path:(out "fig4_roc.svg")
        (Mica_core.Svg_plot.lines ~title:"Figure 4: ROC curves" ~x_label:"false positive rate"
           ~y_label:"true positive rate"
           (List.mapi
              (fun i (e : E.roc_entry) ->
                {
                  Mica_core.Svg_plot.label =
                    Printf.sprintf "%s (AUC %.2f)" e.E.label e.E.curve.Stats.Roc.auc;
                  points =
                    Array.map
                      (fun (p : Stats.Roc.point) -> (p.Stats.Roc.fpr, p.Stats.Roc.tpr))
                      e.E.curve.Stats.Roc.points;
                  color =
                    Mica_core.Svg_plot.default_colors.(i mod
                      Array.length Mica_core.Svg_plot.default_colors);
                })
              entries))
    | "fig5" ->
      section "Figure 5: distance correlation vs retained characteristics";
      let f = E.fig5 (ctx ()) ~ga:(Lazy.force ga) in
      print_string (E.render_fig5 f);
      write_file (out "fig5_ce_sweep.csv")
        (csv_of_rows
           ([ "retained"; "rho" ]
           :: Array.to_list
                (Array.map
                   (fun (k, rho) -> [ string_of_int k; Printf.sprintf "%.6f" rho ])
                   f.E.ce_points)));
      let ce_series =
        Array.map (fun (k, rho) -> (float_of_int k, rho)) f.E.ce_points
      in
      let gk, grho = f.E.ga_point in
      Mica_core.Svg_plot.write ~path:(out "fig5_correlation.svg")
        (Mica_core.Svg_plot.lines
           ~title:"Figure 5: distance correlation vs retained characteristics"
           ~x_label:"characteristics retained" ~y_label:"correlation with the full space"
           [
             {
               Mica_core.Svg_plot.label = "correlation elimination";
               points = ce_series;
               color = Mica_core.Svg_plot.default_colors.(0);
             };
             {
               Mica_core.Svg_plot.label = Printf.sprintf "genetic algorithm (%d)" gk;
               points = [| (float_of_int gk, grho); (float_of_int gk, grho) |];
               color = Mica_core.Svg_plot.default_colors.(1);
             };
           ])
    | "table4" ->
      section "Table IV: key characteristics selected by the genetic algorithm";
      print_string (E.render_table4 (Lazy.force ga))
    | "fig6" ->
      section "Figure 6: clustering on the key characteristics + kiviat diagrams";
      let f = E.fig6 (ctx ()) ~selected:(Lazy.force ga).Select.Genetic.selected in
      print_string (E.render_fig6 f);
      Mica_core.Kiviat.write_svg ~path:(out "fig6_kiviat.svg")
        ~title:"Kiviat diagrams per cluster (key microarchitecture-independent characteristics)"
        ~axes:f.E.axes f.E.plots;
      Printf.printf "\n(SVG written to %s)\n" (out "fig6_kiviat.svg")
    | "cost" ->
      section "Characterization cost: all 47 vs the selected key characteristics";
      let c = E.cost_model (ctx ()) ~selected:(Lazy.force ga).Select.Genetic.selected in
      print_string (E.render_cost c)
    | "pca" ->
      section "Extension: PCA prior-work baseline vs the genetic algorithm";
      let r = Mica_core.Pca_comparison.run (ctx ()) ~ga:(Lazy.force ga) in
      print_string (Mica_core.Pca_comparison.render r);
      write_file (out "pca_comparison.csv")
        (csv_of_rows
           ([ "method"; "dims"; "rho"; "auc"; "chars_measured" ]
           :: List.concat
                [
                  Array.to_list
                    (Array.map
                       (fun (p : Mica_core.Pca_comparison.point) ->
                         [
                           "pca";
                           string_of_int p.Mica_core.Pca_comparison.dims;
                           Printf.sprintf "%.6f" p.Mica_core.Pca_comparison.rho;
                           Printf.sprintf "%.6f" p.Mica_core.Pca_comparison.auc;
                           string_of_int p.Mica_core.Pca_comparison.measured_characteristics;
                         ])
                       r.Mica_core.Pca_comparison.pca_points);
                  [
                    [
                      "ga";
                      string_of_int r.Mica_core.Pca_comparison.ga_measured;
                      Printf.sprintf "%.6f" r.Mica_core.Pca_comparison.ga_rho;
                      Printf.sprintf "%.6f" r.Mica_core.Pca_comparison.ga_auc;
                      string_of_int r.Mica_core.Pca_comparison.ga_measured;
                    ];
                  ];
                ]))
    | "coverage" ->
      section "Extension: suite coverage by SPEC CPU2000 (section VI conclusions)";
      let rows =
        Mica_core.Coverage.suite_coverage (ctx ())
          ~selected:(Lazy.force ga).Select.Genetic.selected
      in
      print_string (Mica_core.Coverage.render_coverage rows);
      write_file (out "suite_coverage.csv")
        (csv_of_rows
           ([ "suite"; "total"; "covered"; "dissimilar" ]
           :: List.map
                (fun (r : Mica_core.Coverage.coverage_row) ->
                  [
                    Mica_workloads.Suite.name r.Mica_core.Coverage.suite;
                    string_of_int r.Mica_core.Coverage.total;
                    string_of_int r.Mica_core.Coverage.covered;
                    string_of_int (Array.length r.Mica_core.Coverage.dissimilar);
                  ])
                rows))
    | "machines" ->
      section "Extension: does counter-based similarity transfer across machines?";
      let r = Mica_core.Machines.run (ctx ()) in
      print_string (Mica_core.Machines.render r);
      write_file (out "machines_cross_correlation.csv")
        (csv_of_rows
           ([ "machine_a"; "machine_b"; "distance_correlation" ]
           :: List.map
                (fun (a, b, c) -> [ a; b; Printf.sprintf "%.6f" c ])
                r.Mica_core.Machines.cross_correlation))
    | "extended" ->
      section "Extension: feature selection over the extended 56-characteristic set";
      print_string (E.render_extended (E.extended_selection (ctx ())))
    | "uncertainty" ->
      section "Extension: bootstrap confidence intervals (benchmark resampling)";
      let c = ctx () in
      let na = c.E.Context.mica_space.Mica_core.Space.normalized in
      let nb = c.E.Context.hpc_space.Mica_core.Space.normalized in
      let n = Array.length na in
      let rng = Mica_util.Rng.create ~seed:0xB007L in
      let stat_of f = Stats.Bootstrap.pair_distance_statistic ~normalized_a:na ~normalized_b:nb f in
      let report label f =
        let iv = Stats.Bootstrap.interval ~replicates:400 ~rng ~n (stat_of f) in
        Printf.printf "  %-28s %7.3f  [%6.3f, %6.3f]  (95%% CI, %d replicates)\n" label
          iv.Stats.Bootstrap.estimate iv.Stats.Bootstrap.lo iv.Stats.Bootstrap.hi
          iv.Stats.Bootstrap.replicates
      in
      report "fig1 distance correlation" (fun da db -> Stats.Correlation.pearson da db);
      let quadrant pick da db =
        let counts =
          Mica_core.Classify.classify ~hpc_distances:db ~mica_distances:da ()
        in
        pick (Mica_core.Classify.fractions counts)
      in
      report "table3 false positives"
        (quadrant (fun f -> f.Mica_core.Classify.f_false_pos));
      report "table3 false negatives"
        (quadrant (fun f -> f.Mica_core.Classify.f_false_neg));
      report "table3 true positives" (quadrant (fun f -> f.Mica_core.Classify.f_true_pos))
    | "subset" ->
      section "Extension: reduced benchmark suites (k-center subsetting)";
      let reduced =
        Mica_core.Dataset.select_features (ctx ()).E.Context.mica
          (Lazy.force ga).Select.Genetic.selected
      in
      let space = Mica_core.Space.of_dataset reduced in
      let t = Mica_core.Subsetting.k_center space ~k:15 in
      print_string (Mica_core.Subsetting.render space t);
      print_endline "\ncovering radius vs subset size:";
      List.iter
        (fun (k, r) -> Printf.printf "  k=%2d  radius %.3f\n" k r)
        (Mica_core.Subsetting.sweep space ~ks:[ 5; 10; 15; 20; 30; 50 ])
    | "predict" ->
      section "Extension: performance prediction from inherent similarity (PACT'06)";
      print_string (Mica_core.Prediction.render (Mica_core.Prediction.evaluate_counters (ctx ())))
    | "simpoint" ->
      section "Extension: SimPoint sampled-simulation validation (related work)";
      let sample =
        [
          "SPEC2000/gcc/166"; "SPEC2000/bzip2/graphic"; "SPEC2000/swim/ref"; "SPEC2000/mcf/ref";
          "MiBench/adpcm/rawcaudio"; "BioInfoMark/blast/protein"; "MediaBench/mpeg2/decode";
          "CommBench/rtr/rtr";
        ]
      in
      let results =
        Mica_core.Simpoint.validate_many
          (List.map Mica_workloads.Registry.find_exn sample)
          ~icount:opts.icount
      in
      print_string (Mica_core.Simpoint.render results)
    | "locality" ->
      section "Extension: temporal data locality per suite (reuse distances)";
      let r = Mica_core.Locality.run (ctx ()) in
      print_string (Mica_core.Locality.render r);
      (* LRU miss-rate curves for three contrasting workloads *)
      print_endline "\nLRU miss rate vs capacity (32B blocks), from one reuse-distance pass:";
      List.iter
        (fun name ->
          let w = Mica_workloads.Registry.find_exn name in
          let curve = Mica_core.Locality.miss_curve w ~icount:opts.icount in
          Printf.printf "  %-30s" name;
          Array.iter (fun (c, m) -> Printf.printf " %6d:%4.2f" c m) curve;
          print_newline ())
        [ "MiBench/adpcm/rawcaudio"; "SPEC2000/gcc/166"; "BioInfoMark/blast/protein" ]
    | "inputs" ->
      section "Extension: input sensitivity (isolated behaviour for particular inputs)";
      let rows =
        Mica_core.Coverage.input_sensitivity (ctx ())
          ~selected:(Lazy.force ga).Select.Genetic.selected
      in
      print_string (Mica_core.Coverage.render_sensitivity rows)
    | other ->
      Printf.eprintf "unknown experiment %S\n%s\n" other usage;
      exit 2
  in
  List.iter run selected
