let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Correlation.pearson: length mismatch";
  if n = 0 then 0.0
  else begin
    let mx = Descriptive.mean xs and my = Descriptive.mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    let denom = sqrt (!sxx *. !syy) in
    if denom > 0.0 then !sxy /. denom else 0.0
  end

let ranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let out = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    (* find the extent of the tie group *)
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      out.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  out

let spearman xs ys = pearson (ranks xs) (ranks ys)
