let squared_euclidean a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let euclidean a b = sqrt (squared_euclidean a b)

let manhattan a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let pair_count n = n * (n - 1) / 2

let pair_index ~n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  assert (i <> j && j < n);
  (i * (n - 1)) - (i * (i - 1) / 2) + (j - i - 1)

let pairs ~n =
  let out = Array.make (pair_count n) (0, 0) in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out.(!k) <- (i, j);
      incr k
    done
  done;
  out

let condensed m =
  let n = Array.length m in
  let out = Array.make (pair_count n) 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out.(!k) <- euclidean m.(i) m.(j);
      incr k
    done
  done;
  out

let condensed_squared_components m =
  let n = Array.length m in
  let cols = if n = 0 then 0 else Array.length m.(0) in
  let out = Array.make_matrix (pair_count n) cols 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dst = out.(!k) in
      let a = m.(i) and b = m.(j) in
      for c = 0 to cols - 1 do
        let d = a.(c) -. b.(c) in
        dst.(c) <- d *. d
      done;
      incr k
    done
  done;
  out

let subset_distances components cols =
  Array.map
    (fun comp ->
      let acc = ref 0.0 in
      Array.iter (fun c -> acc := !acc +. comp.(c)) cols;
      sqrt !acc)
    components
