(** Principal components analysis.

    PCA is the prior-work baseline the paper improves on (Eeckhout et al.,
    Phansalkar et al.): it decorrelates the characteristic space but still
    requires measuring every original characteristic.  We include it both
    as a comparison method and for its own utility.

    Eigen-decomposition is done with the cyclic Jacobi method on the
    covariance (or correlation) matrix, which is robust for the symmetric
    matrices that arise here. *)

type t = {
  mean : float array;  (** column means of the input *)
  scale : float array;  (** column stddevs (1s when not standardized) *)
  components : Matrix.t;  (** rows = principal components (eigenvectors) *)
  eigenvalues : float array;  (** descending *)
}

val fit : ?standardize:bool -> Matrix.t -> t
(** [fit m] computes principal components of an observations-by-variables
    matrix.  [standardize] (default true) z-scores columns first, i.e. PCA
    on the correlation matrix. *)

val transform : t -> ?dims:int -> Matrix.t -> Matrix.t
(** Project observations onto the first [dims] components (default all). *)

val explained_variance_ratio : t -> float array

val dims_for_variance : t -> float -> int
(** Smallest number of leading components whose cumulative explained
    variance reaches the given fraction. *)

val jacobi_eigen : Matrix.t -> float array * Matrix.t
(** [jacobi_eigen sym] returns (eigenvalues, eigenvectors-as-rows) of a
    symmetric matrix, sorted by descending eigenvalue.  Exposed for
    testing. *)
