type point = { threshold : float; tpr : float; fpr : float }
type curve = { points : point array; auc : float }

let positives ~ref_distances ~frac =
  let _, max_d = Descriptive.min_max ref_distances in
  let threshold = frac *. max_d in
  Array.map (fun d -> d > threshold) ref_distances

let curve ~labels ~scores =
  let n = Array.length labels in
  if n <> Array.length scores then invalid_arg "Roc.curve: length mismatch";
  let total_pos = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 labels in
  let total_neg = n - total_pos in
  if total_pos = 0 || total_neg = 0 then invalid_arg "Roc.curve: need both classes";
  (* sort by descending score; sweep thresholds at each distinct score *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare scores.(b) scores.(a)) order;
  let points = ref [] in
  let tp = ref 0 and fp = ref 0 in
  let fpos = float_of_int total_pos and fneg = float_of_int total_neg in
  points := { threshold = infinity; tpr = 0.0; fpr = 0.0 } :: !points;
  let i = ref 0 in
  while !i < n do
    let s = scores.(order.(!i)) in
    (* consume all pairs sharing this score *)
    while !i < n && scores.(order.(!i)) = s do
      if labels.(order.(!i)) then incr tp else incr fp;
      incr i
    done;
    points :=
      { threshold = s; tpr = float_of_int !tp /. fpos; fpr = float_of_int !fp /. fneg }
      :: !points
  done;
  let points = Array.of_list (List.rev !points) in
  (* trapezoidal AUC over (fpr, tpr) *)
  let auc = ref 0.0 in
  for j = 1 to Array.length points - 1 do
    let a = points.(j - 1) and b = points.(j) in
    auc := !auc +. ((b.fpr -. a.fpr) *. (a.tpr +. b.tpr) /. 2.0)
  done;
  { points; auc = !auc }

let of_spaces ~ref_distances ~test_distances ~frac =
  let labels = positives ~ref_distances ~frac in
  curve ~labels ~scores:test_distances
