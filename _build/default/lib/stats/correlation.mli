(** Correlation coefficients. *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation.  Returns 0 if either input has zero
    variance.  Requires equal lengths. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson over average ranks, handling
    ties). *)

val ranks : float array -> float array
(** Average ranks (1-based) with ties sharing their mean rank. *)
