(** Column normalization of observation matrices.

    The paper normalizes each characteristic to zero mean and unit standard
    deviation across all benchmarks before computing distances, "to put all
    characteristics on a common scale". *)

val zscore : Matrix.t -> Matrix.t
(** Column-wise (x - mean) / stddev.  Zero-variance columns map to 0. *)

val zscore_params : Matrix.t -> (float * float) array
(** Per-column (mean, stddev) used by {!zscore}; stddev 0 is preserved. *)

val apply_zscore : (float * float) array -> float array -> float array
(** Normalize one observation with previously computed parameters (used to
    place a new workload into an existing space). *)

val max_scale : Matrix.t -> Matrix.t
(** Column-wise division by the maximum absolute value (the normalization
    used by the paper's Figures 2 and 3).  Zero columns stay zero. *)

val unit_range : Matrix.t -> Matrix.t
(** Column-wise (x - min) / (max - min), for kiviat axes.  Constant columns
    map to 0.5. *)
