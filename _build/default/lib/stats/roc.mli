(** Receiver operating characteristic analysis of workload spaces.

    Following section V-D of the paper: benchmark pairs are labelled
    positive when their distance in the hardware-performance-counter space
    exceeds a fixed threshold (20% of the maximum observed distance);
    sweeping the classification threshold in the
    microarchitecture-independent space then traces a ROC curve of
    sensitivity (true-positive rate) against 1 - specificity
    (false-positive rate). *)

type point = { threshold : float; tpr : float; fpr : float }

type curve = { points : point array; auc : float }

val positives : ref_distances:float array -> frac:float -> bool array
(** [positives ~ref_distances ~frac] labels pair [p] positive when
    [ref_distances.(p) > frac *. max ref_distances]. *)

val curve : labels:bool array -> scores:float array -> curve
(** ROC of [scores] (higher score = predicted positive at low thresholds
    swept over all distinct score values) against ground-truth [labels].
    Points are ordered by increasing FPR; AUC by trapezoidal rule.
    Requires equal lengths and at least one positive and one negative
    label. *)

val of_spaces : ref_distances:float array -> test_distances:float array -> frac:float -> curve
(** The paper's construction: label with the reference space at [frac] of
    its max, score with the test-space distances. *)
