type linkage = Single | Complete | Average

type tree =
  | Leaf of int
  | Node of { left : tree; right : tree; height : float; size : int }

let size = function Leaf _ -> 1 | Node { size; _ } -> size
let height = function Leaf _ -> 0.0 | Node { height; _ } -> height

let leaves tree =
  let rec go acc = function
    | Leaf i -> i :: acc
    | Node { left; right; _ } -> go (go acc right) left
  in
  go [] tree

let cluster ?(linkage = Average) m =
  let n = Array.length m in
  if n = 0 then invalid_arg "Linkage.cluster: empty matrix";
  (* active clusters: tree, plus a distance table indexed by slot *)
  let trees = Array.init n (fun i -> Some (Leaf i)) in
  let dist = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Distance.euclidean m.(i) m.(j) in
      dist.(i).(j) <- d;
      dist.(j).(i) <- d
    done
  done;
  let active = ref n in
  let result = ref None in
  while !active > 1 do
    (* find the closest active pair *)
    let best_i = ref (-1) and best_j = ref (-1) and best_d = ref infinity in
    for i = 0 to n - 1 do
      if trees.(i) <> None then
        for j = i + 1 to n - 1 do
          if trees.(j) <> None && dist.(i).(j) < !best_d then begin
            best_d := dist.(i).(j);
            best_i := i;
            best_j := j
          end
        done
    done;
    let i = !best_i and j = !best_j in
    let ti = Option.get trees.(i) and tj = Option.get trees.(j) in
    let merged =
      Node { left = ti; right = tj; height = !best_d; size = size ti + size tj }
    in
    (* Lance-Williams update of distances from the merged cluster (stored
       in slot i) to every other active cluster *)
    let ni = float_of_int (size ti) and nj = float_of_int (size tj) in
    for k = 0 to n - 1 do
      if k <> i && k <> j && trees.(k) <> None then begin
        let dik = dist.(i).(k) and djk = dist.(j).(k) in
        let d =
          match linkage with
          | Single -> Float.min dik djk
          | Complete -> Float.max dik djk
          | Average -> ((ni *. dik) +. (nj *. djk)) /. (ni +. nj)
        in
        dist.(i).(k) <- d;
        dist.(k).(i) <- d
      end
    done;
    trees.(i) <- Some merged;
    trees.(j) <- None;
    decr active;
    result := Some merged
  done;
  match !result with
  | Some t -> t
  | None -> (
    (* n = 1: single leaf *)
    match trees.(0) with Some t -> t | None -> assert false)

let merge_heights tree =
  let rec go acc = function
    | Leaf _ -> acc
    | Node { left; right; height; _ } -> go (go (height :: acc) left) right
  in
  let hs = Array.of_list (go [] tree) in
  Array.sort compare hs;
  hs

let assignments_of_subtrees total subtrees =
  let out = Array.make total (-1) in
  List.iteri (fun c t -> List.iter (fun leaf -> out.(leaf) <- c) (leaves t)) subtrees;
  out

let cut tree ~k =
  let n = size tree in
  if k < 1 || k > n then invalid_arg "Linkage.cut: k out of range";
  (* repeatedly split the subtree with the greatest merge height *)
  let clusters = ref [ tree ] in
  while List.length !clusters < k do
    let tallest =
      List.fold_left
        (fun best t -> match best with Some b when height b >= height t -> best | _ -> Some t)
        None !clusters
    in
    match tallest with
    | Some (Node { left; right; _ } as t) ->
      clusters := left :: right :: List.filter (fun c -> c != t) !clusters
    | Some (Leaf _) | None -> invalid_arg "Linkage.cut: cannot split further"
  done;
  (* order clusters by leaf order for stable ids *)
  let ordered =
    List.sort
      (fun a b -> compare (List.hd (leaves a)) (List.hd (leaves b)))
      !clusters
  in
  assignments_of_subtrees n ordered

let cut_height tree ~height:h =
  let rec collect t =
    match t with
    | Leaf _ -> [ t ]
    | Node { left; right; height; _ } ->
      if height > h then collect left @ collect right else [ t ]
  in
  let subtrees = collect tree in
  assignments_of_subtrees (size tree) subtrees
