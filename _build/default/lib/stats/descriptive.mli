(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Population variance (divide by n); 0 for fewer than 2 elements. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** Requires a non-empty array. *)

val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1], linear interpolation between order
    statistics.  Requires a non-empty array.  Does not modify [xs]. *)

type running
(** Welford accumulator for single-pass mean/variance. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stddev : running -> float
