(** Agglomerative hierarchical clustering.

    The paper's prior-work methodology (Eeckhout et al., Phansalkar et al.)
    presents benchmark similarity as dendrograms from hierarchical
    clustering; this module provides the same capability over workload
    spaces.  Classic O(n^3) agglomeration with Lance-Williams updates —
    ample for hundreds of benchmarks. *)

type linkage =
  | Single  (** nearest-member distance *)
  | Complete  (** farthest-member distance *)
  | Average  (** unweighted average (UPGMA) *)

type tree =
  | Leaf of int  (** observation index *)
  | Node of { left : tree; right : tree; height : float; size : int }
      (** merge of two subtrees at the given inter-cluster distance *)

val cluster : ?linkage:linkage -> Matrix.t -> tree
(** Cluster the rows of an observations-by-features matrix under Euclidean
    distance.  Requires at least one row. *)

val size : tree -> int
val height : tree -> float
(** 0 for leaves. *)

val leaves : tree -> int list
(** Left-to-right leaf order (the dendrogram display order). *)

val cut : tree -> k:int -> int array
(** Cut into exactly [k] clusters (undoing the last k-1 merges); returns a
    cluster id per observation, ids 0..k-1 in leaf order.  Requires
    [1 <= k <= size]. *)

val cut_height : tree -> height:float -> int array
(** Cut all merges strictly above [height]. *)

val merge_heights : tree -> float array
(** All internal merge heights, ascending; useful for picking cut points. *)
