lib/stats/linkage.ml: Array Distance Float List Option
