lib/stats/bic.mli: Kmeans Matrix Mica_util
