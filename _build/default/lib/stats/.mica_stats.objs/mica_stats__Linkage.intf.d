lib/stats/linkage.mli: Matrix
