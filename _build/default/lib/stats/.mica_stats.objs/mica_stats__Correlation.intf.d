lib/stats/correlation.mli:
