lib/stats/matrix.ml: Array Descriptive Format
