lib/stats/normalize.mli: Matrix
