lib/stats/pca.mli: Matrix
