lib/stats/kmeans.mli: Matrix Mica_util
