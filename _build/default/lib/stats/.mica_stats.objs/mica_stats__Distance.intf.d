lib/stats/distance.mli: Matrix
