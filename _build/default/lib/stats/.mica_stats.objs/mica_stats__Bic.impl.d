lib/stats/bic.ml: Array Descriptive Float Kmeans List Option
