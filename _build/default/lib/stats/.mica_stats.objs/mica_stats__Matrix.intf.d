lib/stats/matrix.mli: Format
