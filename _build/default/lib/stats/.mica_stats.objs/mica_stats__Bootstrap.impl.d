lib/stats/bootstrap.ml: Array Descriptive Distance Fun Mica_util
