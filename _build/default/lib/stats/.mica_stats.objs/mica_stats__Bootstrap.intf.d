lib/stats/bootstrap.mli: Matrix Mica_util
