lib/stats/roc.mli:
