lib/stats/kmeans.ml: Array Distance Matrix Mica_util
