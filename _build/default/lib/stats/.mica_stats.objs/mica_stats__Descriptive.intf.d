lib/stats/descriptive.mli:
