lib/stats/correlation.ml: Array Descriptive Fun
