lib/stats/roc.ml: Array Descriptive Fun List
