lib/stats/normalize.ml: Array Descriptive Float Matrix
