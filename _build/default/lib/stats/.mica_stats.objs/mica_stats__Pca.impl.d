lib/stats/pca.ml: Array Descriptive Float Fun Matrix
