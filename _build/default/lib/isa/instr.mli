(** Dynamic instruction records.

    A trace is a stream of these records, one per executed instruction.
    This is the contract between the trace generator ({!Mica_trace}) and
    every analyzer ({!Mica_analysis}) and timing model ({!Mica_uarch}):
    exactly the information ATOM-style instrumentation would deliver. *)

type t = {
  pc : int;  (** instruction address (bytes); also the static-instruction key *)
  op : Opcode.t;
  src1 : int;  (** first source register, or {!Reg.none} *)
  src2 : int;  (** second source register, or {!Reg.none} *)
  dst : int;  (** destination register, or {!Reg.none} *)
  addr : int;  (** effective memory address for loads/stores, else 0 *)
  taken : bool;  (** outcome, meaningful when [op] is a control transfer *)
  target : int;  (** control-transfer target pc, else 0 *)
}

val make :
  pc:int ->
  op:Opcode.t ->
  ?src1:int ->
  ?src2:int ->
  ?dst:int ->
  ?addr:int ->
  ?taken:bool ->
  ?target:int ->
  unit ->
  t
(** Record constructor with absent-operand defaults. *)

val next_pc : t -> int
(** The pc of the successor instruction: fall-through ([pc + 4]) or the
    taken target for control transfers. *)

val source_count : t -> int
(** Number of present register source operands (0-2), counting the
    hardwired zero register (an instruction reading r31 still has the
    operand encoded). *)

val reads_reg : t -> int -> bool
val writes_reg : t -> int -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
