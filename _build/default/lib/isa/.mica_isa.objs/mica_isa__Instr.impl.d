lib/isa/instr.ml: Format Opcode Printf Reg
