lib/isa/reg.mli:
