lib/isa/instr.mli: Format Opcode
