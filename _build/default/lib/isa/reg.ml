let none = -1
let zero = 31
let int_base = 0
let int_count = 32
let fp_base = 32
let fp_count = 32
let count = int_count + fp_count
let is_none r = r < 0
let is_int r = r >= int_base && r < int_base + int_count
let is_fp r = r >= fp_base && r < fp_base + fp_count
let carries_dependency r = r >= 0 && r <> zero

let to_string r =
  if is_none r then "-"
  else if is_int r then Printf.sprintf "r%d" r
  else if is_fp r then Printf.sprintf "f%d" (r - fp_base)
  else Printf.sprintf "?%d" r
