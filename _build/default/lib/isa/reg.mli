(** Architectural register identifiers.

    The abstract machine has 32 integer registers (ids 0-31) and 32
    floating-point registers (ids 32-63), matching the Alpha architecture.
    Id [-1] ([none]) denotes the absence of an operand; integer register 31
    ([zero]) is hardwired to zero and never carries a dependency. *)

val none : int
(** Sentinel for "no register": [-1]. *)

val zero : int
(** The hardwired zero register (integer r31). *)

val count : int
(** Total number of architectural registers (64). *)

val int_base : int
(** First integer register id (0). *)

val int_count : int
(** Number of integer registers (32). *)

val fp_base : int
(** First floating-point register id (32). *)

val fp_count : int
(** Number of floating-point registers (32). *)

val is_none : int -> bool
val is_int : int -> bool
val is_fp : int -> bool

val carries_dependency : int -> bool
(** False for [none] and [zero]. *)

val to_string : int -> string
(** ["r4"], ["f2"], ["-"] for none. *)
