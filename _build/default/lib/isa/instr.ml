type t = {
  pc : int;
  op : Opcode.t;
  src1 : int;
  src2 : int;
  dst : int;
  addr : int;
  taken : bool;
  target : int;
}

let make ~pc ~op ?(src1 = Reg.none) ?(src2 = Reg.none) ?(dst = Reg.none) ?(addr = 0)
    ?(taken = false) ?(target = 0) () =
  { pc; op; src1; src2; dst; addr; taken; target }

let next_pc t = if Opcode.is_control t.op && t.taken then t.target else t.pc + 4

let source_count t =
  (if Reg.is_none t.src1 then 0 else 1) + if Reg.is_none t.src2 then 0 else 1

let reads_reg t r = (not (Reg.is_none r)) && (t.src1 = r || t.src2 = r)
let writes_reg t r = (not (Reg.is_none r)) && t.dst = r

let to_string t =
  Printf.sprintf "%08x %-7s %s,%s -> %s%s%s" t.pc
    (Opcode.to_string t.op)
    (Reg.to_string t.src1) (Reg.to_string t.src2) (Reg.to_string t.dst)
    (if Opcode.is_mem t.op then Printf.sprintf " [0x%x]" t.addr else "")
    (if Opcode.is_control t.op then
       Printf.sprintf " %s->0x%x" (if t.taken then "T" else "N") t.target
     else "")

let pp fmt t = Format.pp_print_string fmt (to_string t)
