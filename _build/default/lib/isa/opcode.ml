type t =
  | Load
  | Store
  | Branch
  | Jump
  | Call
  | Return
  | Int_alu
  | Int_mul
  | Fp_add
  | Fp_mul
  | Fp_div
  | Nop

let is_load = function Load -> true | _ -> false
let is_store = function Store -> true | _ -> false
let is_mem = function Load | Store -> true | _ -> false
let is_control = function Branch | Jump | Call | Return -> true | _ -> false
let is_cond_branch = function Branch -> true | _ -> false
let is_int_alu = function Int_alu -> true | _ -> false
let is_int_mul = function Int_mul -> true | _ -> false
let is_fp = function Fp_add | Fp_mul | Fp_div -> true | _ -> false

let latency = function
  | Load -> 1 (* address generation; memory latency added by the cache model *)
  | Store -> 1
  | Branch | Jump | Call | Return -> 1
  | Int_alu -> 1
  | Int_mul -> 8
  | Fp_add -> 4
  | Fp_mul -> 4
  | Fp_div -> 18
  | Nop -> 1

let to_string = function
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"
  | Call -> "call"
  | Return -> "return"
  | Int_alu -> "int_alu"
  | Int_mul -> "int_mul"
  | Fp_add -> "fp_add"
  | Fp_mul -> "fp_mul"
  | Fp_div -> "fp_div"
  | Nop -> "nop"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all =
  [ Load; Store; Branch; Jump; Call; Return; Int_alu; Int_mul; Fp_add; Fp_mul; Fp_div; Nop ]
