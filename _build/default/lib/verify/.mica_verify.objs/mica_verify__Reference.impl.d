lib/verify/reference.ml: Array Float Format Hashtbl List Mica_analysis Mica_isa Mica_trace
