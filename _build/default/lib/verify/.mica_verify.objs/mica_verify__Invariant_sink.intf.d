lib/verify/invariant_sink.mli: Format Mica_trace
