lib/verify/reference.mli: Format Mica_isa Mica_trace
