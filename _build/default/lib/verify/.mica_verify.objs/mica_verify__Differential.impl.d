lib/verify/differential.ml: Array Filename Format Fun List Mica_analysis Mica_core Mica_trace Mica_workloads Printf Sys Unix
