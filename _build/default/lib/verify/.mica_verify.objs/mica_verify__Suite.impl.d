lib/verify/suite.ml: Buffer Differential Format Invariant_sink List Mica_trace Mica_workloads Option Printf Reference Unix
