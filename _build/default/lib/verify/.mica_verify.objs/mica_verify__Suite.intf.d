lib/verify/suite.mli: Mica_workloads
