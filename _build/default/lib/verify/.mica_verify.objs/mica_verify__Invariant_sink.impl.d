lib/verify/invariant_sink.ml: Array Format Hashtbl List Mica_isa Mica_trace Printf
