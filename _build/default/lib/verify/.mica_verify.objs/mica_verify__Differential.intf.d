lib/verify/differential.mli: Format Mica_trace Mica_workloads
