(** Naive reference reimplementations of the six characteristic families.

    Each oracle recomputes one slice of the 47-element MICA vector from a
    collected instruction list using deliberately simple, obviously-correct
    code — direct counting, exhaustive window scheduling, list scans,
    sorted address sets, plain hashtables — with none of the incremental
    state, rings or packed hash keys the production analyzers use for
    speed.  Agreement within {!tolerances} on the same instruction stream
    is strong evidence both sides are right; disagreement localizes the
    bug to one family.

    Oracles are O(n^2)-ish in places and meant for short traces (a few
    thousand instructions). *)

val mix : Mica_isa.Instr.t list -> float array
(** Characteristics 1-6 by direct counting. *)

val ilp : ?windows:int array -> Mica_isa.Instr.t list -> float array
(** Characteristics 7-10 by exhaustive scheduling: every instruction's
    issue cycle is recomputed from scratch by scanning backwards for its
    producers and the window-occupancy constraint. *)

val regtraffic : Mica_isa.Instr.t list -> float array
(** Characteristics 11-19 by per-register list scans over the full
    indexed trace. *)

val working_set : Mica_isa.Instr.t list -> float array
(** Characteristics 20-23 via sorted deduplicated address lists. *)

val strides : Mica_isa.Instr.t list -> float array
(** Characteristics 24-43: stride lists per stream, CDF by direct
    counting at each cutoff. *)

val ppm : ?order:int -> Mica_isa.Instr.t list -> float array
(** Characteristics 44-47: the four PPM predictors with boolean-list
    histories and structurally-keyed plain hashtables. *)

val vector : ?ppm_order:int -> Mica_isa.Instr.t list -> float array
(** All 47 characteristics in Table II order. *)

type mismatch = {
  index : int;  (** characteristic index (0-based, Table II order) *)
  name : string;  (** short characteristic name *)
  got : float;  (** production analyzer value *)
  oracle : float;  (** reference value *)
  tolerance : float;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val tolerances : float array
(** Per-characteristic absolute+relative comparison tolerance.  Counting
    families (mix, working set, strides, PPM) must agree to 1e-12;
    the scheduling and register-traffic families to 1e-9 (they divide
    accumulated integers and may differ in rounding of the final
    division). *)

val compare_vectors : got:float array -> oracle:float array -> mismatch list
(** Elementwise comparison under {!tolerances}; NaN on either side is
    always a mismatch. *)

val check : ?ppm_order:int -> Mica_trace.Program.t -> icount:int -> mismatch list
(** Collect the program's first [icount] instructions once, feed the same
    list to {!Mica_analysis.Analyzer} and to the oracles, and compare. *)
