(** Online validation of a dynamic instruction stream.

    Wraps the checks every analyzer silently relies on into an explicit
    {!Mica_trace.Sink.t}: feed it the trace (alone or fanned out next to
    the real analyzers) and read back a structured list of violations
    instead of crashing mid-trace.  Checked invariants:

    - positive instruction addresses;
    - program-order consistency: each instruction's pc is the previous
      instruction's fall-through or taken target ({!Mica_isa.Instr.next_pc});
    - register operand ids are [Reg.none] or valid architectural ids;
    - registers are defined before use (strict mode only — generator
      traces legitimately read live-in values, which are counted instead);
    - memory operations carry a positive effective address, non-memory
      operations carry none;
    - taken control transfers carry a positive target, non-control
      instructions are never taken and carry no target;
    - a static conditional branch always transfers to the same target;
    - exact instruction count ({!finish} with [~expected_icount]).

    The sink never raises: violations are recorded (up to
    [max_violations], counting continues beyond) and the stream keeps
    flowing, so one corrupt record yields a report, not a crash. *)

type violation = {
  index : int;  (** 0-based position in the dynamic stream *)
  rule : string;  (** stable rule identifier, e.g. ["pc-chain"] *)
  detail : string;  (** human-readable description *)
}

val pp_violation : Format.formatter -> violation -> unit

type t

val create : ?strict_defined_use:bool -> ?max_violations:int -> unit -> t
(** [strict_defined_use] (default [false]) flags any read of a register
    that was never written earlier in the stream; leave it off for traces
    that start mid-execution.  [max_violations] (default 64) bounds the
    retained list; the total count is unbounded. *)

val sink : t -> Mica_trace.Sink.t

val instructions : t -> int
(** Instructions observed so far. *)

val live_in_registers : t -> int
(** Distinct registers read before any write (initial machine state). *)

val violations : t -> violation list
(** Violations recorded so far, in stream order. *)

val total_violations : t -> int
(** Total violations seen, including those beyond [max_violations]. *)

val finish : ?expected_icount:int -> t -> violation list
(** End-of-trace checks (currently the exact-icount check) appended to
    the recorded violations.  Does not mutate the sink; safe to call more
    than once. *)

val ok : ?expected_icount:int -> t -> bool
(** [finish] is empty and no violations overflowed the retained list. *)
