let names =
  [|
    "IPC (Alpha 21164A, in-order)";
    "branch misprediction rate";
    "L1 D-cache miss rate";
    "L1 I-cache miss rate";
    "L2 cache miss rate";
    "D-TLB miss rate";
    "IPC (Alpha 21264A, out-of-order)";
  |]

let short_names = [| "ipc_ev56"; "br_miss"; "l1d_miss"; "l1i_miss"; "l2_miss"; "dtlb_miss"; "ipc_ev67" |]
let count = Array.length names

type t = { inorder : Inorder.t; ooo : Ooo.t }

let create () = { inorder = Inorder.create (); ooo = Ooo.create () }
let sink t = Mica_trace.Sink.fanout [ Inorder.sink t.inorder; Ooo.sink t.ooo ]

type result = {
  ipc_ev56 : float;
  branch_mispredict_rate : float;
  l1d_miss_rate : float;
  l1i_miss_rate : float;
  l2_miss_rate : float;
  dtlb_miss_rate : float;
  ipc_ev67 : float;
}

let result t =
  let io = Inorder.result t.inorder in
  let oo = Ooo.result t.ooo in
  {
    ipc_ev56 = io.Inorder.ipc;
    branch_mispredict_rate = io.Inorder.branch_mispredict_rate;
    l1d_miss_rate = io.Inorder.l1d_miss_rate;
    l1i_miss_rate = io.Inorder.l1i_miss_rate;
    l2_miss_rate = io.Inorder.l2_miss_rate;
    dtlb_miss_rate = io.Inorder.dtlb_miss_rate;
    ipc_ev67 = oo.Ooo.ipc;
  }

let to_vector r =
  [|
    r.ipc_ev56;
    r.branch_mispredict_rate;
    r.l1d_miss_rate;
    r.l1i_miss_rate;
    r.l2_miss_rate;
    r.dtlb_miss_rate;
    r.ipc_ev67;
  |]

let measure program ~icount =
  let t = create () in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:(sink t) in
  result t
