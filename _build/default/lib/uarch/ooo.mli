(** Out-of-order four-wide timing model in the style of the Alpha 21264A
    (EV67): the second machine the paper measures (IPC only).

    Dataflow-limited scheduling with a finite instruction window, a fetch
    front end of [width] instructions per cycle redirected on branch
    mispredictions (tournament predictor, as in the 21264), and load
    latencies taken from a 64KB 2-way L1 / 2MB L2 hierarchy.  The model
    tracks per-register ready cycles exactly like the idealized ILP
    analyzer but with realistic constraints layered on. *)

type config = {
  width : int;  (** fetch/issue width *)
  window : int;  (** in-flight instruction window *)
  mispredict_penalty : int;  (** fetch redirect cycles *)
  l1_latency : int;  (** load-to-use on an L1 hit *)
  l2_latency : int;  (** load-to-use on an L2 hit *)
  mem_latency : int;  (** load-to-use on an L2 miss *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val sink : t -> Mica_trace.Sink.t

type result = { instructions : int; cycles : int; ipc : float; branch_mispredict_rate : float }

val result : t -> result
