(** The hardware-performance-counter characterization of section III-B.

    Seven metrics, exactly the paper's set: IPC on the in-order EV56-like
    machine; its branch misprediction, L1 D-cache, L1 I-cache, L2 and
    D-TLB miss rates; and IPC on the out-of-order EV67-like machine.  Both
    machine models consume the same trace in one pass. *)

val count : int
(** 7. *)

val names : string array
val short_names : string array

type t

val create : unit -> t
val sink : t -> Mica_trace.Sink.t

type result = {
  ipc_ev56 : float;
  branch_mispredict_rate : float;
  l1d_miss_rate : float;
  l1i_miss_rate : float;
  l2_miss_rate : float;
  dtlb_miss_rate : float;
  ipc_ev67 : float;
}

val result : t -> result
val to_vector : result -> float array

val measure : Mica_trace.Program.t -> icount:int -> result
(** Generate the program's trace and return its counter vector. *)
