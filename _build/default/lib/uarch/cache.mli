(** Set-associative cache model with true-LRU replacement.

    Tracks hit/miss counts only (no data), which is all the
    hardware-performance-counter substitute needs. *)

type t

val create : name:string -> size_bytes:int -> line_bytes:int -> assoc:int -> t
(** [line_bytes] and the resulting set count [size_bytes / (line_bytes *
    assoc)] must be powers of two (the total size need not be — e.g. the
    21164's 96KB 3-way L2 has 512 sets); [assoc] must be positive.
    Raises [Invalid_argument] otherwise. *)

val name : t -> string
val sets : t -> int
val line_bytes : t -> int
val assoc : t -> int

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on
    hit.  On miss the LRU way of the set is replaced. *)

val probe : t -> int -> bool
(** Like {!access} but without updating any state or counts. *)

val install : t -> int -> unit
(** Insert the line containing the address without touching the hit/miss
    counters (prefetches and fills from other agents).  Replaces the LRU
    way if the line is absent; refreshes recency if present. *)

val accesses : t -> int
val misses : t -> int

val miss_rate : t -> float
(** [misses / accesses]; 0 before any access. *)

val reset_counters : t -> unit
(** Clears hit/miss counts, keeping cache contents (for warm-up discard). *)
