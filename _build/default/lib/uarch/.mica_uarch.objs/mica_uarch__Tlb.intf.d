lib/uarch/tlb.mli:
