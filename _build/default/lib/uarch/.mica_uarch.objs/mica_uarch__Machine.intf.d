lib/uarch/machine.mli: Mica_trace
