lib/uarch/hw_counters.ml: Array Inorder Mica_trace Ooo
