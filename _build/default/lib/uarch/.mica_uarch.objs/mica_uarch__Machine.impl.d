lib/uarch/machine.ml: Array Branch_pred Cache List Mica_isa Mica_trace Tlb
