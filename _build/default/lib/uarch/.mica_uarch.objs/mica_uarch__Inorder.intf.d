lib/uarch/inorder.mli: Mica_trace
