lib/uarch/branch_pred.ml: Array Bool
