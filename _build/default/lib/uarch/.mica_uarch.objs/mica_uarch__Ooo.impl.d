lib/uarch/ooo.ml: Array Branch_pred Cache Mica_isa Mica_trace
