lib/uarch/inorder.ml: Branch_pred Cache Mica_isa Mica_trace Tlb
