lib/uarch/ooo.mli: Mica_trace
