lib/uarch/branch_pred.mli:
