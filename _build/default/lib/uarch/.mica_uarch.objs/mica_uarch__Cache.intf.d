lib/uarch/cache.mli:
