lib/uarch/hw_counters.mli: Mica_trace
