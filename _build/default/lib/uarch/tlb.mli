(** Fully-associative translation lookaside buffer with LRU replacement. *)

type t

val create : entries:int -> page_bytes:int -> t
(** [page_bytes] must be a power of two; [entries] positive. *)

val access : t -> int -> bool
(** [access t addr] translates the page containing [addr]; returns [true]
    on TLB hit. *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_counters : t -> unit
