(** Realizable branch predictor models.

    Unlike the theoretical PPM predictability measure in {!Mica_analysis},
    these are finite-table predictors of the kind actually built in the
    Alpha machines the paper profiles: a bimodal predictor (21164-style)
    and a tournament predictor combining local and global components
    (21264-style). *)

type t

val bimodal : entries:int -> t
(** Array of 2-bit saturating counters indexed by pc. *)

val gshare : entries:int -> history_bits:int -> t
(** 2-bit counters indexed by pc xor global history. *)

val local : entries:int -> history_bits:int -> t
(** Two-level: per-pc history indexing a shared pattern table. *)

val tournament : entries:int -> history_bits:int -> t
(** 21264-style: a chooser of 2-bit counters selects between the local and
    gshare components per branch. *)

val predict_update : t -> pc:int -> taken:bool -> bool
(** Returns the prediction made before learning from the actual outcome. *)

val predictions : t -> int
val mispredictions : t -> int
val miss_rate : t -> float
