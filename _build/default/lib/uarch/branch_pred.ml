(* 2-bit saturating counters stored as ints 0..3; >= 2 predicts taken. *)

type core =
  | Bimodal of { counters : int array }
  | Gshare of { counters : int array; hist_mask : int; mutable ghist : int }
  | Local of { histories : int array; pattern : int array; hist_mask : int }
  | Tournament of { chooser : int array; local : core; gshare : core }

type t = { core : core; mutable predictions : int; mutable mispredictions : int }

let check_entries entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Branch_pred: entries must be a positive power of two"

let make_counters entries = Array.make entries 1 (* weakly not-taken *)

let bimodal_core ~entries =
  check_entries entries;
  Bimodal { counters = make_counters entries }

let gshare_core ~entries ~history_bits =
  check_entries entries;
  Gshare { counters = make_counters entries; hist_mask = (1 lsl history_bits) - 1; ghist = 0 }

let local_core ~entries ~history_bits =
  check_entries entries;
  Local
    {
      histories = Array.make entries 0;
      pattern = make_counters (1 lsl history_bits);
      hist_mask = (1 lsl history_bits) - 1;
    }

let wrap core = { core; predictions = 0; mispredictions = 0 }

let bimodal ~entries = wrap (bimodal_core ~entries)
let gshare ~entries ~history_bits = wrap (gshare_core ~entries ~history_bits)
let local ~entries ~history_bits = wrap (local_core ~entries ~history_bits)

let tournament ~entries ~history_bits =
  check_entries entries;
  wrap
    (Tournament
       {
         chooser = make_counters entries;
         local = local_core ~entries ~history_bits;
         gshare = gshare_core ~entries ~history_bits;
       })

let bump counter taken =
  if taken then (if counter < 3 then counter + 1 else 3)
  else if counter > 0 then counter - 1
  else 0

let index array pc = (pc lsr 2) land (Array.length array - 1)

(* Predict and update a core; returns the prediction. *)
let rec step core ~pc ~taken =
  match core with
  | Bimodal { counters } ->
    let i = index counters pc in
    let pred = counters.(i) >= 2 in
    counters.(i) <- bump counters.(i) taken;
    pred
  | Gshare g ->
    let i = ((pc lsr 2) lxor (g.ghist land g.hist_mask)) land (Array.length g.counters - 1) in
    let pred = g.counters.(i) >= 2 in
    g.counters.(i) <- bump g.counters.(i) taken;
    g.ghist <- ((g.ghist lsl 1) lor Bool.to_int taken) land g.hist_mask;
    pred
  | Local l ->
    let i = index l.histories pc in
    let h = l.histories.(i) land l.hist_mask in
    let pred = l.pattern.(h) >= 2 in
    l.pattern.(h) <- bump l.pattern.(h) taken;
    l.histories.(i) <- ((h lsl 1) lor Bool.to_int taken) land l.hist_mask;
    pred
  | Tournament tr ->
    let i = index tr.chooser pc in
    let use_local = tr.chooser.(i) >= 2 in
    let pred_local = step tr.local ~pc ~taken in
    let pred_gshare = step tr.gshare ~pc ~taken in
    let pred = if use_local then pred_local else pred_gshare in
    (* train the chooser towards the component that was right *)
    (if pred_local <> pred_gshare then
       let local_right = pred_local = taken in
       tr.chooser.(i) <- bump tr.chooser.(i) local_right);
    pred

let predict_update t ~pc ~taken =
  let pred = step t.core ~pc ~taken in
  t.predictions <- t.predictions + 1;
  if pred <> taken then t.mispredictions <- t.mispredictions + 1;
  pred

let predictions t = t.predictions
let mispredictions t = t.mispredictions

let miss_rate t =
  if t.predictions = 0 then 0.0
  else float_of_int t.mispredictions /. float_of_int t.predictions
