(** Fitness of characteristic subsets.

    Both reduction methods of section V judge a subset S of the N
    characteristics by how well pairwise benchmark distances computed in
    the reduced space correlate with distances in the full normalized
    space.  This module precomputes per-pair, per-characteristic squared
    differences once so that evaluating a subset costs one pass over the
    pairs — which is what makes the genetic algorithm affordable. *)

type t

val create : Mica_stats.Matrix.t -> t
(** [create normalized] builds the evaluation context from an
    observations-by-characteristics matrix that is already normalized
    (z-scored).  Requires at least 2 observations. *)

val n_characteristics : t -> int
val n_pairs : t -> int

val full_distances : t -> float array
(** Condensed pairwise distances using all characteristics. *)

val distances_for : t -> int array -> float array
(** Condensed pairwise distances using only the given characteristic
    indices. *)

val rho : t -> int array -> float
(** Pearson correlation between the subset-space distances and the
    full-space distances.  0 for the empty subset. *)

val paper_fitness : t -> int array -> float
(** The paper's GA fitness [f = rho * (1 - n/N)]. *)
