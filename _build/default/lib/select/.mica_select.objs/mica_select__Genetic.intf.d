lib/select/genetic.mli: Fitness Mica_util
