lib/select/genetic.ml: Array Bytes Fitness Fun Hashtbl List Mica_util
