lib/select/correlation_elimination.mli: Fitness Mica_stats
