lib/select/fitness.mli: Mica_stats
