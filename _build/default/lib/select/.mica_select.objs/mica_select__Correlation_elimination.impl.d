lib/select/correlation_elimination.ml: Array Fitness Float Fun List Mica_stats
