lib/select/fitness.ml: Array Mica_stats
