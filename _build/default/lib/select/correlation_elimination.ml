module Stats = Mica_stats

type step = { removed : int; avg_abs_corr : float; remaining : int array; rho : float }

let run ?(down_to = 1) ~data fitness =
  let _, n = Stats.Matrix.dims data in
  let down_to = max 1 down_to in
  (* Correlation matrix over the full set; sub-matrices are just index
     restrictions of it, so it is computed once. *)
  let corr = Stats.Matrix.correlation_matrix data in
  let alive = Array.make n true in
  let alive_count = ref n in
  let steps = ref [] in
  while !alive_count > down_to do
    (* average |r| of each live characteristic against the other live ones *)
    let best = ref (-1) and best_avg = ref neg_infinity in
    for i = 0 to n - 1 do
      if alive.(i) then begin
        let acc = ref 0.0 and cnt = ref 0 in
        for j = 0 to n - 1 do
          if alive.(j) && j <> i then begin
            acc := !acc +. Float.abs corr.(i).(j);
            incr cnt
          end
        done;
        let avg = if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt in
        if avg > !best_avg then begin
          best_avg := avg;
          best := i
        end
      end
    done;
    alive.(!best) <- false;
    decr alive_count;
    let remaining =
      Array.of_list (List.filter (fun i -> alive.(i)) (List.init n Fun.id))
    in
    steps :=
      { removed = !best; avg_abs_corr = !best_avg; remaining; rho = Fitness.rho fitness remaining }
      :: !steps
  done;
  List.rev !steps

let subset_of_size steps k =
  match List.find_opt (fun s -> Array.length s.remaining = k) steps with
  | Some s -> s.remaining
  | None -> raise Not_found
