(** Correlation elimination (section V-A).

    Iteratively removes the characteristic with the highest average
    correlation with the remaining characteristics: the one carrying the
    least additional information.  Each step records which characteristic
    was dropped and how well the surviving subset still reproduces
    full-space distances. *)

type step = {
  removed : int;  (** index of the characteristic dropped at this step *)
  avg_abs_corr : float;  (** its average |r| with the others, motivating removal *)
  remaining : int array;  (** surviving characteristic indices, ascending *)
  rho : float;  (** distance correlation of the surviving subset vs. full space *)
}

val run : ?down_to:int -> data:Mica_stats.Matrix.t -> Fitness.t -> step list
(** [run ~data fitness] eliminates one characteristic at a time until
    [down_to] remain (default 1).  [data] is the raw (unnormalized)
    observations matrix — correlations between characteristics are scale
    invariant; [fitness] must come from the normalized version of the same
    matrix.  Steps are returned in elimination order. *)

val subset_of_size : step list -> int -> int array
(** [subset_of_size steps k] is the surviving subset after elimination has
    reduced the space to [k] characteristics.  Raises [Not_found] if the
    run did not reach [k]. *)
