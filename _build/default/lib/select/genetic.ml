module Rng = Mica_util.Rng

type config = {
  population : int;
  max_generations : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;
  elite : int;
  stall_generations : int;
  init_select_prob : float;
}

let default_config =
  {
    population = 48;
    max_generations = 250;
    tournament_size = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.03;
    elite = 2;
    stall_generations = 40;
    init_select_prob = 0.25;
  }

type result = {
  selected : int array;
  fitness : float;
  rho : float;
  generations_run : int;
  best_history : float array;
  evaluations : int;
}

let genome_key genome =
  let buf = Bytes.make (Array.length genome) '0' in
  Array.iteri (fun i b -> if b then Bytes.set buf i '1') genome;
  Bytes.to_string buf

let subset_of_genome genome =
  let out = ref [] in
  for i = Array.length genome - 1 downto 0 do
    if genome.(i) then out := i :: !out
  done;
  Array.of_list !out

let run ?(config = default_config) ~rng fitness =
  let n = Fitness.n_characteristics fitness in
  let cache : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let evaluations = ref 0 in
  let eval genome =
    let key = genome_key genome in
    match Hashtbl.find_opt cache key with
    | Some f -> f
    | None ->
      incr evaluations;
      let f = Fitness.paper_fitness fitness (subset_of_genome genome) in
      Hashtbl.add cache key f;
      f
  in
  let random_genome () =
    let g = Array.init n (fun _ -> Rng.bernoulli rng ~p:config.init_select_prob) in
    (* an empty genome is useless; force one bit *)
    if not (Array.exists Fun.id g) then g.(Rng.int rng n) <- true;
    g
  in
  let population = ref (Array.init config.population (fun _ -> random_genome ())) in
  let scores = ref (Array.map eval !population) in
  let tournament () =
    let best = ref (Rng.int rng config.population) in
    for _ = 2 to config.tournament_size do
      let c = Rng.int rng config.population in
      if !scores.(c) > !scores.(!best) then best := c
    done;
    !population.(!best)
  in
  let crossover a b =
    if Rng.bernoulli rng ~p:config.crossover_rate then
      Array.init n (fun i -> if Rng.bool rng then a.(i) else b.(i))
    else Array.copy a
  in
  let mutate g =
    Array.iteri (fun i b -> if Rng.bernoulli rng ~p:config.mutation_rate then g.(i) <- not b) g;
    if not (Array.exists Fun.id g) then g.(Rng.int rng n) <- true
  in
  let best_of pop_scores =
    let best = ref 0 in
    Array.iteri (fun i s -> if s > pop_scores.(!best) then best := i) pop_scores;
    !best
  in
  let history = ref [] in
  let stall = ref 0 in
  let generation = ref 0 in
  let best_ever = ref (Array.copy !population.(best_of !scores)) in
  let best_ever_score = ref !scores.(best_of !scores) in
  while !generation < config.max_generations && !stall < config.stall_generations do
    incr generation;
    (* elitism: carry the best genomes over unchanged *)
    let order = Array.init config.population Fun.id in
    Array.sort (fun a b -> compare !scores.(b) !scores.(a)) order;
    let next =
      Array.init config.population (fun i ->
          if i < config.elite then Array.copy !population.(order.(i))
          else begin
            let child = crossover (tournament ()) (tournament ()) in
            mutate child;
            child
          end)
    in
    population := next;
    scores := Array.map eval next;
    let b = best_of !scores in
    if !scores.(b) > !best_ever_score +. 1e-12 then begin
      best_ever_score := !scores.(b);
      best_ever := Array.copy !population.(b);
      stall := 0
    end
    else incr stall;
    history := !best_ever_score :: !history
  done;
  let selected = subset_of_genome !best_ever in
  {
    selected;
    fitness = !best_ever_score;
    rho = Fitness.rho fitness selected;
    generations_run = !generation;
    best_history = Array.of_list (List.rev !history);
    evaluations = !evaluations;
  }
