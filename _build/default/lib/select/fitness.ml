module Stats = Mica_stats

type t = {
  components : Stats.Matrix.t;  (* pairs x characteristics, squared diffs *)
  full : float array;
  n_chars : int;
}

let create normalized =
  let rows, cols = Stats.Matrix.dims normalized in
  if rows < 2 then invalid_arg "Fitness.create: need at least 2 observations";
  let components = Stats.Distance.condensed_squared_components normalized in
  let full = Stats.Distance.condensed normalized in
  { components; full; n_chars = cols }

let n_characteristics t = t.n_chars
let n_pairs t = Array.length t.full
let full_distances t = t.full
let distances_for t subset = Stats.Distance.subset_distances t.components subset

let rho t subset =
  if Array.length subset = 0 then 0.0
  else Stats.Correlation.pearson (distances_for t subset) t.full

let paper_fitness t subset =
  let n = Array.length subset in
  if n = 0 then 0.0
  else rho t subset *. (1.0 -. (float_of_int n /. float_of_int t.n_chars))
