(** Genetic algorithm for key-characteristic selection (section V-B).

    Genomes are bitmasks over the N characteristics.  The fitness is the
    paper's [f = rho * (1 - n/N)]: reward subsets whose distances correlate
    with the full space, penalize subset size.  Tournament selection,
    uniform crossover, per-bit mutation, elitism, and a convergence stop
    when the best fitness has not improved for [stall_generations]. *)

type config = {
  population : int;
  max_generations : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;  (** per-bit flip probability *)
  elite : int;  (** genomes copied unchanged each generation *)
  stall_generations : int;  (** stop after this many generations without improvement *)
  init_select_prob : float;  (** per-bit probability of 1 in the initial population *)
}

val default_config : config

type result = {
  selected : int array;  (** chosen characteristic indices, ascending *)
  fitness : float;
  rho : float;  (** distance correlation of the chosen subset *)
  generations_run : int;
  best_history : float array;  (** best fitness per generation *)
  evaluations : int;  (** distinct genomes evaluated *)
}

val run : ?config:config -> rng:Mica_util.Rng.t -> Fitness.t -> result
