type comparison = {
  features : string array;
  a_name : string;
  b_name : string;
  a : float array;
  b : float array;
}

let compare_in ds ~a ~b =
  let scaled = Mica_stats.Normalize.max_scale ds.Dataset.data in
  let idx name =
    match Dataset.row_index ds name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Case_study.compare_in: unknown %S" name)
  in
  let ia = idx a and ib = idx b in
  { features = ds.Dataset.features; a_name = a; b_name = b; a = scaled.(ia); b = scaled.(ib) }

let hpc_with_mix ~hpc ~mica =
  if hpc.Dataset.names <> mica.Dataset.names then
    invalid_arg "Case_study.hpc_with_mix: datasets cover different workloads";
  let mix_count = 6 in
  let features =
    Array.append hpc.Dataset.features (Array.sub mica.Dataset.features 0 mix_count)
  in
  let data =
    Array.mapi
      (fun i hrow -> Array.append hrow (Array.sub mica.Dataset.data.(i) 0 mix_count))
      hpc.Dataset.data
  in
  Dataset.create ~names:hpc.Dataset.names ~features data

let bar v =
  let width = 24 in
  let v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v in
  let filled = int_of_float (Float.round (v *. float_of_int width)) in
  String.concat "" [ String.make filled '#'; String.make (width - filled) ' ' ]

let render c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-26s %-26s\n" "" c.a_name c.b_name);
  Array.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s |%s| |%s| %6.3f vs %6.3f\n" f (bar c.a.(i)) (bar c.b.(i))
           c.a.(i) c.b.(i)))
    c.features;
  Buffer.contents buf
