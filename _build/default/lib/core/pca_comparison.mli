(** Comparison against the PCA-based prior work (section V-C).

    The paper argues its selection methods beat PCA on two axes: PCA still
    requires {e measuring} all 47 characteristics (its reduced dimensions
    are linear combinations), and PCA dimensions are hard to interpret.
    What PCA does preserve is distance fidelity.  This experiment
    quantifies the trade-off: distance correlation (and ROC AUC) of the
    PCA-reduced space at each dimensionality, side by side with the
    GA-selected subset — together with how many of the 47 raw
    characteristics each approach needs measured. *)

type point = {
  dims : int;  (** retained PCA dimensions *)
  rho : float;  (** distance correlation with the full space *)
  auc : float;  (** ROC AUC against the counter space at the 20% threshold *)
  measured_characteristics : int;  (** always 47 for PCA *)
}

type result = {
  pca_points : point array;  (** for dims 1, 2, 4, 8, 12, 16, 24, 32, 47 *)
  ga_rho : float;
  ga_auc : float;
  ga_measured : int;  (** size of the GA subset *)
  variance_explained_8 : float;  (** cumulative variance of the first 8 PCs *)
}

val run :
  Experiments.Context.t -> ga:Mica_select.Genetic.result -> result

val render : result -> string
