module Stats = Mica_stats

type counts = { true_pos : int; true_neg : int; false_pos : int; false_neg : int; total : int }

type fractions = {
  f_true_pos : float;
  f_true_neg : float;
  f_false_pos : float;
  f_false_neg : float;
}

let classify ~hpc_distances ~mica_distances ?(frac = 0.2) () =
  let n = Array.length hpc_distances in
  if n <> Array.length mica_distances then invalid_arg "Classify.classify: length mismatch";
  if n = 0 then invalid_arg "Classify.classify: empty distance vectors";
  let _, hpc_max = Stats.Descriptive.min_max hpc_distances in
  let _, mica_max = Stats.Descriptive.min_max mica_distances in
  let hpc_thr = frac *. hpc_max and mica_thr = frac *. mica_max in
  let tp = ref 0 and tn = ref 0 and fp = ref 0 and fn = ref 0 in
  for p = 0 to n - 1 do
    let hpc_large = hpc_distances.(p) > hpc_thr in
    let mica_large = mica_distances.(p) > mica_thr in
    match (hpc_large, mica_large) with
    | true, true -> incr tp
    | false, false -> incr tn
    | false, true -> incr fp
    | true, false -> incr fn
  done;
  { true_pos = !tp; true_neg = !tn; false_pos = !fp; false_neg = !fn; total = n }

let fractions c =
  let d = float_of_int (max 1 c.total) in
  {
    f_true_pos = float_of_int c.true_pos /. d;
    f_true_neg = float_of_int c.true_neg /. d;
    f_false_pos = float_of_int c.false_pos /. d;
    f_false_neg = float_of_int c.false_neg /. d;
  }

let correlation ~hpc_distances ~mica_distances =
  Stats.Correlation.pearson hpc_distances mica_distances
