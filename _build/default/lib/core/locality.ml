module W = Mica_workloads
module A = Mica_analysis

type row = {
  id : string;
  suite : W.Suite.t;
  mean_log2_distance : float;
  cold_fraction : float;
}

type suite_summary = { s_suite : W.Suite.t; s_mean : float; s_min : float; s_max : float }

type result = { rows : row list; suites : suite_summary list }

let measure_workload (w : W.Workload.t) ~icount =
  let reuse = A.Reuse.create () in
  let (_ : int) = Mica_trace.Generator.run w.W.Workload.model ~icount ~sink:(A.Reuse.sink reuse) in
  reuse

let run (ctx : Experiments.Context.t) =
  let icount = ctx.Experiments.Context.config.Pipeline.icount in
  let rows =
    List.map
      (fun (w : W.Workload.t) ->
        let reuse = measure_workload w ~icount in
        let accesses = A.Reuse.accesses reuse in
        {
          id = W.Workload.id w;
          suite = w.W.Workload.suite;
          mean_log2_distance = A.Reuse.mean_log2 reuse;
          cold_fraction =
            (if accesses = 0 then 0.0
             else float_of_int (A.Reuse.cold_misses reuse) /. float_of_int accesses);
        })
      ctx.Experiments.Context.workloads
  in
  let suites =
    List.filter_map
      (fun suite ->
        let members = List.filter (fun r -> r.suite = suite) rows in
        match members with
        | [] -> None
        | _ ->
          let values = Array.of_list (List.map (fun r -> r.mean_log2_distance) members) in
          let lo, hi = Mica_stats.Descriptive.min_max values in
          Some
            { s_suite = suite; s_mean = Mica_stats.Descriptive.mean values; s_min = lo; s_max = hi })
      W.Suite.all
  in
  let rows = List.sort (fun a b -> compare b.mean_log2_distance a.mean_log2_distance) rows in
  { rows; suites }

let default_capacities = [| 64; 256; 1024; 4096; 16384; 65536 |]

let miss_curve ?(capacities = default_capacities) w ~icount =
  let reuse = measure_workload w ~icount in
  Array.map (fun c -> (c, A.Reuse.miss_rate_for_capacity reuse ~blocks:c)) capacities

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "temporal data locality per suite (mean log2 reuse distance)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-22s %8s %8s %8s\n" "suite" "mean" "min" "max");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %8.2f %8.2f %8.2f\n" (W.Suite.name s.s_suite) s.s_mean s.s_min
           s.s_max))
    r.suites;
  Buffer.add_string buf "\npoorest temporal locality (top 8 benchmarks):\n";
  List.iteri
    (fun i row ->
      if i < 8 then
        Buffer.add_string buf
          (Printf.sprintf "  %-45s %6.2f (cold %4.1f%%)\n" row.id row.mean_log2_distance
             (100.0 *. row.cold_fraction)))
    r.rows;
  Buffer.add_string buf "\nbest temporal locality (bottom 4):\n";
  let n = List.length r.rows in
  List.iteri
    (fun i row ->
      if i >= n - 4 then
        Buffer.add_string buf
          (Printf.sprintf "  %-45s %6.2f (cold %4.1f%%)\n" row.id row.mean_log2_distance
             (100.0 *. row.cold_fraction)))
    r.rows;
  Buffer.contents buf
