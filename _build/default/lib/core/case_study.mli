(** Per-benchmark-pair characteristic comparisons (Figures 2 and 3): the
    paper's bzip2-versus-blast case study, generalized to any pair.

    Values are normalized per characteristic by the maximum observed over
    all benchmarks in the dataset, exactly as in the paper's figures. *)

type comparison = {
  features : string array;
  a_name : string;
  b_name : string;
  a : float array;  (** max-normalized values for benchmark [a] *)
  b : float array;
}

val compare_in : Dataset.t -> a:string -> b:string -> comparison
(** Compare two rows of any dataset.  Raises [Invalid_argument] on unknown
    names. *)

val hpc_with_mix : hpc:Dataset.t -> mica:Dataset.t -> Dataset.t
(** The paper's Figure 2 view: the hardware counter metrics with the
    instruction-mix characteristics appended ("we use the instruction mix
    here as part of the hardware performance counter characterization"). *)

val render : comparison -> string
(** Side-by-side text bars. *)
