type series = { label : string; points : (float * float) array; color : string }

let default_colors =
  [| "#4477aa"; "#ee6677"; "#228833"; "#ccbb44"; "#66ccee"; "#aa3377"; "#bbbbbb" |]

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* data extents over all series, padded slightly; degenerate ranges widen *)
let extents series =
  let xs = List.concat_map (fun s -> Array.to_list (Array.map fst s.points)) series in
  let ys = List.concat_map (fun s -> Array.to_list (Array.map snd s.points)) series in
  let range vs =
    match vs with
    | [] -> (0.0, 1.0)
    | v :: _ ->
      let lo = List.fold_left Float.min v vs and hi = List.fold_left Float.max v vs in
      if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5)
  in
  (range xs, range ys)

let nice_ticks lo hi =
  let span = hi -. lo in
  let raw = span /. 5.0 in
  let mag = 10.0 ** Float.round (log10 raw) in
  let step =
    List.find_opt (fun s -> s >= raw) [ mag /. 2.0; mag; mag *. 2.0; mag *. 5.0 ]
    |> Option.value ~default:mag
  in
  let first = Float.round (lo /. step) *. step in
  let rec go v acc = if v > hi +. (step /. 2.0) then List.rev acc else go (v +. step) (v :: acc) in
  List.filter (fun t -> t >= lo -. 1e-9 && t <= hi +. 1e-9) (go first [])

let chart ~title ~x_label ~y_label ?(width = 640) ?(height = 440) ~draw series =
  let w = float_of_int width and h = float_of_int height in
  let ml = 64.0 and mr = 140.0 and mt = 40.0 and mb = 52.0 in
  let (xlo, xhi), (ylo, yhi) = extents series in
  let px x = ml +. ((x -. xlo) /. (xhi -. xlo) *. (w -. ml -. mr)) in
  let py y = h -. mb -. ((y -. ylo) /. (yhi -. ylo) *. (h -. mt -. mb)) in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d \
        %d\" font-family=\"sans-serif\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%.0f\" y=\"22\" font-size=\"15\" font-weight=\"bold\">%s</text>\n"
       ml (escape title));
  (* axes *)
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#333\"/>\n" ml (h -. mb)
       (w -. mr) (h -. mb));
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#333\"/>\n" ml mt ml
       (h -. mb));
  (* ticks *)
  List.iter
    (fun t ->
      let x = px t in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#333\"/>\n\
            <text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" text-anchor=\"middle\">%g</text>\n"
           x (h -. mb) x
           (h -. mb +. 5.0)
           x
           (h -. mb +. 18.0)
           t))
    (nice_ticks xlo xhi);
  List.iter
    (fun t ->
      let y = py t in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#333\"/>\n\
            <text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" text-anchor=\"end\">%g</text>\n"
           (ml -. 5.0) y ml y (ml -. 8.0) (y +. 3.0) t))
    (nice_ticks ylo yhi);
  (* axis labels *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\">%s</text>\n"
       ((ml +. w -. mr) /. 2.0)
       (h -. 12.0) (escape x_label));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"16\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" \
        transform=\"rotate(-90 16 %.1f)\">%s</text>\n"
       ((mt +. h -. mb) /. 2.0)
       ((mt +. h -. mb) /. 2.0)
       (escape y_label));
  (* series + legend *)
  List.iteri
    (fun i s ->
      draw buf ~px ~py s;
      let ly = mt +. (float_of_int i *. 18.0) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" fill=\"%s\"/>\n\
            <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n"
           (w -. mr +. 10.0) ly s.color
           (w -. mr +. 25.0)
           (ly +. 9.0) (escape s.label)))
    series;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let scatter ~title ~x_label ~y_label ?width ?height series =
  chart ~title ~x_label ~y_label ?width ?height series ~draw:(fun buf ~px ~py s ->
      Array.iter
        (fun (x, y) ->
          Buffer.add_string buf
            (Printf.sprintf
               "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"1.8\" fill=\"%s\" fill-opacity=\"0.55\"/>\n"
               (px x) (py y) s.color))
        s.points)

let lines ~title ~x_label ~y_label ?width ?height series =
  chart ~title ~x_label ~y_label ?width ?height series ~draw:(fun buf ~px ~py s ->
      if Array.length s.points > 0 then begin
        let pts =
          String.concat " "
            (Array.to_list
               (Array.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y)) s.points))
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n" pts
             s.color)
      end)

let write ~path svg =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc svg)
