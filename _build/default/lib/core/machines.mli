(** Cross-machine stability of counter-based characterization.

    The paper's core warning is that conclusions drawn from
    microarchitecture-dependent characteristics "may not be generalized to
    other microarchitectures".  This experiment quantifies that: the same
    122 workloads are measured on several machine models
    ({!Mica_uarch.Machine.presets}); we then compare the benchmark-distance
    structure each machine induces — against the other machines and
    against the microarchitecture-independent space (which is
    machine-invariant by construction). *)

type machine_space = {
  config_name : string;
  dataset : Dataset.t;  (** workloads x 6 counter metrics *)
  space : Space.t;
}

type result = {
  spaces : machine_space list;
  cross_correlation : (string * string * float) list;
      (** distance-vector Pearson correlation for each machine pair *)
  mica_correlation : (string * float) list;
      (** each machine space's distance correlation with the MICA space *)
  transfer : (string * string * Classify.counts) list;
      (** treating "similar on machine A" as ground truth at the 20%
          threshold, how do "similar on machine B" verdicts classify?
          False positives here are benchmark pairs one machine calls
          similar and the other does not — conclusions that failed to
          transfer. *)
}

val run :
  ?configs:Mica_uarch.Machine.config list -> Experiments.Context.t -> result
(** Measures every workload on every machine (one generated trace per
    workload, fanned out to all machines) at the context's trace length. *)

val render : result -> string
