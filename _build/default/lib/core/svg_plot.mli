(** Minimal SVG chart rendering for the regenerated figures.

    Two chart kinds cover the paper's figures: scatter plots (Figure 1)
    and multi-series line charts (Figures 4 and 5).  Output is
    self-contained SVG with axes, ticks and a legend — no external
    dependencies. *)

type series = {
  label : string;
  points : (float * float) array;
  color : string;  (** CSS color *)
}

val scatter :
  title:string ->
  x_label:string ->
  y_label:string ->
  ?width:int ->
  ?height:int ->
  series list ->
  string
(** Dots per series. *)

val lines :
  title:string ->
  x_label:string ->
  y_label:string ->
  ?width:int ->
  ?height:int ->
  series list ->
  string
(** Polyline per series (points drawn in the given order). *)

val write : path:string -> string -> unit

val default_colors : string array
(** A small categorical palette, cycled by series index. *)
