(** Labeled observation matrices: benchmarks (rows) by characteristics
    (columns), with CSV round-tripping for caching and export. *)

type t = {
  names : string array;  (** row labels (workload ids) *)
  features : string array;  (** column labels (characteristic short names) *)
  data : Mica_stats.Matrix.t;
}

val create : names:string array -> features:string array -> Mica_stats.Matrix.t -> t
(** Validates that dimensions match the labels. *)

val rows : t -> int
val cols : t -> int

val row_index : t -> string -> int option
val row_exn : t -> string -> float array
val feature_index : t -> string -> int option

val select_features : t -> int array -> t
val select_rows : t -> int array -> t

val append_rows : t -> t -> t
(** Requires identical feature labels. *)

val to_csv : t -> string -> unit
(** Header row is ["name"; features...]; one row per observation. *)

val of_csv : string -> t
(** Inverse of {!to_csv}.  Raises [Failure] on malformed input. *)
