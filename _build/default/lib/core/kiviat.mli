(** Kiviat (radar) diagrams of workloads over key characteristics
    (Figure 6).

    Values are expected in [0, 1] per axis (use
    {!Mica_stats.Normalize.unit_range} over the dataset first).  Two
    renderers: a compact unicode bar form for terminals, and an SVG grid
    grouped by cluster for files. *)

val text : axes:string array -> values:float array -> string
(** One line per axis: label, bar, value. *)

val text_compact : values:float array -> string
(** A single-line block-character sparkline (one glyph per axis). *)

type plot = {
  p_label : string;
  p_values : float array;  (** unit-range, one per axis *)
  p_cluster : int;
}

val svg_grid : title:string -> axes:string array -> plot list -> string
(** An SVG document laying the kiviat plots out in rows, one row group per
    cluster (plots must be pre-sorted by cluster; a cluster header is
    emitted whenever [p_cluster] changes). *)

val write_svg : path:string -> title:string -> axes:string array -> plot list -> unit
