(** Benchmark-tuple classification (section IV, Table III).

    Every benchmark pair is labelled by whether its distance is {e large}
    (above a fraction of the maximum observed distance) in the
    hardware-performance-counter space and in the
    microarchitecture-independent space:

    - true positive: large in both — both views agree the pair differs;
    - true negative: small in both — both views agree the pair is similar;
    - false positive: large in the MICA space, small in the counter
      space — inherently different programs that look alike on one machine
      (the paper's pitfall);
    - false negative: small in the MICA space, large in the counter space. *)

type counts = {
  true_pos : int;
  true_neg : int;
  false_pos : int;
  false_neg : int;
  total : int;
}

type fractions = {
  f_true_pos : float;
  f_true_neg : float;
  f_false_pos : float;
  f_false_neg : float;
}

val classify :
  hpc_distances:float array -> mica_distances:float array -> ?frac:float -> unit -> counts
(** [frac] is the threshold fraction of each space's maximum distance
    (default 0.2, the paper's 20%).  Requires equal-length condensed
    distance vectors. *)

val fractions : counts -> fractions

val correlation : hpc_distances:float array -> mica_distances:float array -> float
(** Pearson correlation between the two distance vectors (the paper's
    Figure 1 statistic, reported as 0.46). *)
