(** Temporal-locality comparison across suites (Joshi et al. follow-up).

    Using the reuse-distance analyzer, measures each workload's temporal
    data locality and aggregates per suite — the axis along which Joshi et
    al. found SPEC generations drifting.  Also extracts full LRU miss-rate
    curves (miss rate as a function of cache capacity, all sizes priced by
    one trace pass) for selected workloads. *)

type row = {
  id : string;
  suite : Mica_workloads.Suite.t;
  mean_log2_distance : float;  (** higher = poorer temporal locality *)
  cold_fraction : float;  (** first-touch share of accesses *)
}

type suite_summary = {
  s_suite : Mica_workloads.Suite.t;
  s_mean : float;  (** average of members' mean_log2_distance *)
  s_min : float;
  s_max : float;
}

type result = {
  rows : row list;  (** per workload, sorted by descending mean distance *)
  suites : suite_summary list;
}

val run : Experiments.Context.t -> result
(** One additional trace pass per workload at the context's trace length. *)

val miss_curve :
  ?capacities:int array -> Mica_workloads.Workload.t -> icount:int -> (int * float) array
(** [(capacity_in_32B_blocks, LRU miss rate)] points for one workload. *)

val render : result -> string
