module Stats = Mica_stats
module Machine = Mica_uarch.Machine
module W = Mica_workloads

type machine_space = { config_name : string; dataset : Dataset.t; space : Space.t }

type result = {
  spaces : machine_space list;
  cross_correlation : (string * string * float) list;
  mica_correlation : (string * float) list;
  transfer : (string * string * Classify.counts) list;
}

let run ?(configs = Machine.presets) (ctx : Experiments.Context.t) =
  let workloads = ctx.Experiments.Context.workloads in
  let icount = ctx.Experiments.Context.config.Pipeline.icount in
  let names = Array.of_list (List.map W.Workload.id workloads) in
  (* rows.(w) = per-machine counter vectors for workload w *)
  let rows =
    List.map
      (fun (w : W.Workload.t) ->
        Machine.measure_all configs w.W.Workload.model ~icount |> List.map Machine.to_vector)
      workloads
  in
  let spaces =
    List.mapi
      (fun m (cfg : Machine.config) ->
        let data = Array.of_list (List.map (fun vs -> List.nth vs m) rows) in
        let dataset = Dataset.create ~names ~features:Machine.metric_names data in
        { config_name = cfg.Machine.name; dataset; space = Space.of_dataset dataset })
      configs
  in
  let pairs =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a.config_name < b.config_name then Some (a, b) else None) spaces)
      spaces
  in
  let cross_correlation =
    List.map
      (fun (a, b) ->
        ( a.config_name,
          b.config_name,
          Stats.Correlation.pearson a.space.Space.distances b.space.Space.distances ))
      pairs
  in
  let mica_d = ctx.Experiments.Context.mica_space.Space.distances in
  let mica_correlation =
    List.map
      (fun s -> (s.config_name, Stats.Correlation.pearson s.space.Space.distances mica_d))
      spaces
  in
  let transfer =
    List.map
      (fun (a, b) ->
        ( a.config_name,
          b.config_name,
          Classify.classify ~hpc_distances:a.space.Space.distances
            ~mica_distances:b.space.Space.distances () ))
      pairs
  in
  { spaces; cross_correlation; mica_correlation; transfer }

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "cross-machine stability of counter-based similarity\n\n";
  Buffer.add_string buf "distance correlation between machine counter spaces:\n";
  List.iter
    (fun (a, b, c) -> Buffer.add_string buf (Printf.sprintf "  %-10s vs %-10s  %6.3f\n" a b c))
    r.cross_correlation;
  Buffer.add_string buf "\ndistance correlation of each machine space with the MICA space:\n";
  List.iter
    (fun (m, c) -> Buffer.add_string buf (Printf.sprintf "  %-10s %6.3f\n" m c))
    r.mica_correlation;
  Buffer.add_string buf
    "\ntransfer of similarity verdicts between machines (20% thresholds):\n";
  List.iter
    (fun (a, b, counts) ->
      let f = Classify.fractions counts in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s -> %s: %4.1f%% of pairs change verdict (%4.1f%% similar-on-%s-only, %4.1f%% \
            similar-on-%s-only)\n"
           a b
           (100.0 *. (f.Classify.f_false_pos +. f.Classify.f_false_neg))
           (100.0 *. f.Classify.f_false_pos) a (100.0 *. f.Classify.f_false_neg) b))
    r.transfer;
  Buffer.add_string buf
    "\n(the MICA space is microarchitecture-independent by construction: the same\n\
     vectors describe the workloads on every machine)\n";
  Buffer.contents buf
