let clamp01 v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let bar v =
  let width = 20 in
  let filled = int_of_float (Float.round (clamp01 v *. float_of_int width)) in
  String.concat "" [ String.make filled '#'; String.make (width - filled) '.' ]

let text ~axes ~values =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i v -> Buffer.add_string buf (Printf.sprintf "  %-10s |%s| %.3f\n" axes.(i) (bar v) v))
    values;
  Buffer.contents buf

let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let text_compact ~values =
  String.concat ""
    (Array.to_list
       (Array.map
          (fun v -> blocks.(int_of_float (Float.round (clamp01 v *. 8.0))))
          values))

type plot = { p_label : string; p_values : float array; p_cluster : int }

let svg_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One kiviat cell: axes radiating from the centre, a polygon connecting the
   per-axis values. *)
let cell buf ~x ~y ~size ~axes ~values ~label =
  let cx = x +. (size /. 2.0) and cy = y +. (size /. 2.0) in
  let r = size /. 2.0 -. 14.0 in
  let n = Array.length axes in
  let angle i = (2.0 *. Float.pi *. float_of_int i /. float_of_int n) -. (Float.pi /. 2.0) in
  let pt i rad = (cx +. (rad *. cos (angle i)), cy +. (rad *. sin (angle i))) in
  Buffer.add_string buf
    (Printf.sprintf
       "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"none\" stroke=\"#ddd\"/>\n" cx cy r);
  for i = 0 to n - 1 do
    let ex, ey = pt i r in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#eee\"/>\n" cx cy ex ey)
  done;
  let points =
    String.concat " "
      (List.init n (fun i ->
           let px, py = pt i (clamp01 values.(i) *. r) in
           Printf.sprintf "%.1f,%.1f" px py))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "<polygon points=\"%s\" fill=\"#4477aa\" fill-opacity=\"0.45\" stroke=\"#27517f\"/>\n"
       points);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"9\" text-anchor=\"middle\" \
        font-family=\"sans-serif\">%s</text>\n"
       cx
       (y +. size -. 2.0)
       (svg_escape label))

let svg_grid ~title ~axes plots =
  let cell_size = 110.0 in
  let per_row = 8 in
  let header_h = 24.0 in
  let buf = Buffer.create 65536 in
  (* lay out: new row group whenever the cluster changes *)
  let y = ref 30.0 in
  let x = ref 0.0 in
  let col = ref 0 in
  let current_cluster = ref min_int in
  let body = Buffer.create 65536 in
  List.iter
    (fun p ->
      if p.p_cluster <> !current_cluster then begin
        current_cluster := p.p_cluster;
        if !col > 0 then y := !y +. cell_size;
        Buffer.add_string body
          (Printf.sprintf
             "<text x=\"4\" y=\"%.1f\" font-size=\"13\" font-weight=\"bold\" \
              font-family=\"sans-serif\">Cluster %d</text>\n"
             (!y +. 14.0) (p.p_cluster + 1));
        y := !y +. header_h;
        x := 0.0;
        col := 0
      end;
      if !col >= per_row then begin
        y := !y +. cell_size;
        x := 0.0;
        col := 0
      end;
      cell body ~x:!x ~y:!y ~size:cell_size ~axes ~values:p.p_values ~label:p.p_label;
      x := !x +. cell_size;
      incr col)
    plots;
  let total_h = !y +. cell_size +. 20.0 in
  let total_w = float_of_int per_row *. cell_size in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.0f %.0f\">\n"
       total_w total_h total_w total_h);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"4\" y=\"18\" font-size=\"15\" font-weight=\"bold\" \
        font-family=\"sans-serif\">%s</text>\n"
       (svg_escape title));
  Buffer.add_buffer buf body;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg ~path ~title ~axes plots =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (svg_grid ~title ~axes plots))
