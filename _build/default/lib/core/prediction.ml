module Stats = Mica_stats

let knn_predict ~space ~targets ~k ~exclude i =
  let n = Space.n space in
  let neighbours =
    List.filter (fun j -> j <> i && j <> exclude) (List.init n Fun.id)
    |> List.map (fun j -> (Space.distance space i j, j))
    |> List.sort compare
    |> List.filteri (fun rank _ -> rank < k)
  in
  match List.find_opt (fun (d, _) -> d = 0.0) neighbours with
  | Some (_, j) -> targets.(j)
  | None ->
    let wsum = ref 0.0 and acc = ref 0.0 in
    List.iter
      (fun (d, j) ->
        let w = 1.0 /. d in
        wsum := !wsum +. w;
        acc := !acc +. (w *. targets.(j)))
      neighbours;
    if !wsum > 0.0 then !acc /. !wsum else 0.0

type eval = {
  metric : string;
  k : int;
  mean_abs_error : float;
  mean_rel_error : float;
  baseline_rel_error : float;
  rank_correlation : float;
}

let evaluate_loo ~space ~targets ~metric ~k =
  let n = Space.n space in
  let predictions = Array.init n (fun i -> knn_predict ~space ~targets ~k ~exclude:(-1) i) in
  let mean = Stats.Descriptive.mean targets in
  let abs_err = Array.init n (fun i -> Float.abs (predictions.(i) -. targets.(i))) in
  let rel_errors f =
    let errs =
      List.filter_map
        (fun i ->
          if targets.(i) > 1e-9 then Some (Float.abs (f i -. targets.(i)) /. targets.(i))
          else None)
        (List.init n Fun.id)
    in
    match errs with [] -> 0.0 | errs -> Stats.Descriptive.mean (Array.of_list errs)
  in
  {
    metric;
    k;
    mean_abs_error = Stats.Descriptive.mean abs_err;
    mean_rel_error = rel_errors (fun i -> predictions.(i));
    baseline_rel_error = rel_errors (fun _ -> mean);
    rank_correlation = Stats.Correlation.spearman predictions targets;
  }

let evaluate_counters ?(k = 5) (ctx : Experiments.Context.t) =
  let space = ctx.Experiments.Context.mica_space in
  let hpc = ctx.Experiments.Context.hpc in
  Array.to_list
    (Array.mapi
       (fun j metric ->
         let targets = Array.map (fun row -> row.(j)) hpc.Dataset.data in
         evaluate_loo ~space ~targets ~metric ~k)
       hpc.Dataset.features)

let render evals =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "leave-one-out performance prediction from the MICA space (kNN, inverse-distance)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-12s %3s %12s %12s %16s %10s\n" "metric" "k" "mean |err|" "rel. err"
       "baseline rel err" "rank corr");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %3d %12.4f %11.1f%% %15.1f%% %10.3f\n" e.metric e.k
           e.mean_abs_error
           (100.0 *. e.mean_rel_error)
           (100.0 *. e.baseline_rel_error)
           e.rank_correlation))
    evals;
  Buffer.add_string buf
    "(beating the predict-the-mean baseline shows inherent similarity carries\n\
     machine-performance information, the premise of the authors' PACT'06 work)\n";
  Buffer.contents buf
