module Stats = Mica_stats

type t = {
  interval : int;
  k : int;
  assignments : int array;
  representatives : int array;
  weights : float array;
}

let analyze ?(interval = 10_000) ?(max_k = 10) ?(dims = 15) program ~icount =
  let bbv = Mica_analysis.Bbv.create ~interval () in
  let (_ : int) =
    Mica_trace.Generator.run program ~icount ~sink:(Mica_analysis.Bbv.sink bbv)
  in
  let projected = Mica_analysis.Bbv.projected ~dims bbv in
  let n = Array.length projected in
  if n = 0 then invalid_arg "Phases.analyze: trace too short for one interval";
  let rng = Mica_util.Rng.create ~seed:0x9A5E5L in
  (* Steady-state guard: if the between-interval variance is negligible
     relative to the BBV magnitude, the program has a single phase — any
     clustering of the residual noise would be overfitting. *)
  let total_ss =
    Array.fold_left
      (fun acc row -> acc +. Array.fold_left (fun a v -> a +. (v *. v)) 0.0 row)
      0.0 projected
  in
  let single = Stats.Kmeans.fit ~rng ~k:1 projected in
  let negligible = single.Stats.Kmeans.inertia < 0.02 *. Float.max total_ss 1e-12 in
  let k, result =
    if negligible || n = 1 then (1, single)
    else begin
      let sweep = Stats.Bic.sweep ~k_min:1 ~k_max:(min max_k n) ~restarts:3 ~rng projected in
      (* SimPoint's selection rule: the smallest K within 90% of the best
         BIC (the Peak rule would chase residual noise). *)
      let k, result, _ = Stats.Bic.choose ~frac:0.9 ~prefer:Stats.Bic.Smallest_within sweep in
      (k, result)
    end
  in
  let assignments = result.Stats.Kmeans.assignments in
  (* representative = interval closest to its centroid *)
  let representatives = Array.make k (-1) in
  let best = Array.make k infinity in
  Array.iteri
    (fun i row ->
      let c = assignments.(i) in
      let d = Stats.Distance.squared_euclidean row result.Stats.Kmeans.centroids.(c) in
      if d < best.(c) then begin
        best.(c) <- d;
        representatives.(c) <- i
      end)
    projected;
  let counts = Array.make k 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) assignments;
  let weights = Array.map (fun c -> float_of_int c /. float_of_int n) counts in
  { interval; k; assignments; representatives; weights }

let phase_char c =
  if c < 26 then Char.chr (Char.code 'A' + c) else Char.chr (Char.code 'a' + (c - 26) mod 26)

let timeline t =
  String.init (Array.length t.assignments) (fun i -> phase_char t.assignments.(i))

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d phases over %d intervals of %d instructions\n"
       t.k (Array.length t.assignments) t.interval);
  Array.iteri
    (fun c w ->
      Buffer.add_string buf
        (Printf.sprintf "  phase %c: weight %5.1f%%, representative interval %d\n"
           (phase_char c) (100.0 *. w) t.representatives.(c)))
    t.weights;
  Buffer.add_string buf (Printf.sprintf "timeline: %s\n" (timeline t));
  Buffer.contents buf
