type t = {
  chosen : int array;
  representative_of : int array;
  max_distance : float;
  mean_distance : float;
}

(* medoid: the observation minimizing total distance to all others *)
let medoid space =
  let n = Space.n space in
  let best = ref 0 and best_sum = ref infinity in
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. Space.distance space i j
    done;
    if !sum < !best_sum then begin
      best_sum := !sum;
      best := i
    end
  done;
  !best

let k_center space ~k =
  let n = Space.n space in
  if k < 1 || k > n then invalid_arg "Subsetting.k_center: k out of range";
  let chosen = ref [ medoid space ] in
  (* nearest.(i) = (distance to nearest chosen, that chosen index) *)
  let nearest = Array.init n (fun i -> (Space.distance space i (List.hd !chosen), List.hd !chosen)) in
  while List.length !chosen < k do
    (* farthest point from the current selection *)
    let far = ref 0 and far_d = ref neg_infinity in
    Array.iteri
      (fun i (d, _) ->
        if d > !far_d then begin
          far_d := d;
          far := i
        end)
      nearest;
    chosen := !far :: !chosen;
    Array.iteri
      (fun i (d, _) ->
        let d' = Space.distance space i !far in
        if d' < d then nearest.(i) <- (d', !far))
      nearest
  done;
  let representative_of = Array.map snd nearest in
  let distances = Array.map fst nearest in
  {
    chosen = Array.of_list (List.rev !chosen);
    representative_of;
    max_distance = Array.fold_left Float.max 0.0 distances;
    mean_distance = Mica_stats.Descriptive.mean distances;
  }

let sweep space ~ks = List.map (fun k -> (k, (k_center space ~k).max_distance)) ks

let render space t =
  let names = space.Space.dataset.Dataset.names in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "reduced suite of %d benchmarks (covering radius %.3f, mean distance %.3f):\n"
       (Array.length t.chosen) t.max_distance t.mean_distance);
  Array.iter
    (fun c ->
      let covered =
        List.filter
          (fun i -> t.representative_of.(i) = c && i <> c)
          (List.init (Array.length names) Fun.id)
      in
      Buffer.add_string buf (Printf.sprintf "* %s\n" names.(c));
      Buffer.add_string buf
        (Printf.sprintf "    represents %d others%s\n" (List.length covered)
           (if covered = [] then ""
            else
              ": "
              ^ String.concat ", "
                  (List.filteri (fun i _ -> i < 4) (List.map (fun i -> names.(i)) covered))
              ^ if List.length covered > 4 then ", ..." else "")))
    t.chosen;
  Buffer.contents buf
