module Stats = Mica_stats
module Select = Mica_select

type point = { dims : int; rho : float; auc : float; measured_characteristics : int }

type result = {
  pca_points : point array;
  ga_rho : float;
  ga_auc : float;
  ga_measured : int;
  variance_explained_8 : float;
}

let dims_swept = [ 1; 2; 4; 8; 12; 16; 24; 32; 47 ]

(* AUC against the counter space; [nan] when the 20% threshold labels all
   pairs identically (possible on very small workload subsets). *)
let auc_of ctx distances =
  let hpc = ctx.Experiments.Context.hpc_space.Space.distances in
  let labels = Stats.Roc.positives ~ref_distances:hpc ~frac:0.2 in
  let positives = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 labels in
  if positives = 0 || positives = Array.length labels then Float.nan
  else (Stats.Roc.curve ~labels ~scores:distances).Stats.Roc.auc

let run (ctx : Experiments.Context.t) ~(ga : Select.Genetic.result) =
  let data = ctx.Experiments.Context.mica.Dataset.data in
  let full = Select.Fitness.full_distances ctx.Experiments.Context.fitness in
  let pca = Stats.Pca.fit data in
  let pca_points =
    Array.of_list
      (List.map
         (fun dims ->
           let projected = Stats.Pca.transform pca ~dims data in
           let distances = Stats.Distance.condensed projected in
           {
             dims;
             rho = Stats.Correlation.pearson distances full;
             auc = auc_of ctx distances;
             measured_characteristics = Mica_analysis.Characteristics.count;
           })
         dims_swept)
  in
  let ga_distances = Select.Fitness.distances_for ctx.Experiments.Context.fitness ga.Select.Genetic.selected in
  let ratios = Stats.Pca.explained_variance_ratio pca in
  let var8 =
    Array.fold_left ( +. ) 0.0 (Array.sub ratios 0 (min 8 (Array.length ratios)))
  in
  {
    pca_points;
    ga_rho = ga.Select.Genetic.rho;
    ga_auc = auc_of ctx ga_distances;
    ga_measured = Array.length ga.Select.Genetic.selected;
    variance_explained_8 = var8;
  }

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "PCA baseline vs genetic algorithm (distance fidelity per dimensionality)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-22s %6s %8s %8s %22s\n" "method" "dims" "rho" "AUC"
       "chars to measure");
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %6d %8.3f %8.3f %22d\n" "PCA" p.dims p.rho p.auc
           p.measured_characteristics))
    r.pca_points;
  Buffer.add_string buf
    (Printf.sprintf "  %-22s %6d %8.3f %8.3f %22d\n" "genetic algorithm" r.ga_measured
       r.ga_rho r.ga_auc r.ga_measured);
  Buffer.add_string buf
    (Printf.sprintf
       "  (first 8 principal components explain %.1f%% of variance, but PCA still\n\
       \   requires measuring all 47 characteristics; the GA needs only its %d)\n"
       (100.0 *. r.variance_explained_8)
       r.ga_measured);
  Buffer.contents buf
