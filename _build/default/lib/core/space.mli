(** A workload space: a dataset with z-score normalization and condensed
    pairwise Euclidean distances, as used throughout sections IV-VI. *)

type t = {
  dataset : Dataset.t;
  normalized : Mica_stats.Matrix.t;
  zparams : (float * float) array;  (** per-feature (mean, stddev) *)
  distances : float array;  (** condensed upper-triangle distances *)
}

val of_dataset : Dataset.t -> t

val n : t -> int
(** Number of observations. *)

val distance : t -> int -> int -> float
(** Distance between observations by row index. *)

val distance_by_name : t -> string -> string -> float
(** Raises [Invalid_argument] on unknown names. *)

val max_distance : t -> float

val nearest : t -> int -> k:int -> (int * float) list
(** The [k] nearest other observations to row [i], ascending distance. *)

val place : t -> float array -> float array
(** Normalize a new observation with the space's parameters (to position a
    workload that was not part of the original dataset). *)

val distances_from : t -> float array -> float array
(** Distances from a new (raw) observation to every row of the space. *)
