(** Quantitative versions of the paper's section VI conclusions.

    {b Suite coverage}: for each emerging suite, which benchmarks lie close
    to some SPEC CPU2000 benchmark in the key-characteristic space (SPEC
    already covers them) and which are dissimilar from all of SPEC (they
    motivate extending the design suite)?  The paper concludes BioInfoMark,
    BioMetricsWorkload and CommBench contain dissimilar benchmarks while
    MediaBench and MiBench mostly overlap SPEC.

    {b Input sensitivity}: several programs appear with multiple inputs
    (gcc, gzip, hmmer, tiff, ...); the paper notes that some benchmarks
    isolate only for particular inputs (its clusters 3 and 6).  This
    analysis measures how far apart a program's own inputs lie, relative
    to the typical distance between different programs. *)

type coverage_row = {
  suite : Mica_workloads.Suite.t;
  total : int;  (** benchmarks in the suite *)
  covered : int;  (** within the threshold of some SPEC benchmark *)
  dissimilar : string array;  (** ids of the uncovered benchmarks *)
}

val suite_coverage :
  ?frac:float -> Experiments.Context.t -> selected:int array -> coverage_row list
(** One row per non-SPEC suite; [frac] (default 0.2) of the maximum pair
    distance in the reduced space is the similarity threshold. *)

val render_coverage : coverage_row list -> string

type sensitivity_row = {
  program : string;  (** "suite/program" *)
  inputs : int;
  max_intra : float;  (** largest distance between two inputs of the program *)
  relative : float;  (** [max_intra] / median inter-program distance *)
}

val input_sensitivity : Experiments.Context.t -> selected:int array -> sensitivity_row list
(** One row per program with at least two inputs, sorted by descending
    [relative]. *)

val render_sensitivity : sensitivity_row list -> string
