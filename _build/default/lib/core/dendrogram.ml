module Stats = Mica_stats

type t = { dataset : Dataset.t; tree : Stats.Linkage.tree }

let build ?linkage dataset =
  let normalized = Stats.Normalize.zscore dataset.Dataset.data in
  { dataset; tree = Stats.Linkage.cluster ?linkage normalized }

let render ?(max_depth = max_int) t =
  let buf = Buffer.create 4096 in
  let name i = t.dataset.Dataset.names.(i) in
  let rec go prefix depth tree =
    match (tree : Stats.Linkage.tree) with
    | Stats.Linkage.Leaf i -> Buffer.add_string buf (Printf.sprintf "%s%s\n" prefix (name i))
    | Stats.Linkage.Node { left; right; height; size } ->
      if depth >= max_depth then
        Buffer.add_string buf
          (Printf.sprintf "%s[%d benchmarks, height %.2f]\n" prefix size height)
      else begin
        Buffer.add_string buf (Printf.sprintf "%s+ %.2f\n" prefix height);
        go (prefix ^ "| ") (depth + 1) left;
        go (prefix ^ "| ") (depth + 1) right
      end
  in
  go "" 0 t.tree;
  Buffer.contents buf

let clusters_at t ~k =
  let assignments = Stats.Linkage.cut t.tree ~k in
  let members = Array.make k [] in
  let n = Array.length assignments in
  for i = n - 1 downto 0 do
    members.(assignments.(i)) <- t.dataset.Dataset.names.(i) :: members.(assignments.(i))
  done;
  List.init k (fun c -> (c, Array.of_list members.(c)))
