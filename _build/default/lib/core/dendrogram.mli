(** Dendrogram rendering of hierarchical workload clusterings.

    Complements the paper's k-means view (Figure 6) with the
    dendrogram presentation its prior work used: the full merge structure
    of benchmark similarity, cut at any granularity. *)

type t = {
  dataset : Dataset.t;
  tree : Mica_stats.Linkage.tree;
}

val build : ?linkage:Mica_stats.Linkage.linkage -> Dataset.t -> t
(** Z-scores the dataset and clusters its rows hierarchically. *)

val render : ?max_depth:int -> t -> string
(** ASCII dendrogram: nested merges with heights; subtrees deeper than
    [max_depth] (default unlimited) are summarized as "[n benchmarks]". *)

val clusters_at : t -> k:int -> (int * string array) list
(** Cut into [k] clusters; returns (cluster id, member names) pairs in leaf
    order. *)
