lib/core/space.ml: Array Dataset Fun List Mica_stats Printf
