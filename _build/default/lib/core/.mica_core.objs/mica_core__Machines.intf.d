lib/core/machines.mli: Classify Dataset Experiments Mica_uarch Space
