lib/core/subsetting.ml: Array Buffer Dataset Float Fun List Mica_stats Printf Space String
