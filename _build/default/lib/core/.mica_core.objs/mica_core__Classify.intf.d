lib/core/classify.mli:
