lib/core/simpoint.ml: Array Buffer Float List Mica_stats Mica_trace Mica_uarch Mica_workloads Phases Printf
