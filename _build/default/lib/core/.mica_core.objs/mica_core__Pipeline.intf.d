lib/core/pipeline.mli: Dataset Mica_workloads
