lib/core/phases.mli: Mica_trace
