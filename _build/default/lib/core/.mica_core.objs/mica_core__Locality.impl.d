lib/core/locality.ml: Array Buffer Experiments List Mica_analysis Mica_stats Mica_trace Mica_workloads Pipeline Printf
