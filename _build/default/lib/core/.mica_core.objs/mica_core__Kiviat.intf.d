lib/core/kiviat.mli:
