lib/core/experiments.mli: Case_study Classify Clustering Dataset Kiviat Mica_select Mica_stats Mica_workloads Pipeline Space
