lib/core/phases.ml: Array Buffer Char Float Mica_analysis Mica_stats Mica_trace Mica_util Printf String
