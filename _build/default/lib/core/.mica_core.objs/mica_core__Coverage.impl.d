lib/core/coverage.ml: Array Buffer Dataset Experiments Float Fun Hashtbl List Mica_stats Mica_workloads Option Printf Space String
