lib/core/pipeline.ml: Array Atomic Dataset Domain Filename Hashtbl List Logs Mica_analysis Mica_trace Mica_uarch Mica_workloads Option Printf Sys
