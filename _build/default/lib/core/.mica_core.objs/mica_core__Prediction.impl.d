lib/core/prediction.ml: Array Buffer Dataset Experiments Float Fun List Mica_stats Printf Space
