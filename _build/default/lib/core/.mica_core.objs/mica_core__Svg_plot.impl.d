lib/core/svg_plot.ml: Array Buffer Float Fun List Option Printf String
