lib/core/case_study.mli: Dataset
