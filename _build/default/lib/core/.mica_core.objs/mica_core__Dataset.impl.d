lib/core/dataset.ml: Array List Mica_stats Mica_util Printf
