lib/core/pca_comparison.ml: Array Buffer Dataset Experiments Float List Mica_analysis Mica_select Mica_stats Printf Space
