lib/core/classify.ml: Array Mica_stats
