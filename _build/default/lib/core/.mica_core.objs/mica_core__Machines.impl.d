lib/core/machines.ml: Array Buffer Classify Dataset Experiments List Mica_stats Mica_uarch Mica_workloads Pipeline Printf Space
