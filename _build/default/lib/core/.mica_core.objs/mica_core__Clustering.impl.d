lib/core/clustering.ml: Array Dataset List Mica_stats Mica_util Option
