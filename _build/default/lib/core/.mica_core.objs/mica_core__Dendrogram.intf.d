lib/core/dendrogram.mli: Dataset Mica_stats
