lib/core/dendrogram.ml: Array Buffer Dataset List Mica_stats Printf
