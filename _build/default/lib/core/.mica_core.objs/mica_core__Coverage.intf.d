lib/core/coverage.mli: Experiments Mica_workloads
