lib/core/simpoint.mli: Mica_workloads Phases
