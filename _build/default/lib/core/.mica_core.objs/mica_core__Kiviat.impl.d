lib/core/kiviat.ml: Array Buffer Float Fun List Printf String
