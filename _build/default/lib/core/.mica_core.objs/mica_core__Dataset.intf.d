lib/core/dataset.mli: Mica_stats
