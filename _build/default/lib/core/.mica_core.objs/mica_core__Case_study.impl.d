lib/core/case_study.ml: Array Buffer Dataset Float Mica_stats Printf String
