lib/core/svg_plot.mli:
