lib/core/locality.mli: Experiments Mica_workloads
