lib/core/prediction.mli: Experiments Space
