lib/core/space.mli: Dataset Mica_stats
