lib/core/pca_comparison.mli: Experiments Mica_select
