lib/core/clustering.mli: Dataset Mica_stats
