lib/core/subsetting.mli: Space
