module Stats = Mica_stats
module W = Mica_workloads

type coverage_row = {
  suite : W.Suite.t;
  total : int;
  covered : int;
  dissimilar : string array;
}

let reduced_space ctx ~selected =
  Space.of_dataset (Dataset.select_features ctx.Experiments.Context.mica selected)

let suite_of_id id =
  match String.index_opt id '/' with
  | Some i -> W.Suite.of_name (String.sub id 0 i)
  | None -> None

let suite_coverage ?(frac = 0.2) ctx ~selected =
  let space = reduced_space ctx ~selected in
  let names = space.Space.dataset.Dataset.names in
  let n = Space.n space in
  let threshold = frac *. Space.max_distance space in
  let spec_rows =
    List.filter
      (fun i -> suite_of_id names.(i) = Some W.Suite.SpecCpu2000)
      (List.init n Fun.id)
  in
  let nearest_spec i =
    List.fold_left (fun acc j -> Float.min acc (Space.distance space i j)) infinity spec_rows
  in
  List.filter_map
    (fun suite ->
      if suite = W.Suite.SpecCpu2000 then None
      else begin
        let members =
          List.filter (fun i -> suite_of_id names.(i) = Some suite) (List.init n Fun.id)
        in
        let dissimilar =
          List.filter (fun i -> nearest_spec i > threshold) members
          |> List.map (fun i -> names.(i))
          |> Array.of_list
        in
        Some
          {
            suite;
            total = List.length members;
            covered = List.length members - Array.length dissimilar;
            dissimilar;
          }
      end)
    W.Suite.all

let render_coverage rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "coverage of the emerging suites by SPEC CPU2000 (key-characteristic space)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-22s %8s %8s %12s\n" "suite" "total" "covered" "dissimilar");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %8d %8d %12d\n" (W.Suite.name r.suite) r.total r.covered
           (Array.length r.dissimilar)))
    rows;
  Buffer.add_string buf "\nbenchmarks SPEC CPU2000 does not cover:\n";
  List.iter
    (fun r ->
      Array.iter (fun id -> Buffer.add_string buf (Printf.sprintf "  %s\n" id)) r.dissimilar)
    rows;
  Buffer.add_string buf
    "(paper: several BioInfoMark/BioMetricsWorkload/CommBench benchmarks are dissimilar\n\
     from SPEC; MediaBench and MiBench mostly overlap it)\n";
  Buffer.contents buf

type sensitivity_row = { program : string; inputs : int; max_intra : float; relative : float }

let input_sensitivity ctx ~selected =
  let space = reduced_space ctx ~selected in
  let names = space.Space.dataset.Dataset.names in
  let n = Space.n space in
  (* group rows by "suite/program" *)
  let program_of id =
    match String.split_on_char '/' id with
    | suite :: program :: _ -> suite ^ "/" ^ program
    | _ -> id
  in
  let groups = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let key = program_of names.(i) in
    Hashtbl.replace groups key (i :: Option.value (Hashtbl.find_opt groups key) ~default:[])
  done;
  (* median inter-program distance as the scale reference *)
  let median_inter =
    let ds = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if program_of names.(i) <> program_of names.(j) then
          ds := Space.distance space i j :: !ds
      done
    done;
    match !ds with
    | [] -> 1.0
    | ds -> Stats.Descriptive.percentile (Array.of_list ds) 0.5
  in
  Hashtbl.fold
    (fun program members acc ->
      if List.length members < 2 then acc
      else begin
        let max_intra =
          List.fold_left
            (fun best i ->
              List.fold_left
                (fun best j -> if i < j then Float.max best (Space.distance space i j) else best)
                best members)
            0.0 members
        in
        {
          program;
          inputs = List.length members;
          max_intra;
          relative = (if median_inter > 0.0 then max_intra /. median_inter else 0.0);
        }
        :: acc
      end)
    groups []
  |> List.sort (fun a b -> compare b.relative a.relative)

let render_sensitivity rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "input sensitivity: how far apart do a program's own inputs lie?\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-30s %7s %11s %22s\n" "program" "inputs" "max intra"
       "vs median inter-prog");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-30s %7d %11.3f %21.2fx\n" r.program r.inputs r.max_intra r.relative))
    rows;
  Buffer.add_string buf
    "(ratios near or above 1 mean the input changes behaviour as much as switching\n\
     programs — the paper's \"isolated behaviour for particular inputs\", clusters 3/6)\n";
  Buffer.contents buf
