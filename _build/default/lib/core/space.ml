module Stats = Mica_stats

type t = {
  dataset : Dataset.t;
  normalized : Stats.Matrix.t;
  zparams : (float * float) array;
  distances : float array;
}

let of_dataset dataset =
  let zparams = Stats.Normalize.zscore_params dataset.Dataset.data in
  let normalized = Array.map (Stats.Normalize.apply_zscore zparams) dataset.Dataset.data in
  let distances = Stats.Distance.condensed normalized in
  { dataset; normalized; zparams; distances }

let n t = Dataset.rows t.dataset

let distance t i j =
  if i = j then 0.0 else t.distances.(Stats.Distance.pair_index ~n:(n t) i j)

let distance_by_name t a b =
  let idx name =
    match Dataset.row_index t.dataset name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Space.distance_by_name: unknown %S" name)
  in
  distance t (idx a) (idx b)

let max_distance t = if Array.length t.distances = 0 then 0.0 else snd (Stats.Descriptive.min_max t.distances)

let nearest t i ~k =
  let others =
    List.filter_map
      (fun j -> if j = i then None else Some (j, distance t i j))
      (List.init (n t) Fun.id)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) others in
  List.filteri (fun rank _ -> rank < k) sorted

let place t raw = Stats.Normalize.apply_zscore t.zparams raw

let distances_from t raw =
  let z = place t raw in
  Array.map (fun row -> Stats.Distance.euclidean z row) t.normalized
