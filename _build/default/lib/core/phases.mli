(** SimPoint-style phase classification of a workload.

    Collects basic-block vectors per interval, projects them down, and
    clusters intervals with k-means + BIC: intervals executing similar
    code form a phase.  A representative interval (the one nearest its
    phase centroid) and the phase weight (its share of execution) are
    reported — exactly what SimPoint uses to pick simulation points, and
    the code-signature phase notion the paper contrasts with cross-program
    similarity in its related work. *)

type t = {
  interval : int;  (** instructions per interval *)
  k : int;  (** number of phases *)
  assignments : int array;  (** phase id per interval, in time order *)
  representatives : int array;  (** representative interval index per phase *)
  weights : float array;  (** fraction of intervals per phase *)
}

val analyze :
  ?interval:int -> ?max_k:int -> ?dims:int -> Mica_trace.Program.t -> icount:int -> t
(** [analyze program ~icount] traces the program and classifies its
    intervals.  Defaults: 10,000-instruction intervals, K swept to 10,
    15 projected dimensions. *)

val timeline : t -> string
(** One character per interval (A = phase 0, B = phase 1, ...), showing
    the phase structure over time. *)

val render : t -> string
(** Summary: K, per-phase weight and representative interval, plus the
    timeline. *)
