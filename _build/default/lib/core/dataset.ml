module Matrix = Mica_stats.Matrix
module Csv = Mica_util.Csv

type t = { names : string array; features : string array; data : Matrix.t }

let create ~names ~features data =
  let rows, cols = Matrix.dims data in
  if rows <> Array.length names then invalid_arg "Dataset.create: row label count mismatch";
  if rows > 0 && cols <> Array.length features then
    invalid_arg "Dataset.create: feature label count mismatch";
  { names; features; data }

let rows t = Array.length t.names
let cols t = Array.length t.features

let index_of labels needle =
  let n = Array.length labels in
  let rec go i = if i >= n then None else if labels.(i) = needle then Some i else go (i + 1) in
  go 0

let row_index t name = index_of t.names name
let feature_index t name = index_of t.features name

let row_exn t name =
  match row_index t name with
  | Some i -> t.data.(i)
  | None -> invalid_arg (Printf.sprintf "Dataset.row_exn: unknown row %S" name)

let select_features t idx =
  {
    names = t.names;
    features = Array.map (fun j -> t.features.(j)) idx;
    data = Matrix.select_columns t.data idx;
  }

let select_rows t idx =
  {
    names = Array.map (fun i -> t.names.(i)) idx;
    features = t.features;
    data = Array.map (fun i -> Array.copy t.data.(i)) idx;
  }

let append_rows a b =
  if a.features <> b.features then invalid_arg "Dataset.append_rows: feature mismatch";
  {
    names = Array.append a.names b.names;
    features = a.features;
    data = Array.append (Matrix.copy a.data) (Matrix.copy b.data);
  }

let to_csv t path =
  let header = "name" :: Array.to_list t.features in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i name ->
           name :: Array.to_list (Array.map (Printf.sprintf "%.17g") t.data.(i)))
         t.names)
  in
  Csv.to_file path (header :: rows)

let of_csv path =
  match Csv.of_file path with
  | [] -> failwith (Printf.sprintf "Dataset.of_csv: %s is empty" path)
  | header :: body ->
    let features =
      match header with
      | "name" :: rest -> Array.of_list rest
      | _ -> failwith (Printf.sprintf "Dataset.of_csv: %s lacks a 'name' header" path)
    in
    let parse_row row =
      match row with
      | name :: values ->
        if List.length values <> Array.length features then
          failwith (Printf.sprintf "Dataset.of_csv: %s: row %s has wrong arity" path name);
        (name, Array.of_list (List.map float_of_string values))
      | [] -> failwith (Printf.sprintf "Dataset.of_csv: %s has an empty row" path)
    in
    let parsed = List.map parse_row body in
    {
      names = Array.of_list (List.map fst parsed);
      features;
      data = Array.of_list (List.map snd parsed);
    }
