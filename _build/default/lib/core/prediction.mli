(** Performance prediction from inherent program similarity.

    The authors' companion work (Hoste et al., "Performance prediction
    based on inherent program similarity", PACT 2006) predicts how an
    application performs on a machine from the measured performance of its
    nearest neighbours in the microarchitecture-independent space.  This
    module implements the k-nearest-neighbour, inverse-distance-weighted
    form and evaluates it leave-one-out over the benchmark suite: each
    benchmark's machine metric (e.g. EV56 IPC) is predicted from the other
    121, then compared with its measured value. *)

val knn_predict :
  space:Space.t -> targets:float array -> k:int -> exclude:int -> int -> float
(** [knn_predict ~space ~targets ~k ~exclude i] predicts observation [i]'s
    target as the inverse-distance-weighted mean of its [k] nearest
    neighbours (skipping [exclude], normally [i] itself; pass -1 to skip
    nothing).  An exact-distance-0 neighbour returns its target directly. *)

type eval = {
  metric : string;
  k : int;
  mean_abs_error : float;
  mean_rel_error : float;  (** mean |pred - true| / true over positive targets *)
  baseline_rel_error : float;  (** same, predicting the global mean for everyone *)
  rank_correlation : float;  (** Spearman correlation of predicted vs true *)
}

val evaluate_loo : space:Space.t -> targets:float array -> metric:string -> k:int -> eval
(** Leave-one-out evaluation over all observations. *)

val evaluate_counters : ?k:int -> Experiments.Context.t -> eval list
(** One evaluation per hardware-counter metric, predicting from the MICA
    space (default k = 5). *)

val render : eval list -> string
