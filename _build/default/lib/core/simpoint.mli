(** SimPoint-style sampled simulation, validated end to end.

    The phase-classification related work (Sherwood et al.) exists to make
    simulation cheap: simulate only one representative interval per phase
    and weight the results.  This module closes that loop on our own
    substrate: a workload's trace is phase-classified from basic-block
    vectors, the EV56-like machine model measures per-interval CPI (with
    warm microarchitectural state), and the phase-weighted estimate from
    the representatives is compared against whole-trace CPI.  Small errors
    validate the "intervals executing similar code behave similarly" claim
    the paper cites. *)

type interval_ipc = { instructions : int; cycles : int }

type t = {
  phases : Phases.t;
  interval_results : interval_ipc array;  (** per interval, time order *)
  true_ipc : float;  (** whole-trace IPC *)
  estimated_ipc : float;  (** phase-weighted IPC of the representatives *)
  error : float;  (** |estimated - true| / true *)
}

val validate :
  ?interval:int -> Mica_workloads.Workload.t -> icount:int -> t
(** Runs phase analysis and the machine model over the same trace. *)

val validate_many :
  ?interval:int -> Mica_workloads.Workload.t list -> icount:int -> (string * t) list

val render : (string * t) list -> string
