(** The trace generator: executes a {!Program} model, streaming dynamic
    instructions to a {!Sink}.

    Generation is fully deterministic: the program's seed fixes both the
    static structure (kernel instantiation) and every dynamic decision
    (kernel interleaving, random addresses, random branch outcomes).  Two
    runs of the same program at the same [icount] produce identical
    traces. *)

val run : Program.t -> icount:int -> sink:Sink.t -> int
(** [run program ~icount ~sink] generates at most [icount] dynamic
    instructions and returns the number actually emitted (always [icount]
    for valid programs, since programs loop forever).  Raises
    [Invalid_argument] if the program fails {!Program.validate}. *)

val preview : Program.t -> n:int -> Mica_isa.Instr.t list
(** First [n] instructions of the trace; for debugging and tests. *)
