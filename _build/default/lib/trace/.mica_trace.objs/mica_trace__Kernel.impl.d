lib/trace/kernel.ml: Array Float Fun List Mica_isa Mica_util Option Printf
