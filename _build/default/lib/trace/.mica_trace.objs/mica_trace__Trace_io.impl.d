lib/trace/trace_io.ml: Array Bytes Fun Generator Hashtbl In_channel Int64 List Mica_isa Printf Sink String
