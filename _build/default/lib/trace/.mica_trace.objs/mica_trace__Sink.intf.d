lib/trace/sink.mli: Mica_isa
