lib/trace/program.ml: Kernel List Mica_util Printf
