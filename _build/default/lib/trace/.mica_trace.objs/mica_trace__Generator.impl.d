lib/trace/generator.ml: Array Bool Int64 Kernel List Mica_isa Mica_util Program Sink
