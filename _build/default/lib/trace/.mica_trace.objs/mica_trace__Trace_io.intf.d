lib/trace/trace_io.mli: Mica_isa Program Sink
