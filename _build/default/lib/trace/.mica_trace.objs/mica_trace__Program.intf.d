lib/trace/program.mli: Kernel
