lib/trace/kernel.mli: Mica_isa Mica_util
