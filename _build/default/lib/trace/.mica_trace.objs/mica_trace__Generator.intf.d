lib/trace/generator.mli: Mica_isa Program Sink
