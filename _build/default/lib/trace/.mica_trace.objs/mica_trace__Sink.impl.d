lib/trace/sink.ml: Array List Mica_isa
