module Rng = Mica_util.Rng

type phase = {
  ph_name : string;
  ph_kernels : (float * Kernel.spec) list;
  ph_length : int;
}

type t = { name : string; seed : int64; phases : phase list }

let make ~name ?seed phases =
  let seed = match seed with Some s -> s | None -> Rng.hash_string name in
  { name; seed; phases }

let single ~name ?seed kernel =
  make ~name ?seed [ { ph_name = "main"; ph_kernels = [ (1.0, kernel) ]; ph_length = 100_000 } ]

let validate t =
  let err msg = Error (Printf.sprintf "program %S: %s" t.name msg) in
  if t.phases = [] then err "no phases"
  else
    let check_phase acc ph =
      match acc with
      | Error _ as e -> e
      | Ok () ->
        if ph.ph_kernels = [] then err (Printf.sprintf "phase %S has no kernels" ph.ph_name)
        else if ph.ph_length <= 0 then
          err (Printf.sprintf "phase %S has non-positive length" ph.ph_name)
        else if List.exists (fun (w, _) -> w < 0.0) ph.ph_kernels then
          err (Printf.sprintf "phase %S has a negative kernel weight" ph.ph_name)
        else if List.for_all (fun (w, _) -> w = 0.0) ph.ph_kernels then
          err (Printf.sprintf "phase %S has all-zero kernel weights" ph.ph_name)
        else
          List.fold_left
            (fun acc (_, k) ->
              match acc with
              | Error _ as e -> e
              | Ok () -> (
                match Kernel.validate k with Ok () -> Ok () | Error m -> err m))
            (Ok ()) ph.ph_kernels
    in
    List.fold_left check_phase (Ok ()) t.phases

let kernels t = List.concat_map (fun ph -> List.map snd ph.ph_kernels) t.phases
