module Rng = Mica_util.Rng
module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg

type mem_pattern =
  | Fixed
  | Seq of { stride : int }
  | Strided of { stride : int }
  | Random
  | Chase

type branch_kind =
  | Loop_like of { period : int }
  | Periodic of { period : int; taken_in_period : int }
  | Biased of { taken_prob : float }
  | History of { depth : int }

type mix = { load : float; store : float; branch : float; int_mul : float; fp : float }

type spec = {
  name : string;
  body_slots : int;
  mix : mix;
  load_patterns : (float * mem_pattern) list;
  store_patterns : (float * mem_pattern) list;
  data_bytes : int;
  helper_instrs : int;
  helper_regions : int;
  helper_call_prob : float;
  helper_zipf_s : float;
  trip_count : int;
  dep_geom_p : float;
  loop_carried_frac : float;
  hot_value_frac : float;
  imm_frac : float;
  branch_kinds : (float * branch_kind) list;
  branch_skip_max : int;
  fp_mul_frac : float;
  fp_div_frac : float;
}

let default =
  {
    name = "default";
    body_slots = 24;
    mix = { load = 0.25; store = 0.10; branch = 0.10; int_mul = 0.01; fp = 0.0 };
    load_patterns = [ (0.6, Seq { stride = 8 }); (0.3, Fixed); (0.1, Random) ];
    store_patterns = [ (0.7, Seq { stride = 8 }); (0.3, Fixed) ];
    data_bytes = 64 * 1024;
    helper_instrs = 512;
    helper_regions = 4;
    helper_call_prob = 0.05;
    helper_zipf_s = 1.2;
    trip_count = 64;
    dep_geom_p = 0.35;
    loop_carried_frac = 0.05;
    hot_value_frac = 0.10;
    imm_frac = 0.30;
    branch_kinds = [ (0.7, Loop_like { period = 16 }); (0.3, Biased { taken_prob = 0.4 }) ];
    branch_skip_max = 2;
    fp_mul_frac = 0.35;
    fp_div_frac = 0.02;
  }

let frac_ok f = f >= 0.0 && f <= 1.0

let validate spec =
  let err msg = Error (Printf.sprintf "kernel %S: %s" spec.name msg) in
  let { load; store; branch; int_mul; fp } = spec.mix in
  if spec.body_slots < 4 then err "body_slots must be at least 4"
  else if not (List.for_all frac_ok [ load; store; branch; int_mul; fp ]) then
    err "mix fractions must lie in [0,1]"
  else if load +. store +. branch +. int_mul +. fp > 0.96 then
    err "mix fractions must leave room for ALU operations (sum <= 0.96)"
  else if load > 0.0 && spec.load_patterns = [] then err "load_patterns is empty"
  else if store > 0.0 && spec.store_patterns = [] then err "store_patterns is empty"
  else if spec.data_bytes < 64 then err "data_bytes must be at least 64"
  else if spec.helper_instrs < 0 || spec.helper_regions < 0 then
    err "helper sizes must be non-negative"
  else if spec.helper_instrs > 0 && spec.helper_regions = 0 then
    err "helper_instrs > 0 requires helper_regions > 0"
  else if not (frac_ok spec.helper_call_prob) then err "helper_call_prob must lie in [0,1]"
  else if spec.trip_count < 1 then err "trip_count must be positive"
  else if not (spec.dep_geom_p > 0.0 && spec.dep_geom_p <= 1.0) then
    err "dep_geom_p must lie in (0,1]"
  else if not (frac_ok spec.loop_carried_frac) then err "loop_carried_frac must lie in [0,1]"
  else if not (frac_ok spec.hot_value_frac) then err "hot_value_frac must lie in [0,1]"
  else if not (frac_ok spec.imm_frac) then err "imm_frac must lie in [0,1]"
  else if branch > 0.0 && spec.branch_kinds = [] then err "branch_kinds is empty"
  else if spec.branch_skip_max < 0 then err "branch_skip_max must be non-negative"
  else if not (frac_ok spec.fp_mul_frac && frac_ok spec.fp_div_frac) then
    err "fp split fractions must lie in [0,1]"
  else if spec.fp_mul_frac +. spec.fp_div_frac > 1.0 then
    err "fp_mul_frac + fp_div_frac must not exceed 1"
  else Ok ()

type slot = {
  s_pc : int;
  s_op : Opcode.t;
  s_dst : int;
  s_src1 : int;
  s_src2 : int;
  s_mem : mem_state option;
  s_br : br_state option;
}

and mem_state = {
  m_pattern : mem_pattern;
  m_base : int;
  m_span : int;
  mutable m_cursor : int;
  mutable m_aux : int;  (* locality-window start for Random/Chase patterns *)
}

and br_state = { b_kind : branch_kind; b_skip : int; mutable b_execs : int }

type helper = { h_base : int; h_body : slot array }

type instance = {
  i_spec : spec;
  i_code_base : int;
  i_body : slot array;
  i_loop_pc : int;
  i_helpers : helper array;
  i_helper_weights : (float * int) array;
  mutable i_visits : int;
}

let code_bytes spec = (spec.body_slots + 1 + spec.helper_instrs) * 4

(* Deterministic class counts matching the mix as closely as integer slots
   allow, then shuffled so classes interleave. *)
let sample_ops rng spec n =
  let { load; store; branch; int_mul; fp } = spec.mix in
  let count f = int_of_float (Float.round (f *. float_of_int n)) in
  let n_load = count load
  and n_store = count store
  and n_branch = count branch
  and n_mul = count int_mul
  and n_fp = count fp in
  let n_fp_div = int_of_float (Float.round (spec.fp_div_frac *. float_of_int n_fp)) in
  let n_fp_mul = int_of_float (Float.round (spec.fp_mul_frac *. float_of_int n_fp)) in
  let n_fp_add = max 0 (n_fp - n_fp_div - n_fp_mul) in
  let ops = Array.make n Opcode.Int_alu in
  let pos = ref 0 in
  let fill count op =
    for _ = 1 to count do
      if !pos < n then begin
        ops.(!pos) <- op;
        incr pos
      end
    done
  in
  fill n_load Opcode.Load;
  fill n_store Opcode.Store;
  fill n_branch Opcode.Branch;
  fill n_mul Opcode.Int_mul;
  fill n_fp_add Opcode.Fp_add;
  fill n_fp_mul Opcode.Fp_mul;
  fill n_fp_div Opcode.Fp_div;
  Rng.shuffle rng ops;
  ops

(* Destination register for slot [i]: integer results rotate over r0..r29,
   floating-point results over f0..f31.  Branches and stores produce
   nothing. *)
let dst_for_slot i op =
  match (op : Opcode.t) with
  | Branch | Jump | Call | Return | Store | Nop -> Reg.none
  | Fp_add | Fp_mul | Fp_div -> Reg.fp_base + (i mod Reg.fp_count)
  | Load | Int_alu | Int_mul -> i mod 30

let source_count rng spec op =
  match (op : Opcode.t) with
  | Load -> 1
  | Store -> 2
  | Branch -> 1
  | Return -> 1
  | Jump | Call | Nop -> 0
  | Int_alu | Int_mul -> if Rng.bernoulli rng ~p:spec.imm_frac then 1 else 2
  | Fp_add | Fp_mul | Fp_div -> 2

let make_mem_state rng patterns ~base ~span =
  let pattern = Rng.pick_weighted rng (Array.of_list patterns) in
  let cursor = Rng.int rng (max 1 (span / 8)) * 8 mod span in
  let aux = Rng.int rng (max 1 (span / 8)) * 8 mod span in
  { m_pattern = pattern; m_base = base; m_span = span; m_cursor = cursor; m_aux = aux }

let make_br_state rng kinds ~skip_max =
  let kind = Rng.pick_weighted rng (Array.of_list kinds) in
  let skip = if skip_max > 0 then 1 + Rng.int rng skip_max else 0 in
  { b_kind = kind; b_skip = skip; b_execs = 0 }

(* Pick the register produced by a slot at geometric distance before [i],
   skipping producers without a destination. *)
let producer_reg rng spec dsts i =
  let n = Array.length dsts in
  let d = 1 + Rng.geometric rng ~p:spec.dep_geom_p in
  let rec find k tries =
    if tries > n then Reg.zero
    else
      let j = ((i - k) mod n + n) mod n in
      if Reg.is_none dsts.(j) then find (k + 1) (tries + 1) else dsts.(j)
  in
  find d 0

let hot_reg dsts =
  (* first value-producing slot acts as the hot loop index / base pointer *)
  let n = Array.length dsts in
  let rec go i = if i >= n then Reg.zero else if Reg.is_none dsts.(i) then go (i + 1) else dsts.(i) in
  go 0

let pick_source rng spec dsts i ~allow_loop_carried =
  if Rng.bernoulli rng ~p:spec.hot_value_frac then hot_reg dsts
  else if allow_loop_carried && Rng.bernoulli rng ~p:spec.loop_carried_frac then
    if Reg.is_none dsts.(i) then producer_reg rng spec dsts i else dsts.(i)
  else producer_reg rng spec dsts i

let build_slot rng spec dsts ~pc ~data_base ~op i =
  let dst = dsts.(i) in
  let mem =
    match (op : Opcode.t) with
    | Load -> Some (make_mem_state rng spec.load_patterns ~base:data_base ~span:spec.data_bytes)
    | Store -> Some (make_mem_state rng spec.store_patterns ~base:data_base ~span:spec.data_bytes)
    | Branch | Jump | Call | Return | Int_alu | Int_mul | Fp_add | Fp_mul | Fp_div | Nop -> None
  in
  let br =
    match (op : Opcode.t) with
    | Branch -> Some (make_br_state rng spec.branch_kinds ~skip_max:spec.branch_skip_max)
    | Load | Store | Jump | Call | Return | Int_alu | Int_mul | Fp_add | Fp_mul | Fp_div | Nop ->
      None
  in
  let n_src = source_count rng spec op in
  (* Memory addressing reflects the pattern: a pointer-chasing load depends
     on its own previous value; sequential/strided accesses are indexed off
     the induction register (slot 0), so array sweeps do not serialize on
     arbitrary compute the way pointer code does. *)
  let chasing = match mem with Some m -> m.m_pattern = Chase | None -> false in
  let induction_addressed =
    match mem with
    | Some m -> (match m.m_pattern with Seq _ | Strided _ -> true | Fixed | Random | Chase -> false)
    | None -> false
  in
  let src1 =
    if n_src >= 1 then
      if chasing && not (Reg.is_none dst) then dst
      else if induction_addressed then hot_reg dsts
      else pick_source rng spec dsts i ~allow_loop_carried:true
    else Reg.none
  in
  let src2 = if n_src >= 2 then pick_source rng spec dsts i ~allow_loop_carried:false else Reg.none in
  { s_pc = pc; s_op = op; s_dst = dst; s_src1 = src1; s_src2 = src2; s_mem = mem; s_br = br }

(* Branch kinds are allocated with deterministic counts (largest remainder)
   rather than independent draws: kernels have only a handful of static
   branch slots, and independent sampling would make the realized mixture
   vary wildly across kernels. *)
let stratified_branch_kinds rng kinds count =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 kinds in
  let out = Array.make count None in
  let pos = ref 0 in
  List.iter
    (fun (w, kind) ->
      let c = int_of_float (Float.round (w /. total *. float_of_int count)) in
      for _ = 1 to c do
        if !pos < count then begin
          out.(!pos) <- Some kind;
          incr pos
        end
      done)
    kinds;
  (* fill any rounding shortfall with weighted draws *)
  let arr = Array.of_list kinds in
  while !pos < count do
    out.(!pos) <- Some (Rng.pick_weighted rng arr);
    incr pos
  done;
  let kinds_arr = Array.map Option.get out in
  Rng.shuffle rng kinds_arr;
  kinds_arr

let build_body rng spec ~code_base ~data_base =
  let n = spec.body_slots in
  let ops = sample_ops rng spec n in
  (* Slot 0 should produce a value so the hot register exists. *)
  (match Array.find_index (fun op -> not (Reg.is_none (dst_for_slot 0 op))) ops with
  | Some j when j > 0 ->
    let tmp = ops.(0) in
    ops.(0) <- ops.(j);
    ops.(j) <- tmp
  | Some _ | None -> ());
  let dsts = Array.mapi dst_for_slot ops in
  let body =
    Array.init n (fun i ->
        build_slot rng spec dsts ~pc:(code_base + (4 * i)) ~data_base ~op:ops.(i) i)
  in
  (* Slot 0 is the induction variable: it increments itself once per
     iteration (a one-hop loop-carried chain), and indexed memory accesses
     hang off it. *)
  if not (Reg.is_none body.(0).s_dst) then
    body.(0) <- { (body.(0)) with s_src1 = body.(0).s_dst };
  (* stratified reassignment of branch kinds over the realized branch slots *)
  let branch_slots =
    Array.of_list (List.filter (fun i -> body.(i).s_br <> None) (List.init n Fun.id))
  in
  if Array.length branch_slots > 0 && spec.branch_kinds <> [] then begin
    let kinds = stratified_branch_kinds rng spec.branch_kinds (Array.length branch_slots) in
    Array.iteri
      (fun k i ->
        match body.(i).s_br with
        | Some br -> body.(i) <- { (body.(i)) with s_br = Some { br with b_kind = kinds.(k) } }
        | None -> ())
      branch_slots
  end;
  body

(* Helpers are straight-line code: the body mixture with branches replaced
   by ALU work and mostly-sequential memory accesses. *)
let build_helper rng spec ~base ~data_base ~slots =
  let helper_spec =
    {
      spec with
      body_slots = slots;
      mix = { spec.mix with branch = 0.0 };
      load_patterns = [ (0.7, Seq { stride = 8 }); (0.3, Fixed) ];
      store_patterns = [ (0.7, Seq { stride = 8 }); (0.3, Fixed) ];
      loop_carried_frac = 0.0;
    }
  in
  let ops = sample_ops rng helper_spec slots in
  let dsts = Array.mapi dst_for_slot ops in
  let body =
    Array.init slots (fun i ->
        build_slot rng helper_spec dsts ~pc:(base + (4 * i)) ~data_base ~op:ops.(i) i)
  in
  { h_base = base; h_body = body }

let instantiate spec ~rng ~code_base ~data_base =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let body = build_body rng spec ~code_base ~data_base in
  let loop_pc = code_base + (4 * spec.body_slots) in
  let helpers =
    if spec.helper_instrs = 0 || spec.helper_regions = 0 then [||]
    else begin
      let per_region = max 8 (spec.helper_instrs / spec.helper_regions) in
      let next_base = ref (loop_pc + 64) in
      Array.init spec.helper_regions (fun _ ->
          let base = !next_base in
          next_base := base + (per_region * 4) + 32;
          build_helper rng spec ~base ~data_base ~slots:per_region)
    end
  in
  let helper_weights =
    Array.init (Array.length helpers) (fun i ->
        (1.0 /. ((float_of_int i +. 1.0) ** spec.helper_zipf_s), i))
  in
  {
    i_spec = spec;
    i_code_base = code_base;
    i_body = body;
    i_loop_pc = loop_pc;
    i_helpers = helpers;
    i_helper_weights = helper_weights;
    i_visits = 0;
  }
