(** Phase-structured synthetic program models.

    A program is a sequence of phases executed cyclically; each phase is a
    weighted set of kernels and a dynamic-instruction budget.  Phases model
    the coarse time-varying behaviour real applications exhibit (e.g. an
    input-parsing phase followed by a compute phase); within a phase the
    generator alternates kernel visits, which is what creates interleaved
    global stride streams and multi-region instruction footprints. *)

type phase = {
  ph_name : string;
  ph_kernels : (float * Kernel.spec) list;  (** weighted kernel mixture *)
  ph_length : int;  (** dynamic instructions before moving to the next phase *)
}

type t = {
  name : string;
  seed : int64;  (** generation seed; equal programs yield equal traces *)
  phases : phase list;
}

val make : name:string -> ?seed:int64 -> phase list -> t
(** [make ~name phases] builds a program; the default seed is derived from
    [name] so distinct benchmarks get independent streams. *)

val single : name:string -> ?seed:int64 -> Kernel.spec -> t
(** A one-phase, one-kernel program (convenient in tests and examples). *)

val validate : t -> (unit, string) result

val kernels : t -> Kernel.spec list
(** All kernel specs, in phase order (duplicates preserved). *)
