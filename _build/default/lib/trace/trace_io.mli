(** Trace serialization.

    Two interchange formats for dynamic instruction traces:

    - {e text}: one instruction per line —
      [pc op src1 src2 dst addr taken target] with hex pc/addr/target;
      greppable and diffable;
    - {e binary}: fixed 28-byte little-endian records behind a magic
      header; compact and fast.

    Writers are ordinary {!Sink}s, so a trace can be captured while it is
    being analyzed; readers replay a file into any sink, so every analyzer
    works identically on live and recorded traces. *)

val text_sink : out_channel -> Sink.t
val binary_sink : out_channel -> Sink.t
(** The binary sink writes the header on creation. *)

val write_text : path:string -> Program.t -> icount:int -> int
val write_binary : path:string -> Program.t -> icount:int -> int
(** Generate a program's trace straight to a file; returns the
    instruction count. *)

val replay_text : path:string -> sink:Sink.t -> int
(** Feed a recorded text trace into a sink; returns the instruction count.
    Raises [Failure] with a line number on malformed input. *)

val replay_binary : path:string -> sink:Sink.t -> int
(** Raises [Failure] on a bad header or truncated record. *)

val instr_to_line : Mica_isa.Instr.t -> string
val instr_of_line : string -> Mica_isa.Instr.t
(** Single-record text conversions (exposed for tests and tooling).
    @raise Failure on malformed input. *)
