type t = { name : string; on_instr : Mica_isa.Instr.t -> unit }

let make ~name on_instr = { name; on_instr }

let fanout sinks =
  let arr = Array.of_list sinks in
  let n = Array.length arr in
  let on_instr ins =
    for i = 0 to n - 1 do
      arr.(i).on_instr ins
    done
  in
  { name = "fanout"; on_instr }

let counter () =
  let n = ref 0 in
  (make ~name:"counter" (fun _ -> incr n), fun () -> !n)

let sample ~every sink =
  if every <= 0 then invalid_arg "Sink.sample: every must be positive";
  if every = 1 then sink (* identity, not a renamed wrapper *)
  else begin
    let k = ref 0 in
    make ~name:(sink.name ^ "/sampled") (fun ins ->
        if !k = 0 then sink.on_instr ins;
        k := (!k + 1) mod every)
  end

let collect ~limit () =
  if limit < 0 then invalid_arg "Sink.collect: limit must be non-negative";
  let acc = ref [] in
  let n = ref 0 in
  let sink =
    make ~name:"collect" (fun ins ->
        if !n < limit then begin
          acc := ins :: !acc;
          incr n
        end)
  in
  (sink, fun () -> List.rev !acc)
