(** Trace consumers.

    A sink receives every dynamic instruction of a trace exactly once, in
    program order.  This is the moral equivalent of an ATOM analysis
    routine: the generator performs a single pass and fans the stream out
    to all registered sinks, so measuring one more characteristic never
    costs a second trace. *)

type t = {
  name : string;  (** diagnostic label *)
  on_instr : Mica_isa.Instr.t -> unit;  (** called once per dynamic instruction *)
}

val make : name:string -> (Mica_isa.Instr.t -> unit) -> t

val fanout : t list -> t
(** [fanout sinks] delivers each instruction to every sink in order. *)

val counter : unit -> t * (unit -> int)
(** A sink that counts instructions, and its reader. *)

val sample : every:int -> t -> t
(** [sample ~every sink] forwards every [every]-th instruction only;
    used by tests and by cheap preview passes.  [sample ~every:1] is the
    identity.  Raises [Invalid_argument] unless [every > 0]. *)

val collect : limit:int -> unit -> t * (unit -> Mica_isa.Instr.t list)
(** A sink retaining the first [limit] instructions (program order), and
    its reader; used by tests.  [collect ~limit:0] absorbs the stream and
    returns [[]].  Raises [Invalid_argument] if [limit] is negative. *)
