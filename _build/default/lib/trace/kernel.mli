(** Parametric synthetic computational kernels.

    A kernel models a loop nest: a static body of instruction slots executed
    repeatedly, plus optional straight-line helper routines that spread the
    instruction footprint.  Each slot carries its own memory-access pattern
    state and its own data-dependency edges to earlier slots, so the
    microarchitecture-independent characteristics measured downstream
    (instruction mix, ILP, register traffic, working sets, strides, branch
    predictability) all emerge from executing the model rather than being
    asserted.

    Benchmark profiles ({!Mica_workloads}) are built by combining kernels
    with suite- and benchmark-specific parameters. *)

type mem_pattern =
  | Fixed  (** one address, revisited on every execution (globals, spills) *)
  | Seq of { stride : int }  (** small constant stride (array streaming) *)
  | Strided of { stride : int }  (** large constant stride (row/column walks) *)
  | Random  (** uniform random within the kernel's data region *)
  | Chase  (** dependent pointer chasing; serializes the slot on itself *)

type branch_kind =
  | Loop_like of { period : int }
      (** taken [period - 1] times out of [period] (inner-loop back edges,
          highly predictable) *)
  | Periodic of { period : int; taken_in_period : int }
      (** deterministic repeating pattern *)
  | Biased of { taken_prob : float }  (** independent random outcomes *)
  | History of { depth : int }
      (** outcome is the parity of the last [depth] global outcomes:
          predictable from global history, opaque to local history *)

type mix = {
  load : float;
  store : float;
  branch : float;  (** conditional branches inside the body *)
  int_mul : float;
  fp : float;
}
(** Target dynamic fractions for the body; the remainder is integer ALU. *)

type spec = {
  name : string;
  body_slots : int;  (** static instructions per loop body *)
  mix : mix;
  load_patterns : (float * mem_pattern) list;  (** mixture over load slots *)
  store_patterns : (float * mem_pattern) list;
  data_bytes : int;  (** size of the kernel's data region *)
  helper_instrs : int;  (** total static instructions across helper routines *)
  helper_regions : int;  (** number of helper routines *)
  helper_call_prob : float;  (** per-visit probability of calling a helper *)
  helper_zipf_s : float;  (** skew of helper popularity (hot/cold code) *)
  trip_count : int;  (** loop iterations per visit *)
  dep_geom_p : float;
      (** geometric parameter for dependency distance: larger means sources
          come from nearer producers (shorter dependencies, higher ILP
          pressure on the window) *)
  loop_carried_frac : float;
      (** fraction of slots whose first source is their own previous-iteration
          output (serial chains; lowers ILP) *)
  hot_value_frac : float;
      (** fraction of sources redirected to slot 0's output (a hot loop
          index / base pointer; raises register degree of use) *)
  imm_frac : float;  (** probability an ALU slot has only one register source *)
  branch_kinds : (float * branch_kind) list;  (** mixture over body branches *)
  branch_skip_max : int;  (** a taken body branch skips at most this many slots *)
  fp_mul_frac : float;  (** of FP slots, fraction that are multiplies *)
  fp_div_frac : float;  (** of FP slots, fraction that are divides *)
}

val default : spec
(** A bland scalar-integer kernel; build custom kernels with
    [{ default with ... }]. *)

val validate : spec -> (unit, string) result
(** Checks ranges (fractions in [0,1], positive sizes, non-empty pattern
    mixtures...).  The generator validates every spec it instantiates. *)

(** {1 Instantiated kernels}

    The instantiation freezes the static structure: concrete slot opcodes,
    dependency edges, register assignment, per-slot pattern state and code
    addresses.  Mutable state (pattern cursors, branch execution counters)
    lives inside and advances as the generator executes the instance. *)

type slot = {
  s_pc : int;
  s_op : Mica_isa.Opcode.t;
  s_dst : int;
  s_src1 : int;  (** register id or {!Mica_isa.Reg.none} *)
  s_src2 : int;
  s_mem : mem_state option;
  s_br : br_state option;
}

and mem_state = {
  m_pattern : mem_pattern;
  m_base : int;
  m_span : int;
  mutable m_cursor : int;
  mutable m_aux : int;
      (** start of the current locality window for Random/Chase patterns *)
}

and br_state = { b_kind : branch_kind; b_skip : int; mutable b_execs : int }

type helper = { h_base : int; h_body : slot array }

type instance = {
  i_spec : spec;
  i_code_base : int;
  i_body : slot array;
  i_loop_pc : int;  (** pc of the loop back-edge branch *)
  i_helpers : helper array;
  i_helper_weights : (float * int) array;  (** zipf-ish popularity, index *)
  mutable i_visits : int;
}

val instantiate : spec -> rng:Mica_util.Rng.t -> code_base:int -> data_base:int -> instance
(** Freeze a spec into an executable instance.  Raises [Invalid_argument]
    if [validate spec] fails. *)

val code_bytes : spec -> int
(** Static code footprint implied by the spec (body + loop branch + helpers),
    in bytes. *)
