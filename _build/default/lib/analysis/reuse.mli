(** Temporal-locality analyzer: LRU stack (reuse) distances.

    The reuse distance of a memory access is the number of {e distinct}
    blocks touched since the previous access to the same block (infinite
    for first touches).  The distribution is microarchitecture-independent
    and determines the miss rate of every LRU cache size at once (Mattson
    et al.); the paper's follow-up work (Joshi et al.) uses it to show
    SPEC's temporal locality degrading across generations.

    Computed exactly in O(log n) per access with a Fenwick tree over trace
    positions: each block's most recent access position is marked, and the
    count of marks after the block's previous position is its distance. *)

type t

val create : ?block_bytes:int -> unit -> t
(** Granularity of a "block"; default 32 bytes (matching the working-set
    characteristics). *)

val sink : t -> Mica_trace.Sink.t
(** Consumes load/store effective addresses. *)

val accesses : t -> int
val cold_misses : t -> int
(** First-touch accesses (infinite reuse distance). *)

val cdf : t -> int array -> float array
(** [cdf t cutoffs] gives P(reuse distance <= c) for each cutoff, over all
    accesses (cold misses count as exceeding every cutoff). *)

val default_cutoffs : int array
(** Powers of four: 4, 16, 64, ..., 65536 — log-spaced cache-size proxies
    (in 32-byte blocks: 128B up to 2MB). *)

val miss_rate_for_capacity : t -> blocks:int -> float
(** Miss rate of a fully-associative LRU cache holding [blocks] blocks:
    fraction of accesses with reuse distance >= blocks (cold misses
    included).  One pass of this analyzer prices every cache size. *)

val mean_log2 : t -> float
(** Mean of log2(1 + distance) over finite distances — a compact summary
    statistic of temporal locality (0 = perfect reuse). *)
