(** Data-stream stride analyzer: characteristics 24-43 (Lau et al. style).

    A {e global} stride is the absolute difference between the effective
    addresses of temporally adjacent memory accesses of the same kind
    (load-to-load or store-to-store).  A {e local} stride is the same
    difference restricted to consecutive executions of a single static
    memory instruction.  For each of the four streams (local load, global
    load, local store, global store) we report the cumulative probability
    that the stride is 0, or at most 8, 64, 512 and 4096 bytes. *)

type t

type result = {
  local_load : float array;  (** P(=0), P(<=8), P(<=64), P(<=512), P(<=4096) *)
  global_load : float array;
  local_store : float array;
  global_store : float array;
}

val create : unit -> t
val sink : t -> Mica_trace.Sink.t
val result : t -> result

val to_vector : result -> float array
(** Table II order (rows 24-43): local load, global load, local store,
    global store — 20 values. *)

val cutoffs : int array
(** [[|0; 8; 64; 512; 4096|]]. *)
