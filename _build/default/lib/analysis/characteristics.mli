(** The catalogue of the 47 microarchitecture-independent characteristics
    (Table II of the paper): names, categories and index bookkeeping.

    The vector order is exactly the table's row order, so index [i] here is
    characteristic number [i + 1] in the paper. *)

type category =
  | Instruction_mix
  | Ilp
  | Register_traffic
  | Working_set_size
  | Data_stream_strides
  | Branch_predictability

val count : int
(** 47. *)

val names : string array
(** Full descriptive names, e.g. ["prob. local load stride <= 64"]. *)

val short_names : string array
(** Compact labels for plots and tables, e.g. ["ll_stride<=64"]. *)

val categories : category array
val category_name : category -> string

val index_of_short_name : string -> int option
(** Lookup by compact label. *)

val pp_row : Format.formatter -> int -> unit
(** Pretty-print one Table II row: number, category, name. *)
