(** Branch-predictability analyzer: characteristics 44-47.

    Implements the Prediction-by-Partial-Matching (PPM) predictor of Chen,
    Coffey and Mudge as a microarchitecture-independent measure of branch
    predictability.  A PPM predictor of order [m] keeps frequency counts
    for every branch-history context of length 0..m; prediction uses the
    longest context seen before (escaping to shorter contexts), predicting
    the majority outcome recorded under that context.

    Four variants are measured, following the paper:
    - GAg: global history, one shared table;
    - PAg: per-branch (local) history, one shared table;
    - GAs: global history, separate tables per branch;
    - PAs: per-branch history, separate tables per branch.

    Only conditional branches participate.  The reported value is the
    misprediction rate (lower = more predictable). *)

type variant = GAg | PAg | GAs | PAs

val all_variants : variant list
(** In Table II order (rows 44-47): GAg, PAg, GAs, PAs. *)

val variant_name : variant -> string

type t

val create : ?order:int -> ?variants:variant list -> unit -> t
(** [order] is the maximum context length in branch outcomes; default 8.
    [variants] restricts which predictors are simulated (default all
    four) — measuring fewer variants costs proportionally less, which is
    what makes a reduced characteristic set cheaper to collect. *)

val sink : t -> Mica_trace.Sink.t

val miss_rate : t -> variant -> float
(** Misprediction rate over all conditional branches seen (0 if none). *)

val branches : t -> int
(** Conditional branches observed. *)

val to_vector : t -> float array
(** Miss rates for GAg, PAg, GAs, PAs. *)
