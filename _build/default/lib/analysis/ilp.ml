module Reg = Mica_isa.Reg
module Instr = Mica_isa.Instr

(* One dependence-limited window simulator.  [completions] is a ring holding
   the completion cycle of the last [window] instructions; an instruction
   cannot issue before the one [window] slots earlier completed. *)
type window_sim = {
  window : int;
  reg_ready : int array;  (* cycle each register's current value is available *)
  completions : int array;  (* ring of completion cycles *)
  mutable head : int;
  mutable filled : int;
  mutable last_cycle : int;  (* max completion so far *)
}

type t = { sims : window_sim array; mutable count : int }

let default_windows = [| 32; 64; 128; 256 |]

let make_sim window =
  assert (window > 0);
  {
    window;
    reg_ready = Array.make Reg.count 0;
    completions = Array.make window 0;
    head = 0;
    filled = 0;
    last_cycle = 0;
  }

let create ?(windows = default_windows) () =
  { sims = Array.map make_sim windows; count = 0 }

let step sim (ins : Instr.t) =
  let ready_src r = if Reg.carries_dependency r then sim.reg_ready.(r) else 0 in
  let window_free =
    if sim.filled < sim.window then 0 else sim.completions.(sim.head)
  in
  let issue =
    let a = ready_src ins.src1 and b = ready_src ins.src2 in
    let deps = if a > b then a else b in
    if window_free > deps then window_free else deps
  in
  let completion = issue + 1 in
  sim.completions.(sim.head) <- completion;
  sim.head <- (sim.head + 1) mod sim.window;
  if sim.filled < sim.window then sim.filled <- sim.filled + 1;
  if Reg.carries_dependency ins.dst then sim.reg_ready.(ins.dst) <- completion;
  if completion > sim.last_cycle then sim.last_cycle <- completion

let sink t =
  Mica_trace.Sink.make ~name:"ilp" (fun ins ->
      t.count <- t.count + 1;
      Array.iter (fun sim -> step sim ins) t.sims)

let ipc t =
  Array.map
    (fun sim ->
      if sim.last_cycle = 0 then 0.0 else float_of_int t.count /. float_of_int sim.last_cycle)
    t.sims

let instructions t = t.count
