let reuse_cutoffs = [| 16; 256; 4096; 65536 |]

let extension_table =
  Array.append
    [|
      ("branch taken rate", "br_taken");
      ("branch transition rate", "br_trans");
      ("fraction of strongly biased static branches", "br_biased");
      ("mean log2 data reuse distance", "reuse_mean");
      ("cold-miss fraction of data accesses", "reuse_cold");
    |]
    (Array.map
       (fun c ->
         ( Printf.sprintf "prob. data reuse distance <= %d blocks" c,
           Printf.sprintf "reuse<=%d" c ))
       reuse_cutoffs)

let count = Characteristics.count + Array.length extension_table

let names =
  Array.append Characteristics.names (Array.map fst extension_table)

let short_names =
  Array.append Characteristics.short_names (Array.map snd extension_table)

let is_extension i = i >= Characteristics.count

type t = { base : Analyzer.t; branches : Branch_stats.t; reuse : Reuse.t }

let create ?ppm_order () =
  {
    base = Analyzer.create ?ppm_order ();
    branches = Branch_stats.create ();
    reuse = Reuse.create ();
  }

let sink t =
  Mica_trace.Sink.fanout
    [ Analyzer.sink t.base; Branch_stats.sink t.branches; Reuse.sink t.reuse ]

let vector t =
  let br = Branch_stats.result t.branches in
  let accesses = Reuse.accesses t.reuse in
  let cold =
    if accesses = 0 then 0.0
    else float_of_int (Reuse.cold_misses t.reuse) /. float_of_int accesses
  in
  let v =
    Array.concat
      [
        Analyzer.vector t.base;
        Branch_stats.to_vector br;
        [| Reuse.mean_log2 t.reuse; cold |];
        Reuse.cdf t.reuse reuse_cutoffs;
      ]
  in
  assert (Array.length v = count);
  v

let analyze ?ppm_order program ~icount =
  let t = create ?ppm_order () in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:(sink t) in
  vector t
