type category =
  | Instruction_mix
  | Ilp
  | Register_traffic
  | Working_set_size
  | Data_stream_strides
  | Branch_predictability

let category_name = function
  | Instruction_mix -> "instruction mix"
  | Ilp -> "ILP"
  | Register_traffic -> "register traffic"
  | Working_set_size -> "working set size"
  | Data_stream_strides -> "data stream strides"
  | Branch_predictability -> "branch predictability"

(* (category, full name, short name), in Table II row order. *)
let table =
  [|
    (Instruction_mix, "percentage loads", "pct_load");
    (Instruction_mix, "percentage stores", "pct_store");
    (Instruction_mix, "percentage control transfers", "pct_ctrl");
    (Instruction_mix, "percentage arithmetic operations", "pct_arith");
    (Instruction_mix, "percentage integer multiplies", "pct_imul");
    (Instruction_mix, "percentage fp operations", "pct_fp");
    (Ilp, "ILP for a 32-entry window", "ilp_32");
    (Ilp, "ILP for a 64-entry window", "ilp_64");
    (Ilp, "ILP for a 128-entry window", "ilp_128");
    (Ilp, "ILP for a 256-entry window", "ilp_256");
    (Register_traffic, "avg. number of input operands", "avg_ops");
    (Register_traffic, "avg. degree of use", "deg_use");
    (Register_traffic, "prob. register dependence = 1", "dep=1");
    (Register_traffic, "prob. register dependence <= 2", "dep<=2");
    (Register_traffic, "prob. register dependence <= 4", "dep<=4");
    (Register_traffic, "prob. register dependence <= 8", "dep<=8");
    (Register_traffic, "prob. register dependence <= 16", "dep<=16");
    (Register_traffic, "prob. register dependence <= 32", "dep<=32");
    (Register_traffic, "prob. register dependence <= 64", "dep<=64");
    (Working_set_size, "D-stream working set at the 32B block level", "ws_d_blk");
    (Working_set_size, "D-stream working set at the 4KB page level", "ws_d_pg");
    (Working_set_size, "I-stream working set at the 32B block level", "ws_i_blk");
    (Working_set_size, "I-stream working set at the 4KB page level", "ws_i_pg");
    (Data_stream_strides, "prob. local load stride = 0", "ll=0");
    (Data_stream_strides, "prob. local load stride <= 8", "ll<=8");
    (Data_stream_strides, "prob. local load stride <= 64", "ll<=64");
    (Data_stream_strides, "prob. local load stride <= 512", "ll<=512");
    (Data_stream_strides, "prob. local load stride <= 4096", "ll<=4096");
    (Data_stream_strides, "prob. global load stride = 0", "gl=0");
    (Data_stream_strides, "prob. global load stride <= 8", "gl<=8");
    (Data_stream_strides, "prob. global load stride <= 64", "gl<=64");
    (Data_stream_strides, "prob. global load stride <= 512", "gl<=512");
    (Data_stream_strides, "prob. global load stride <= 4096", "gl<=4096");
    (Data_stream_strides, "prob. local store stride = 0", "ls=0");
    (Data_stream_strides, "prob. local store stride <= 8", "ls<=8");
    (Data_stream_strides, "prob. local store stride <= 64", "ls<=64");
    (Data_stream_strides, "prob. local store stride <= 512", "ls<=512");
    (Data_stream_strides, "prob. local store stride <= 4096", "ls<=4096");
    (Data_stream_strides, "prob. global store stride = 0", "gs=0");
    (Data_stream_strides, "prob. global store stride <= 8", "gs<=8");
    (Data_stream_strides, "prob. global store stride <= 64", "gs<=64");
    (Data_stream_strides, "prob. global store stride <= 512", "gs<=512");
    (Data_stream_strides, "prob. global store stride <= 4096", "gs<=4096");
    (Branch_predictability, "GAg PPM predictor miss rate", "ppm_GAg");
    (Branch_predictability, "PAg PPM predictor miss rate", "ppm_PAg");
    (Branch_predictability, "GAs PPM predictor miss rate", "ppm_GAs");
    (Branch_predictability, "PAs PPM predictor miss rate", "ppm_PAs");
  |]

let count = Array.length table
let names = Array.map (fun (_, n, _) -> n) table
let short_names = Array.map (fun (_, _, s) -> s) table
let categories = Array.map (fun (c, _, _) -> c) table

let index_of_short_name s =
  let rec go i = if i >= count then None else if short_names.(i) = s then Some i else go (i + 1) in
  go 0

let pp_row fmt i =
  Format.fprintf fmt "%2d  %-22s  %s" (i + 1) (category_name categories.(i)) names.(i)
