(** Basic-block-vector (BBV) collection for phase analysis.

    The paper's related work (Sherwood et al.'s SimPoint, Lau et al.)
    identifies program phases from basic-block vectors: per fixed-length
    instruction interval, the execution count of each basic block.  A
    basic block is keyed by its entry pc — the target of the control
    transfer that entered it (or the fall-through pc after a not-taken
    branch).  Intervals are row-normalized so they compare by behaviour,
    not length. *)

type t

val create : ?interval:int -> unit -> t
(** [interval] is the number of dynamic instructions per BBV interval
    (default 10,000).  Must be positive. *)

val sink : t -> Mica_trace.Sink.t

val finalize : t -> unit
(** Flush the current partial interval (if at least half full).  Called
    automatically by the accessors below. *)

val interval_count : t -> int

val block_ids : t -> int array
(** Entry pcs of every basic block seen, ascending; the column order of
    {!matrix}. *)

val matrix : t -> float array array
(** Interval-by-block matrix of execution frequencies, each row summing to
    1 (for non-empty intervals). *)

val projected : ?dims:int -> ?seed:int64 -> t -> float array array
(** SimPoint-style random projection of {!matrix} down to [dims]
    dimensions (default 15) — the standard trick to make interval
    clustering cheap and stable. *)
