module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

let cutoffs = [| 0; 8; 64; 512; 4096 |]

(* Histogram over the cumulative cutoffs plus a "> 4096" bucket. *)
type hist = { counts : int array; mutable total : int }

let make_hist () = { counts = Array.make (Array.length cutoffs + 1) 0; total = 0 }

let record hist stride =
  let s = abs stride in
  let n = Array.length cutoffs in
  let rec bucket i = if i >= n then n else if s <= cutoffs.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  hist.counts.(b) <- hist.counts.(b) + 1;
  hist.total <- hist.total + 1

let cdf hist =
  let denom = float_of_int (max 1 hist.total) in
  let out = Array.make (Array.length cutoffs) 0.0 in
  let acc = ref 0 in
  Array.iteri
    (fun i _ ->
      acc := !acc + hist.counts.(i);
      out.(i) <- float_of_int !acc /. denom)
    out;
  out

type result = {
  local_load : float array;
  global_load : float array;
  local_store : float array;
  global_store : float array;
}

type t = {
  ll_hist : hist;
  gl_hist : hist;
  ls_hist : hist;
  gs_hist : hist;
  last_by_pc : (int, int) Hashtbl.t;  (* static mem instruction -> last address *)
  mutable last_load : int;  (* -1 if none yet *)
  mutable last_store : int;
}

let create () =
  {
    ll_hist = make_hist ();
    gl_hist = make_hist ();
    ls_hist = make_hist ();
    gs_hist = make_hist ();
    last_by_pc = Hashtbl.create 1024;
    last_load = -1;
    last_store = -1;
  }

let sink t =
  Mica_trace.Sink.make ~name:"strides" (fun (ins : Instr.t) ->
      match ins.op with
      | Opcode.Load ->
        if t.last_load >= 0 then record t.gl_hist (ins.addr - t.last_load);
        t.last_load <- ins.addr;
        (match Hashtbl.find_opt t.last_by_pc ins.pc with
        | Some prev -> record t.ll_hist (ins.addr - prev)
        | None -> ());
        Hashtbl.replace t.last_by_pc ins.pc ins.addr
      | Opcode.Store ->
        if t.last_store >= 0 then record t.gs_hist (ins.addr - t.last_store);
        t.last_store <- ins.addr;
        (match Hashtbl.find_opt t.last_by_pc ins.pc with
        | Some prev -> record t.ls_hist (ins.addr - prev)
        | None -> ());
        Hashtbl.replace t.last_by_pc ins.pc ins.addr
      | Opcode.Branch | Opcode.Jump | Opcode.Call | Opcode.Return | Opcode.Int_alu
      | Opcode.Int_mul | Opcode.Fp_add | Opcode.Fp_mul | Opcode.Fp_div | Opcode.Nop ->
        ())

let result t =
  {
    local_load = cdf t.ll_hist;
    global_load = cdf t.gl_hist;
    local_store = cdf t.ls_hist;
    global_store = cdf t.gs_hist;
  }

let to_vector (r : result) =
  Array.concat [ r.local_load; r.global_load; r.local_store; r.global_store ]
