lib/analysis/strides.ml: Array Hashtbl Mica_isa Mica_trace
