lib/analysis/ilp.mli: Mica_trace
