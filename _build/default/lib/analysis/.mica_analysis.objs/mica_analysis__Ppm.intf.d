lib/analysis/ppm.mli: Mica_trace
