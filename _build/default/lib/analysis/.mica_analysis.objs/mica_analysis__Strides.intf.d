lib/analysis/strides.mli: Mica_trace
