lib/analysis/working_set.mli: Mica_trace
