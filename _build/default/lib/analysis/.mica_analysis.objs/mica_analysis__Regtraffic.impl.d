lib/analysis/regtraffic.ml: Array Mica_isa Mica_trace
