lib/analysis/mix.ml: Mica_isa Mica_trace
