lib/analysis/extended.ml: Analyzer Array Branch_stats Characteristics Mica_trace Printf Reuse
