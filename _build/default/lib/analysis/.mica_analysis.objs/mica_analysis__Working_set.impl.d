lib/analysis/working_set.ml: Hashtbl Mica_isa Mica_trace
