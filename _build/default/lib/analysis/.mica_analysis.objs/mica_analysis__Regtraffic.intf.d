lib/analysis/regtraffic.mli: Mica_trace
