lib/analysis/analyzer.mli: Mica_trace Mix Regtraffic Strides Working_set
