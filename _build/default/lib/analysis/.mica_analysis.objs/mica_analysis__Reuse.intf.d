lib/analysis/reuse.mli: Mica_trace
