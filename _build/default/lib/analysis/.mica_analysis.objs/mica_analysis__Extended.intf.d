lib/analysis/extended.mli: Mica_trace
