lib/analysis/ppm.ml: Array Bool Hashtbl List Mica_isa Mica_trace
