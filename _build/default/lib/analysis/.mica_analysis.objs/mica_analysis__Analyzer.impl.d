lib/analysis/analyzer.ml: Array Characteristics Ilp Mica_trace Mix Ppm Regtraffic Strides Working_set
