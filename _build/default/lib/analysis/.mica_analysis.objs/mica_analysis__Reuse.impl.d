lib/analysis/reuse.ml: Array Hashtbl Mica_isa Mica_trace Option
