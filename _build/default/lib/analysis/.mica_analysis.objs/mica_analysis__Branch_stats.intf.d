lib/analysis/branch_stats.mli: Mica_trace
