lib/analysis/ilp.ml: Array Mica_isa Mica_trace
