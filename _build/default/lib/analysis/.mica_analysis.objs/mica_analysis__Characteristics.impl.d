lib/analysis/characteristics.ml: Array Format
