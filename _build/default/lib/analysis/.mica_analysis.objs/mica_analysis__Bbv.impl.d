lib/analysis/bbv.ml: Array Hashtbl List Mica_isa Mica_trace Mica_util Option
