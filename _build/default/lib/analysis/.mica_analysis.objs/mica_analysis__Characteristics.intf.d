lib/analysis/characteristics.mli: Format
