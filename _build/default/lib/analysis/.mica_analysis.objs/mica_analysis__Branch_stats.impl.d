lib/analysis/branch_stats.ml: Hashtbl Mica_isa Mica_trace
