lib/analysis/bbv.mli: Mica_trace
