lib/analysis/mix.mli: Mica_trace
