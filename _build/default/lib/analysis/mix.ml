module Opcode = Mica_isa.Opcode

type result = {
  total : int;
  frac_load : float;
  frac_store : float;
  frac_control : float;
  frac_arith : float;
  frac_int_mul : float;
  frac_fp : float;
}

type t = {
  mutable n : int;
  mutable loads : int;
  mutable stores : int;
  mutable controls : int;
  mutable ariths : int;
  mutable int_muls : int;
  mutable fps : int;
}

let create () = { n = 0; loads = 0; stores = 0; controls = 0; ariths = 0; int_muls = 0; fps = 0 }

let sink t =
  Mica_trace.Sink.make ~name:"mix" (fun ins ->
      t.n <- t.n + 1;
      match ins.Mica_isa.Instr.op with
      | Opcode.Load -> t.loads <- t.loads + 1
      | Opcode.Store -> t.stores <- t.stores + 1
      | Opcode.Branch | Opcode.Jump | Opcode.Call | Opcode.Return ->
        t.controls <- t.controls + 1
      | Opcode.Int_alu -> t.ariths <- t.ariths + 1
      | Opcode.Int_mul -> t.int_muls <- t.int_muls + 1
      | Opcode.Fp_add | Opcode.Fp_mul | Opcode.Fp_div -> t.fps <- t.fps + 1
      | Opcode.Nop -> ())

let result t =
  let d = float_of_int (max 1 t.n) in
  {
    total = t.n;
    frac_load = float_of_int t.loads /. d;
    frac_store = float_of_int t.stores /. d;
    frac_control = float_of_int t.controls /. d;
    frac_arith = float_of_int t.ariths /. d;
    frac_int_mul = float_of_int t.int_muls /. d;
    frac_fp = float_of_int t.fps /. d;
  }

let to_vector r =
  [| r.frac_load; r.frac_store; r.frac_control; r.frac_arith; r.frac_int_mul; r.frac_fp |]
