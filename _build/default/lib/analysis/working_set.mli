(** Working-set analyzer: characteristics 20-23.

    Counts unique 32-byte blocks and unique 4KB pages touched by the data
    stream (load/store effective addresses) and by the instruction stream
    (instruction fetch addresses). *)

type t

type result = {
  data_blocks : int;  (** unique 32B data blocks *)
  data_pages : int;  (** unique 4KB data pages *)
  instr_blocks : int;  (** unique 32B instruction blocks *)
  instr_pages : int;  (** unique 4KB instruction pages *)
}

val create : unit -> t
val sink : t -> Mica_trace.Sink.t
val result : t -> result

val to_vector : result -> float array
(** Table II order (rows 20-23): D-blocks, D-pages, I-blocks, I-pages. *)
