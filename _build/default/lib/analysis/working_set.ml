module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

type result = { data_blocks : int; data_pages : int; instr_blocks : int; instr_pages : int }

type t = {
  d_blocks : (int, unit) Hashtbl.t;
  d_pages : (int, unit) Hashtbl.t;
  i_blocks : (int, unit) Hashtbl.t;
  i_pages : (int, unit) Hashtbl.t;
}

let create () =
  {
    d_blocks = Hashtbl.create 4096;
    d_pages = Hashtbl.create 256;
    i_blocks = Hashtbl.create 1024;
    i_pages = Hashtbl.create 64;
  }

let touch tbl key = if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key ()

let sink t =
  Mica_trace.Sink.make ~name:"working_set" (fun (ins : Instr.t) ->
      touch t.i_blocks (ins.pc lsr 5);
      touch t.i_pages (ins.pc lsr 12);
      if Opcode.is_mem ins.op then begin
        touch t.d_blocks (ins.addr lsr 5);
        touch t.d_pages (ins.addr lsr 12)
      end)

let result t =
  {
    data_blocks = Hashtbl.length t.d_blocks;
    data_pages = Hashtbl.length t.d_pages;
    instr_blocks = Hashtbl.length t.i_blocks;
    instr_pages = Hashtbl.length t.i_pages;
  }

let to_vector r =
  [|
    float_of_int r.data_blocks;
    float_of_int r.data_pages;
    float_of_int r.instr_blocks;
    float_of_int r.instr_pages;
  |]
