(** The combined microarchitecture-independent analyzer.

    Bundles all six characteristic families into one fan-out sink so a
    single trace pass yields the complete 47-element MICA vector of
    Table II (see {!Characteristics} for the ordering). *)

type t

val create : ?ppm_order:int -> ?ilp_windows:int array -> unit -> t
val sink : t -> Mica_trace.Sink.t

val vector : t -> float array
(** The 47 characteristics in Table II order.  May be called mid-trace for
    running values; analyzers finalize on read. *)

(** Access to the per-family analyzers, for case studies and tests. *)

val mix : t -> Mix.result
val ilp_ipc : t -> float array
val regtraffic : t -> Regtraffic.result
val working_set : t -> Working_set.result
val strides : t -> Strides.result
val ppm_miss_rates : t -> float array
val instructions : t -> int

val analyze : ?ppm_order:int -> Mica_trace.Program.t -> icount:int -> float array
(** Convenience: generate the program's trace and return its MICA vector. *)

val analyze_full : ?ppm_order:int -> Mica_trace.Program.t -> icount:int -> t
(** As {!analyze} but returns the analyzer for detailed inspection. *)
