module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

type variant = GAg | PAg | GAs | PAs

let all_variants = [ GAg; PAg; GAs; PAs ]

let variant_name = function GAg -> "GAg" | PAg -> "PAg" | GAs -> "GAs" | PAs -> "PAs"

let uses_local_history = function PAg | PAs -> true | GAg | GAs -> false
let uses_per_address_table = function GAs | PAs -> true | GAg | PAg -> false

type counts = { mutable taken : int; mutable not_taken : int }

type predictor = {
  variant : variant;
  order : int;
  table : (int, counts) Hashtbl.t;
  mutable misses : int;
}

type t = {
  predictors : predictor array;
  local_hist : (int, int) Hashtbl.t;  (* per-branch outcome history *)
  mutable ghist : int;
  order : int;
  mutable branches : int;
}

let create ?(order = 8) ?(variants = all_variants) () =
  assert (order >= 0 && order <= 16);
  {
    predictors =
      Array.of_list
        (List.map
           (fun variant -> { variant; order; table = Hashtbl.create 4096; misses = 0 })
           variants);
    local_hist = Hashtbl.create 512;
    ghist = 0;
    order;
    branches = 0;
  }

(* Context key for a given order [k], history [h] and (optional) branch pc.
   [k] disambiguates histories of different lengths; the pc component is 0
   for shared-table variants. *)
let key ~pc ~k ~h ~order = (((pc * 17) + k) lsl order) lor (h land ((1 lsl order) - 1))

let history_bits h k = h land ((1 lsl k) - 1)

let predict p ~pc ~hist =
  let pc_part = if uses_per_address_table p.variant then pc else 0 in
  let rec go k =
    if k < 0 then true (* no context ever seen: default taken *)
    else
      let h = history_bits hist k in
      match Hashtbl.find_opt p.table (key ~pc:pc_part ~k ~h ~order:p.order) with
      | Some c when c.taken + c.not_taken > 0 -> c.taken >= c.not_taken
      | Some _ | None -> go (k - 1)
  in
  go p.order

let update p ~pc ~hist ~outcome =
  let pc_part = if uses_per_address_table p.variant then pc else 0 in
  for k = 0 to p.order do
    let h = history_bits hist k in
    let key = key ~pc:pc_part ~k ~h ~order:p.order in
    let c =
      match Hashtbl.find_opt p.table key with
      | Some c -> c
      | None ->
        let c = { taken = 0; not_taken = 0 } in
        Hashtbl.add p.table key c;
        c
    in
    if outcome then c.taken <- c.taken + 1 else c.not_taken <- c.not_taken + 1
  done

let sink t =
  Mica_trace.Sink.make ~name:"ppm" (fun (ins : Instr.t) ->
      if Opcode.is_cond_branch ins.op then begin
        t.branches <- t.branches + 1;
        let pc = ins.pc and outcome = ins.taken in
        let lhist = match Hashtbl.find_opt t.local_hist pc with Some h -> h | None -> 0 in
        Array.iter
          (fun p ->
            let hist = if uses_local_history p.variant then lhist else t.ghist in
            if predict p ~pc ~hist <> outcome then p.misses <- p.misses + 1;
            update p ~pc ~hist ~outcome)
          t.predictors;
        let bit = Bool.to_int outcome in
        Hashtbl.replace t.local_hist pc (((lhist lsl 1) lor bit) land 0xFFFF);
        t.ghist <- ((t.ghist lsl 1) lor bit) land 0xFFFF
      end)

let miss_rate t variant =
  if t.branches = 0 then 0.0
  else
    let p = Array.to_list t.predictors |> List.find (fun p -> p.variant = variant) in
    float_of_int p.misses /. float_of_int t.branches

let branches t = t.branches

let to_vector t =
  let present v = Array.exists (fun p -> p.variant = v) t.predictors in
  Array.of_list (List.filter present all_variants |> List.map (miss_rate t))
