(** Supplementary branch statistics.

    Alongside the PPM predictability characteristics, the released MICA
    tool reports simple microarchitecture-independent branch statistics;
    this module provides the common ones:

    - taken rate: fraction of conditional branches taken;
    - transition rate: fraction of executions where a branch's outcome
      differs from its own previous outcome (Haungs et al.) — 0 for
      constant branches, 1 for alternating ones, ~0.5 for random ones;
    - the fraction of static branches that are strongly biased (taken or
      not-taken at least 90% of the time). *)

type t

type result = {
  conditional_branches : int;
  static_branches : int;  (** distinct conditional-branch pcs *)
  taken_rate : float;
  transition_rate : float;
  biased_static_fraction : float;  (** static branches >= 90% one-sided *)
}

val create : unit -> t
val sink : t -> Mica_trace.Sink.t
val result : t -> result
val to_vector : result -> float array
(** [taken_rate; transition_rate; biased_static_fraction]. *)
