(** Deterministic pseudo-random number generation.

    All stochastic components of the library (trace generation, k-means
    seeding, the genetic algorithm) draw from this module so that every
    experiment is bit-reproducible.  The generator is xoshiro256**, seeded
    via SplitMix64 as recommended by its authors. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] initializes a generator from a 64-bit seed.  Equal seeds
    yield equal streams. *)

val of_string : string -> t
(** [of_string s] seeds a generator from the FNV-1a hash of [s]; used to give
    every named workload its own independent stream. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform over [0, n).  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform over [lo, hi] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform over [0, x). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric : t -> p:float -> int
(** [geometric t ~p] counts Bernoulli(p) failures before the first success;
    support 0, 1, 2, ...  Requires [0 < p <= 1]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples ranks 0..n-1 with probability proportional to
    [1/(rank+1)^s], via rejection-inversion-free CDF table-less sampling
    (linear scan is avoided; uses the Ziggurat-free approximation of
    rejection sampling for the Zipf law). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_weighted : t -> (float * 'a) array -> 'a
(** [pick_weighted t choices] samples proportionally to the (non-negative,
    not all zero) weights. *)

val hash_string : string -> int64
(** FNV-1a 64-bit hash, used for name-derived seeds. *)
