lib/util/ring.mli:
