lib/util/rng.mli:
