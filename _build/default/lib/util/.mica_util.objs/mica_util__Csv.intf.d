lib/util/csv.mli:
