(** Fixed-capacity circular buffer of integers.

    Used by trace analyzers that need a sliding window over recent dynamic
    instructions (e.g. register dependency tracking) without allocation on
    the hot path. *)

type t

val create : capacity:int -> t
(** [create ~capacity] makes an empty ring holding at most [capacity]
    elements.  Requires [capacity > 0]. *)

val capacity : t -> int
val length : t -> int
val is_full : t -> bool

val push : t -> int -> unit
(** [push t x] appends [x]; if full, the oldest element is evicted. *)

val get : t -> int -> int
(** [get t i] is the [i]-th most recent element; [get t 0] is the newest.
    Requires [0 <= i < length t]. *)

val oldest : t -> int
(** The element that would be evicted next.  Requires non-empty. *)

val clear : t -> unit

val iter : t -> (int -> unit) -> unit
(** Iterates newest to oldest. *)
