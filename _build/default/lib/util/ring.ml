type t = { data : int array; mutable head : int; (* next write slot *) mutable len : int }

let create ~capacity =
  assert (capacity > 0);
  { data = Array.make capacity 0; head = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len
let is_full t = t.len = Array.length t.data

let push t x =
  let cap = Array.length t.data in
  t.data.(t.head) <- x;
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1

let get t i =
  assert (i >= 0 && i < t.len);
  let cap = Array.length t.data in
  t.data.((t.head - 1 - i + (2 * cap)) mod cap)

let oldest t =
  assert (t.len > 0);
  get t (t.len - 1)

let clear t =
  t.head <- 0;
  t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done
