(* xoshiro256** with SplitMix64 seeding.  See Blackman & Vigna,
   "Scrambled linear pseudorandom number generators". *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64 step: used only for seeding and [split]. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string s = create ~seed:(hash_string s)

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Non-negative 62-bit int from the high bits. *)
let bits_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  assert (n > 0);
  (* Rejection to avoid modulo bias. *)
  let bound = 0x3FFF_FFFF_FFFF_FFFF / n * n in
  let rec go () =
    let v = bits_int t in
    if v < bound then v mod n else go ()
  in
  go ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v *. 0x1.0p-53)

let bool t = Int64.compare (bits64 t) 0L < 0

let bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let geometric t ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = 1.0 -. float t 1.0 in
    (* inverse CDF; [u] in (0,1] so log is finite *)
    int_of_float (Float.of_int 0 +. floor (log u /. log (1. -. p)))

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  -.mean *. log (nonzero ())

(* Zipf sampling by rejection (Devroye); exact for s > 0, fast for small n too. *)
let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else begin
    let nf = float_of_int n in
    if abs_float (s -. 1.0) < 1e-9 then begin
      (* harmonic case: invert H(x) = ln(1+x) approximately, then reject *)
      let hn = log (nf +. 1.0) in
      let rec go () =
        let u = float t 1.0 in
        let x = exp (u *. hn) -. 1.0 in
        let k = int_of_float x in
        if k < n then k else go ()
      in
      go ()
    end
    else begin
      let one_minus_s = 1.0 -. s in
      (* CDF of the continuous envelope over [0, n] *)
      let hx x = ((x +. 1.0) ** one_minus_s -. 1.0) /. one_minus_s in
      let hn = hx nf in
      let rec go () =
        let u = float t 1.0 *. hn in
        let x = ((u *. one_minus_s) +. 1.0) ** (1.0 /. one_minus_s) -. 1.0 in
        let k = int_of_float x in
        if k >= 0 && k < n then begin
          (* acceptance: ratio of true pmf to envelope slice; the envelope is
             within a constant factor so accept with ratio test *)
          let pk = (float_of_int k +. 1.0) ** -.s in
          let env = hx (float_of_int k +. 1.0) -. hx (float_of_int k) in
          if float t 1.0 *. env <= pk then k else go ()
        end
        else go ()
      in
      go ()
    end
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_weighted t choices =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  assert (total > 0.);
  let r = float t total in
  let rec go i acc =
    if i = Array.length choices - 1 then snd choices.(i)
    else
      let w, x = choices.(i) in
      let acc = acc +. w in
      if r < acc then x else go (i + 1) acc
  in
  go 0 0.0
