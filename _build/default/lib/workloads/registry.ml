let all =
  Profiles_bioinfomark.all @ Profiles_biometrics.all @ Profiles_commbench.all
  @ Profiles_mediabench.all @ Profiles_mibench.all @ Profiles_spec.all

let count = List.length all

let () = assert (count = 122)

let by_suite suite = List.filter (fun w -> w.Workload.suite = suite) all

let lower = String.lowercase_ascii

let find needle =
  let n = lower needle in
  let matches f = List.filter (fun w -> lower (f w) = n) all in
  match matches Workload.id with
  | [ w ] -> Some w
  | _ :: _ :: _ -> None
  | [] -> (
    let by_program_input =
      matches (fun w ->
          if w.Workload.input = "" then w.Workload.program
          else Printf.sprintf "%s/%s" w.Workload.program w.Workload.input)
    in
    match by_program_input with
    | [ w ] -> Some w
    | _ :: _ :: _ -> None
    | [] -> (
      match matches Workload.label with
      | [ w ] -> Some w
      | _ :: _ :: _ -> None
      | [] -> (
        match matches (fun w -> w.Workload.program) with [ w ] -> Some w | _ -> None)))

let find_exn needle = match find needle with Some w -> w | None -> raise Not_found

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  end

let matching needle =
  let n = lower needle in
  List.filter (fun w -> contains ~needle:n (lower (Workload.id w))) all
