lib/workloads/workload.mli: Format Mica_trace Suite
