lib/workloads/profiles_bioinfomark.ml: Families Printf Suite Workload
