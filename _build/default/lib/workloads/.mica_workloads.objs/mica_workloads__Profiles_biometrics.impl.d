lib/workloads/profiles_biometrics.ml: Families Mica_trace Printf Suite Workload
