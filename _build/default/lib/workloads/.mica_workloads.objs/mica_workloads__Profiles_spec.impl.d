lib/workloads/profiles_spec.ml: Families Printf Suite Workload
