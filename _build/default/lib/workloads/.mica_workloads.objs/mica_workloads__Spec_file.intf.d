lib/workloads/spec_file.mli: Mica_trace
