lib/workloads/spec_file.ml: Buffer In_channel Int64 List Mica_trace Option Printf String
