lib/workloads/families.ml: Float List Mica_trace Option Printf
