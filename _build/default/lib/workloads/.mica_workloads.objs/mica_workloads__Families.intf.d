lib/workloads/families.mli: Mica_trace
