lib/workloads/suite.ml: Format List String
