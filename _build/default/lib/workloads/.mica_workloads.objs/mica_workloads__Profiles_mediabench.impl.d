lib/workloads/profiles_mediabench.ml: Families Printf Suite Workload
