lib/workloads/registry.mli: Suite Workload
