lib/workloads/profiles_mibench.ml: Families Printf Suite Workload
