lib/workloads/profiles_commbench.ml: Families Printf Suite Workload
