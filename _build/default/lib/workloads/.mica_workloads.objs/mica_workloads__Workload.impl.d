lib/workloads/workload.ml: Format Mica_trace Printf Suite
