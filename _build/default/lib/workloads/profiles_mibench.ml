(* MiBench: free embedded benchmarks (Guthaus et al., WWC 2001).  Telecom,
   security, consumer, office and automotive categories; the paper uses the
   large inputs throughout. *)

open Families

let suite = Suite.MiBench

let w ~program ?input ~icnt model =
  Workload.make ~suite ~program ?input ~icount_millions:icnt model

let nm program input = Printf.sprintf "MiBench/%s/%s" program input

let all =
  [
    w ~program:"CRC32" ~input:"large" ~icnt:612
      (tiny_dsp_loop ~name:(nm "CRC32" "large") ~data_kb:16 ~stride:1 ());
    w ~program:"FFT" ~input:"fft (large)" ~icnt:237
      (dsp_transform ~name:(nm "FFT" "fft") ~data_kb:512 ~fp:0.32 ());
    w ~program:"FFT" ~input:"fftinv (large)" ~icnt:217
      (dsp_transform ~name:(nm "FFT" "fftinv") ~data_kb:512 ~fp:0.32 ());
    (* The paper singles adpcm out as isolated (cluster 6): a minuscule,
       perfectly predictable integer kernel. *)
    w ~program:"adpcm" ~input:"rawcaudio" ~icnt:758
      (tiny_dsp_loop ~name:(nm "adpcm" "rawcaudio") ~data_kb:2 ~stride:1 ());
    w ~program:"adpcm" ~input:"rawdaudio" ~icnt:639
      (tiny_dsp_loop ~name:(nm "adpcm" "rawdaudio") ~data_kb:2 ~stride:1 ());
    w ~program:"basicmath" ~input:"large" ~icnt:1_523
      (fp_dense ~name:(nm "basicmath" "large") ~data_kb:64 ~fp:0.30 ~div:0.10 ());
    w ~program:"bitcount" ~input:"large" ~icnt:681
      (bit_kernel ~name:(nm "bitcount" "large") ~data_kb:4 ());
    w ~program:"blowfish" ~input:"decode" ~icnt:495
      (table_crypto ~name:(nm "blowfish" "decode") ~table_kb:4 ());
    w ~program:"blowfish" ~input:"encode" ~icnt:498
      (table_crypto ~name:(nm "blowfish" "encode") ~table_kb:4 ());
    w ~program:"dijkstra" ~input:"large" ~icnt:252
      (pointer_network ~name:(nm "dijkstra" "large") ~data_kb:512 ~chase:0.40 ());
    w ~program:"ghostscript" ~input:"large" ~icnt:868
      (interpreter ~name:(nm "ghostscript" "large") ~data_mb:4 ~code_k:16 ());
    w ~program:"ispell" ~input:"large" ~icnt:1_027
      (interpreter ~name:(nm "ispell" "large") ~data_mb:2 ~code_k:6 ~branch_bias:0.45 ());
    w ~program:"jpeg" ~input:"cjpeg" ~icnt:121
      (block_codec ~name:(nm "jpeg" "cjpeg") ~data_kb:512 ~imul:0.08 ());
    w ~program:"jpeg" ~input:"djpeg" ~icnt:24
      (block_codec ~name:(nm "jpeg" "djpeg") ~data_kb:512 ~imul:0.07 ());
    w ~program:"lame" ~input:"large" ~icnt:1_199
      (dsp_transform ~name:(nm "lame" "large") ~data_kb:1024 ~fp:0.30 ());
    w ~program:"mad" ~input:"large" ~icnt:345
      (dsp_transform ~name:(nm "mad" "large") ~data_kb:512 ~fp:0.15 ());
    w ~program:"patricia" ~input:"large" ~icnt:399
      (pointer_network ~name:(nm "patricia" "large") ~data_kb:1024 ~chase:0.50 ());
    w ~program:"pgp" ~input:"decode" ~icnt:111
      (bitstream_codec ~name:(nm "pgp" "decode") ~data_kb:512 ~table_kb:32 ());
    w ~program:"pgp" ~input:"encode" ~icnt:48
      (bitstream_codec ~name:(nm "pgp" "encode") ~data_kb:512 ~table_kb:32 ());
    w ~program:"qsort" ~input:"large" ~icnt:512
      (sort_kernel ~name:(nm "qsort" "large") ~data_kb:2048 ());
    w ~program:"rsynth" ~input:"say (large)" ~icnt:775
      (speech_synth ~name:(nm "rsynth" "say") ~data_kb:512 ());
    w ~program:"sha" ~input:"large" ~icnt:114
      (tiny_dsp_loop ~name:(nm "sha" "large") ~data_kb:16 ());
    w ~program:"susan" ~input:"corners (large)" ~icnt:29
      (block_codec ~name:(nm "susan" "corners") ~data_kb:256 ~imul:0.05 ());
    w ~program:"susan" ~input:"edges (large)" ~icnt:73
      (block_codec ~name:(nm "susan" "edges") ~data_kb:256 ~imul:0.05 ());
    w ~program:"susan" ~input:"smoothing (large)" ~icnt:300
      (block_codec ~name:(nm "susan" "smoothing") ~data_kb:512 ~imul:0.04 ~row_stride:2048 ());
    (* tiff's inputs diverge (paper cluster 3): conversion is streaming,
       dithering is a serial error-diffusion recurrence, median is
       sort-like. *)
    w ~program:"tiff" ~input:"2bw" ~icnt:143
      (block_codec ~name:(nm "tiff" "2bw") ~data_kb:4096 ~imul:0.03 ~row_stride:8192 ());
    w ~program:"tiff" ~input:"2rgba" ~icnt:268
      (block_codec ~name:(nm "tiff" "2rgba") ~data_kb:8192 ~imul:0.02 ~row_stride:8192 ());
    w ~program:"tiff" ~input:"dither" ~icnt:1_228
      (dynamic_prog ~name:(nm "tiff" "dither") ~data_kb:2048 ~carried:0.40 ());
    w ~program:"tiff" ~input:"median" ~icnt:763
      (sort_kernel ~name:(nm "tiff" "median") ~data_kb:1024 ());
    w ~program:"typeset" ~input:"lout" ~icnt:609
      (interpreter ~name:(nm "typeset" "lout") ~data_mb:4 ~code_k:10 ());
  ]
