module K = Mica_trace.Kernel
module P = Mica_trace.Program

let kernel ~name ?body ?mix ?loads ?stores ?data_kb ?code ?regions ?call_prob ?trip ?dep_p
    ?carried ?hot ?imm ?branches ?skip ?fp_mul ?fp_div () =
  let d = K.default in
  let value v default = Option.value v ~default in
  {
    d with
    K.name;
    body_slots = value body d.K.body_slots;
    mix = value mix d.K.mix;
    load_patterns = value loads d.K.load_patterns;
    store_patterns = value stores d.K.store_patterns;
    data_bytes = (match data_kb with Some kb -> kb * 1024 | None -> d.K.data_bytes);
    helper_instrs = value code d.K.helper_instrs;
    helper_regions = value regions d.K.helper_regions;
    helper_call_prob = value call_prob d.K.helper_call_prob;
    trip_count = value trip d.K.trip_count;
    dep_geom_p = value dep_p d.K.dep_geom_p;
    loop_carried_frac = value carried d.K.loop_carried_frac;
    hot_value_frac = value hot d.K.hot_value_frac;
    imm_frac = value imm d.K.imm_frac;
    branch_kinds = value branches d.K.branch_kinds;
    branch_skip_max = value skip d.K.branch_skip_max;
    fp_mul_frac = value fp_mul d.K.fp_mul_frac;
    fp_div_frac = value fp_div d.K.fp_div_frac;
  }

let program ~name ?(phase_len = 50_000) phases =
  P.make ~name
    (List.mapi
       (fun i kernels ->
         { P.ph_name = Printf.sprintf "phase%d" i; ph_kernels = kernels; ph_length = phase_len })
       phases)

let single ~name spec = program ~name [ [ (1.0, spec) ] ]

let mix ?(load = 0.25) ?(store = 0.10) ?(branch = 0.10) ?(imul = 0.01) ?(fp = 0.0) () =
  { K.load; store; branch; int_mul = imul; fp }

(* Branch mixtures *)
let predictable = [ (1.0, K.Loop_like { period = 16 }) ]

let mostly_predictable =
  [ (0.8, K.Loop_like { period = 16 }); (0.2, K.Periodic { period = 8; taken_in_period = 6 }) ]

(* "Data-dependent" control: a minority of genuinely hard branches (around
   the given bias), a skewed early-exit test, regular loop exits, and a
   history-correlated branch — the profile of compression/search codes. *)
let data_dependent bias =
  [
    (0.25, K.Biased { taken_prob = bias });
    (0.20, K.Biased { taken_prob = 0.85 });
    (0.45, K.Loop_like { period = 16 });
    (0.10, K.History { depth = 4 });
  ]

let irregular bias =
  [
    (0.35, K.Biased { taken_prob = bias });
    (0.20, K.Biased { taken_prob = 0.2 });
    (0.35, K.Loop_like { period = 12 });
    (0.10, K.History { depth = 6 });
  ]

(* ------------------------------------------------------------------ *)

let tiny_dsp_loop ~name ?(data_kb = 8) ?(fp = 0.0) ?(stride = 4) () =
  single ~name
    (kernel ~name ~body:20
       ~mix:(mix ~load:0.22 ~store:0.12 ~branch:0.08 ~fp ())
       ~loads:[ (0.85, K.Seq { stride }); (0.15, K.Fixed) ]
       ~stores:[ (0.9, K.Seq { stride }); (0.1, K.Fixed) ]
       ~data_kb ~code:96 ~regions:1 ~call_prob:0.01 ~trip:256 ~dep_p:0.5 ~carried:0.15
       ~branches:predictable ())

let dsp_transform ~name ?(data_kb = 256) ?(fp = 0.30) ?(stride = 64) () =
  let butterfly =
    kernel ~name:(name ^ ".butterfly") ~body:32
      ~mix:(mix ~load:0.28 ~store:0.14 ~branch:0.06 ~fp ())
      ~loads:[ (0.5, K.Seq { stride = 8 }); (0.5, K.Strided { stride }) ]
      ~stores:[ (0.5, K.Seq { stride = 8 }); (0.5, K.Strided { stride }) ]
      ~data_kb ~code:384 ~regions:3 ~call_prob:0.04 ~trip:64 ~dep_p:0.25 ~carried:0.04
      ~branches:mostly_predictable ~fp_mul:0.5 ()
  in
  let twiddle =
    kernel ~name:(name ^ ".twiddle") ~body:24
      ~mix:(mix ~load:0.30 ~store:0.08 ~branch:0.08 ~fp:(fp *. 0.8) ())
      ~loads:[ (0.6, K.Fixed); (0.4, K.Seq { stride = 8 }) ]
      ~data_kb:(max 4 (data_kb / 16))
      ~code:128 ~regions:1 ~trip:128 ~branches:predictable ~fp_mul:0.45 ()
  in
  program ~name [ [ (0.75, butterfly); (0.25, twiddle) ] ]

let block_codec ~name ?(data_kb = 768) ?(imul = 0.06) ?(row_stride = 1024) () =
  let block =
    kernel ~name:(name ^ ".block") ~body:40
      ~mix:(mix ~load:0.26 ~store:0.12 ~branch:0.07 ~imul ())
      ~loads:[ (0.45, K.Seq { stride = 4 }); (0.35, K.Strided { stride = row_stride }); (0.2, K.Fixed) ]
      ~stores:[ (0.6, K.Seq { stride = 4 }); (0.4, K.Strided { stride = row_stride }) ]
      ~data_kb ~code:768 ~regions:4 ~call_prob:0.06 ~trip:64 ~dep_p:0.35
      ~branches:mostly_predictable ()
  in
  let entropy =
    kernel ~name:(name ^ ".entropy") ~body:24
      ~mix:(mix ~load:0.28 ~store:0.10 ~branch:0.14 ())
      ~loads:[ (0.5, K.Random); (0.5, K.Seq { stride = 1 }) ]
      ~stores:[ (0.9, K.Seq { stride = 1 }); (0.1, K.Fixed) ]
      ~data_kb:(max 8 (data_kb / 24))
      ~code:256 ~regions:2 ~trip:32 ~branches:(data_dependent 0.45) ()
  in
  program ~name [ [ (0.7, block); (0.3, entropy) ] ]

let bitstream_codec ~name ?(data_kb = 1024) ?(table_kb = 64) ?(branch_bias = 0.45) () =
  let stream =
    kernel ~name:(name ^ ".stream") ~body:28
      ~mix:(mix ~load:0.27 ~store:0.11 ~branch:0.16 ())
      ~loads:[ (0.45, K.Seq { stride = 1 }); (0.45, K.Random); (0.10, K.Fixed) ]
      ~stores:[ (0.7, K.Seq { stride = 1 }); (0.3, K.Random) ]
      ~data_kb:table_kb ~code:512 ~regions:3 ~call_prob:0.05 ~trip:24 ~dep_p:0.5 ~carried:0.10
      ~branches:(data_dependent branch_bias) ~skip:3 ()
  in
  let model_update =
    kernel ~name:(name ^ ".model") ~body:20
      ~mix:(mix ~load:0.30 ~store:0.15 ~branch:0.12 ())
      ~loads:[ (0.8, K.Random); (0.2, K.Fixed) ]
      ~stores:[ (0.8, K.Random); (0.2, K.Fixed) ]
      ~data_kb ~code:256 ~regions:2 ~trip:16 ~branches:(irregular 0.5) ()
  in
  program ~name [ [ (0.65, stream); (0.35, model_update) ] ]

let table_crypto ~name ?(table_kb = 8) () =
  single ~name
    (kernel ~name ~body:32
       ~mix:(mix ~load:0.30 ~store:0.08 ~branch:0.05 ())
       ~loads:[ (0.7, K.Random); (0.2, K.Seq { stride = 4 }); (0.1, K.Fixed) ]
       ~stores:[ (0.8, K.Seq { stride = 4 }); (0.2, K.Fixed) ]
       ~data_kb:table_kb ~code:160 ~regions:1 ~call_prob:0.02 ~trip:128 ~dep_p:0.45
       ~carried:0.08 ~branches:predictable ())

let pointer_network ~name ?(data_kb = 512) ?(chase = 0.35) ?(branch_bias = 0.5) () =
  single ~name
    (kernel ~name ~body:26
       ~mix:(mix ~load:0.32 ~store:0.10 ~branch:0.15 ())
       ~loads:
         [ (chase, K.Chase); (0.35, K.Random); (Float.max 0.05 (0.65 -. chase), K.Seq { stride = 8 }) ]
       ~stores:[ (0.5, K.Random); (0.5, K.Fixed) ]
       ~data_kb ~code:640 ~regions:4 ~call_prob:0.08 ~trip:12 ~dep_p:0.45
       ~branches:(irregular branch_bias) ~skip:4 ())

let graph_optimizer ~name ?(data_mb = 32) ?(chase = 0.5) () =
  single ~name
    (kernel ~name ~body:24
       ~mix:(mix ~load:0.34 ~store:0.08 ~branch:0.12 ())
       ~loads:[ (chase, K.Chase); (1.0 -. chase, K.Random) ]
       ~stores:[ (0.7, K.Random); (0.3, K.Fixed) ]
       ~data_kb:(data_mb * 1024)
       ~code:512 ~regions:3 ~call_prob:0.04 ~trip:20 ~dep_p:0.5 ~carried:0.12
       ~branches:(irregular 0.45) ())

let interpreter ~name ?(data_mb = 8) ?(code_k = 12) ?(branch_bias = 0.5) () =
  let dispatch =
    kernel ~name:(name ^ ".dispatch") ~body:30
      ~mix:(mix ~load:0.28 ~store:0.12 ~branch:0.17 ())
      ~loads:[ (0.4, K.Random); (0.3, K.Chase); (0.3, K.Fixed) ]
      ~stores:[ (0.6, K.Random); (0.4, K.Fixed) ]
      ~data_kb:(data_mb * 1024)
      ~code:(code_k * 1024 / 2)
      ~regions:24 ~call_prob:0.25 ~trip:6 ~dep_p:0.45
      ~branches:(data_dependent branch_bias) ~skip:5 ()
  in
  let analysis =
    kernel ~name:(name ^ ".analysis") ~body:36
      ~mix:(mix ~load:0.25 ~store:0.10 ~branch:0.13 ())
      ~loads:[ (0.5, K.Random); (0.5, K.Seq { stride = 8 }) ]
      ~stores:[ (0.7, K.Seq { stride = 8 }); (0.3, K.Random) ]
      ~data_kb:(data_mb * 512)
      ~code:(code_k * 1024 / 2)
      ~regions:16 ~call_prob:0.18 ~trip:10 ~branches:(data_dependent (branch_bias +. 0.05)) ()
  in
  program ~name [ [ (0.6, dispatch); (0.4, analysis) ]; [ (0.3, dispatch); (0.7, analysis) ] ]

let oo_database ~name ?(data_mb = 12) () =
  single ~name
    (kernel ~name ~body:32
       ~mix:(mix ~load:0.30 ~store:0.13 ~branch:0.12 ())
       ~loads:[ (0.35, K.Chase); (0.40, K.Random); (0.25, K.Seq { stride = 8 }) ]
       ~stores:[ (0.5, K.Random); (0.5, K.Seq { stride = 8 }) ]
       ~data_kb:(data_mb * 1024)
       ~code:6144 ~regions:20 ~call_prob:0.20 ~trip:8 ~branches:(data_dependent 0.55) ())

let fp_stencil ~name ?(data_mb = 16) ?(fp = 0.38) ?(stride = 2048) () =
  single ~name
    (kernel ~name ~body:48
       ~mix:(mix ~load:0.30 ~store:0.12 ~branch:0.03 ~fp ())
       ~loads:[ (0.6, K.Seq { stride = 8 }); (0.4, K.Strided { stride }) ]
       ~stores:[ (0.7, K.Seq { stride = 8 }); (0.3, K.Strided { stride }) ]
       ~data_kb:(data_mb * 1024)
       ~code:256 ~regions:2 ~call_prob:0.02 ~trip:200 ~dep_p:0.2 ~carried:0.02
       ~branches:predictable ~fp_mul:0.45 ~fp_div:0.01 ())

let fp_dense ~name ?(data_kb = 2048) ?(fp = 0.35) ?(div = 0.02) () =
  let gemm =
    kernel ~name:(name ^ ".gemm") ~body:40
      ~mix:(mix ~load:0.28 ~store:0.08 ~branch:0.04 ~fp ())
      ~loads:[ (0.55, K.Seq { stride = 8 }); (0.45, K.Strided { stride = 512 }) ]
      ~stores:[ (0.9, K.Seq { stride = 8 }); (0.1, K.Fixed) ]
      ~data_kb ~code:320 ~regions:2 ~call_prob:0.03 ~trip:96 ~dep_p:0.22 ~carried:0.03
      ~branches:predictable ~fp_mul:0.5 ~fp_div:div ()
  in
  let reduce =
    kernel ~name:(name ^ ".reduce") ~body:20
      ~mix:(mix ~load:0.30 ~store:0.05 ~branch:0.06 ~fp:(fp *. 0.9) ())
      ~loads:[ (0.9, K.Seq { stride = 8 }); (0.1, K.Fixed) ]
      ~data_kb ~code:128 ~regions:1 ~trip:128 ~carried:0.30 ~branches:predictable
      ~fp_mul:0.4 ()
  in
  program ~name [ [ (0.8, gemm); (0.2, reduce) ] ]

let fp_stream ~name ?(data_mb = 4) () =
  single ~name
    (kernel ~name ~body:28
       ~mix:(mix ~load:0.32 ~store:0.06 ~branch:0.07 ~fp:0.34 ())
       ~loads:[ (0.95, K.Seq { stride = 8 }); (0.05, K.Fixed) ]
       ~stores:[ (0.9, K.Seq { stride = 8 }); (0.1, K.Fixed) ]
       ~data_kb:(data_mb * 1024)
       ~code:128 ~regions:1 ~call_prob:0.01 ~trip:512 ~dep_p:0.3 ~carried:0.20
       ~branches:predictable ~fp_mul:0.45 ())

let seq_search ~name ?(data_mb = 64) ?(hit_bias = 0.3) () =
  let scan =
    kernel ~name:(name ^ ".scan") ~body:24
      ~mix:(mix ~load:0.33 ~store:0.04 ~branch:0.15 ())
      ~loads:[ (0.7, K.Seq { stride = 4 }); (0.3, K.Random) ]
      ~stores:[ (1.0, K.Fixed) ]
      ~data_kb:(data_mb * 1024)
      ~code:512 ~regions:3 ~call_prob:0.05 ~trip:96 ~dep_p:0.45
      ~branches:[ (0.6, K.Biased { taken_prob = hit_bias }); (0.4, K.Loop_like { period = 16 }) ]
      ~skip:3 ()
  in
  let extend =
    kernel ~name:(name ^ ".extend") ~body:30
      ~mix:(mix ~load:0.28 ~store:0.10 ~branch:0.12 ())
      ~loads:[ (0.5, K.Random); (0.5, K.Seq { stride = 4 }) ]
      ~stores:[ (0.6, K.Seq { stride = 4 }); (0.4, K.Random) ]
      ~data_kb:(data_mb * 256)
      ~code:384 ~regions:2 ~trip:24 ~branches:(data_dependent 0.4) ()
  in
  program ~name [ [ (0.7, scan); (0.3, extend) ] ]

let dynamic_prog ~name ?(data_kb = 4096) ?(fp = 0.0) ?(carried = 0.25) () =
  single ~name
    (kernel ~name ~body:36
       ~mix:(mix ~load:0.30 ~store:0.12 ~branch:0.06 ~fp ())
       ~loads:
         [ (0.4, K.Seq { stride = 4 }); (0.4, K.Strided { stride = 2048 }); (0.2, K.Fixed) ]
       ~stores:[ (0.8, K.Seq { stride = 4 }); (0.2, K.Strided { stride = 2048 }) ]
       ~data_kb ~code:384 ~regions:2 ~call_prob:0.03 ~trip:128 ~dep_p:0.4 ~carried
       ~branches:mostly_predictable ~fp_mul:0.4 ())

let tree_search ~name ?(data_kb = 8192) ?(fp = 0.0) () =
  single ~name
    (kernel ~name ~body:28
       ~mix:(mix ~load:0.31 ~store:0.09 ~branch:0.14 ~fp ())
       ~loads:[ (0.45, K.Chase); (0.35, K.Random); (0.20, K.Fixed) ]
       ~stores:[ (0.6, K.Random); (0.4, K.Fixed) ]
       ~data_kb ~code:896 ~regions:5 ~call_prob:0.12 ~trip:10 ~dep_p:0.45 ~carried:0.10
       ~branches:(irregular 0.48) ~skip:4 ~fp_mul:0.4 ~fp_div:0.05 ())

let sort_kernel ~name ?(data_kb = 2048) () =
  single ~name
    (kernel ~name ~body:22
       ~mix:(mix ~load:0.30 ~store:0.14 ~branch:0.16 ())
       ~loads:[ (0.5, K.Random); (0.5, K.Seq { stride = 8 }) ]
       ~stores:[ (0.5, K.Random); (0.5, K.Seq { stride = 8 }) ]
       ~data_kb ~code:192 ~regions:1 ~call_prob:0.06 ~trip:20 ~dep_p:0.5
       ~branches:(irregular 0.5) ~skip:2 ())

let bit_kernel ~name ?(data_kb = 4) () =
  single ~name
    (kernel ~name ~body:18
       ~mix:(mix ~load:0.10 ~store:0.04 ~branch:0.10 ~imul:0.03 ())
       ~loads:[ (0.6, K.Fixed); (0.4, K.Seq { stride = 4 }) ]
       ~stores:[ (1.0, K.Fixed) ]
       ~data_kb ~code:128 ~regions:1 ~call_prob:0.02 ~trip:192 ~dep_p:0.55 ~carried:0.20
       ~branches:mostly_predictable ())

let speech_synth ~name ?(data_kb = 512) ?(fp = 0.22) () =
  single ~name
    (kernel ~name ~body:30
       ~mix:(mix ~load:0.28 ~store:0.10 ~branch:0.10 ~fp ())
       ~loads:[ (0.4, K.Seq { stride = 8 }); (0.35, K.Random); (0.25, K.Fixed) ]
       ~stores:[ (0.7, K.Seq { stride = 8 }); (0.3, K.Fixed) ]
       ~data_kb ~code:1024 ~regions:6 ~call_prob:0.10 ~trip:48 ~dep_p:0.35 ~carried:0.12
       ~branches:(data_dependent 0.55) ~fp_mul:0.45 ())

let raytracer ~name ?(data_mb = 6) () =
  single ~name
    (kernel ~name ~body:44
       ~mix:(mix ~load:0.27 ~store:0.08 ~branch:0.11 ~fp:0.28 ())
       ~loads:[ (0.3, K.Chase); (0.4, K.Random); (0.3, K.Seq { stride = 8 }) ]
       ~stores:[ (0.6, K.Random); (0.4, K.Seq { stride = 8 }) ]
       ~data_kb:(data_mb * 1024)
       ~code:2048 ~regions:10 ~call_prob:0.15 ~trip:12 ~dep_p:0.3
       ~branches:(data_dependent 0.5) ~fp_mul:0.5 ~fp_div:0.06 ())

let sw_render ~name ?(data_mb = 8) () =
  single ~name
    (kernel ~name ~body:34
       ~mix:(mix ~load:0.24 ~store:0.18 ~branch:0.08 ~fp:0.20 ())
       ~loads:[ (0.5, K.Seq { stride = 4 }); (0.3, K.Fixed); (0.2, K.Random) ]
       ~stores:[ (0.75, K.Seq { stride = 4 }); (0.25, K.Strided { stride = 4096 }) ]
       ~data_kb:(data_mb * 1024)
       ~code:1536 ~regions:8 ~call_prob:0.10 ~trip:40 ~dep_p:0.3
       ~branches:mostly_predictable ~fp_mul:0.5 ())
