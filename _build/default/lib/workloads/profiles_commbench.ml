(* CommBench: telecommunication / network-processor workloads (Wolf &
   Franklin, ISPASS 2000).  Header-processing applications (drr, frag, rtr,
   tcp) and payload-processing applications (cast, jpeg, reed, zip). *)

open Families

let suite = Suite.CommBench

let w ~program ?input ~icnt model =
  Workload.make ~suite ~program ?input ~icount_millions:icnt model

let nm program input = Printf.sprintf "CommBench/%s/%s" program input

let all =
  [
    w ~program:"cast" ~input:"decode" ~icnt:130
      (table_crypto ~name:(nm "cast" "decode") ~table_kb:8 ());
    w ~program:"cast" ~input:"encode" ~icnt:130
      (table_crypto ~name:(nm "cast" "encode") ~table_kb:8 ());
    w ~program:"drr" ~input:"drr" ~icnt:235
      (pointer_network ~name:(nm "drr" "drr") ~data_kb:256 ~chase:0.35 ());
    w ~program:"frag" ~input:"frag" ~icnt:49
      (pointer_network ~name:(nm "frag" "frag") ~data_kb:128 ~chase:0.15 ~branch_bias:0.55 ());
    w ~program:"jpeg" ~input:"decode" ~icnt:238
      (block_codec ~name:(nm "jpeg" "decode") ~data_kb:512 ~imul:0.07 ());
    w ~program:"jpeg" ~input:"encode" ~icnt:339
      (block_codec ~name:(nm "jpeg" "encode") ~data_kb:512 ~imul:0.08 ());
    w ~program:"reed" ~input:"decode" ~icnt:1_298
      (table_crypto ~name:(nm "reed" "decode") ~table_kb:4 ());
    w ~program:"reed" ~input:"encode" ~icnt:912
      (table_crypto ~name:(nm "reed" "encode") ~table_kb:2 ());
    w ~program:"rtr" ~input:"rtr" ~icnt:1_137
      (pointer_network ~name:(nm "rtr" "rtr") ~data_kb:4096 ~chase:0.50 ());
    w ~program:"tcp" ~input:"tcp" ~icnt:58
      (pointer_network ~name:(nm "tcp" "tcp") ~data_kb:96 ~chase:0.25 ());
    w ~program:"zip" ~input:"decode" ~icnt:50
      (bitstream_codec ~name:(nm "zip" "decode") ~data_kb:256 ~table_kb:64 ());
    w ~program:"zip" ~input:"encode" ~icnt:322
      (bitstream_codec ~name:(nm "zip" "encode") ~data_kb:256 ~table_kb:64 ~branch_bias:0.5 ());
  ]
