(** The six benchmark suites of Table I. *)

type t =
  | BioInfoMark  (** bioinformatics *)
  | BioMetricsWorkload  (** biometrics *)
  | CommBench  (** telecommunication / network processing *)
  | MediaBench  (** multimedia *)
  | MiBench  (** embedded *)
  | SpecCpu2000  (** general purpose *)

val all : t list
val name : t -> string
val of_name : string -> t option
(** Case-insensitive lookup by {!name}. *)

val domain : t -> string
(** Human-readable workload domain, e.g. "bioinformatics". *)

val pp : Format.formatter -> t -> unit
