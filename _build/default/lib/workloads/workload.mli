(** A benchmark workload: Table I metadata plus its synthetic program model.

    The [icount_millions] field is the paper's reported dynamic instruction
    count; it is metadata (reproduced in the Table I experiment), not the
    length of the generated trace — all workloads are characterized over
    the same configurable trace length so that their measured rates are
    directly comparable (see DESIGN.md). *)

type t = {
  suite : Suite.t;
  program : string;  (** benchmark name, e.g. "bzip2" *)
  input : string;  (** input name, e.g. "graphic"; "" when the paper lists none *)
  icount_millions : int;  (** Table I dynamic instruction count, in millions *)
  model : Mica_trace.Program.t;  (** the synthetic stand-in *)
}

val make :
  suite:Suite.t -> program:string -> ?input:string -> icount_millions:int ->
  Mica_trace.Program.t -> t

val id : t -> string
(** Unique identifier ["suite/program/input"] (or ["suite/program"] when the
    input is empty). *)

val label : t -> string
(** Short display label ["program.input"] (or ["program"]). *)

val pp : Format.formatter -> t -> unit
