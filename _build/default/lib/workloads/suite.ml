type t =
  | BioInfoMark
  | BioMetricsWorkload
  | CommBench
  | MediaBench
  | MiBench
  | SpecCpu2000

let all = [ BioInfoMark; BioMetricsWorkload; CommBench; MediaBench; MiBench; SpecCpu2000 ]

let name = function
  | BioInfoMark -> "BioInfoMark"
  | BioMetricsWorkload -> "BioMetricsWorkload"
  | CommBench -> "CommBench"
  | MediaBench -> "MediaBench"
  | MiBench -> "MiBench"
  | SpecCpu2000 -> "SPEC2000"

let of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun t -> String.lowercase_ascii (name t) = s) all

let domain = function
  | BioInfoMark -> "bioinformatics"
  | BioMetricsWorkload -> "biometrics"
  | CommBench -> "telecommunication"
  | MediaBench -> "multimedia"
  | MiBench -> "embedded"
  | SpecCpu2000 -> "general purpose"

let pp fmt t = Format.pp_print_string fmt (name t)
