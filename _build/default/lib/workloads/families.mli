(** Workload-family builders.

    Each function models an application archetype as a kernel mixture; the
    per-suite profile modules instantiate these with benchmark-specific
    parameters (working-set size, instruction mix, branch behaviour,
    instruction footprint).  The parameters were chosen from the behaviours
    the paper reports (e.g. blast's outsized working set, mcf's pointer
    chasing, adpcm's tiny perfectly-predictable kernel) and from common
    knowledge of these codes; see DESIGN.md for the substitution argument.

    All builders derive the generation seed from [name], so every
    benchmark gets an independent but reproducible trace. *)

val kernel :
  name:string ->
  ?body:int ->
  ?mix:Mica_trace.Kernel.mix ->
  ?loads:(float * Mica_trace.Kernel.mem_pattern) list ->
  ?stores:(float * Mica_trace.Kernel.mem_pattern) list ->
  ?data_kb:int ->
  ?code:int ->
  ?regions:int ->
  ?call_prob:float ->
  ?trip:int ->
  ?dep_p:float ->
  ?carried:float ->
  ?hot:float ->
  ?imm:float ->
  ?branches:(float * Mica_trace.Kernel.branch_kind) list ->
  ?skip:int ->
  ?fp_mul:float ->
  ?fp_div:float ->
  unit ->
  Mica_trace.Kernel.spec
(** Thin named-parameter wrapper over {!Mica_trace.Kernel.default}. *)

val program :
  name:string -> ?phase_len:int -> (float * Mica_trace.Kernel.spec) list list ->
  Mica_trace.Program.t
(** [program ~name phases] with each phase a weighted kernel list. *)

val single : name:string -> Mica_trace.Kernel.spec -> Mica_trace.Program.t

(** {1 Archetypes}

    [scale] parameters are data working sets in KB unless noted. *)

val tiny_dsp_loop :
  name:string -> ?data_kb:int -> ?fp:float -> ?stride:int -> unit -> Mica_trace.Program.t
(** adpcm / CRC32 / sha / g721: one small, perfectly predictable kernel
    streaming through a small buffer. *)

val dsp_transform :
  name:string -> ?data_kb:int -> ?fp:float -> ?stride:int -> unit -> Mica_trace.Program.t
(** FFT / epic / mad / lame: floating-point butterflies with power-of-two
    strided access. *)

val block_codec :
  name:string -> ?data_kb:int -> ?imul:float -> ?row_stride:int -> unit -> Mica_trace.Program.t
(** jpeg / mpeg2 / susan / tiff: 8x8-block processing, integer multiplies,
    row-strided and sequential streams. *)

val bitstream_codec :
  name:string -> ?data_kb:int -> ?table_kb:int -> ?branch_bias:float -> unit ->
  Mica_trace.Program.t
(** gzip / bzip2 / zip / cast / pgp: sequential input stream, random
    lookups into model tables, data-dependent (poorly predictable)
    branches. *)

val table_crypto : name:string -> ?table_kb:int -> unit -> Mica_trace.Program.t
(** reed / blowfish: tight loops of table lookups and ALU mixing with
    fully predictable control. *)

val pointer_network :
  name:string -> ?data_kb:int -> ?chase:float -> ?branch_bias:float -> unit ->
  Mica_trace.Program.t
(** drr / frag / rtr / tcp / patricia / dijkstra: linked structures, header
    processing, irregular control. *)

val graph_optimizer : name:string -> ?data_mb:int -> ?chase:float -> unit -> Mica_trace.Program.t
(** mcf / twolf / vpr: pointer chasing over large in-memory graphs; low
    ILP, large data working set. *)

val interpreter :
  name:string -> ?data_mb:int -> ?code_k:int -> ?branch_bias:float -> unit ->
  Mica_trace.Program.t
(** gcc / perlbmk / gap / parser / ispell / ghostscript / typeset: very
    large instruction footprint, frequent calls, mixed irregular data. *)

val oo_database : name:string -> ?data_mb:int -> unit -> Mica_trace.Program.t
(** vortex: object traversal plus substantial code footprint. *)

val fp_stencil :
  name:string -> ?data_mb:int -> ?fp:float -> ?stride:int -> unit -> Mica_trace.Program.t
(** applu / mgrid / swim / equake / lucas / wupwise: regular grid sweeps,
    high ILP, highly predictable loops, large sequential data. *)

val fp_dense :
  name:string -> ?data_kb:int -> ?fp:float -> ?div:float -> unit -> Mica_trace.Program.t
(** csu subspace / facerec / galgel / fma3d / sixtrack: dense linear
    algebra on moderate matrices. *)

val fp_stream : name:string -> ?data_mb:int -> unit -> Mica_trace.Program.t
(** art: repeated floating-point sweeps over arrays that overflow the L1
    but fit the working set in few pages relative to blast. *)

val seq_search :
  name:string -> ?data_mb:int -> ?hit_bias:float -> unit -> Mica_trace.Program.t
(** blast / fasta / hmmer search: sequence-database scanning — huge
    sequential data stream with random jump-offs and compare-heavy inner
    loops. *)

val dynamic_prog :
  name:string -> ?data_kb:int -> ?fp:float -> ?carried:float -> unit -> Mica_trace.Program.t
(** clustalw / ce / glimmer / hmmer build: 2D dynamic-programming
    recurrences with loop-carried dependencies. *)

val tree_search :
  name:string -> ?data_kb:int -> ?fp:float -> unit -> Mica_trace.Program.t
(** phylip / predator: tree traversal mixed with per-node computation. *)

val sort_kernel : name:string -> ?data_kb:int -> unit -> Mica_trace.Program.t
(** qsort: data-dependent comparisons, partition streaming. *)

val bit_kernel : name:string -> ?data_kb:int -> unit -> Mica_trace.Program.t
(** bitcount / basicmath: pure ALU loops over tiny data. *)

val speech_synth : name:string -> ?data_kb:int -> ?fp:float -> unit -> Mica_trace.Program.t
(** rsynth / speak: filter evaluation plus lookup tables. *)

val raytracer : name:string -> ?data_mb:int -> unit -> Mica_trace.Program.t
(** eon: floating-point intersection tests over spatial structures. *)

val sw_render : name:string -> ?data_mb:int -> unit -> Mica_trace.Program.t
(** mesa / ghostscript rasterization: store-heavy span filling plus
    floating-point transforms. *)
