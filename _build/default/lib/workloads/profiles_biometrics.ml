(* BioMetricsWorkload: biometric workloads (Cho et al., IISWC 2005).
   The csu face-recognition suite (dense linear algebra over image
   subspaces) plus the speak speaker-verification decoder. *)

open Families

module K = Mica_trace.Kernel

let suite = Suite.BioMetricsWorkload

let w ~program ?input ~icnt model =
  Workload.make ~suite ~program ?input ~icount_millions:icnt model

let nm program input = Printf.sprintf "BioMetricsWorkload/%s/%s" program input

(* The csu face-recognition codes are dominated by inner products of image
   vectors against subspace bases: tall-skinny matrix-vector products whose
   accumulator chains serialize execution (very low ILP), sweeping large
   image galleries with long, perfectly predictable inner loops.  The
   paper finds csu dissimilar from everything in SPEC (its cluster 14), so
   the model is deliberately distinctive rather than generic dense FP. *)
let csu_subspace ~name ~data_kb ?(div = 0.01) () =
  single ~name
    (kernel ~name ~body:26
       ~mix:{ K.load = 0.36; store = 0.04; branch = 0.04; int_mul = 0.0; fp = 0.42 }
       ~loads:[ (0.55, K.Seq { stride = 8 }); (0.45, K.Strided { stride = 10240 }) ]
       ~stores:[ (0.8, K.Fixed); (0.2, K.Seq { stride = 8 }) ]
       ~data_kb ~code:96 ~regions:1 ~call_prob:0.01 ~trip:512 ~dep_p:0.6 ~carried:0.45
       ~hot:0.02
       ~branches:[ (1.0, K.Loop_like { period = 64 }) ]
       ~fp_mul:0.5 ~fp_div:div ())

let all =
  [
    w ~program:"csu" ~input:"Bayesian (project)" ~icnt:403_313
      (csu_subspace ~name:(nm "csu" "bayesian-project") ~data_kb:16384 ());
    w ~program:"csu" ~input:"Bayesian (train)" ~icnt:28_158
      (csu_subspace ~name:(nm "csu" "bayesian-train") ~data_kb:8192 ~div:0.04 ());
    w ~program:"csu" ~input:"PreprocessNormalize" ~icnt:4_059
      (fp_stream ~name:(nm "csu" "preprocess-normalize") ~data_mb:2 ());
    w ~program:"csu" ~input:"SubspaceProject (LDA)" ~icnt:6_054
      (csu_subspace ~name:(nm "csu" "subspace-project-lda") ~data_kb:4096 ());
    w ~program:"csu" ~input:"SubspaceProject (PCA)" ~icnt:6_098
      (csu_subspace ~name:(nm "csu" "subspace-project-pca") ~data_kb:4096 ());
    w ~program:"csu" ~input:"SubspaceTrain (LDA)" ~icnt:51_297
      (csu_subspace ~name:(nm "csu" "subspace-train-lda") ~data_kb:12288 ~div:0.05 ());
    w ~program:"csu" ~input:"SubspaceTrain (PCA)" ~icnt:41_729
      (csu_subspace ~name:(nm "csu" "subspace-train-pca") ~data_kb:12288 ());
    w ~program:"speak" ~input:"decode" ~icnt:46_648
      (speech_synth ~name:(nm "speak" "decode") ~data_kb:768 ~fp:0.25 ());
  ]
