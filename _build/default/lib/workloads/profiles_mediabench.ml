(* MediaBench: multimedia workloads (Lee et al., MICRO 1997).  Wavelet
   image coding, ADPCM-family voice coding, PostScript interpretation,
   3D rendering and MPEG-2 video. *)

open Families

let suite = Suite.MediaBench

let w ~program ?input ~icnt model =
  Workload.make ~suite ~program ?input ~icount_millions:icnt model

let nm program input = Printf.sprintf "MediaBench/%s/%s" program input

let all =
  [
    w ~program:"epic" ~input:"test1" ~icnt:205
      (dsp_transform ~name:(nm "epic" "test1") ~data_kb:256 ~fp:0.26 ());
    w ~program:"epic" ~input:"test2" ~icnt:2_296
      (dsp_transform ~name:(nm "epic" "test2") ~data_kb:1024 ~fp:0.26 ());
    w ~program:"unepic" ~input:"test1" ~icnt:35
      (dsp_transform ~name:(nm "unepic" "test1") ~data_kb:128 ~fp:0.22 ());
    w ~program:"unepic" ~input:"test2" ~icnt:876
      (dsp_transform ~name:(nm "unepic" "test2") ~data_kb:512 ~fp:0.22 ());
    w ~program:"g721" ~input:"decode" ~icnt:323
      (tiny_dsp_loop ~name:(nm "g721" "decode") ~data_kb:8 ());
    w ~program:"g721" ~input:"encode" ~icnt:343
      (tiny_dsp_loop ~name:(nm "g721" "encode") ~data_kb:8 ());
    w ~program:"ghostscript" ~input:"gs" ~icnt:868
      (interpreter ~name:(nm "ghostscript" "gs") ~data_mb:4 ~code_k:16 ());
    w ~program:"mesa" ~input:"mipmap" ~icnt:32
      (sw_render ~name:(nm "mesa" "mipmap") ~data_mb:4 ());
    w ~program:"mesa" ~input:"osdemo" ~icnt:10
      (sw_render ~name:(nm "mesa" "osdemo") ~data_mb:6 ());
    w ~program:"mesa" ~input:"texgen" ~icnt:86
      (sw_render ~name:(nm "mesa" "texgen") ~data_mb:8 ());
    w ~program:"mpeg2" ~input:"decode" ~icnt:149
      (block_codec ~name:(nm "mpeg2" "decode") ~data_kb:1024 ~imul:0.08 ());
    w ~program:"mpeg2" ~input:"encode" ~icnt:1_528
      (block_codec ~name:(nm "mpeg2" "encode") ~data_kb:2048 ~imul:0.10 ());
  ]
