(** The registry of all 122 benchmarks of Table I. *)

val all : Workload.t list
(** Every workload, in Table I order (suite by suite). *)

val count : int
(** 122. *)

val by_suite : Suite.t -> Workload.t list

val find : string -> Workload.t option
(** Lookup by exact {!Workload.id}, by ["program/input"], by
    ["program.input"] label or — when unambiguous — by bare program name.
    Case-insensitive. *)

val find_exn : string -> Workload.t
(** @raise Not_found when {!find} returns [None]. *)

val matching : string -> Workload.t list
(** All workloads whose id contains the given substring
    (case-insensitive). *)
