(** Plain-text workload specifications.

    Lets a user describe a custom workload model in a small line-based
    format and obtain a {!Mica_trace.Program.t}, without writing OCaml —
    the input to [mica place].

    Format (one directive per line, [#] starts a comment):

    {v
    name my-workload
    seed 42                      # optional; default derives from name

    [phase main 50000]           # phase with a dynamic-instruction length
    [kernel probe 0.6]           # kernel with its weight inside the phase
    body 30
    mix 0.33 0.08 0.14 0.01 0.0  # load store branch int_mul fp
    data_kb 32768
    trip 16
    dep_p 0.45
    loads random:0.6 chase:0.2 seq:8:0.2
    stores random:0.7 fixed:0.3
    branches biased:0.35:0.5 loop:12:0.5

    [kernel scan 0.4]
    body 20
    mix 0.30 0.05 0.08 0 0
    data_kb 65536
    loads seq:8:0.95 fixed:0.05
    v}

    Memory patterns: [fixed:W], [seq:STRIDE:W], [strided:STRIDE:W],
    [random:W], [chase:W] (W = mixture weight).  Branch kinds:
    [loop:PERIOD:W], [periodic:PERIOD:TAKEN:W], [biased:PROB:W],
    [history:DEPTH:W].  Unspecified kernel fields keep
    {!Mica_trace.Kernel.default} values.  Kernels before any [[phase]]
    line go into an implicit phase of 50,000 instructions. *)

val parse : string -> (Mica_trace.Program.t, string) result
(** Parse a spec from its text.  Errors carry a line number. *)

val to_text : Mica_trace.Program.t -> string
(** Render a program model back to spec text.  [parse (to_text p)] yields a
    program with the same name, seed, phases and kernel parameters. *)

val load : string -> (Mica_trace.Program.t, string) result
(** Parse a spec file from disk. *)

val example : string
(** A complete example spec (used in documentation and tests). *)
