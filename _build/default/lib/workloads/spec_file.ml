module K = Mica_trace.Kernel
module P = Mica_trace.Program

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let float_field line name v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail line "%s expects a number, got %S" name v

let int_field line name v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail line "%s expects an integer, got %S" name v

(* pattern tokens: fixed:W | seq:STRIDE:W | strided:STRIDE:W | random:W | chase:W *)
let parse_mem_pattern line token =
  match String.split_on_char ':' token with
  | [ "fixed"; w ] -> (float_field line "fixed weight" w, K.Fixed)
  | [ "seq"; stride; w ] ->
    (float_field line "seq weight" w, K.Seq { stride = int_field line "seq stride" stride })
  | [ "strided"; stride; w ] ->
    ( float_field line "strided weight" w,
      K.Strided { stride = int_field line "strided stride" stride } )
  | [ "random"; w ] -> (float_field line "random weight" w, K.Random)
  | [ "chase"; w ] -> (float_field line "chase weight" w, K.Chase)
  | _ -> fail line "unknown memory pattern %S" token

(* branch tokens: loop:P:W | periodic:P:T:W | biased:PROB:W | history:D:W *)
let parse_branch_kind line token =
  match String.split_on_char ':' token with
  | [ "loop"; p; w ] ->
    (float_field line "loop weight" w, K.Loop_like { period = int_field line "loop period" p })
  | [ "periodic"; p; t; w ] ->
    ( float_field line "periodic weight" w,
      K.Periodic
        {
          period = int_field line "periodic period" p;
          taken_in_period = int_field line "periodic taken" t;
        } )
  | [ "biased"; prob; w ] ->
    ( float_field line "biased weight" w,
      K.Biased { taken_prob = float_field line "biased prob" prob } )
  | [ "history"; d; w ] ->
    (float_field line "history weight" w, K.History { depth = int_field line "history depth" d })
  | _ -> fail line "unknown branch kind %S" token

type building = {
  mutable name : string option;
  mutable seed : int64 option;
  mutable phases : (string * int * (float * K.spec) list) list;  (* reverse order *)
  mutable current_phase : (string * int) option;
  mutable phase_kernels : (float * K.spec) list;  (* reverse order *)
  mutable current_kernel : (float * K.spec) option;
}

let default_phase_length = 50_000

let flush_kernel b =
  match b.current_kernel with
  | None -> ()
  | Some (w, spec) ->
    b.phase_kernels <- (w, spec) :: b.phase_kernels;
    b.current_kernel <- None

let flush_phase b =
  flush_kernel b;
  (match (b.current_phase, b.phase_kernels) with
  | None, [] -> ()
  | None, kernels -> b.phases <- ("main", default_phase_length, List.rev kernels) :: b.phases
  | Some (name, len), kernels -> b.phases <- (name, len, List.rev kernels) :: b.phases);
  b.current_phase <- None;
  b.phase_kernels <- []

let with_kernel b line f =
  match b.current_kernel with
  | Some (w, spec) -> b.current_kernel <- Some (w, f spec)
  | None -> fail line "kernel field outside a [kernel ...] section"

let tokens s =
  List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim s))

let parse_line b lineno raw =
  let line =
    match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
  in
  let line = String.trim line in
  if line = "" then ()
  else if String.length line > 1 && line.[0] = '[' then begin
    if line.[String.length line - 1] <> ']' then fail lineno "unterminated section header";
    let inner = String.sub line 1 (String.length line - 2) in
    match tokens inner with
    | [ "phase"; name; len ] ->
      flush_phase b;
      b.current_phase <- Some (name, int_field lineno "phase length" len)
    | [ "kernel"; name; weight ] ->
      flush_kernel b;
      let w = float_field lineno "kernel weight" weight in
      if w <= 0.0 then fail lineno "kernel weight must be positive";
      b.current_kernel <- Some (w, { K.default with K.name })
    | _ -> fail lineno "unknown section %S (expected [phase NAME LENGTH] or [kernel NAME WEIGHT])" inner
  end
  else
    match tokens line with
    | [ "name"; n ] -> b.name <- Some n
    | [ "seed"; s ] -> (
      match Int64.of_string_opt s with
      | Some v -> b.seed <- Some v
      | None -> fail lineno "seed expects an integer, got %S" s)
    | "name" :: _ | "seed" :: _ -> fail lineno "name/seed expect exactly one value"
    | [ "body"; v ] ->
      with_kernel b lineno (fun k -> { k with K.body_slots = int_field lineno "body" v })
    | [ "mix"; l; s; br; im; fp ] ->
      with_kernel b lineno (fun k ->
          {
            k with
            K.mix =
              {
                K.load = float_field lineno "mix load" l;
                store = float_field lineno "mix store" s;
                branch = float_field lineno "mix branch" br;
                int_mul = float_field lineno "mix int_mul" im;
                fp = float_field lineno "mix fp" fp;
              };
          })
    | [ "data_kb"; v ] ->
      with_kernel b lineno (fun k -> { k with K.data_bytes = 1024 * int_field lineno "data_kb" v })
    | [ "code"; v ] ->
      with_kernel b lineno (fun k -> { k with K.helper_instrs = int_field lineno "code" v })
    | [ "regions"; v ] ->
      with_kernel b lineno (fun k -> { k with K.helper_regions = int_field lineno "regions" v })
    | [ "call_prob"; v ] ->
      with_kernel b lineno (fun k ->
          { k with K.helper_call_prob = float_field lineno "call_prob" v })
    | [ "zipf"; v ] ->
      with_kernel b lineno (fun k -> { k with K.helper_zipf_s = float_field lineno "zipf" v })
    | [ "trip"; v ] ->
      with_kernel b lineno (fun k -> { k with K.trip_count = int_field lineno "trip" v })
    | [ "dep_p"; v ] ->
      with_kernel b lineno (fun k -> { k with K.dep_geom_p = float_field lineno "dep_p" v })
    | [ "carried"; v ] ->
      with_kernel b lineno (fun k ->
          { k with K.loop_carried_frac = float_field lineno "carried" v })
    | [ "hot"; v ] ->
      with_kernel b lineno (fun k -> { k with K.hot_value_frac = float_field lineno "hot" v })
    | [ "imm"; v ] ->
      with_kernel b lineno (fun k -> { k with K.imm_frac = float_field lineno "imm" v })
    | [ "skip"; v ] ->
      with_kernel b lineno (fun k -> { k with K.branch_skip_max = int_field lineno "skip" v })
    | [ "fp_mul"; v ] ->
      with_kernel b lineno (fun k -> { k with K.fp_mul_frac = float_field lineno "fp_mul" v })
    | [ "fp_div"; v ] ->
      with_kernel b lineno (fun k -> { k with K.fp_div_frac = float_field lineno "fp_div" v })
    | "loads" :: pats when pats <> [] ->
      let parsed = List.map (parse_mem_pattern lineno) pats in
      with_kernel b lineno (fun k -> { k with K.load_patterns = parsed })
    | "stores" :: pats when pats <> [] ->
      let parsed = List.map (parse_mem_pattern lineno) pats in
      with_kernel b lineno (fun k -> { k with K.store_patterns = parsed })
    | "branches" :: kinds when kinds <> [] ->
      let parsed = List.map (parse_branch_kind lineno) kinds in
      with_kernel b lineno (fun k -> { k with K.branch_kinds = parsed })
    | key :: _ -> fail lineno "unknown directive %S" key
    | [] -> ()

let parse text =
  let b =
    {
      name = None;
      seed = None;
      phases = [];
      current_phase = None;
      phase_kernels = [];
      current_kernel = None;
    }
  in
  try
    List.iteri (fun i line -> parse_line b (i + 1) line) (String.split_on_char '\n' text);
    flush_phase b;
    let name = Option.value b.name ~default:"custom-workload" in
    let phases =
      List.rev_map
        (fun (ph_name, ph_length, ph_kernels) -> { P.ph_name; P.ph_length; P.ph_kernels })
        b.phases
    in
    if phases = [] then Error "spec defines no kernels"
    else begin
      let program = P.make ~name ?seed:b.seed phases in
      match P.validate program with Ok () -> Ok program | Error msg -> Error msg
    end
  with Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* ---------------- printer ---------------- *)

let mem_pattern_to_token (w, p) =
  match (p : K.mem_pattern) with
  | K.Fixed -> Printf.sprintf "fixed:%g" w
  | K.Seq { stride } -> Printf.sprintf "seq:%d:%g" stride w
  | K.Strided { stride } -> Printf.sprintf "strided:%d:%g" stride w
  | K.Random -> Printf.sprintf "random:%g" w
  | K.Chase -> Printf.sprintf "chase:%g" w

let branch_kind_to_token (w, k) =
  match (k : K.branch_kind) with
  | K.Loop_like { period } -> Printf.sprintf "loop:%d:%g" period w
  | K.Periodic { period; taken_in_period } -> Printf.sprintf "periodic:%d:%d:%g" period taken_in_period w
  | K.Biased { taken_prob } -> Printf.sprintf "biased:%g:%g" taken_prob w
  | K.History { depth } -> Printf.sprintf "history:%d:%g" depth w

let kernel_to_text buf (weight, (k : K.spec)) =
  Buffer.add_string buf (Printf.sprintf "[kernel %s %g]\n" k.K.name weight);
  Buffer.add_string buf (Printf.sprintf "body %d\n" k.K.body_slots);
  Buffer.add_string buf
    (Printf.sprintf "mix %g %g %g %g %g\n" k.K.mix.K.load k.K.mix.K.store k.K.mix.K.branch
       k.K.mix.K.int_mul k.K.mix.K.fp);
  Buffer.add_string buf (Printf.sprintf "data_kb %d\n" (k.K.data_bytes / 1024));
  Buffer.add_string buf (Printf.sprintf "code %d\n" k.K.helper_instrs);
  Buffer.add_string buf (Printf.sprintf "regions %d\n" k.K.helper_regions);
  Buffer.add_string buf (Printf.sprintf "call_prob %g\n" k.K.helper_call_prob);
  Buffer.add_string buf (Printf.sprintf "zipf %g\n" k.K.helper_zipf_s);
  Buffer.add_string buf (Printf.sprintf "trip %d\n" k.K.trip_count);
  Buffer.add_string buf (Printf.sprintf "dep_p %g\n" k.K.dep_geom_p);
  Buffer.add_string buf (Printf.sprintf "carried %g\n" k.K.loop_carried_frac);
  Buffer.add_string buf (Printf.sprintf "hot %g\n" k.K.hot_value_frac);
  Buffer.add_string buf (Printf.sprintf "imm %g\n" k.K.imm_frac);
  Buffer.add_string buf (Printf.sprintf "skip %d\n" k.K.branch_skip_max);
  Buffer.add_string buf (Printf.sprintf "fp_mul %g\n" k.K.fp_mul_frac);
  Buffer.add_string buf (Printf.sprintf "fp_div %g\n" k.K.fp_div_frac);
  if k.K.load_patterns <> [] then
    Buffer.add_string buf
      (Printf.sprintf "loads %s\n"
         (String.concat " " (List.map mem_pattern_to_token k.K.load_patterns)));
  if k.K.store_patterns <> [] then
    Buffer.add_string buf
      (Printf.sprintf "stores %s\n"
         (String.concat " " (List.map mem_pattern_to_token k.K.store_patterns)));
  if k.K.branch_kinds <> [] then
    Buffer.add_string buf
      (Printf.sprintf "branches %s\n"
         (String.concat " " (List.map branch_kind_to_token k.K.branch_kinds)))

let to_text (p : P.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" p.P.name);
  Buffer.add_string buf (Printf.sprintf "seed %Ld\n" p.P.seed);
  List.iter
    (fun (ph : P.phase) ->
      Buffer.add_string buf (Printf.sprintf "\n[phase %s %d]\n" ph.P.ph_name ph.P.ph_length);
      List.iter
        (fun k ->
          Buffer.add_char buf '\n';
          kernel_to_text buf k)
        ph.P.ph_kernels)
    p.P.phases;
  Buffer.contents buf

let example =
  {|# A streaming hash-join workload: a probe kernel over a 32MB table
# mixed with a sequential 64MB relation scan.
name hash-join
seed 7

[phase join 50000]

[kernel probe 0.6]
body 30
mix 0.33 0.08 0.14 0.01 0.0
data_kb 32768
trip 16
dep_p 0.45
loads random:0.6 chase:0.2 seq:8:0.2
stores random:0.7 fixed:0.3
branches biased:0.35:0.5 loop:12:0.5

[kernel scan 0.4]
body 20
mix 0.30 0.05 0.08 0 0
data_kb 65536
trip 256
loads seq:8:0.95 fixed:0.05
stores fixed:1.0
|}
