(* SPEC CPU2000: the general-purpose reference suite the paper compares the
   emerging suites against — 26 programs, 48 program/input rows. *)

open Families

let suite = Suite.SpecCpu2000

let w ~program ?input ~icnt model =
  Workload.make ~suite ~program ?input ~icount_millions:icnt model

let nm program input = Printf.sprintf "SPEC2000/%s/%s" program input

let integer =
  [
    w ~program:"bzip2" ~input:"graphic" ~icnt:157_003
      (bitstream_codec ~name:(nm "bzip2" "graphic") ~data_kb:4096 ~table_kb:256
         ~branch_bias:0.42 ());
    w ~program:"bzip2" ~input:"program" ~icnt:136_389
      (bitstream_codec ~name:(nm "bzip2" "program") ~data_kb:4096 ~table_kb:256
         ~branch_bias:0.45 ());
    w ~program:"bzip2" ~input:"source" ~icnt:122_267
      (bitstream_codec ~name:(nm "bzip2" "source") ~data_kb:4096 ~table_kb:256
         ~branch_bias:0.48 ());
    w ~program:"crafty" ~input:"ref" ~icnt:194_311
      (interpreter ~name:(nm "crafty" "ref") ~data_mb:2 ~code_k:6 ~branch_bias:0.45 ());
    w ~program:"eon" ~input:"cook" ~icnt:100_552 (raytracer ~name:(nm "eon" "cook") ~data_mb:4 ());
    w ~program:"eon" ~input:"kajiya" ~icnt:131_268
      (raytracer ~name:(nm "eon" "kajiya") ~data_mb:6 ());
    w ~program:"eon" ~input:"rush" ~icnt:73_139 (raytracer ~name:(nm "eon" "rush") ~data_mb:8 ());
    w ~program:"gap" ~input:"ref" ~icnt:310_323
      (interpreter ~name:(nm "gap" "ref") ~data_mb:8 ~code_k:10 ());
    w ~program:"gcc" ~input:"166" ~icnt:46_614
      (interpreter ~name:(nm "gcc" "166") ~data_mb:6 ~code_k:16 ());
    w ~program:"gcc" ~input:"200" ~icnt:106_339
      (interpreter ~name:(nm "gcc" "200") ~data_mb:8 ~code_k:16 ());
    w ~program:"gcc" ~input:"expr" ~icnt:11_847
      (interpreter ~name:(nm "gcc" "expr") ~data_mb:4 ~code_k:16 ());
    w ~program:"gcc" ~input:"integrate" ~icnt:13_019
      (interpreter ~name:(nm "gcc" "integrate") ~data_mb:4 ~code_k:16 ());
    w ~program:"gcc" ~input:"scilab" ~icnt:60_784
      (interpreter ~name:(nm "gcc" "scilab") ~data_mb:8 ~code_k:16 ());
    w ~program:"gzip" ~input:"graphic" ~icnt:113_400
      (bitstream_codec ~name:(nm "gzip" "graphic") ~data_kb:1024 ~table_kb:64
         ~branch_bias:0.42 ());
    w ~program:"gzip" ~input:"log" ~icnt:42_506
      (bitstream_codec ~name:(nm "gzip" "log") ~data_kb:1024 ~table_kb:64 ~branch_bias:0.38 ());
    w ~program:"gzip" ~input:"program" ~icnt:161_726
      (bitstream_codec ~name:(nm "gzip" "program") ~data_kb:1024 ~table_kb:64
         ~branch_bias:0.44 ());
    w ~program:"gzip" ~input:"random" ~icnt:91_961
      (bitstream_codec ~name:(nm "gzip" "random") ~data_kb:1024 ~table_kb:64
         ~branch_bias:0.52 ());
    w ~program:"gzip" ~input:"source" ~icnt:84_366
      (bitstream_codec ~name:(nm "gzip" "source") ~data_kb:1024 ~table_kb:64
         ~branch_bias:0.46 ());
    (* mcf: the canonical pointer-chasing outlier (paper cluster 4). *)
    w ~program:"mcf" ~input:"ref" ~icnt:59_800
      (graph_optimizer ~name:(nm "mcf" "ref") ~data_mb:48 ~chase:0.55 ());
    w ~program:"parser" ~input:"ref" ~icnt:530_784
      (interpreter ~name:(nm "parser" "ref") ~data_mb:8 ~code_k:8 ~branch_bias:0.48 ());
    w ~program:"perlbmk" ~input:"splitmail.535" ~icnt:69_857
      (interpreter ~name:(nm "perlbmk" "splitmail.535") ~data_mb:6 ~code_k:12 ());
    w ~program:"perlbmk" ~input:"splitmail.704" ~icnt:73_966
      (interpreter ~name:(nm "perlbmk" "splitmail.704") ~data_mb:6 ~code_k:12 ());
    w ~program:"perlbmk" ~input:"splitmail.850" ~icnt:142_509
      (interpreter ~name:(nm "perlbmk" "splitmail.850") ~data_mb:6 ~code_k:12 ());
    w ~program:"perlbmk" ~input:"splitmail.957" ~icnt:122_893
      (interpreter ~name:(nm "perlbmk" "splitmail.957") ~data_mb:6 ~code_k:12 ());
    w ~program:"perlbmk" ~input:"diffmail" ~icnt:43_327
      (interpreter ~name:(nm "perlbmk" "diffmail") ~data_mb:4 ~code_k:12 ());
    w ~program:"perlbmk" ~input:"makerand" ~icnt:2_055
      (interpreter ~name:(nm "perlbmk" "makerand") ~data_mb:1 ~code_k:12 ~branch_bias:0.52 ());
    w ~program:"perlbmk" ~input:"perfect" ~icnt:29_791
      (interpreter ~name:(nm "perlbmk" "perfect") ~data_mb:4 ~code_k:12 ());
    w ~program:"twolf" ~input:"ref" ~icnt:397_222
      (graph_optimizer ~name:(nm "twolf" "ref") ~data_mb:8 ~chase:0.45 ());
    w ~program:"vortex" ~input:"ref1" ~icnt:129_793
      (oo_database ~name:(nm "vortex" "ref1") ~data_mb:12 ());
    w ~program:"vortex" ~input:"ref2" ~icnt:151_475
      (oo_database ~name:(nm "vortex" "ref2") ~data_mb:12 ());
    w ~program:"vortex" ~input:"ref3" ~icnt:145_113
      (oo_database ~name:(nm "vortex" "ref3") ~data_mb:12 ());
    w ~program:"vpr" ~input:"place" ~icnt:117_001
      (graph_optimizer ~name:(nm "vpr" "place") ~data_mb:6 ~chase:0.40 ());
    w ~program:"vpr" ~input:"route" ~icnt:82_351
      (graph_optimizer ~name:(nm "vpr" "route") ~data_mb:6 ~chase:0.50 ());
  ]

let floating_point =
  [
    w ~program:"ammp" ~input:"ref" ~icnt:388_534
      (fp_dense ~name:(nm "ammp" "ref") ~data_kb:8192 ~fp:0.35 ());
    w ~program:"applu" ~input:"ref" ~icnt:336_798
      (fp_stencil ~name:(nm "applu" "ref") ~data_mb:24 ());
    w ~program:"apsi" ~input:"ref" ~icnt:361_955
      (fp_stencil ~name:(nm "apsi" "ref") ~data_mb:16 ~stride:4096 ());
    w ~program:"art" ~input:"ref-110" ~icnt:77_067
      (fp_stream ~name:(nm "art" "ref-110") ~data_mb:4 ());
    w ~program:"art" ~input:"ref-470" ~icnt:84_660
      (fp_stream ~name:(nm "art" "ref-470") ~data_mb:4 ());
    w ~program:"equake" ~input:"ref" ~icnt:158_071
      (fp_stencil ~name:(nm "equake" "ref") ~data_mb:12 ());
    w ~program:"facerec" ~input:"ref" ~icnt:249_735
      (fp_dense ~name:(nm "facerec" "ref") ~data_kb:4096 ());
    w ~program:"fma3d" ~input:"ref" ~icnt:312_960
      (fp_dense ~name:(nm "fma3d" "ref") ~data_kb:16384 ~fp:0.36 ());
    w ~program:"galgel" ~input:"ref" ~icnt:326_916
      (fp_dense ~name:(nm "galgel" "ref") ~data_kb:8192 ());
    w ~program:"lucas" ~input:"ref" ~icnt:134_753
      (fp_stencil ~name:(nm "lucas" "ref") ~data_mb:32 ~fp:0.42 ());
    w ~program:"mesa" ~input:"ref" ~icnt:314_449 (sw_render ~name:(nm "mesa" "ref") ~data_mb:8 ());
    w ~program:"mgrid" ~input:"ref" ~icnt:440_934
      (fp_stencil ~name:(nm "mgrid" "ref") ~data_mb:28 ~stride:8192 ());
    w ~program:"sixtrack" ~input:"ref" ~icnt:452_446
      (fp_dense ~name:(nm "sixtrack" "ref") ~data_kb:24576 ());
    w ~program:"swim" ~input:"ref" ~icnt:221_868
      (fp_stencil ~name:(nm "swim" "ref") ~data_mb:30 ~stride:4096 ());
    w ~program:"wupwise" ~input:"ref" ~icnt:337_770
      (fp_stencil ~name:(nm "wupwise" "ref") ~data_mb:20 ());
  ]

let all = integer @ floating_point
