type t = {
  suite : Suite.t;
  program : string;
  input : string;
  icount_millions : int;
  model : Mica_trace.Program.t;
}

let make ~suite ~program ?(input = "") ~icount_millions model =
  { suite; program; input; icount_millions; model }

let id t =
  if t.input = "" then Printf.sprintf "%s/%s" (Suite.name t.suite) t.program
  else Printf.sprintf "%s/%s/%s" (Suite.name t.suite) t.program t.input

let label t = if t.input = "" then t.program else Printf.sprintf "%s.%s" t.program t.input

let pp fmt t = Format.pp_print_string fmt (id t)
