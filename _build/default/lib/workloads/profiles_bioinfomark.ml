(* BioInfoMark: bioinformatics workloads (Li & Li, 2005).  Sequence-database
   searching, multiple alignment, gene prediction, HMM profiling,
   phylogenetics, protein structure prediction. *)

open Families

let suite = Suite.BioInfoMark

let w ~program ?input ~icnt model =
  Workload.make ~suite ~program ?input ~icount_millions:icnt model

let nm program input = Printf.sprintf "BioInfoMark/%s/%s" program input

let all =
  [
    (* BLAST is the paper's canonical isolated benchmark: its distinguishing
       trait is a working set far larger than anything in SPEC. *)
    w ~program:"blast" ~input:"protein" ~icnt:81_092
      (seq_search ~name:(nm "blast" "protein") ~data_mb:192 ~hit_bias:0.25 ());
    w ~program:"ce" ~input:"ce" ~icnt:4_816
      (dynamic_prog ~name:(nm "ce" "ce") ~data_kb:2048 ~fp:0.18 ());
    w ~program:"clustalw" ~input:"clustalw" ~icnt:884_859
      (dynamic_prog ~name:(nm "clustalw" "clustalw") ~data_kb:4096 ~carried:0.30 ());
    w ~program:"fasta" ~input:"fasta34" ~icnt:759_654
      (seq_search ~name:(nm "fasta" "fasta34") ~data_mb:48 ~hit_bias:0.30 ());
    w ~program:"glimmer" ~input:"004663" ~icnt:26_610
      (dynamic_prog ~name:(nm "glimmer" "004663") ~data_kb:1024 ~carried:0.20 ());
    w ~program:"hmmer" ~input:"build" ~icnt:321
      (dynamic_prog ~name:(nm "hmmer" "build") ~data_kb:512 ~fp:0.20 ());
    w ~program:"hmmer" ~input:"calibrate" ~icnt:43_048
      (dynamic_prog ~name:(nm "hmmer" "calibrate") ~data_kb:768 ~fp:0.25 ());
    w ~program:"hmmer" ~input:"search (artemia)" ~icnt:47
      (seq_search ~name:(nm "hmmer" "search-artemia") ~data_mb:8 ~hit_bias:0.25 ());
    w ~program:"hmmer" ~input:"search (sprot)" ~icnt:1_785_862
      (seq_search ~name:(nm "hmmer" "search-sprot") ~data_mb:96 ~hit_bias:0.22 ());
    w ~program:"phylip" ~input:"dnapenny" ~icnt:184_557
      (tree_search ~name:(nm "phylip" "dnapenny") ~data_kb:2048 ());
    w ~program:"phylip" ~input:"promlk" ~icnt:557_514
      (tree_search ~name:(nm "phylip" "promlk") ~data_kb:4096 ~fp:0.30 ());
    w ~program:"predator" ~input:"predator" ~icnt:804_859
      (dynamic_prog ~name:(nm "predator" "predator") ~data_kb:16384 ~fp:0.25 ~carried:0.15 ());
  ]
