(* Benchmark harness: one Bechamel test per paper table/figure, plus
   ablation benches for the design choices DESIGN.md calls out.

   Each test measures the computational core that regenerates the
   corresponding experiment, at a reduced trace length (BENCH_ICOUNT
   dynamic instructions per workload) so the whole harness completes in
   minutes.  The experiment *results* themselves are produced by
   bin/repro_experiments.ml; this file answers "what does each step
   cost?" — including the paper's own cost claim (measuring 8 key
   characteristics is ~3x cheaper than measuring all 47).

     dune exec bench/main.exe *)

open Bechamel
open Toolkit

module E = Mica_core.Experiments
module Select = Mica_select
module Stats = Mica_stats
module W = Mica_workloads

let bench_icount = 20_000

let config =
  {
    Mica_core.Pipeline.default_config with
    Mica_core.Pipeline.icount = bench_icount;
    cache_dir = Some "results/cache";
    progress = false;
  }

(* Shared context: characterized once (cached on disk across runs). *)
let ctx = lazy (E.Context.load ~config ())

let ga_small =
  {
    Select.Genetic.default_config with
    Select.Genetic.population = 16;
    max_generations = 25;
    stall_generations = 10;
  }

let sample_workload = lazy (W.Registry.find_exn "SPEC2000/bzip2/graphic")

(* ---------------- per-table/figure tests ---------------- *)

let t_table1 =
  Test.make ~name:"table1_registry" (Staged.stage (fun () -> Sys.opaque_identity (E.render_table1 ())))

let t_table2 =
  Test.make ~name:"table2_characteristics"
    (Staged.stage (fun () -> Sys.opaque_identity (E.render_table2 ())))

(* the core measurement everything relies on: one workload, one trace,
   all 47 characteristics *)
let t_characterize =
  Test.make ~name:"characterize_one_workload"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         Sys.opaque_identity
           (Mica_analysis.Analyzer.analyze w.W.Workload.model ~icount:bench_icount)))

let t_counters =
  Test.make ~name:"hpc_counters_one_workload"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         Sys.opaque_identity (Mica_uarch.Hw_counters.measure w.W.Workload.model ~icount:bench_icount)))

let t_fig1 =
  Test.make ~name:"fig1_distances"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let mica = Mica_core.Space.of_dataset c.E.Context.mica in
         let hpc = Mica_core.Space.of_dataset c.E.Context.hpc in
         Sys.opaque_identity
           (Mica_core.Classify.correlation ~hpc_distances:hpc.Mica_core.Space.distances
              ~mica_distances:mica.Mica_core.Space.distances)))

let t_table3 =
  Test.make ~name:"table3_classify"
    (Staged.stage (fun () -> Sys.opaque_identity (E.table3 (Lazy.force ctx))))

let t_fig2 =
  Test.make ~name:"fig2_case_study_hpc"
    (Staged.stage (fun () -> Sys.opaque_identity (E.fig2 (Lazy.force ctx))))

let t_fig3 =
  Test.make ~name:"fig3_case_study_mica"
    (Staged.stage (fun () -> Sys.opaque_identity (E.fig3 (Lazy.force ctx))))

let t_fig4 =
  Test.make ~name:"fig4_roc"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let all = Array.init Mica_analysis.Characteristics.count Fun.id in
         let hpc = Mica_core.Space.of_dataset c.E.Context.hpc in
         Sys.opaque_identity
           (Stats.Roc.of_spaces ~ref_distances:hpc.Mica_core.Space.distances
              ~test_distances:(Select.Fitness.distances_for c.E.Context.fitness all)
              ~frac:0.2)))

let t_fig5_ce =
  Test.make ~name:"fig5_ce_sweep"
    (Staged.stage (fun () -> Sys.opaque_identity (E.run_ce (Lazy.force ctx))))

let t_table4_ga =
  Test.make ~name:"table4_ga_select"
    (Staged.stage (fun () ->
         Sys.opaque_identity (E.run_ga ~config:ga_small (Lazy.force ctx))))

let t_fig6 =
  Test.make ~name:"fig6_cluster_bic"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         (* reduced K range keeps a single run sub-second *)
         let reduced = Mica_core.Dataset.select_features c.E.Context.mica [| 0; 9; 15; 20; 26; 31; 37; 43 |] in
         Sys.opaque_identity (Mica_core.Clustering.cluster ~k_max:20 reduced)))

(* ---------------- selection-kernel benches ---------------- *)

(* A transient 2-worker pool: on multi-core machines this exercises the
   actual parallel path of the GA/CE kernels; on a single core it still
   measures the pool's dispatch overhead against the inline jobs=1 path. *)
let pool2 = lazy (Mica_util.Pool.create ~jobs:2)

(* a paper-sized 8-characteristic subset for the eval micro-benches *)
let bench_subset = [| 0; 9; 15; 20; 26; 31; 37; 43 |]

(* fused single-pass subset evaluation (flat components buffer) *)
let t_fitness_fused =
  Test.make ~name:"fitness_fused_eval"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         Sys.opaque_identity (Select.Fitness.paper_fitness c.E.Context.fitness bench_subset)))

(* the naive reference path the fused kernel replaced: materialize the
   subset distance vector, then reduce Pearson from scratch *)
let naive_eval_inputs =
  lazy
    (let c = Lazy.force ctx in
     let normalized = c.E.Context.mica_space.Mica_core.Space.normalized in
     ( Stats.Distance.condensed_squared_components normalized,
       Stats.Distance.condensed normalized ))

let t_fitness_naive =
  Test.make ~name:"fitness_naive_eval"
    (Staged.stage (fun () ->
         let comp, full = Lazy.force naive_eval_inputs in
         Sys.opaque_identity
           (Stats.Correlation.pearson (Stats.Distance.subset_distances comp bench_subset) full)))

(* incremental candidate sweep: every leave-one-out rho in O(k * pairs) *)
let t_ce_leave_one_out =
  Test.make ~name:"ce_leave_one_out"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let all = Array.init Mica_analysis.Characteristics.count Fun.id in
         Sys.opaque_identity (Select.Correlation_elimination.leave_one_out c.E.Context.fitness all)))

(* pool-parallel GA population evaluation and CE sweep *)
let t_ga_pool2 =
  Test.make ~name:"table4_ga_select_pool2"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let rng = Mica_util.Rng.create ~seed:0x6A5EEDL in
         Sys.opaque_identity
           (Select.Genetic.run ~config:ga_small ~pool:(Lazy.force pool2) ~rng c.E.Context.fitness)))

let t_ce_pool2 =
  Test.make ~name:"fig5_ce_sweep_pool2"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         Sys.opaque_identity
           (Select.Correlation_elimination.run ~pool:(Lazy.force pool2)
              ~data:c.E.Context.mica.Mica_core.Dataset.data c.E.Context.fitness)))

(* ---------------- cost-model / ablation tests ---------------- *)

(* the paper's headline cost claim: measuring the key subset vs all 47 *)
let t_cost_full =
  Test.make ~name:"cost_all_47_characteristics"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         let a = Mica_analysis.Analyzer.create () in
         Sys.opaque_identity
           (Mica_trace.Generator.run w.W.Workload.model ~icount:bench_icount
              ~sink:(Mica_analysis.Analyzer.sink a))))

let t_cost_reduced =
  Test.make ~name:"cost_key_subset_only"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         (* a paper-like key subset: loads, operands, dep<=8, strides,
            D-pages, ILP-256 -> mix + regtraffic + strides + ws + one ILP window *)
         let mix = Mica_analysis.Mix.create () in
         let ilp = Mica_analysis.Ilp.create ~windows:[| 256 |] () in
         let reg = Mica_analysis.Regtraffic.create () in
         let ws = Mica_analysis.Working_set.create () in
         let strides = Mica_analysis.Strides.create () in
         let sink =
           Mica_trace.Sink.fanout
             [
               Mica_analysis.Mix.sink mix;
               Mica_analysis.Ilp.sink ilp;
               Mica_analysis.Regtraffic.sink reg;
               Mica_analysis.Working_set.sink ws;
               Mica_analysis.Strides.sink strides;
             ]
         in
         Sys.opaque_identity
           (Mica_trace.Generator.run w.W.Workload.model ~icount:bench_icount ~sink)))

(* ablation: single fused trace pass vs one pass per analyzer family *)
let t_ablation_fused =
  Test.make ~name:"ablation_single_pass_fanout"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         let a = Mica_analysis.Analyzer.create () in
         let h = Mica_uarch.Hw_counters.create () in
         let sink =
           Mica_trace.Sink.fanout
             [ Mica_analysis.Analyzer.sink a; Mica_uarch.Hw_counters.sink h ]
         in
         Sys.opaque_identity
           (Mica_trace.Generator.run w.W.Workload.model ~icount:bench_icount ~sink)))

let t_ablation_multipass =
  Test.make ~name:"ablation_pass_per_family"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         let run sink =
           ignore
             (Mica_trace.Generator.run w.W.Workload.model ~icount:bench_icount ~sink : int)
         in
         run (Mica_analysis.Mix.sink (Mica_analysis.Mix.create ()));
         run (Mica_analysis.Ilp.sink (Mica_analysis.Ilp.create ()));
         run (Mica_analysis.Regtraffic.sink (Mica_analysis.Regtraffic.create ()));
         run (Mica_analysis.Working_set.sink (Mica_analysis.Working_set.create ()));
         run (Mica_analysis.Strides.sink (Mica_analysis.Strides.create ()));
         run (Mica_analysis.Ppm.sink (Mica_analysis.Ppm.create ()));
         let h = Mica_uarch.Hw_counters.create () in
         run (Mica_uarch.Hw_counters.sink h);
         Sys.opaque_identity h))

(* ablation: trace generation alone (the floor under every measurement) *)
let t_generation_only =
  Test.make ~name:"ablation_trace_generation_only"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         let sink = Mica_trace.Sink.make ~name:"null" (fun _ -> ()) in
         Sys.opaque_identity
           (Mica_trace.Generator.run w.W.Workload.model ~icount:bench_icount ~sink)))

(* ablation: GA seed sensitivity (determinism and robustness of Table IV) *)
let t_ga_seed =
  Test.make ~name:"ablation_ga_alternate_seed"
    (Staged.stage (fun () ->
         Sys.opaque_identity (E.run_ga ~config:ga_small ~seed:0xFEEDL (Lazy.force ctx))))

(* PCA baseline (the prior-work method the paper improves on) *)
let t_pca_baseline =
  Test.make ~name:"baseline_pca_fit_transform"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let pca = Stats.Pca.fit c.E.Context.mica.Mica_core.Dataset.data in
         Sys.opaque_identity (Stats.Pca.transform pca ~dims:8 c.E.Context.mica.Mica_core.Dataset.data)))

(* extension benches: hierarchical clustering, phase analysis, spec
   parsing, suite coverage *)

let t_linkage =
  Test.make ~name:"ext_linkage_dendrogram"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let reduced =
           Mica_core.Dataset.select_features c.E.Context.mica [| 0; 9; 15; 20; 26; 31; 37; 43 |]
         in
         Sys.opaque_identity (Mica_core.Dendrogram.build reduced)))

let t_phases =
  Test.make ~name:"ext_phase_analysis"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         Sys.opaque_identity
           (Mica_core.Phases.analyze ~interval:2_000 w.W.Workload.model ~icount:bench_icount)))

let t_spec_parse =
  Test.make ~name:"ext_spec_parse"
    (Staged.stage (fun () ->
         Sys.opaque_identity (W.Spec_file.parse W.Spec_file.example)))

let t_coverage =
  Test.make ~name:"ext_suite_coverage"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         Sys.opaque_identity
           (Mica_core.Coverage.suite_coverage c ~selected:[| 0; 9; 20; 26; 43 |])))

let t_machines =
  Test.make ~name:"ext_machine_fanout_4"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         Sys.opaque_identity
           (Mica_uarch.Machine.measure_all Mica_uarch.Machine.presets w.W.Workload.model
              ~icount:bench_icount)))

(* The 8-model fleet: machine descriptions when run from the repo root,
   falling back to renamed presets so the binary still benchmarks from
   any cwd.  One-pass fanout (one generated trace feeding all 8 sinks)
   vs 8 single-machine passes over the same workloads. *)
let fleet_configs =
  lazy
    (match Mica_uarch.Machine_desc.load_dir "machines" with
    | Ok named when List.length named >= 8 ->
      List.filteri (fun i _ -> i < 8) (List.map snd named)
    | Ok _ | Error _ ->
      Mica_uarch.Machine.presets
      @ List.map
          (fun (c : Mica_uarch.Machine.config) ->
            { c with Mica_uarch.Machine.name = c.Mica_uarch.Machine.name ^ "b" })
          Mica_uarch.Machine.presets)

let fleet_workloads =
  lazy (List.filteri (fun i _ -> i mod (W.Registry.count / 4) = 0) W.Registry.all)

let t_fleet_one_pass =
  Test.make ~name:"fleet_fanout_8_one_pass"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Mica_core.Fleet.characterize ~jobs:1
              ~configs:(Lazy.force fleet_configs)
              ~icount:bench_icount (Lazy.force fleet_workloads))))

let t_fleet_n_pass =
  Test.make ~name:"fleet_fanout_8_n_pass"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Mica_core.Fleet.characterize_n_pass
              ~configs:(Lazy.force fleet_configs)
              ~icount:bench_icount (Lazy.force fleet_workloads))))

let t_reuse =
  Test.make ~name:"ext_reuse_distances"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         let r = Mica_analysis.Reuse.create () in
         let (_ : int) =
           Mica_trace.Generator.run w.W.Workload.model ~icount:bench_icount
             ~sink:(Mica_analysis.Reuse.sink r)
         in
         Sys.opaque_identity (Mica_analysis.Reuse.mean_log2 r)))

let t_simpoint =
  Test.make ~name:"ext_simpoint_validate"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         Sys.opaque_identity (Mica_core.Simpoint.validate ~interval:2_000 w ~icount:bench_icount)))

let t_bootstrap =
  Test.make ~name:"ext_bootstrap_correlation"
    (Staged.stage (fun () ->
         let c = Lazy.force ctx in
         let na = c.E.Context.mica_space.Mica_core.Space.normalized in
         let nb = c.E.Context.hpc_space.Mica_core.Space.normalized in
         let rng = Mica_util.Rng.create ~seed:0xB007L in
         Sys.opaque_identity
           (Stats.Bootstrap.interval ~replicates:20 ~rng ~n:(Array.length na)
              (Stats.Bootstrap.pair_distance_statistic ~normalized_a:na ~normalized_b:nb
                 Stats.Correlation.pearson))))

let t_extended =
  Test.make ~name:"ext_extended_characterize"
    (Staged.stage (fun () ->
         let w = Lazy.force sample_workload in
         Sys.opaque_identity
           (Mica_analysis.Extended.analyze w.W.Workload.model ~icount:bench_icount)))

(* ---------------- sketch pair (long-trace regime) ----------------

   The exact-vs-sketch pair runs at 10x the harness icount: the sketch's
   win is O(1)-in-trace-length analyzer state, which only shows once the
   exact tables (working sets, reuse Fenwick positions, PPM contexts)
   have grown well past the sketch's fixed byte budget.  Same workload,
   same 56-characteristic vector, bounded estimation error (see the
   verify sketch laws). *)

let sketch_icount = 200_000
let sketch_workload = lazy (W.Registry.find_exn "SPEC2000/swim/ref")

let t_sketch_exact =
  Test.make ~name:"sketch_exact_extended_swim_200k"
    (Staged.stage (fun () ->
         let w = Lazy.force sketch_workload in
         Sys.opaque_identity
           (Mica_analysis.Extended.analyze w.W.Workload.model ~icount:sketch_icount)))

let t_sketch_stream =
  Test.make ~name:"sketch_stream_extended_swim_200k"
    (Staged.stage (fun () ->
         let w = Lazy.force sketch_workload in
         Sys.opaque_identity
           (Mica_sketch.Sketch.analyze w.W.Workload.model ~icount:sketch_icount)))

(* Resident analyzer state after one long trace, measured on the live
   values: the exact analyzer's tables grow with the trace, the sketch
   is pinned to its plan.  Emitted alongside the pair in results_json. *)
let sketch_state_snapshot () =
  let w = Lazy.force sketch_workload in
  let exact = Mica_analysis.Extended.create () in
  let (_ : int) =
    Mica_trace.Generator.run w.W.Workload.model ~icount:sketch_icount
      ~sink:(Mica_analysis.Extended.sink exact)
  in
  let sk = Mica_sketch.Sketch.analyze w.W.Workload.model ~icount:sketch_icount in
  let words v = Obj.reachable_words (Obj.repr v) in
  (words exact * 8, words sk * 8, Mica_sketch.Sketch.state_bytes sk)

(* ---------------- scale benches (10k-corpus regime) ----------------

   Naive-vs-scalable pairs over synthesized corpora; results_json turns
   each pair into a "scale_speedups" entry.  The corpora are generated
   once (lazily) outside timing; anchors characterize in milliseconds,
   the rest is synthesis. *)

let corpus2k = lazy (Mica_core.Corpus_gen.generate ~size:2_000 ())
let corpus5k = lazy (Mica_core.Corpus_gen.generate ~size:5_000 ())
let corpus10k = lazy (Mica_core.Corpus_gen.generate ~size:10_000 ())

let zrows2k = lazy (Stats.Normalize.zscore (Lazy.force corpus2k).Mica_core.Dataset.data)
let zcol2k = lazy (Stats.Colmat.of_matrix (Lazy.force zrows2k))
let condensed2k_out = lazy (Array.make (Stats.Distance.pair_count 2_000) 0.0)

let zcol10k =
  lazy (Stats.Colmat.zscore (Stats.Colmat.of_matrix (Lazy.force corpus10k).Mica_core.Dataset.data))

let ann10k = lazy (Stats.Ann.build (Lazy.force zcol10k))
let query10k = lazy (Stats.Colmat.row (Lazy.force zcol10k) 17)

(* the bit-identity pair: same condensed vector, row-records vs tiles.
   The tiled kernel's win is parallel scalability (disjoint condensed
   ranges per worker at any jobs count); on a single-core runner expect
   parity with the naive scan, not speedup — the order-of-complexity
   wins live in the knn and subset pairs below. *)
let t_condensed_naive =
  Test.make ~name:"condensed_naive_n2000"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Stats.Distance.condensed (Lazy.force zrows2k))))

let pool4 = lazy (Mica_util.Pool.create ~jobs:4)

let t_condensed_blocked =
  Test.make ~name:"condensed_blocked_pool4_n2000"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Stats.Distance.condensed_blocked ~pool:(Lazy.force pool4)
              ~out:(Lazy.force condensed2k_out) (Lazy.force zcol2k))))

(* the query pair: one kNN lookup, linear scan vs ANN prune + re-rank *)
let t_knn_naive =
  Test.make ~name:"knn_naive_n10000"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Stats.Ann.exact_knn (Lazy.force zcol10k) ~k:10 (Lazy.force query10k))))

let t_knn_ann =
  Test.make ~name:"knn_ann_n10000"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Stats.Ann.knn (Lazy.force ann10k) ~k:10 (Lazy.force query10k))))

(* the subset pair: the full query workload, normalization included on
   both sides — O(n^2 d) condensed space + k-center vs on-demand
   distances *)
let t_subset_naive =
  Test.make ~name:"subset_naive_n5000"
    (Staged.stage (fun () ->
         let space = Mica_core.Space.of_dataset (Lazy.force corpus5k) in
         Sys.opaque_identity (Mica_core.Subsetting.k_center space ~k:10)))

let t_subset_scalable =
  Test.make ~name:"subset_scalable_n5000"
    (Staged.stage (fun () ->
         let z =
           Stats.Colmat.zscore
             (Stats.Colmat.of_matrix (Lazy.force corpus5k).Mica_core.Dataset.data)
         in
         Sys.opaque_identity (Mica_core.Subsetting.k_center_scalable z ~k:10)))

let tests =
  [
    t_table1; t_table2; t_characterize; t_counters; t_fig1; t_table3; t_fig2; t_fig3; t_fig4;
    t_fig5_ce; t_table4_ga; t_fig6; t_fitness_fused; t_fitness_naive; t_ce_leave_one_out;
    t_ga_pool2; t_ce_pool2; t_cost_full; t_cost_reduced; t_ablation_fused;
    t_ablation_multipass; t_generation_only; t_ga_seed; t_pca_baseline; t_linkage; t_phases;
    t_spec_parse; t_coverage; t_machines; t_fleet_one_pass; t_fleet_n_pass; t_reuse;
    t_simpoint; t_bootstrap; t_extended;
    t_sketch_exact; t_sketch_stream; t_condensed_naive; t_condensed_blocked; t_knn_naive;
    t_knn_ann; t_subset_naive; t_subset_scalable;
  ]

(* ---------------- driver ---------------- *)

(* Per-test row of the machine-readable results: nanoseconds per run and
   minor-heap words allocated per run, both OLS estimates against the run
   count, with the time fit's r^2 as the quality signal. *)
type row = { name : string; ns_per_run : float; minor_words_per_run : float; r2 : float }

let estimate_of ols =
  match Analyze.OLS.estimates ols with Some [ e ] -> e | Some _ | None -> nan

let run_test ~quota ~limit test =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let words = Analyze.all ols Instance.minor_allocated raw in
  Hashtbl.fold
    (fun name ols acc ->
      {
        name;
        ns_per_run = estimate_of ols;
        minor_words_per_run =
          (match Hashtbl.find_opt words name with Some w -> estimate_of w | None -> nan);
        r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan;
      }
      :: acc)
    times []

let pretty_time ns =
  if ns > 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

(* Fixed before-numbers for the optimized hot paths, captured on this
   machine immediately before each optimization landed.  They anchor the
   perf trajectory in BENCH_results.json: every regeneration of the file
   re-measures the current code against these baselines.

   - characterize_one_workload: before the chunked struct-of-arrays trace
     transport replaced the per-instruction boxed-record sink protocol.
   - table4_ga_select / fig5_ce_sweep: before the fused flat-buffer
     fitness kernel and incremental CE replaced the allocating
     subset_distances + pearson evaluation (the committed PR 2 numbers). *)
let trajectory_baselines =
  [
    ("characterize_one_workload", "seed_transport", "chunked_transport", 10_342_000.0, 1_636_514.0);
    ("table4_ga_select", "naive_eval", "fused_incremental", 155_846_657.7, 84_903_727.2);
    ("fig5_ce_sweep", "naive_eval", "fused_incremental", 45_973_380.7, 21_790_651.9);
  ]

(* Naive-vs-scalable pairs measured in the same run; results_json
   derives the speedup of each.  The condensed pair is a
   parallel-scalability entry — same bits, workers own disjoint
   condensed ranges — so its record carries the jobs count and its
   speedup is meaningful only relative to the cores actually available
   (expect parity on a 1-core runner, where the kernel falls back to the
   naive scan anyway).  The query pairs are single-threaded
   order-of-complexity wins. *)
let speedup_pairs =
  [
    ("scale_condensed_2k", "condensed_naive_n2000", "condensed_blocked_pool4_n2000", Some 4);
    ("scale_knn_query_10k", "knn_naive_n10000", "knn_ann_n10000", None);
    ("scale_subset_query_5k", "subset_naive_n5000", "subset_scalable_n5000", None);
    ("sketch_extended_swim_200k", "sketch_exact_extended_swim_200k",
     "sketch_stream_extended_swim_200k", None);
    ("fleet_fanout_8", "fleet_fanout_8_n_pass", "fleet_fanout_8_one_pass", None);
  ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x = if Float.is_nan x then "null" else Printf.sprintf "%.1f" x

let results_json ?sketch_state rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"bench_icount\": %d,\n" bench_icount);
  (* perf trajectory for the optimized hot paths: fixed before-numbers vs
     the current measurement *)
  let measured =
    List.filter_map
      (fun ((name, _, _, _, _) as b) ->
        Option.map (fun r -> (b, r)) (List.find_opt (fun r -> r.name = name) rows))
      trajectory_baselines
  in
  if measured <> [] then begin
    Buffer.add_string buf "  \"trajectory\": {\n";
    List.iteri
      (fun i ((name, before_label, after_label, base_ns, base_words), r) ->
        Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n" name);
        Buffer.add_string buf
          (Printf.sprintf "      \"%s\": {\"ns_per_run\": %s, \"minor_words_per_run\": %s},\n"
             before_label (json_float base_ns) (json_float base_words));
        Buffer.add_string buf
          (Printf.sprintf "      \"%s\": {\"ns_per_run\": %s, \"minor_words_per_run\": %s},\n"
             after_label (json_float r.ns_per_run) (json_float r.minor_words_per_run));
        Buffer.add_string buf (Printf.sprintf "      \"speedup\": %.2f,\n" (base_ns /. r.ns_per_run));
        Buffer.add_string buf
          (Printf.sprintf "      \"minor_words_reduction\": %.1f\n"
             (base_words /. Float.max 1.0 r.minor_words_per_run));
        Buffer.add_string buf
          (Printf.sprintf "    }%s\n" (if i = List.length measured - 1 then "" else ",")))
      measured;
    Buffer.add_string buf "  },\n"
  end;
  let pairs =
    List.filter_map
      (fun (label, naive, fast, jobs) ->
        match
          ( List.find_opt (fun r -> r.name = naive) rows,
            List.find_opt (fun r -> r.name = fast) rows )
        with
        | Some n, Some f -> Some (label, n, f, jobs)
        | _ -> None)
      speedup_pairs
  in
  if pairs <> [] then begin
    Buffer.add_string buf "  \"scale_speedups\": {\n";
    List.iteri
      (fun i (label, n, f, jobs) ->
        let kind =
          match jobs with
          | Some j -> Printf.sprintf " \"kind\": \"parallel_scalability\", \"jobs\": %d," j
          | None -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf
             "    \"%s\": {%s \"naive_ns\": %s, \"scalable_ns\": %s, \"speedup\": %.2f, \
              \"naive_minor_words\": %s, \"scalable_minor_words\": %s, \
              \"minor_words_reduction\": %.1f}%s\n"
             label kind (json_float n.ns_per_run) (json_float f.ns_per_run)
             (n.ns_per_run /. f.ns_per_run)
             (json_float n.minor_words_per_run) (json_float f.minor_words_per_run)
             (n.minor_words_per_run /. Float.max 1.0 f.minor_words_per_run)
             (if i = List.length pairs - 1 then "" else ",")))
      pairs;
    Buffer.add_string buf "  },\n"
  end;
  (match sketch_state with
  | Some (exact_bytes, sketch_bytes, plan_resident) ->
    (* resident analyzer state after one long trace: the exact tables
       grow with the trace, the sketch stays pinned to its plan *)
    Buffer.add_string buf
      (Printf.sprintf
         "  \"sketch_state\": {\"workload\": \"SPEC2000/swim/ref\", \"icount\": %d, \
          \"exact_analyzer_bytes\": %d, \"sketch_analyzer_bytes\": %d, \
          \"sketch_resident_bytes\": %d},\n"
         sketch_icount exact_bytes sketch_bytes plan_resident)
  | None -> ());
  Buffer.add_string buf "  \"results\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"ns_per_run\": %s, \"minor_words_per_run\": %s, \"r2\": %s}%s\n"
           (json_escape r.name) (json_float r.ns_per_run) (json_float r.minor_words_per_run)
           (if Float.is_nan r.r2 then "null" else Printf.sprintf "%.4f" r.r2)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* Post-measurement instrumented pass.  Metrics stay disabled during
   every bechamel measurement above — the trajectory numbers are the
   uninstrumented (one atomic load per probe) hot paths.  This single
   extra pass re-runs the two trajectory kernels with metrics on and
   ships the Obs snapshot alongside the trajectory, so a bench run also
   documents where the time and allocation went. *)
let metrics_pass () =
  let module Obs = Mica_obs.Obs in
  Obs.reset ();
  Obs.set_enabled true;
  let w = Lazy.force sample_workload in
  ignore (Sys.opaque_identity (Mica_analysis.Analyzer.analyze w.W.Workload.model ~icount:bench_icount));
  ignore (Sys.opaque_identity (E.run_ga ~config:ga_small (Lazy.force ctx)));
  Obs.set_enabled false;
  Printf.printf "instrumented pass done (measurements above ran metrics-off)\n%!";
  Obs.to_json (Obs.snapshot ())

(* ---------------- run-directory commit ---------------- *)

(* Every bench invocation is a run: the measurements, the metrics
   snapshot of the instrumented pass and the characteristic-vector
   datasets the context was built from, all under recorded checksums, so
   [mica compare]/[mica variance] can gate and noise-qualify any two
   bench executions. *)
let commit_run ~root ~tag ~bench_json ~metrics_json =
  let module R = Mica_run.Run_dir in
  let c = Lazy.force ctx in
  let table (ds : Mica_core.Dataset.t) =
    {
      R.row_names = ds.Mica_core.Dataset.names;
      columns = ds.Mica_core.Dataset.features;
      cells = ds.Mica_core.Dataset.data;
    }
  in
  let manifest =
    {
      Mica_run.Manifest.schema = Mica_run.Manifest.schema_version;
      created = R.timestamp ();
      tag;
      subcommand = "bench";
      argv = Array.to_list Sys.argv;
      git_rev = Mica_run.Run_io.git_rev ();
      icount = bench_icount;
      ppm_order = config.Mica_core.Pipeline.ppm_order;
      jobs = config.Mica_core.Pipeline.jobs;
      retries = config.Mica_core.Pipeline.retries;
      cache = config.Mica_core.Pipeline.cache_dir <> None;
      mica_jobs_env = Sys.getenv_opt "MICA_JOBS";
      fault_spec = Option.map Mica_util.Fault.to_string (Mica_util.Fault.installed ());
      seeds = [ ("ga", "0x6a5eed") ];
      workloads = Mica_core.Dataset.rows c.E.Context.mica;
      report = Mica_core.Run_report.summary c.E.Context.report;
      files = [];
    }
  in
  let artifacts =
    [
      { R.filename = R.bench_file; contents = bench_json };
      { R.filename = R.metrics_file; contents = metrics_json };
      { R.filename = R.mica_file; contents = R.csv_of_table (table c.E.Context.mica) };
      { R.filename = R.hpc_file; contents = R.csv_of_table (table c.E.Context.hpc) };
    ]
  in
  let dir = R.commit ~root ~manifest ~artifacts () in
  Printf.printf "committed run %s\n%!" dir;
  dir

(* BENCH_results.json is a derived artifact: read the bench numbers back
   out of the committed (checksum-verified) run directory and prepend
   per-run provenance, instead of mutating the file in place. *)
let regenerate_results ~run_dir path =
  let r =
    match Mica_run.Run_dir.load run_dir with
    | Ok r -> r
    | Error msg -> failwith ("bench: committed run does not load: " ^ msg)
  in
  if r.Mica_run.Run_dir.bench = None then failwith "bench: committed run has no bench.json";
  let raw =
    match Mica_run.Run_io.read_file (Filename.concat run_dir Mica_run.Run_dir.bench_file) with
    | Ok s -> s
    | Error e -> failwith ("bench: " ^ Mica_run.Run_io.describe_error e)
  in
  (* Splice provenance in textually so the measured numbers stay
     byte-identical to the run's bench.json. *)
  let body =
    match String.index_opt raw '{' with
    | Some i -> String.sub raw (i + 1) (String.length raw - i - 1)
    | None -> failwith "bench: bench.json is not an object"
  in
  let m = r.Mica_run.Run_dir.manifest in
  let provenance =
    Printf.sprintf "{\n  \"provenance\": {\"run\": %S, \"created\": %S, \"git_rev\": %S},"
      (Filename.basename run_dir) m.Mica_run.Manifest.created m.Mica_run.Manifest.git_rev
  in
  Mica_run.Run_io.atomic_write path (provenance ^ body);
  Printf.printf "wrote %s (derived from %s)\n%!" path run_dir

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let json_path = ref "BENCH_results.json" in
  let runs_root = ref "runs" in
  let tag = ref (if smoke then "bench-smoke" else "bench") in
  Array.iteri
    (fun i a ->
      if i + 1 < Array.length Sys.argv then begin
        if a = "--json" then json_path := Sys.argv.(i + 1);
        if a = "--runs" then runs_root := Sys.argv.(i + 1);
        if a = "--tag" then tag := Sys.argv.(i + 1)
      end)
    Sys.argv;
  (* smoke mode: the core measurement, the pool-parallel selection
     kernels and the exact-vs-sketch pair, low iteration count — a CI
     guard that the harness builds and the hot paths (chunked transport,
     fused GA/CE over the domain pool, fixed-memory sketch analyzers)
     still run end to end, and that the sketch pair stays gated by
     [mica compare] against the committed baseline *)
  let tests, quota, limit =
    if smoke then
      ([ t_characterize; t_ga_pool2; t_ce_pool2; t_sketch_exact; t_sketch_stream ], 0.5, 50)
    else (tests, 1.0, 200)
  in
  (* force the context outside timing so the first test is not charged
     (smoke needs it too: the pool-parallel selection benches read it) *)
  Printf.printf "preparing context (%d workloads, %d instrs each; cached across runs)...\n%!"
    W.Registry.count bench_icount;
  ignore (Lazy.force ctx);
  (* likewise the scale fixtures: corpus synthesis and the one-time ANN
     index build are setup, not the query being measured *)
  if not smoke then begin
    Printf.printf "preparing scale fixtures (2k/5k/10k corpora, ANN index)...\n%!";
    ignore (Lazy.force zcol2k);
    ignore (Lazy.force condensed2k_out);
    ignore (Lazy.force corpus5k);
    ignore (Lazy.force ann10k);
    ignore (Lazy.force query10k)
  end;
  Printf.printf "%-36s %16s %14s %10s\n" "benchmark" "time/run" "minor-w/run" "r^2";
  print_endline (String.make 80 '-');
  let rows =
    List.concat_map
      (fun test ->
        let rows = run_test ~quota ~limit test in
        List.iter
          (fun r ->
            Printf.printf "%-36s %16s %14.0f %10.4f\n%!" r.name (pretty_time r.ns_per_run)
              r.minor_words_per_run r.r2)
          rows;
        rows)
      tests
  in
  let sketch_state = if smoke then None else Some (sketch_state_snapshot ()) in
  let bench_json = results_json ?sketch_state rows in
  let metrics_json = metrics_pass () in
  let run_dir = commit_run ~root:!runs_root ~tag:!tag ~bench_json ~metrics_json in
  regenerate_results ~run_dir !json_path
