(* Hot-path budget probe: minor words and wall time per instruction for
   trace generation and each analyzer sink, separately and fanned out.
   Quick to run and deliberately simple — use it to spot an analyzer
   that starts allocating per instruction before the bechamel numbers
   drift.  See DESIGN.md §8 for the allocation discipline it guards. *)
module W = Mica_workloads
module G = Mica_trace.Generator
module A = Mica_analysis

let icount = 100_000

let measure name f =
  (* warm up *)
  f ();
  let before = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let reps = 5 in
  for _ = 1 to reps do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  let after = Gc.minor_words () in
  let n = float_of_int (icount * reps) in
  Printf.printf "%-28s %8.2f words/instr  %8.1f ns/instr\n%!" name
    ((after -. before) /. n)
    ((t1 -. t0) *. 1e9 /. n)

(* Column-reduction probe: the copying [Matrix.column] accessor vs the
   no-copy folds that replaced it in the normalization/PCA hot paths.
   Reported per call over a registry-sized matrix (122 x 47): the
   no-copy path should show ~0 words/call. *)
let probe_column_stats () =
  let module M = Mica_stats.Matrix in
  let module D = Mica_stats.Descriptive in
  let rng = Mica_util.Rng.create ~seed:7L in
  let m =
    Array.init 122 (fun _ -> Array.init 47 (fun _ -> Mica_util.Rng.float rng 100.0))
  in
  let sink = ref 0.0 in
  let all_columns f =
    for j = 0 to 46 do
      sink := !sink +. f j
    done
  in
  let measure_call name f =
    f ();
    let before = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let reps = 2000 in
    for _ = 1 to reps do
      f ()
    done;
    let t1 = Unix.gettimeofday () in
    let after = Gc.minor_words () in
    let n = float_of_int reps in
    Printf.printf "%-28s %8.2f words/call   %8.1f ns/call\n%!" name
      ((after -. before) /. n)
      ((t1 -. t0) *. 1e9 /. n)
  in
  measure_call "column_stats_copying" (fun () ->
      all_columns (fun j ->
          let col = M.column m j in
          D.mean col +. D.stddev col));
  measure_call "column_stats_nocopy" (fun () ->
      all_columns (fun j ->
          let mean, std = M.column_mean_std m j in
          mean +. std));
  ignore (Sys.opaque_identity !sink)

(* Peak analyzer state probe: resident words of the exact extended
   analyzer vs the sketch after traces of growing length.  The exact
   tables (working sets, reuse positions, PPM contexts) grow with the
   trace; the sketch must stay flat at its plan's byte budget. *)
let probe_state_size () =
  let w = W.Registry.find_exn "SPEC2000/swim/ref" in
  let model = w.W.Workload.model in
  let bytes_of v = 8 * Obj.reachable_words (Obj.repr v) in
  List.iter
    (fun icount ->
      let exact = A.Extended.create () in
      let (_ : int) = G.run model ~icount ~sink:(A.Extended.sink exact) in
      let sk = Mica_sketch.Sketch.analyze model ~icount in
      Printf.printf "%-28s %8d KB exact   %6d KB sketch (%d KB resident)\n%!"
        (Printf.sprintf "state_after_%dk_instrs" (icount / 1000))
        (bytes_of exact / 1024) (bytes_of sk / 1024)
        (Mica_sketch.Sketch.state_bytes sk / 1024))
    [ 25_000; 100_000; 400_000 ]

let () =
  let w = W.Registry.find_exn "SPEC2000/bzip2/graphic" in
  let model = w.W.Workload.model in
  let run sink = ignore (G.run model ~icount ~sink : int) in
  measure "generation_only" (fun () ->
      run (Mica_trace.Sink.make ~name:"null" (fun _ -> ())));
  measure "mix" (fun () -> run (A.Mix.sink (A.Mix.create ())));
  measure "ilp" (fun () -> run (A.Ilp.sink (A.Ilp.create ())));
  measure "regtraffic" (fun () -> run (A.Regtraffic.sink (A.Regtraffic.create ())));
  measure "working_set" (fun () -> run (A.Working_set.sink (A.Working_set.create ())));
  measure "strides" (fun () -> run (A.Strides.sink (A.Strides.create ())));
  measure "ppm" (fun () -> run (A.Ppm.sink (A.Ppm.create ())));
  measure "analyzer_fanout" (fun () ->
      let a = A.Analyzer.create () in
      run (A.Analyzer.sink a));
  measure "sketch_fanout" (fun () ->
      let sk = Mica_sketch.Sketch.create () in
      run (Mica_sketch.Sketch.sink sk));
  probe_column_stats ();
  probe_state_size ()
