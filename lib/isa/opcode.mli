(** Opcode classes of the abstract Alpha-like ISA.

    The characterization methodology never needs concrete opcodes, only the
    behavioural class of each dynamic instruction: whether it reads or
    writes memory, transfers control, and which functional-unit family it
    occupies.  These classes mirror the categories of the paper's
    instruction-mix characteristics (Table II, rows 1-6). *)

type t =
  | Load       (** memory read *)
  | Store      (** memory write *)
  | Branch     (** conditional control transfer *)
  | Jump       (** unconditional direct jump *)
  | Call       (** subroutine call *)
  | Return     (** subroutine return (indirect) *)
  | Int_alu    (** integer add/sub/logic/shift/compare *)
  | Int_mul    (** integer multiply *)
  | Fp_add     (** floating-point add/sub/compare/convert *)
  | Fp_mul     (** floating-point multiply *)
  | Fp_div     (** floating-point divide/sqrt *)
  | Nop        (** no architectural effect *)

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool
(** Load or store. *)

val is_control : t -> bool
(** Branch, jump, call or return. *)

val is_cond_branch : t -> bool
val is_int_alu : t -> bool
val is_int_mul : t -> bool
val is_fp : t -> bool
(** Any floating-point operation. *)

val latency : t -> int
(** Nominal execution latency in cycles, used by the idealized ILP model and
    the out-of-order timing model (memory latency excluded for loads, which
    take their latency from the cache model). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Every opcode class, in declaration order. *)

val count : int
(** Number of opcode classes. *)

val to_int : t -> int
(** Dense integer code of an opcode, in declaration order ([Load] is 0,
    [Nop] is [count - 1]).  The struct-of-arrays trace chunks and the
    binary trace format both store opcodes as these codes. *)

val of_int : int -> t
(** Inverse of {!to_int}.  Raises [Invalid_argument] for codes outside
    [0, count). *)
