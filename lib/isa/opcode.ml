type t =
  | Load
  | Store
  | Branch
  | Jump
  | Call
  | Return
  | Int_alu
  | Int_mul
  | Fp_add
  | Fp_mul
  | Fp_div
  | Nop

let is_load = function Load -> true | _ -> false
let is_store = function Store -> true | _ -> false
let is_mem = function Load | Store -> true | _ -> false
let is_control = function Branch | Jump | Call | Return -> true | _ -> false
let is_cond_branch = function Branch -> true | _ -> false
let is_int_alu = function Int_alu -> true | _ -> false
let is_int_mul = function Int_mul -> true | _ -> false
let is_fp = function Fp_add | Fp_mul | Fp_div -> true | _ -> false

let latency = function
  | Load -> 1 (* address generation; memory latency added by the cache model *)
  | Store -> 1
  | Branch | Jump | Call | Return -> 1
  | Int_alu -> 1
  | Int_mul -> 8
  | Fp_add -> 4
  | Fp_mul -> 4
  | Fp_div -> 18
  | Nop -> 1

let to_string = function
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"
  | Call -> "call"
  | Return -> "return"
  | Int_alu -> "int_alu"
  | Int_mul -> "int_mul"
  | Fp_add -> "fp_add"
  | Fp_mul -> "fp_mul"
  | Fp_div -> "fp_div"
  | Nop -> "nop"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all =
  [ Load; Store; Branch; Jump; Call; Return; Int_alu; Int_mul; Fp_add; Fp_mul; Fp_div; Nop ]

(* Dense integer codes, in declaration order: the struct-of-arrays trace
   chunks store opcodes as ints, and the binary trace format uses the same
   codes on disk. *)

let to_int = function
  | Load -> 0
  | Store -> 1
  | Branch -> 2
  | Jump -> 3
  | Call -> 4
  | Return -> 5
  | Int_alu -> 6
  | Int_mul -> 7
  | Fp_add -> 8
  | Fp_mul -> 9
  | Fp_div -> 10
  | Nop -> 11

let count = 12

let of_int_table = Array.of_list all

let of_int i =
  if i < 0 || i >= count then invalid_arg "Opcode.of_int: code out of range"
  else Array.unsafe_get of_int_table i
