(** Declarative machine descriptions: the on-disk format behind
    [machines/*.json].

    A description is data, not code: a cache hierarchy as a list of named
    levels, a branch-predictor family plus sizing, an in-order or
    out-of-order issue model, and a per-opcode-class latency /
    reciprocal-throughput table in the style of uops.info.  {!to_config}
    lowers a validated description to a {!Machine.config}; the four
    hard-coded presets round-trip through {!of_config} bit-identically,
    which is what lets the fleet runner treat every machine — preset or
    user-supplied — uniformly.

    Everything here follows the read-error discipline: loaders return
    [Error] with an actionable message (naming the file, field and
    offending value) and never raise on bad input. *)

type cache_level = {
  level_name : string;  (** ["l1i"], ["l1d"] or ["l2"] *)
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  latency : int;
      (** l1d: load-to-use on a hit; l2: additional cycles of an L2 hit;
          l1i: fetch-hit latency (hidden by pipelining, kept for
          completeness) *)
}

type core_model =
  | In_order of { issue_width : int }
  | Out_of_order of { width : int; window : int }

type predictor = {
  family : string;  (** ["bimodal"], ["gshare"], ["local"] or ["tournament"] *)
  entries : int;  (** table entries; must be a power of two *)
  history_bits : int;  (** ignored by ["bimodal"] *)
}

type op_timing = {
  op : Mica_isa.Opcode.t;
  latency : int;
  recip_throughput : int;
}

type t = {
  name : string;
  core : core_model;
  levels : cache_level list;  (** must contain exactly l1i, l1d and l2 *)
  tlb_entries : int;
  page_bytes : int;
  tlb_penalty : int;
  predictor : predictor;
  prefetch_next_line : bool;
  mem_latency : int;
  mispredict_penalty : int;
  ops : op_timing list;
      (** overrides; opcode classes not listed take
          {!Machine.default_ops} timings *)
}

val families : string list
(** The accepted predictor family names. *)

val validate : t -> (unit, string) result
(** Semantic checks beyond JSON shape: positive sizes, power-of-two
    lines / sets / pages / predictor tables, no duplicate cache levels or
    op entries, all three required levels present.  A description that
    validates lowers to a config {!Machine.create} accepts. *)

val of_json : Mica_obs.Json.t -> (t, string) result
val to_json : t -> Mica_obs.Json.t

val to_string : t -> string
(** Pretty-printed JSON document, trailing newline included — exactly the
    format of the committed [machines/*.json] files. *)

val to_config : t -> (Machine.config, string) result
(** Validate, then lower to a simulatable config. *)

val of_config : Machine.config -> t
(** Inverse of {!to_config} up to representation: [to_config (of_config c)]
    equals [Ok c] structurally for any config with a full ops table. *)

val parse_string : source:string -> string -> (t, string) result
(** Parse and validate a JSON document; [source] prefixes error messages
    (typically the file name). *)

val load : string -> (t, string) result
(** Read, parse and validate one description file. *)

val load_config : string -> (Machine.config, string) result
(** {!load} followed by {!to_config}. *)

val load_dir : string -> ((string * Machine.config) list, string) result
(** Load every [*.json] in a directory, sorted by filename, and reject
    duplicate machine names across files.  [Error] names the first
    offending file.  Each entry is keyed by the machine's [name] field
    (unique by construction), not its filename. *)
