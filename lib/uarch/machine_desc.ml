module Json = Mica_obs.Json
module Opcode = Mica_isa.Opcode

type cache_level = {
  level_name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  latency : int;
}

type core_model =
  | In_order of { issue_width : int }
  | Out_of_order of { width : int; window : int }

type predictor = { family : string; entries : int; history_bits : int }

type op_timing = { op : Opcode.t; latency : int; recip_throughput : int }

type t = {
  name : string;
  core : core_model;
  levels : cache_level list;
  tlb_entries : int;
  page_bytes : int;
  tlb_penalty : int;
  predictor : predictor;
  prefetch_next_line : bool;
  mem_latency : int;
  mispredict_penalty : int;
  ops : op_timing list;
}

let families = [ "bimodal"; "gshare"; "local"; "tournament" ]
let required_levels = [ "l1i"; "l1d"; "l2" ]

(* ---------------- result-returning JSON field access ---------------- *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> err "missing required field %S" name

let opt_field name json = Json.member name json

let as_int ~what json =
  match Json.to_num json with
  | Some f when Float.is_integer f && Float.abs f < 1e15 -> Ok (int_of_float f)
  | Some _ -> err "%s must be an integer" what
  | None -> err "%s must be a number" what

let int_field ~what name json =
  let* v = field name json in
  as_int ~what:(what ^ "." ^ name) v

let str_field ~what name json =
  let* v = field name json in
  match Json.to_str v with Some s -> Ok s | None -> err "%s.%s must be a string" what name

let bool_field ~default name json =
  match opt_field name json with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> err "field %S must be a boolean" name

let obj_list ~what json =
  match json with Json.List l -> Ok l | _ -> err "%s must be an array" what

(* ---------------- parsing ---------------- *)

let parse_core json =
  let what = "core" in
  let* kind = str_field ~what "kind" json in
  match kind with
  | "in_order" ->
    let* issue_width = int_field ~what "issue_width" json in
    Ok (In_order { issue_width })
  | "out_of_order" ->
    let* width = int_field ~what "width" json in
    let* window = int_field ~what "window" json in
    Ok (Out_of_order { width; window })
  | other -> err "core.kind %S is not supported (expected \"in_order\" or \"out_of_order\")" other

let parse_level json =
  let* level_name = str_field ~what:"cache level" "name" json in
  let what = "cache level " ^ level_name in
  let* size_bytes = int_field ~what "size_bytes" json in
  let* line_bytes = int_field ~what "line_bytes" json in
  let* assoc = int_field ~what "assoc" json in
  let* latency = int_field ~what "latency" json in
  Ok { level_name; size_bytes; line_bytes; assoc; latency }

let parse_levels json =
  let* items = obj_list ~what:"cache_levels" json in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      let* level = parse_level item in
      go (level :: acc) rest
  in
  go [] items

let parse_predictor json =
  let what = "predictor" in
  let* family = str_field ~what "family" json in
  if not (List.mem family families) then
    err "predictor family %S is unknown (expected one of: %s)" family
      (String.concat ", " families)
  else
    let* entries = int_field ~what "entries" json in
    let* history_bits =
      match opt_field "history_bits" json with
      | None -> Ok 0
      | Some v -> as_int ~what:"predictor.history_bits" v
    in
    if family <> "bimodal" && opt_field "history_bits" json = None then
      err "predictor family %S requires history_bits" family
    else Ok { family; entries; history_bits }

let opcode_of_name name =
  List.find_opt (fun op -> Opcode.to_string op = name) Opcode.all

let parse_ops json =
  match json with
  | Json.Obj fields ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, timing) :: rest -> (
        match opcode_of_name name with
        | None ->
          err "ops: %S is not an opcode class (expected one of: %s)" name
            (String.concat ", " (List.map Opcode.to_string Opcode.all))
        | Some op ->
          let what = "ops." ^ name in
          let* latency = int_field ~what "latency" timing in
          let* recip_throughput = int_field ~what "recip_throughput" timing in
          go ({ op; latency; recip_throughput } :: acc) rest)
    in
    go [] fields
  | _ -> err "ops must be an object mapping opcode classes to timings"

let of_json json =
  match json with
  | Json.Obj _ ->
    let what = "machine" in
    let* name = str_field ~what "name" json in
    let* core = field "core" json in
    let* core = parse_core core in
    let* levels = field "cache_levels" json in
    let* levels = parse_levels levels in
    let* dtlb = field "dtlb" json in
    let* tlb_entries = int_field ~what:"dtlb" "entries" dtlb in
    let* page_bytes = int_field ~what:"dtlb" "page_bytes" dtlb in
    let* tlb_penalty = int_field ~what:"dtlb" "miss_penalty" dtlb in
    let* predictor = field "predictor" json in
    let* predictor = parse_predictor predictor in
    let* prefetch_next_line = bool_field ~default:false "prefetch_next_line" json in
    let* mem_latency = int_field ~what "mem_latency" json in
    let* mispredict_penalty = int_field ~what "mispredict_penalty" json in
    let* ops =
      match opt_field "ops" json with None -> Ok [] | Some o -> parse_ops o
    in
    Ok
      {
        name;
        core;
        levels;
        tlb_entries;
        page_bytes;
        tlb_penalty;
        predictor;
        prefetch_next_line;
        mem_latency;
        mispredict_penalty;
        ops;
      }
  | _ -> err "machine description must be a JSON object"

(* ---------------- semantic validation ---------------- *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_level (l : cache_level) =
  let what = l.level_name in
  if l.size_bytes <= 0 then
    err "cache level %S: size_bytes must be positive (got %d)" what l.size_bytes
  else if not (is_pow2 l.line_bytes) then
    err "cache level %S: line_bytes must be a power of two (got %d)" what l.line_bytes
  else if l.assoc <= 0 then err "cache level %S: assoc must be positive (got %d)" what l.assoc
  else if l.size_bytes mod (l.line_bytes * l.assoc) <> 0 then
    err "cache level %S: size_bytes (%d) must be a multiple of line_bytes * assoc (%d)" what
      l.size_bytes (l.line_bytes * l.assoc)
  else if not (is_pow2 (l.size_bytes / (l.line_bytes * l.assoc))) then
    err "cache level %S: set count %d is not a power of two (adjust size or assoc)" what
      (l.size_bytes / (l.line_bytes * l.assoc))
  else if l.latency < 0 then err "cache level %S: latency must be non-negative" what
  else Ok ()

let validate t =
  let* () = if t.name = "" then err "machine name must be non-empty" else Ok () in
  let* () =
    match t.core with
    | In_order { issue_width } ->
      if issue_width >= 1 then Ok () else err "core.issue_width must be at least 1"
    | Out_of_order { width; window } ->
      if width < 1 then err "core.width must be at least 1"
      else if window < 1 then err "core.window must be at least 1"
      else Ok ()
  in
  let* () =
    let seen = Hashtbl.create 4 in
    let rec go = function
      | [] -> Ok ()
      | (l : cache_level) :: rest ->
        if Hashtbl.mem seen l.level_name then
          err "duplicate cache level %S (each level may appear once)" l.level_name
        else begin
          Hashtbl.add seen l.level_name ();
          let* () = validate_level l in
          go rest
        end
    in
    let* () = go t.levels in
    let missing =
      List.filter (fun n -> not (List.exists (fun l -> l.level_name = n) t.levels)) required_levels
    in
    match missing with
    | [] ->
      if List.length t.levels > List.length required_levels then
        err "unsupported cache level(s): this model simulates exactly %s"
          (String.concat ", " required_levels)
      else Ok ()
    | ms -> err "missing cache level(s): %s (the model needs %s)" (String.concat ", " ms)
             (String.concat ", " required_levels)
  in
  let* () =
    if t.tlb_entries <= 0 then err "dtlb.entries must be positive (got %d)" t.tlb_entries
    else if not (is_pow2 t.page_bytes) then
      err "dtlb.page_bytes must be a power of two (got %d)" t.page_bytes
    else if t.tlb_penalty < 0 then err "dtlb.miss_penalty must be non-negative"
    else Ok ()
  in
  let* () =
    let p = t.predictor in
    if not (List.mem p.family families) then
      err "predictor family %S is unknown (expected one of: %s)" p.family
        (String.concat ", " families)
    else if not (is_pow2 p.entries) then
      err "predictor.entries must be a positive power of two (got %d)" p.entries
    else if p.family <> "bimodal" && (p.history_bits < 1 || p.history_bits > 24) then
      err "predictor.history_bits must lie in [1, 24] (got %d)" p.history_bits
    else Ok ()
  in
  let* () =
    if t.mem_latency < 0 then err "mem_latency must be non-negative"
    else if t.mispredict_penalty < 0 then err "mispredict_penalty must be non-negative"
    else Ok ()
  in
  let rec check_ops seen = function
    | [] -> Ok ()
    | (o : op_timing) :: rest ->
      let name = Opcode.to_string o.op in
      if List.mem o.op seen then err "ops: duplicate entry for %S" name
      else if o.latency < 1 then err "ops.%s: latency must be at least 1" name
      else if o.recip_throughput < 1 then err "ops.%s: recip_throughput must be at least 1" name
      else check_ops (o.op :: seen) rest
  in
  check_ops [] t.ops

(* ---------------- conversion to and from Machine.config ---------------- *)

let level t name = List.find (fun (l : cache_level) -> l.level_name = name) t.levels

let geometry (l : cache_level) =
  { Machine.size_bytes = l.size_bytes; line_bytes = l.line_bytes; assoc = l.assoc }

let to_config t =
  let* () = validate t in
  let l1i = level t "l1i" and l1d = level t "l1d" and l2 = level t "l2" in
  let core =
    match t.core with
    | In_order { issue_width } -> Machine.In_order { issue_width }
    | Out_of_order { width; window } -> Machine.Out_of_order { width; window }
  in
  let predictor =
    let { family; entries; history_bits } = t.predictor in
    match family with
    | "bimodal" -> Machine.Bimodal { entries }
    | "gshare" -> Machine.Gshare { entries; history_bits }
    | "local" -> Machine.Local_two_level { entries; history_bits }
    | "tournament" -> Machine.Tournament { entries; history_bits }
    | _ -> assert false (* validated above *)
  in
  let ops = Array.copy Machine.default_ops in
  List.iter
    (fun (o : op_timing) ->
      ops.(Opcode.to_int o.op) <-
        { Machine.op_latency = o.latency; op_recip = o.recip_throughput })
    t.ops;
  Ok
    {
      Machine.name = t.name;
      core;
      l1i = geometry l1i;
      l1d = geometry l1d;
      l2 = geometry l2;
      dtlb_entries = t.tlb_entries;
      page_bytes = t.page_bytes;
      predictor;
      prefetch_next_line = t.prefetch_next_line;
      l1_latency = l1d.latency;
      l2_latency = l2.latency;
      mem_latency = t.mem_latency;
      mispredict_penalty = t.mispredict_penalty;
      dtlb_penalty = t.tlb_penalty;
      ops;
    }

let of_config (cfg : Machine.config) =
  let level level_name (g : Machine.cache_geometry) latency =
    { level_name; size_bytes = g.size_bytes; line_bytes = g.line_bytes; assoc = g.assoc; latency }
  in
  let core =
    match cfg.core with
    | Machine.In_order { issue_width } -> In_order { issue_width }
    | Machine.Out_of_order { width; window } -> Out_of_order { width; window }
  in
  let predictor =
    match cfg.predictor with
    | Machine.Bimodal { entries } -> { family = "bimodal"; entries; history_bits = 0 }
    | Machine.Gshare { entries; history_bits } -> { family = "gshare"; entries; history_bits }
    | Machine.Local_two_level { entries; history_bits } ->
      { family = "local"; entries; history_bits }
    | Machine.Tournament { entries; history_bits } ->
      { family = "tournament"; entries; history_bits }
  in
  let ops =
    List.map
      (fun op ->
        let timing = cfg.ops.(Opcode.to_int op) in
        { op; latency = timing.Machine.op_latency; recip_throughput = timing.Machine.op_recip })
      Opcode.all
  in
  {
    name = cfg.name;
    core;
    levels =
      [
        level "l1i" cfg.l1i cfg.l1_latency;
        level "l1d" cfg.l1d cfg.l1_latency;
        level "l2" cfg.l2 cfg.l2_latency;
      ];
    tlb_entries = cfg.dtlb_entries;
    page_bytes = cfg.page_bytes;
    tlb_penalty = cfg.dtlb_penalty;
    predictor;
    prefetch_next_line = cfg.prefetch_next_line;
    mem_latency = cfg.mem_latency;
    mispredict_penalty = cfg.mispredict_penalty;
    ops;
  }

(* ---------------- serialization ---------------- *)

let to_json t =
  let num i = Json.Num (float_of_int i) in
  let core =
    match t.core with
    | In_order { issue_width } ->
      Json.Obj [ ("kind", Json.Str "in_order"); ("issue_width", num issue_width) ]
    | Out_of_order { width; window } ->
      Json.Obj [ ("kind", Json.Str "out_of_order"); ("width", num width); ("window", num window) ]
  in
  let level (l : cache_level) =
    Json.Obj
      [
        ("name", Json.Str l.level_name);
        ("size_bytes", num l.size_bytes);
        ("line_bytes", num l.line_bytes);
        ("assoc", num l.assoc);
        ("latency", num l.latency);
      ]
  in
  let predictor =
    let base = [ ("family", Json.Str t.predictor.family); ("entries", num t.predictor.entries) ] in
    Json.Obj
      (if t.predictor.family = "bimodal" then base
       else base @ [ ("history_bits", num t.predictor.history_bits) ])
  in
  let ops =
    Json.Obj
      (List.map
         (fun (o : op_timing) ->
           ( Opcode.to_string o.op,
             Json.Obj
               [ ("latency", num o.latency); ("recip_throughput", num o.recip_throughput) ] ))
         t.ops)
  in
  Json.Obj
    [
      ("name", Json.Str t.name);
      ("core", core);
      ("cache_levels", Json.List (List.map level t.levels));
      ( "dtlb",
        Json.Obj
          [
            ("entries", num t.tlb_entries);
            ("page_bytes", num t.page_bytes);
            ("miss_penalty", num t.tlb_penalty);
          ] );
      ("predictor", predictor);
      ("prefetch_next_line", Json.Bool t.prefetch_next_line);
      ("mem_latency", num t.mem_latency);
      ("mispredict_penalty", num t.mispredict_penalty);
      ("ops", ops);
    ]

let to_string t = Json.to_string ~pretty:true (to_json t) ^ "\n"

(* ---------------- file loading ---------------- *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> err "cannot read machine description: %s" msg

let parse_string ~source contents =
  let prefix msg = Printf.sprintf "%s: %s" source msg in
  match Json.parse contents with
  | Error msg ->
    Error (prefix (Printf.sprintf "not valid JSON (%s) — is the file truncated?" msg))
  | Ok json -> (
    match Result.bind (of_json json) (fun t -> Result.map (fun () -> t) (validate t)) with
    | Ok t -> Ok t
    | Error msg -> Error (prefix msg))

let load path =
  let* contents = read_file path in
  parse_string ~source:path contents

let load_config path =
  let* t = load path in
  Result.map_error (fun msg -> Printf.sprintf "%s: %s" path msg) (to_config t)

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> err "cannot list machine directory: %s" msg
  | entries ->
    let files =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    in
    if files = [] then err "no machine descriptions (*.json) found in %s" dir
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest ->
          let* cfg = load_config (Filename.concat dir f) in
          go ((f, cfg) :: acc) rest
      in
      let* machines = go [] files in
      let rec dup_name seen = function
        | [] -> Ok ()
        | (f, (cfg : Machine.config)) :: rest -> (
          match List.assoc_opt cfg.Machine.name seen with
          | Some other ->
            err "machine name %S appears in both %s and %s (names must be unique)"
              cfg.Machine.name other f
          | None -> dup_name ((cfg.Machine.name, f) :: seen) rest)
      in
      let* () = dup_name [] machines in
      Ok (List.map (fun (_, (cfg : Machine.config)) -> (cfg.Machine.name, cfg)) machines)
