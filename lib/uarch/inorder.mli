(** In-order dual-issue timing model in the style of the Alpha 21164A
    (EV56): the machine on which the paper collects its hardware
    performance counters.

    The model charges a base throughput of [issue_width] instructions per
    cycle and adds stall cycles for L1/L2 misses, DTLB misses, branch
    mispredictions and long-latency arithmetic — the classic
    stall-accounting model for in-order pipelines.  Cache geometry defaults
    follow the 21164: 8KB direct-mapped split L1s, 96KB 3-way unified L2,
    64-entry data TLB. *)

type config = {
  issue_width : int;
  l2_latency : int;  (** extra cycles on an L1 miss hitting in L2 *)
  mem_latency : int;  (** extra cycles on an L2 miss *)
  mispredict_penalty : int;
  dtlb_penalty : int;
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val sink : t -> Mica_trace.Sink.t

val step_instr : t -> Mica_isa.Instr.t -> unit
(** Advance the model by one boxed instruction.  Equivalent to delivering
    the instruction through {!sink}; for consumers (interval sampling) that
    must observe model state between individual instructions. *)

type result = {
  instructions : int;
  cycles : int;
  ipc : float;
  branch_mispredict_rate : float;  (** over conditional branches *)
  l1d_miss_rate : float;
  l1i_miss_rate : float;
  l2_miss_rate : float;  (** over L2 accesses, i.e. L1 misses *)
  dtlb_miss_rate : float;
}

val result : t -> result
