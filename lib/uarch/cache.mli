(** Set-associative cache model with true-LRU replacement.

    Tracks hit/miss counts only (no data), which is all the
    hardware-performance-counter substitute needs. *)

type t

val create : name:string -> size_bytes:int -> line_bytes:int -> assoc:int -> t
(** [line_bytes] and the resulting set count [size_bytes / (line_bytes *
    assoc)] must be powers of two, and [size_bytes] a whole number of
    sets; [assoc] must be positive but need {e not} be a power of two —
    LRU search and replacement scan the ways, so e.g. the 21164's 96KB
    3-way L2 (512 sets) is a legal, exactly-modelled geometry.  A size
    that is not a multiple of [line_bytes * assoc] is rejected rather
    than silently truncated.  Raises [Invalid_argument] otherwise. *)

val name : t -> string
val sets : t -> int
val line_bytes : t -> int
val assoc : t -> int

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on
    hit.  On miss the LRU way of the set is replaced. *)

val access_range : t -> int -> bytes:int -> bool
(** [access_range t addr ~bytes] touches every line overlapped by
    [\[addr, addr + bytes)] — one counted access per line, so a
    line-straddling transfer is modelled explicitly instead of being
    attributed to its first line only.  Returns [true] iff every line
    hit.  Raises [Invalid_argument] if [bytes <= 0]. *)

val probe : t -> int -> bool
(** Like {!access} but without updating any state or counts. *)

val install : t -> int -> unit
(** Insert the line containing the address without touching the hit/miss
    counters (prefetches and fills from other agents).  Replaces the LRU
    way if the line is absent; refreshes recency if present. *)

val accesses : t -> int
val misses : t -> int

val miss_rate : t -> float
(** [misses / accesses]; 0 before any access. *)

val reset_counters : t -> unit
(** Clears hit/miss counts, keeping cache contents (for warm-up discard). *)
