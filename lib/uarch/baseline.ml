module Kernel = Mica_trace.Kernel
module Program = Mica_trace.Program

(* All baseline kernels share one shape: a single 16-slot loop body, no
   helper calls, no taken-branch slot skipping — so the realized opcode
   counts are exactly [round (frac * 16)] and the per-iteration stream is
   the 16 body slots plus one loop back-edge.  That determinism is what
   makes the counter envelopes derivable by hand. *)
let body_slots = 16

let base =
  {
    Kernel.default with
    Kernel.body_slots;
    helper_instrs = 0;
    helper_regions = 0;
    helper_call_prob = 0.0;
    trip_count = 256;
    branch_skip_max = 0;
  }

let seq8 = [ (1.0, Kernel.Seq { stride = 8 }) ]

let stream_spec =
  {
    base with
    Kernel.name = "stream";
    mix = { load = 0.40; store = 0.20; branch = 0.0; int_mul = 0.0; fp = 0.10 };
    load_patterns = seq8;
    store_patterns = seq8;
    data_bytes = 8 * 1024 * 1024;
    fp_mul_frac = 0.5;
    fp_div_frac = 0.0;
  }

let dgemm_spec =
  {
    base with
    Kernel.name = "dgemm";
    mix = { load = 0.25; store = 0.10; branch = 0.05; int_mul = 0.0; fp = 0.55 };
    load_patterns = seq8;
    store_patterns = seq8;
    data_bytes = 4096;
    branch_kinds = [ (1.0, Kernel.Loop_like { period = 8 }) ];
    fp_mul_frac = 0.5;
    fp_div_frac = 0.0;
  }

let chase_spec =
  {
    base with
    Kernel.name = "chase";
    mix = { load = 0.50; store = 0.10; branch = 0.05; int_mul = 0.0; fp = 0.0 };
    load_patterns = [ (1.0, Kernel.Chase) ];
    store_patterns = [ (1.0, Kernel.Fixed) ];
    data_bytes = 8 * 1024 * 1024;
    branch_kinds = [ (1.0, Kernel.Loop_like { period = 16 }) ];
  }

let torture_spec =
  {
    base with
    Kernel.name = "torture";
    mix = { load = 0.10; store = 0.05; branch = 0.30; int_mul = 0.0; fp = 0.0 };
    load_patterns = seq8;
    store_patterns = seq8;
    data_bytes = 4096;
    branch_kinds = [ (1.0, Kernel.Biased { taken_prob = 0.5 }) ];
  }

let kernels =
  [
    ("stream", stream_spec); ("dgemm", dgemm_spec); ("chase", chase_spec); ("torture", torture_spec);
  ]

let kernel_names = List.map fst kernels

let program name =
  match List.assoc_opt name kernels with
  | Some spec -> Program.single ~name:("baseline/" ^ name) spec
  | None ->
    invalid_arg
      (Printf.sprintf "Baseline.program: unknown kernel %S (expected one of: %s)" name
         (String.concat ", " kernel_names))

(* ---------------- envelopes ---------------- *)

type envelope = { metric : string; lo : float; hi : float; why : string }

let env metric lo hi why = { metric; lo; hi; why }

let width_of (cfg : Machine.config) =
  match cfg.Machine.core with
  | Machine.In_order { issue_width } -> issue_width
  | Machine.Out_of_order { width; _ } -> width

let ipc_env ?(lo = 1e-6) cfg =
  env "ipc" lo (float_of_int (width_of cfg)) "cycles are positive and issue is width-bound"

(* Realized opcode counts of a 16-slot body: the generator rounds each mix
   fraction to whole slots. *)
let slots frac = int_of_float (Float.round (frac *. float_of_int body_slots))

(* The chase pattern walks inside a per-slot locality window
   (min (span / 8) 128KB — see Generator.next_addr); the eight chase slots
   of the kernel together sweep this many bytes at any instant. *)
let chase_slots = slots chase_spec.Kernel.mix.Kernel.load
let chase_window = 131072
let chase_ws = float_of_int (chase_slots * chase_window)

(* Fraction of d-cache accesses that chase (the rest are resident fixed-
   address stores). *)
let chase_frac =
  let stores = slots chase_spec.Kernel.mix.Kernel.store in
  float_of_int chase_slots /. float_of_int (chase_slots + stores)

let stream_envelopes (cfg : Machine.config) =
  let stride = 8.0 in
  let line = float_of_int cfg.Machine.l1d.Machine.line_bytes in
  let pf = if cfg.Machine.prefetch_next_line then 0.5 else 1.0 in
  let l1d = stride /. line *. pf in
  (* the L2 sees one probe per missed L1 line, i.e. l1_line/l2_line probes
     per L2 line, the first of which misses (the 8MB sweep defeats reuse) *)
  let l2 = float_of_int cfg.Machine.l1d.Machine.line_bytes
           /. float_of_int cfg.Machine.l2.Machine.line_bytes in
  [
    env "l1d_miss" (0.3 *. l1d) (min 1.0 (3.0 *. l1d))
      "sequential streams miss once per line: stride/line, halved by next-line prefetch";
    env "l2_miss" (0.5 *. l2) 1.0
      "8MB footprint defeats reuse at every level; L2 misses once per L2 line";
    env "br_miss" 0.0 0.1 "only the loop back-edge branches, learned in one trip";
    env "dtlb_miss" 0.0 0.05 "streams cross a page once per page/stride accesses";
    ipc_env cfg;
  ]

let dgemm_envelopes (cfg : Machine.config) =
  [
    env "l1d_miss" 0.0 0.05 "the 4KB working set is resident in every L1D";
    env "l1i_miss" 0.0 0.05 "one small loop body";
    env "br_miss" 0.0 0.3 "period-8 loop branches are highly predictable";
    ipc_env ~lo:0.2 cfg;
  ]

let chase_envelopes (cfg : Machine.config) =
  let l1_hit = min 1.0 (float_of_int cfg.Machine.l1d.Machine.size_bytes /. chase_ws) in
  let e = chase_frac *. (1.0 -. l1_hit) in
  let l2_small = 2 * cfg.Machine.l2.Machine.size_bytes <= int_of_float chase_ws in
  [
    env "l1d_miss" (0.6 *. e) (min 1.0 ((1.5 *. e) +. 0.05))
      "dependent walks over ~1MB of live windows defeat any smaller L1D";
    env "dtlb_miss" 0.05 0.9
      "window relocations keep touching fresh pages of the 8MB region";
    ipc_env cfg;
  ]
  @
  if l2_small then
    [
      env "l2_miss" 0.4 1.0
        "live windows exceed twice the L2: random reuse mostly evicted";
    ]
  else []

let torture_envelopes (cfg : Machine.config) =
  let n_br = float_of_int (slots torture_spec.Kernel.mix.Kernel.branch) in
  (* n_br coin-flip branches plus one well-predicted back-edge per
     iteration; no finite predictor beats 50% on a fair coin *)
  let e = n_br *. 0.5 /. (n_br +. 1.0) in
  [
    env "br_miss" (0.7 *. e) (1.3 *. e)
      "coin-flip branches mispredict half the time, diluted by the back-edge";
    ipc_env cfg;
  ]

let envelopes cfg ~kernel =
  match kernel with
  | "stream" -> stream_envelopes cfg
  | "dgemm" -> dgemm_envelopes cfg
  | "chase" -> chase_envelopes cfg
  | "torture" -> torture_envelopes cfg
  | other ->
    invalid_arg
      (Printf.sprintf "Baseline.envelopes: unknown kernel %S (expected one of: %s)" other
         (String.concat ", " kernel_names))

(* ---------------- running ---------------- *)

type outcome = {
  machine : string;
  kernel : string;
  metric : string;
  lo : float;
  hi : float;
  value : float;
  ok : bool;
  why : string;
}

let default_icount = 60_000

let metric_value (r : Machine.result) = function
  | "ipc" -> r.Machine.ipc
  | "br_miss" -> r.Machine.branch_mispredict_rate
  | "l1d_miss" -> r.Machine.l1d_miss_rate
  | "l1i_miss" -> r.Machine.l1i_miss_rate
  | "l2_miss" -> r.Machine.l2_miss_rate
  | "dtlb_miss" -> r.Machine.dtlb_miss_rate
  | m -> invalid_arg ("Baseline.metric_value: unknown metric " ^ m)

let run_kernel ?(icount = default_icount) configs ~kernel =
  let results = Machine.measure_all configs (program kernel) ~icount in
  List.concat_map
    (fun ((cfg : Machine.config), r) ->
      List.map
        (fun (e : envelope) ->
          let value = metric_value r e.metric in
          {
            machine = cfg.Machine.name;
            kernel;
            metric = e.metric;
            lo = e.lo;
            hi = e.hi;
            value;
            ok = value >= e.lo && value <= e.hi;
            why = e.why;
          })
        (envelopes cfg ~kernel))
    (List.combine configs results)

let run_all ?icount configs =
  List.concat_map (fun kernel -> run_kernel ?icount configs ~kernel) kernel_names

let passed outcomes = List.for_all (fun o -> o.ok) outcomes
let failures outcomes = List.filter (fun o -> not o.ok) outcomes

let render outcomes =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-8s %-10s %9s %9s %9s  %s\n" "machine" "kernel" "metric" "lo"
       "value" "hi" "status");
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-8s %-10s %9.4f %9.4f %9.4f  %s\n" o.machine o.kernel o.metric
           o.lo o.value o.hi
           (if o.ok then "ok" else "OUT OF ENVELOPE — " ^ o.why)))
    outcomes;
  let bad = List.length (failures outcomes) in
  Buffer.add_string buf
    (Printf.sprintf "%d checks, %d out of envelope\n" (List.length outcomes) bad);
  Buffer.contents buf
