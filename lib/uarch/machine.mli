(** Configurable machine models.

    {!Inorder} and {!Ooo} are the paper's two fixed Alpha machines.  This
    module generalizes them: a machine is described by a configuration
    (core kind, cache geometry, TLB, branch predictor, penalties) and
    yields the same six counter metrics from a trace.  Measuring the same
    workloads on several machines quantifies the paper's central warning:
    similarity conclusions drawn from one machine's counters need not hold
    on another machine. *)

type cache_geometry = { size_bytes : int; line_bytes : int; assoc : int }

type core_kind =
  | In_order of { issue_width : int }
  | Out_of_order of { width : int; window : int }

type predictor_kind =
  | Bimodal of { entries : int }
  | Gshare of { entries : int; history_bits : int }
  | Local_two_level of { entries : int; history_bits : int }
  | Tournament of { entries : int; history_bits : int }

type op_timing = {
  op_latency : int;  (** result latency in cycles (out-of-order dependence edges) *)
  op_recip : int;
      (** reciprocal throughput in cycles; an in-order core stalls
          [op_recip - 1] cycles behind the operation *)
}

val default_op_timing : Mica_isa.Opcode.t -> op_timing
(** The historical model: fully-pipelined units everywhere except a
    non-pipelined FP divider ([op_recip = op_latency]) and a partially
    pipelined integer multiplier ([op_recip = (latency - 1) / 2 + 1]). *)

val default_ops : op_timing array
(** [default_op_timing] tabulated by dense opcode code ({!Mica_isa.Opcode.to_int});
    treat as read-only — the presets share this array. *)

type config = {
  name : string;
  core : core_kind;
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  dtlb_entries : int;
  page_bytes : int;
  predictor : predictor_kind;
  prefetch_next_line : bool;
      (** on an L1D miss, also install the next line (sequential
          prefetcher); helps streaming codes, pollutes pointer codes *)
  l1_latency : int;  (** load-to-use on an L1 hit (OOO cores) *)
  l2_latency : int;  (** additional latency of an L2 hit *)
  mem_latency : int;  (** additional latency of an L2 miss *)
  mispredict_penalty : int;
  dtlb_penalty : int;
  ops : op_timing array;
      (** per-opcode timing, indexed by dense opcode code; must have
          {!Mica_isa.Opcode.count} entries ({!create} validates) *)
}

(** {1 Presets} *)

val ev56 : config
(** The paper's measurement machine: dual-issue in-order, 8KB direct-mapped
    L1s, 96KB 3-way L2, bimodal predictor. *)

val ev67 : config
(** The paper's second machine: 4-wide out-of-order, 64KB 2-way L1s,
    tournament predictor. *)

val embedded : config
(** A small single-issue embedded core (StrongARM-flavoured): 16KB 32-way
    L1s, no L2 benefit to speak of, tiny bimodal predictor. *)

val wide : config
(** An aggressive 8-wide, 256-entry-window core with large caches and a
    next-line prefetcher — a "future machine" against which counter-based
    conclusions from [ev56] can be tested, in the spirit of the
    benchmark-drift discussion. *)

val presets : config list
(** [ev56; ev67; embedded; wide]. *)

(** {1 Simulation} *)

type result = {
  ipc : float;
  branch_mispredict_rate : float;
  l1d_miss_rate : float;
  l1i_miss_rate : float;
  l2_miss_rate : float;
  dtlb_miss_rate : float;
}

val metric_names : string array
(** Labels of {!to_vector}'s six entries. *)

type t

val create : config -> t
val sink : t -> Mica_trace.Sink.t
val result : t -> result
val to_vector : result -> float array

val measure : config -> Mica_trace.Program.t -> icount:int -> result
(** Trace the program on this machine. *)

val measure_all : config list -> Mica_trace.Program.t -> icount:int -> result list
(** One generated trace fanned out to every machine (machines never
    perturb each other). *)
