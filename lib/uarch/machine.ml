module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg
module Chunk = Mica_trace.Chunk

type cache_geometry = { size_bytes : int; line_bytes : int; assoc : int }

type core_kind =
  | In_order of { issue_width : int }
  | Out_of_order of { width : int; window : int }

type predictor_kind =
  | Bimodal of { entries : int }
  | Gshare of { entries : int; history_bits : int }
  | Local_two_level of { entries : int; history_bits : int }
  | Tournament of { entries : int; history_bits : int }

type op_timing = { op_latency : int; op_recip : int }

(* The historical timing assumptions, now written as a uops.info-style
   table: an in-order core stalls [recip - 1] cycles behind a long
   operation (a non-pipelined divider stalls fully, the multiplier roughly
   half), while the out-of-order core sees the full result latency through
   the dependence graph. *)
let default_op_timing op =
  let lat = Opcode.latency op in
  let recip =
    match (op : Opcode.t) with
    | Fp_div -> lat
    | Int_mul -> ((lat - 1) / 2) + 1
    | Load | Store | Branch | Jump | Call | Return | Int_alu | Fp_add | Fp_mul | Nop -> 1
  in
  { op_latency = lat; op_recip = recip }

let default_ops = Array.init Opcode.count (fun i -> default_op_timing (Opcode.of_int i))

type config = {
  name : string;
  core : core_kind;
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  dtlb_entries : int;
  page_bytes : int;
  predictor : predictor_kind;
  prefetch_next_line : bool;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  mispredict_penalty : int;
  dtlb_penalty : int;
  ops : op_timing array;
}

let kb n = n * 1024

let ev56 =
  {
    name = "ev56";
    core = In_order { issue_width = 2 };
    l1i = { size_bytes = kb 8; line_bytes = 32; assoc = 1 };
    l1d = { size_bytes = kb 8; line_bytes = 32; assoc = 1 };
    l2 = { size_bytes = kb 96; line_bytes = 64; assoc = 3 };
    dtlb_entries = 64;
    page_bytes = 8192;
    predictor = Bimodal { entries = 2048 };
    prefetch_next_line = false;
    l1_latency = 1;
    l2_latency = 8;
    mem_latency = 50;
    mispredict_penalty = 5;
    dtlb_penalty = 30;
    ops = default_ops;
  }

let ev67 =
  {
    name = "ev67";
    core = Out_of_order { width = 4; window = 64 };
    l1i = { size_bytes = kb 64; line_bytes = 64; assoc = 2 };
    l1d = { size_bytes = kb 64; line_bytes = 64; assoc = 2 };
    l2 = { size_bytes = kb 2048; line_bytes = 64; assoc = 4 };
    dtlb_entries = 128;
    page_bytes = 8192;
    predictor = Tournament { entries = 1024; history_bits = 10 };
    prefetch_next_line = false;
    l1_latency = 3;
    l2_latency = 13;
    mem_latency = 100;
    mispredict_penalty = 7;
    dtlb_penalty = 20;
    ops = default_ops;
  }

let embedded =
  {
    name = "embedded";
    core = In_order { issue_width = 1 };
    l1i = { size_bytes = kb 16; line_bytes = 32; assoc = 32 };
    l1d = { size_bytes = kb 16; line_bytes = 32; assoc = 32 };
    l2 = { size_bytes = kb 32; line_bytes = 32; assoc = 1 };  (* in effect, a tiny L2 *)
    dtlb_entries = 32;
    page_bytes = 4096;
    predictor = Bimodal { entries = 256 };
    prefetch_next_line = false;
    l1_latency = 1;
    l2_latency = 4;
    mem_latency = 80;
    mispredict_penalty = 4;
    dtlb_penalty = 40;
    ops = default_ops;
  }

let wide =
  {
    name = "wide";
    core = Out_of_order { width = 8; window = 256 };
    l1i = { size_bytes = kb 64; line_bytes = 64; assoc = 4 };
    l1d = { size_bytes = kb 64; line_bytes = 64; assoc = 4 };
    l2 = { size_bytes = kb 4096; line_bytes = 64; assoc = 8 };
    dtlb_entries = 256;
    page_bytes = 8192;
    predictor = Tournament { entries = 4096; history_bits = 12 };
    prefetch_next_line = true;
    l1_latency = 4;
    l2_latency = 15;
    mem_latency = 150;
    mispredict_penalty = 12;
    dtlb_penalty = 15;
    ops = default_ops;
  }

let presets = [ ev56; ev67; embedded; wide ]

type result = {
  ipc : float;
  branch_mispredict_rate : float;
  l1d_miss_rate : float;
  l1i_miss_rate : float;
  l2_miss_rate : float;
  dtlb_miss_rate : float;
}

let metric_names = [| "ipc"; "br_miss"; "l1d_miss"; "l1i_miss"; "l2_miss"; "dtlb_miss" |]

type t = {
  cfg : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  pred : Branch_pred.t;
  (* per-opcode timing, dense by opcode code *)
  stall_code : int array;
  lat_code : int array;
  (* in-order accounting *)
  mutable instrs : int;
  mutable stall_cycles : int;
  mutable cond_branches : int;
  mutable mispredicts : int;
  (* out-of-order dataflow state *)
  reg_ready : int array;
  completions : int array;
  mutable head : int;
  mutable filled : int;
  mutable fetch_num : int;
  mutable last_cycle : int;
}

let make_cache name (g : cache_geometry) =
  Cache.create ~name ~size_bytes:g.size_bytes ~line_bytes:g.line_bytes ~assoc:g.assoc

let make_predictor = function
  | Bimodal { entries } -> Branch_pred.bimodal ~entries
  | Gshare { entries; history_bits } -> Branch_pred.gshare ~entries ~history_bits
  | Local_two_level { entries; history_bits } -> Branch_pred.local ~entries ~history_bits
  | Tournament { entries; history_bits } -> Branch_pred.tournament ~entries ~history_bits

let create cfg =
  let window = match cfg.core with Out_of_order { window; _ } -> window | In_order _ -> 1 in
  if Array.length cfg.ops <> Opcode.count then
    invalid_arg "Machine.create: ops table must have one entry per opcode class";
  Array.iter
    (fun o ->
      if o.op_latency < 1 || o.op_recip < 1 then
        invalid_arg "Machine.create: op latency and reciprocal throughput must be positive")
    cfg.ops;
  {
    cfg;
    l1i = make_cache (cfg.name ^ ".l1i") cfg.l1i;
    l1d = make_cache (cfg.name ^ ".l1d") cfg.l1d;
    l2 = make_cache (cfg.name ^ ".l2") cfg.l2;
    dtlb = Tlb.create ~entries:cfg.dtlb_entries ~page_bytes:cfg.page_bytes;
    pred = make_predictor cfg.predictor;
    stall_code = Array.map (fun o -> o.op_recip - 1) cfg.ops;
    lat_code = Array.map (fun o -> o.op_latency) cfg.ops;
    instrs = 0;
    stall_cycles = 0;
    cond_branches = 0;
    mispredicts = 0;
    reg_ready = Array.make Reg.count 0;
    completions = Array.make window 0;
    head = 0;
    filled = 0;
    fetch_num = 0;
    last_cycle = 0;
  }

(* memory-hierarchy latency beyond the L1 hit *)
let miss_latency t ~hit_l2 = if hit_l2 then t.cfg.l2_latency else t.cfg.l2_latency + t.cfg.mem_latency

let dcache_extra t addr =
  if Cache.access t.l1d addr then 0
  else begin
    let extra = miss_latency t ~hit_l2:(Cache.access t.l2 addr) in
    (* a sequential prefetcher installs the next line alongside the miss;
       the prefetch itself is off the critical path *)
    if t.cfg.prefetch_next_line then begin
      let next = addr + Cache.line_bytes t.l1d in
      Cache.install t.l1d next;
      Cache.install t.l2 next
    end;
    extra
  end

let icache_extra t pc =
  if Cache.access t.l1i pc then 0 else miss_latency t ~hit_l2:(Cache.access t.l2 pc)

let is_mem_code = Array.init Opcode.count (fun i -> Opcode.is_mem (Opcode.of_int i))
let op_load = Opcode.to_int Opcode.Load
let op_store = Opcode.to_int Opcode.Store
let op_branch = Opcode.to_int Opcode.Branch

let step_in_order t ~pc ~code ~addr ~taken =
  let stall = ref (icache_extra t pc + Array.unsafe_get t.stall_code code) in
  if Array.unsafe_get is_mem_code code then begin
    if not (Tlb.access t.dtlb addr) then stall := !stall + t.cfg.dtlb_penalty;
    stall := !stall + dcache_extra t addr
  end;
  if code = op_branch then begin
    t.cond_branches <- t.cond_branches + 1;
    let pred = Branch_pred.predict_update t.pred ~pc ~taken in
    if pred <> taken then begin
      t.mispredicts <- t.mispredicts + 1;
      stall := !stall + t.cfg.mispredict_penalty
    end
  end;
  t.stall_cycles <- t.stall_cycles + !stall

let redirect_fetch t ~width cycle =
  let num = cycle * width in
  if num > t.fetch_num then t.fetch_num <- num

let step_out_of_order t ~width ~window ~pc ~code ~src1 ~src2 ~dst ~addr ~taken =
  let fetch_cycle = t.fetch_num / width in
  t.fetch_num <- t.fetch_num + 1;
  let ic = icache_extra t pc in
  if ic > 0 then redirect_fetch t ~width (fetch_cycle + ic);
  let ready_src r = if Reg.carries_dependency r then t.reg_ready.(r) else 0 in
  let deps =
    let a = ready_src src1 and b = ready_src src2 in
    if a > b then a else b
  in
  let window_free = if t.filled < window then 0 else t.completions.(t.head) in
  let issue = max fetch_cycle (max deps window_free) in
  let latency =
    if code = op_load then begin
      let tlb_extra = if Tlb.access t.dtlb addr then 0 else t.cfg.dtlb_penalty in
      t.cfg.l1_latency + dcache_extra t addr + tlb_extra
    end
    else if code = op_store then begin
      ignore (Tlb.access t.dtlb addr : bool);
      ignore (dcache_extra t addr : int);
      1
    end
    else Array.unsafe_get t.lat_code code
  in
  let completion = issue + latency in
  t.completions.(t.head) <- completion;
  t.head <- (t.head + 1) mod window;
  if t.filled < window then t.filled <- t.filled + 1;
  if Reg.carries_dependency dst then t.reg_ready.(dst) <- completion;
  if completion > t.last_cycle then t.last_cycle <- completion;
  if code = op_branch then begin
    t.cond_branches <- t.cond_branches + 1;
    let pred = Branch_pred.predict_update t.pred ~pc ~taken in
    if pred <> taken then begin
      t.mispredicts <- t.mispredicts + 1;
      redirect_fetch t ~width (completion + t.cfg.mispredict_penalty)
    end
  end

let sink t =
  Mica_trace.Sink.make ~name:("machine:" ^ t.cfg.name) (fun c ->
      let len = c.Chunk.len in
      let pcs = c.Chunk.pc and ops = c.Chunk.op and src1 = c.Chunk.src1
      and src2 = c.Chunk.src2 and dst = c.Chunk.dst and addrs = c.Chunk.addr
      and taken = c.Chunk.taken in
      t.instrs <- t.instrs + len;
      match t.cfg.core with
      | In_order _ ->
        for i = 0 to len - 1 do
          step_in_order t ~pc:(Array.unsafe_get pcs i) ~code:(Array.unsafe_get ops i)
            ~addr:(Array.unsafe_get addrs i)
            ~taken:(Bytes.unsafe_get taken i <> '\000')
        done
      | Out_of_order { width; window } ->
        for i = 0 to len - 1 do
          step_out_of_order t ~width ~window ~pc:(Array.unsafe_get pcs i)
            ~code:(Array.unsafe_get ops i) ~src1:(Array.unsafe_get src1 i)
            ~src2:(Array.unsafe_get src2 i) ~dst:(Array.unsafe_get dst i)
            ~addr:(Array.unsafe_get addrs i)
            ~taken:(Bytes.unsafe_get taken i <> '\000')
        done)

let result t =
  let ipc =
    match t.cfg.core with
    | In_order { issue_width } ->
      let base = (t.instrs + issue_width - 1) / issue_width in
      let cycles = max 1 (base + t.stall_cycles) in
      float_of_int t.instrs /. float_of_int cycles
    | Out_of_order _ ->
      let cycles = max 1 t.last_cycle in
      float_of_int t.instrs /. float_of_int cycles
  in
  {
    ipc;
    branch_mispredict_rate =
      (if t.cond_branches = 0 then 0.0
       else float_of_int t.mispredicts /. float_of_int t.cond_branches);
    l1d_miss_rate = Cache.miss_rate t.l1d;
    l1i_miss_rate = Cache.miss_rate t.l1i;
    l2_miss_rate = Cache.miss_rate t.l2;
    dtlb_miss_rate = Tlb.miss_rate t.dtlb;
  }

let to_vector r =
  [|
    r.ipc; r.branch_mispredict_rate; r.l1d_miss_rate; r.l1i_miss_rate; r.l2_miss_rate;
    r.dtlb_miss_rate;
  |]

let measure cfg program ~icount =
  let t = create cfg in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:(sink t) in
  result t

let measure_all cfgs program ~icount =
  let ts = List.map create cfgs in
  let sink = Mica_trace.Sink.fanout (List.map sink ts) in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink in
  List.map result ts
