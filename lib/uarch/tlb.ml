type t = {
  page_shift : int;
  pages : int array;  (* -1 = invalid *)
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ~entries ~page_bytes =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  if page_bytes <= 0 || page_bytes land (page_bytes - 1) <> 0 then
    invalid_arg "Tlb.create: page_bytes must be a power of two";
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  {
    page_shift = log2 page_bytes 0;
    pages = Array.make entries (-1);
    stamps = Array.make entries 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let page = addr lsr t.page_shift in
  let n = Array.length t.pages in
  let hit = ref (-1) in
  for i = 0 to n - 1 do
    if t.pages.(i) = page then hit := i
  done;
  if !hit >= 0 then begin
    t.stamps.(!hit) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = ref 0 in
    for i = 1 to n - 1 do
      if t.stamps.(i) < t.stamps.(!victim) then victim := i
    done;
    t.pages.(!victim) <- page;
    t.stamps.(!victim) <- t.clock;
    false
  end

let access_range t addr ~bytes =
  if bytes <= 0 then invalid_arg "Tlb.access_range: bytes must be positive";
  let first = addr lsr t.page_shift and last = (addr + bytes - 1) lsr t.page_shift in
  let all_hit = ref true in
  for page = first to last do
    if not (access t (page lsl t.page_shift)) then all_hit := false
  done;
  !all_hit

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_counters t =
  t.accesses <- 0;
  t.misses <- 0
