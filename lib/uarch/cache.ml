type t = {
  name : string;
  line_shift : int;
  set_shift : int;
  set_mask : int;
  assoc : int;
  n_sets : int;
  tags : int array;  (* n_sets * assoc; -1 = invalid *)
  stamps : int array;  (* LRU timestamps, parallel to [tags] *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  line_bytes : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ~name ~size_bytes ~line_bytes ~assoc =
  if not (is_pow2 line_bytes) then invalid_arg "Cache.create: line size must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  if size_bytes < line_bytes * assoc then
    invalid_arg "Cache.create: size must cover at least one set";
  (* Integer division here would silently shrink the cache; a size that is
     not a whole number of sets is a specification bug, so reject it. *)
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: size must be a whole number of sets (a multiple of line_bytes * assoc)";
  let n_sets = size_bytes / (line_bytes * assoc) in
  if not (is_pow2 n_sets) then invalid_arg "Cache.create: set count must be a power of two";
  {
    name;
    line_shift = log2 line_bytes;
    set_shift = log2 n_sets;
    set_mask = n_sets - 1;
    assoc;
    n_sets;
    tags = Array.make (n_sets * assoc) (-1);
    stamps = Array.make (n_sets * assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    line_bytes;
  }

let name t = t.name
let sets t = t.n_sets
let line_bytes t = t.line_bytes
let assoc t = t.assoc

let find t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let tag = line lsr t.set_shift in
  let base = set * t.assoc in
  let rec go i = if i >= t.assoc then -1 else if t.tags.(base + i) = tag then base + i else go (i + 1) in
  (go 0, base, tag)

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let idx, base, tag = find t addr in
  if idx >= 0 then begin
    t.stamps.(idx) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* replace LRU way *)
    let victim = ref base in
    for i = 1 to t.assoc - 1 do
      if t.stamps.(base + i) < t.stamps.(!victim) then victim := base + i
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock;
    false
  end

let access_range t addr ~bytes =
  if bytes <= 0 then invalid_arg "Cache.access_range: bytes must be positive";
  let first = addr lsr t.line_shift and last = (addr + bytes - 1) lsr t.line_shift in
  let all_hit = ref true in
  for line = first to last do
    if not (access t (line lsl t.line_shift)) then all_hit := false
  done;
  !all_hit

let probe t addr =
  let idx, _, _ = find t addr in
  idx >= 0

let install t addr =
  t.clock <- t.clock + 1;
  let idx, base, tag = find t addr in
  if idx >= 0 then t.stamps.(idx) <- t.clock
  else begin
    let victim = ref base in
    for i = 1 to t.assoc - 1 do
      if t.stamps.(base + i) < t.stamps.(!victim) then victim := base + i
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock
  end

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_counters t =
  t.accesses <- 0;
  t.misses <- 0
