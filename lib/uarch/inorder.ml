module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr
module Chunk = Mica_trace.Chunk

type config = {
  issue_width : int;
  l2_latency : int;
  mem_latency : int;
  mispredict_penalty : int;
  dtlb_penalty : int;
}

let default_config =
  { issue_width = 2; l2_latency = 8; mem_latency = 50; mispredict_penalty = 5; dtlb_penalty = 30 }

type t = {
  cfg : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  pred : Branch_pred.t;
  mutable instrs : int;
  mutable stall_cycles : int;
  mutable cond_branches : int;
  mutable mispredicts : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    l1i = Cache.create ~name:"L1I" ~size_bytes:(8 * 1024) ~line_bytes:32 ~assoc:1;
    l1d = Cache.create ~name:"L1D" ~size_bytes:(8 * 1024) ~line_bytes:32 ~assoc:1;
    l2 = Cache.create ~name:"L2" ~size_bytes:(96 * 1024) ~line_bytes:64 ~assoc:3;
    dtlb = Tlb.create ~entries:64 ~page_bytes:8192;
    pred = Branch_pred.bimodal ~entries:2048;
    instrs = 0;
    stall_cycles = 0;
    cond_branches = 0;
    mispredicts = 0;
  }

let memory_stall t addr =
  if not (Cache.access t.l1d addr) then
    if Cache.access t.l2 addr then t.cfg.l2_latency else t.cfg.l2_latency + t.cfg.mem_latency
  else 0

let fetch_stall t pc =
  if not (Cache.access t.l1i pc) then
    if Cache.access t.l2 pc then t.cfg.l2_latency else t.cfg.l2_latency + t.cfg.mem_latency
  else 0

(* Long-latency arithmetic: a non-pipelined divider stalls fully, the
   multiplier roughly half (partially pipelined). *)
let arith_stall op =
  match (op : Opcode.t) with
  | Fp_div -> Opcode.latency Fp_div - 1
  | Int_mul -> (Opcode.latency Int_mul - 1) / 2
  | Load | Store | Branch | Jump | Call | Return | Int_alu | Fp_add | Fp_mul | Nop -> 0

let arith_stall_code = Array.init Opcode.count (fun i -> arith_stall (Opcode.of_int i))
let is_mem_code = Array.init Opcode.count (fun i -> Opcode.is_mem (Opcode.of_int i))
let op_branch = Opcode.to_int Opcode.Branch

let step t ~pc ~code ~addr ~taken =
  t.instrs <- t.instrs + 1;
  let stall = ref (fetch_stall t pc + Array.unsafe_get arith_stall_code code) in
  if Array.unsafe_get is_mem_code code then begin
    if not (Tlb.access t.dtlb addr) then stall := !stall + t.cfg.dtlb_penalty;
    stall := !stall + memory_stall t addr
  end;
  if code = op_branch then begin
    t.cond_branches <- t.cond_branches + 1;
    let pred = Branch_pred.predict_update t.pred ~pc ~taken in
    if pred <> taken then begin
      t.mispredicts <- t.mispredicts + 1;
      stall := !stall + t.cfg.mispredict_penalty
    end
  end;
  t.stall_cycles <- t.stall_cycles + !stall

let step_instr t (ins : Instr.t) =
  step t ~pc:ins.pc ~code:(Opcode.to_int ins.op) ~addr:ins.addr ~taken:ins.taken

let sink t =
  Mica_trace.Sink.make ~name:"inorder" (fun c ->
      let len = c.Chunk.len in
      let pcs = c.Chunk.pc and ops = c.Chunk.op and addrs = c.Chunk.addr
      and taken = c.Chunk.taken in
      for i = 0 to len - 1 do
        step t ~pc:(Array.unsafe_get pcs i) ~code:(Array.unsafe_get ops i)
          ~addr:(Array.unsafe_get addrs i)
          ~taken:(Bytes.unsafe_get taken i <> '\000')
      done)

type result = {
  instructions : int;
  cycles : int;
  ipc : float;
  branch_mispredict_rate : float;
  l1d_miss_rate : float;
  l1i_miss_rate : float;
  l2_miss_rate : float;
  dtlb_miss_rate : float;
}

let result t =
  let base = (t.instrs + t.cfg.issue_width - 1) / t.cfg.issue_width in
  let cycles = max 1 (base + t.stall_cycles) in
  {
    instructions = t.instrs;
    cycles;
    ipc = float_of_int t.instrs /. float_of_int cycles;
    branch_mispredict_rate =
      (if t.cond_branches = 0 then 0.0
       else float_of_int t.mispredicts /. float_of_int t.cond_branches);
    l1d_miss_rate = Cache.miss_rate t.l1d;
    l1i_miss_rate = Cache.miss_rate t.l1i;
    l2_miss_rate = Cache.miss_rate t.l2;
    dtlb_miss_rate = Tlb.miss_rate t.dtlb;
  }
