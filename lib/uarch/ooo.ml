module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg
module Chunk = Mica_trace.Chunk

type config = {
  width : int;
  window : int;
  mispredict_penalty : int;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
}

let default_config =
  { width = 4; window = 64; mispredict_penalty = 7; l1_latency = 3; l2_latency = 13; mem_latency = 100 }

type t = {
  cfg : config;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  pred : Branch_pred.t;
  reg_ready : int array;
  completions : int array;  (* window ring *)
  mutable head : int;
  mutable filled : int;
  mutable fetch_num : int;  (* fetch progress in instruction slots; cycle = fetch_num / width *)
  mutable last_cycle : int;
  mutable instrs : int;
  mutable cond_branches : int;
  mutable mispredicts : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    l1d = Cache.create ~name:"L1D" ~size_bytes:(64 * 1024) ~line_bytes:64 ~assoc:2;
    l1i = Cache.create ~name:"L1I" ~size_bytes:(64 * 1024) ~line_bytes:64 ~assoc:2;
    l2 = Cache.create ~name:"L2" ~size_bytes:(2 * 1024 * 1024) ~line_bytes:64 ~assoc:4;
    pred = Branch_pred.tournament ~entries:1024 ~history_bits:10;
    reg_ready = Array.make Reg.count 0;
    completions = Array.make config.window 0;
    head = 0;
    filled = 0;
    fetch_num = 0;
    last_cycle = 0;
    instrs = 0;
    cond_branches = 0;
    mispredicts = 0;
  }

let load_latency t addr =
  if Cache.access t.l1d addr then t.cfg.l1_latency
  else if Cache.access t.l2 addr then t.cfg.l2_latency
  else t.cfg.mem_latency

let redirect_fetch t cycle =
  let num = cycle * t.cfg.width in
  if num > t.fetch_num then t.fetch_num <- num

let latency_code = Array.init Opcode.count (fun i -> Opcode.latency (Opcode.of_int i))
let op_load = Opcode.to_int Opcode.Load
let op_store = Opcode.to_int Opcode.Store
let op_branch = Opcode.to_int Opcode.Branch

let step t ~pc ~code ~src1 ~src2 ~dst ~addr ~taken =
  t.instrs <- t.instrs + 1;
  let fetch_cycle = t.fetch_num / t.cfg.width in
  t.fetch_num <- t.fetch_num + 1;
  (* instruction-fetch miss delays the front end *)
  if not (Cache.access t.l1i pc) then begin
    let lat = if Cache.access t.l2 pc then t.cfg.l2_latency else t.cfg.mem_latency in
    redirect_fetch t (fetch_cycle + lat)
  end;
  let ready_src r = if Reg.carries_dependency r then t.reg_ready.(r) else 0 in
  let deps =
    let a = ready_src src1 and b = ready_src src2 in
    if a > b then a else b
  in
  let window_free = if t.filled < t.cfg.window then 0 else t.completions.(t.head) in
  let issue = max fetch_cycle (max deps window_free) in
  let latency =
    if code = op_load then load_latency t addr
    else if code = op_store then begin
      (* stores retire off the critical path but still occupy the cache *)
      ignore (load_latency t addr : int);
      1
    end
    else Array.unsafe_get latency_code code
  in
  let completion = issue + latency in
  t.completions.(t.head) <- completion;
  t.head <- (t.head + 1) mod t.cfg.window;
  if t.filled < t.cfg.window then t.filled <- t.filled + 1;
  if Reg.carries_dependency dst then t.reg_ready.(dst) <- completion;
  if completion > t.last_cycle then t.last_cycle <- completion;
  if code = op_branch then begin
    t.cond_branches <- t.cond_branches + 1;
    let pred = Branch_pred.predict_update t.pred ~pc ~taken in
    if pred <> taken then begin
      t.mispredicts <- t.mispredicts + 1;
      redirect_fetch t (completion + t.cfg.mispredict_penalty)
    end
  end

let sink t =
  Mica_trace.Sink.make ~name:"ooo" (fun c ->
      let len = c.Chunk.len in
      let pcs = c.Chunk.pc and ops = c.Chunk.op and src1 = c.Chunk.src1
      and src2 = c.Chunk.src2 and dst = c.Chunk.dst and addrs = c.Chunk.addr
      and taken = c.Chunk.taken in
      for i = 0 to len - 1 do
        step t ~pc:(Array.unsafe_get pcs i) ~code:(Array.unsafe_get ops i)
          ~src1:(Array.unsafe_get src1 i) ~src2:(Array.unsafe_get src2 i)
          ~dst:(Array.unsafe_get dst i) ~addr:(Array.unsafe_get addrs i)
          ~taken:(Bytes.unsafe_get taken i <> '\000')
      done)

type result = { instructions : int; cycles : int; ipc : float; branch_mispredict_rate : float }

let result t =
  let cycles = max 1 t.last_cycle in
  {
    instructions = t.instrs;
    cycles;
    ipc = float_of_int t.instrs /. float_of_int cycles;
    branch_mispredict_rate =
      (if t.cond_branches = 0 then 0.0
       else float_of_int t.mispredicts /. float_of_int t.cond_branches);
  }
