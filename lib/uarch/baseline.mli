(** Calibrated micro-benchmark baseline suite.

    Four single-loop kernels with hand-derivable behavior — a STREAM-like
    bandwidth sweep, a cache-resident dgemm-like FP loop, a
    pointer-chase latency probe, and a coin-flip branch-torture loop —
    each paired with analytically derived envelopes for the six hardware
    counters of {!Machine}.  A machine description whose counters fall
    outside an envelope is either mis-specified or has a modelling
    regression; [mica calibrate] fails loudly in CI on any such machine.

    The envelopes are derived from the generator's documented semantics
    (slot rounding, one back-edge per iteration, per-slot chase windows)
    plus first-principles cache arithmetic (one miss per line per
    stream, predictor-independent 50% on a fair coin, ...), then widened
    by a safety band so that every shipped [machines/*.json] description
    passes with margin.  They are deliberately coarse: the suite is a
    sanity gate, not a golden test. *)

module Kernel = Mica_trace.Kernel
module Program = Mica_trace.Program

val kernels : (string * Kernel.spec) list
(** The four kernels, keyed by short name: ["stream"], ["dgemm"],
    ["chase"], ["torture"]. *)

val kernel_names : string list

val program : string -> Program.t
(** Single-phase program for a kernel name (seeded deterministically from
    the name).  Raises [Invalid_argument] on an unknown name. *)

type envelope = {
  metric : string;  (** one of {!Machine.metric_names} *)
  lo : float;
  hi : float;
  why : string;  (** one-line derivation note *)
}

val envelopes : Machine.config -> kernel:string -> envelope list
(** Expected counter envelopes for running [kernel] on a machine.  Only
    metrics with a defensible analytic bound are included — e.g. the L2
    envelope of [chase] is emitted only when the live working set
    clearly exceeds the L2. *)

type outcome = {
  machine : string;
  kernel : string;
  metric : string;
  lo : float;
  hi : float;
  value : float;
  ok : bool;
  why : string;
}

val default_icount : int

val run_kernel : ?icount:int -> Machine.config list -> kernel:string -> outcome list
(** Generate the kernel's trace once and fan it out to every machine
    (via {!Machine.measure_all}), then check each machine's counters
    against its envelopes. *)

val run_all : ?icount:int -> Machine.config list -> outcome list
(** {!run_kernel} over all four kernels. *)

val passed : outcome list -> bool
val failures : outcome list -> outcome list

val render : outcome list -> string
(** Human-readable report table; failing rows carry the derivation note. *)
