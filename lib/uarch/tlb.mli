(** Fully-associative translation lookaside buffer with LRU replacement. *)

type t

val create : entries:int -> page_bytes:int -> t
(** [page_bytes] must be a power of two; [entries] positive. *)

val access : t -> int -> bool
(** [access t addr] translates the page containing [addr]; returns [true]
    on TLB hit.  A multi-byte transfer that straddles a page boundary
    needs {!access_range} — this single-address form translates exactly
    one page. *)

val access_range : t -> int -> bytes:int -> bool
(** [access_range t addr ~bytes] translates every page overlapped by
    [\[addr, addr + bytes)] — one counted access per page, so a
    page-straddling transfer costs two lookups rather than silently
    translating only its first page.  Returns [true] iff every page hit.
    Raises [Invalid_argument] if [bytes <= 0]. *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_counters : t -> unit
