(** Parameter-space sweep corpus: unbounded synthetic workload families.

    The Table I registry is 122 fixed benchmarks; exercising the pipeline
    at 10k+ observations needs an open-ended supply.  This module defines
    three scale-out application archetypes in the spirit of the
    BigDataBench / CloudSuite taxonomies and sweeps their kernel-model
    parameters (working-set size, access-pattern mixture, control bias,
    FP content, code footprint) deterministically per member index:

    - {e analytics} — batch scan/aggregate jobs: a sequential scan phase
      feeding a hash-aggregation phase with data-dependent control;
    - {e kv} — key-value serving: pointer-chasing lookups in a large
      table, short request-parse bursts, large irregular code footprint;
    - {e media} — media streaming/transcode: strided block decode plus a
      floating-point filter pass with highly predictable loops.

    Member identity is stable by construction: member [i] of a family has
    id [gen/<family>/<index>-<hex>] where the hex tag hashes the family,
    index and the sweep {!version} — regenerating a corpus (any size, any
    machine) yields the same ids, models and traces, and bumping
    {!version} renames every member rather than silently changing what an
    id means.  Members use {!Suite.Generated}, which is not part of
    {!Suite.all}: the Table I registry is unchanged. *)

type family = Analytics | Key_value | Media_stream

val families : family list
val family_name : family -> string
(** ["analytics" | "kv" | "media"]. *)

val family_of_name : string -> family option
(** Case-insensitive inverse of {!family_name}. *)

val version : int
(** Sweep-definition version, part of every member id. *)

val member_id : family -> int -> string
(** [member_id fam i] is the full workload id, e.g.
    ["gen/analytics/00042-1f3a9c2b"].  Requires [i >= 0]. *)

val member : family -> int -> Workload.t
(** The swept workload itself; deterministic in [(family, index)]. *)

val members : size:int -> Workload.t list
(** [size] workloads round-robined across {!families} in index order —
    the canonical corpus enumeration ([member_id] of row [r] is
    [member (families.(r mod 3)) (r / 3)]). *)
