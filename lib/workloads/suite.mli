(** The six benchmark suites of Table I, plus the synthetic sweep corpus. *)

type t =
  | BioInfoMark  (** bioinformatics *)
  | BioMetricsWorkload  (** biometrics *)
  | CommBench  (** telecommunication / network processing *)
  | MediaBench  (** multimedia *)
  | MiBench  (** embedded *)
  | SpecCpu2000  (** general purpose *)
  | Generated
      (** parameter-sweep corpus members ({!Corpus}); named ["gen"], and
          deliberately absent from {!all} so the Table I registry keeps
          its 122 rows *)

val all : t list
(** The six Table I suites (excludes {!Generated}). *)

val name : t -> string
val of_name : string -> t option
(** Case-insensitive lookup by {!name}. *)

val domain : t -> string
(** Human-readable workload domain, e.g. "bioinformatics". *)

val pp : Format.formatter -> t -> unit
