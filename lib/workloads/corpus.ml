module K = Mica_trace.Kernel
module Rng = Mica_util.Rng
module F = Families

type family = Analytics | Key_value | Media_stream

let families = [ Analytics; Key_value; Media_stream ]

let family_name = function Analytics -> "analytics" | Key_value -> "kv" | Media_stream -> "media"

let family_of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun f -> family_name f = s) families

let version = 1

let input_tag fam i =
  let key = Printf.sprintf "corpus-v%d/%s/%d" version (family_name fam) i in
  Printf.sprintf "%05d-%08Lx" i (Int64.logand (Rng.hash_string key) 0xFFFFFFFFL)

let member_id fam i =
  if i < 0 then invalid_arg "Corpus.member_id: negative index";
  Printf.sprintf "gen/%s/%s" (family_name fam) (input_tag fam i)

(* log-uniform integer in [lo, hi] *)
let log_int rng lo hi =
  let lo_l = log (float_of_int lo) and hi_l = log (float_of_int hi) in
  let v = exp (lo_l +. Rng.float rng (hi_l -. lo_l)) in
  max lo (min hi (int_of_float v))

let range rng lo hi = lo +. Rng.float rng (hi -. lo)

(* --- swept program models ------------------------------------------ *)

let analytics ~name rng =
  let data_kb = log_int rng 256 32768 in
  let random_frac = range rng 0.2 0.7 in
  let bias = range rng 0.3 0.7 in
  let fp = range rng 0.0 0.15 in
  let scan =
    F.kernel ~name:(name ^ ".scan") ~body:48
      ~mix:{ K.load = 0.30; store = 0.08; branch = 0.12; int_mul = 0.01; fp }
      ~loads:[ (0.8, K.Seq { stride = 8 }); (0.2, K.Fixed) ]
      ~stores:[ (0.9, K.Seq { stride = 8 }); (0.1, K.Fixed) ]
      ~data_kb ~trip:64
      ~branches:
        [ (0.7, K.Loop_like { period = 16 }); (0.3, K.Biased { taken_prob = bias }) ]
      ()
  in
  let aggregate =
    F.kernel ~name:(name ^ ".agg") ~body:56
      ~mix:{ K.load = 0.32; store = 0.14; branch = 0.14; int_mul = 0.02; fp = 0.0 }
      ~loads:
        [
          (random_frac, K.Random);
          (1.0 -. random_frac, K.Seq { stride = 8 });
        ]
      ~stores:[ (0.7, K.Random); (0.3, K.Fixed) ]
      ~data_kb ~trip:32
      ~branches:
        [
          (0.35, K.Biased { taken_prob = bias });
          (0.45, K.Loop_like { period = 12 });
          (0.20, K.History { depth = 4 });
        ]
      ()
  in
  F.program ~name [ [ (1.0, scan) ]; [ (0.4, scan); (0.6, aggregate) ] ]

let key_value ~name rng =
  let table_kb = log_int rng 512 65536 in
  let chase = range rng 0.2 0.6 in
  let bias = range rng 0.35 0.65 in
  let code = log_int rng 2000 20000 in
  let parse =
    F.kernel ~name:(name ^ ".parse") ~body:40
      ~mix:{ K.load = 0.26; store = 0.10; branch = 0.16; int_mul = 0.0; fp = 0.0 }
      ~loads:[ (0.7, K.Seq { stride = 1 }); (0.3, K.Fixed) ]
      ~stores:[ (0.8, K.Fixed); (0.2, K.Seq { stride = 1 }) ]
      ~data_kb:16 ~code ~regions:24 ~call_prob:0.05 ~trip:12
      ~branches:
        [ (0.5, K.Biased { taken_prob = bias }); (0.5, K.Loop_like { period = 8 }) ]
      ()
  in
  let lookup =
    F.kernel ~name:(name ^ ".lookup") ~body:52
      ~mix:{ K.load = 0.34; store = 0.08; branch = 0.13; int_mul = 0.0; fp = 0.0 }
      ~loads:
        [
          (chase, K.Chase);
          (0.3, K.Random);
          (Float.max 0.05 (0.7 -. chase), K.Seq { stride = 8 });
        ]
      ~stores:[ (0.6, K.Random); (0.4, K.Fixed) ]
      ~data_kb:table_kb ~code ~regions:24 ~call_prob:0.03 ~trip:8 ~carried:0.12
      ~branches:
        [
          (0.40, K.Biased { taken_prob = bias });
          (0.40, K.Loop_like { period = 10 });
          (0.20, K.History { depth = 6 });
        ]
      ()
  in
  F.program ~name [ [ (0.35, parse); (0.65, lookup) ] ]

let media_stream ~name rng =
  let data_kb = log_int rng 64 8192 in
  let fp = range rng 0.2 0.45 in
  let stride = 1 lsl Rng.int_in rng 3 7 in
  let decode =
    F.kernel ~name:(name ^ ".decode") ~body:64
      ~mix:{ K.load = 0.28; store = 0.12; branch = 0.09; int_mul = 0.04; fp = 0.0 }
      ~loads:[ (0.5, K.Strided { stride }); (0.4, K.Seq { stride = 4 }); (0.1, K.Fixed) ]
      ~stores:[ (0.6, K.Seq { stride = 4 }); (0.4, K.Strided { stride }) ]
      ~data_kb ~trip:128
      ~branches:[ (1.0, K.Loop_like { period = 16 }) ]
      ()
  in
  let filter =
    F.kernel ~name:(name ^ ".filter") ~body:72
      ~mix:{ K.load = 0.26; store = 0.10; branch = 0.07; int_mul = 0.0; fp }
      ~loads:[ (0.9, K.Seq { stride = 8 }); (0.1, K.Fixed) ]
      ~stores:[ (1.0, K.Seq { stride = 8 }) ]
      ~data_kb ~trip:256 ~dep_p:0.6 ~fp_mul:0.5
      ~branches:[ (1.0, K.Loop_like { period = 32 }) ]
      ()
  in
  F.program ~name [ [ (1.0, decode) ]; [ (0.3, decode); (0.7, filter) ] ]

let model fam ~name rng =
  match fam with
  | Analytics -> analytics ~name rng
  | Key_value -> key_value ~name rng
  | Media_stream -> media_stream ~name rng

let member fam i =
  let id = member_id fam i in
  (* the id seeds the sweep: equal ids are equal workloads, forever *)
  let rng = Rng.of_string id in
  let icount_millions = log_int rng 50 5000 in
  let program = model fam ~name:id rng in
  Workload.make ~suite:Suite.Generated ~program:(family_name fam) ~input:(input_tag fam i)
    ~icount_millions program

let members ~size =
  if size < 0 then invalid_arg "Corpus.members: negative size";
  let nfam = List.length families in
  let fams = Array.of_list families in
  List.init size (fun r -> member fams.(r mod nfam) (r / nfam))
