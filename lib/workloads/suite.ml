type t =
  | BioInfoMark
  | BioMetricsWorkload
  | CommBench
  | MediaBench
  | MiBench
  | SpecCpu2000
  | Generated

(* the Table I suites only: Generated corpus members live outside the
   paper's registry and are enumerated by [Corpus], not here *)
let all = [ BioInfoMark; BioMetricsWorkload; CommBench; MediaBench; MiBench; SpecCpu2000 ]

let name = function
  | BioInfoMark -> "BioInfoMark"
  | BioMetricsWorkload -> "BioMetricsWorkload"
  | CommBench -> "CommBench"
  | MediaBench -> "MediaBench"
  | MiBench -> "MiBench"
  | SpecCpu2000 -> "SPEC2000"
  | Generated -> "gen"

let of_name s =
  let s = String.lowercase_ascii s in
  if s = "gen" || s = "generated" then Some Generated
  else List.find_opt (fun t -> String.lowercase_ascii (name t) = s) all

let domain = function
  | BioInfoMark -> "bioinformatics"
  | BioMetricsWorkload -> "biometrics"
  | CommBench -> "telecommunication"
  | MediaBench -> "multimedia"
  | MiBench -> "embedded"
  | SpecCpu2000 -> "general purpose"
  | Generated -> "synthetic parameter sweep"

let pp fmt t = Format.pp_print_string fmt (name t)
