(* Approximation laws for the fixed-memory sketch analyzers
   (Mica_sketch): the sketched extended vector must stay within a
   documented per-characteristic error bound of the exact oracle, get
   more accurate as the byte budget grows, and be bit-deterministic —
   invariant under chunk boundaries, repeated runs and the worker count.
   Same contract shape as the ANN laws in [Approx]. *)

module Workload = Mica_workloads.Workload
module Sketch = Mica_sketch.Sketch
module Stream = Mica_sketch.Stream
module Extended = Mica_analysis.Extended

type outcome = { law : string; ok : bool; detail : string }

(* ---------------- documented error bounds ----------------

   Errors are measured as |sketch - exact| / max(|exact|, 1): relative
   for large values, absolute for fractions.  The bounds are contracts,
   not observations — set with about 2x headroom over the worst case
   seen across the 122-workload registry at the default 1 MiB budget:

   - mix, ILP and register traffic reuse the exact analyzers, so they
     must match bit for bit (bound 0);
   - working sets (HLL, 8192 registers) have a 1.04/sqrt(m) ~ 1.1%
     standard error; worst observed ~2.5%;
   - stride, PPM and branch families degrade only through bounded-table
     evictions of cold keys; worst observed well under 2%;
   - reuse distances carry the loosest bound: mass concentrated exactly
     at a CDF cutoff is smeared by the estimator's distance noise
     (sqrt(n) near the horizon, sqrt(d*rate) beyond), worst ~7%. *)
let epsilon_of_name name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  if has_prefix "reuse" then 0.15
  else if has_prefix "ws_" then 0.05
  else if has_prefix "ppm_" || has_prefix "br_" then 0.05
  else if
    has_prefix "ll" || has_prefix "gl" || has_prefix "ls" || has_prefix "gs"
  then 0.05
  else 0.0 (* pct_*, ilp_*, avg_ops, deg_use, dep* are exact by construction *)

let epsilons = lazy (Array.map epsilon_of_name Extended.short_names)

let exact_vector (w : Workload.t) ~icount =
  let t = Extended.create () in
  let (_ : int) = Mica_trace.Generator.run w.Workload.model ~icount ~sink:(Extended.sink t) in
  Extended.vector t

let sketch_vector ?plan (w : Workload.t) ~icount =
  Sketch.extended_vector (Sketch.analyze ?plan w.Workload.model ~icount)

let[@inline] err exact approx = Float.abs (approx -. exact) /. Float.max (Float.abs exact) 1.0

(* Every sketched characteristic of every workload within its bound. *)
let accuracy_law ~icount workloads =
  let eps = Lazy.force epsilons in
  let worst = ref 0.0 and worst_at = ref "" in
  let violations =
    List.concat_map
      (fun w ->
        let exact = exact_vector w ~icount in
        let approx = sketch_vector w ~icount in
        List.filter_map Fun.id
          (List.init (Array.length exact) (fun i ->
               let e = err exact.(i) approx.(i) in
               if e > !worst then begin
                 worst := e;
                 worst_at :=
                   Printf.sprintf "%s %s" (Workload.id w) Extended.short_names.(i)
               end;
               if e > eps.(i) then
                 Some
                   (Printf.sprintf "%s %s: err %.4f > eps %.2f (exact %.6f, sketch %.6f)"
                      (Workload.id w) Extended.short_names.(i) e eps.(i) exact.(i) approx.(i))
               else None)))
      workloads
  in
  {
    law = "sketch within documented eps of exact oracle";
    ok = violations = [];
    detail =
      (match violations with
      | [] ->
        Printf.sprintf "%d workloads x %d characteristics; worst err %.4f (%s)"
          (List.length workloads) Extended.count !worst !worst_at
      | v :: _ -> Printf.sprintf "%d violations; first: %s" (List.length violations) v);
  }

(* Mean error over (workloads x characteristics), non-increasing as the
   budget grows.  Aggregated, not per-cell: an individual CDF point can
   wobble when distance noise straddles its cutoff, but more memory must
   not make the estimates worse overall. *)
let budget_monotone_law ~icount workloads =
  let budgets = [ 1 lsl 18; 1 lsl 20; 1 lsl 22 ] in
  let exacts = List.map (fun w -> (w, exact_vector w ~icount)) workloads in
  let mean_err bytes =
    let plan = Sketch.plan ~bytes () in
    let sum = ref 0.0 and n = ref 0 in
    List.iter
      (fun (w, exact) ->
        let approx = sketch_vector ~plan w ~icount in
        Array.iteri
          (fun i e ->
            sum := !sum +. err e approx.(i);
            incr n)
          exact)
      exacts;
    !sum /. float_of_int (max 1 !n)
  in
  let errs = List.map (fun b -> (b, mean_err b)) budgets in
  let rec bad = function
    | (b1, e1) :: ((b2, e2) :: _ as rest) ->
      if e2 > e1 then Printf.sprintf "mean err %.5f@%dKiB > %.5f@%dKiB" e2 (b2 / 1024) e1 (b1 / 1024) :: bad rest
      else bad rest
    | _ -> []
  in
  let violations = bad errs in
  {
    law = "sketch accuracy monotone in byte budget";
    ok = violations = [];
    detail =
      (if violations = [] then
         String.concat " >= "
           (List.map (fun (b, e) -> Printf.sprintf "%.5f@%dKiB" e (b / 1024)) errs)
       else String.concat "; " violations);
  }

let float_arrays_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : float) y -> Int64.bits_of_float x = Int64.bits_of_float y) a b

(* Chunk boundaries carry no meaning and the sketch has no hidden
   per-run state: refeeding the identical instruction stream at any
   staging capacity — or regenerating it — lands on the same bits. *)
let determinism_law ~icount workloads =
  let capacities = [ 1; 7; 61; 4096 ] in
  let violations =
    List.filter_map
      (fun w ->
        let collector, read = Mica_trace.Sink.collect ~limit:icount () in
        let (_ : int) = Mica_trace.Generator.run w.Workload.model ~icount ~sink:collector in
        let instrs = read () in
        let reference = sketch_vector w ~icount in
        let repeat = sketch_vector w ~icount in
        if not (float_arrays_equal reference repeat) then
          Some (Printf.sprintf "%s: two generator runs diverge" (Workload.id w))
        else
          List.find_map
            (fun capacity ->
              let sk = Sketch.create () in
              Mica_trace.Sink.feed_list ~capacity (Sketch.sink sk) instrs;
              if float_arrays_equal reference (Sketch.extended_vector sk) then None
              else
                Some
                  (Printf.sprintf "%s: refeed at chunk capacity %d diverges" (Workload.id w)
                     capacity))
            capacities)
      workloads
  in
  {
    law = "sketch bit-deterministic across chunking and repeats";
    ok = violations = [];
    detail =
      (if violations = [] then
         Printf.sprintf "%d workloads identical across capacities %s and a repeated run"
           (List.length workloads)
           (String.concat "," (List.map string_of_int capacities))
       else String.concat "; " violations);
  }

(* Same for the windowed stream: window boundaries are positional over
   the whole trace, so snapshots are chunk-invariant too. *)
let stream_chunk_law ~icount workloads =
  let window = max 1 (icount / 7) in
  let violations =
    List.filter_map
      (fun w ->
        let collector, read = Mica_trace.Sink.collect ~limit:icount () in
        let (_ : int) = Mica_trace.Generator.run w.Workload.model ~icount ~sink:collector in
        let instrs = read () in
        let snapshots capacity =
          let t = Stream.create ~window () in
          Mica_trace.Sink.feed_list ~capacity (Stream.sink t) instrs;
          Stream.finish t
        in
        let reference = snapshots 4096 in
        List.find_map
          (fun capacity ->
            let snaps = snapshots capacity in
            if
              Array.length snaps = Array.length reference
              && Array.for_all2
                   (fun (a : Stream.snapshot) (b : Stream.snapshot) ->
                     a.Stream.index = b.Stream.index
                     && a.Stream.instructions = b.Stream.instructions
                     && float_arrays_equal a.Stream.vector b.Stream.vector
                     && float_arrays_equal a.Stream.decayed b.Stream.decayed)
                   snaps reference
            then None
            else
              Some
                (Printf.sprintf "%s: window snapshots diverge at chunk capacity %d"
                   (Workload.id w) capacity))
          [ 1; 13; 1021 ])
      workloads
  in
  {
    law = "stream snapshots invariant under chunk capacity";
    ok = violations = [];
    detail =
      (if violations = [] then
         Printf.sprintf "%d workloads, %d-instruction windows, capacities 1,13,1021 vs 4096"
           (List.length workloads) window
       else String.concat "; " violations);
  }

(* The sketched dataset is identical at any parallelism: workloads are
   independent and the sketch is deterministic, so the pipeline's worker
   count cannot leak into the numbers. *)
let jobs_invariance_law ~icount workloads =
  let dataset jobs =
    let config =
      {
        Mica_core.Pipeline.default_config with
        icount;
        jobs;
        cache_dir = None;
        sketch = Some Sketch.default_bytes;
      }
    in
    (Mica_core.Pipeline.mica_dataset ~config workloads).Mica_core.Dataset.data
  in
  let a = dataset 1 and b = dataset 4 in
  let ok = Array.length a = Array.length b && Array.for_all2 float_arrays_equal a b in
  {
    law = "sketched dataset invariant under worker count";
    ok;
    detail =
      (if ok then Printf.sprintf "%d workloads identical at jobs=1 and jobs=4" (Array.length a)
       else "datasets diverge between jobs=1 and jobs=4");
  }

let all ?accuracy_workloads ~icount workloads =
  let accuracy_workloads = Option.value accuracy_workloads ~default:workloads in
  [
    accuracy_law ~icount accuracy_workloads;
    budget_monotone_law ~icount workloads;
    determinism_law ~icount:(min icount 20_000) workloads;
    stream_chunk_law ~icount:(min icount 20_000) workloads;
    jobs_invariance_law ~icount:(min icount 20_000) workloads;
  ]
