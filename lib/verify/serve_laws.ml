module Server = Mica_serve.Server
module Protocol = Mica_serve.Protocol
module Pipeline = Mica_core.Pipeline
module Workload = Mica_workloads.Workload

type outcome = { law : string; ok : bool; detail : string }

let direct_pipe ~icount =
  {
    Pipeline.default_config with
    Pipeline.icount;
    cache_dir = None;
    progress = false;
    run = None;
    sketch = None;
  }

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) a b

(* Every served vector crosses the wire format on its way to the oracle
   comparison: encoding must preserve float bits exactly. *)
let roundtrip resp =
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok r -> r
  | Error e -> Printf.ksprintf failwith "response wire round-trip failed: %s" e

let pump_dry t = while Server.pump t > 0 do () done

let request_vector t ~rid workload ~estimate ~deadline_ms =
  let slot = ref None in
  Server.submit t
    { Protocol.id = rid; op = Protocol.Characterize { workload; estimate }; deadline_ms }
    ~reply:(fun r -> slot := Some r);
  pump_dry t;
  match !slot with
  | None -> Error "no reply"
  | Some resp -> (
    let resp = roundtrip resp in
    match (resp.Protocol.status, resp.Protocol.payload) with
    | Protocol.Ok, Some (Protocol.Vector { mica; hpc; estimated; cached }) ->
      Ok (mica, hpc, estimated, cached)
    | status, _ ->
      Error
        (Printf.sprintf "status %s%s" (Protocol.status_name status)
           (match resp.Protocol.error with None -> "" | Some e -> ": " ^ e)))

let exact_identity_law ~icount ~jobs workloads =
  let law = Printf.sprintf "served_exact/jobs=%d" jobs in
  let config =
    { Server.default_config with Server.icount; jobs; cache_dir = None; default_deadline_ms = 0.0 }
  in
  let t = Server.create config in
  let pipe = direct_pipe ~icount in
  let issues =
    List.concat_map
      (fun w ->
        let id = Workload.id w in
        let dm, dh = Pipeline.characterize pipe w in
        let check tag = function
          | Error e -> [ Printf.sprintf "%s (%s): %s" id tag e ]
          | Ok (mica, hpc, estimated, cached) ->
            let want_cached = tag = "cached" in
            if estimated then [ Printf.sprintf "%s (%s): unexpectedly estimated" id tag ]
            else if cached <> want_cached then
              [ Printf.sprintf "%s (%s): cached=%b, expected %b" id tag cached want_cached ]
            else if not (bits_equal mica dm && bits_equal hpc dh) then
              [ Printf.sprintf "%s (%s): served vector differs from direct" id tag ]
            else []
        in
        (* First request computes on the pool; the repeat must come back
           bit-identical from the results table.  Sequenced with lets:
           [@]'s operands would evaluate right-to-left. *)
        let fresh = check "fresh" (request_vector t ~rid:1 id ~estimate:false ~deadline_ms:None) in
        let repeat =
          check "cached" (request_vector t ~rid:2 id ~estimate:false ~deadline_ms:None)
        in
        fresh @ repeat)
      workloads
  in
  match issues with
  | [] ->
    {
      law;
      ok = true;
      detail =
        Printf.sprintf "%d workloads bit-identical (fresh + cached) over %d instructions"
          (List.length workloads) icount;
    }
  | i :: _ ->
    { law; ok = false; detail = Printf.sprintf "%d mismatches; first: %s" (List.length issues) i }

let degraded_identity_law ~icount workloads =
  let law = "served_degraded" in
  match workloads with
  | w_degraded :: w_prime :: _ ->
    (* Virtual clock: 50ms per read while priming the EWMA, then frozen
       so the tight deadline below cannot expire — the dispatcher must
       pick the sketch path because the remaining budget (1ms) is under
       margin x EWMA, not because time actually ran out. *)
    let step = ref 0.05 in
    let now = ref 0.0 in
    let clock () =
      now := !now +. !step;
      !now
    in
    let config =
      { Server.default_config with Server.icount; jobs = 1; cache_dir = None; clock }
    in
    let t = Server.create config in
    let primed = request_vector t ~rid:1 (Workload.id w_prime) ~estimate:false ~deadline_ms:None in
    step := 0.0;
    let served =
      request_vector t ~rid:2 (Workload.id w_degraded) ~estimate:true ~deadline_ms:(Some 1.0)
    in
    let spipe =
      { (direct_pipe ~icount) with Pipeline.sketch = Some config.Server.sketch_bytes }
    in
    let dm, dh = Pipeline.characterize spipe w_degraded in
    let issue =
      match (primed, served) with
      | Error e, _ -> Some ("priming request failed: " ^ e)
      | _, Error e -> Some ("degraded request failed: " ^ e)
      | Ok _, Ok (_, _, false, _) -> Some "near-deadline estimate request was not degraded"
      | Ok _, Ok (mica, hpc, true, _) ->
        if bits_equal mica dm && bits_equal hpc dh then None
        else Some "degraded vector differs from the direct sketch pipeline"
    in
    (match issue with
    | None ->
      {
        law;
        ok = true;
        detail =
          Printf.sprintf "%s degraded to the sketch path, bit-identical over %d instructions"
            (Workload.id w_degraded) icount;
      }
    | Some d -> { law; ok = false; detail = d })
  | _ -> { law; ok = false; detail = "needs at least two workloads" }

let all ~icount workloads =
  [ exact_identity_law ~icount ~jobs:1 workloads; exact_identity_law ~icount ~jobs:4 workloads ]
  @ (match workloads with _ :: _ :: _ -> [ degraded_identity_law ~icount workloads ] | _ -> [])
