(** Served-vs-direct laws for the characterization daemon.

    The serve layer must be a transparent transport: a vector obtained
    through admission, pool dispatch and the wire protocol must be
    bit-for-bit the vector [Pipeline.characterize] computes directly.
    Both laws drive the daemon's deterministic core ({!Mica_serve.Server})
    and push every reply through a [Protocol] encode/decode round-trip,
    so the float-exact JSON writer is part of what is checked.

    - {b served_exact/jobs=N}: for each workload, the served vector
      (fresh compute, then a second request answered from the results
      table) equals the direct exact vector bit-for-bit, at [jobs = 1]
      and [jobs = 4];
    - {b served_degraded}: under a virtual clock that forces the
      graceful-degradation path (EWMA primed, then a near-deadline
      request with [estimate]), the degraded answer is flagged
      [estimated] and equals the direct sketch-pipeline vector
      bit-for-bit. *)

type outcome = { law : string; ok : bool; detail : string }

val exact_identity_law : icount:int -> jobs:int -> Mica_workloads.Workload.t list -> outcome
val degraded_identity_law : icount:int -> Mica_workloads.Workload.t list -> outcome

val all : icount:int -> Mica_workloads.Workload.t list -> outcome list
(** [exact_identity_law] at jobs 1 and 4, then — when at least two
    workloads are given (it needs a distinct EWMA-priming workload; the
    standalone law reports failure below two) — [degraded_identity_law]. *)
