module Workload = Mica_workloads.Workload

type level = Quick | Full

type check = { layer : string; subject : string; ok : bool; detail : string }

type report = { level : level; checks : check list; duration : float }

let passed r = List.for_all (fun c -> c.ok) r.checks
let failures r = List.filter (fun c -> not c.ok) r.checks

let default_workloads () =
  List.map Mica_workloads.Registry.find_exn
    [ "MiBench/sha/large"; "SPEC2000/mcf/ref"; "SPEC2000/swim/ref" ]

let invariant_check ~icount (w : Workload.t) =
  let inv = Invariant_sink.create () in
  let (_ : int) =
    Mica_trace.Generator.run w.Workload.model ~icount ~sink:(Invariant_sink.sink inv)
  in
  match Invariant_sink.finish ~expected_icount:icount inv with
  | [] ->
    {
      layer = "invariants";
      subject = Workload.id w;
      ok = true;
      detail =
        Printf.sprintf "%d instructions clean (%d live-in registers)" icount
          (Invariant_sink.live_in_registers inv);
    }
  | v :: _ as vs ->
    {
      layer = "invariants";
      subject = Workload.id w;
      ok = false;
      detail =
        Printf.sprintf "%d violations; first: %s" (List.length vs)
          (Format.asprintf "%a" Invariant_sink.pp_violation v);
    }

let reference_check ~icount (w : Workload.t) =
  match Reference.check w.Workload.model ~icount with
  | [] ->
    {
      layer = "reference";
      subject = Workload.id w;
      ok = true;
      detail = Printf.sprintf "all 47 characteristics agree over %d instructions" icount;
    }
  | m :: _ as ms ->
    {
      layer = "reference";
      subject = Workload.id w;
      ok = false;
      detail =
        Printf.sprintf "%d characteristics disagree; first: %s" (List.length ms)
          (Format.asprintf "%a" Reference.pp_mismatch m);
    }

let differential_checks ~icount workloads =
  List.map
    (fun (o : Differential.outcome) ->
      {
        layer = "differential";
        subject = o.Differential.law;
        ok = o.Differential.ok;
        detail = o.Differential.detail;
      })
    (Differential.all workloads ~icount)

let sketch_checks ?accuracy_workloads ~icount workloads =
  List.map
    (fun (o : Sketch_laws.outcome) ->
      {
        layer = "sketch";
        subject = o.Sketch_laws.law;
        ok = o.Sketch_laws.ok;
        detail = o.Sketch_laws.detail;
      })
    (Sketch_laws.all ?accuracy_workloads ~icount workloads)

let serve_checks ~icount workloads =
  List.map
    (fun (o : Serve_laws.outcome) ->
      { layer = "serve"; subject = o.Serve_laws.law; ok = o.Serve_laws.ok; detail = o.Serve_laws.detail })
    (Serve_laws.all ~icount workloads)

let scale_checks ~size =
  List.map
    (fun (o : Approx.outcome) ->
      { layer = "scale"; subject = o.Approx.law; ok = o.Approx.ok; detail = o.Approx.detail })
    (Approx.all ~size ())

let run ?(level = Quick) ?workloads ?invariant_icount ?reference_icount ?differential_icount ()
    =
  let workloads = match workloads with Some ws -> ws | None -> default_workloads () in
  let dflt quick full = match level with Quick -> quick | Full -> full in
  let invariant_icount = Option.value invariant_icount ~default:(dflt 50_000 200_000) in
  let reference_icount = Option.value reference_icount ~default:(dflt 2_000 5_000) in
  let differential_icount = Option.value differential_icount ~default:(dflt 10_000 50_000) in
  (* The full suite sweeps the accuracy bound over the whole registry —
     the sketch's error contract is per-workload, so spot checks on the
     trio are only a smoke test. *)
  let accuracy_workloads =
    match level with Quick -> None | Full -> Some Mica_workloads.Registry.all
  in
  let t0 = Unix.gettimeofday () in
  let checks =
    List.map (invariant_check ~icount:invariant_icount) workloads
    @ List.map (reference_check ~icount:reference_icount) workloads
    @ differential_checks ~icount:differential_icount workloads
    @ sketch_checks ?accuracy_workloads ~icount:(dflt 20_000 100_000) workloads
    @ serve_checks ~icount:(dflt 10_000 20_000) workloads
    @ scale_checks ~size:(dflt 96 256)
  in
  { level; checks; duration = Unix.gettimeofday () -. t0 }

let render r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-13s %-24s %s\n"
           (if c.ok then "ok" else "FAIL")
           c.layer c.subject c.detail))
    r.checks;
  let fails = List.length (failures r) in
  Buffer.add_string buf
    (Printf.sprintf "%d checks, %d failures (%.1fs, %s)\n" (List.length r.checks) fails
       r.duration
       (match r.level with Quick -> "quick" | Full -> "full"));
  Buffer.contents buf
