module Instr = Mica_isa.Instr
module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg

type violation = { index : int; rule : string; detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "instruction %d: [%s] %s" v.index v.rule v.detail

type t = {
  strict_defined_use : bool;
  max_violations : int;
  mutable count : int;
  mutable prev : Instr.t option;
  written : bool array;  (* register has a producer earlier in the stream *)
  live_in : bool array;  (* register was read before any write *)
  branch_targets : (int, int) Hashtbl.t;  (* static conditional branch -> target *)
  mutable recorded : violation list;  (* reverse stream order *)
  mutable n_recorded : int;
  mutable total : int;
}

let create ?(strict_defined_use = false) ?(max_violations = 64) () =
  {
    strict_defined_use;
    max_violations;
    count = 0;
    prev = None;
    written = Array.make Reg.count false;
    live_in = Array.make Reg.count false;
    branch_targets = Hashtbl.create 256;
    recorded = [];
    n_recorded = 0;
    total = 0;
  }

let flag t ~index ~rule detail =
  t.total <- t.total + 1;
  if t.n_recorded < t.max_violations then begin
    t.recorded <- { index; rule; detail } :: t.recorded;
    t.n_recorded <- t.n_recorded + 1
  end

let valid_reg r = Reg.is_none r || (r >= 0 && r < Reg.count)

let check_read t ~index r =
  if not (Reg.is_none r) then
    if not (valid_reg r) then
      flag t ~index ~rule:"reg-id" (Printf.sprintf "source register id %d out of range" r)
    else if Reg.carries_dependency r && not t.written.(r) then
      if t.strict_defined_use then
        flag t ~index ~rule:"reg-defined"
          (Printf.sprintf "%s read before any write" (Reg.to_string r))
      else t.live_in.(r) <- true

let on_instr t (ins : Instr.t) =
  let index = t.count in
  t.count <- t.count + 1;
  if ins.pc <= 0 then
    flag t ~index ~rule:"pc-positive" (Printf.sprintf "non-positive pc 0x%x" ins.pc);
  (match t.prev with
  | Some prev when Instr.next_pc prev <> ins.pc ->
    flag t ~index ~rule:"pc-chain"
      (Printf.sprintf "pc 0x%x does not follow 0x%x (expected 0x%x)" ins.pc prev.Instr.pc
         (Instr.next_pc prev))
  | Some _ | None -> ());
  t.prev <- Some ins;
  check_read t ~index ins.src1;
  check_read t ~index ins.src2;
  if not (valid_reg ins.dst) then
    flag t ~index ~rule:"reg-id"
      (Printf.sprintf "destination register id %d out of range" ins.dst)
  else if Reg.carries_dependency ins.dst then t.written.(ins.dst) <- true;
  if Opcode.is_mem ins.op then begin
    if ins.addr <= 0 then
      flag t ~index ~rule:"mem-addr"
        (Printf.sprintf "%s without a positive effective address" (Opcode.to_string ins.op))
  end
  else if ins.addr <> 0 then
    flag t ~index ~rule:"mem-addr"
      (Printf.sprintf "%s carries effective address 0x%x" (Opcode.to_string ins.op) ins.addr);
  if Opcode.is_control ins.op then begin
    if ins.taken && ins.target <= 0 then
      flag t ~index ~rule:"ctrl-target"
        (Printf.sprintf "taken %s without a positive target" (Opcode.to_string ins.op))
  end
  else begin
    if ins.taken then
      flag t ~index ~rule:"ctrl-target"
        (Printf.sprintf "non-control %s marked taken" (Opcode.to_string ins.op));
    if ins.target <> 0 then
      flag t ~index ~rule:"ctrl-target"
        (Printf.sprintf "non-control %s carries target 0x%x" (Opcode.to_string ins.op)
           ins.target)
  end;
  (* A static conditional branch has one target in this ISA model; calls and
     returns are excluded (their targets legitimately vary by callee). *)
  if ins.op = Opcode.Branch && ins.target > 0 then
    match Hashtbl.find_opt t.branch_targets ins.pc with
    | None -> Hashtbl.add t.branch_targets ins.pc ins.target
    | Some target when target <> ins.target ->
      flag t ~index ~rule:"branch-target"
        (Printf.sprintf "branch at 0x%x targets 0x%x, previously 0x%x" ins.pc ins.target
           target)
    | Some _ -> ()

let sink t = Mica_trace.Sink.of_instr_sink ~name:"invariants" (fun ins -> on_instr t ins)

let instructions t = t.count

let live_in_registers t = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.live_in

let violations t = List.rev t.recorded

let total_violations t = t.total

let finish ?expected_icount t =
  let tail =
    match expected_icount with
    | Some n when n <> t.count ->
      [
        {
          index = t.count;
          rule = "icount";
          detail = Printf.sprintf "stream delivered %d instructions, expected %d" t.count n;
        };
      ]
    | Some _ | None -> []
  in
  violations t @ tail

let ok ?expected_icount t = t.total = 0 && finish ?expected_icount t = []
