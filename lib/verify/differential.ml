module Pipeline = Mica_core.Pipeline
module Dataset = Mica_core.Dataset

type outcome = { law : string; ok : bool; detail : string }

let pp_outcome fmt o =
  Format.fprintf fmt "%-18s %s  %s" o.law (if o.ok then "ok" else "FAIL") o.detail

(* Bit-exact float-array comparison; structural compare treats nan = nan,
   which is what we want — both sides computing the same nan is agreement. *)
let first_diff a b =
  if Array.length a <> Array.length b then
    Some (Printf.sprintf "lengths differ: %d vs %d" (Array.length a) (Array.length b))
  else begin
    let out = ref None in
    Array.iteri
      (fun i x ->
        if !out = None && compare x b.(i) <> 0 then
          out := Some (Printf.sprintf "index %d: %.17g vs %.17g" i x b.(i)))
      a;
    !out
  end

let seed_determinism program ~icount =
  let v1 = Mica_analysis.Analyzer.analyze program ~icount in
  let v2 = Mica_analysis.Analyzer.analyze program ~icount in
  match first_diff v1 v2 with
  | None ->
    {
      law = "seed-determinism";
      ok = true;
      detail = Printf.sprintf "%s: two runs at icount %d identical" program.Mica_trace.Program.name icount;
    }
  | Some d ->
    { law = "seed-determinism";
      ok = false;
      detail = Printf.sprintf "%s: %s" program.Mica_trace.Program.name d }

let prefix_law program ~n ~m =
  if n <= 0 || n > m then invalid_arg "Differential.prefix_law: need 0 < n <= m";
  let direct = Mica_analysis.Analyzer.analyze program ~icount:n in
  let collector, read = Mica_trace.Sink.collect ~limit:n () in
  let (_ : int) = Mica_trace.Generator.run program ~icount:m ~sink:collector in
  let analyzer = Mica_analysis.Analyzer.create () in
  let sink = Mica_analysis.Analyzer.sink analyzer in
  Mica_trace.Sink.feed_list sink (read ());
  match first_diff direct (Mica_analysis.Analyzer.vector analyzer) with
  | None ->
    {
      law = "prefix";
      ok = true;
      detail =
        Printf.sprintf "%s: icount %d equals first %d of %d" program.Mica_trace.Program.name n n m;
    }
  | Some d ->
    { law = "prefix";
      ok = false;
      detail = Printf.sprintf "%s: %s" program.Mica_trace.Program.name d }

let dataset_diff (a : Dataset.t) (b : Dataset.t) =
  if a.Dataset.names <> b.Dataset.names then Some "row labels differ"
  else if a.Dataset.features <> b.Dataset.features then Some "feature labels differ"
  else begin
    let out = ref None in
    Array.iteri
      (fun i row ->
        if !out = None then
          match first_diff row b.Dataset.data.(i) with
          | Some d -> out := Some (Printf.sprintf "row %s: %s" a.Dataset.names.(i) d)
          | None -> ())
      a.Dataset.data;
    !out
  end

let datasets_diff (am, ah) (bm, bh) =
  match dataset_diff am bm with
  | Some d -> Some ("mica " ^ d)
  | None -> (
    match dataset_diff ah bh with Some d -> Some ("hpc " ^ d) | None -> None)

let base_config icount =
  { Pipeline.default_config with Pipeline.icount; cache_dir = None; progress = false }

let jobs_equality ?jobs workloads ~icount =
  (* at least two domains even on small machines, or the law compares a run
     against itself *)
  let jobs =
    match jobs with Some j -> j | None -> max 2 Pipeline.default_config.Pipeline.jobs
  in
  let serial = Pipeline.datasets ~config:{ (base_config icount) with Pipeline.jobs = 1 } workloads in
  let parallel = Pipeline.datasets ~config:{ (base_config icount) with Pipeline.jobs } workloads in
  match datasets_diff serial parallel with
  | None ->
    {
      law = "jobs-equality";
      ok = true;
      detail =
        Printf.sprintf "jobs=1 and jobs=%d identical over %d workloads" jobs
          (List.length workloads);
    }
  | Some d -> { law = "jobs-equality"; ok = false; detail = d }

let fresh_cache_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mica_verify_cache_%d_%d" (Unix.getpid ()) !counter)

let remove_tree dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let cache_roundtrip workloads ~icount =
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      let config =
        { (base_config icount) with Pipeline.cache_dir = Some dir; jobs = 1 }
      in
      let computed = Pipeline.datasets ~config workloads in
      let cached = Pipeline.datasets ~config workloads in
      match datasets_diff computed cached with
      | None ->
        {
          law = "cache-roundtrip";
          ok = true;
          detail =
            Printf.sprintf "CSV cache reproduces %d workloads bit-exactly"
              (List.length workloads);
        }
      | Some d -> { law = "cache-roundtrip"; ok = false; detail = d })

let all ?jobs workloads ~icount =
  let per_workload =
    List.concat_map
      (fun (w : Mica_workloads.Workload.t) ->
        [
          seed_determinism w.Mica_workloads.Workload.model ~icount;
          prefix_law w.Mica_workloads.Workload.model ~n:(max 1 (icount / 2)) ~m:icount;
        ])
      workloads
  in
  per_workload @ [ jobs_equality ?jobs workloads ~icount; cache_roundtrip workloads ~icount ]
