(** Differential oracles for the scale layer.

    Every approximate or restructured path introduced for the 10k-row
    corpus regime is checked here against the naive implementation it
    replaces, on a freshly synthesized corpus:

    - the blocked columnar distance kernel must equal the naive
      row-major kernel {e bit for bit}, at several tile sizes and pool
      widths;
    - columnar z-scoring must equal {!Mica_stats.Normalize.zscore};
    - ANN k-nearest-neighbor recall against the exact linear scan must
      meet {!min_recall}, and must be monotone in the candidate budget
      (the metamorphic law: shrinking the budget never improves recall);
    - ANN range queries must equal the exact scan — they are pruned, not
      approximated;
    - scalable k-center, seeded with the naive medoid, must select the
      same subset as the O(n^2) path. *)

type outcome = { law : string; ok : bool; detail : string }

val min_recall : float
(** 0.99 — the acceptance bound for approximate kNN. *)

val all : ?size:int -> unit -> outcome list
(** Run every law on a [size]-member synthesized corpus (default 96). *)
