(** The oracle suite: invariants, reference analyzers and metamorphic laws
    over a set of contrasting workloads, with a renderable report.

    This is what [mica verify] and CI run; tests exercise the same entry
    point so a violation fails everywhere the same way. *)

type level = Quick | Full

type check = {
  layer : string;
      (** ["invariants"], ["reference"], ["differential"], ["sketch"] or
          ["scale"] *)
  subject : string;  (** workload id or law name *)
  ok : bool;
  detail : string;
}

type report = {
  level : level;
  checks : check list;
  duration : float;  (** wall-clock seconds *)
}

val passed : report -> bool
val failures : report -> check list

val default_workloads : unit -> Mica_workloads.Workload.t list
(** Three contrasting workloads (control-heavy integer, pointer-chasing
    memory-bound, floating-point streaming) — the same trio pinned by the
    golden tests. *)

val run :
  ?level:level ->
  ?workloads:Mica_workloads.Workload.t list ->
  ?invariant_icount:int ->
  ?reference_icount:int ->
  ?differential_icount:int ->
  unit ->
  report
(** Runs all layers.  Defaults depend on [level] (default [Quick]):
    Quick checks invariants over 50k instructions, reference oracles over
    2k, differential laws over 10k and sketch laws over 20k per workload;
    Full uses 200k / 5k / 50k / 100k, and additionally sweeps the sketch
    accuracy bound over the entire workload registry rather than just the
    supplied trio.  Explicit [*_icount] arguments override either
    level. *)

val render : report -> string
(** Multi-line human-readable report ending in a pass/fail summary. *)
