module Instr = Mica_isa.Instr
module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg

let fdiv num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* ---------------- instruction mix: direct counting ---------------- *)

let mix instrs =
  let count pred = List.length (List.filter (fun (i : Instr.t) -> pred i.op) instrs) in
  let total = max 1 (List.length instrs) in
  [|
    fdiv (count Opcode.is_load) total;
    fdiv (count Opcode.is_store) total;
    fdiv (count Opcode.is_control) total;
    fdiv (count Opcode.is_int_alu) total;
    fdiv (count Opcode.is_int_mul) total;
    fdiv (count Opcode.is_fp) total;
  |]

(* ---------------- ILP: exhaustive window scheduling ---------------- *)

(* Issue cycles are recomputed from scratch per instruction: scan backwards
   for the latest producer of each source register, apply the window
   constraint against the instruction [window] positions earlier, complete
   one cycle after issue.  No register scoreboard, no ring. *)
let ilp_one ~window instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let completions = Array.make n 0 in
  let producer_completion i r =
    if not (Reg.carries_dependency r) then 0
    else begin
      let found = ref 0 in
      for j = i - 1 downto 0 do
        if !found = 0 && arr.(j).Instr.dst = r then found := completions.(j)
      done;
      !found
    end
  in
  let last = ref 0 in
  for i = 0 to n - 1 do
    let deps = max (producer_completion i arr.(i).Instr.src1) (producer_completion i arr.(i).Instr.src2) in
    let window_free = if i >= window then completions.(i - window) else 0 in
    let completion = max deps window_free + 1 in
    completions.(i) <- completion;
    if completion > !last then last := completion
  done;
  if !last = 0 then 0.0 else float_of_int n /. float_of_int !last

let ilp ?(windows = Mica_analysis.Ilp.default_windows) instrs =
  Array.map (fun w -> ilp_one ~window:w instrs) windows

(* ---------------- register traffic: list scans ---------------- *)

let regtraffic instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  (* 1-based positions, matching the production analyzer's indexing *)
  let sources i = List.filter (fun r -> not (Reg.is_none r)) [ arr.(i).Instr.src1; arr.(i).Instr.src2 ] in
  let operands = ref 0 in
  for i = 0 to n - 1 do
    operands := !operands + List.length (sources i)
  done;
  (* per-register event lists: reads and writes at 1-based positions,
     duplicated when both operands name the same register *)
  let reads r =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      List.iter (fun s -> if s = r then acc := (i + 1) :: !acc) (sources i)
    done;
    !acc
  in
  let writes r =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if arr.(i).Instr.dst = r then acc := (i + 1) :: !acc
    done;
    !acc
  in
  let instances = ref 0 and total_uses = ref 0 in
  let distances = ref [] in
  for r = 0 to Reg.count - 1 do
    if Reg.carries_dependency r then begin
      let ws = writes r and rs = reads r in
      instances := !instances + List.length ws;
      (* degree of use: reads land in the half-open interval after the write
         that produced the value; a read at the overwriting instruction still
         sees the old value (reads precede the write within an instruction) *)
      let rec intervals = function
        | [] -> ()
        | w :: rest ->
          let upper = match rest with w' :: _ -> w' | [] -> n + 1 in
          total_uses :=
            !total_uses + List.length (List.filter (fun p -> p > w && p <= upper) rs);
          intervals rest
      in
      intervals ws;
      (* dependency distance: read position minus the latest strictly-earlier
         write position, when one exists *)
      List.iter
        (fun p ->
          match List.filter (fun w -> w < p) ws with
          | [] -> ()
          | earlier -> distances := (p - List.fold_left max 0 earlier) :: !distances)
        rs
    end
  done;
  let distances = !distances in
  let dep_total = max 1 (List.length distances) in
  let cdf =
    Array.map
      (fun cutoff -> fdiv (List.length (List.filter (fun d -> d <= cutoff) distances)) dep_total)
      Mica_analysis.Regtraffic.dep_cutoffs
  in
  Array.append
    [| fdiv !operands (max 1 n); fdiv !total_uses (max 1 !instances) |]
    cdf

(* ---------------- working sets: sorted address sets ---------------- *)

let working_set instrs =
  let uniques xs = List.length (List.sort_uniq compare xs) in
  let mem = List.filter (fun (i : Instr.t) -> Opcode.is_mem i.op) instrs in
  [|
    float_of_int (uniques (List.map (fun (i : Instr.t) -> i.addr lsr 5) mem));
    float_of_int (uniques (List.map (fun (i : Instr.t) -> i.addr lsr 12) mem));
    float_of_int (uniques (List.map (fun (i : Instr.t) -> i.pc lsr 5) instrs));
    float_of_int (uniques (List.map (fun (i : Instr.t) -> i.pc lsr 12) instrs));
  |]

(* ---------------- strides: per-stream stride lists ---------------- *)

let strides instrs =
  let global kind =
    let addrs =
      List.filter_map
        (fun (i : Instr.t) -> if i.op = kind then Some i.addr else None)
        instrs
    in
    let rec diffs = function
      | a :: (b :: _ as rest) -> (b - a) :: diffs rest
      | [ _ ] | [] -> []
    in
    diffs addrs
  in
  (* the local table is shared across loads and stores, like the production
     analyzer's: strides are keyed by static instruction, not by kind *)
  let local kind =
    let last = Hashtbl.create 64 in
    let acc = ref [] in
    List.iter
      (fun (i : Instr.t) ->
        if Opcode.is_mem i.op then begin
          (match Hashtbl.find_opt last i.pc with
          | Some prev when i.op = kind -> acc := (i.addr - prev) :: !acc
          | Some _ | None -> ());
          Hashtbl.replace last i.pc i.addr
        end)
      instrs;
    List.rev !acc
  in
  let cdf strides =
    let total = max 1 (List.length strides) in
    Array.map
      (fun cutoff -> fdiv (List.length (List.filter (fun s -> abs s <= cutoff) strides)) total)
      Mica_analysis.Strides.cutoffs
  in
  Array.concat
    [
      cdf (local Opcode.Load);
      cdf (global Opcode.Load);
      cdf (local Opcode.Store);
      cdf (global Opcode.Store);
    ]

(* ---------------- PPM: plain structurally-keyed hashtables ---------------- *)

(* Histories are boolean lists (most recent outcome first), padded with
   not-taken below their length like the production analyzer's zero-filled
   history registers; contexts are keyed structurally by
   (table id, context length, outcome prefix), so there is no packed-integer
   key to collide. *)
let ppm ?(order = 8) instrs =
  let history_depth = 16 in
  let prefix hist k =
    let rec take h k = if k = 0 then [] else match h with
      | [] -> false :: take [] (k - 1)
      | b :: rest -> b :: take rest (k - 1)
    in
    take hist k
  in
  let run ~local ~per_address =
    let table : (int * int * bool list, int ref * int ref) Hashtbl.t = Hashtbl.create 4096 in
    let local_hist : (int, bool list) Hashtbl.t = Hashtbl.create 256 in
    let ghist = ref [] in
    let misses = ref 0 and branches = ref 0 in
    List.iter
      (fun (i : Instr.t) ->
        if Opcode.is_cond_branch i.op then begin
          incr branches;
          let pc_part = if per_address then i.pc else 0 in
          let hist =
            if local then match Hashtbl.find_opt local_hist i.pc with Some h -> h | None -> []
            else !ghist
          in
          let rec predict k =
            if k < 0 then true
            else
              match Hashtbl.find_opt table (pc_part, k, prefix hist k) with
              | Some (t, nt) when !t + !nt > 0 -> !t >= !nt
              | Some _ | None -> predict (k - 1)
          in
          if predict order <> i.taken then incr misses;
          for k = 0 to order do
            let key = (pc_part, k, prefix hist k) in
            let t, nt =
              match Hashtbl.find_opt table key with
              | Some c -> c
              | None ->
                let c = (ref 0, ref 0) in
                Hashtbl.add table key c;
                c
            in
            if i.taken then incr t else incr nt
          done;
          let push h = prefix (i.taken :: h) history_depth in
          Hashtbl.replace local_hist i.pc
            (push (match Hashtbl.find_opt local_hist i.pc with Some h -> h | None -> []));
          ghist := push !ghist
        end)
      instrs;
    fdiv !misses !branches
  in
  [|
    run ~local:false ~per_address:false;  (* GAg *)
    run ~local:true ~per_address:false;  (* PAg *)
    run ~local:false ~per_address:true;  (* GAs *)
    run ~local:true ~per_address:true;  (* PAs *)
  |]

(* ---------------- assembly and comparison ---------------- *)

let vector ?ppm_order instrs =
  let v =
    Array.concat
      [ mix instrs; ilp instrs; regtraffic instrs; working_set instrs; strides instrs;
        ppm ?order:ppm_order instrs ]
  in
  assert (Array.length v = Mica_analysis.Characteristics.count);
  v

type mismatch = { index : int; name : string; got : float; oracle : float; tolerance : float }

let pp_mismatch fmt m =
  Format.fprintf fmt "characteristic %d (%s): analyzer %.12g, oracle %.12g (tolerance %g)"
    (m.index + 1) m.name m.got m.oracle m.tolerance

let tolerances =
  Array.init Mica_analysis.Characteristics.count (fun i ->
      if (i >= 6 && i < 10) || (i >= 10 && i < 19) then 1e-9 else 1e-12)

let compare_vectors ~got ~oracle =
  if Array.length got <> Array.length oracle then
    invalid_arg "Reference.compare_vectors: length mismatch";
  let out = ref [] in
  for i = Array.length got - 1 downto 0 do
    let tol = tolerances.(i) in
    let agree =
      (not (Float.is_nan got.(i)))
      && (not (Float.is_nan oracle.(i)))
      && Float.abs (got.(i) -. oracle.(i)) <= tol +. (tol *. Float.abs oracle.(i))
    in
    if not agree then
      out :=
        {
          index = i;
          name = Mica_analysis.Characteristics.short_names.(i);
          got = got.(i);
          oracle = oracle.(i);
          tolerance = tol;
        }
        :: !out
  done;
  !out

let check ?ppm_order program ~icount =
  let collector, read = Mica_trace.Sink.collect ~limit:icount () in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:collector in
  let instrs = read () in
  let analyzer = Mica_analysis.Analyzer.create ?ppm_order () in
  let sink = Mica_analysis.Analyzer.sink analyzer in
  Mica_trace.Sink.feed_list sink instrs;
  compare_vectors ~got:(Mica_analysis.Analyzer.vector analyzer) ~oracle:(vector ?ppm_order instrs)
