module Colmat = Mica_stats.Colmat
module Distance = Mica_stats.Distance
module Normalize = Mica_stats.Normalize
module Ann = Mica_stats.Ann
module Pool = Mica_util.Pool
module Corpus_gen = Mica_core.Corpus_gen
module Subsetting = Mica_core.Subsetting
module Space = Mica_core.Space
module Dataset = Mica_core.Dataset

type outcome = { law : string; ok : bool; detail : string }

let min_recall = 0.99

let float_arrays_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : float) y -> Int64.bits_of_float x = Int64.bits_of_float y) a b

let first_diff a b =
  let rec go i =
    if i >= Array.length a then "length mismatch"
    else if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then
      Printf.sprintf "first divergence at %d: %.17g vs %.17g" i a.(i) b.(i)
    else go (i + 1)
  in
  if Array.length a <> Array.length b then
    Printf.sprintf "lengths %d vs %d" (Array.length a) (Array.length b)
  else go 0

let blocked_law z_rows z_col =
  let naive = Distance.condensed z_rows in
  let cases = [ (1, 5); (1, 64); (4, 7); (4, 64) ] in
  let bad =
    List.filter_map
      (fun (jobs, block) ->
        let blocked =
          Pool.using ~jobs (fun pool -> Distance.condensed_blocked ~pool ~block z_col)
        in
        if float_arrays_equal naive blocked then None
        else Some (Printf.sprintf "jobs=%d block=%d: %s" jobs block (first_diff naive blocked)))
      cases
  in
  {
    law = "blocked condensed = naive (bit-exact)";
    ok = bad = [];
    detail =
      (if bad = [] then
         Printf.sprintf "%d pairs identical across %d (jobs, block) cases" (Array.length naive)
           (List.length cases)
       else String.concat "; " bad);
  }

let zscore_law raw =
  let row_major = Normalize.zscore raw in
  let columnar = Colmat.zscore (Colmat.of_matrix raw) in
  let ok =
    Array.for_all2 (fun a b -> float_arrays_equal a b) row_major (Colmat.to_matrix columnar)
  in
  {
    law = "columnar zscore = Normalize.zscore (bit-exact)";
    ok;
    detail = (if ok then "all cells identical" else "cells diverge");
  }

let knn_recall_law z_col =
  let n = Colmat.rows z_col in
  let index = Ann.build z_col in
  let k = 10 in
  let budget = max 32 (n / 4) in
  let queries = List.init (min 16 n) Fun.id in
  let recalls =
    List.map
      (fun i ->
        let q = Colmat.row z_col i in
        Ann.recall
          ~exact:(Ann.exact_knn z_col ~k q)
          ~approx:(Ann.knn ~budget index ~k q))
      queries
  in
  let mean = List.fold_left ( +. ) 0.0 recalls /. float_of_int (List.length recalls) in
  {
    law = Printf.sprintf "ann knn recall >= %.2f" min_recall;
    ok = mean >= min_recall;
    detail =
      Printf.sprintf "mean recall %.4f over %d queries (k=%d budget=%d cells=%d)" mean
        (List.length recalls) k budget (Ann.cell_count index);
  }

let budget_monotone_law z_col =
  let n = Colmat.rows z_col in
  let index = Ann.build z_col in
  let k = 10 in
  let budgets = [ k; 2 * k; 4 * k; n ] in
  let queries = List.init (min 12 n) Fun.id in
  let violations =
    List.concat_map
      (fun i ->
        let q = Colmat.row z_col i in
        let exact = Ann.exact_knn z_col ~k q in
        let recalls =
          List.map (fun b -> (b, Ann.recall ~exact ~approx:(Ann.knn ~budget:b index ~k q))) budgets
        in
        let rec pairs = function
          | (b1, r1) :: ((b2, r2) :: _ as rest) ->
              if r1 > r2 then
                Printf.sprintf "query %d: recall %.3f@%d > %.3f@%d" i r1 b1 r2 b2 :: pairs rest
              else pairs rest
          | _ -> []
        in
        pairs recalls)
      queries
  in
  {
    law = "ann recall monotone in candidate budget";
    ok = violations = [];
    detail =
      (if violations = [] then
         Printf.sprintf "non-decreasing across budgets %s on %d queries"
           (String.concat "," (List.map string_of_int budgets))
           (List.length queries)
       else String.concat "; " violations);
  }

let range_exact_law z_col =
  let index = Ann.build z_col in
  let n = Colmat.rows z_col in
  let queries = List.init (min 8 n) Fun.id in
  let bad =
    List.filter_map
      (fun i ->
        let q = Colmat.row z_col i in
        (* a radius that catches a moderate neighborhood: distance to the
           8th exact neighbor *)
        let exact8 = Ann.exact_knn z_col ~k:8 q in
        let radius = (Array.get exact8 (Array.length exact8 - 1)).Ann.distance in
        let exact = Ann.exact_range z_col ~radius q in
        let approx = Ann.range index ~radius q in
        let same =
          Array.length exact = Array.length approx
          && Array.for_all2
               (fun (a : Ann.neighbor) (b : Ann.neighbor) ->
                 a.Ann.index = b.Ann.index
                 && Int64.bits_of_float a.Ann.distance = Int64.bits_of_float b.Ann.distance)
               exact approx
        in
        if same then None
        else Some (Printf.sprintf "query %d: %d exact vs %d indexed" i (Array.length exact)
                     (Array.length approx)))
      queries
  in
  {
    law = "ann range query = exact scan";
    ok = bad = [];
    detail =
      (if bad = [] then Printf.sprintf "identical results on %d queries" (List.length queries)
       else String.concat "; " bad);
  }

let k_center_law corpus z_col =
  let space = Space.of_dataset corpus in
  let k = min 8 (Dataset.rows corpus) in
  let naive = Subsetting.k_center space ~k in
  let seed = naive.Subsetting.chosen.(0) in
  let scalable = Subsetting.k_center_scalable ~seed z_col ~k in
  let ok = naive.Subsetting.chosen = scalable.Subsetting.chosen in
  {
    law = "scalable k-center = naive (medoid seed)";
    ok;
    detail =
      (if ok then
         Printf.sprintf "identical %d-benchmark selection (radius %.6f)" k
           scalable.Subsetting.max_distance
       else
         Printf.sprintf "selections diverge: [%s] vs [%s]"
           (String.concat ";" (Array.to_list (Array.map string_of_int naive.Subsetting.chosen)))
           (String.concat ";"
              (Array.to_list (Array.map string_of_int scalable.Subsetting.chosen))));
  }

let all ?(size = 96) () =
  let corpus = Corpus_gen.generate ~anchors:2 ~icount:10_000 ~size () in
  let raw = corpus.Dataset.data in
  let z_rows = Normalize.zscore raw in
  let z_col = Colmat.zscore (Colmat.of_matrix raw) in
  [
    zscore_law raw;
    blocked_law z_rows z_col;
    knn_recall_law z_col;
    budget_monotone_law z_col;
    range_exact_law z_col;
    k_center_law corpus z_col;
  ]
