(** Metamorphic laws of the characterization pipeline.

    Each law relates two independently computed results that must agree
    bit-exactly; none needs ground truth, so they survive aggressive
    refactors of the hot path:

    - {e seed determinism}: characterizing the same program twice yields
      the identical 47-element vector;
    - {e prefix law}: the first [n] instructions of a longer trace carry
      exactly the characteristics of an [icount = n] run — the generator
      is prefix-closed and no analyzer looks ahead;
    - {e jobs equality}: {!Mica_core.Pipeline.datasets} at [jobs = 1] and
      [jobs = n] produce identical datasets — parallelism must not leak
      into results;
    - {e cache round-trip}: re-reading a dataset through the CSV cache
      reproduces it exactly. *)

type outcome = {
  law : string;
  ok : bool;
  detail : string;  (** what was compared; the first difference on failure *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val seed_determinism : Mica_trace.Program.t -> icount:int -> outcome

val prefix_law : Mica_trace.Program.t -> n:int -> m:int -> outcome
(** Requires [0 < n <= m]: analyzing [icount = n] must equal analyzing
    the first [n] instructions collected from an [icount = m] run. *)

val jobs_equality : ?jobs:int -> Mica_workloads.Workload.t list -> icount:int -> outcome
(** Default [jobs] is the pipeline default (capped core count). *)

val cache_roundtrip : Mica_workloads.Workload.t list -> icount:int -> outcome
(** Runs the pipeline against a fresh temporary cache directory twice and
    compares; the directory is removed afterwards. *)

val all : ?jobs:int -> Mica_workloads.Workload.t list -> icount:int -> outcome list
(** Every law over the given workloads: per-workload seed determinism and
    prefix law, then jobs equality and cache round-trip across the set. *)
