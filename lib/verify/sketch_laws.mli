(** Approximation laws for the fixed-memory sketch analyzers.

    The contract the sketch layer must honour, checked against the exact
    analyzers as oracle:

    - every sketched characteristic is within a documented
      per-characteristic error bound of the exact value (reuse 0.15,
      working sets / strides / PPM / branch 0.05, everything else exact);
    - mean error is non-increasing in the byte budget;
    - vectors and stream snapshots are bit-identical across chunk
      boundaries and repeated runs;
    - the sketched pipeline dataset is invariant under the worker count.

    Errors are [|sketch - exact| / max(|exact|, 1)]. *)

type outcome = { law : string; ok : bool; detail : string }

val epsilon_of_name : string -> float
(** The documented error bound for one characteristic, by its
    [Mica_analysis.Extended.short_names] entry. *)

val accuracy_law : icount:int -> Mica_workloads.Workload.t list -> outcome
val budget_monotone_law : icount:int -> Mica_workloads.Workload.t list -> outcome
val determinism_law : icount:int -> Mica_workloads.Workload.t list -> outcome
val stream_chunk_law : icount:int -> Mica_workloads.Workload.t list -> outcome
val jobs_invariance_law : icount:int -> Mica_workloads.Workload.t list -> outcome

val all :
  ?accuracy_workloads:Mica_workloads.Workload.t list ->
  icount:int ->
  Mica_workloads.Workload.t list ->
  outcome list
(** All five laws.  [accuracy_workloads] (default: [workloads]) lets the
    full suite sweep the accuracy law over the whole registry while the
    heavier determinism and pipeline laws stay on the small set; the
    determinism, stream and jobs laws cap their icount at 20k. *)
