(** A reusable pool of worker domains with deterministic, work-stealing-free
    scheduling.

    [run pool n f] executes [f i] for every [i] in [0, n), split into at
    most [jobs pool] contiguous index blocks — block boundaries depend only
    on [(n, jobs)], never on timing.  Tasks that are pure per index and
    write only to their own result slot therefore produce bit-identical
    results at any [jobs] setting, which is the contract the selection and
    clustering kernels' differential tests pin down.

    A pool with [jobs = 1] never spawns domains, never locks, and runs
    bodies inline, so sequential use has zero overhead.  Worker domains are
    spawned lazily on the first parallel [run] and parked between calls.
    Nested [run] calls on a busy pool execute inline rather than deadlock.

    A pool is a single-client resource: one domain submits work at a time
    (concurrent submissions degrade safely to inline execution). *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool that splits work into at most [jobs]
    blocks.  Raises [Invalid_argument] if [jobs < 1].  No domains are
    spawned until the first parallel [run]. *)

val sequential : t
(** The jobs = 1 pool; always runs inline. *)

val jobs : t -> int

val run : t -> int -> (int -> unit) -> unit
(** [run t n f] calls [f i] for all [0 <= i < n]; each index exactly once.
    Worker exceptions are re-raised in the caller after all blocks finish
    (first one wins), preserving the backtrace from the raising domain. *)

val run_blocks : t -> int -> (int -> int -> int -> unit) -> unit
(** [run_blocks t n f] calls [f block lo hi] for each contiguous block
    [lo..hi] (inclusive) of the static partition of [0, n).  Use when the
    body wants per-block scratch state: [block] indexes are dense from 0
    and at most [jobs t]. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] is [| f 0; ...; f (n-1) |], computed in parallel blocks,
    returned in index order. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool may be used again
    afterwards (workers respawn lazily). *)

type failure = { error : exn; backtrace : string }
(** [backtrace] is captured on the domain that ran the failing attempt
    (backtrace recording is enabled per executing domain), so it is
    populated for parallel runs too, not just [jobs = 1]. *)

type 'a outcome = { result : ('a, failure) result; attempts : int }
(** Per-index result of a supervised run.  [attempts] counts executions of
    the body for that index (1 = first try succeeded); a [Failed] outcome
    has consumed its whole attempt budget. *)

val run_results :
  ?retries:int -> ?backoff:float -> ?seed:int -> t -> int -> (int -> 'a) -> 'a outcome array
(** [run_results t n f] is {!map} with per-task fault containment: the
    body's exceptions are caught and retried up to [retries] extra
    attempts (default 2) with deterministic seeded-jitter exponential
    backoff ([backoff] scales the delay; default [0.] = no sleeping), and
    each index yields an [outcome] instead of aborting the batch — this
    function never raises.  Scheduling uses the same static partition as
    {!run}; with a deterministic body the outcome array is bit-identical
    at any [jobs], and with no fault plan installed the values equal
    [map t n f]'s.  An escaped [Fault.Injected] crash (the
    [pool.crash] injection point) kills and respawns the workers, then a
    sequential recovery pass recomputes the lost indices. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, exception-safe. *)

val default_jobs : unit -> int
(** Pool size for shared infrastructure: the [MICA_JOBS] environment
    variable when set to a positive integer (so CI can pin parallelism),
    otherwise the machine's recommended domain count capped at 8. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with
    [default_jobs ()] workers and shut down at exit. *)

val using : jobs:int -> (t -> 'a) -> 'a
(** [using ~jobs f]: run [f] with a pool of [jobs] workers, reusing
    {!sequential} for [jobs <= 1] and the shared {!default} pool when the
    sizes match, spawning a transient pool otherwise. *)
