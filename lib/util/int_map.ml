(* Open-addressing hash map from non-negative ints to ints.

   The streaming analyzers probe per-pc and per-context tables on every
   branch or memory access; the generic [Hashtbl] spends most of that in
   [caml_hash] and bucket-list walks, and boxes a [Some] per [find_opt].
   This table hashes with one multiply, probes linearly in one flat array,
   and neither allocates nor boxes on any lookup or update.  Results are
   representation-independent — it is an exact map, so swapping it for
   [Hashtbl] changes no analyzer output. *)

type t = {
  mutable keys : int array;  (* -1 marks an empty slot *)
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable shift : int;  (* 62 - log2 capacity: selects the hash's top bits *)
  mutable size : int;
}

(* Fibonacci hashing: the top bits of [key * phi] are well mixed even for
   sequential keys, and [land max_int] clears the sign so the shift always
   lands in [0, capacity). *)
let[@inline] slot_of_key shift key = ((key * 0x2545F4914F6CDD1D) land max_int) lsr shift

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

let create ?(initial = 16) () =
  let cap = ceil_pow2 (max 8 initial) 8 in
  let shift = ref 62 and c = ref cap in
  while !c > 1 do
    decr shift;
    c := !c lsr 1
  done;
  { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1; shift = !shift; size = 0 }

let length t = t.size

(* Linear probe for [key]: returns the slot holding it, or the empty slot
   where it would be inserted.  The load factor stays below 1/2, so an
   empty slot is always reachable and [unsafe_get] stays in bounds under
   the mask. *)
let rec probe keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = -1 then i else probe keys mask key ((i + 1) land mask)

let find t key ~default =
  let i = probe t.keys t.mask key (slot_of_key t.shift key) in
  if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i else default

let mem t key =
  let i = probe t.keys t.mask key (slot_of_key t.shift key) in
  Array.unsafe_get t.keys i = key

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.shift <- t.shift - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe t.keys t.mask k (slot_of_key t.shift k) in
        Array.unsafe_set t.keys j k;
        Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
      end)
    old_keys

(* Insert [key] at empty slot [i], keeping the load factor under 1/2. *)
let insert_at t i key v =
  Array.unsafe_set t.keys i key;
  Array.unsafe_set t.vals i v;
  t.size <- t.size + 1;
  if t.size * 2 > t.mask then grow t

let set t key v =
  if key < 0 then invalid_arg "Int_map.set: negative key";
  let i = probe t.keys t.mask key (slot_of_key t.shift key) in
  if Array.unsafe_get t.keys i = key then Array.unsafe_set t.vals i v else insert_at t i key v

let bump t key delta =
  if key < 0 then invalid_arg "Int_map.bump: negative key";
  let i = probe t.keys t.mask key (slot_of_key t.shift key) in
  if Array.unsafe_get t.keys i = key then
    Array.unsafe_set t.vals i (Array.unsafe_get t.vals i + delta)
  else insert_at t i key delta

let add_if_absent t key =
  if key < 0 then invalid_arg "Int_map.add_if_absent: negative key";
  let i = probe t.keys t.mask key (slot_of_key t.shift key) in
  if Array.unsafe_get t.keys i <> key then insert_at t i key 0

let iter t f =
  Array.iteri (fun i k -> if k >= 0 then f k (Array.unsafe_get t.vals i)) t.keys
