(** Allocation-free open-addressing map from non-negative ints to ints.

    Built for the analyzer hot paths: one multiplicative hash, linear
    probing in a flat array, no allocation and no boxing on any lookup or
    update.  It is an exact map — replacing [Hashtbl] with it changes no
    observable analyzer result.  Keys must be non-negative ([-1] is the
    internal empty marker); the mutating operations raise [Invalid_argument]
    on negative keys. *)

type t

val create : ?initial:int -> unit -> t
(** [create ?initial ()] makes an empty map sized for about [initial]
    entries (rounded up to a power of two; grows automatically). *)

val length : t -> int
(** Number of distinct keys present. *)

val find : t -> int -> default:int -> int
(** [find t key ~default] is the value bound to [key], or [default]. *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** [set t key v] binds [key] to [v], replacing any previous binding. *)

val bump : t -> int -> int -> unit
(** [bump t key delta] adds [delta] to [key]'s value, inserting [delta]
    if the key is absent. *)

val add_if_absent : t -> int -> unit
(** [add_if_absent t key] inserts [key] with value [0] if absent; used as
    a set. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] applies [f key value] to every binding, in no particular
    order. *)
