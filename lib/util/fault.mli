(** Deterministic, seeded fault injection.

    Every recovery path in the characterization stack — worker retry,
    cache quarantine, checkpoint resume, graceful degradation — is
    exercised by tests through this facility rather than trusted.  A fault
    plan names injection {!point}s with a firing probability; whether a
    given [check] fires is a pure function of [(seed, point, task,
    attempt, key)], so runs are bit-reproducible at any parallelism and a
    retried attempt re-rolls the dice instead of hitting the same fault
    forever.

    Disabled (the default) costs one atomic load per [check] and nothing
    is ever raised; the trace generator's per-chunk call sites are the
    hottest users and stay allocation-free either way. *)

type point =
  | Trace_gen  (** trace generation, per delivered chunk *)
  | Analyzer_chunk  (** analyzer fan-in, per consumed chunk *)
  | Cache_read  (** cache / checkpoint file reads *)
  | Cache_write  (** cache / checkpoint atomic commits *)
  | Pool_worker  (** supervised pool task body, per attempt *)
  | Pool_crash  (** worker death: aborts the worker's whole block *)

val all_points : point list
val point_name : point -> string
val point_of_name : string -> point option

exception Injected of string
(** The injected failure.  Carries a human-readable site description
    (point, task, attempt, site key). *)

type t
(** A parsed fault plan: a seed plus per-point rules. *)

val parse : string -> (t, string) result
(** Parse a plan spec: comma-separated [seed=N] and [point=prob] or
    [point=prob\@task] items, e.g. ["seed=7,pool.worker=0.3,cache.read=1@2"].
    [prob] must lie in [0, 1]; [\@task] restricts the rule to one task
    index (for targeting a single workload). *)

val to_string : t -> string
(** Normalized spec; [parse (to_string t)] round-trips. *)

val install : t option -> unit
(** Install (or clear, with [None]) the process-wide plan.  Reads
    [MICA_FAULTS] at startup when set. *)

val installed : unit -> t option

val with_plan : t option -> (unit -> 'a) -> 'a
(** Run with a plan temporarily installed, restoring the previous one
    afterwards (exception-safe).  Test helper; not for concurrent use. *)

val enabled : unit -> bool
(** Cheap guard for call sites that want to skip key computation. *)

val with_context : task:int -> attempt:int -> (unit -> 'a) -> 'a
(** Scope the ambient (task, attempt) identity used by {!check}.  The
    supervised pool wraps each task attempt; sites inside only supply
    their local [key].  Domain-local, exception-safe. *)

val check : point -> key:int -> unit
(** Raise {!Injected} iff the installed plan fires for [(point, ambient
    task, ambient attempt, key)].  No-op when no plan is installed. *)

val fires : point -> key:int -> bool
(** [check] as a query, without raising. *)
