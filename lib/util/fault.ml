type point =
  | Trace_gen
  | Analyzer_chunk
  | Cache_read
  | Cache_write
  | Pool_worker
  | Pool_crash

let all_points =
  [ Trace_gen; Analyzer_chunk; Cache_read; Cache_write; Pool_worker; Pool_crash ]

let point_name = function
  | Trace_gen -> "trace.gen"
  | Analyzer_chunk -> "analyzer.chunk"
  | Cache_read -> "cache.read"
  | Cache_write -> "cache.write"
  | Pool_worker -> "pool.worker"
  | Pool_crash -> "pool.crash"

let point_of_name s =
  List.find_opt (fun p -> String.equal (point_name p) s) all_points

let point_index = function
  | Trace_gen -> 1
  | Analyzer_chunk -> 2
  | Cache_read -> 3
  | Cache_write -> 4
  | Pool_worker -> 5
  | Pool_crash -> 6

exception Injected of string

type rule = { prob : float; only_task : int option }
type t = { seed : int; rules : (point * rule) list }

(* ---- spec parsing: "seed=N,point=prob[@task],..." ---- *)

let parse spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let exception Bad of string in
  try
    if items = [] then raise (Bad "empty fault spec");
    let seed = ref 0 and rules = ref [] in
    List.iter
      (fun item ->
        match String.index_opt item '=' with
        | None -> raise (Bad (Printf.sprintf "%S: expected key=value" item))
        | Some eq ->
          let key = String.trim (String.sub item 0 eq) in
          let value =
            String.trim (String.sub item (eq + 1) (String.length item - eq - 1))
          in
          if String.equal key "seed" then
            match int_of_string_opt value with
            | Some s -> seed := s
            | None -> raise (Bad (Printf.sprintf "seed=%S: not an integer" value))
          else begin
            let point =
              match point_of_name key with
              | Some p -> p
              | None ->
                raise
                  (Bad
                     (Printf.sprintf "unknown injection point %S (one of %s)" key
                        (String.concat ", " (List.map point_name all_points))))
            in
            if List.mem_assoc point !rules then
              raise (Bad (Printf.sprintf "duplicate rule for %s" key));
            let prob_str, only_task =
              match String.index_opt value '@' with
              | None -> (value, None)
              | Some at ->
                let task =
                  String.sub value (at + 1) (String.length value - at - 1)
                in
                (match int_of_string_opt task with
                | Some task when task >= 0 ->
                  (String.sub value 0 at, Some task)
                | _ ->
                  raise
                    (Bad (Printf.sprintf "%s=%s: bad @task index" key value)))
            in
            match float_of_string_opt prob_str with
            | Some prob when Float.is_finite prob && prob >= 0.0 && prob <= 1.0
              ->
              rules := (point, { prob; only_task }) :: !rules
            | _ ->
              raise
                (Bad
                   (Printf.sprintf "%s=%S: probability must lie in [0, 1]" key
                      prob_str))
          end)
      items;
    if !rules = [] then raise (Bad "no injection points given");
    Ok { seed = !seed; rules = List.rev !rules }
  with Bad msg -> Error msg

let to_string t =
  let rule (p, { prob; only_task }) =
    match only_task with
    | None -> Printf.sprintf "%s=%g" (point_name p) prob
    | Some task -> Printf.sprintf "%s=%g@%d" (point_name p) prob task
  in
  String.concat "," (Printf.sprintf "seed=%d" t.seed :: List.map rule t.rules)

(* ---- installed plan ---- *)

let current : t option Atomic.t = Atomic.make None
let install plan = Atomic.set current plan
let installed () = Atomic.get current
let enabled () = Atomic.get current <> None

let with_plan plan f =
  let prev = Atomic.get current in
  Atomic.set current plan;
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

(* ---- ambient (task, attempt) identity, per domain ---- *)

let context_key : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> (0, 0))

let with_context ~task ~attempt f =
  let prev = Domain.DLS.get context_key in
  Domain.DLS.set context_key (task, attempt);
  Fun.protect ~finally:(fun () -> Domain.DLS.set context_key prev) f

(* ---- firing decision: splitmix64 over (seed, point, task, attempt, key) ---- *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let golden = 0x9E3779B97F4A7C15L

let feed h x = mix64 (Int64.add (Int64.mul h golden) (Int64.of_int x))

let uniform t point ~task ~attempt ~key =
  let h = feed (feed (feed (feed (feed 0x5DEECE66DL t.seed) (point_index point)) task) attempt) key in
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let fires_with t point ~task ~attempt ~key =
  match List.assoc_opt point t.rules with
  | None -> false
  | Some { prob; only_task } ->
    (match only_task with
    | Some only when only <> task -> false
    | _ -> prob > 0.0 && uniform t point ~task ~attempt ~key < prob)

let fires point ~key =
  match Atomic.get current with
  | None -> false
  | Some t ->
    let task, attempt = Domain.DLS.get context_key in
    fires_with t point ~task ~attempt ~key

let m_injected = Mica_obs.Obs.counter "fault.injected"

let check point ~key =
  match Atomic.get current with
  | None -> ()
  | Some t ->
    let task, attempt = Domain.DLS.get context_key in
    if fires_with t point ~task ~attempt ~key then begin
      Mica_obs.Obs.incr m_injected;
      raise
        (Injected
           (Printf.sprintf "injected fault at %s (task %d, attempt %d, site %d)"
              (point_name point) task attempt key))
    end

(* MICA_FAULTS makes the plan ambient for whole-process runs (CI, CLI). *)
let () =
  match Sys.getenv_opt "MICA_FAULTS" with
  | None | Some "" -> ()
  | Some spec ->
    (match parse spec with
    | Ok plan -> install (Some plan)
    | Error msg -> Printf.eprintf "mica: ignoring bad MICA_FAULTS: %s\n%!" msg)
