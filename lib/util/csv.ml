let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let write_row oc fields =
  output_string oc (String.concat "," (List.map escape_field fields));
  output_char oc '\n'

let write_rows oc rows = List.iter (write_row oc) rows

let to_file path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_rows oc rows)

let parse_line line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then flush_field () (* unterminated quote: be lenient *)
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rows = ref [] in
      (try
         while true do
           let line = input_line ic in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = '\r' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           let stripped = String.trim line in
           if stripped <> "" && stripped.[0] <> '#' then rows := parse_line line :: !rows
         done
       with End_of_file -> ());
      List.rev !rows)
