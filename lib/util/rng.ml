(* xoshiro256** with SplitMix64 seeding.  See Blackman & Vigna,
   "Scrambled linear pseudorandom number generators".

   The 256-bit state lives in eight untagged [int] fields, each holding one
   32-bit half of a state word.  Plain [int64] state would box a fresh
   Int64 for every field store and most intermediates on the non-flambda
   compiler, which puts ~15 minor words on every draw — and the trace
   generator draws on the hot path.  The step function only ever multiplies
   by the constants 5 and 9, so full 64-bit arithmetic reduces to
   shift-and-add on (hi, lo) pairs and the split-word form is bit-exact
   with the reference implementation (asserted by the pinned golden
   vectors in the test suite). *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* 64-bit output of the last step, as (hi, lo); scratch fields so [step]
     can hand both halves back without allocating a pair *)
  mutable rh : int;
  mutable rl : int;
}

let mask32 = 0xFFFFFFFF

(* SplitMix64 step: used only for seeding and [split], so boxed [int64]
   arithmetic is fine here. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hi64 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo64 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  {
    s0h = hi64 s0;
    s0l = lo64 s0;
    s1h = hi64 s1;
    s1l = lo64 s1;
    s2h = hi64 s2;
    s2l = lo64 s2;
    s3h = hi64 s3;
    s3l = lo64 s3;
    rh = 0;
    rl = 0;
  }

let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string s = create ~seed:(hash_string s)

(* One xoshiro256** step on split words.  64-bit ops on (hi, lo):
   - xor and shifts act componentwise with carry across the halves;
   - rotl by k < 32 moves each half's top k bits into the other's bottom;
   - rotl by 32 + k swaps the halves first;
   - mul by a small constant c is exact: lo * c fits far below 2^62, its
     bits above 32 carry into hi, and truncation mod 2^64 is the mask. *)
let step t =
  let s1h = t.s1h and s1l = t.s1l in
  (* m = s1 * 5 *)
  let p = s1l * 5 in
  let ml = p land mask32 in
  let mh = ((s1h * 5) + (p lsr 32)) land mask32 in
  (* r = rotl m 7 *)
  let rh = ((mh lsl 7) lor (ml lsr 25)) land mask32 in
  let rl = ((ml lsl 7) lor (mh lsr 25)) land mask32 in
  (* result = r * 9 *)
  let q = rl * 9 in
  t.rl <- q land mask32;
  t.rh <- ((rh * 9) + (q lsr 32)) land mask32;
  (* tmp = s1 lsl 17 *)
  let th = ((s1h lsl 17) lor (s1l lsr 15)) land mask32 in
  let tl = (s1l lsl 17) land mask32 in
  let s2h = t.s2h lxor t.s0h and s2l = t.s2l lxor t.s0l in
  let s3h = t.s3h lxor s1h and s3l = t.s3l lxor s1l in
  let s1h = s1h lxor s2h and s1l = s1l lxor s2l in
  let s0h = t.s0h lxor s3h and s0l = t.s0l lxor s3l in
  let s2h = s2h lxor th and s2l = s2l lxor tl in
  (* s3 = rotl s3 45 = rotl (swapped halves) 13 *)
  let n3h = ((s3l lsl 13) lor (s3h lsr 19)) land mask32 in
  let n3l = ((s3h lsl 13) lor (s3l lsr 19)) land mask32 in
  t.s3h <- n3h;
  t.s3l <- n3l;
  t.s0h <- s0h;
  t.s0l <- s0l;
  t.s1h <- s1h;
  t.s1l <- s1l;
  t.s2h <- s2h;
  t.s2l <- s2l

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.rh) 32) (Int64.of_int t.rl)

let split t = create ~seed:(bits64 t)

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    rh = t.rh;
    rl = t.rl;
  }

(* Non-negative 62-bit int from the high bits. *)
let bits_int t =
  step t;
  (t.rh lsl 30) lor (t.rl lsr 2)

let rec int_reject t n bound =
  let v = bits_int t in
  if v < bound then v mod n else int_reject t n bound

let int t n =
  assert (n > 0);
  (* Rejection to avoid modulo bias. *)
  let bound = 0x3FFF_FFFF_FFFF_FFFF / n * n in
  int_reject t n bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform mantissa bits: bits64 lsr 11, i.e. rh:21 over rl:21..31. *)
  step t;
  let v = float_of_int ((t.rh lsl 21) lor (t.rl lsr 11)) in
  x *. (v *. 0x1.0p-53)

let bool t =
  step t;
  t.rh land 0x80000000 <> 0

let bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let geometric t ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = 1.0 -. float t 1.0 in
    (* inverse CDF; [u] in (0,1] so log is finite *)
    int_of_float (Float.of_int 0 +. floor (log u /. log (1. -. p)))

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  -.mean *. log (nonzero ())

(* Zipf sampling by rejection (Devroye); exact for s > 0, fast for small n too. *)
let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else begin
    let nf = float_of_int n in
    if abs_float (s -. 1.0) < 1e-9 then begin
      (* harmonic case: invert H(x) = ln(1+x) approximately, then reject *)
      let hn = log (nf +. 1.0) in
      let rec go () =
        let u = float t 1.0 in
        let x = exp (u *. hn) -. 1.0 in
        let k = int_of_float x in
        if k < n then k else go ()
      in
      go ()
    end
    else begin
      let one_minus_s = 1.0 -. s in
      (* CDF of the continuous envelope over [0, n] *)
      let hx x = ((x +. 1.0) ** one_minus_s -. 1.0) /. one_minus_s in
      let hn = hx nf in
      let rec go () =
        let u = float t 1.0 *. hn in
        let x = ((u *. one_minus_s) +. 1.0) ** (1.0 /. one_minus_s) -. 1.0 in
        let k = int_of_float x in
        if k >= 0 && k < n then begin
          (* acceptance: ratio of true pmf to envelope slice; the envelope is
             within a constant factor so accept with ratio test *)
          let pk = (float_of_int k +. 1.0) ** -.s in
          let env = hx (float_of_int k +. 1.0) -. hx (float_of_int k) in
          if float t 1.0 *. env <= pk then k else go ()
        end
        else go ()
      in
      go ()
    end
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let rec pick_weighted_from choices r i acc =
  if i = Array.length choices - 1 then snd choices.(i)
  else
    let w, x = choices.(i) in
    let acc = acc +. w in
    if r < acc then x else pick_weighted_from choices r (i + 1) acc

let pick_weighted t choices =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  assert (total > 0.);
  let r = float t total in
  pick_weighted_from choices r 0 0.0
