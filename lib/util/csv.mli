(** Minimal CSV reading and writing.

    Handles the subset of CSV the library emits: comma separation, optional
    double-quoting when a field contains a comma, quote or newline, quotes
    escaped by doubling.  Sufficient for round-tripping our own datasets. *)

val escape_field : string -> string
(** Quote a field if needed. *)

val write_row : out_channel -> string list -> unit
val write_rows : out_channel -> string list list -> unit

val to_file : string -> string list list -> unit
(** [to_file path rows] writes all rows to [path]. *)

val parse_line : string -> string list
(** Parse one physical line (no embedded newlines supported on input). *)

val of_file : string -> string list list
(** Read all rows of [path], skipping blank lines and [#] comment lines
    (such as the cache tier's checksum headers). *)
