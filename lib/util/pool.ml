(* A reusable pool of worker domains with static index partitioning.

   Design constraints, in order:

   1. Determinism.  There is no work stealing and no dynamic queue: [run]
      splits [0, n) into at most [jobs] contiguous blocks, block [b] is
      always the same index range for a given (n, jobs), and every task
      writes only to its own slot of the caller's result structure.  For
      tasks that are pure per index the observable result is therefore
      identical at any [jobs] — including 1 — which is the contract the
      selection/clustering kernels and their differential tests rely on.

   2. Zero cost when sequential.  [jobs = 1] (the common case on small
      machines) never spawns a domain, never takes a lock, and runs the
      body inline, so threading a pool through a hot path costs nothing
      when parallelism is off.

   3. Reuse.  Worker domains are spawned once (lazily, on first parallel
      [run]) and parked on a condition variable between calls, so every
      selection-stage fan-out does not pay domain spawn/join.

   Nested calls: a body that itself calls [run] on the same pool (for
   example BIC's k-sweep calling k-means restarts) runs inline — the
   [active] flag makes the inner call sequential instead of deadlocking on
   the busy workers.  This is also deterministic: inner tasks are pure per
   index either way. *)

type state = {
  mutex : Mutex.t;
  work : Condition.t;  (* workers park here between epochs *)
  finished : Condition.t;  (* the submitter parks here until pending = 0 *)
  mutable epoch : int;
  mutable body : int -> unit;  (* worker index -> run that worker's block *)
  mutable pending : int;
  mutable stop : bool;
  mutable error : exn option;  (* first worker exception, re-raised by [run] *)
}

type t = {
  jobs : int;
  state : state;
  mutable domains : unit Domain.t array;  (* spawned on first parallel run *)
  active : bool Atomic.t;
}

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    jobs;
    state =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        body = ignore;
        pending = 0;
        stop = false;
        error = None;
      };
    domains = [||];
    active = Atomic.make false;
  }

let sequential = create ~jobs:1
let jobs t = t.jobs

(* [epoch0] is the state's epoch when the spawn was decided: only the
   submitter advances the epoch, and it does so after spawning, so a fresh
   worker must ignore every epoch up to [epoch0] (on respawn after
   [shutdown] the counter is already past 0). *)
let worker st ~epoch0 w =
  let last = ref epoch0 in
  let running = ref true in
  while !running do
    Mutex.lock st.mutex;
    while (not st.stop) && st.epoch = !last do
      Condition.wait st.work st.mutex
    done;
    if st.stop then begin
      Mutex.unlock st.mutex;
      running := false
    end
    else begin
      last := st.epoch;
      let body = st.body in
      Mutex.unlock st.mutex;
      let err = try body w; None with e -> Some e in
      Mutex.lock st.mutex;
      (match err with Some e when st.error = None -> st.error <- Some e | _ -> ());
      st.pending <- st.pending - 1;
      if st.pending = 0 then Condition.signal st.finished;
      Mutex.unlock st.mutex
    end
  done

let ensure_spawned t =
  if Array.length t.domains = 0 && t.jobs > 1 then begin
    let epoch0 = t.state.epoch in
    t.domains <-
      Array.init (t.jobs - 1) (fun i -> Domain.spawn (fun () -> worker t.state ~epoch0 (i + 1)))
  end

(* Contiguous block of worker [w] among [blocks] over [0, n). *)
let block_range ~n ~blocks w = (w * n / blocks, ((w + 1) * n / blocks) - 1)

let run t n f =
  if n > 0 then begin
    if t.jobs = 1 || n = 1 || not (Atomic.compare_and_set t.active false true) then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      ensure_spawned t;
      let blocks = min t.jobs n in
      let st = t.state in
      Mutex.lock st.mutex;
      st.body <-
        (fun w ->
          if w < blocks then begin
            let lo, hi = block_range ~n ~blocks w in
            for i = lo to hi do
              f i
            done
          end);
      st.pending <- Array.length t.domains;
      st.error <- None;
      st.epoch <- st.epoch + 1;
      Condition.broadcast st.work;
      Mutex.unlock st.mutex;
      let my_err =
        try
          let lo, hi = block_range ~n ~blocks 0 in
          for i = lo to hi do
            f i
          done;
          None
        with e -> Some e
      in
      Mutex.lock st.mutex;
      while st.pending > 0 do
        Condition.wait st.finished st.mutex
      done;
      let worker_err = st.error in
      st.error <- None;
      Mutex.unlock st.mutex;
      Atomic.set t.active false;
      match (my_err, worker_err) with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end
  end

let run_blocks t n f =
  if n > 0 then begin
    let blocks = if t.jobs = 1 then 1 else min t.jobs n in
    if blocks = 1 then f 0 0 (n - 1)
    else
      run t blocks (fun b ->
          let lo, hi = block_range ~n ~blocks b in
          f b lo hi)
  end

let map t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let shutdown t =
  if Array.length t.domains > 0 then begin
    let st = t.state in
    Mutex.lock st.mutex;
    st.stop <- true;
    Condition.broadcast st.work;
    Mutex.unlock st.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    st.stop <- false
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_parallelism () = max 1 (min 8 (Domain.recommended_domain_count ()))

let default_jobs () =
  match Sys.getenv_opt "MICA_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> default_parallelism ())
  | None -> default_parallelism ()

let default_pool = ref None

let default () =
  match !default_pool with
  | Some t -> t
  | None ->
    let t = create ~jobs:(default_jobs ()) in
    default_pool := Some t;
    at_exit (fun () -> shutdown t);
    t

let using ~jobs f =
  let jobs = max 1 jobs in
  if jobs = 1 then f sequential
  else begin
    let d = default () in
    if d.jobs = jobs then f d else with_pool ~jobs f
  end
