(* A reusable pool of worker domains with static index partitioning.

   Design constraints, in order:

   1. Determinism.  There is no work stealing and no dynamic queue: [run]
      splits [0, n) into at most [jobs] contiguous blocks, block [b] is
      always the same index range for a given (n, jobs), and every task
      writes only to its own slot of the caller's result structure.  For
      tasks that are pure per index the observable result is therefore
      identical at any [jobs] — including 1 — which is the contract the
      selection/clustering kernels and their differential tests rely on.

   2. Zero cost when sequential.  [jobs = 1] (the common case on small
      machines) never spawns a domain, never takes a lock, and runs the
      body inline, so threading a pool through a hot path costs nothing
      when parallelism is off.

   3. Reuse.  Worker domains are spawned once (lazily, on first parallel
      [run]) and parked on a condition variable between calls, so every
      selection-stage fan-out does not pay domain spawn/join.

   Nested calls: a body that itself calls [run] on the same pool (for
   example BIC's k-sweep calling k-means restarts) runs inline — the
   [active] flag makes the inner call sequential instead of deadlocking on
   the busy workers.  This is also deterministic: inner tasks are pure per
   index either way. *)

module Obs = Mica_obs.Obs

(* Observability (inert when disabled; see DESIGN.md §11).  [pool.block]
   span time summed across domains over wall time gives worker
   utilization; [pool.pending] is the queue-depth gauge. *)
let m_runs = Obs.counter "pool.runs"
let m_tasks = Obs.counter "pool.tasks"
let m_parallel_runs = Obs.counter "pool.parallel_runs"
let m_retries = Obs.counter "pool.retries"
let m_crash_recoveries = Obs.counter "pool.crash_recoveries"
let m_pending = Obs.gauge "pool.pending"

type state = {
  mutex : Mutex.t;
  work : Condition.t;  (* workers park here between epochs *)
  finished : Condition.t;  (* the submitter parks here until pending = 0 *)
  mutable epoch : int;
  mutable body : int -> unit;  (* worker index -> run that worker's block *)
  mutable pending : int;
  mutable stop : bool;
  (* First worker exception, re-raised by [run] with its original
     backtrace.  The raw backtrace must be captured on the domain where
     the exception was raised — backtrace buffers are per-domain. *)
  mutable error : (exn * Printexc.raw_backtrace) option;
}

type t = {
  jobs : int;
  state : state;
  mutable domains : unit Domain.t array;  (* spawned on first parallel run *)
  active : bool Atomic.t;
}

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    jobs;
    state =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        body = ignore;
        pending = 0;
        stop = false;
        error = None;
      };
    domains = [||];
    active = Atomic.make false;
  }

let sequential = create ~jobs:1
let jobs t = t.jobs

(* [epoch0] is the state's epoch when the spawn was decided: only the
   submitter advances the epoch, and it does so after spawning, so a fresh
   worker must ignore every epoch up to [epoch0] (on respawn after
   [shutdown] the counter is already past 0). *)
let worker st ~epoch0 w =
  (* [record_backtrace] is per-domain state: without this, exceptions
     raised on a worker carry empty backtraces even when the caller
     enabled recording. *)
  Printexc.record_backtrace true;
  let last = ref epoch0 in
  let running = ref true in
  while !running do
    Mutex.lock st.mutex;
    while (not st.stop) && st.epoch = !last do
      Condition.wait st.work st.mutex
    done;
    if st.stop then begin
      Mutex.unlock st.mutex;
      running := false
    end
    else begin
      last := st.epoch;
      let body = st.body in
      Mutex.unlock st.mutex;
      let err =
        try body w; None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock st.mutex;
      (match (err, st.error) with
      | Some e, None -> st.error <- Some e
      | _ -> ());
      st.pending <- st.pending - 1;
      if st.pending = 0 then Condition.signal st.finished;
      Mutex.unlock st.mutex
    end
  done

let ensure_spawned t =
  if Array.length t.domains = 0 && t.jobs > 1 then begin
    let epoch0 = t.state.epoch in
    t.domains <-
      Array.init (t.jobs - 1) (fun i -> Domain.spawn (fun () -> worker t.state ~epoch0 (i + 1)))
  end

(* Contiguous block of worker [w] among [blocks] over [0, n). *)
let block_range ~n ~blocks w = (w * n / blocks, ((w + 1) * n / blocks) - 1)

let run t n f =
  if n > 0 then begin
    Obs.incr m_runs;
    Obs.add m_tasks (float_of_int n);
    if t.jobs = 1 || n = 1 || not (Atomic.compare_and_set t.active false true) then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      Obs.incr m_parallel_runs;
      Obs.set m_pending (float_of_int n);
      ensure_spawned t;
      let blocks = min t.jobs n in
      let st = t.state in
      Mutex.lock st.mutex;
      st.body <-
        (fun w ->
          if w < blocks then
            Obs.span "pool.block" (fun () ->
                let lo, hi = block_range ~n ~blocks w in
                for i = lo to hi do
                  f i
                done));
      st.pending <- Array.length t.domains;
      st.error <- None;
      st.epoch <- st.epoch + 1;
      Condition.broadcast st.work;
      Mutex.unlock st.mutex;
      let my_err =
        try
          Obs.span "pool.block" (fun () ->
              let lo, hi = block_range ~n ~blocks 0 in
              for i = lo to hi do
                f i
              done);
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock st.mutex;
      while st.pending > 0 do
        Condition.wait st.finished st.mutex
      done;
      let worker_err = st.error in
      st.error <- None;
      Mutex.unlock st.mutex;
      Atomic.set t.active false;
      Obs.set m_pending 0.0;
      match (my_err, worker_err) with
      | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None, None -> ()
    end
  end

let run_blocks t n f =
  if n > 0 then begin
    let blocks = if t.jobs = 1 then 1 else min t.jobs n in
    if blocks = 1 then f 0 0 (n - 1)
    else
      run t blocks (fun b ->
          let lo, hi = block_range ~n ~blocks b in
          f b lo hi)
  end

let map t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let shutdown t =
  if Array.length t.domains > 0 then begin
    let st = t.state in
    Mutex.lock st.mutex;
    st.stop <- true;
    Condition.broadcast st.work;
    Mutex.unlock st.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    st.stop <- false
  end

(* ---- supervised execution ----

   [run_results] is [map] with a containment boundary per task: the body's
   exceptions are caught, retried up to a budget, and returned as
   per-index outcomes instead of aborting the whole batch.  Scheduling is
   the same static partition as [run], and the retry loop is driven per
   index, so with a deterministic body (and deterministic faults — see
   [Fault]) the outcome array is bit-identical at any [jobs].

   A [Fault.Pool_crash] that escapes the per-task supervision models a
   worker domain dying mid-block: [run] re-raises it after the epoch
   drains, we discard the current workers ([shutdown]; they respawn
   lazily), and a sequential recovery pass recomputes every index the lost
   workers never delivered. *)

type failure = { error : exn; backtrace : string }
type 'a outcome = { result : ('a, failure) result; attempts : int }

(* Deterministic jittered exponential backoff; [backoff = 0] sleeps not at
   all (the test-suite setting). *)
let backoff_delay ~seed ~task ~attempt ~backoff =
  if backoff <= 0.0 then 0.0
  else begin
    let h = ref (seed lxor (task * 0x9E3779B9) lxor (attempt * 0x85EBCA6B)) in
    h := !h * 0x27D4EB2F;
    let u = float_of_int (!h land 0xFFFF) /. 65536.0 in
    let scale = float_of_int (1 lsl min 6 (attempt - 1)) in
    Float.min 1.0 (backoff *. scale *. (0.5 +. u))
  end

let run_results ?(retries = 2) ?(backoff = 0.0) ?(seed = 0) t n f =
  if n = 0 then [||]
  else begin
    Printexc.record_backtrace true;
    let attempt_task i =
      (* Runs on whichever domain owns index [i]'s block; recording is
         per-domain, so enable it here rather than only on the caller. *)
      Printexc.record_backtrace true;
      let rec go attempt =
        match
          Fault.with_context ~task:i ~attempt (fun () ->
              Fault.check Fault.Pool_worker ~key:0;
              f i)
        with
        | v -> { result = Ok v; attempts = attempt }
        | exception e ->
          let backtrace = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
          if attempt > retries then
            { result = Error { error = e; backtrace }; attempts = attempt }
          else begin
            Obs.incr m_retries;
            let d = backoff_delay ~seed ~task:i ~attempt ~backoff in
            if d > 0.0 then Unix.sleepf d;
            go (attempt + 1)
          end
      in
      go 1
    in
    let out = Array.make n None in
    (try
       run t n (fun i ->
           Fault.with_context ~task:i ~attempt:0 (fun () ->
               Fault.check Fault.Pool_crash ~key:0);
           out.(i) <- Some (attempt_task i))
     with _crash ->
       (* A worker died mid-block.  Discard the current domains (they
          respawn lazily on the next parallel run) and fall through to the
          recovery pass below. *)
       Obs.incr m_crash_recoveries;
       shutdown t);
    Array.mapi (fun i o -> match o with Some o -> o | None -> attempt_task i) out
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_parallelism () = max 1 (min 8 (Domain.recommended_domain_count ()))

let default_jobs () =
  match Sys.getenv_opt "MICA_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> default_parallelism ())
  | None -> default_parallelism ()

let default_pool = ref None

let default () =
  match !default_pool with
  | Some t -> t
  | None ->
    let t = create ~jobs:(default_jobs ()) in
    default_pool := Some t;
    at_exit (fun () -> shutdown t);
    t

let using ~jobs f =
  let jobs = max 1 jobs in
  if jobs = 1 then f sequential
  else begin
    let d = default () in
    if d.jobs = jobs then f d else with_pool ~jobs f
  end
