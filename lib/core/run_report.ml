type status =
  | Computed of { attempts : int }
  | Cached
  | Resumed
  | Failed of { attempts : int; error : string; backtrace : string }

type timing = { elapsed_s : float; minor_words : float }
type entry = { id : string; status : status; timing : timing option }
type t = { entries : entry list }

let create entries = { entries }
let entries t = t.entries
let total t = List.length t.entries

let count pred t =
  List.fold_left (fun n e -> if pred e.status then n + 1 else n) 0 t.entries

let computed = count (function Computed _ -> true | _ -> false)
let cached = count (function Cached -> true | _ -> false)
let resumed = count (function Resumed -> true | _ -> false)

let retried =
  count (function
    | Computed { attempts } | Failed { attempts; _ } -> attempts > 1
    | _ -> false)

let failures t =
  List.filter (fun e -> match e.status with Failed _ -> true | _ -> false) t.entries

let timings t =
  List.filter_map (fun e -> Option.map (fun tm -> (e.id, tm)) e.timing) t.entries

let all_ok t = failures t = []

let summary t =
  let retried = retried t in
  Printf.sprintf "%d computed%s, %d cached, %d resumed, %d failed" (computed t)
    (if retried > 0 then Printf.sprintf " (%d retried)" retried else "")
    (cached t) (resumed t)
    (List.length (failures t))

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b (summary t);
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      match e.status with
      | Failed { attempts; error; backtrace } ->
        Buffer.add_string b
          (Printf.sprintf "FAILED %s after %d attempt%s: %s\n" e.id attempts
             (if attempts = 1 then "" else "s")
             error);
        let backtrace = String.trim backtrace in
        if backtrace <> "" then
          String.split_on_char '\n' backtrace
          |> List.iter (fun line ->
                 Buffer.add_string b "  ";
                 Buffer.add_string b line;
                 Buffer.add_char b '\n')
      | _ -> ())
    t.entries;
  Buffer.contents b
