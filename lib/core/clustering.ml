module Stats = Mica_stats

type t = {
  dataset : Dataset.t;
  k : int;
  assignments : int array;
  result : Stats.Kmeans.result;
  bic_sweep : (int * float) array;
}

let cluster ?(k_min = 1) ?(k_max = 70) ?(bic_frac = 0.9) ?(prefer = Stats.Bic.Peak)
    ?(restarts = 3) ?(seed = 0x5EEDL) ?(pool = Mica_util.Pool.sequential) dataset =
  let normalized = Stats.Normalize.zscore dataset.Dataset.data in
  let rng = Mica_util.Rng.create ~seed in
  let sweep =
    Stats.Bic.sweep ~k_min ~k_max ~restarts ~pool ~features:dataset.Dataset.features ~rng
      normalized
  in
  let k, result, _score = Stats.Bic.choose ~frac:bic_frac ~prefer sweep in
  {
    dataset;
    k;
    assignments = result.Stats.Kmeans.assignments;
    result;
    bic_sweep = Array.map (fun (k, _, s) -> (k, s)) sweep;
  }

let members t c =
  let out = ref [] in
  Array.iteri
    (fun i a -> if a = c then out := t.dataset.Dataset.names.(i) :: !out)
    t.assignments;
  Array.of_list (List.rev !out)

let cluster_of t name =
  Option.map (fun i -> t.assignments.(i)) (Dataset.row_index t.dataset name)

let sorted_clusters t =
  let clusters = List.init t.k (fun c -> (c, members t c)) in
  let clusters = List.filter (fun (_, m) -> Array.length m > 0) clusters in
  List.sort
    (fun (c1, m1) (c2, m2) ->
      match compare (Array.length m2) (Array.length m1) with
      | 0 -> compare c1 c2
      | d -> d)
    clusters
