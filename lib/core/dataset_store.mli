(** Binary columnar on-disk datasets, mmap-loadable in O(1).

    The CSV cache behind {!Dataset.of_csv} re-parses every float on every
    load — seconds of startup at 10k x 47.  This store writes the same
    labeled matrix as a flat binary file whose data section is exactly
    the {!Mica_stats.Colmat} layout (column-major float64, host byte
    order), so {!load} maps it with [Unix.map_file] and returns without
    touching the floats at all.

    Layout (all integers little-endian u32 unless noted):

    {v
    offset  0  magic "MICD"
            4  format version (u8, currently 1)
            5  endianness tag (u8: 1 little, 2 big) — must match the host
            6  reserved (2 bytes, zero)
            8  metadata blob length
           12  rows
           16  cols
           20  data offset (8-byte aligned)
           24  MD5 of the metadata blob (16 raw bytes)
           40  MD5 of the data section (16 raw bytes)
           56  metadata blob: length-prefixed row names, then feature names
    data offset  rows * cols float64 cells, column-major
    v}

    Integrity follows the run-directory discipline ({!Mica_run.Run_io}):
    files are committed atomically (temp + rename), the metadata digest
    and the [data offset + 8 * rows * cols] size arithmetic are verified
    on every {!load} (so header tampering and truncation surface as
    [Error], never as garbage data), while the full data digest is only
    checked by the explicit {!verify} — keeping {!load} O(1) in the data
    size.  No function here raises on malformed input. *)

type t = {
  names : string array;  (** row labels, as in {!Dataset.t} *)
  features : string array;  (** column labels *)
  data : Mica_stats.Colmat.t;  (** aliases the file mapping after {!load} *)
}

val write : string -> Dataset.t -> unit
(** Atomically commit a dataset to [path].  Raises [Sys_error] only on
    OS-level write failure (as every writer in the tree does). *)

val load : string -> (t, Mica_run.Run_io.read_error) result
(** Map [path].  O(1) in the data size: validates magic, version,
    endianness, dimension/size arithmetic and the metadata digest, then
    mmaps the data section without reading it.  The mapping is private
    (copy-on-write): mutating the returned matrix never touches the
    file. *)

val verify : string -> (unit, Mica_run.Run_io.read_error) result
(** Full check of [path]: everything {!load} validates, plus the MD5 of
    the data section. *)

val to_dataset : t -> Dataset.t
(** Materialize as a row-major labeled matrix (copies the data). *)

val of_dataset : Dataset.t -> t
(** In-memory columnar view of a dataset (copies the data). *)

val import_csv : csv:string -> string -> (unit, string) result
(** [import_csv ~csv path] converts a {!Dataset.to_csv} file to the
    binary format.  Lossless: {!Dataset} CSV prints floats with [%.17g],
    so CSV -> binary -> CSV round-trips bit-exactly. *)

val export_csv : t -> string -> unit
(** Inverse of {!import_csv}. *)
