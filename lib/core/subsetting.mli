(** Benchmark-suite subsetting.

    A direct application of the workload space (Eeckhout et al.,
    "Exploiting program microarchitecture independent characteristics and
    phase behavior for reduced benchmark suite simulation"; Vandierendonck
    & De Bosschere, "Experiments with subsetting benchmark suites"): pick
    K benchmarks such that every other benchmark is close to a chosen one,
    then simulate only those K.

    Uses the greedy k-center heuristic (2-approximation): start from the
    medoid, repeatedly add the benchmark farthest from the current
    selection. *)

type t = {
  chosen : int array;  (** row indices of the selected benchmarks, selection order *)
  representative_of : int array;  (** per row: index (into rows) of its nearest chosen *)
  max_distance : float;  (** covering radius *)
  mean_distance : float;  (** average distance to the assigned representative *)
}

val k_center : Space.t -> k:int -> t
(** Deterministic.  Requires [1 <= k <= n]. *)

val k_center_scalable : ?seed:int -> Mica_stats.Colmat.t -> k:int -> t
(** Greedy k-center directly over a (pre-normalized, e.g.
    {!Mica_stats.Colmat.zscore}d) columnar matrix, computing the O(k n)
    needed distances on demand instead of materializing the O(n^2)
    condensed matrix a {!Space.t} carries — this is what makes subsetting
    a 10k-row corpus tractable.  [seed] is the starting row; by default
    the row nearest the column-mean centroid (an O(n d) stand-in for the
    O(n^2 d) medoid {!k_center} starts from).  With [seed] set to that
    medoid, the selection matches {!k_center} on the same normalized data
    exactly. *)

val sweep : Space.t -> ks:int list -> (int * float) list
(** Covering radius per subset size — the curve that tells you how many
    benchmarks a reduced suite needs. *)

val render : Space.t -> t -> string
(** Chosen benchmarks with the cluster of workloads each one represents. *)
